package engarde

import (
	"context"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"engarde/internal/attest"
	"engarde/internal/obs"
	"engarde/internal/secchan"
	"engarde/internal/sgx"
)

// This file implements the wire protocol of §3 over any io.ReadWriter
// (net.Conn in the cmd tools and examples):
//
//	enclave → client : hello      {quote, enclave public key DER}
//	client  → enclave: key        {AES-256 key wrapped under the RSA key}
//	client  → enclave: content    length header + encrypted blocks
//	enclave → client : verdict    {compliant, reason}
//
// The verdict (and the executable-page list, which stays host-side) is all
// the provider ever learns about the client's code.

// RouteProto is the protocol marker of a RouteHello preamble frame.
const RouteProto = "engarde-route/1"

// RouteHello is the optional routing preamble: one JSON frame the client
// sends immediately on connect, before reading the server hello, announcing
// which image digest the session is for. A fleet front door
// (cmd/engarde-router) peeks it to pick the digest's ring owner, then
// strips it from the stream; it never reaches the owning gatewayd. Because
// both sides of TCP are independent, sending it before the server hello
// cannot deadlock — and a gatewayd contacted directly simply discards it.
//
// The preamble is advisory plaintext: it routes, it never authorizes. The
// digest only steers cache affinity (a lie costs the liar their own warm
// path), and the enclave protocol proper starts after it unchanged.
type RouteHello struct {
	// Proto must be RouteProto; routers ignore frames without it.
	Proto string `json:"proto"`
	// ImageDigest is the lowercase hex SHA-256 of the image to be
	// provisioned — the same digest the gateway's verdict cache keys on.
	// Empty routes by least-loaded instead of affinity.
	ImageDigest string `json:"image_digest,omitempty"`
	// Tenant names the quota bucket this session draws from; empty draws
	// from the shared default bucket.
	Tenant string `json:"tenant,omitempty"`
	// DeadlineMillis is how long the client is willing to wait end-to-end;
	// 0 means no deadline. Routers shed sessions whose deadline cannot
	// cover a saturated backend's Retry-After hint.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// TraceID/ParentSpan/Sampled are the client's cross-process trace
	// context (obs.TraceContext): a random 128-bit trace ID as 32 hex
	// chars, the originating 64-bit span as 16 hex chars, and the sampling
	// decision. Like the digest, they are advisory plaintext — the router
	// adopts the ID onto its splice spans so one trace shows the whole
	// session, but the authoritative copy rides encrypted inside the
	// wrapped session key, where the router cannot alter it. IDs are drawn
	// from crypto/rand, never derived from image bytes, so announcing one
	// discloses nothing about the content.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
	Sampled    bool   `json:"sampled,omitempty"`
}

// TraceContext assembles the preamble's trace fields into an
// obs.TraceContext (validate with Valid before adopting).
func (rh RouteHello) TraceContext() obs.TraceContext {
	return obs.TraceContext{TraceID: rh.TraceID, ParentSpan: rh.ParentSpan, Sampled: rh.Sampled}
}

// MaxRouteHelloBytes bounds a preamble frame; anything larger is session
// traffic, not routing metadata. Routers peeking the first frame use it to
// decide early that a long frame cannot be a preamble.
const MaxRouteHelloBytes = 4096

const maxRouteHello = MaxRouteHelloBytes

// PeekBusy reports whether a received hello frame is an overload shed and
// returns its verdict. The fleet router uses it to recognize a saturated
// backend — and forward that backend's Retry-After hint — without
// otherwise participating in the protocol.
func PeekBusy(frame []byte) (Verdict, bool) {
	var h hello
	if err := json.Unmarshal(frame, &h); err != nil || h.Busy == nil {
		return Verdict{}, false
	}
	return *h.Busy, true
}

// ParseRouteHello reports whether one received frame is a routing preamble.
// Both the router (to peek the digest) and the server (to discard a
// preamble that reached it directly) use it.
func ParseRouteHello(frame []byte) (RouteHello, bool) {
	var rh RouteHello
	if len(frame) > maxRouteHello || len(frame) == 0 || frame[0] != '{' {
		return RouteHello{}, false
	}
	if err := json.Unmarshal(frame, &rh); err != nil || rh.Proto != RouteProto {
		return RouteHello{}, false
	}
	return rh, true
}

// hello is the first protocol message. A gateway under overload sends a
// hello carrying only Busy — no quote, no key — so a turned-away client
// learns it was shed (and when to retry) instead of watching a silently
// closed socket.
type hello struct {
	Quote     quoteWire `json:"quote"`
	PublicKey []byte    `json:"public_key_der"`
	Busy      *Verdict  `json:"busy,omitempty"`
}

// quoteWire is the JSON encoding of an attestation quote.
type quoteWire struct {
	MREnclave  []byte `json:"mrenclave"`
	EnclaveID  uint64 `json:"enclave_id"`
	SGXVersion int    `json:"sgx_version"`
	ReportData []byte `json:"report_data"`
	MAC        []byte `json:"mac"`
	Signature  []byte `json:"signature"`
}

func quoteToWire(q Quote) quoteWire {
	return quoteWire{
		MREnclave:  q.Report.MREnclave[:],
		EnclaveID:  uint64(q.Report.EnclaveID),
		SGXVersion: int(q.Report.Version),
		ReportData: q.Report.ReportData[:],
		MAC:        q.Report.MAC[:],
		Signature:  q.Signature,
	}
}

func quoteFromWire(w quoteWire) (Quote, error) {
	var q Quote
	if len(w.MREnclave) != len(q.Report.MREnclave) ||
		len(w.ReportData) != len(q.Report.ReportData) ||
		len(w.MAC) != len(q.Report.MAC) {
		return q, fmt.Errorf("engarde: malformed quote encoding")
	}
	copy(q.Report.MREnclave[:], w.MREnclave)
	q.Report.EnclaveID = sgx.EnclaveID(w.EnclaveID)
	q.Report.Version = sgx.Version(w.SGXVersion)
	copy(q.Report.ReportData[:], w.ReportData)
	copy(q.Report.MAC[:], w.MAC)
	q.Signature = w.Signature
	return q, nil
}

// ReasonCode classifies a verdict machine-readably, so clients (and the
// gateway's stats) can distinguish failure classes without parsing the
// human-readable Reason string.
type ReasonCode string

// Verdict reason codes.
const (
	// CodeOK marks a compliant verdict (the zero value, omitted on the wire).
	CodeOK ReasonCode = ""
	// CodeSessionKey: the wrapped session key could not be unwrapped.
	CodeSessionKey ReasonCode = "session-key-rejected"
	// CodeTransfer: the encrypted content transfer failed (framing or
	// authentication).
	CodeTransfer ReasonCode = "transfer-failed"
	// CodePolicy: the content violated an agreed policy module.
	CodePolicy ReasonCode = "policy-violation"
	// CodeRejected: the content was structurally non-compliant (malformed
	// executable, stripped symbols, heap exhausted, ...).
	CodeRejected ReasonCode = "rejected"
	// CodeInternal: the provisioning machinery itself failed.
	CodeInternal ReasonCode = "internal-error"
	// CodeBusy: the service shed the connection under overload before any
	// enclave work; the content was never seen. Retry after the verdict's
	// RetryAfterMillis hint.
	CodeBusy ReasonCode = "busy"
	// CodeBackendLost: the fleet router lost its backend mid-session (crash,
	// eviction) and reset the splice with this typed verdict instead of a
	// bare connection drop. The session produced no verdict; the client
	// should replay provisioning against the next owner in its failover
	// order (ProvisionFailover does this automatically).
	CodeBackendLost ReasonCode = "backend-lost"
)

// Verdict is the provider-visible outcome sent back to the client.
type Verdict struct {
	Compliant bool       `json:"compliant"`
	Code      ReasonCode `json:"code,omitempty"`
	Reason    string     `json:"reason,omitempty"`
	// RetryAfterMillis, on a CodeBusy verdict, hints how long the client
	// should back off before retrying (the Retry-After of the protocol).
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// VerdictForReport derives the wire verdict from a provisioning report.
func VerdictForReport(rep *Report) Verdict {
	if rep.Compliant {
		return Verdict{Compliant: true}
	}
	v := Verdict{Compliant: false, Code: CodeRejected, Reason: rep.Reason}
	if rep.Violation != nil {
		v.Code = CodePolicy
	}
	return v
}

func sendJSON(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("engarde: encoding message: %w", err)
	}
	return secchan.WriteBlock(w, data)
}

func recvJSON(r io.Reader, v any) error {
	data, err := secchan.ReadBlock(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("engarde: decoding message: %w", err)
	}
	return nil
}

// SendBusy writes the overload-shedding first message: a hello carrying a
// CodeBusy verdict with a Retry-After hint instead of a quote. Serving
// layers call it when admission control turns a connection away.
func SendBusy(w io.Writer, retryAfter time.Duration) error {
	return sendJSON(w, hello{Busy: &Verdict{
		Compliant:        false,
		Code:             CodeBusy,
		Reason:           "service overloaded, retry later",
		RetryAfterMillis: retryAfter.Milliseconds(),
	}})
}

// SendBackendLost writes the typed mid-session reset a fleet router sends
// when the backend side of a splice dies: a verdict frame the client can
// read in place of the one the dead backend never produced. Verdict frames
// are plaintext-framed JSON (only the content stream is session-key
// encrypted), so the router can inject one without holding any session
// secret. retryAfter hints how long the client should wait before
// replaying against the next owner.
func SendBackendLost(w io.Writer, reason string, retryAfter time.Duration) error {
	return sendJSON(w, Verdict{
		Compliant:        false,
		Code:             CodeBackendLost,
		Reason:           reason,
		RetryAfterMillis: retryAfter.Milliseconds(),
	})
}

// ProvisionFunc provisions a decrypted image and returns the report. The
// default is (*Enclave).Provision; serving layers substitute a cache-aware
// implementation (internal/gateway).
type ProvisionFunc func(image []byte) (*Report, error)

// ServeProvision runs the enclave side of the provisioning protocol over
// conn: send hello, receive the wrapped session key, receive the encrypted
// content, provision it, and reply with the verdict. The full Report stays
// with the provider.
func (e *Enclave) ServeProvision(conn io.ReadWriter) (*Report, error) {
	return e.ServeProvisionFunc(conn, e.Provision)
}

// failNotify sends a failure verdict for cause and returns cause joined
// with any send error — a peer that has already vanished must not mask why
// the handshake failed, but the send failure is still reported.
//
// A cause rooted in an enclave loss is never reported under the caller's
// code: the session died through no fault of the image, so the client gets
// CodeBackendLost — the typed "replay elsewhere" signal — instead of a
// failure verdict it might mistake for an outcome.
func failNotify(conn io.Writer, code ReasonCode, reason string, cause error) error {
	if errors.Is(cause, ErrEnclaveLost) {
		code, reason = CodeBackendLost, "enclave lost mid-session"
	}
	if err := sendJSON(conn, Verdict{Compliant: false, Code: code, Reason: reason}); err != nil {
		return errors.Join(cause, fmt.Errorf("engarde: sending failure verdict: %w", err))
	}
	return cause
}

// ServeProvisionFunc is ServeProvision with the provisioning step swapped
// out: the decrypted image is handed to provision instead of going straight
// into (*Enclave).Provision. The gateway uses this to consult its verdict
// cache once the plaintext hash is known.
func (e *Enclave) ServeProvisionFunc(conn io.ReadWriter, provision ProvisionFunc) (*Report, error) {
	return e.ServeProvisionFuncCtx(context.Background(), conn, provision)
}

// ServeProvisionFuncCtx is ServeProvisionFunc with a context carrying the
// session's trace (obs.WithTrace): the protocol steps — attestation, key
// exchange, content transfer, provisioning, verdict — are recorded as
// spans on it. Attestation, key-exchange and transfer spans are
// cycle-metered (their charges fall outside the pipeline's own phase
// spans); the provision step is wall-clock only, because the pipeline
// records its own phase spans inside it.
func (e *Enclave) ServeProvisionFuncCtx(ctx context.Context, conn io.ReadWriter, provision ProvisionFunc) (*Report, error) {
	tr := obs.FromContext(ctx)
	if err := e.serveHandshake(tr, conn); err != nil {
		return nil, err
	}

	recvStart := time.Now()
	sp := tr.StartPhase("recv-image")
	image, err := e.core.RecvImage(conn)
	sp.End()
	if err != nil {
		return nil, failNotify(conn, CodeTransfer, "transfer failed", err)
	}

	psp := tr.StartSpan("provision")
	rep, err := provision(image)
	psp.End()
	if err != nil {
		return nil, failNotify(conn, CodeInternal, "provisioning failed", err)
	}

	sp = tr.StartPhase("send-verdict")
	err = sendJSON(conn, VerdictForReport(rep))
	sp.End()
	if err != nil {
		return rep, err
	}
	// The sequential path's first-byte-to-verdict window is anchored at the
	// start of the transfer wait (the client streams immediately after the
	// key exchange, so the first content byte arrives moments later) — the
	// comparable counterpart of the streaming path's frame-anchored span.
	tr.RecordSpan("first-byte-to-verdict", recvStart, time.Since(recvStart))
	return rep, nil
}

// serveHandshake runs the protocol prologue shared by the buffered and
// streaming serve paths: send the hello (quote + public key), then receive
// the wrapped session key — discarding a routing preamble that reached us
// directly — and complete the key exchange.
func (e *Enclave) serveHandshake(tr *obs.Trace, conn io.ReadWriter) error {
	sp := tr.StartPhase("attest")
	q, err := e.Quote()
	if err != nil {
		sp.End()
		return fmt.Errorf("engarde: quoting: %w", err)
	}
	pub, err := e.PublicKeyDER()
	if err != nil {
		sp.End()
		return err
	}
	err = sendJSON(conn, hello{Quote: quoteToWire(q), PublicKey: pub})
	sp.End()
	if err != nil {
		return err
	}

	sp = tr.StartPhase("key-exchange")
	wrapped, err := secchan.ReadBlock(conn)
	if err != nil {
		sp.End()
		return fmt.Errorf("engarde: receiving session key: %w", err)
	}
	if _, ok := ParseRouteHello(wrapped); ok {
		// A client that announces routing metadata but connected straight to
		// us (no router in front to strip it): discard the preamble and read
		// the real first frame. A wrapped session key is RSA ciphertext, so
		// it cannot be mistaken for the preamble's JSON.
		wrapped, err = secchan.ReadBlock(conn)
		if err != nil {
			sp.End()
			return fmt.Errorf("engarde: receiving session key: %w", err)
		}
	}
	err = e.AcceptSessionKey(wrapped)
	sp.End()
	if err != nil {
		// An unreadable key is a protocol failure; tell the peer.
		return failNotify(conn, CodeSessionKey, "session key rejected", err)
	}
	// Adopt the client's trace ID from the authenticated session-open
	// field, joining this session's spans (admission, pipeline phases,
	// verdict) to the client's cross-process trace. The session trace was
	// created at admission, before any client byte arrived, so adoption
	// happens here — the first moment the authenticated context exists.
	if tc, ok := e.SessionTraceContext(); ok && tc.Sampled {
		tr.AdoptID(tc.TraceID)
	}
	return nil
}

// StagedProvisionFunc provisions a streamed image (with its in-flight
// speculative decode and precomputed digest) and returns the report. The
// default is (*Enclave).ProvisionStaged; the gateway substitutes a
// cache-aware implementation keyed on StagedImage.Digest.
type StagedProvisionFunc func(st *StagedImage) (*Report, error)

// ServeProvisionStreaming is ServeProvision on the streaming pipeline:
// identical wire protocol and verdict, but the content transfer overlaps
// decryption, hashing, and speculative disassembly instead of completing
// before they start.
func (e *Enclave) ServeProvisionStreaming(conn io.ReadWriter) (*Report, error) {
	return e.ServeProvisionStreamingFuncCtx(context.Background(), conn, e.ProvisionStaged)
}

// ServeProvisionStreamingFuncCtx is the streaming counterpart of
// ServeProvisionFuncCtx: the recv-image phase yields a StagedImage whose
// digest and speculative decode are already warm at last-byte, and the
// trace additionally carries the recv-overlap span (recorded by the
// receive) plus a first-byte-to-verdict span anchored at the first content
// frame's arrival.
func (e *Enclave) ServeProvisionStreamingFuncCtx(ctx context.Context, conn io.ReadWriter, provision StagedProvisionFunc) (*Report, error) {
	tr := obs.FromContext(ctx)
	if err := e.serveHandshake(tr, conn); err != nil {
		return nil, err
	}

	sp := tr.StartPhase("recv-image")
	st, err := e.core.RecvImageStreaming(conn)
	sp.End()
	if err != nil {
		return nil, failNotify(conn, CodeTransfer, "transfer failed", err)
	}

	psp := tr.StartSpan("provision")
	rep, err := provision(st)
	psp.End()
	st.Release() // no-op when provision consumed the decode
	if err != nil {
		return nil, failNotify(conn, CodeInternal, "provisioning failed", err)
	}

	sp = tr.StartPhase("send-verdict")
	err = sendJSON(conn, VerdictForReport(rep))
	sp.End()
	if err != nil {
		return rep, err
	}
	if !st.FirstByteAt.IsZero() {
		tr.RecordSpan("first-byte-to-verdict", st.FirstByteAt, time.Since(st.FirstByteAt))
	}
	return rep, nil
}

// Client is the cloud client's side of the protocol.
type Client struct {
	// Expected is the EnGarde measurement the client demands (computed
	// from the inspected EnGarde code via ExpectedMeasurement).
	Expected Measurement
	// PlatformKey is the provider platform's attestation public key.
	PlatformKey *rsa.PublicKey
	// PlatformKeys are additional acceptable platform keys. A fleet runs
	// one platform key per node, and a routed session may land on any of
	// them; the quote must verify under PlatformKey or any entry here.
	PlatformKeys []*rsa.PublicKey
	// Route, when non-nil, is sent as a routing preamble before the
	// protocol proper, so a fleet router can steer the session to its
	// digest's cache owner. An empty ImageDigest is filled in from the
	// image being provisioned.
	Route *RouteHello
	// BlockSize is the encrypted-transfer frame payload size; 0 means the
	// protocol default of 64 KiB. Smaller frames give a streaming server
	// finer-grained transfer/pipeline overlap at more framing overhead.
	BlockSize int
}

// sendRoutePreamble announces the session's routing metadata. Digest
// auto-fill keeps callers honest-by-default: announcing a different image
// than the one streamed only degrades the caller's own cache affinity.
// A valid trace context is copied into the preamble's plaintext trace
// fields so the router can tag its spans with the session's ID.
func (c *Client) sendRoutePreamble(conn io.Writer, image []byte, tc obs.TraceContext) error {
	rh := *c.Route
	rh.Proto = RouteProto
	if rh.ImageDigest == "" {
		sum := sha256.Sum256(image)
		rh.ImageDigest = hex.EncodeToString(sum[:])
	}
	if tc.Valid() {
		rh.TraceID, rh.ParentSpan, rh.Sampled = tc.TraceID, tc.ParentSpan, tc.Sampled
	}
	return sendJSON(conn, rh)
}

// verifyAny checks the quote against every configured platform key.
func (c *Client) verifyAny(q Quote, publicKeyDER []byte) error {
	keys := make([]*rsa.PublicKey, 0, 1+len(c.PlatformKeys))
	if c.PlatformKey != nil {
		keys = append(keys, c.PlatformKey)
	}
	keys = append(keys, c.PlatformKeys...)
	var err error
	for _, key := range keys {
		if key == nil {
			continue
		}
		if err = attest.VerifyQuote(q, key, c.Expected, attest.BindPublicKey(publicKeyDER)); err == nil {
			return nil
		}
	}
	if err == nil {
		err = errors.New("engarde: no platform key configured")
	}
	return err
}

// Provision runs the client side over conn: verify the quote, wrap a
// session key, stream the executable, and return the verdict.
func (c *Client) Provision(conn io.ReadWriter, image []byte) (Verdict, error) {
	return c.provision(conn, image, obs.TraceContext{}, nil)
}

// ProvisionTraced is Provision under a client-side trace: tr's 128-bit ID
// (upgraded in place on first use) is propagated in the routing preamble
// and inside the wrapped session key, and the client's own protocol steps
// — hello wait, attestation, key exchange, content send, verdict wait —
// are recorded as spans on tr. Every hop that adopts the context exports
// spans under the same trace ID, so one Chrome trace shows the session
// end to end. A nil tr degrades to Provision.
func (c *Client) ProvisionTraced(conn io.ReadWriter, image []byte, tr *obs.Trace) (Verdict, error) {
	return c.provision(conn, image, tr.Context(), tr)
}

func (c *Client) provision(conn io.ReadWriter, image []byte, tc obs.TraceContext, tr *obs.Trace) (Verdict, error) {
	if c.Route != nil {
		if err := c.sendRoutePreamble(conn, image, tc); err != nil {
			return Verdict{}, fmt.Errorf("engarde: sending route preamble: %w", err)
		}
	}
	sp := tr.StartSpan("hello-wait")
	var h hello
	if err := recvJSON(conn, &h); err != nil {
		sp.End()
		return Verdict{}, fmt.Errorf("engarde: receiving hello: %w", err)
	}
	sp.End()
	if h.Busy != nil {
		// Shed at admission: the verdict is the whole outcome. Not an error —
		// the protocol worked; the service just has no room right now.
		return *h.Busy, nil
	}
	q, err := quoteFromWire(h.Quote)
	if err != nil {
		return Verdict{}, err
	}
	// Attestation: genuine EnGarde, on a genuine platform, with this exact
	// public key bound into the quote (§2, §3).
	sp = tr.StartSpan("attest-verify")
	err = c.verifyAny(q, h.PublicKey)
	sp.End()
	if err != nil {
		return Verdict{}, fmt.Errorf("%w: %w", ErrAttestation, err)
	}

	// The trace context rides inside the OAEP plaintext next to the AES
	// key: authenticated end-to-end, invisible and unforgeable to the
	// router that saw only the plaintext preamble copy.
	sp = tr.StartSpan("key-exchange")
	var extra []byte
	if tc.Valid() {
		extra = tc.Marshal()
	}
	sess, wrapped, err := secchan.WrapSessionKeyExtra(h.PublicKey, nil, extra)
	if err != nil {
		sp.End()
		return Verdict{}, err
	}
	if err := secchan.WriteBlock(conn, wrapped); err != nil {
		sp.End()
		return Verdict{}, fmt.Errorf("engarde: sending session key: %w", err)
	}
	sp.End()
	blockSize := c.BlockSize
	if blockSize <= 0 {
		blockSize = 64 * 1024
	}
	sp = tr.StartSpan("send-content")
	err = sess.SendStream(conn, image, blockSize)
	sp.End()
	if err != nil {
		return Verdict{}, fmt.Errorf("engarde: sending content: %w", err)
	}

	sp = tr.StartSpan("verdict-wait")
	var v Verdict
	err = recvJSON(conn, &v)
	sp.End()
	if err != nil {
		return Verdict{}, fmt.Errorf("engarde: receiving verdict: %w", err)
	}
	return v, nil
}
