package engarde

import (
	"fmt"
	"strings"
)

// ParsePolicies builds a policy set from a comma-separated list of policy
// names, as the cmd tools accept on their -policies flag:
//
//	musl            — library-linking against the approved musl build
//	musl-sp         — same, against the stack-protected musl build
//	stack-protector — Clang -fstack-protector-all compliance
//	ifcc            — LLVM indirect function-call check compliance
//	no-forbidden    — no SYSCALL/INT/privileged instructions
//
// An empty list yields an empty set (attestation and encrypted
// provisioning still apply; no code policy is enforced).
func ParsePolicies(list string) (*PolicySet, error) {
	set := NewPolicySet()
	if strings.TrimSpace(list) == "" {
		return set, nil
	}
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "musl":
			p, err := MuslLinkingPolicy(MuslApprovedVersion, false)
			if err != nil {
				return nil, err
			}
			set.Add(p)
		case "musl-sp":
			p, err := MuslLinkingPolicy(MuslApprovedVersion, true)
			if err != nil {
				return nil, err
			}
			set.Add(p)
		case "stack-protector":
			set.Add(StackProtectorPolicy())
		case "ifcc":
			set.Add(IFCCPolicy())
		case "no-forbidden":
			set.Add(NoForbiddenInstructionsPolicy())
		case "asan":
			set.Add(ASanPolicy())
		case "":
		default:
			return nil, fmt.Errorf("engarde: unknown policy %q (want musl, musl-sp, stack-protector, ifcc, no-forbidden)", name)
		}
	}
	return set, nil
}
