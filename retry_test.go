package engarde

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"engarde/internal/toolchain"
)

func TestClassifyFailure(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, FailTransient},
		{"attestation", fmt.Errorf("verify: %w", ErrAttestation), FailPermanent},
		{"session-lost", fmt.Errorf("x: %w", ErrSessionLost), FailSessionLost},
		{"eof", io.EOF, FailSessionLost},
		{"unexpected-eof", fmt.Errorf("recv: %w", io.ErrUnexpectedEOF), FailSessionLost},
		{"closed-pipe", io.ErrClosedPipe, FailSessionLost},
		{"net-closed", net.ErrClosed, FailSessionLost},
		{"conn-reset", syscall.ECONNRESET, FailSessionLost},
		{"conn-refused", syscall.ECONNREFUSED, FailSessionLost},
		{"op-error", &net.OpError{Op: "read", Err: errors.New("boom")}, FailSessionLost},
		{"other", errors.New("machinery hiccup"), FailTransient},
	} {
		if got := ClassifyFailure(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyFailure(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
	if s := FailSessionLost.String(); s != "session-lost" {
		t.Errorf("FailSessionLost.String() = %q", s)
	}
}

// failoverFixture builds a provider, two serving enclaves, and a client:
// endpoint behavior is set per test through the serve functions.
type failoverFixture struct {
	provider *Provider
	client   *Client
	image    []byte
}

func newFailoverFixture(t *testing.T) *failoverFixture {
	t.Helper()
	provider, err := NewProvider(ProviderConfig{EPCPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	bin, err := toolchain.Build(toolchain.Config{
		Name: "failover", Seed: 83, NumFuncs: 6, AvgFuncInsts: 40, StackProtector: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &failoverFixture{
		provider: provider,
		client:   &Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()},
		image:    bin.Image,
	}
}

// serveDial returns a dial function whose server side runs serve on a
// fresh enclave over a net.Pipe, once per dial.
func (f *failoverFixture) serveDial(t *testing.T, serve func(encl *Enclave, conn net.Conn)) func() (net.Conn, error) {
	t.Helper()
	return func() (net.Conn, error) {
		cli, srv := net.Pipe()
		encl, err := f.provider.CreateEnclave(smallEnclave())
		if err != nil {
			return nil, err
		}
		go func() {
			defer srv.Close()
			defer encl.Destroy()
			serve(encl, srv)
		}()
		return cli, nil
	}
}

func quietPolicy(onFailover func(from, to int, cause error)) RetryPolicy {
	return RetryPolicy{
		Attempts:   4,
		Seed:       1,
		Sleep:      func(time.Duration) {},
		OnFailover: onFailover,
	}
}

// TestProvisionFailoverMidStreamDeath kills endpoint 0's connection
// mid-handshake; the client must replay the retained image against
// endpoint 1 and complete with a verdict.
func TestProvisionFailoverMidStreamDeath(t *testing.T) {
	f := newFailoverFixture(t)
	dead := f.serveDial(t, func(_ *Enclave, conn net.Conn) {
		// Hard-close without a byte: the owner crashed mid-session.
	})
	alive := f.serveDial(t, func(encl *Enclave, conn net.Conn) {
		_, _ = encl.ServeProvision(conn)
	})

	var moves []string
	v, err := f.client.ProvisionFailover(
		[]func() (net.Conn, error){dead, alive}, f.image,
		quietPolicy(func(from, to int, cause error) {
			moves = append(moves, fmt.Sprintf("%d->%d", from, to))
			if ClassifyFailure(cause) != FailSessionLost {
				t.Errorf("failover cause %v classified %v, want session-lost", cause, ClassifyFailure(cause))
			}
		}))
	if err != nil {
		t.Fatalf("ProvisionFailover: %v", err)
	}
	if !v.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v)
	}
	if len(moves) != 1 || moves[0] != "0->1" {
		t.Errorf("failover moves = %v, want [0->1]", moves)
	}
}

// TestProvisionFailoverOnBackendLostVerdict has endpoint 0 complete the
// handshake and transfer, then fail provisioning with an enclave loss:
// the server reports it as a typed CodeBackendLost verdict (never an
// internal failure a client could take as final), and the client replays
// against endpoint 1.
func TestProvisionFailoverOnBackendLostVerdict(t *testing.T) {
	f := newFailoverFixture(t)
	lost := f.serveDial(t, func(encl *Enclave, conn net.Conn) {
		_, _ = encl.ServeProvisionFunc(conn, func([]byte) (*Report, error) {
			return nil, fmt.Errorf("core: staging image: %w", ErrEnclaveLost)
		})
	})
	alive := f.serveDial(t, func(encl *Enclave, conn net.Conn) {
		_, _ = encl.ServeProvision(conn)
	})

	var moves int
	v, err := f.client.ProvisionFailover(
		[]func() (net.Conn, error){lost, alive}, f.image,
		quietPolicy(func(from, to int, cause error) {
			moves++
			if !errors.Is(cause, ErrSessionLost) {
				t.Errorf("failover cause = %v, want ErrSessionLost", cause)
			}
		}))
	if err != nil {
		t.Fatalf("ProvisionFailover: %v", err)
	}
	if !v.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v)
	}
	if moves != 1 {
		t.Errorf("failovers = %d, want 1", moves)
	}
}

// TestProvisionFailoverDialErrorAdvances treats a dial failure like a
// down endpoint: advance to the successor instead of hammering it.
func TestProvisionFailoverDialErrorAdvances(t *testing.T) {
	f := newFailoverFixture(t)
	var dials int
	down := func() (net.Conn, error) {
		dials++
		return nil, syscall.ECONNREFUSED
	}
	alive := f.serveDial(t, func(encl *Enclave, conn net.Conn) {
		_, _ = encl.ServeProvision(conn)
	})
	v, err := f.client.ProvisionFailover(
		[]func() (net.Conn, error){down, alive}, f.image, quietPolicy(nil))
	if err != nil {
		t.Fatalf("ProvisionFailover: %v", err)
	}
	if !v.Compliant {
		t.Fatalf("verdict = %+v, want compliant", v)
	}
	if dials != 1 {
		t.Errorf("down endpoint dialed %d times, want 1", dials)
	}
}

// TestProvisionFailoverPermanentStops: a failed attestation must not be
// retried anywhere — the platform is not running genuine EnGarde, and no
// amount of failover fixes that.
func TestProvisionFailoverPermanentStops(t *testing.T) {
	f := newFailoverFixture(t)
	f.client.Expected = Measurement{} // demand a measurement no enclave has
	var dials int
	serve := f.serveDial(t, func(encl *Enclave, conn net.Conn) {
		_, _ = encl.ServeProvision(conn)
	})
	counted := func() (net.Conn, error) {
		dials++
		return serve()
	}
	_, err := f.client.ProvisionFailover(
		[]func() (net.Conn, error){counted, counted}, f.image, quietPolicy(nil))
	if !errors.Is(err, ErrAttestation) {
		t.Fatalf("err = %v, want ErrAttestation", err)
	}
	if dials != 1 {
		t.Errorf("dials = %d, want 1 — permanent failures must not retry", dials)
	}
}

// TestProvisionFailoverExhaustsBudget: with every endpoint dead, the
// shared attempt budget runs out and the last session loss surfaces.
func TestProvisionFailoverExhaustsBudget(t *testing.T) {
	f := newFailoverFixture(t)
	var dials int
	down := func() (net.Conn, error) {
		dials++
		return nil, syscall.ECONNREFUSED
	}
	_, err := f.client.ProvisionFailover(
		[]func() (net.Conn, error){down, down}, f.image, quietPolicy(nil))
	if err == nil {
		t.Fatal("expected failure with every endpoint down")
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Errorf("err = %v, want wrapped ECONNREFUSED", err)
	}
	if dials != 4 {
		t.Errorf("dials = %d, want 4 (the full attempt budget)", dials)
	}
}
