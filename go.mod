module engarde

go 1.22
