// Package engarde is a from-scratch reproduction of "EnGarde:
// Mutually-Trusted Inspection of SGX Enclaves" (Nguyen & Ganapathy,
// ICDCS 2017) as a reusable Go library.
//
// EnGarde lets a cloud provider and a cloud client — who do not trust each
// other — agree on policies that the client's enclave code must satisfy.
// The provider creates a fresh enclave provisioned with the EnGarde
// bootstrap (inspectable by both parties, attested via SGX), the client
// provisions its executable over an end-to-end encrypted channel into the
// enclave, and EnGarde statically checks the code against the agreed
// policies before loading it. The provider learns exactly one bit
// (compliant or not) plus the executable-page layout; the client's code
// never leaves the enclave in plaintext; and no runtime overhead remains
// after provisioning.
//
// The package is organized around two roles:
//
//   - Provider: owns the (emulated) SGX device and its quoting enclave,
//     creates EnGarde enclaves, and serves the provisioning protocol.
//   - Client: verifies the enclave's attestation quote against the
//     expected EnGarde measurement, wraps a session key, and streams its
//     executable.
//
// The SGX substrate is a software emulation (internal/sgx) following the
// paper's own methodology — the paper, too, ran on an emulator (OpenSGX)
// with a cycle model rather than on silicon. See DESIGN.md for the full
// substitution map.
package engarde

import (
	"crypto/rsa"
	"fmt"

	"engarde/internal/attest"
	"engarde/internal/core"
	"engarde/internal/cycles"
	"engarde/internal/obs"
	"engarde/internal/policy"
	"engarde/internal/policy/asan"
	"engarde/internal/policy/ifcc"
	"engarde/internal/policy/liblink"
	"engarde/internal/policy/memo"
	"engarde/internal/policy/noforbidden"
	"engarde/internal/policy/stackprot"
	"engarde/internal/sgx"
	"engarde/internal/toolchain"
)

// Re-exported core types, so downstream users interact with one package.
type (
	// Policy is one pluggable compliance check (paper §3).
	Policy = policy.Module
	// PolicySet is the ordered module list both parties agreed on.
	PolicySet = policy.Set
	// Violation reports why content was rejected.
	Violation = policy.Violation
	// Report is the outcome of a provisioning attempt.
	Report = core.Report
	// StagedImage is an executable received by the streaming pipeline:
	// plaintext plus an incrementally computed digest and an in-flight
	// speculative decode (see ServeProvisionStreaming).
	StagedImage = core.StagedImage
	// Measurement is an enclave measurement (MRENCLAVE).
	Measurement = sgx.Measurement
	// Quote is a signed attestation statement.
	Quote = attest.Quote
	// SGXVersion selects SGX v1/v2 semantics.
	SGXVersion = sgx.Version
	// FnCache is the content-addressed function-result cache enabling
	// warm-path provisioning; share one across enclaves via
	// EnclaveConfig.FnCache.
	FnCache = memo.Cache
	// FnCacheStats is a snapshot of a FnCache's hit/miss/eviction metrics.
	FnCacheStats = memo.Stats
	// FnCacheConfig is the full function-result cache configuration,
	// including the disk tier's circuit breaker and filesystem hooks.
	FnCacheConfig = memo.Config
	// FnCacheFS abstracts the filesystem behind the fn-cache disk tier;
	// fault-injection tests substitute internal/faults.ChaosFS.
	FnCacheFS = memo.FS
)

// OpenFnCache builds a function-result cache: an in-process sharded LRU
// bounded at entries (0 means the default capacity), optionally backed by
// a persistent append log at path (empty disables the disk tier). A
// corrupted or truncated log is not an error — the valid prefix is loaded
// and the rest discarded, since any lost entry is merely a future cache
// miss. Call Close to flush the disk tier on shutdown.
func OpenFnCache(entries int, path string) (*FnCache, error) {
	return memo.Open(memo.Config{Entries: entries, Path: path})
}

// OpenFnCacheWith is OpenFnCache with the full configuration surface: the
// disk tier's circuit-breaker threshold and re-probe interval, and an
// injectable filesystem for fault testing.
func OpenFnCacheWith(cfg FnCacheConfig) (*FnCache, error) {
	return memo.Open(cfg)
}

// SGX instruction-set versions. EnGarde requires V2 for security (§3); V1
// is provided to demonstrate the attack that motivates the requirement.
const (
	SGXv1 = sgx.V1
	SGXv2 = sgx.V2
)

// NewPolicySet builds a policy set.
func NewPolicySet(mods ...Policy) *PolicySet { return policy.NewSet(mods...) }

// MuslLinkingPolicy returns the paper's first policy module: the client's
// executable must be linked against the approved musl-libc build (§5,
// Figure 3). The hash database is derived from the provider's approved
// libc build; stackProtected selects the canary-instrumented libc variant.
func MuslLinkingPolicy(version string, stackProtected bool) (Policy, error) {
	db, err := toolchain.MuslHashDB(version, stackProtected)
	if err != nil {
		return nil, fmt.Errorf("engarde: building musl hash database: %w", err)
	}
	return liblink.New("musl-libc v"+version, db), nil
}

// MuslApprovedVersion is the library version the paper's provider demands.
const MuslApprovedVersion = toolchain.MuslV105

// StackProtectorPolicy returns the paper's second policy module: every
// function must carry Clang -fstack-protector-all instrumentation (§5,
// Figure 4).
func StackProtectorPolicy() Policy { return stackprot.New() }

// IFCCPolicy returns the paper's third policy module: every indirect call
// must carry LLVM IFCC jump-table guards (§5, Figure 5).
func IFCCPolicy() Policy { return ifcc.New() }

// NoForbiddenInstructionsPolicy rejects executables containing SYSCALL,
// INT and other instructions that cannot legally execute inside an enclave
// (§2) — a fourth module demonstrating the pluggable architecture.
func NoForbiddenInstructionsPolicy() Policy { return noforbidden.New() }

// ASanPolicy verifies AddressSanitizer-style shadow-check instrumentation
// on every frame store — the "other tools, such as Google's
// AddressSanitizer" customization §5 suggests. Approved-library functions
// are exempt (their exact bytes are pinned by the library-linking policy
// instead).
func ASanPolicy() Policy { return asan.New(toolchain.MuslFunctionNames()...) }

// EnclaveConfig configures one EnGarde enclave.
type EnclaveConfig struct {
	// Policies both parties agreed on.
	Policies *PolicySet
	// HeapPages / ClientPages size the enclave regions (defaults match
	// the paper's modified OpenSGX: 5000 heap pages).
	HeapPages   int
	ClientPages int
	// DisasmWorkers / PolicyWorkers shard the provisioning pipeline's
	// disassembly and policy-checking passes; 0 means GOMAXPROCS, 1 forces
	// the sequential paths. Verdicts and cycle accounting are identical
	// for any worker count.
	DisasmWorkers int
	PolicyWorkers int
	// FnCache, when non-nil, enables warm-path provisioning: per-function
	// policy outcomes are memoized in (and reused from) this cache, keyed
	// by function content digest × module fingerprint. Verdicts are
	// identical with or without it; Report.CachedFunctions counts the
	// reuses. Share one cache across enclaves to amortize checking of the
	// common approved libc.
	FnCache *FnCache
	// Trace, when non-nil, records this enclave's provisioning timeline:
	// cycle-metered spans for enclave creation and every pipeline phase.
	// Serving layers thread the same trace through the protocol context
	// (obs.WithTrace) so the protocol steps land on the same timeline.
	Trace *obs.Trace
}

// Provider is the cloud provider's side: one SGX machine with its quoting
// enclave.
type Provider struct {
	dev *sgx.Device
	qe  *attest.QuotingEnclave
	cfg ProviderConfig
}

// ProviderConfig configures the provider's SGX platform.
type ProviderConfig struct {
	// Version is the SGX generation; default SGXv2.
	Version SGXVersion
	// EPCPages is the EPC capacity; default the paper's 32000 pages.
	EPCPages int
	// Counter, if set, meters all SGX and EnGarde work.
	Counter *cycles.Counter
}

// NewProvider boots an SGX platform: device plus quoting enclave.
func NewProvider(cfg ProviderConfig) (*Provider, error) {
	if cfg.Version == 0 {
		cfg.Version = sgx.V2
	}
	if cfg.EPCPages == 0 {
		cfg.EPCPages = sgx.ModifiedEPCPages
	}
	dev, err := sgx.NewDevice(sgx.Config{
		EPCPages: cfg.EPCPages,
		Version:  cfg.Version,
		Counter:  cfg.Counter,
	})
	if err != nil {
		return nil, err
	}
	qe, err := attest.NewQuotingEnclave(dev)
	if err != nil {
		return nil, err
	}
	return &Provider{dev: dev, qe: qe, cfg: cfg}, nil
}

// AttestationPublicKey is the platform attestation key clients verify
// quotes against (what Intel's attestation service would vouch for).
func (p *Provider) AttestationPublicKey() *rsa.PublicKey {
	return p.qe.AttestationPublicKey()
}

// Device exposes the underlying SGX device (examples, benches).
func (p *Provider) Device() *sgx.Device { return p.dev }

// Counter returns the cycle counter metering this platform (nil if the
// provider was built without one). Enclaves created on the platform all
// charge into it, so it aggregates work across tenants — the gateway's
// stats endpoint reads per-phase totals from here.
func (p *Provider) Counter() *cycles.Counter { return p.cfg.Counter }

// Enclave is one EnGarde-provisioned enclave on a provider platform.
type Enclave struct {
	provider *Provider
	core     *core.EnGarde
}

// CreateEnclave creates a fresh enclave provisioned with the EnGarde
// bootstrap and the agreed policy modules.
func (p *Provider) CreateEnclave(cfg EnclaveConfig) (*Enclave, error) {
	g, err := core.NewOnDevice(core.Config{
		Version:       p.cfg.Version,
		EPCPages:      p.cfg.EPCPages,
		HeapPages:     cfg.HeapPages,
		ClientPages:   cfg.ClientPages,
		Policies:      cfg.Policies,
		Counter:       p.cfg.Counter,
		DisasmWorkers: cfg.DisasmWorkers,
		PolicyWorkers: cfg.PolicyWorkers,
		FnMemo:        cfg.FnCache,
		Trace:         cfg.Trace,
	}, p.dev)
	if err != nil {
		return nil, err
	}
	return &Enclave{provider: p, core: g}, nil
}

// EnclaveSnapshot is a reusable post-EINIT enclave image on a provider
// platform: one template enclave is built the measured way and captured,
// then Clone mints attestation-ready enclaves at page-restore speed and
// Recycle scrubs used ones back to the pristine image. All clones carry
// the template's MRENCLAVE (identical to ExpectedMeasurement for the same
// configuration) with fresh per-instance identities and RSA keys.
type EnclaveSnapshot struct {
	provider *Provider
	snap     *core.Snapshotter
}

// NewEnclaveSnapshot builds and captures the snapshot template. The
// one-time measured-build cost is charged to the provider's counter and
// reported by BuildCycles.
func (p *Provider) NewEnclaveSnapshot(cfg EnclaveConfig) (*EnclaveSnapshot, error) {
	s, err := core.NewSnapshotter(core.Config{
		Version:       p.cfg.Version,
		EPCPages:      p.cfg.EPCPages,
		HeapPages:     cfg.HeapPages,
		ClientPages:   cfg.ClientPages,
		Policies:      cfg.Policies,
		Counter:       p.cfg.Counter,
		DisasmWorkers: cfg.DisasmWorkers,
		PolicyWorkers: cfg.PolicyWorkers,
		FnMemo:        cfg.FnCache,
	}, p.dev)
	if err != nil {
		return nil, err
	}
	return &EnclaveSnapshot{provider: p, snap: s}, nil
}

// Clone mints a fresh provisioning-ready enclave from the snapshot,
// behaviorally identical to CreateEnclave minus the measured-build cost.
func (s *EnclaveSnapshot) Clone() (*Enclave, error) {
	g, err := s.snap.Clone(nil)
	if err != nil {
		return nil, err
	}
	return &Enclave{provider: s.provider, core: g}, nil
}

// Recycle scrubs a used clone back to the snapshot image — erasing all
// session state including any client page contents — and returns it as a
// fresh enclave around the same EPC pages. The argument must not be used
// afterwards; on error it has been destroyed.
func (s *EnclaveSnapshot) Recycle(e *Enclave) (*Enclave, error) {
	g, err := s.snap.Recycle(e.core)
	if err != nil {
		return nil, err
	}
	return &Enclave{provider: s.provider, core: g}, nil
}

// Measurement returns the MRENCLAVE every clone carries.
func (s *EnclaveSnapshot) Measurement() Measurement { return s.snap.Measurement() }

// BuildCycles returns the one-time template build-and-capture cycle cost.
func (s *EnclaveSnapshot) BuildCycles() uint64 { return s.snap.BuildCycles() }

// CloneCycleCost returns the deterministic cycle-model cost of one clone.
func (s *EnclaveSnapshot) CloneCycleCost() uint64 { return s.snap.CloneCycleCost() }

// SnapshotPages returns the number of pages restored per clone.
func (s *EnclaveSnapshot) SnapshotPages() int { return s.snap.SnapshotPages() }

// Quote produces the attestation quote binding the enclave measurement and
// its ephemeral public key.
func (e *Enclave) Quote() (Quote, error) { return e.core.Quote(e.provider.qe) }

// SetTrace attaches a trace to the enclave so later work (provisioning
// phases) lands on a session's timeline. Pools use it at checkout: the
// enclave was cloned untraced in the background, then adopts the session
// trace of whoever checks it out.
func (e *Enclave) SetTrace(tr *obs.Trace) { e.core.SetTrace(tr) }

// PublicKeyDER exports the enclave's ephemeral RSA public key.
func (e *Enclave) PublicKeyDER() ([]byte, error) { return e.core.PublicKeyDER() }

// AcceptSessionKey installs the client's RSA-wrapped AES session key.
func (e *Enclave) AcceptSessionKey(wrapped []byte) error {
	return e.core.AcceptSessionKey(wrapped)
}

// SessionTraceContext returns the trace context the client carried inside
// the current session's wrapped-key exchange (authenticated under the
// enclave key, so not forgeable by an on-path router), and whether one
// was present. The gateway adopts it onto the session trace so client,
// router and gateway span files share one trace ID.
func (e *Enclave) SessionTraceContext() (obs.TraceContext, bool) {
	return e.core.SessionTraceContext()
}

// Provision runs the EnGarde pipeline over a plaintext image (in-process
// use; the network protocol lives in protocol.go).
func (e *Enclave) Provision(image []byte) (*Report, error) {
	return e.core.Provision(image)
}

// ProvisionPrechecked provisions an image that a prior compliant Report
// already vouches for, skipping disassembly and policy checking. The caller
// must guarantee the image is byte-identical to the one behind prior and
// was checked under a policy set with an identical Fingerprint — the
// gateway's verdict cache enforces exactly that.
func (e *Enclave) ProvisionPrechecked(image []byte, prior *Report) (*Report, error) {
	return e.core.ProvisionPrechecked(image, prior)
}

// ProvisionStaged runs the pipeline over a streamed image, adopting its
// speculative decode when it verifiably matches the parsed text section.
// Verdicts and cycle charges are identical to Provision(st.Image).
func (e *Enclave) ProvisionStaged(st *StagedImage) (*Report, error) {
	return e.core.ProvisionStaged(st)
}

// ProvisionStagedPrechecked is ProvisionPrechecked for a streamed image.
func (e *Enclave) ProvisionStagedPrechecked(st *StagedImage, prior *Report) (*Report, error) {
	return e.core.ProvisionStagedPrechecked(st, prior)
}

// Enter transfers control to the provisioned executable.
func (e *Enclave) Enter() (uint64, error) { return e.core.Enter() }

// Measurement returns the enclave's MRENCLAVE.
func (e *Enclave) Measurement() Measurement { return e.core.Measurement() }

// Core exposes the underlying core instance (benches, examples).
func (e *Enclave) Core() *core.EnGarde { return e.core }

// Destroy releases the enclave's EPC pages back to the platform. The
// gateway calls this when a connection ends; without it the shared EPC
// fills up after a handful of tenants.
func (e *Enclave) Destroy() { e.core.Destroy() }

// ErrEnclaveLost is returned (wrapped) by enclave operations after the
// host reclaimed the enclave's EPC pages — the SGX failure mode where an
// enclave dies out from under its owner. The gateway detects it with
// errors.Is and transparently re-runs the session on a fresh enclave;
// losses cost availability headroom, never verdict integrity.
var ErrEnclaveLost = sgx.ErrEnclaveLost

// Lost reports whether the enclave's EPC backing was reclaimed by the
// host (see ErrEnclaveLost). Pools check this at checkout so a dead
// warm enclave is discarded instead of handed to a session.
func (e *Enclave) Lost() bool { return e.core.Enclave().Lost() }

// Reclaim tears the enclave's EPC pages out from under it, marking it
// lost — deterministic enclave-loss injection for recovery drills and
// chaos tests. Returns the number of pages reclaimed.
func (e *Enclave) Reclaim() int {
	return e.core.Device().ReclaimEnclave(e.core.Enclave())
}

// ExpectedMeasurement computes the MRENCLAVE a genuine EnGarde enclave
// with the given configuration must carry; clients compare quotes against
// it (both parties can compute it from the inspectable EnGarde code).
func ExpectedMeasurement(version SGXVersion, cfg EnclaveConfig) (Measurement, error) {
	if version == 0 {
		version = sgx.V2
	}
	return core.ExpectedMeasurement(core.Config{
		Version:     version,
		HeapPages:   cfg.HeapPages,
		ClientPages: cfg.ClientPages,
	})
}
