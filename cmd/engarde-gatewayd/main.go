// Command engarde-gatewayd is the production provisioning daemon: the
// full internal/gateway surface — bounded enclave worker pool, verdict
// cache, stats endpoint, graceful shutdown — wired to flags.
//
// Usage:
//
//	engarde-gatewayd -listen 127.0.0.1:7779 \
//	                 -policies stack-protector,ifcc \
//	                 -max-concurrent 16 -cache-entries 4096 \
//	                 -stats-addr 127.0.0.1:7780 \
//	                 -log-level info -log-format text -trace-dir /tmp/traces
//
// The stats address serves three telemetry endpoints: /statsz (JSON
// snapshot: admissions, verdict counts, cache hit rates, per-phase cycle
// totals, latency histogram), /metricsz (the same registry in Prometheus
// text exposition format), and /tracez (recent per-session trace span
// timelines; add ?format=chrome for a chrome://tracing document).
// -trace-dir additionally writes every session's trace to disk, as
// append-only JSONL plus one Chrome trace_event file per session.
//
// The same mux serves the fleet plumbing: /healthz (liveness), /readyz
// (readiness — 503 while draining, which is what engarde-router's health
// prober keys off), and /memoz/ (the function-result cache peer protocol;
// point other gatewayds at it with -fn-cache-peers to share warm-path
// state across a fleet).
//
// Logs are structured (log/slog, text or JSON) and every session record
// carries the session's trace ID, so a slow span seen in /tracez joins to
// the log line of the session that produced it.
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, in-flight
// and queued sessions finish (up to -drain-timeout), then the process
// exits. A second signal force-closes remaining connections.
package main

import (
	"context"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/gateway"
	"engarde/internal/obs"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7779", "address to serve the provisioning protocol on")
		policies    = flag.String("policies", "stack-protector", "comma-separated policy list (musl, musl-sp, stack-protector, ifcc, no-forbidden, asan)")
		keyOut      = flag.String("attest-key-out", "", "write the platform attestation public key (PEM) here")
		heapPages   = flag.Int("heap-pages", 5000, "enclave heap pages per tenant (paper default 5000)")
		clientPages = flag.Int("client-pages", 1024, "enclave client-region pages per tenant")
		sgxv1       = flag.Bool("sgxv1", false, "emulate SGX version 1 (insecure; for the AsyncShock demo)")

		disasmWorkers = flag.Int("disasm-workers", 0, "workers sharding each session's disassembly pass (0 = GOMAXPROCS, 1 = sequential)")
		policyWorkers = flag.Int("policy-workers", 0, "workers sharding each session's policy checks (0 = GOMAXPROCS, 1 = sequential)")
		streaming     = flag.Bool("streaming", true, "overlap image transfer with decryption, hashing, and disassembly (false = buffer the whole image first)")

		maxConcurrent = flag.Int("max-concurrent", gateway.DefaultMaxConcurrent, "maximum enclaves in flight (worker-pool size)")
		enclavePool   = flag.Int("enclave-pool", 0, "warm enclaves kept cloned and attestation-ready (0 disables pooling)")
		poolRefill    = flag.Int("pool-refill-workers", 0, "background workers refilling the enclave pool (0 = default)")
		queueDepth    = flag.Int("queue-depth", 0, "connections allowed to wait for a worker (0 = 2x max-concurrent, negative = none)")
		cacheEntries  = flag.Int("cache-entries", gateway.DefaultCacheEntries, "verdict cache capacity (negative disables caching)")

		fnCacheEntries = flag.Int("fn-cache-entries", 0, "function-result cache capacity shared across tenants (0 = default, negative disables)")
		fnCachePath    = flag.String("fn-cache-path", "", "persist the function-result cache to this append log so restarts provision warm (empty = in-memory only)")
		fnCacheReprobe = flag.Duration("fn-cache-reprobe", 0, "how long the fn-cache disk tier's tripped circuit breaker waits before re-probing the disk (0 = default)")

		fnCachePeers         = flag.String("fn-cache-peers", "", "comma-separated peer /memoz base URLs (e.g. http://10.0.0.2:7780/memoz) to share memoized function results with (empty disables the remote tier)")
		fnCacheRemoteTimeout = flag.Duration("fn-cache-remote-timeout", 0, "deadline for one fn-cache peer round-trip (0 = default)")

		loseEvery = flag.Int("lose-enclave-every", 0, "fault drill: reclaim every Nth session's enclave mid-provision, EREMOVE-style, to exercise enclave-loss recovery (0 disables)")

		idleTimeout   = flag.Duration("idle-timeout", gateway.DefaultIdleTimeout, "per-frame idle deadline: a session must make read/write progress within this (negative disables)")
		sessionBudget = flag.Duration("session-budget", gateway.DefaultSessionBudget, "total time budget per session, regardless of progress (negative disables)")
		drainTimeout  = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight sessions; expiring it exits non-zero")
		statsAddr     = flag.String("stats-addr", "", "serve telemetry at http://<stats-addr>/statsz, /metricsz, /tracez (empty disables)")

		logLevel  = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		logFormat = flag.String("log-format", "text", "log record format (text, json)")
		traceDir  = flag.String("trace-dir", "", "write every session's trace here: traces.jsonl plus one Chrome trace_event file per session (empty = in-memory /tracez only)")
		traceRing = flag.Int("trace-ring", 0, "recent traces kept in memory for /tracez (0 = default, negative rejected)")

		pprofOn         = flag.Bool("pprof", false, "expose /debug/pprof/ on the stats address (opt-in: profiles are operator telemetry)")
		profileDir      = flag.String("profile-dir", "", "capture periodic CPU and heap profiles into this directory (empty disables)")
		profileInterval = flag.Duration("profile-interval", 0, "period between profile captures (0 = default 60s)")
	)
	flag.Parse()

	if err := run(config{
		listen: *listen, policies: *policies, keyOut: *keyOut,
		heapPages: *heapPages, clientPages: *clientPages, sgxv1: *sgxv1,
		disasmWorkers: *disasmWorkers, policyWorkers: *policyWorkers,
		streaming:     *streaming,
		maxConcurrent: *maxConcurrent, queueDepth: *queueDepth,
		enclavePool: *enclavePool, poolRefillWorkers: *poolRefill,
		cacheEntries: *cacheEntries,
		idleTimeout:  *idleTimeout, sessionBudget: *sessionBudget,
		fnCacheEntries: *fnCacheEntries, fnCachePath: *fnCachePath,
		fnCacheReprobe:       *fnCacheReprobe,
		fnCachePeers:         *fnCachePeers,
		fnCacheRemoteTimeout: *fnCacheRemoteTimeout,
		loseEnclaveEvery:     *loseEvery,
		drainTimeout:         *drainTimeout, statsAddr: *statsAddr,
		logLevel: *logLevel, logFormat: *logFormat, traceDir: *traceDir,
		traceRing: *traceRing, pprofOn: *pprofOn,
		profileDir: *profileDir, profileInterval: *profileInterval,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-gatewayd:", err)
		os.Exit(1)
	}
}

type config struct {
	listen, policies, keyOut string
	heapPages, clientPages   int
	sgxv1                    bool

	disasmWorkers, policyWorkers            int
	streaming                               bool
	maxConcurrent, queueDepth, cacheEntries int
	enclavePool, poolRefillWorkers          int
	fnCacheEntries                          int
	fnCachePath                             string
	fnCacheReprobe                          time.Duration
	fnCachePeers                            string
	fnCacheRemoteTimeout                    time.Duration
	loseEnclaveEvery                        int
	idleTimeout, sessionBudget              time.Duration
	drainTimeout                            time.Duration
	statsAddr                               string
	logLevel, logFormat, traceDir           string
	traceRing                               int
	pprofOn                                 bool
	profileDir                              string
	profileInterval                         time.Duration
}

func run(cfg config) error {
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, level, cfg.logFormat)
	if err != nil {
		return err
	}

	pols, err := engarde.ParsePolicies(cfg.policies)
	if err != nil {
		return err
	}
	version := engarde.SGXv2
	if cfg.sgxv1 {
		version = engarde.SGXv1
		logger.Warn("SGXv1 mode; W^X is enforced only in host page tables (paper §3)")
	}

	// A shared counter aggregates per-phase cycle totals across all tenant
	// enclaves; the /statsz snapshot reads from it.
	counter := cycles.NewCounter(cycles.DefaultModel())
	provider, err := engarde.NewProvider(engarde.ProviderConfig{
		Version: version,
		Counter: counter,
	})
	if err != nil {
		return err
	}

	if cfg.keyOut != "" {
		der, err := x509.MarshalPKIXPublicKey(provider.AttestationPublicKey())
		if err != nil {
			return err
		}
		block := pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der})
		if err := os.WriteFile(cfg.keyOut, block, 0o644); err != nil {
			return err
		}
		logger.Info("platform attestation key written", "path", cfg.keyOut)
	}

	expected, err := engarde.ExpectedMeasurement(version, engarde.EnclaveConfig{
		HeapPages: cfg.heapPages, ClientPages: cfg.clientPages,
	})
	if err != nil {
		return err
	}
	logger.Info("EnGarde enclave ready",
		"mrenclave", fmt.Sprintf("%x", expected[:]), "policies", pols.Names())

	// The sink always exists so /tracez serves the recent-session ring even
	// without a trace directory. -trace-ring sizes the ring; zero keeps the
	// default, negative is a configuration mistake worth failing loudly on.
	if cfg.traceRing < 0 {
		return fmt.Errorf("-trace-ring %d: must be >= 0", cfg.traceRing)
	}
	sink, err := obs.NewSink(cfg.traceRing, cfg.traceDir)
	if err != nil {
		return err
	}

	gw, err := gateway.New(gateway.Config{
		Provider:             provider,
		Policies:             pols,
		HeapPages:            cfg.heapPages,
		ClientPages:          cfg.clientPages,
		DisasmWorkers:        cfg.disasmWorkers,
		PolicyWorkers:        cfg.policyWorkers,
		DisableStreaming:     !cfg.streaming,
		MaxConcurrent:        cfg.maxConcurrent,
		QueueDepth:           cfg.queueDepth,
		EnclavePool:          cfg.enclavePool,
		PoolRefillWorkers:    cfg.poolRefillWorkers,
		CacheEntries:         cfg.cacheEntries,
		FnCacheEntries:       cfg.fnCacheEntries,
		FnCachePath:          cfg.fnCachePath,
		FnCacheReprobe:       cfg.fnCacheReprobe,
		FnCachePeers:         splitPeers(cfg.fnCachePeers),
		FnCacheRemoteTimeout: cfg.fnCacheRemoteTimeout,
		LoseEnclaveEvery:     cfg.loseEnclaveEvery,
		IdleTimeout:          cfg.idleTimeout,
		SessionBudget:        cfg.sessionBudget,
		Counter:              counter,
		Logger:               logger,
		TraceSink:            sink,
		OnServed: func(conn net.Conn, _ *engarde.Enclave, rep *engarde.Report, err error) {
			// The gateway already logged the session (with its trace ID);
			// this adds the verdict detail only a compliant report carries.
			if err == nil && rep.Compliant {
				logger.Info("tenant provisioned",
					"remote", connString(conn), "cache_hit", rep.CacheHit,
					"insts", rep.NumInsts, "exec_pages", len(rep.ExecPages))
			}
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	logger.Info("serving", "addr", ln.Addr().String())

	var statsSrv *http.Server
	if cfg.statsAddr != "" {
		statsLn, err := net.Listen("tcp", cfg.statsAddr)
		if err != nil {
			return fmt.Errorf("stats listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/statsz", gw.StatsHandler())
		mux.Handle("/metricsz", gw.MetricsHandler())
		mux.Handle("/tracez", sink.Handler())
		mux.Handle("/healthz", gw.HealthzHandler())
		mux.Handle("/readyz", gw.ReadyzHandler())
		mux.Handle("/memoz/", gw.FnMemoHandler())
		if cfg.pprofOn {
			obs.MountPprof(mux)
			logger.Info("pprof exposed", "url", fmt.Sprintf("http://%s/debug/pprof/", statsLn.Addr()))
		}
		statsSrv = &http.Server{Handler: mux}
		go func() { _ = statsSrv.Serve(statsLn) }()
		logger.Info("telemetry endpoints up",
			"statsz", fmt.Sprintf("http://%s/statsz", statsLn.Addr()),
			"metricsz", fmt.Sprintf("http://%s/metricsz", statsLn.Addr()),
			"tracez", fmt.Sprintf("http://%s/tracez", statsLn.Addr()),
			"readyz", fmt.Sprintf("http://%s/readyz", statsLn.Addr()))
	}

	var profiler *obs.Profiler
	if cfg.profileDir != "" {
		profiler = &obs.Profiler{
			Dir: cfg.profileDir, Interval: cfg.profileInterval, Sink: sink,
			Logf: func(format string, args ...any) {
				logger.Warn(fmt.Sprintf(format, args...))
			},
		}
		if err := profiler.Start(); err != nil {
			return fmt.Errorf("profiler: %w", err)
		}
		logger.Info("continuous profiling", "dir", cfg.profileDir)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(context.Background(), ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var result error
	select {
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(),
			"timeout", cfg.drainTimeout.String(), "hint", "signal again to force")
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		go func() {
			<-sigs
			cancel() // second signal: stop waiting, force-close sessions
		}()
		result = gw.Shutdown(ctx)
		cancel()
		<-serveErr
	case err := <-serveErr:
		// Listener died underneath us; still drain what was admitted.
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		if serr := gw.Shutdown(ctx); err == nil {
			err = serr
		}
		cancel()
		result = err
	}

	if profiler != nil {
		profiler.Stop()
	}
	if statsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = statsSrv.Shutdown(ctx)
		cancel()
	}

	s := gw.Stats()
	logger.Info("shutdown complete",
		"served", s.Served, "compliant", s.Compliant,
		"non_compliant", s.NonCompliant, "errors", s.Errors,
		"cache_hit_rate", fmt.Sprintf("%.2f", s.CacheHitRate))
	return result
}

// splitPeers parses the comma-separated -fn-cache-peers list, dropping
// empty elements so a trailing comma is harmless.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func connString(conn net.Conn) string {
	if addr := conn.RemoteAddr(); addr != nil {
		return addr.String()
	}
	return "<unknown>"
}
