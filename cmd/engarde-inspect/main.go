// Command engarde-inspect runs EnGarde's static pipeline over an ELF file
// offline — no enclave, no provider. The paper notes that "the client can
// also use EnGarde to independently verify policy compliance of the
// enclave code that it wants to provision" (§3); this tool is that
// pre-flight check, and also a handy disassembler for generated binaries.
//
// Usage:
//
//	engarde-inspect -binary app.elf -policies stack-protector,ifcc
//	engarde-inspect -binary app.elf -disasm | head      # instruction dump
//	engarde-inspect -binary app.elf -symbols            # symbol table
package main

import (
	"flag"
	"fmt"
	"os"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/nacl"
	"engarde/internal/policy"
	"engarde/internal/symtab"
)

func main() {
	binPath := flag.String("binary", "", "ELF64 PIE executable to inspect")
	policyList := flag.String("policies", "", "comma-separated policies to check (musl, musl-sp, stack-protector, ifcc, no-forbidden, asan)")
	disasm := flag.Bool("disasm", false, "dump the disassembly")
	symbols := flag.Bool("symbols", false, "dump the symbol hash table")
	flag.Parse()

	if err := run(*binPath, *policyList, *disasm, *symbols); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-inspect:", err)
		os.Exit(1)
	}
}

func run(binPath, policyList string, disasm, symbols bool) error {
	if binPath == "" {
		return fmt.Errorf("-binary is required")
	}
	image, err := os.ReadFile(binPath)
	if err != nil {
		return err
	}

	// The same pipeline EnGarde's core runs, sans enclave.
	f, err := elf64.Parse(image)
	if err != nil {
		return fmt.Errorf("REJECT (malformed): %w", err)
	}
	if err := f.VerifyPIE(); err != nil {
		return fmt.Errorf("REJECT: %w", err)
	}
	tab, err := symtab.FromELF(f)
	if err != nil {
		return fmt.Errorf("REJECT (symbols): %w", err)
	}
	texts := f.TextSections()
	if len(texts) != 1 {
		return fmt.Errorf("REJECT: %d text sections", len(texts))
	}
	text := texts[0]

	counter := cycles.NewCounter(cycles.DefaultModel())
	prog, err := nacl.Validate(text.Data, text.Addr, f.Header.Entry, tab, counter)
	if err != nil {
		return fmt.Errorf("REJECT (disassembly): %w", err)
	}

	fmt.Printf("%s: ELF64 PIE, entry %#x\n", binPath, f.Header.Entry)
	fmt.Printf("  .text        %d bytes, %d instructions (all NaCl constraints hold)\n",
		len(text.Data), len(prog.Insts))
	fmt.Printf("  functions    %d\n", tab.Len())
	if relas, err := f.Relocations(); err == nil {
		fmt.Printf("  relocations  %d\n", len(relas))
	}

	if symbols {
		for _, fn := range tab.Functions() {
			fmt.Printf("  %#08x %6d %s\n", fn.Addr, fn.Size, fn.Name)
		}
	}
	if disasm {
		for i := range prog.Insts {
			in := &prog.Insts[i]
			fmt.Printf("  %#08x: %-24x %s\n", in.Addr, in.Raw, in.String())
		}
	}

	if policyList != "" {
		set, err := engarde.ParsePolicies(policyList)
		if err != nil {
			return err
		}
		ctx := &policy.Context{Program: prog, Symbols: tab, Counter: counter}
		if err := set.Check(ctx); err != nil {
			fmt.Printf("  policy       VIOLATION: %v\n", err)
			return fmt.Errorf("content is NOT policy compliant")
		}
		fmt.Printf("  policy       compliant with %v\n", set.Names())
		fmt.Printf("  check cost   %d cycles (%.1f ms at 3.5 GHz)\n",
			counter.Cycles(cycles.PhasePolicy),
			cycles.Milliseconds(counter.Cycles(cycles.PhasePolicy)))
	}
	return nil
}
