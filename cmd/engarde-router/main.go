// Command engarde-router is the fleet front door: an L4 proxy that spreads
// provisioning sessions across a pool of engarde-gatewayd backends.
//
// Routing is digest-affine. A client that sends the plaintext RouteHello
// preamble (engarde-client -announce) is routed to the consistent-hash
// ring owner of its image digest, so repeat provisions of the same image
// land on the gatewayd whose verdict and function-result caches are
// already warm. Anonymous clients — and announced clients whose owner is
// down — fall back to the least-loaded healthy backend. The router never
// joins the enclave protocol: the secure channel's session key is wrapped
// to the backend enclave, so the router can only splice bytes.
//
// Usage:
//
//	engarde-router -listen 127.0.0.1:7700 \
//	               -backend a=127.0.0.1:7779,http://127.0.0.1:7780 \
//	               -backend b=127.0.0.1:7789,http://127.0.0.1:7790 \
//	               -tenant-rate 50 -tenant-burst 100 \
//	               -stats-addr 127.0.0.1:7701
//
// Each -backend is name=addr[,adminURL]. The admin URL, when given, is
// probed at <adminURL>/readyz every -health-interval; a 503 (a draining
// gatewayd) marks the backend down for -markdown-cooldown. Saturated
// backends answer sessions with a Busy verdict carrying a Retry-After
// hint; the router forwards that hint to shed clients so fleet-wide
// backoff matches what the saturated backend asked for.
//
// The stats address serves /statsz, /metricsz, /healthz, /readyz, /tracez
// (recent route traces: peek, dial, splice, failover spans), and /fleetz —
// the fleet aggregation view. /fleetz scrapes every backend's admin URL on
// a cadence (-fleet-interval), merges the latency histograms into
// fleet-level quantiles, derives an SLO/error-budget block, and serves
// JSON (default) or a backend-labeled merged Prometheus exposition
// (?format=prom). -pprof and -profile-dir add live and continuous
// profiling, same as engarde-gatewayd.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, /readyz flips to
// 503, in-flight splices finish (up to -drain-timeout), and new arrivals
// are shed with a Busy verdict. A second signal force-closes connections.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"engarde/internal/cluster"
	"engarde/internal/obs"
	"engarde/internal/obs/fleet"
)

func main() {
	var backends []cluster.Backend
	flag.Func("backend", "backend as name=addr[,adminURL]; repeat per backend", func(s string) error {
		b, err := parseBackend(s)
		if err != nil {
			return err
		}
		backends = append(backends, b)
		return nil
	})
	var (
		listen           = flag.String("listen", "127.0.0.1:7700", "address to accept provisioning sessions on")
		vnodes           = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per backend on the hash ring")
		peekTimeout      = flag.Duration("peek-timeout", cluster.DefaultPeekTimeout, "how long to wait for a client's routing preamble before least-loaded fallback")
		dialTimeout      = flag.Duration("dial-timeout", cluster.DefaultDialTimeout, "per-backend dial deadline")
		retryAfter       = flag.Duration("retry-after", 0, "Retry-After hint for sheds with no backend hint to forward (0 = gateway default)")
		healthInterval   = flag.Duration("health-interval", cluster.DefaultHealthInterval, "period of the background /readyz probe of each backend admin URL (negative disables)")
		probeTimeout     = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "deadline for one /readyz probe; a wedged backend costs one timeout, never the prober loop")
		markdownCooldown = flag.Duration("markdown-cooldown", cluster.DefaultMarkdownCooldown, "how long a failed backend stays out of rotation")
		tenantRate       = flag.Float64("tenant-rate", 0, "per-tenant admitted sessions per second (0 disables quotas)")
		tenantBurst      = flag.Int("tenant-burst", 0, "per-tenant burst size (0 = ceil(rate), min 1)")
		drainTimeout     = flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight sessions; expiring it exits non-zero")
		statsAddr        = flag.String("stats-addr", "", "serve /statsz, /metricsz, /healthz, /readyz, /tracez, /fleetz at this address (empty disables)")
		fleetInterval    = flag.Duration("fleet-interval", 0, "cadence of the /fleetz backend scrape (0 = default 5s)")
		availTarget      = flag.Float64("availability-target", 0, "fleet availability SLO for the /fleetz error-budget block (0 = default 0.999)")

		logLevel  = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		logFormat = flag.String("log-format", "text", "log record format (text, json)")
		traceDir  = flag.String("trace-dir", "", "write every route's trace here: traces.jsonl plus one Chrome trace_event file per route (empty = in-memory /tracez only)")
		traceRing = flag.Int("trace-ring", 0, "recent route traces kept in memory for /tracez (0 = default, negative rejected)")

		pprofOn         = flag.Bool("pprof", false, "expose /debug/pprof/ on the stats address (opt-in: profiles are operator telemetry)")
		profileDir      = flag.String("profile-dir", "", "capture periodic CPU and heap profiles into this directory (empty disables)")
		profileInterval = flag.Duration("profile-interval", 0, "period between profile captures (0 = default 60s)")
	)
	flag.Parse()

	if err := run(backends, routerFlags{
		listen: *listen, vnodes: *vnodes,
		peekTimeout: *peekTimeout, dialTimeout: *dialTimeout,
		retryAfter: *retryAfter, healthInterval: *healthInterval,
		probeTimeout:     *probeTimeout,
		markdownCooldown: *markdownCooldown,
		tenantRate:       *tenantRate, tenantBurst: *tenantBurst,
		drainTimeout: *drainTimeout, statsAddr: *statsAddr,
		fleetInterval: *fleetInterval, availTarget: *availTarget,
		logLevel: *logLevel, logFormat: *logFormat,
		traceDir: *traceDir, traceRing: *traceRing,
		pprofOn: *pprofOn, profileDir: *profileDir, profileInterval: *profileInterval,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-router:", err)
		os.Exit(1)
	}
}

type routerFlags struct {
	listen                   string
	vnodes                   int
	peekTimeout, dialTimeout time.Duration
	retryAfter               time.Duration
	healthInterval           time.Duration
	probeTimeout             time.Duration
	markdownCooldown         time.Duration
	tenantRate               float64
	tenantBurst              int
	drainTimeout             time.Duration
	statsAddr                string
	fleetInterval            time.Duration
	availTarget              float64
	logLevel, logFormat      string
	traceDir                 string
	traceRing                int
	pprofOn                  bool
	profileDir               string
	profileInterval          time.Duration
}

// parseBackend decodes one -backend value: name=addr[,adminURL].
func parseBackend(s string) (cluster.Backend, error) {
	name, rest, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return cluster.Backend{}, fmt.Errorf("backend %q: want name=addr[,adminURL]", s)
	}
	addr, admin, _ := strings.Cut(rest, ",")
	if addr == "" {
		return cluster.Backend{}, fmt.Errorf("backend %q: empty address", s)
	}
	return cluster.Backend{Name: name, Addr: addr, AdminURL: strings.TrimRight(admin, "/")}, nil
}

func run(backends []cluster.Backend, cfg routerFlags) error {
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, level, cfg.logFormat)
	if err != nil {
		return err
	}
	if len(backends) == 0 {
		return fmt.Errorf("no backends: pass at least one -backend name=addr[,adminURL]")
	}

	if cfg.traceRing < 0 {
		return fmt.Errorf("-trace-ring %d: must be >= 0", cfg.traceRing)
	}
	sink, err := obs.NewSink(cfg.traceRing, cfg.traceDir)
	if err != nil {
		return err
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:         backends,
		Vnodes:           cfg.vnodes,
		PeekTimeout:      cfg.peekTimeout,
		DialTimeout:      cfg.dialTimeout,
		RetryAfterHint:   cfg.retryAfter,
		HealthInterval:   cfg.healthInterval,
		ProbeTimeout:     cfg.probeTimeout,
		MarkdownCooldown: cfg.markdownCooldown,
		Quota:            cluster.QuotaConfig{Rate: cfg.tenantRate, Burst: cfg.tenantBurst},
		TraceSink:        sink,
		Logf: func(format string, args ...any) {
			logger.Debug(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}
	for _, b := range backends {
		logger.Info("backend registered", "name", b.Name, "addr", b.Addr, "admin", b.AdminURL)
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	logger.Info("routing", "addr", ln.Addr().String(), "backends", len(backends))

	var statsSrv *http.Server
	var agg *fleet.Aggregator
	if cfg.statsAddr != "" {
		statsLn, err := net.Listen("tcp", cfg.statsAddr)
		if err != nil {
			return fmt.Errorf("stats listener: %w", err)
		}
		// Every backend with an admin URL is a fleet scrape target; the
		// router's own registry and trace ring join the view as "router".
		var targets []fleet.Backend
		for _, b := range backends {
			if b.AdminURL == "" {
				continue
			}
			targets = append(targets, fleet.Backend{
				Name:       b.Name,
				MetricsURL: b.AdminURL + "/metricsz",
				TracesURL:  b.AdminURL + "/tracez",
			})
		}
		agg = fleet.New(fleet.Config{
			Backends:           targets,
			Interval:           cfg.fleetInterval,
			AvailabilityTarget: cfg.availTarget,
			Self:               router.Registry(),
			SelfSink:           sink,
			Logf: func(format string, args ...any) {
				logger.Debug(fmt.Sprintf(format, args...))
			},
		})
		agg.Start()
		mux := http.NewServeMux()
		mux.Handle("/statsz", router.StatsHandler())
		mux.Handle("/metricsz", router.MetricsHandler())
		mux.Handle("/healthz", router.HealthzHandler())
		mux.Handle("/readyz", router.ReadyzHandler())
		mux.Handle("/tracez", router.TracezHandler())
		mux.Handle("/fleetz", agg.Handler())
		if cfg.pprofOn {
			obs.MountPprof(mux)
			logger.Info("pprof exposed", "url", fmt.Sprintf("http://%s/debug/pprof/", statsLn.Addr()))
		}
		statsSrv = &http.Server{Handler: mux}
		go func() { _ = statsSrv.Serve(statsLn) }()
		logger.Info("telemetry endpoints up",
			"statsz", fmt.Sprintf("http://%s/statsz", statsLn.Addr()),
			"metricsz", fmt.Sprintf("http://%s/metricsz", statsLn.Addr()),
			"fleetz", fmt.Sprintf("http://%s/fleetz", statsLn.Addr()),
			"tracez", fmt.Sprintf("http://%s/tracez", statsLn.Addr()),
			"readyz", fmt.Sprintf("http://%s/readyz", statsLn.Addr()))
	}

	var profiler *obs.Profiler
	if cfg.profileDir != "" {
		profiler = &obs.Profiler{
			Dir: cfg.profileDir, Interval: cfg.profileInterval, Sink: sink,
			Logf: func(format string, args ...any) {
				logger.Warn(fmt.Sprintf(format, args...))
			},
		}
		if err := profiler.Start(); err != nil {
			return fmt.Errorf("profiler: %w", err)
		}
		logger.Info("continuous profiling", "dir", cfg.profileDir)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- router.Serve(context.Background(), ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var result error
	select {
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(),
			"timeout", cfg.drainTimeout.String(), "hint", "signal again to force")
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		go func() {
			<-sigs
			cancel() // second signal: stop waiting, force-close splices
		}()
		result = router.Shutdown(ctx)
		cancel()
		<-serveErr
	case err := <-serveErr:
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		if serr := router.Shutdown(ctx); err == nil {
			err = serr
		}
		cancel()
		result = err
	}

	if profiler != nil {
		profiler.Stop()
	}
	if agg != nil {
		agg.Stop()
	}
	if statsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = statsSrv.Shutdown(ctx)
		cancel()
	}

	s := router.Stats()
	var sessions, sheds uint64
	for _, b := range s.Backends {
		sessions += b.Sessions
	}
	for _, n := range s.Sheds {
		sheds += n
	}
	logger.Info("shutdown complete",
		"sessions", sessions, "announced", s.Announced, "affine", s.Affine,
		"sheds", sheds, "rebalances", s.Rebalances)
	return result
}
