// Command engarde-client runs the cloud-client side of EnGarde: it
// connects to an engarde-host, verifies the enclave's attestation quote
// against the expected EnGarde measurement, establishes the encrypted
// channel, streams an executable, and prints the verdict.
//
// Usage:
//
//	engarde-client -connect 127.0.0.1:7779 \
//	               -attest-key /tmp/platform.pub \
//	               -binary /tmp/bins/nginx-stackprot.elf
//
// Against an engarde-router fleet, repeat -attest-key once per backend
// platform key (attestation succeeds if any key verifies the quote) and
// pass -announce so the router can steer the session to the gatewayd
// whose caches are warm for this binary's digest. The announcement is a
// plaintext routing hint — it never weakens attestation, which still runs
// end-to-end against whichever backend answers.
//
// The client's executable is never visible to the provider in plaintext:
// it is encrypted under a fresh AES-256 key that only the attested enclave
// can unwrap.
package main

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"engarde"
	"engarde/internal/obs"
)

func main() {
	var keyPaths []string
	flag.Func("attest-key", "platform attestation public key (PEM), as written by engarde-host; repeat once per fleet backend", func(s string) error {
		keyPaths = append(keyPaths, s)
		return nil
	})
	connect := flag.String("connect", "127.0.0.1:7779", "engarde-host or engarde-router address")
	binPath := flag.String("binary", "", "ELF64 PIE executable to provision")
	announce := flag.Bool("announce", false, "send the plaintext routing preamble (image digest + tenant) so an engarde-router can pick the digest-affine backend")
	tenant := flag.String("tenant", "", "tenant label for the routing preamble (router quota accounting; implies nothing about identity)")
	heapPages := flag.Int("heap-pages", 5000, "expected enclave heap pages (must match the host)")
	clientPages := flag.Int("client-pages", 1024, "expected enclave client-region pages (must match the host)")
	retries := flag.Int("retries", engarde.DefaultRetryAttempts, "provisioning attempts before giving up (busy gateways and transient errors are retried; attestation failures are not)")
	retryBase := flag.Duration("retry-base", engarde.DefaultRetryBaseDelay, "base delay for exponential backoff between attempts")
	traceDir := flag.String("trace-dir", "", "originate a distributed trace and write the client's spans here (traces.jsonl + Chrome trace_event); the trace ID propagates to router and gateway")
	logLevel := flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log record format (text, json)")
	flag.Parse()

	if err := run(clientFlags{
		connect: *connect, keyPaths: keyPaths, binPath: *binPath,
		announce: *announce, tenant: *tenant,
		heapPages: *heapPages, clientPages: *clientPages,
		retries: *retries, retryBase: *retryBase,
		traceDir: *traceDir,
		logLevel: *logLevel, logFormat: *logFormat,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-client:", err)
		os.Exit(1)
	}
}

type clientFlags struct {
	connect  string
	keyPaths []string
	binPath  string
	announce bool
	tenant   string

	heapPages, clientPages int
	retries                int
	retryBase              time.Duration
	traceDir               string
	logLevel, logFormat    string
}

func run(cfg clientFlags) error {
	level, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, level, cfg.logFormat)
	if err != nil {
		return err
	}
	if cfg.binPath == "" {
		return errors.New("-binary is required")
	}
	if len(cfg.keyPaths) == 0 {
		return errors.New("-attest-key is required")
	}
	image, err := os.ReadFile(cfg.binPath)
	if err != nil {
		return err
	}
	var keys []*rsa.PublicKey
	for _, path := range cfg.keyPaths {
		key, err := readPlatformKey(path)
		if err != nil {
			return err
		}
		keys = append(keys, key)
	}

	// The client computes the expected EnGarde measurement itself, from
	// the EnGarde code both parties inspected (paper §3).
	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2, engarde.EnclaveConfig{
		HeapPages: cfg.heapPages, ClientPages: cfg.clientPages,
	})
	if err != nil {
		return err
	}
	logger.Info("expecting EnGarde measurement",
		"mrenclave_prefix", fmt.Sprintf("%x", expected[:8]))

	client := &engarde.Client{
		Expected:     expected,
		PlatformKey:  keys[0],
		PlatformKeys: keys[1:],
	}
	if cfg.announce || cfg.tenant != "" {
		// ImageDigest is filled in by the client from the binary itself.
		client.Route = &engarde.RouteHello{Tenant: cfg.tenant}
	}

	// -trace-dir makes this client the origin of a distributed trace: the
	// random 128-bit trace ID is carried to the router (plaintext preamble)
	// and the gateway (authenticated session-open field), so one ID joins
	// all three processes' span output.
	var tr *obs.Trace
	var sink *obs.Sink
	if cfg.traceDir != "" {
		sink, err = obs.NewSink(0, cfg.traceDir)
		if err != nil {
			return err
		}
		tr = obs.NewTrace("provision", nil)
	}
	policy := engarde.RetryPolicy{
		Attempts:  cfg.retries,
		BaseDelay: cfg.retryBase,
		Trace:     tr,
		OnRetry: func(attempt int, delay time.Duration, cause error) {
			logger.Warn("attempt failed; retrying",
				"attempt", attempt, "delay", delay.String(), "err", cause)
		},
	}
	verdict, err := client.ProvisionRetry(
		func() (net.Conn, error) { return net.Dial("tcp", cfg.connect) },
		image,
		policy)
	if tr != nil {
		tr.Finish()
		sink.Record(tr)
		logger.Info("trace recorded", "trace_id", tr.ID(), "dir", cfg.traceDir)
	}
	if err != nil {
		return err
	}
	if verdict.Compliant {
		fmt.Printf("COMPLIANT: %s accepted (%d bytes)\n", cfg.binPath, len(image))
		return nil
	}
	fmt.Printf("REJECTED: %s\n", verdict.Reason)
	return errors.New("content rejected by policy")
}

func readPlatformKey(path string) (*rsa.PublicKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(raw)
	if block == nil {
		return nil, fmt.Errorf("no PEM block in %s", path)
	}
	pubAny, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	pub, ok := pubAny.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("attestation key is not RSA")
	}
	return pub, nil
}
