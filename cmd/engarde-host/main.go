// Command engarde-host runs the cloud-provider side of EnGarde: it boots
// the (emulated) SGX platform, exports the platform attestation key, and
// serves the provisioning protocol through the gateway serving layer — one
// fresh EnGarde enclave per connection, bounded concurrency, verdict
// caching.
//
// Usage:
//
//	engarde-host -listen 127.0.0.1:7779 \
//	             -policies stack-protector,ifcc \
//	             -attest-key-out /tmp/platform.pub
//
// Clients connect with engarde-client, verify the enclave's attestation
// quote against the expected EnGarde measurement, and stream their
// executables over the encrypted channel. The host learns only the
// verdict and the executable-page list.
//
// For the full production flag surface (admission control, cache sizing,
// stats endpoint) see cmd/engarde-gatewayd; this command keeps the
// paper-sized demo interface.
package main

import (
	"context"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"engarde"
	"engarde/internal/gateway"
	"engarde/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7779", "address to serve the provisioning protocol on")
	policies := flag.String("policies", "stack-protector", "comma-separated policy list (musl, musl-sp, stack-protector, ifcc, no-forbidden, asan)")
	keyOut := flag.String("attest-key-out", "", "write the platform attestation public key (PEM) here")
	heapPages := flag.Int("heap-pages", 5000, "enclave heap pages (paper default 5000)")
	clientPages := flag.Int("client-pages", 1024, "enclave client-region pages")
	sgxv1 := flag.Bool("sgxv1", false, "emulate SGX version 1 (insecure; for the AsyncShock demo)")
	once := flag.Bool("once", false, "serve a single connection and exit; non-zero status if provisioning fails or is rejected")
	logLevel := flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
	logFormat := flag.String("log-format", "text", "log record format (text, json)")
	flag.Parse()

	if err := run(*listen, *policies, *keyOut, *heapPages, *clientPages, *sgxv1, *once, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-host:", err)
		os.Exit(1)
	}
}

func run(listen, policyList, keyOut string, heapPages, clientPages int, sgxv1, once bool, logLevel, logFormat string) error {
	level, err := obs.ParseLevel(logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, level, logFormat)
	if err != nil {
		return err
	}

	pols, err := engarde.ParsePolicies(policyList)
	if err != nil {
		return err
	}
	version := engarde.SGXv2
	if sgxv1 {
		version = engarde.SGXv1
		logger.Warn("SGXv1 mode; W^X is enforced only in host page tables (paper §3)")
	}
	provider, err := engarde.NewProvider(engarde.ProviderConfig{Version: version})
	if err != nil {
		return err
	}

	if keyOut != "" {
		der, err := x509.MarshalPKIXPublicKey(provider.AttestationPublicKey())
		if err != nil {
			return err
		}
		block := pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der})
		if err := os.WriteFile(keyOut, block, 0o644); err != nil {
			return err
		}
		logger.Info("platform attestation key written", "path", keyOut)
	}

	expected, err := engarde.ExpectedMeasurement(version, engarde.EnclaveConfig{
		HeapPages: heapPages, ClientPages: clientPages,
	})
	if err != nil {
		return err
	}
	logger.Info("EnGarde enclave ready",
		"mrenclave", fmt.Sprintf("%x", expected[:]), "policies", pols.Names())

	// -once delivers the first session's outcome here so the process can
	// exit with it instead of swallowing failures (exit status matters to
	// scripts driving the demo).
	onceResult := make(chan error, 1)
	gw, err := gateway.New(gateway.Config{
		Provider:    provider,
		Policies:    pols,
		HeapPages:   heapPages,
		ClientPages: clientPages,
		Logger:      logger,
		OnServed: func(conn net.Conn, encl *engarde.Enclave, rep *engarde.Report, err error) {
			res := report(conn, encl, rep, err)
			if once {
				select {
				case onceResult <- res:
				default:
				}
			}
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	logger.Info("serving", "addr", ln.Addr().String())

	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(context.Background(), ln) }()

	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		return gw.Shutdown(ctx)
	}
	if once {
		res := <-onceResult
		if err := shutdown(); err != nil && res == nil {
			res = err
		}
		<-serveErr
		return res
	}
	err = <-serveErr
	if serr := shutdown(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// report prints one session's outcome and returns the error -once should
// exit with (nil only for a compliant provisioning).
func report(conn net.Conn, encl *engarde.Enclave, rep *engarde.Report, err error) error {
	fmt.Println("connection from", conn.RemoteAddr())
	if err != nil {
		fmt.Fprintln(os.Stderr, "  provisioning:", err)
		return err
	}
	if rep.Compliant {
		cached := ""
		if rep.CacheHit {
			cached = " (verdict cache hit)"
		}
		fmt.Printf("  COMPLIANT%s: %d instructions checked, %d executable pages, entry %#x\n",
			cached, rep.NumInsts, len(rep.ExecPages), rep.Entry)
		if _, err := encl.Enter(); err != nil {
			fmt.Fprintln(os.Stderr, "  entering enclave:", err)
			return err
		}
		fmt.Println("  control transferred to client code")
	} else {
		fmt.Printf("  REJECTED: %s\n", rep.Reason)
	}
	for phase, cyc := range rep.Phases {
		fmt.Printf("  %-24s %15d cycles\n", phase.String()+":", cyc)
	}
	if !rep.Compliant {
		return fmt.Errorf("provisioning rejected: %s", rep.Reason)
	}
	return nil
}
