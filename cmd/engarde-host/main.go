// Command engarde-host runs the cloud-provider side of EnGarde: it boots
// the (emulated) SGX platform, exports the platform attestation key, and
// serves the provisioning protocol — one fresh EnGarde enclave per
// connection.
//
// Usage:
//
//	engarde-host -listen 127.0.0.1:7779 \
//	             -policies stack-protector,ifcc \
//	             -attest-key-out /tmp/platform.pub
//
// Clients connect with engarde-client, verify the enclave's attestation
// quote against the expected EnGarde measurement, and stream their
// executables over the encrypted channel. The host learns only the
// verdict and the executable-page list.
package main

import (
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"net"
	"os"

	"engarde"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7779", "address to serve the provisioning protocol on")
	policies := flag.String("policies", "stack-protector", "comma-separated policy list (musl, musl-sp, stack-protector, ifcc, no-forbidden, asan)")
	keyOut := flag.String("attest-key-out", "", "write the platform attestation public key (PEM) here")
	heapPages := flag.Int("heap-pages", 5000, "enclave heap pages (paper default 5000)")
	clientPages := flag.Int("client-pages", 1024, "enclave client-region pages")
	sgxv1 := flag.Bool("sgxv1", false, "emulate SGX version 1 (insecure; for the AsyncShock demo)")
	once := flag.Bool("once", false, "serve a single connection and exit")
	flag.Parse()

	if err := run(*listen, *policies, *keyOut, *heapPages, *clientPages, *sgxv1, *once); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-host:", err)
		os.Exit(1)
	}
}

func run(listen, policyList, keyOut string, heapPages, clientPages int, sgxv1, once bool) error {
	pols, err := engarde.ParsePolicies(policyList)
	if err != nil {
		return err
	}
	version := engarde.SGXv2
	if sgxv1 {
		version = engarde.SGXv1
		fmt.Println("WARNING: SGXv1 mode; W^X is enforced only in host page tables (paper §3)")
	}
	provider, err := engarde.NewProvider(engarde.ProviderConfig{Version: version})
	if err != nil {
		return err
	}

	if keyOut != "" {
		der, err := x509.MarshalPKIXPublicKey(provider.AttestationPublicKey())
		if err != nil {
			return err
		}
		block := pem.EncodeToMemory(&pem.Block{Type: "PUBLIC KEY", Bytes: der})
		if err := os.WriteFile(keyOut, block, 0o644); err != nil {
			return err
		}
		fmt.Println("platform attestation key written to", keyOut)
	}

	expected, err := engarde.ExpectedMeasurement(version, engarde.EnclaveConfig{
		HeapPages: heapPages, ClientPages: clientPages,
	})
	if err != nil {
		return err
	}
	fmt.Printf("EnGarde enclave measurement: %x\n", expected[:])
	fmt.Printf("policies: %v\n", pols.Names())

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Println("serving on", ln.Addr())

	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if once {
			serve(provider, pols, heapPages, clientPages, conn)
			return nil
		}
		// Each tenant gets its own enclave; connections are independent.
		go serve(provider, pols, heapPages, clientPages, conn)
	}
}

func serve(provider *engarde.Provider, pols *engarde.PolicySet, heapPages, clientPages int, conn net.Conn) {
	defer conn.Close()
	fmt.Println("connection from", conn.RemoteAddr())

	encl, err := provider.CreateEnclave(engarde.EnclaveConfig{
		Policies: pols, HeapPages: heapPages, ClientPages: clientPages,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "  creating enclave:", err)
		return
	}
	rep, err := encl.ServeProvision(conn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "  provisioning:", err)
		return
	}
	if rep.Compliant {
		fmt.Printf("  COMPLIANT: %d instructions checked, %d executable pages, entry %#x\n",
			rep.NumInsts, len(rep.ExecPages), rep.Entry)
		if _, err := encl.Enter(); err != nil {
			fmt.Fprintln(os.Stderr, "  entering enclave:", err)
			return
		}
		fmt.Println("  control transferred to client code")
	} else {
		fmt.Printf("  REJECTED: %s\n", rep.Reason)
	}
	for phase, cyc := range rep.Phases {
		fmt.Printf("  %-24s %15d cycles\n", phase.String()+":", cyc)
	}
}
