// Command engarde-genbin builds the synthetic benchmark executables the
// evaluation uses and writes them as ELF64 PIE files.
//
// Usage:
//
//	engarde-genbin -out /tmp/bins                 # all 7 benchmarks, plain
//	engarde-genbin -out /tmp/bins -variant ifcc   # IFCC-instrumented
//	engarde-genbin -out /tmp/bins -bench Nginx -variant stackprot
//
// The produced files are real ELF binaries (readable with readelf/objdump)
// that engarde-client can provision into an EnGarde enclave.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"engarde/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	benchName := flag.String("bench", "", "single benchmark (default: all)")
	variant := flag.String("variant", "plain", "build variant: plain, stackprot or ifcc")
	flag.Parse()

	if err := run(*out, *benchName, *variant); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-genbin:", err)
		os.Exit(1)
	}
}

func run(out, benchName, variantName string) error {
	var v workload.Variant
	switch variantName {
	case "plain":
		v = workload.Plain
	case "stackprot":
		v = workload.StackProtected
	case "ifcc":
		v = workload.IFCCProtected
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}

	specs := workload.Specs()
	if benchName != "" {
		spec, err := workload.ByName(benchName)
		if err != nil {
			return err
		}
		specs = []workload.Spec{spec}
	}

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, spec := range specs {
		bin, err := spec.Build(v)
		if err != nil {
			return err
		}
		name := strings.ToLower(strings.ReplaceAll(spec.Name, ".", "_")) + "-" + variantName + ".elf"
		path := filepath.Join(out, name)
		if err := os.WriteFile(path, bin.Image, 0o755); err != nil {
			return err
		}
		fmt.Printf("%-40s %8d instructions, %7d bytes text, %d relocs\n",
			path, bin.NumInsts, bin.TextSize, bin.NumRelocs)
	}
	return nil
}
