// Command engarde-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	engarde-bench -table fig3          # one table
//	engarde-bench -table all           # Figures 2-5
//	engarde-bench -table fig4 -bench 401.bzip2
//
// Cycle figures follow the paper's methodology (§5): SGX instructions cost
// 10K cycles; other work is metered in calibrated units (see DESIGN.md and
// EXPERIMENTS.md). The right-hand column reports measured/paper ratios.
package main

import (
	"flag"
	"fmt"
	"os"

	"engarde/internal/bench"
	"engarde/internal/cycles"
	"engarde/internal/workload"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: fig2, fig3, fig4, fig5, scaling or all")
	benchName := flag.String("bench", "", "restrict to one benchmark (e.g. Nginx)")
	repoRoot := flag.String("repo", ".", "repository root (for the fig2 LOC count)")
	flag.Parse()

	if err := run(*table, *benchName, *repoRoot); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-bench:", err)
		os.Exit(1)
	}
}

func run(table, benchName, repoRoot string) error {
	experiments := map[string]bench.Experiment{
		"fig3": bench.Fig3,
		"fig4": bench.Fig4,
		"fig5": bench.Fig5,
	}

	printFig2 := table == "fig2" || table == "all"
	if printFig2 {
		out, err := bench.FormatFig2(repoRoot)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}

	if table == "scaling" || table == "all" {
		points, err := bench.RunScaling([]int{25, 50, 100, 200, 400})
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatScaling(points))
		sizes, err := bench.RunSizeScaling()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatSizeScaling(sizes))
		if table == "scaling" {
			return nil
		}
	}

	var order []string
	if table == "all" {
		order = []string{"fig3", "fig4", "fig5"}
	} else if _, ok := experiments[table]; ok {
		order = []string{table}
	} else if table != "fig2" {
		return fmt.Errorf("unknown table %q", table)
	}

	for _, name := range order {
		exp := experiments[name]
		var rows []bench.Row
		if benchName != "" {
			spec, err := workload.ByName(benchName)
			if err != nil {
				return err
			}
			row, err := bench.Run(exp, spec)
			if err != nil {
				return err
			}
			rows = []bench.Row{row}
		} else {
			var err error
			rows, err = bench.RunAll(exp)
			if err != nil {
				return err
			}
		}
		fmt.Println(bench.FormatTable(exp, rows))
		// The paper's worked example: convert a cycle figure to wall time
		// at the reference 3.5 GHz clock.
		for _, r := range rows {
			fmt.Printf("  %-10s disassembly ≈ %.1f ms, policy ≈ %.1f ms at 3.5 GHz\n",
				r.Benchmark, cycles.Milliseconds(r.Disassembly), cycles.Milliseconds(r.PolicyChecking))
		}
		fmt.Println()
	}
	return nil
}
