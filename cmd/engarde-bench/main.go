// Command engarde-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	engarde-bench -table fig3          # one table
//	engarde-bench -table all           # Figures 2-5
//	engarde-bench -table fig4 -bench 401.bzip2
//
// Cycle figures follow the paper's methodology (§5): SGX instructions cost
// 10K cycles; other work is metered in calibrated units (see DESIGN.md and
// EXPERIMENTS.md). The right-hand column reports measured/paper ratios.
//
// -json switches to a machine-readable report covering the warm-path
// provisioning experiment (cold vs function-result-cache-warmed) and
// gateway throughput; BENCH_3.json in the repo root is one such run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"engarde/internal/bench"
	"engarde/internal/cycles"
	"engarde/internal/gateway"
	"engarde/internal/workload"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: fig2, fig3, fig4, fig5, scaling or all")
	benchName := flag.String("bench", "", "restrict to one benchmark (e.g. Nginx)")
	repoRoot := flag.String("repo", ".", "repository root (for the fig2 LOC count)")
	jsonOut := flag.Bool("json", false, "emit the warm-path and gateway-throughput report as JSON instead of tables")
	flag.Parse()

	if *jsonOut {
		if err := runJSON(); err != nil {
			fmt.Fprintln(os.Stderr, "engarde-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *benchName, *repoRoot); err != nil {
		fmt.Fprintln(os.Stderr, "engarde-bench:", err)
		os.Exit(1)
	}
}

// gatewayPoint is one gateway load run in the JSON report. Wall-clock
// throughput on shared CI hardware is noisy, so the report leads with the
// deterministic fields (sessions, verdicts, cache behaviour) and carries
// sessions/s only as an indicative figure.
type gatewayPoint struct {
	Sessions       int     `json:"sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	CacheHits      uint64  `json:"verdict_cache_hits"`
	FnCacheHits    uint64  `json:"fn_cache_hits,omitempty"`
	FnCacheMisses  uint64  `json:"fn_cache_misses,omitempty"`
	// Pool carries the enclave warm-pool counters for pooled points: warm
	// vs cold checkouts plus the amortized snapshot/clone cycle economics
	// that pooling keeps off individual session spans.
	Pool *gateway.PoolStats `json:"pool,omitempty"`
	// Latency is the client-observed per-session distribution (wall-clock,
	// noisy on shared hardware; quantiles are log₂-bucket upper bounds).
	Latency bench.LatencyQuantiles `json:"latency"`
	// FirstByteToVerdict is the server-side first-byte-to-verdict span
	// distribution — the streaming pipeline's headline metric (BENCH_8).
	FirstByteToVerdict *bench.LatencyQuantiles `json:"first_byte_to_verdict,omitempty"`
	// SpanMillis/SpanCycles total the run's trace spans: wall-clock per
	// span name and cycle-model charges per pipeline phase. The cycle
	// totals are deterministic for a fixed image set and worker count.
	SpanMillis map[string]float64 `json:"span_total_ms,omitempty"`
	SpanCycles map[string]uint64  `json:"span_cycles,omitempty"`
}

// fleetPoint is one router-fronted fleet load run in the JSON report:
// N gatewayd backends behind an engarde-router, sessions announced so
// routing is digest-affine. "cold" points disable the verdict cache, so
// every session runs the full pipeline; "warm" points leave it on, so
// affine repeats hit the ring owner's cache.
type fleetPoint struct {
	Backends       int     `json:"backends"`
	Sessions       int     `json:"sessions"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Announced      uint64  `json:"announced"`
	Affine         uint64  `json:"affine"`
	Rebalances     uint64  `json:"rebalances,omitempty"`
	// PerBackend breaks the run down by backend: sessions spliced, verdict
	// and fn-cache behaviour, peer traffic.
	PerBackend map[string]bench.FleetBackendLoad `json:"per_backend"`
}

// failoverPoint is the fleet-failover load run (BENCH_9): a 3-backend
// fleet with backend 0 crashed a third of the way through the run and
// restarted at two thirds. Completed/dropped partition the sessions;
// failover_latency is the distribution over sessions that lost their
// backend mid-flight and replayed elsewhere — against latency (all
// sessions), it prices what a crash costs a client that survives it.
type failoverPoint struct {
	Backends        int                     `json:"backends"`
	Sessions        int                     `json:"sessions"`
	Completed       uint64                  `json:"completed"`
	Dropped         uint64                  `json:"dropped"`
	SessionsPerSec  float64                 `json:"sessions_per_sec"`
	ClientFailovers uint64                  `json:"client_failovers"`
	RouterFailovers uint64                  `json:"router_failovers"`
	SplicesEvicted  uint64                  `json:"splices_evicted,omitempty"`
	Latency         bench.LatencyQuantiles  `json:"latency"`
	FailoverLatency *bench.LatencyQuantiles `json:"failover_latency,omitempty"`
	// Trace IDs for drill-down: the slowest completed session and every
	// session that survived a failover. Grep a hop's traces.jsonl for one
	// of these to see that session's spans at that hop.
	SlowestTraceID     string   `json:"slowest_trace_id,omitempty"`
	FailedOverTraceIDs []string `json:"failed_over_trace_ids,omitempty"`
}

// jsonReport is the -json output schema.
type jsonReport struct {
	WarmPath *bench.WarmPathResult   `json:"warm_path"`
	Gateway  map[string]gatewayPoint `json:"gateway"`
	// Fleet maps "<backends>-cold" / "<backends>-warm" to fleet load runs
	// (BENCH_6.json's scaling curve).
	Fleet map[string]fleetPoint `json:"fleet,omitempty"`
	// Failover is the mid-run-crash load point (BENCH_9.json).
	Failover *failoverPoint `json:"failover,omitempty"`
}

func runJSON() error {
	// Workers pinned to 1 so the cycle figures are reproducible span cuts
	// (see EXPERIMENTS.md: straddle handling is worker-count-dependent).
	warm, err := bench.RunWarmPath(bench.WarmPathConfig{DisasmWorkers: 1, PolicyWorkers: 1})
	if err != nil {
		return err
	}

	images, err := bench.DistinctImages(4)
	if err != nil {
		return err
	}
	const sessions = 8
	load := func(cfg bench.GatewayLoadConfig) (gatewayPoint, error) {
		if cfg.Sessions == 0 {
			cfg.Sessions = sessions
		}
		if cfg.Clients == 0 {
			cfg.Clients = 2
		}
		res, err := bench.RunGatewayLoad(cfg)
		if err != nil {
			return gatewayPoint{}, err
		}
		pt := gatewayPoint{
			Sessions:           cfg.Sessions,
			SessionsPerSec:     res.SessionsPerSec,
			CacheHits:          res.Stats.CacheHits,
			Latency:            res.Latency,
			FirstByteToVerdict: res.FirstByteToVerdict,
			SpanMillis:         res.SpanMillis,
			SpanCycles:         res.SpanCycles,
		}
		if res.Stats.FnCache != nil {
			pt.FnCacheHits = res.Stats.FnCache.Hits
			pt.FnCacheMisses = res.Stats.FnCache.Misses
		}
		pt.Pool = res.Stats.Pool
		return pt, nil
	}

	rep := jsonReport{WarmPath: warm, Gateway: map[string]gatewayPoint{}, Fleet: map[string]fleetPoint{}}
	for name, cfg := range map[string]bench.GatewayLoadConfig{
		// The four BENCH_7-era points stay on the buffered path so their
		// figures remain comparable release over release.
		"cold":      {Images: images, CacheEntries: -1, DisableStreaming: true},
		"cache-hit": {Images: images[:1], DisableStreaming: true},
		"fn-warm":   {Images: images, CacheEntries: -1, FnCacheEntries: gateway.DefaultCacheEntries * 16, DisableStreaming: true},
		// "pooled" is "cold" with the enclave warm pool on: every session
		// still runs the full pipeline, but checks a snapshot-cloned enclave
		// out of the pool instead of paying the measured build — the
		// pool-checkout span replaces create-enclave (BENCH_7). The pool is
		// sized to cover the whole burst (arrival rate × recycle time), so
		// the steady state has zero cold fallbacks.
		"pooled": {Images: images, CacheEntries: -1, EnclavePool: 8, DisableStreaming: true},
	} {
		pt, err := load(cfg)
		if err != nil {
			return fmt.Errorf("gateway load %q: %w", name, err)
		}
		rep.Gateway[name] = pt
	}

	// The BENCH_8 trio: first-byte-to-verdict with the receive buffered
	// ("sequential") vs overlapped with the pipeline ("streaming"), and
	// streaming combined with the warm enclave pool. The transfer arrives
	// over an emulated ~28 Mbit/s uplink in 32 KiB frames — on an unpaced
	// in-memory pipe the whole image lands in microseconds and there is no
	// transfer window for the pipeline to overlap. Images are ≥64 KiB
	// (many frames per transfer), one session at a time so the
	// first-byte-to-verdict distribution is a latency measurement rather
	// than a contention one, and disassembly is sharded 8 ways so chunk
	// decodes launch frame by frame.
	bigImages, err := bench.DistinctImagesSized(4, 1920, 100)
	if err != nil {
		return err
	}
	streamCfg := func(c bench.GatewayLoadConfig) bench.GatewayLoadConfig {
		c.Images = bigImages
		c.CacheEntries = -1
		c.Sessions = 12
		c.Clients = 1
		c.HeapPages = 4800 // ~192k-instruction images need a larger staging heap
		c.DisasmWorkers = 8
		c.BlockSize = 32 * 1024
		c.LinkBytesPerSec = 3_500_000
		return c
	}
	// Overlap needs a second scheduler thread: with GOMAXPROCS=1 the
	// decoder and the receive loop serialize at preemption granularity and
	// the contrast measures the scheduler, not the pipeline. Restored
	// afterwards so the BENCH_7-era points above and the fleet curve below
	// keep their historical execution shape.
	prevProcs := runtime.GOMAXPROCS(0)
	if prevProcs < 2 {
		runtime.GOMAXPROCS(2)
	}
	for name, cfg := range map[string]bench.GatewayLoadConfig{
		"sequential":       streamCfg(bench.GatewayLoadConfig{DisableStreaming: true}),
		"streaming":        streamCfg(bench.GatewayLoadConfig{}),
		"streaming+pooled": streamCfg(bench.GatewayLoadConfig{EnclavePool: 2}),
	} {
		pt, err := load(cfg)
		if err != nil {
			runtime.GOMAXPROCS(prevProcs)
			return fmt.Errorf("gateway load %q: %w", name, err)
		}
		rep.Gateway[name] = pt
	}
	runtime.GOMAXPROCS(prevProcs)

	// Fleet scaling curve: 1/2/4 router-fronted backends, cold (verdict
	// caches off, every session runs the pipeline) vs digest-affine warm
	// (caches on, announced repeats hit the ring owner's cache, backends
	// share fn-memo state over the peer mesh). The workload checks the
	// full four-module policy set over large images, so the cacheable
	// pipeline work dominates the fixed per-session handshake and the
	// warm/cold contrast measures the caches, not connection setup.
	fleetImages, fleetPolicies, fleetHeap, err := bench.FleetBenchWorkload()
	if err != nil {
		return err
	}
	for _, n := range []int{1, 2, 4} {
		for _, mode := range []string{"cold", "warm"} {
			cfg := bench.FleetLoadConfig{
				Backends:  n,
				Images:    fleetImages,
				Sessions:  sessions,
				Clients:   2,
				Announce:  true,
				Tenant:    "bench",
				Policies:  fleetPolicies,
				HeapPages: fleetHeap,
			}
			if mode == "cold" {
				cfg.CacheEntries = -1
			} else {
				cfg.SharedFnCache = true
			}
			res, err := bench.RunFleetLoad(cfg)
			if err != nil {
				return fmt.Errorf("fleet load %d-%s: %w", n, mode, err)
			}
			rep.Fleet[fmt.Sprintf("%d-%s", n, mode)] = fleetPoint{
				Backends:       n,
				Sessions:       sessions,
				SessionsPerSec: res.SessionsPerSec,
				Announced:      res.Announced,
				Affine:         res.Affine,
				Rebalances:     res.Rebalances,
				PerBackend:     res.PerBackend,
			}
		}
	}

	// The failover load point: the fleet's failure-domain machinery under
	// a scripted mid-run crash. Same small images as the gateway points —
	// the figure of interest is the failover accounting and the latency
	// delta, not pipeline throughput.
	const failoverSessions = 18
	fo, err := bench.RunFleetFailover(bench.FleetFailoverConfig{
		Backends: 3,
		Images:   images,
		Sessions: failoverSessions,
		Clients:  2,
	})
	if err != nil {
		return fmt.Errorf("fleet failover: %w", err)
	}
	rep.Failover = &failoverPoint{
		Backends:           3,
		Sessions:           failoverSessions,
		Completed:          fo.Completed,
		Dropped:            fo.Dropped,
		SessionsPerSec:     fo.SessionsPerSec,
		ClientFailovers:    fo.ClientFailovers,
		RouterFailovers:    fo.RouterFailovers,
		SplicesEvicted:     fo.SplicesEvicted,
		Latency:            fo.Latency,
		FailoverLatency:    fo.FailoverLatency,
		SlowestTraceID:     fo.SlowestTraceID,
		FailedOverTraceIDs: fo.FailedOverTraceIDs,
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func run(table, benchName, repoRoot string) error {
	experiments := map[string]bench.Experiment{
		"fig3": bench.Fig3,
		"fig4": bench.Fig4,
		"fig5": bench.Fig5,
	}

	printFig2 := table == "fig2" || table == "all"
	if printFig2 {
		out, err := bench.FormatFig2(repoRoot)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}

	if table == "scaling" || table == "all" {
		points, err := bench.RunScaling([]int{25, 50, 100, 200, 400})
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatScaling(points))
		sizes, err := bench.RunSizeScaling()
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatSizeScaling(sizes))
		if table == "scaling" {
			return nil
		}
	}

	var order []string
	if table == "all" {
		order = []string{"fig3", "fig4", "fig5"}
	} else if _, ok := experiments[table]; ok {
		order = []string{table}
	} else if table != "fig2" {
		return fmt.Errorf("unknown table %q", table)
	}

	for _, name := range order {
		exp := experiments[name]
		var rows []bench.Row
		if benchName != "" {
			spec, err := workload.ByName(benchName)
			if err != nil {
				return err
			}
			row, err := bench.Run(exp, spec)
			if err != nil {
				return err
			}
			rows = []bench.Row{row}
		} else {
			var err error
			rows, err = bench.RunAll(exp)
			if err != nil {
				return err
			}
		}
		fmt.Println(bench.FormatTable(exp, rows))
		// The paper's worked example: convert a cycle figure to wall time
		// at the reference 3.5 GHz clock.
		for _, r := range rows {
			fmt.Printf("  %-10s disassembly ≈ %.1f ms, policy ≈ %.1f ms at 3.5 GHz\n",
				r.Benchmark, cycles.Milliseconds(r.Disassembly), cycles.Milliseconds(r.PolicyChecking))
		}
		fmt.Println()
	}
	return nil
}
