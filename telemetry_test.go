package engarde

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/obs"
	"engarde/internal/toolchain"
)

// TestTraceCyclesMatchReportExactly is the observability acceptance check:
// a traced provisioning session's per-phase cycle attributions — summed
// over its trace spans, both in memory and after a round-trip through the
// Chrome trace_event file a -trace-dir sink writes — equal Report.Phases
// exactly. The counter is session-private and reset after provider boot
// (the quoting enclave charges before any session exists), so every cycle
// the report counts was charged inside some phase span.
func TestTraceCyclesMatchReportExactly(t *testing.T) {
	counter := cycles.NewCounter(cycles.DefaultModel())
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096, Counter: counter})
	if err != nil {
		t.Fatal(err)
	}
	counter.Reset() // drop provider-boot charges; the trace starts here

	dir := t.TempDir()
	sink, err := obs.NewSink(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("session", counter)

	cfg := smallEnclave()
	cfg.Policies = NewPolicySet(StackProtectorPolicy())
	cfg.Trace = tr
	encl, err := provider.CreateEnclave(cfg)
	if err != nil {
		t.Fatal(err)
	}

	bin, err := toolchain.Build(toolchain.Config{
		Name: "traced", Seed: 81, NumFuncs: 8, AvgFuncInsts: 60, StackProtector: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}

	cli, srv := net.Pipe()
	serveErr := make(chan error, 1)
	repCh := make(chan *Report, 1)
	go func() {
		defer srv.Close()
		rep, err := encl.ServeProvisionFuncCtx(
			obs.WithTrace(context.Background(), tr), srv, encl.Provision)
		repCh <- rep
		serveErr <- err
	}()

	client := &Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	verdict, err := client.Provision(cli, bin.Image)
	cli.Close()
	if err != nil {
		t.Fatalf("client.Provision: %v", err)
	}
	if !verdict.Compliant {
		t.Fatalf("rejected: %s", verdict.Reason)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeProvisionFuncCtx: %v", err)
	}
	rep := <-repCh
	if rep == nil || !rep.Compliant {
		t.Fatal("provider-side report missing or non-compliant")
	}

	sink.Record(tr) // finishes the trace and writes traces.jsonl + the Chrome file

	// In-memory attribution: span phase deltas sum to Report.Phases exactly.
	totals := tr.PhaseTotals()
	if len(rep.Phases) == 0 {
		t.Fatal("report has no phase cycles")
	}
	for p, want := range rep.Phases {
		if got := totals[p]; got != want {
			t.Errorf("PhaseTotals[%s] = %d, report has %d", p, got, want)
		}
	}
	for p, got := range totals {
		if want := rep.Phases[p]; got != want {
			t.Errorf("PhaseTotals[%s] = %d not in report (report %d)", p, got, want)
		}
	}

	// Disk round-trip: the per-session Chrome trace_event file carries the
	// same attributions in args.cycles.
	path := filepath.Join(dir, "session-"+tr.ID()+".trace.json")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("chrome trace file: %v", err)
	}
	defer f.Close()
	spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("ReadChromeTrace: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("chrome trace has no spans")
	}
	fromFile := make(map[string]uint64)
	for _, sp := range spans {
		if sp.TraceID != tr.ID() {
			t.Errorf("span %q carries trace_id %q, want %q", sp.Name, sp.TraceID, tr.ID())
		}
		for phase, cyc := range sp.Cycles {
			fromFile[phase] += cyc
		}
	}
	for p, want := range rep.Phases {
		if got := fromFile[p.String()]; got != want {
			t.Errorf("chrome trace cycles[%s] = %d, report has %d", p, got, want)
		}
	}
	if len(fromFile) != len(rep.Phases) {
		t.Errorf("chrome trace has %d phases, report has %d: %v vs %v",
			len(fromFile), len(rep.Phases), fromFile, rep.Phases)
	}

	// The JSONL tier exists alongside the Chrome file.
	if _, err := os.Stat(filepath.Join(dir, "traces.jsonl")); err != nil {
		t.Errorf("traces.jsonl: %v", err)
	}
}
