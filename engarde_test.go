package engarde

import (
	"net"
	"strings"
	"testing"

	"engarde/internal/toolchain"
	"engarde/internal/workload"
)

// smallEnclave keeps tests fast.
func smallEnclave() EnclaveConfig {
	return EnclaveConfig{HeapPages: 1500, ClientPages: 512}
}

func TestEndToEndOverTCP(t *testing.T) {
	// The complete paper protocol over a real socket: attest → key
	// exchange → encrypted transfer → policy check → verdict.
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	pols := NewPolicySet(StackProtectorPolicy())
	cfg := smallEnclave()
	cfg.Policies = pols
	encl, err := provider.CreateEnclave(cfg)
	if err != nil {
		t.Fatal(err)
	}

	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	bin, err := toolchain.Build(toolchain.Config{
		Name: "e2e", Seed: 71, NumFuncs: 8, AvgFuncInsts: 60, StackProtector: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serveErr := make(chan error, 1)
	repCh := make(chan *Report, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		defer conn.Close()
		rep, err := encl.ServeProvision(conn)
		repCh <- rep
		serveErr <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	client := &Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	verdict, err := client.Provision(conn, bin.Image)
	if err != nil {
		t.Fatalf("client.Provision: %v", err)
	}
	if !verdict.Compliant {
		t.Fatalf("rejected: %s", verdict.Reason)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeProvision: %v", err)
	}
	rep := <-repCh
	if rep == nil || !rep.Compliant {
		t.Fatal("provider-side report missing or non-compliant")
	}
	if _, err := encl.Enter(); err != nil {
		t.Errorf("Enter: %v", err)
	}
}

func TestEndToEndRejection(t *testing.T) {
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallEnclave()
	cfg.Policies = NewPolicySet(StackProtectorPolicy())
	encl, err := provider.CreateEnclave(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}
	bin, err := toolchain.Build(toolchain.Config{
		Name: "bad", Seed: 72, NumFuncs: 6, AvgFuncInsts: 50, // no stack protector
	})
	if err != nil {
		t.Fatal(err)
	}

	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		_, _ = encl.ServeProvision(srv)
	}()
	client := &Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	verdict, err := client.Provision(cli, bin.Image)
	if err != nil {
		t.Fatalf("client.Provision: %v", err)
	}
	if verdict.Compliant {
		t.Fatal("unprotected binary must be rejected")
	}
	if !strings.Contains(verdict.Reason, "stack-protector") {
		t.Errorf("verdict reason %q does not name the failing policy", verdict.Reason)
	}
}

func TestClientDetectsWrongMeasurement(t *testing.T) {
	// A provider substituting tampered bootstrap code is caught by the
	// client before any content is sent.
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallEnclave()
	cfg.HeapPages++ // a different (thus "tampered") EnGarde layout
	encl, err := provider.CreateEnclave(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected, err := ExpectedMeasurement(SGXv2, smallEnclave())
	if err != nil {
		t.Fatal(err)
	}

	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() { _, _ = encl.ServeProvision(srv) }()
	client := &Client{Expected: expected, PlatformKey: provider.AttestationPublicKey()}
	_, err = client.Provision(cli, []byte("never sent anyway"))
	if err == nil || !strings.Contains(err.Error(), "attestation failed") {
		t.Errorf("client.Provision = %v, want attestation failure", err)
	}
}

func TestAllPoliciesTogether(t *testing.T) {
	// A client instrumented with everything passes the full agreed set —
	// the paper's three modules plus the two extension modules.
	musl, err := MuslLinkingPolicy(MuslApprovedVersion, true)
	if err != nil {
		t.Fatal(err)
	}
	provider, err := NewProvider(ProviderConfig{EPCPages: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallEnclave()
	cfg.Policies = NewPolicySet(musl, StackProtectorPolicy(), IFCCPolicy(),
		NoForbiddenInstructionsPolicy(), ASanPolicy())
	encl, err := provider.CreateEnclave(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := toolchain.Build(toolchain.Config{
		Name: "full", Seed: 73, NumFuncs: 8, AvgFuncInsts: 60,
		LibcCallRate: 0.05, StackProtector: true, IFCC: true, IndirectRate: 0.02,
		ASan: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := encl.Provision(bin.Image)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatalf("rejected: %s", rep.Reason)
	}
	// The quintuple-instrumented binary also runs.
	if _, err := encl.Core().Execute(50_000); err != nil {
		t.Errorf("Execute: %v", err)
	}
}

func TestWorkloadBenchmarksProvision(t *testing.T) {
	// Every paper benchmark provisions cleanly under its matching policy.
	if testing.Short() {
		t.Skip("builds all seven paper benchmarks")
	}
	spec, err := workload.ByName("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	bin, err := spec.Build(workload.StackProtected)
	if err != nil {
		t.Fatal(err)
	}
	provider, err := NewProvider(ProviderConfig{EPCPages: 8192})
	if err != nil {
		t.Fatal(err)
	}
	cfg := EnclaveConfig{HeapPages: 2500, ClientPages: 512,
		Policies: NewPolicySet(StackProtectorPolicy())}
	encl, err := provider.CreateEnclave(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := encl.Provision(bin.Image)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatalf("429.mcf rejected: %s", rep.Reason)
	}
}
