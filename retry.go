package engarde

// Client-side resilience: retry with exponential backoff and full jitter,
// and session failover across a fleet.
//
// A production gateway sheds load with typed busy verdicts (CodeBusy +
// Retry-After) and cuts off stalled sessions with idle/budget deadlines;
// a fleet router resets sessions to crashed backends with typed
// CodeBackendLost verdicts. The matching client behavior is to retry —
// with exponentially growing, fully jittered delays so a thundering herd
// of shed clients does not return in lockstep — replaying the retained
// image against the next owner in the ring's failover order when the
// session itself was lost, while treating permanent failures (attestation
// mismatch, policy rejection) as final immediately.

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"syscall"
	"time"

	"engarde/internal/obs"
)

// ErrAttestation marks a failed quote verification. It is permanent: the
// platform is not running genuine EnGarde, and retrying cannot fix that.
var ErrAttestation = errors.New("engarde: attestation failed")

// ErrBusy is wrapped into the error returned when every attempt was shed
// with a busy verdict.
var ErrBusy = errors.New("engarde: service busy")

// ErrSessionLost marks a session severed mid-flight: the connection died
// or the router reset the splice with a CodeBackendLost verdict. The
// session produced no verdict; the image is intact client-side, so the
// right response is to replay provisioning against the next endpoint.
var ErrSessionLost = errors.New("engarde: session lost mid-flight")

// FailureClass is the typed classification driving the failover loop.
type FailureClass int

// Failure classes.
const (
	// FailTransient: the endpoint is alive but the attempt failed (shed
	// busy, machinery hiccup). Back off and retry — same endpoint is fine.
	FailTransient FailureClass = iota
	// FailSessionLost: the endpoint (or the path to it) died mid-session.
	// Replay against the next endpoint in the failover order.
	FailSessionLost
	// FailPermanent: retrying cannot help (attestation mismatch). Give up.
	FailPermanent
)

func (fc FailureClass) String() string {
	switch fc {
	case FailTransient:
		return "transient"
	case FailSessionLost:
		return "session-lost"
	case FailPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("failure-class(%d)", int(fc))
	}
}

// ClassifyFailure maps a provisioning error to its failure class. Dial
// failures, connection resets, and mid-stream EOFs are session losses —
// the endpoint is gone, not busy — while everything else except a failed
// attestation is transient.
func ClassifyFailure(err error) FailureClass {
	switch {
	case err == nil:
		return FailTransient
	case errors.Is(err, ErrAttestation):
		return FailPermanent
	case errors.Is(err, ErrSessionLost),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE):
		return FailSessionLost
	default:
		var op *net.OpError
		if errors.As(err, &op) {
			return FailSessionLost
		}
		return FailTransient
	}
}

// retryable reports whether err is worth another attempt: transport and
// machinery trouble is, a failed attestation is not.
func retryable(err error) bool {
	return ClassifyFailure(err) != FailPermanent
}

// Retry defaults for RetryPolicy fields left zero.
const (
	DefaultRetryAttempts  = 5
	DefaultRetryBaseDelay = 100 * time.Millisecond
	DefaultRetryMaxDelay  = 5 * time.Second
)

// RetryPolicy configures ProvisionRetry's and ProvisionFailover's backoff.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first.
	// 0 means DefaultRetryAttempts.
	Attempts int
	// BaseDelay is the backoff ceiling before the first retry; it doubles
	// per retry up to MaxDelay. 0 means DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. 0 means DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Seed fixes the jitter stream (tests); 0 derives one from the clock.
	Seed int64
	// Sleep replaces time.Sleep (tests).
	Sleep func(time.Duration)
	// OnRetry, when set, observes each backoff decision before sleeping.
	OnRetry func(attempt int, delay time.Duration, cause error)
	// OnFailover, when set, observes each endpoint switch: the endpoint
	// index being abandoned, the one about to be tried, and the session
	// loss that caused the move.
	OnFailover func(from, to int, cause error)
	// Trace, when set, is the session's client-side trace: every attempt
	// records an "attempt" span on it (tagged attempt/endpoint/outcome),
	// and its 128-bit ID is propagated to the router and gateway — so a
	// failed-over session is ONE trace whose attempt-1 and attempt-2 spans
	// share an ID across the kill/replay seam, not two unrelated ones.
	Trace *obs.Trace
	// Metrics, when set, counts failover moves by FailureClass
	// (engarde_client_failovers_total).
	Metrics *ClientMetrics
}

// ClientMetrics is the client-side failover counter family, registered on
// an obs.Registry so client processes (cmd/engarde-client, benches) expose
// the same Prometheus text format as the daemons.
type ClientMetrics struct {
	failovers [3]*obs.Counter // indexed by FailureClass
}

// NewClientMetrics registers engarde_client_failovers_total on reg, one
// series per FailureClass.
func NewClientMetrics(reg *obs.Registry) *ClientMetrics {
	m := &ClientMetrics{}
	help := "Endpoint switches made by ProvisionFailover, by failure class."
	for fc := FailTransient; fc <= FailPermanent; fc++ {
		m.failovers[fc] = reg.Counter("engarde_client_failovers_total", help,
			obs.Label{Key: "class", Value: fc.String()})
		help = ""
	}
	return m
}

// RecordFailover counts one endpoint switch caused by err.
func (m *ClientMetrics) RecordFailover(cause error) {
	if m == nil {
		return
	}
	if fc := ClassifyFailure(cause); fc >= FailTransient && fc <= FailPermanent {
		m.failovers[fc].Inc()
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMaxDelay
	}
	if p.Seed == 0 {
		p.Seed = time.Now().UnixNano()
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// ProvisionRetry runs Provision with retries against a single endpoint:
// each attempt dials a fresh connection, and failed attempts back off
// exponentially with full jitter — delay drawn uniformly from
// [0, min(MaxDelay, BaseDelay·2^n)) — floored by the server's Retry-After
// hint when the gateway shed the attempt with a busy verdict. Non-busy
// verdicts (compliant or rejected) and permanent errors return
// immediately.
func (c *Client) ProvisionRetry(dial func() (net.Conn, error), image []byte, p RetryPolicy) (Verdict, error) {
	return c.ProvisionFailover([]func() (net.Conn, error){dial}, image, p)
}

// ProvisionFailover is ProvisionRetry extended into a session-failover
// loop across a fleet: dials lists the session's endpoints in the ring's
// failover order (owner first, then successors — cluster.Ring.Sequence).
// The image is retained client-side, so when an attempt ends in a session
// loss — mid-stream connection death, a dial failure, or the router's
// typed CodeBackendLost reset — provisioning is replayed in full against
// the next endpoint. Busy sheds also advance to the next endpoint (the
// saturated owner's successor may have room), keeping the shed backend's
// Retry-After hint as the backoff floor. Transient machinery failures
// retry the same endpoint; permanent failures (attestation) return
// immediately. The total attempt budget is shared across endpoints.
func (c *Client) ProvisionFailover(dials []func() (net.Conn, error), image []byte, p RetryPolicy) (Verdict, error) {
	if len(dials) == 0 {
		return Verdict{}, errors.New("engarde: no endpoints to provision against")
	}
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))

	// One trace context for the whole failover loop: every attempt — and
	// every hop each attempt touches — shares the same 128-bit trace ID,
	// distinguished by the attempt spans' tags. tc is invalid (and nothing
	// propagates) when the caller set no Trace.
	tc := p.Trace.Context()

	advance := func(cur int, cause error) int {
		next := (cur + 1) % len(dials)
		if next != cur {
			if p.OnFailover != nil {
				p.OnFailover(cur, next, cause)
			}
			p.Metrics.RecordFailover(cause)
		}
		return next
	}

	var last error
	var hint time.Duration
	endpoint := 0
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			ceiling := p.BaseDelay << (attempt - 1)
			if ceiling > p.MaxDelay || ceiling <= 0 {
				ceiling = p.MaxDelay
			}
			delay := time.Duration(rng.Int63n(int64(ceiling) + 1))
			if hint > delay {
				delay = hint // never retry before the server asked us to
			}
			if p.OnRetry != nil {
				p.OnRetry(attempt, delay, last)
			}
			p.Sleep(delay)
		}
		asp := p.Trace.StartSpanArgs("attempt", map[string]string{
			"attempt":  strconv.Itoa(attempt + 1),
			"endpoint": strconv.Itoa(endpoint),
		})
		conn, err := dials[endpoint]()
		if err != nil {
			asp.SetArg("outcome", "dial-error")
			asp.End()
			last = err
			endpoint = advance(endpoint, err)
			continue
		}
		v, err := c.provision(conn, image, tc, p.Trace)
		conn.Close()
		if err != nil {
			switch ClassifyFailure(err) {
			case FailPermanent:
				asp.SetArg("outcome", "permanent")
				asp.End()
				return Verdict{}, err
			case FailSessionLost:
				asp.SetArg("outcome", "session-lost")
				last = fmt.Errorf("%w: %w", ErrSessionLost, err)
				endpoint = advance(endpoint, last)
			default:
				asp.SetArg("outcome", "transient")
				last = err
			}
			asp.End()
			continue
		}
		switch v.Code {
		case CodeBusy:
			asp.SetArg("outcome", "busy")
			asp.End()
			hint = time.Duration(v.RetryAfterMillis) * time.Millisecond
			last = fmt.Errorf("%w: %s", ErrBusy, v.Reason)
			endpoint = advance(endpoint, last)
			continue
		case CodeBackendLost:
			asp.SetArg("outcome", "backend-lost")
			asp.End()
			if d := time.Duration(v.RetryAfterMillis) * time.Millisecond; d > hint {
				hint = d
			}
			last = fmt.Errorf("%w: %s", ErrSessionLost, v.Reason)
			endpoint = advance(endpoint, last)
			continue
		}
		asp.SetArg("outcome", "verdict")
		asp.End()
		return v, nil
	}
	return Verdict{}, fmt.Errorf("engarde: provisioning failed after %d attempts: %w", p.Attempts, last)
}
