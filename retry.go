package engarde

// Client-side resilience: retry with exponential backoff and full jitter.
//
// A production gateway sheds load with typed busy verdicts (CodeBusy +
// Retry-After) and cuts off stalled sessions with idle/budget deadlines.
// The matching client behavior is to retry — with exponentially growing,
// fully jittered delays so a thundering herd of shed clients does not
// return in lockstep — while treating permanent failures (attestation
// mismatch, policy rejection) as final immediately.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// ErrAttestation marks a failed quote verification. It is permanent: the
// platform is not running genuine EnGarde, and retrying cannot fix that.
var ErrAttestation = errors.New("engarde: attestation failed")

// ErrBusy is wrapped into the error returned when every attempt was shed
// with a busy verdict.
var ErrBusy = errors.New("engarde: service busy")

// Retry defaults for RetryPolicy fields left zero.
const (
	DefaultRetryAttempts  = 5
	DefaultRetryBaseDelay = 100 * time.Millisecond
	DefaultRetryMaxDelay  = 5 * time.Second
)

// RetryPolicy configures ProvisionRetry's backoff.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first.
	// 0 means DefaultRetryAttempts.
	Attempts int
	// BaseDelay is the backoff ceiling before the first retry; it doubles
	// per retry up to MaxDelay. 0 means DefaultRetryBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling. 0 means DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Seed fixes the jitter stream (tests); 0 derives one from the clock.
	Seed int64
	// Sleep replaces time.Sleep (tests).
	Sleep func(time.Duration)
	// OnRetry, when set, observes each backoff decision before sleeping.
	OnRetry func(attempt int, delay time.Duration, cause error)
}

// retryable reports whether err is worth another attempt: transport and
// machinery trouble is, a failed attestation is not.
func retryable(err error) bool {
	return !errors.Is(err, ErrAttestation)
}

// ProvisionRetry runs Provision with retries: each attempt dials a fresh
// connection, and failed attempts back off exponentially with full jitter
// — delay drawn uniformly from [0, min(MaxDelay, BaseDelay·2^n)) — floored
// by the server's Retry-After hint when the gateway shed the attempt with
// a busy verdict. Non-busy verdicts (compliant or rejected) and permanent
// errors return immediately.
func (c *Client) ProvisionRetry(dial func() (net.Conn, error), image []byte, p RetryPolicy) (Verdict, error) {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMaxDelay
	}
	if p.Seed == 0 {
		p.Seed = time.Now().UnixNano()
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rng := rand.New(rand.NewSource(p.Seed))

	var last error
	var hint time.Duration
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			ceiling := p.BaseDelay << (attempt - 1)
			if ceiling > p.MaxDelay || ceiling <= 0 {
				ceiling = p.MaxDelay
			}
			delay := time.Duration(rng.Int63n(int64(ceiling) + 1))
			if hint > delay {
				delay = hint // never retry before the server asked us to
			}
			if p.OnRetry != nil {
				p.OnRetry(attempt, delay, last)
			}
			sleep(delay)
		}
		conn, err := dial()
		if err != nil {
			last = err
			continue
		}
		v, err := c.Provision(conn, image)
		conn.Close()
		if err != nil {
			if !retryable(err) {
				return Verdict{}, err
			}
			last = err
			continue
		}
		if v.Code == CodeBusy {
			hint = time.Duration(v.RetryAfterMillis) * time.Millisecond
			last = fmt.Errorf("%w: %s", ErrBusy, v.Reason)
			continue
		}
		return v, nil
	}
	return Verdict{}, fmt.Errorf("engarde: provisioning failed after %d attempts: %w", p.Attempts, last)
}
