package attest

import (
	"errors"
	"testing"

	"engarde/internal/sgx"
)

func buildAttestedEnclave(t *testing.T, v sgx.Version) (*sgx.Device, *sgx.Enclave, *QuotingEnclave) {
	t.Helper()
	dev, err := sgx.NewDevice(sgx.Config{EPCPages: 16, Version: v})
	if err != nil {
		t.Fatal(err)
	}
	e, err := dev.ECreate(0x10000, sgx.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.EAdd(e, 0x10000, sgx.PermR|sgx.PermX, sgx.PageREG, []byte("loader code")); err != nil {
		t.Fatal(err)
	}
	if err := dev.EExtendPage(e, 0x10000); err != nil {
		t.Fatal(err)
	}
	if err := dev.EInit(e); err != nil {
		t.Fatal(err)
	}
	qe, err := NewQuotingEnclave(dev)
	if err != nil {
		t.Fatal(err)
	}
	return dev, e, qe
}

func TestQuoteVerify(t *testing.T) {
	_, e, qe := buildAttestedEnclave(t, sgx.V2)
	bind := BindPublicKey([]byte("fake-der-public-key"))
	q, err := qe.Quote(e, bind)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if err := VerifyQuote(q, qe.AttestationPublicKey(), e.Measurement(), bind); err != nil {
		t.Errorf("VerifyQuote: %v", err)
	}
}

func TestQuoteRejectsWrongMeasurement(t *testing.T) {
	_, e, qe := buildAttestedEnclave(t, sgx.V2)
	bind := BindPublicKey([]byte("pk"))
	q, err := qe.Quote(e, bind)
	if err != nil {
		t.Fatal(err)
	}
	wrong := e.Measurement()
	wrong[0] ^= 1
	err = VerifyQuote(q, qe.AttestationPublicKey(), wrong, bind)
	if !errors.Is(err, ErrWrongMeasurement) {
		t.Errorf("VerifyQuote = %v, want ErrWrongMeasurement", err)
	}
}

func TestQuoteRejectsWrongBinding(t *testing.T) {
	// A man-in-the-middle substituting its own RSA key must be caught by
	// the report-data binding.
	_, e, qe := buildAttestedEnclave(t, sgx.V2)
	q, err := qe.Quote(e, BindPublicKey([]byte("enclave-key")))
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyQuote(q, qe.AttestationPublicKey(), e.Measurement(), BindPublicKey([]byte("mitm-key")))
	if !errors.Is(err, ErrWrongReportData) {
		t.Errorf("VerifyQuote = %v, want ErrWrongReportData", err)
	}
}

func TestQuoteRejectsTampering(t *testing.T) {
	_, e, qe := buildAttestedEnclave(t, sgx.V2)
	bind := BindPublicKey([]byte("pk"))
	q, err := qe.Quote(e, bind)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte of the quoted measurement: signature must fail before
	// the measurement comparison can be confused.
	q.Report.MREnclave[3] ^= 0xFF
	err = VerifyQuote(q, qe.AttestationPublicKey(), q.Report.MREnclave, bind)
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("VerifyQuote = %v, want ErrBadSignature", err)
	}
}

func TestQuoteRejectsForeignPlatformKey(t *testing.T) {
	_, e, qe := buildAttestedEnclave(t, sgx.V2)
	bind := BindPublicKey([]byte("pk"))
	q, err := qe.Quote(e, bind)
	if err != nil {
		t.Fatal(err)
	}
	dev2, err := sgx.NewDevice(sgx.Config{EPCPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	qe2, err := NewQuotingEnclave(dev2)
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyQuote(q, qe2.AttestationPublicKey(), e.Measurement(), bind)
	if !errors.Is(err, ErrBadSignature) {
		t.Errorf("VerifyQuote under wrong platform key = %v, want ErrBadSignature", err)
	}
}

func TestQuoteUninitializedEnclave(t *testing.T) {
	dev, err := sgx.NewDevice(sgx.Config{EPCPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := dev.ECreate(0x10000, sgx.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	qe, err := NewQuotingEnclave(dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qe.Quote(e, [sgx.ReportDataSize]byte{}); err == nil {
		t.Error("quoting an uninitialized enclave must fail")
	}
}
