// Package attest implements SGX remote attestation as the EnGarde protocol
// uses it (paper §2): each device carries a dedicated quoting enclave
// holding a device-specific private key (standing in for the Intel EPID
// key). The quoting enclave obtains an EREPORT measurement of a target
// enclave, verifies it locally against the device's report key, and signs
// it. A remote client verifies the signature chain and checks that the
// measurement matches the EnGarde loader build it expects, and that the
// enclave's ephemeral public key is bound into the quote's report data.
package attest

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"engarde/internal/sgx"
)

// Attestation errors.
var (
	// ErrBadSignature is returned when a quote's signature does not verify
	// under the device's attestation key.
	ErrBadSignature = errors.New("attest: quote signature invalid")
	// ErrWrongMeasurement is returned when the quoted MRENCLAVE differs
	// from the measurement the verifier expects.
	ErrWrongMeasurement = errors.New("attest: enclave measurement mismatch")
	// ErrWrongReportData is returned when the quote's report data does not
	// bind the expected value (e.g. the enclave's ephemeral public key).
	ErrWrongReportData = errors.New("attest: report data mismatch")
)

// Quote is a signed attestation statement.
type Quote struct {
	Report    sgx.Report
	Signature []byte
}

// signedPayload serializes the report fields covered by the quote
// signature.
func signedPayload(r sgx.Report) []byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, r.MREnclave[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.EnclaveID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Version))
	buf = append(buf, r.ReportData[:]...)
	return buf
}

// QuotingEnclave is the device's quoting enclave. Only it holds the
// device's attestation (EPID-like) private key.
type QuotingEnclave struct {
	dev  *sgx.Device
	key  *rsa.PrivateKey
	size int
}

// NewQuotingEnclave provisions a quoting enclave for the device, generating
// its attestation key pair.
func NewQuotingEnclave(dev *sgx.Device) (*QuotingEnclave, error) {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return nil, fmt.Errorf("attest: generating attestation key: %w", err)
	}
	return &QuotingEnclave{dev: dev, key: key}, nil
}

// AttestationPublicKey returns the public half of the device attestation
// key — what Intel's attestation service would publish for this platform.
func (qe *QuotingEnclave) AttestationPublicKey() *rsa.PublicKey {
	return &qe.key.PublicKey
}

// Quote produces a signed quote for the target enclave carrying the given
// report data. It performs the local-attestation step first: the EREPORT
// MAC must verify on this device.
func (qe *QuotingEnclave) Quote(e *sgx.Enclave, reportData [sgx.ReportDataSize]byte) (Quote, error) {
	rep, err := qe.dev.EReport(e, reportData)
	if err != nil {
		return Quote{}, fmt.Errorf("attest: EREPORT: %w", err)
	}
	if err := qe.dev.VerifyReport(rep); err != nil {
		return Quote{}, fmt.Errorf("attest: local verification: %w", err)
	}
	digest := sha256.Sum256(signedPayload(rep))
	sig, err := rsa.SignPKCS1v15(rand.Reader, qe.key, crypto.SHA256, digest[:])
	if err != nil {
		return Quote{}, fmt.Errorf("attest: signing quote: %w", err)
	}
	return Quote{Report: rep, Signature: sig}, nil
}

// VerifyQuote is the remote-client side: it checks the quote's signature
// under the platform's attestation public key, that the measurement equals
// the expected MRENCLAVE (the EnGarde loader both parties inspected), and
// that the report data equals bindData (the digest of the enclave's
// ephemeral RSA public key, preventing man-in-the-middle provisioning).
func VerifyQuote(q Quote, platformKey *rsa.PublicKey, expected sgx.Measurement, bindData [sgx.ReportDataSize]byte) error {
	digest := sha256.Sum256(signedPayload(q.Report))
	if err := rsa.VerifyPKCS1v15(platformKey, crypto.SHA256, digest[:], q.Signature); err != nil {
		return ErrBadSignature
	}
	if q.Report.MREnclave != expected {
		return fmt.Errorf("%w: got %x want %x", ErrWrongMeasurement,
			q.Report.MREnclave[:8], expected[:8])
	}
	if q.Report.ReportData != bindData {
		return ErrWrongReportData
	}
	return nil
}

// BindPublicKey hashes an exported public key into a report-data block,
// implementing the "ephemeral public key included in the attestation
// quote" binding of §2.
func BindPublicKey(pubDER []byte) [sgx.ReportDataSize]byte {
	var out [sgx.ReportDataSize]byte
	sum := sha256.Sum256(pubDER)
	copy(out[:], sum[:])
	return out
}
