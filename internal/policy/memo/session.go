package memo

import (
	"crypto/sha256"
	"sort"
	"sync/atomic"

	"engarde/internal/cycles"
	"engarde/internal/nacl"
	"engarde/internal/symtab"
)

// FuncSpan is one function's extent in the instruction buffer and the
// content digest addressing its memoized outcomes. The extent follows the
// library-linking module's boundary rule exactly — walk from the function's
// first instruction and stop at the first *later instruction* that begins
// another function — so the digested bytes are the same bytes liblink
// hashes and the same span stackprot/asan inspect.
type FuncSpan struct {
	Addr     uint64 // function start address
	StartIdx int    // index of the first instruction
	EndIdx   int    // one past the last owned instruction
	Digest   [sha256.Size]byte
	Bytes    uint64 // raw bytes under Digest
}

// Session is the per-provisioning view of the cache: the digest table
// computed by the fingerprint pass plus the per-module hit sets filled in
// by Probe. Probe and Record run in module prologues (serial); Hit, Digest,
// Span and SpanContaining are read-only afterward, so parallel span
// checkers may call them without locks.
type Session struct {
	cache  *Cache
	spans  []FuncSpan // ascending Addr and StartIdx
	byAddr map[uint64]int
	hits   map[[sha256.Size]byte]map[uint64][]byte
	reused atomic.Uint64
}

// NewSession runs the fingerprint pass: one serial walk over the symbol
// table computing every function's content digest. The work is charged to
// the policy phase of counter — one hash init per function, one memo-key
// byte per digested byte, one symbol lookup per boundary probe — matching
// what a single liblink hashFunction walk would cost, paid once per image
// instead of once per call site.
func NewSession(cache *Cache, p *nacl.Program, tab *symtab.Table, counter *cycles.Counter) *Session {
	s := &Session{
		cache:  cache,
		byAddr: make(map[uint64]int, tab.Len()),
		hits:   make(map[[sha256.Size]byte]map[uint64][]byte),
	}
	var hashes, keyBytes, lookups uint64
	for _, fn := range tab.Functions() {
		start, ok := p.InstAt(fn.Addr)
		if !ok {
			// Not an instruction boundary: no digest. Modules that care
			// (liblink) fall back to the cold path and report it there.
			continue
		}
		h := sha256.New()
		var n uint64
		end := start
		for i := start; i < len(p.Insts); i++ {
			in := &p.Insts[i]
			if i > start {
				lookups++
				if tab.IsFuncStart(in.Addr) {
					break
				}
			}
			h.Write(in.Raw)
			n += uint64(len(in.Raw))
			end = i + 1
		}
		var d [sha256.Size]byte
		h.Sum(d[:0])
		s.byAddr[fn.Addr] = len(s.spans)
		s.spans = append(s.spans, FuncSpan{Addr: fn.Addr, StartIdx: start, EndIdx: end, Digest: d, Bytes: n})
		hashes++
		keyBytes += n
	}
	if counter != nil {
		counter.Charge(cycles.PhasePolicy, cycles.UnitHashInit, hashes)
		counter.Charge(cycles.PhasePolicy, cycles.UnitMemoKeyByte, keyBytes)
		counter.Charge(cycles.PhasePolicy, cycles.UnitSymLookup, lookups)
	}
	return s
}

// NumFuncs returns the number of digested functions.
func (s *Session) NumFuncs() int { return len(s.spans) }

// Probe looks up every function's outcome for the given module fingerprint
// and fixes the hit set for the rest of the session. It returns the number
// of cache probes performed so the caller can charge them. Probe is not
// safe for concurrent use; call it from the module's serial prologue.
func (s *Session) Probe(moduleFP [sha256.Size]byte) int {
	hits := make(map[uint64][]byte)
	var missing []Key
	for i := range s.spans {
		if payload, ok := s.cache.Get(Key{Fn: s.spans[i].Digest, Module: moduleFP}); ok {
			hits[s.spans[i].Addr] = payload
		} else if s.cache.RemoteEnabled() {
			missing = append(missing, Key{Fn: s.spans[i].Digest, Module: moduleFP})
		}
	}
	if len(missing) > 0 {
		// One batch round-trip to the fleet peers for everything the local
		// tiers missed. The remote tier is bounded and breaker-guarded, so a
		// sick fleet costs at most one timeout here, never a wrong hit: the
		// payloads still go through module revalidation like any local hit.
		byDigest := make(map[[sha256.Size]byte]uint64, len(missing))
		for i := range s.spans {
			byDigest[s.spans[i].Digest] = s.spans[i].Addr
		}
		for _, rec := range s.cache.FetchRemote(missing) {
			if rec.Key.Module != moduleFP {
				continue
			}
			if addr, ok := byDigest[rec.Key.Fn]; ok {
				hits[addr] = rec.Payload
			}
		}
	}
	s.hits[moduleFP] = hits
	return len(s.spans)
}

// Hit returns the memoized payload for the function starting at addr under
// the given module fingerprint, if Probe found one. The payload is shared
// and read-only; a present-but-empty payload returns (nil-or-empty, true).
func (s *Session) Hit(moduleFP [sha256.Size]byte, addr uint64) ([]byte, bool) {
	payload, ok := s.hits[moduleFP][addr]
	return payload, ok
}

// Record memoizes a passing outcome for the function starting at addr. It
// is a no-op for functions the fingerprint pass skipped.
func (s *Session) Record(moduleFP [sha256.Size]byte, addr uint64, payload []byte) {
	i, ok := s.byAddr[addr]
	if !ok {
		return
	}
	s.cache.Put(Key{Fn: s.spans[i].Digest, Module: moduleFP}, payload)
}

// Digest returns the content digest of the function starting at addr.
func (s *Session) Digest(addr uint64) ([sha256.Size]byte, bool) {
	i, ok := s.byAddr[addr]
	if !ok {
		return [sha256.Size]byte{}, false
	}
	return s.spans[i].Digest, true
}

// Span returns the digested extent of the function starting at addr.
func (s *Session) Span(addr uint64) (FuncSpan, bool) {
	i, ok := s.byAddr[addr]
	if !ok {
		return FuncSpan{}, false
	}
	return s.spans[i], true
}

// SpanContaining returns the function span containing instruction index
// idx, letting span checkers hop function-by-function instead of
// instruction-by-instruction.
func (s *Session) SpanContaining(idx int) (FuncSpan, bool) {
	i := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].StartIdx > idx })
	if i == 0 {
		return FuncSpan{}, false
	}
	sp := s.spans[i-1]
	if idx >= sp.EndIdx {
		return FuncSpan{}, false
	}
	return sp, true
}

// CountReuse adds n to the session's tally of function outcomes served
// from the cache (revalidated hits). Safe for concurrent use.
func (s *Session) CountReuse(n uint64) { s.reused.Add(n) }

// Reused returns the tally of function outcomes served from the cache —
// the value surfaced as Report.CachedFunctions.
func (s *Session) Reused() uint64 { return s.reused.Load() }
