package memo_test

import (
	"context"
	"crypto/sha256"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"engarde/internal/faults"
	"engarde/internal/policy/memo"
)

func remoteKey(b byte) memo.Key {
	var k memo.Key
	k.Fn = sha256.Sum256([]byte{'f', b})
	k.Module = sha256.Sum256([]byte{'m', b})
	return k
}

// newPeer serves cache c over the remote protocol, as gatewayd does at
// /memoz, and returns the peer URL for a RemoteConfig.
func newPeer(t *testing.T, c *memo.Cache) string {
	t.Helper()
	srv := httptest.NewServer(http.StripPrefix("/memoz", memo.Handler(c)))
	t.Cleanup(srv.Close)
	return srv.URL + "/memoz"
}

func TestRemoteFetchInstallsLocally(t *testing.T) {
	peer, err := memo.Open(memo.Config{Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	k1, k2 := remoteKey(1), remoteKey(2)
	peer.Put(k1, []byte("payload-one"))

	local, err := memo.Open(memo.Config{Entries: 64, Remote: memo.RemoteConfig{
		Peers:    []string{newPeer(t, peer)},
		PutQueue: -1, // get-only: this test exercises the fetch direction
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	recs := local.FetchRemote([]memo.Key{k1, k2})
	if len(recs) != 1 || recs[0].Key != k1 || string(recs[0].Payload) != "payload-one" {
		t.Fatalf("FetchRemote = %+v, want one record for k1", recs)
	}
	// The fetched record is now resident: a local Get hits without another
	// round-trip.
	if payload, ok := local.Get(k1); !ok || string(payload) != "payload-one" {
		t.Fatalf("Get(k1) after fetch = %q, %v; want resident hit", payload, ok)
	}
	st := local.Stats()
	if st.RemoteHits != 1 || st.RemoteMisses != 1 || st.RemoteFaults != 0 {
		t.Fatalf("stats = %+v, want 1 remote hit, 1 miss, 0 faults", st)
	}
	pst := peer.Stats()
	if pst.PeerGets != 1 || pst.PeerServed != 1 {
		t.Fatalf("peer stats = %+v, want 1 get serving 1 record", pst)
	}
}

func TestRemotePutFlushesToPeer(t *testing.T) {
	peer, err := memo.Open(memo.Config{Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	local, err := memo.Open(memo.Config{Entries: 64, Remote: memo.RemoteConfig{
		Peers: []string{newPeer(t, peer)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	k := remoteKey(3)
	local.Put(k, []byte("flushed"))
	deadline := time.Now().Add(5 * time.Second)
	for peer.Stats().PeerStored == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("peer never received the put: local=%+v peer=%+v", local.Stats(), peer.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if payload, ok := peer.Get(k); !ok || string(payload) != "flushed" {
		t.Fatalf("peer Get = %q, %v; want flushed record", payload, ok)
	}
	// The peer stores the record before the flusher's own counter update,
	// so the local RemotePuts count can trail PeerStored by a beat.
	for local.Stats().RemotePuts != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("local stats = %+v, want RemotePuts=1", local.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteDeadPeerTripsBreakerAndSkips(t *testing.T) {
	// A listener that is closed immediately: connection refused, fast.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String() + "/memoz"
	l.Close()

	local, err := memo.Open(memo.Config{Entries: 64, Remote: memo.RemoteConfig{
		Peers:            []string{dead},
		Timeout:          100 * time.Millisecond,
		BreakerThreshold: 2,
		ReprobeInterval:  time.Hour, // no reprobe inside this test
		PutQueue:         -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	keys := []memo.Key{remoteKey(4)}
	if recs := local.FetchRemote(keys); recs != nil {
		t.Fatalf("fetch from dead peer = %+v, want nil", recs)
	}
	local.FetchRemote(keys) // second consecutive failure trips
	st := local.Stats()
	if st.RemoteFaults != 2 || st.RemoteTrips != 1 || !st.RemoteOpen {
		t.Fatalf("stats after two failures = %+v, want 2 faults, 1 trip, open", st)
	}
	// Open breaker: the next fetch is skipped without touching the network.
	start := time.Now()
	local.FetchRemote(keys)
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("fetch while open took %v, want immediate skip", d)
	}
	if st := local.Stats(); st.RemoteSkipped != 1 || st.RemoteFaults != 2 {
		t.Fatalf("stats after skip = %+v, want RemoteSkipped=1 and no new fault", st)
	}
	// Local provisioning is untouched throughout: Put/Get still work.
	k := remoteKey(5)
	local.Put(k, []byte("local"))
	if payload, ok := local.Get(k); !ok || string(payload) != "local" {
		t.Fatalf("local tier degraded by remote failure: %q, %v", payload, ok)
	}
}

// chaosTransport dials through faults.ChaosConn so every byte the peer
// exchange reads or writes can be corrupted.
func chaosTransport(sched faults.Schedule) *http.Transport {
	dial := &net.Dialer{Timeout: time.Second}
	return &http.Transport{
		DisableKeepAlives: true,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			conn, err := dial.DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			return faults.WrapConn(conn, sched), nil
		},
	}
}

func TestRemoteByteFlippingPeerTripsBreaker(t *testing.T) {
	peer, err := memo.Open(memo.Config{Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	k := remoteKey(6)
	peer.Put(k, []byte("true-payload"))

	// Every read and write through the chaos conn flips one bit, so either
	// the request is mangled (peer answers 4xx) or the response is (HTTP
	// parse failure, or a record CRC mismatch caught by the decoder).
	// Whichever way each attempt dies, it must count as a peer fault and
	// never install a corrupt record.
	local, err := memo.Open(memo.Config{Entries: 64, Remote: memo.RemoteConfig{
		Peers:            []string{newPeer(t, peer)},
		Timeout:          2 * time.Second,
		BreakerThreshold: 3,
		ReprobeInterval:  time.Hour,
		PutQueue:         -1,
		Client: &http.Client{
			Timeout:   2 * time.Second,
			Transport: chaosTransport(faults.Schedule{Seed: 7, BitFlipProb: 1}),
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	for i := 0; i < 3; i++ {
		if recs := local.FetchRemote([]memo.Key{k}); len(recs) != 0 {
			// A flipped bit can, in principle, land somewhere harmless; with
			// every TCP segment corrupted it cannot land harmless everywhere.
			for _, rec := range recs {
				if string(rec.Payload) != "true-payload" {
					t.Fatalf("corrupt record installed: %q", rec.Payload)
				}
			}
		}
	}
	st := local.Stats()
	if st.RemoteFaults < 3 || st.RemoteTrips != 1 || !st.RemoteOpen {
		t.Fatalf("stats after byte-flipped fetches = %+v, want breaker tripped open", st)
	}
	// The corrupt exchanges must not have poisoned the local tier.
	if payload, ok := local.Get(k); ok && string(payload) != "true-payload" {
		t.Fatalf("poisoned local entry: %q", payload)
	}
}

func TestRemoteHandlerRejectsGarbage(t *testing.T) {
	c, err := memo.Open(memo.Config{Entries: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(memo.Handler(c))
	defer srv.Close()

	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/get", "not-a-get-request", http.StatusBadRequest},
		{"/put", "not-a-record-batch", http.StatusBadRequest},
		{"/nope", "", http.StatusNotFound},
	} {
		resp, err := http.Post(srv.URL+tc.path, "application/octet-stream", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(srv.URL + "/get")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}
