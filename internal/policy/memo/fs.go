package memo

import (
	"io"
	"os"
)

// File is the slice of *os.File the disk tier needs. Fault-injection
// wrappers (internal/faults.ChaosFS) implement it to exercise the
// circuit-breaker path without real disk trouble.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
}

// FS is the filesystem surface the disk tier uses. The default is the real
// OS filesystem; tests substitute a chaos wrapper.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
