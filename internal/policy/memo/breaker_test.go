package memo_test

// Circuit-breaker tests for the disk tier, driven by faults.ChaosFS. They
// live in an external test package because internal/faults imports memo
// (ChaosFS implements memo.FS).

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"engarde/internal/faults"
	"engarde/internal/policy/memo"
)

func breakerKey(n int) memo.Key {
	var k memo.Key
	k.Fn = sha256.Sum256([]byte(fmt.Sprintf("breaker-fn-%d", n)))
	k.Module = sha256.Sum256([]byte("breaker-mod"))
	return k
}

// waitBreaker polls until cond(stats) holds or the deadline passes.
func waitBreaker(t *testing.T, c *memo.Cache, what string, cond func(memo.Stats) bool) memo.Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Repeated write failures must trip the breaker at the configured
// threshold, after which the cache serves memory-only and counts skipped
// appends instead of hammering the dead disk.
func TestBreakerTripsOnRepeatedWriteFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.cache")
	cfs := faults.WrapFS(nil, faults.Schedule{})
	c, err := memo.Open(memo.Config{
		Entries:          64,
		Path:             path,
		FS:               cfs,
		BreakerThreshold: 3,
		ReprobeInterval:  time.Hour, // never re-probe within this test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Armed after Open so the header write succeeds.
	cfs.FailNextWrites(100)

	for i := 0; i < 3; i++ {
		c.Put(breakerKey(i), []byte{byte(i)})
	}
	st := c.Stats()
	if !st.BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("breaker should be open after 3 failures: %+v", st)
	}
	if st.DiskFaults != 3 {
		t.Fatalf("DiskFaults = %d, want 3", st.DiskFaults)
	}

	// Appends while open are dropped, not attempted.
	c.Put(breakerKey(3), []byte{3})
	if st = c.Stats(); st.DiskSkipped != 1 {
		t.Fatalf("DiskSkipped = %d, want 1: %+v", st.DiskSkipped, st)
	}

	// The memory tier is unaffected: every entry is still served.
	for i := 0; i < 4; i++ {
		got, ok := c.Get(breakerKey(i))
		if !ok || !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("entry %d lost after breaker trip (ok=%v got=%v)", i, ok, got)
		}
	}
}

// After the re-probe interval the next append probes the disk with a
// crash-safe full rewrite; success closes the breaker and the rewritten
// log replays every resident entry on the next Open.
func TestBreakerReprobeRestoresDiskTier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.cache")
	cfs := faults.WrapFS(nil, faults.Schedule{})
	c, err := memo.Open(memo.Config{
		Entries:          64,
		Path:             path,
		FS:               cfs,
		BreakerThreshold: -1, // trip on the first failure
		ReprobeInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfs.FailNextWrites(1)
	c.Put(breakerKey(0), []byte("zero"))
	if st := c.Stats(); !st.BreakerOpen {
		t.Fatalf("breaker should trip on first failure: %+v", st)
	}

	// Keep putting until a probe fires and succeeds (the fault is spent).
	i := 1
	st := waitBreaker(t, c, "breaker to close", func(st memo.Stats) bool {
		c.Put(breakerKey(i), []byte(fmt.Sprintf("val-%d", i)))
		i++
		return !st.BreakerOpen
	})
	if st.DiskRewrites == 0 {
		t.Fatalf("expected a successful rewrite: %+v", st)
	}
	puts := i
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the real filesystem replays everything: the
	// rewrite recovered the entries whose appends were dropped.
	c2, err := memo.Open(memo.Config{Entries: 64, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.DiskLoaded != uint64(puts) {
		t.Fatalf("DiskLoaded = %d, want %d", st.DiskLoaded, puts)
	}
	for j := 1; j < puts; j++ {
		got, ok := c2.Get(breakerKey(j))
		if !ok || !bytes.Equal(got, []byte(fmt.Sprintf("val-%d", j))) {
			t.Fatalf("entry %d not replayed (ok=%v got=%q)", j, ok, got)
		}
	}
	if got, ok := c2.Get(breakerKey(0)); !ok || string(got) != "zero" {
		t.Fatalf("entry 0 (whose append failed) should be recovered by the rewrite: ok=%v got=%q", ok, got)
	}
}

// A probe that fails (here: the atomic rename dies) re-arms the timer and
// keeps the breaker open; a later probe succeeds and no .tmp debris or
// torn log survives.
func TestBreakerProbeFailureRearmsTimer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.cache")
	cfs := faults.WrapFS(nil, faults.Schedule{})
	c, err := memo.Open(memo.Config{
		Entries:          64,
		Path:             path,
		FS:               cfs,
		BreakerThreshold: -1,
		ReprobeInterval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfs.FailNextWrites(1)
	c.Put(breakerKey(0), []byte("zero"))
	cfs.FailNextRenames(1) // first probe dies at the rename step

	i := 1
	st := waitBreaker(t, c, "breaker to close after failed probe", func(st memo.Stats) bool {
		c.Put(breakerKey(i), []byte{byte(i)})
		i++
		return !st.BreakerOpen
	})
	if st.BreakerTrips != 1 || st.DiskRewrites != 1 {
		t.Fatalf("want one trip and one successful rewrite: %+v", st)
	}
	if st.DiskFaults < 2 {
		t.Fatalf("the failed probe should count as a fault: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("probe debris left behind: .tmp stat err = %v", err)
	}

	c2, err := memo.Open(memo.Config{Entries: 64, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.DiskDroppedBytes != 0 {
		t.Fatalf("rewritten log should have no torn tail: %+v", st)
	}
}

// A stale .tmp from a crash between probe-write and rename must be swept
// at Open and never read.
func TestOpenSweepsStaleProbeTmp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fn.cache")

	c, err := memo.Open(memo.Config{Entries: 64, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(breakerKey(0), []byte("kept"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(path+".tmp", []byte("crashed mid-probe garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := memo.Open(memo.Config{Entries: 64, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("stale .tmp should be removed at open: stat err = %v", err)
	}
	if got, ok := c2.Get(breakerKey(0)); !ok || string(got) != "kept" {
		t.Fatalf("log replay affected by stale tmp: ok=%v got=%q", ok, got)
	}
}
