// The disk tier: a length-prefixed append log of (key, payload) records so
// a restarted gatewayd starts with a warm function-result cache. The format
// is deliberately dumb — append-only, one record per Put, per-record CRC —
// because the cache tolerates loss: any record that fails to load is simply
// a future cache miss, never a wrong verdict.
//
//	file   := magic record*
//	magic  := "EGFM\x00\x00\x00\x01"            (8 bytes)
//	record := len(u32 BE) body crc32(u32 BE)    (crc = IEEE over body)
//	body   := key.Fn(32) key.Module(32) payload
//
// Loading stops at the first short read, oversized length or CRC mismatch;
// the file is truncated back to the last good record so subsequent appends
// stay readable after a crash mid-write.
//
// Disk trouble must never affect verdicts, so the tier sits behind a
// circuit breaker: after BreakerThreshold consecutive append failures the
// tier trips open and the cache degrades to memory-only. Every
// ReprobeInterval the next append probes the disk by rewriting the whole
// log from the resident entries — written to path+".tmp" and renamed over
// the log, so a crash mid-probe leaves the previous file intact — and a
// successful rewrite closes the breaker again.

package memo

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// diskMagic identifies (and versions) the cache-file format.
var diskMagic = [8]byte{'E', 'G', 'F', 'M', 0, 0, 0, 1}

// maxRecordBody bounds one record's body; payloads are tens of bytes, so
// anything near this is corruption, not data.
const maxRecordBody = 1 << 16

const keyBytes = 64 // Fn(32) + Module(32)

// Breaker defaults for Config fields left zero.
const (
	DefaultBreakerThreshold = 3
	DefaultReprobeInterval  = 30 * time.Second
)

// openDiskTier opens (creating if absent) the log at path, replays every
// valid record through emit, truncates trailing garbage, and leaves the
// file positioned for appends. snapshot must return the cache's resident
// records (LRU→MRU) for crash-safe rewrites. loaded/dropped report
// replayed records and discarded trailing bytes.
func openDiskTier(cfg Config, fs FS, snapshot func() []Record, emit func(Key, []byte)) (*diskTier, uint64, uint64, error) {
	d := &diskTier{
		fs:       fs,
		path:     cfg.Path,
		brk:      newBreaker(cfg.BreakerThreshold, cfg.ReprobeInterval),
		snapshot: snapshot,
	}
	// A crash between writing the probe file and renaming it leaves a stale
	// .tmp behind; it is dead weight, never read.
	_ = fs.Remove(cfg.Path + ".tmp")

	f, err := fs.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("memo: opening cache file: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("memo: sizing cache file: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("memo: rewinding cache file: %w", err)
	}

	var loaded uint64
	good := int64(len(diskMagic))
	if size == 0 {
		// Fresh file: write the header.
		if _, err := f.Write(diskMagic[:]); err != nil {
			f.Close()
			return nil, 0, 0, fmt.Errorf("memo: writing cache header: %w", err)
		}
	} else {
		loaded, good = loadRecords(bufio.NewReader(f), emit)
		if good == 0 {
			// Bad or missing magic: the whole file is garbage. Start over.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, 0, 0, fmt.Errorf("memo: resetting cache file: %w", err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return nil, 0, 0, err
			}
			if _, err := f.Write(diskMagic[:]); err != nil {
				f.Close()
				return nil, 0, 0, fmt.Errorf("memo: rewriting cache header: %w", err)
			}
			good = int64(len(diskMagic))
		}
	}
	dropped := uint64(0)
	if size > good {
		dropped = uint64(size - good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, 0, 0, fmt.Errorf("memo: truncating corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	d.f = f
	return d, loaded, dropped, nil
}

// loadRecords replays records from r, calling emit for each valid one. It
// returns the record count and the byte offset just past the last valid
// record — 0 if even the magic is wrong.
func loadRecords(r io.Reader, emit func(Key, []byte)) (loaded uint64, good int64) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != diskMagic {
		return 0, 0
	}
	good = int64(len(diskMagic))
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return loaded, good // clean EOF or truncated length prefix
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < keyBytes || n > maxRecordBody {
			return loaded, good // corrupt length
		}
		body := make([]byte, n+4) // body + crc
		if _, err := io.ReadFull(r, body); err != nil {
			return loaded, good // truncated record
		}
		crc := binary.BigEndian.Uint32(body[n:])
		body = body[:n]
		if crc32.ChecksumIEEE(body) != crc {
			return loaded, good // corrupt body
		}
		var k Key
		copy(k.Fn[:], body[:32])
		copy(k.Module[:], body[32:64])
		payload := append([]byte(nil), body[keyBytes:]...)
		emit(k, payload)
		loaded++
		good += 4 + int64(n) + 4
	}
}

// LoadCacheRecords replays the serialized cache-file bytes in data through
// emit, exactly as Open does from disk. It exists for the fuzz target over
// the decoder and for tests; corruption is tolerated identically.
func LoadCacheRecords(data []byte, emit func(Key, []byte)) (loaded uint64, good int64) {
	return loadRecords(bytes.NewReader(data), emit)
}

// AppendRecord serializes one record in the on-disk format (tests and the
// fuzz seed corpus).
func AppendRecord(dst []byte, k Key, payload []byte) []byte {
	n := keyBytes + len(payload)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	dst = append(dst, hdr[:]...)
	bodyStart := len(dst)
	dst = append(dst, k.Fn[:]...)
	dst = append(dst, k.Module[:]...)
	dst = append(dst, payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[bodyStart:]))
	return append(dst, crc[:]...)
}

// Record is one resident cache entry, as handed to the rewrite path.
type Record struct {
	Key     Key
	Payload []byte
}

// diskTier is the open append log behind its circuit breaker. Appends are
// serialized by a mutex; failures trip the breaker instead of losing the
// tier for good.
type diskTier struct {
	mu     sync.Mutex
	fs     FS
	path   string
	f      File // nil while the breaker is open or after close
	closed bool

	brk      breaker
	snapshot func() []Record

	faults   uint64 // I/O errors observed (appends and failed probes)
	skipped  uint64 // appends dropped while the breaker was open
	rewrites uint64 // successful crash-safe log rewrites
}

func (d *diskTier) append(k Key, payload []byte) {
	if len(payload) > maxRecordBody-keyBytes {
		return // never write a record the loader would refuse
	}
	rec := AppendRecord(nil, k, payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	ok, probing := d.brk.allow()
	if !ok {
		d.skipped++
		return
	}
	if probing {
		// Probe: rewrite the whole log from the resident entries (the entry
		// being appended is already resident, so it is included). Success
		// closes the breaker; failure re-arms the probe timer.
		if err := d.rewriteLocked(); err != nil {
			d.faults++
			d.skipped++
			d.brk.failure()
			return
		}
		d.brk.success()
		d.rewrites++
		return
	}
	if _, err := d.f.Write(rec); err != nil {
		d.faults++
		if d.brk.failure() {
			// Tripped: the (possibly wedged) file is abandoned and the cache
			// runs memory-only until a probe succeeds.
			if d.f != nil {
				_ = d.f.Close()
				d.f = nil
			}
		}
		return
	}
	d.brk.success()
}

// rewriteLocked writes a fresh log containing every resident entry to
// path+".tmp", syncs it, and renames it over the log — the only safe way
// back after arbitrary partial appends, and atomic under a crash at any
// point. On success d.f is the reopened log, positioned for appends.
func (d *diskTier) rewriteLocked() error {
	tmp := d.path + ".tmp"
	f, err := d.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 4096)
	buf = append(buf, diskMagic[:]...)
	for _, rec := range d.snapshot() {
		if len(rec.Payload) > maxRecordBody-keyBytes {
			continue
		}
		buf = AppendRecord(buf, rec.Key, rec.Payload)
		if len(buf) >= 1<<20 {
			if _, err := f.Write(buf); err != nil {
				f.Close()
				_ = d.fs.Remove(tmp)
				return err
			}
			buf = buf[:0]
		}
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = d.fs.Remove(tmp)
		return err
	}
	if err := d.fs.Rename(tmp, d.path); err != nil {
		_ = d.fs.Remove(tmp)
		return err
	}
	nf, err := d.fs.OpenFile(d.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return err
	}
	if d.f != nil {
		_ = d.f.Close()
	}
	d.f = nf
	return nil
}

// diskStats reports the tier's fault counters into st.
func (d *diskTier) fillStats(st *Stats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st.DiskFaults = d.faults
	st.DiskSkipped = d.skipped
	st.BreakerTrips = d.brk.trips
	st.BreakerOpen = d.brk.open
	st.DiskRewrites = d.rewrites
}

func (d *diskTier) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}
