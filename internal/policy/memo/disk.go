// The disk tier: a length-prefixed append log of (key, payload) records so
// a restarted gatewayd starts with a warm function-result cache. The format
// is deliberately dumb — append-only, one record per Put, per-record CRC —
// because the cache tolerates loss: any record that fails to load is simply
// a future cache miss, never a wrong verdict.
//
//	file   := magic record*
//	magic  := "EGFM\x00\x00\x00\x01"            (8 bytes)
//	record := len(u32 BE) body crc32(u32 BE)    (crc = IEEE over body)
//	body   := key.Fn(32) key.Module(32) payload
//
// Loading stops at the first short read, oversized length or CRC mismatch;
// the file is truncated back to the last good record so subsequent appends
// stay readable after a crash mid-write.

package memo

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// diskMagic identifies (and versions) the cache-file format.
var diskMagic = [8]byte{'E', 'G', 'F', 'M', 0, 0, 0, 1}

// maxRecordBody bounds one record's body; payloads are tens of bytes, so
// anything near this is corruption, not data.
const maxRecordBody = 1 << 16

const keyBytes = 64 // Fn(32) + Module(32)

// openDiskTier opens (creating if absent) the log at path, replays every
// valid record through emit, truncates trailing garbage, and leaves the
// file positioned for appends. loaded/dropped report replayed records and
// discarded trailing bytes.
func openDiskTier(path string, emit func(Key, []byte)) (*diskTier, uint64, uint64, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("memo: opening cache file: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("memo: sizing cache file: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("memo: rewinding cache file: %w", err)
	}

	var loaded uint64
	good := int64(len(diskMagic))
	if size == 0 {
		// Fresh file: write the header.
		if _, err := f.Write(diskMagic[:]); err != nil {
			f.Close()
			return nil, 0, 0, fmt.Errorf("memo: writing cache header: %w", err)
		}
	} else {
		loaded, good = loadRecords(bufio.NewReader(f), emit)
		if good == 0 {
			// Bad or missing magic: the whole file is garbage. Start over.
			if err := f.Truncate(0); err != nil {
				f.Close()
				return nil, 0, 0, fmt.Errorf("memo: resetting cache file: %w", err)
			}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				f.Close()
				return nil, 0, 0, err
			}
			if _, err := f.Write(diskMagic[:]); err != nil {
				f.Close()
				return nil, 0, 0, fmt.Errorf("memo: rewriting cache header: %w", err)
			}
			good = int64(len(diskMagic))
		}
	}
	dropped := uint64(0)
	if size > good {
		dropped = uint64(size - good)
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, 0, 0, fmt.Errorf("memo: truncating corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return &diskTier{f: f}, loaded, dropped, nil
}

// loadRecords replays records from r, calling emit for each valid one. It
// returns the record count and the byte offset just past the last valid
// record — 0 if even the magic is wrong.
func loadRecords(r io.Reader, emit func(Key, []byte)) (loaded uint64, good int64) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != diskMagic {
		return 0, 0
	}
	good = int64(len(diskMagic))
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return loaded, good // clean EOF or truncated length prefix
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < keyBytes || n > maxRecordBody {
			return loaded, good // corrupt length
		}
		body := make([]byte, n+4) // body + crc
		if _, err := io.ReadFull(r, body); err != nil {
			return loaded, good // truncated record
		}
		crc := binary.BigEndian.Uint32(body[n:])
		body = body[:n]
		if crc32.ChecksumIEEE(body) != crc {
			return loaded, good // corrupt body
		}
		var k Key
		copy(k.Fn[:], body[:32])
		copy(k.Module[:], body[32:64])
		payload := append([]byte(nil), body[keyBytes:]...)
		emit(k, payload)
		loaded++
		good += 4 + int64(n) + 4
	}
}

// LoadCacheRecords replays the serialized cache-file bytes in data through
// emit, exactly as Open does from disk. It exists for the fuzz target over
// the decoder and for tests; corruption is tolerated identically.
func LoadCacheRecords(data []byte, emit func(Key, []byte)) (loaded uint64, good int64) {
	return loadRecords(bytes.NewReader(data), emit)
}

// AppendRecord serializes one record in the on-disk format (tests and the
// fuzz seed corpus).
func AppendRecord(dst []byte, k Key, payload []byte) []byte {
	n := keyBytes + len(payload)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	dst = append(dst, hdr[:]...)
	bodyStart := len(dst)
	dst = append(dst, k.Fn[:]...)
	dst = append(dst, k.Module[:]...)
	dst = append(dst, payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(dst[bodyStart:]))
	return append(dst, crc[:]...)
}

// diskTier is the open append log. Appends are serialized by a mutex; a
// failed append disables the tier (the in-memory cache keeps working).
type diskTier struct {
	mu     sync.Mutex
	f      *os.File
	broken bool
}

func (d *diskTier) append(k Key, payload []byte) {
	if len(payload) > maxRecordBody-keyBytes {
		return // never write a record the loader would refuse
	}
	rec := AppendRecord(nil, k, payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.broken || d.f == nil {
		return
	}
	if _, err := d.f.Write(rec); err != nil {
		// Disk trouble must not affect verdicts; stop persisting.
		d.broken = true
	}
}

func (d *diskTier) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}
