// The remote tier: cross-node sharing of memoized function outcomes over a
// small HTTP(S) batch protocol. The memo keys are SHA-256 content
// addresses, so an entry computed on any node is valid on every node — the
// fleet property ROADMAP item 2 builds on — and the only things that ever
// cross the wire are function digests, module fingerprints and the
// module-private revalidation payloads: never function bytes.
//
// Wire format (both directions) reuses the disk log's record encoding —
// magic header, length-prefixed records, per-record CRC — so the transfer
// decoder is the same corruption-tolerant, fuzz-hardened code path as the
// disk replay, and a byte-flipping peer is detected by checksum instead of
// being believed:
//
//	POST <peer>/get  body: "EGMQ\x00\x00\x00\x01" count(u32 BE) count×(Fn(32) Module(32))
//	                 resp: diskMagic record*          (records found on the peer)
//	POST <peer>/put  body: diskMagic record*
//	                 resp: 204
//
// The tier sits between the in-process LRU and the disk log and is fully
// optional: it is consulted in one batch per (module × provisioning) after
// the local probe, and a flaky peer can never corrupt or block a local
// provision — gets are bounded by a request timeout and guarded by the
// same consecutive-failure circuit breaker as the disk tier, puts are
// queued and flushed off the provisioning path (dropped, never blocking,
// when the queue is full or the breaker is open), and a response whose
// records fail their CRC counts as a peer fault that trips the breaker.
package memo

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// getMagic identifies (and versions) a batch-get request body.
var getMagic = [8]byte{'E', 'G', 'M', 'Q', 0, 0, 0, 1}

// Remote-tier bounds and defaults.
const (
	// DefaultRemoteTimeout bounds one peer round-trip; a slow peer must
	// never stall a provision longer than this.
	DefaultRemoteTimeout = 250 * time.Millisecond
	// DefaultRemotePutQueue bounds records waiting for the background
	// flusher; overflow is dropped, never blocked on.
	DefaultRemotePutQueue = 1024
	// maxBatchKeys bounds one get request; a provisioning probes one batch
	// per module, and images have thousands of functions, not millions.
	maxBatchKeys = 1 << 16
	// maxRemoteBody bounds a request or response body on both sides.
	maxRemoteBody = 16 << 20
	// putFlushBatch is the most records one background put carries.
	putFlushBatch = 256
)

// RemoteConfig configures the remote (peer) tier of a Cache.
type RemoteConfig struct {
	// Peers are base URLs of peer /memoz endpoints (e.g.
	// "http://10.0.0.2:7780/memoz"). Empty disables the tier. Gets try
	// peers in rotating order until one answers; puts go to the next peer
	// in the rotation.
	Peers []string
	// Timeout bounds one peer round-trip. 0 means DefaultRemoteTimeout.
	Timeout time.Duration
	// BreakerThreshold / ReprobeInterval configure the tier's circuit
	// breaker, with the same semantics and defaults as the disk tier's.
	BreakerThreshold int
	ReprobeInterval  time.Duration
	// PutQueue bounds records waiting to be flushed to a peer. 0 means
	// DefaultRemotePutQueue; negative disables remote puts (get-only).
	PutQueue int
	// Client overrides the HTTP client (fault injection in tests wraps the
	// transport's connections in faults.ChaosConn); nil builds one from
	// Timeout.
	Client *http.Client
}

// remoteTier is the peer client behind its circuit breaker.
type remoteTier struct {
	peers   []string
	client  *http.Client
	timeout time.Duration // per-round-trip deadline, enforced via request context

	mu  sync.Mutex
	brk breaker
	rr  int // next peer to try first

	hits       uint64 // records fetched from peers
	misses     uint64 // keys a peer batch did not return
	faults     uint64 // failed round-trips and corrupt responses
	skipped    uint64 // gets and put flushes dropped while the breaker was open
	puts       uint64 // records flushed to peers
	putDropped uint64 // records dropped because the put queue was full

	putCh     chan Record // nil when puts are disabled
	flushDone chan struct{}
	closeOnce sync.Once
}

func newRemoteTier(cfg RemoteConfig) *remoteTier {
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	r := &remoteTier{
		peers:   append([]string(nil), cfg.Peers...),
		client:  client,
		timeout: timeout,
		brk:     newBreaker(cfg.BreakerThreshold, cfg.ReprobeInterval),
	}
	for i, p := range r.peers {
		r.peers[i] = strings.TrimRight(p, "/")
	}
	queue := cfg.PutQueue
	if queue == 0 {
		queue = DefaultRemotePutQueue
	}
	if queue > 0 {
		r.putCh = make(chan Record, queue)
		r.flushDone = make(chan struct{})
		go r.flushLoop()
	}
	return r
}

// allow consults the breaker; the caller must report the attempt's outcome
// through done when ok.
func (r *remoteTier) allow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ok, _ := r.brk.allow()
	if !ok {
		r.skipped++
	}
	return ok
}

func (r *remoteTier) done(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.faults++
		r.brk.failure()
		return
	}
	r.brk.success()
}

// nextPeer rotates the starting peer so load (and put traffic) spreads.
func (r *remoteTier) nextPeer() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.rr
	r.rr = (r.rr + 1) % len(r.peers)
	return i
}

// fetch asks the peers for keys in one batch and returns the records
// found. Only records whose key was actually requested are returned; a
// response that fails its magic or any record CRC counts as a peer fault.
// fetch never returns an error — remote trouble is a miss, not a failure.
func (r *remoteTier) fetch(keys []Key) []Record {
	if len(keys) == 0 || len(keys) > maxBatchKeys || !r.allow() {
		return nil
	}
	body := make([]byte, 0, len(getMagic)+4+len(keys)*keyBytes)
	body = append(body, getMagic[:]...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(keys)))
	body = append(body, n[:]...)
	wanted := make(map[Key]struct{}, len(keys))
	for _, k := range keys {
		body = append(body, k.Fn[:]...)
		body = append(body, k.Module[:]...)
		wanted[k] = struct{}{}
	}

	start := r.nextPeer()
	var lastErr error
	for i := 0; i < len(r.peers); i++ {
		peer := r.peers[(start+i)%len(r.peers)]
		recs, err := r.getOnce(peer, body)
		if err != nil {
			lastErr = err
			continue
		}
		out := recs[:0]
		for _, rec := range recs {
			if _, ok := wanted[rec.Key]; ok {
				out = append(out, rec)
			}
		}
		r.mu.Lock()
		r.hits += uint64(len(out))
		r.misses += uint64(len(keys) - len(out))
		r.mu.Unlock()
		r.done(nil)
		return out
	}
	r.done(fmt.Errorf("memo: all %d peers failed: %w", len(r.peers), lastErr))
	return nil
}

// post performs one bounded round-trip. The deadline rides on the request
// context rather than the client, so even a caller-supplied *http.Client
// (fault injection, custom transports) cannot let a wedged peer block a
// local provision past the tier's timeout. The returned cancel must be
// called after the response body has been consumed.
func (r *remoteTier) post(url string, body []byte) (*http.Response, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

func (r *remoteTier) getOnce(peer string, body []byte) ([]Record, error) {
	resp, cancel, err := r.post(peer+"/get", body)
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("memo: peer %s: status %d", peer, resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxRemoteBody {
		return nil, fmt.Errorf("memo: peer %s: oversized response", peer)
	}
	var recs []Record
	_, good := LoadCacheRecords(data, func(k Key, payload []byte) {
		recs = append(recs, Record{Key: k, Payload: payload})
	})
	// Trailing garbage means a corrupt (or byte-flipped) response: the valid
	// prefix is still discarded — a peer that cannot frame its response
	// cannot be trusted to have framed the records either, and a miss is
	// always sound.
	if good != int64(len(data)) {
		return nil, fmt.Errorf("memo: peer %s: corrupt response (%d of %d bytes valid)", peer, good, len(data))
	}
	return recs, nil
}

// enqueuePut hands a freshly memoized record to the background flusher.
// Never blocks: a full queue drops the record (a future remote miss).
func (r *remoteTier) enqueuePut(rec Record) {
	if r.putCh == nil {
		return
	}
	select {
	case r.putCh <- rec:
	default:
		r.mu.Lock()
		r.putDropped++
		r.mu.Unlock()
	}
}

// flushLoop drains the put queue in batches, entirely off the provisioning
// path. The breaker gates every flush, so a dead peer costs one bounded
// round-trip per probe interval, not one per Put.
func (r *remoteTier) flushLoop() {
	defer close(r.flushDone)
	for rec, ok := <-r.putCh; ok; rec, ok = <-r.putCh {
		batch := []Record{rec}
		for len(batch) < putFlushBatch {
			select {
			case more, open := <-r.putCh:
				if !open {
					r.flush(batch)
					return
				}
				batch = append(batch, more)
			default:
				goto drained
			}
		}
	drained:
		r.flush(batch)
	}
}

func (r *remoteTier) flush(batch []Record) {
	if !r.allow() {
		return
	}
	body := make([]byte, 0, 1024)
	body = append(body, diskMagic[:]...)
	for _, rec := range batch {
		if len(rec.Payload) > maxRecordBody-keyBytes {
			continue
		}
		body = AppendRecord(body, rec.Key, rec.Payload)
	}
	peer := r.peers[r.nextPeer()]
	resp, cancel, err := r.post(peer+"/put", body)
	if err != nil {
		r.done(err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	cancel()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		r.done(fmt.Errorf("memo: peer %s: put status %d", peer, resp.StatusCode))
		return
	}
	r.mu.Lock()
	r.puts += uint64(len(batch))
	r.mu.Unlock()
	r.done(nil)
}

func (r *remoteTier) fillStats(st *Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st.RemoteHits = r.hits
	st.RemoteMisses = r.misses
	st.RemoteFaults = r.faults
	st.RemoteSkipped = r.skipped
	st.RemoteTrips = r.brk.trips
	st.RemoteOpen = r.brk.open
	st.RemotePuts = r.puts
	st.RemotePutDropped = r.putDropped
}

// close stops the flusher after draining what is already queued.
func (r *remoteTier) close() {
	r.closeOnce.Do(func() {
		if r.putCh != nil {
			close(r.putCh)
			<-r.flushDone
		}
	})
}

//
// Server side: the /memoz handler a gatewayd mounts so peers can get/put
// against its cache.
//

// Handler serves the remote-tier protocol over c: mount it at /memoz (the
// handler routes on the trailing path element, so any prefix works).
// GET-side lookups touch the LRU recency but are metered separately from
// local hits/misses, keeping the cache's own hit rate meaningful.
func Handler(c *Cache) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		switch {
		case strings.HasSuffix(req.URL.Path, "/get"):
			c.servePeerGet(w, req)
		case strings.HasSuffix(req.URL.Path, "/put"):
			c.servePeerPut(w, req)
		default:
			http.NotFound(w, req)
		}
	})
}

func (c *Cache) servePeerGet(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxRemoteBody+1))
	if err != nil || len(body) > maxRemoteBody {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return
	}
	if len(body) < len(getMagic)+4 || !bytes.Equal(body[:len(getMagic)], getMagic[:]) {
		http.Error(w, "bad get magic", http.StatusBadRequest)
		return
	}
	n := binary.BigEndian.Uint32(body[len(getMagic):])
	rest := body[len(getMagic)+4:]
	if n > maxBatchKeys || int(n)*keyBytes != len(rest) {
		http.Error(w, "bad key count", http.StatusBadRequest)
		return
	}
	c.peerGets.Add(1)
	out := make([]byte, 0, 4096)
	out = append(out, diskMagic[:]...)
	var served uint64
	for i := 0; i < int(n); i++ {
		var k Key
		copy(k.Fn[:], rest[i*keyBytes:])
		copy(k.Module[:], rest[i*keyBytes+32:])
		if payload, ok := c.peek(k); ok {
			out = AppendRecord(out, k, payload)
			served++
		}
	}
	c.peerServed.Add(served)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(out)
}

func (c *Cache) servePeerPut(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxRemoteBody+1))
	if err != nil || len(body) > maxRemoteBody {
		http.Error(w, "bad request body", http.StatusBadRequest)
		return
	}
	// Decode-then-commit, unlike the disk replay's salvage-the-prefix: a
	// peer whose batch is torn or flipped anywhere gets the whole batch
	// rejected — the CRC-valid prefix of a mangled body is not evidence the
	// sender framed anything correctly, and a dropped put is always sound.
	var recs []Record
	loaded, good := LoadCacheRecords(body, func(k Key, payload []byte) {
		recs = append(recs, Record{Key: k, Payload: payload})
	})
	if good != int64(len(body)) || loaded == 0 && len(body) > len(diskMagic) {
		http.Error(w, "corrupt record batch", http.StatusBadRequest)
		return
	}
	// Peer-pushed records stay memory-only — each node's disk log records
	// what that node computed or was explicitly handed.
	var stored uint64
	for _, rec := range recs {
		if c.insert(rec.Key, rec.Payload, false) {
			stored++
		}
	}
	c.peerStored.Add(stored)
	w.WriteHeader(http.StatusNoContent)
}

// peek is a stats-neutral Get for peer-serving lookups, so serving the
// fleet does not distort this node's own hit rate.
func (c *Cache) peek(k Key) ([]byte, bool) {
	return c.shards[shardOf(k)].get(k)
}
