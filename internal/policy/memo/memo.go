// Package memo implements EnGarde's content-addressed function-result
// cache: the incremental-verification layer that makes warm-path
// provisioning cheap. The paper's evaluation (§5, Figure 3) shows the cost
// of provisioning is dominated by policy modules re-examining library code
// that is byte-identical across tenant images — every client links the same
// approved musl build, yet the whole-image verdict cache (internal/gateway)
// only helps when the *entire* image repeats. This package memoizes policy
// outcomes at function granularity instead, keyed by
//
//	(SHA-256 of the function's linked bytes) × (module fingerprint)
//
// so a second image sharing the approved libc skips re-checking the shared
// text even though the image as a whole is new.
//
// # Soundness
//
// A memoized outcome is only a *pass* (violations abort provisioning and
// carry image-specific diagnostics; warm runs recheck violating functions in
// full, so rejection verdicts are bit-identical to cold runs by
// construction). Because a function's bytes do not pin everything a module
// examined — a stack-protector chain ends in a call that must resolve to
// __stack_chk_fail in *this* image's symbol table, an IFCC guard must load
// *this* image's jump-table base — each outcome carries a module-private,
// position-independent revalidation payload. On a hit the module revalidates
// those cross-function conditions cheaply (a few symbol lookups); if
// revalidation fails the hit is discarded and the function is rechecked in
// full. Falling back to the cold path is always sound, so cache corruption,
// eviction or payload-format drift can cost cycles but never change a
// verdict.
//
// # Tiers
//
// The cache has two tiers: an in-process sharded bounded LRU, shared across
// all gateway enclaves, and an optional disk-backed tier — a length-prefixed
// append log with per-record checksums — so a restarted gatewayd starts
// warm. Loading tolerates truncation and corruption: the log is replayed up
// to the first bad record and the rest is discarded.
package memo

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
	"time"
)

// Key addresses one memoized per-function outcome: the content identity of
// the function and the identity of the module (name, configuration and
// payload-format version) that produced the outcome.
type Key struct {
	// Fn is the SHA-256 of the function's linked bytes (start of function
	// to the next function start, the same span internal/policy/liblink
	// hashes).
	Fn [sha256.Size]byte
	// Module is the module's memo fingerprint (policy.Memoizable).
	Module [sha256.Size]byte
}

// DefaultEntries is the LRU capacity used when Config.Entries is zero.
const DefaultEntries = 1 << 16

// Config configures a Cache.
type Config struct {
	// Entries bounds the in-process LRU; 0 means DefaultEntries.
	Entries int
	// Path, when non-empty, enables the disk tier: outcomes are appended to
	// the log at Path and replayed on Open.
	Path string
	// FS overrides the filesystem behind the disk tier (fault injection in
	// tests); nil means the real OS filesystem.
	FS FS
	// BreakerThreshold is the number of consecutive disk-append failures
	// that trips the disk tier's circuit breaker, degrading the cache to
	// memory-only. 0 means DefaultBreakerThreshold; negative trips on the
	// first failure.
	BreakerThreshold int
	// ReprobeInterval is how long the tripped breaker waits before probing
	// the disk again (via a crash-safe temp-file+rename log rewrite).
	// 0 means DefaultReprobeInterval.
	ReprobeInterval time.Duration
	// Remote configures the optional peer tier (remote.go): batch gets from
	// fleet peers between the LRU and the disk log, async puts back to them.
	// An empty Peers list disables it.
	Remote RemoteConfig
}

// Stats is a point-in-time snapshot of cache metrics.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	// Bytes is the resident payload bytes (keys excluded).
	Bytes uint64 `json:"bytes"`
	// DiskLoaded counts records replayed from the disk tier at Open.
	DiskLoaded uint64 `json:"disk_loaded,omitempty"`
	// DiskDroppedBytes counts trailing log bytes discarded at Open because
	// of truncation or corruption.
	DiskDroppedBytes uint64 `json:"disk_dropped_bytes,omitempty"`
	// DiskFaults counts disk-tier I/O errors (failed appends and probes).
	DiskFaults uint64 `json:"disk_faults,omitempty"`
	// DiskSkipped counts appends dropped while the breaker was open.
	DiskSkipped uint64 `json:"disk_skipped,omitempty"`
	// BreakerTrips counts closed→open breaker transitions.
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	// BreakerOpen reports whether the disk tier is currently suspended
	// (cache running memory-only).
	BreakerOpen bool `json:"breaker_open,omitempty"`
	// DiskRewrites counts successful crash-safe log rewrites (re-probes
	// that closed the breaker).
	DiskRewrites uint64 `json:"disk_rewrites,omitempty"`
	// Remote-tier client counters: this node asking fleet peers.
	RemoteHits       uint64 `json:"remote_hits,omitempty"`
	RemoteMisses     uint64 `json:"remote_misses,omitempty"`
	RemoteFaults     uint64 `json:"remote_faults,omitempty"`
	RemoteSkipped    uint64 `json:"remote_skipped,omitempty"`
	RemoteTrips      uint64 `json:"remote_trips,omitempty"`
	RemoteOpen       bool   `json:"remote_open,omitempty"`
	RemotePuts       uint64 `json:"remote_puts,omitempty"`
	RemotePutDropped uint64 `json:"remote_put_dropped,omitempty"`
	// Peer-serving counters: fleet peers asking this node (/memoz).
	PeerGets   uint64 `json:"peer_gets,omitempty"`
	PeerServed uint64 `json:"peer_served,omitempty"`
	PeerStored uint64 `json:"peer_stored,omitempty"`
}

// Cache is the process-wide function-result cache: a sharded bounded LRU
// with an optional disk tier. It is safe for concurrent use; payloads
// returned by Get are shared and must not be mutated.
type Cache struct {
	shards [numShards]shard
	disk   *diskTier
	remote *remoteTier

	hits, misses, evictions, bytes atomic.Uint64
	diskLoaded, diskDropped        atomic.Uint64

	peerGets, peerServed, peerStored atomic.Uint64
}

// Open builds the cache, replaying the disk tier when configured. A
// malformed or truncated log is not an error: the valid prefix is loaded
// and the file is truncated back to it so subsequent appends are readable.
func Open(cfg Config) (*Cache, error) {
	entries := cfg.Entries
	if entries <= 0 {
		entries = DefaultEntries
	}
	c := &Cache{}
	perShard := (entries + numShards - 1) / numShards
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	if cfg.Path != "" {
		if cfg.FS == nil {
			cfg.FS = OSFS
		}
		disk, loaded, dropped, err := openDiskTier(cfg, cfg.FS, c.dump, func(k Key, payload []byte) {
			c.insert(k, payload, false)
		})
		if err != nil {
			return nil, err
		}
		c.disk = disk
		c.diskLoaded.Store(loaded)
		c.diskDropped.Store(dropped)
	}
	if len(cfg.Remote.Peers) > 0 {
		c.remote = newRemoteTier(cfg.Remote)
	}
	return c, nil
}

// Get returns the memoized payload for k. The returned slice is shared:
// callers must treat it as read-only.
func (c *Cache) Get(k Key) ([]byte, bool) {
	payload, ok := c.shards[shardOf(k)].get(k)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return payload, ok
}

// Put memoizes a passing outcome, evicting the least recently used entry of
// the key's shard at capacity, and appends it to the disk tier when one is
// configured.
func (c *Cache) Put(k Key, payload []byte) {
	if !c.insert(k, payload, true) {
		return // already present; nothing new to persist
	}
	if c.disk != nil {
		c.disk.append(k, payload)
	}
	if c.remote != nil {
		c.remote.enqueuePut(Record{Key: k, Payload: payload})
	}
}

// FetchRemote asks the fleet peers for the given keys in one batch and
// installs whatever comes back into the in-process LRU (memory-only —
// peer-fetched records are the peer's history, not this node's). It
// returns the installed records; remote trouble returns nil, never an
// error, and costs at most one bounded round-trip behind the breaker.
func (c *Cache) FetchRemote(keys []Key) []Record {
	if c.remote == nil || len(keys) == 0 {
		return nil
	}
	recs := c.remote.fetch(keys)
	for _, rec := range recs {
		c.insert(rec.Key, rec.Payload, false)
	}
	return recs
}

// RemoteEnabled reports whether a peer tier is configured.
func (c *Cache) RemoteEnabled() bool { return c.remote != nil }

// insert adds k to the LRU; fresh reports whether the key was new.
func (c *Cache) insert(k Key, payload []byte, countEvictions bool) (fresh bool) {
	added, evictedBytes, evicted := c.shards[shardOf(k)].put(k, payload)
	if !added {
		return false
	}
	c.bytes.Add(uint64(len(payload)))
	if evicted > 0 {
		c.bytes.Add(^(evictedBytes - 1)) // atomic subtract
		if countEvictions {
			c.evictions.Add(uint64(evicted))
		}
	}
	return true
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].len()
	}
	return n
}

// Stats snapshots the cache metrics.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Evictions:        c.evictions.Load(),
		Entries:          c.Len(),
		Bytes:            c.bytes.Load(),
		DiskLoaded:       c.diskLoaded.Load(),
		DiskDroppedBytes: c.diskDropped.Load(),
	}
	if c.disk != nil {
		c.disk.fillStats(&st)
	}
	if c.remote != nil {
		c.remote.fillStats(&st)
	}
	st.PeerGets = c.peerGets.Load()
	st.PeerServed = c.peerServed.Load()
	st.PeerStored = c.peerStored.Load()
	return st
}

// dump snapshots every resident entry, least recently used first within
// each shard, so a log rewritten from it replays back with recency intact.
func (c *Cache) dump() []Record {
	var out []Record
	for i := range c.shards {
		c.shards[i].appendAll(&out)
	}
	return out
}

// Close flushes and closes the disk and remote tiers, if any.
func (c *Cache) Close() error {
	if c.remote != nil {
		c.remote.close()
	}
	if c.disk == nil {
		return nil
	}
	return c.disk.close()
}

// numShards spreads lock contention across gateway workers; keys are
// uniform (SHA-256), so the low byte balances shards well.
const numShards = 16

func shardOf(k Key) int { return int(k.Fn[0]) % numShards }

// shard is one LRU shard: an intrusive doubly-linked recency list over map
// entries, bounded at max entries.
type shard struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*lruEntry
	head    *lruEntry // most recently used
	tail    *lruEntry // least recently used
}

type lruEntry struct {
	key        Key
	payload    []byte
	prev, next *lruEntry
}

func (s *shard) init(max int) {
	s.max = max
	s.entries = make(map[Key]*lruEntry, max)
}

func (s *shard) get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	s.moveToFront(e)
	return e.payload, true
}

// put inserts k; added is false when the key was already resident (the
// entry is refreshed, not replaced). evictedBytes/evicted describe the
// entries dropped to make room.
func (s *shard) put(k Key, payload []byte) (added bool, evictedBytes uint64, evicted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.moveToFront(e)
		return false, 0, 0
	}
	e := &lruEntry{key: k, payload: payload}
	s.entries[k] = e
	s.pushFront(e)
	for len(s.entries) > s.max {
		old := s.tail
		s.unlink(old)
		delete(s.entries, old.key)
		evictedBytes += uint64(len(old.payload))
		evicted++
	}
	return true, evictedBytes, evicted
}

func (s *shard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

func (s *shard) appendAll(out *[]Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for e := s.tail; e != nil; e = e.prev {
		*out = append(*out, Record{Key: e.key, Payload: e.payload})
	}
}

func (s *shard) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *lruEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
