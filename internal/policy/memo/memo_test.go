package memo

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// keyIn builds a distinct key landing in the given shard, so eviction
// tests can exercise one shard's LRU deterministically.
func keyIn(shard int, n int) Key {
	var k Key
	k.Fn = sha256.Sum256([]byte(fmt.Sprintf("fn-%d", n)))
	k.Fn[0] = byte(shard) // shardOf reads only the first byte
	k.Module = sha256.Sum256([]byte("mod"))
	return k
}

func TestGetPutRoundTrip(t *testing.T) {
	c, err := Open(Config{Entries: 64})
	if err != nil {
		t.Fatal(err)
	}
	k := keyIn(3, 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte{1, 2, 3})
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Get = %v, %v; want payload back", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// numShards shards, 2 entries each → per-shard capacity 2 when
	// Entries = 2 * numShards.
	c, err := Open(Config{Entries: 2 * numShards})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := keyIn(5, 1), keyIn(5, 2), keyIn(5, 3)
	c.Put(a, []byte("aa"))
	c.Put(b, []byte("bb"))
	// Touch a so b becomes least recently used, then overflow the shard.
	if _, ok := c.Get(a); !ok {
		t.Fatal("a should be resident")
	}
	c.Put(d, []byte("dd"))
	if _, ok := c.Get(b); ok {
		t.Fatal("b was most stale and should have been evicted")
	}
	if _, ok := c.Get(a); !ok {
		t.Fatal("a was recently used and should survive")
	}
	if _, ok := c.Get(d); !ok {
		t.Fatal("d was just inserted and should survive")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes != 4 { // "aa" + "dd"
		t.Fatalf("resident bytes = %d, want 4", st.Bytes)
	}
}

func TestPutExistingRefreshesRecency(t *testing.T) {
	c, err := Open(Config{Entries: 2 * numShards})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := keyIn(7, 1), keyIn(7, 2), keyIn(7, 3)
	c.Put(a, []byte("a"))
	c.Put(b, []byte("b"))
	c.Put(a, []byte("a")) // refresh, not duplicate
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d after duplicate Put, want 2", n)
	}
	c.Put(d, []byte("d"))
	if _, ok := c.Get(b); ok {
		t.Fatal("b should have been evicted (a was refreshed by Put)")
	}
}

func TestDiskTierRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.cache")
	c, err := Open(Config{Entries: 128, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 0; i < 10; i++ {
		k := keyIn(i, i)
		keys = append(keys, k)
		c.Put(k, []byte(fmt.Sprintf("payload-%d", i)))
	}
	c.Put(keyIn(0, 100), nil) // empty payloads round-trip too
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	warm, err := Open(Config{Entries: 128, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	st := warm.Stats()
	if st.DiskLoaded != 11 || st.DiskDroppedBytes != 0 {
		t.Fatalf("loaded %d records (dropped %d bytes), want 11 (0)", st.DiskLoaded, st.DiskDroppedBytes)
	}
	for i, k := range keys {
		got, ok := warm.Get(k)
		if !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("key %d: Get = %q, %v after reopen", i, got, ok)
		}
	}
	if p, ok := warm.Get(keyIn(0, 100)); !ok || len(p) != 0 {
		t.Fatalf("empty payload: Get = %v, %v", p, ok)
	}
}

func TestDiskTierReplayDoesNotCountEvictions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.cache")
	c, err := Open(Config{Entries: 1 << 10, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		c.Put(keyIn(i%numShards, i), []byte{byte(i)})
	}
	c.Close()

	// Reopen with a tiny capacity: replay overflows the LRU, but those
	// drops are a capacity choice, not runtime eviction pressure.
	warm, err := Open(Config{Entries: numShards, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if st := warm.Stats(); st.Evictions != 0 {
		t.Fatalf("replay counted %d evictions, want 0", st.Evictions)
	}
}

// corrupt writes a valid log, then mangles it with mutate, then asserts
// the reopen loads exactly wantLoaded records and the survivors hit.
func corruptionCase(t *testing.T, mutate func([]byte) []byte, wantLoaded uint64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fn.cache")
	c, err := Open(Config{Entries: 128, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Put(keyIn(i, i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	c.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := Open(Config{Entries: 128, Path: path})
	if err != nil {
		t.Fatalf("corrupted log must open cold, not fail: %v", err)
	}
	st := warm.Stats()
	if st.DiskLoaded != wantLoaded {
		t.Fatalf("loaded %d records, want %d", st.DiskLoaded, wantLoaded)
	}
	for i := uint64(0); i < wantLoaded; i++ {
		if _, ok := warm.Get(keyIn(int(i), int(i))); !ok {
			t.Fatalf("record %d should have survived", i)
		}
	}
	// The file was truncated back to the good prefix, so appends after a
	// corrupted load must round-trip.
	k := keyIn(9, 999)
	warm.Put(k, []byte("fresh"))
	warm.Close()
	again, err := Open(Config{Entries: 128, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if st := again.Stats(); st.DiskDroppedBytes != 0 {
		t.Fatalf("re-reopen dropped %d bytes; truncation after corruption left garbage", st.DiskDroppedBytes)
	}
	if _, ok := again.Get(k); !ok {
		t.Fatal("append after corrupted load did not persist")
	}
}

func TestDiskTierTruncatedMidRecord(t *testing.T) {
	corruptionCase(t, func(raw []byte) []byte {
		return raw[:len(raw)-7] // cut into the last record
	}, 4)
}

func TestDiskTierCorruptedChecksum(t *testing.T) {
	corruptionCase(t, func(raw []byte) []byte {
		raw[len(raw)-1] ^= 0xFF // flip a bit in the final record's CRC
		return raw
	}, 4)
}

func TestDiskTierCorruptedMidFile(t *testing.T) {
	corruptionCase(t, func(raw []byte) []byte {
		raw[len(raw)/2] ^= 0xFF // damage a record in the middle: suffix is lost
		return raw
	}, 2)
}

func TestDiskTierBadMagic(t *testing.T) {
	corruptionCase(t, func(raw []byte) []byte {
		raw[0] = 'X'
		return raw
	}, 0)
}

func TestDiskTierEmptyAndAlienFiles(t *testing.T) {
	for name, content := range map[string][]byte{
		"empty": {},
		"alien": []byte("this is not a cache file at all"),
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "fn.cache")
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := Open(Config{Entries: 16, Path: path})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if st := c.Stats(); st.DiskLoaded != 0 {
				t.Fatalf("loaded %d records from %s file", st.DiskLoaded, name)
			}
			k := keyIn(1, 1)
			c.Put(k, []byte("x"))
			c.Close()
			warm, err := Open(Config{Entries: 16, Path: path})
			if err != nil {
				t.Fatal(err)
			}
			defer warm.Close()
			if _, ok := warm.Get(k); !ok {
				t.Fatal("rewritten log did not persist the entry")
			}
		})
	}
}

func TestOversizedPayloadSkipsDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.cache")
	c, err := Open(Config{Entries: 16, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, maxRecordBody) // > maxRecordBody-keyBytes
	k := keyIn(2, 2)
	c.Put(k, big)
	if _, ok := c.Get(k); !ok {
		t.Fatal("oversized payload must still be served from memory")
	}
	c.Close()
	warm, err := Open(Config{Entries: 16, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, ok := warm.Get(k); ok {
		t.Fatal("oversized payload should not have been persisted")
	}
}
