package memo

import "time"

// breaker is the consecutive-failure circuit breaker shared by the disk
// tier and the remote (network-peer) tier. Both tiers are strictly
// optional accelerators: trouble must cost cycles, never verdicts, so
// after threshold consecutive failures the breaker opens and the tier is
// skipped entirely — no more syscalls or network round-trips on the
// provisioning path — until a timed probe succeeds and closes it again.
//
// The breaker does not lock itself; the owning tier's mutex guards it.
type breaker struct {
	threshold int           // consecutive failures that trip; <0 trips on the first
	reprobe   time.Duration // how long the open breaker waits before probing
	now       func() time.Time

	failures  int       // consecutive failures while closed
	open      bool      // tier suspended
	nextProbe time.Time // earliest probe while open
	trips     uint64    // closed→open transitions
}

// newBreaker applies the shared defaulting rules.
func newBreaker(threshold int, reprobe time.Duration) breaker {
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if reprobe <= 0 {
		reprobe = DefaultReprobeInterval
	}
	return breaker{threshold: threshold, reprobe: reprobe, now: time.Now}
}

// allow reports whether the tier may attempt an operation. While closed it
// is always true; while open it is true exactly when the probe timer has
// expired, and the attempt then doubles as the probe.
func (b *breaker) allow() (ok, probing bool) {
	if !b.open {
		return true, false
	}
	if b.now().Before(b.nextProbe) {
		return false, false
	}
	return true, true
}

// success records a working tier: failures reset and an open breaker
// closes.
func (b *breaker) success() {
	b.open = false
	b.failures = 0
}

// failure records one failed operation and reports whether this failure
// tripped the breaker (closed→open). While open it re-arms the probe
// timer.
func (b *breaker) failure() (tripped bool) {
	if b.open {
		b.nextProbe = b.now().Add(b.reprobe)
		return false
	}
	b.failures++
	if b.threshold < 0 || b.failures >= b.threshold {
		b.open = true
		b.trips++
		b.nextProbe = b.now().Add(b.reprobe)
		return true
	}
	return false
}
