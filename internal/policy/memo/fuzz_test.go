package memo

import (
	"crypto/sha256"
	"os"
	"testing"
)

// FuzzLoadCacheFile drives the disk-tier decoder over arbitrary bytes. The
// decoder sits on the warm-restart path of gatewayd, reading a file that
// may have been truncated by a crash or corrupted on disk, so it must
// never panic, never emit a record whose checksum did not verify, and
// always report a good-prefix offset that round-trips: re-decoding the
// good prefix must yield the same records, and appending to it must parse.
func FuzzLoadCacheFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage, not a cache file"))
	f.Add(diskMagic[:])
	valid := append([]byte(nil), diskMagic[:]...)
	var k Key
	k.Fn = sha256.Sum256([]byte("fn"))
	k.Module = sha256.Sum256([]byte("mod"))
	valid = AppendRecord(valid, k, []byte("payload"))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])        // truncated mid-record
	f.Add(append(valid, 0, 0, 0, 200)) // trailing garbage length
	f.Add(append(valid, valid[8:]...)) // two records
	f.Add(append(valid, 0xFF, 0xFF))   // huge length prefix
	mangled := append([]byte(nil), valid...)
	mangled[len(mangled)-1] ^= 0x01 // bad CRC
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		type rec struct {
			k       Key
			payload string
		}
		var got []rec
		loaded, good := LoadCacheRecords(data, func(k Key, payload []byte) {
			got = append(got, rec{k, string(payload)})
		})
		if loaded != uint64(len(got)) {
			t.Fatalf("loaded = %d but emitted %d records", loaded, len(got))
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good prefix %d out of range [0, %d]", good, len(data))
		}
		if loaded > 0 && good < int64(len(diskMagic)) {
			t.Fatalf("emitted %d records but good prefix %d excludes the magic", loaded, good)
		}

		// Determinism over the good prefix: decoding it again yields the
		// identical record sequence and consumes the whole prefix.
		var again []rec
		loaded2, good2 := LoadCacheRecords(data[:good], func(k Key, payload []byte) {
			again = append(again, rec{k, string(payload)})
		})
		if loaded2 != loaded || good2 != good {
			t.Fatalf("good prefix re-decode: loaded %d/%d, good %d/%d", loaded2, loaded, good2, good)
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("record %d differs on re-decode", i)
			}
		}

		// Appendability: a record appended at the good prefix must parse,
		// which is what the runtime relies on after truncating a damaged
		// log back to its good prefix.
		if good >= int64(len(diskMagic)) {
			var k Key
			k.Fn = sha256.Sum256(data)
			k.Module = sha256.Sum256([]byte("appended"))
			ext := AppendRecord(append([]byte(nil), data[:good]...), k, []byte("tail"))
			extLoaded, extGood := LoadCacheRecords(ext, func(Key, []byte) {})
			if extLoaded != loaded+1 || extGood != int64(len(ext)) {
				t.Fatalf("append after good prefix: loaded %d (want %d), good %d (want %d)",
					extLoaded, loaded+1, extGood, len(ext))
			}
		}

		// The full Open path must accept whatever bytes are on disk.
		path := t.TempDir() + "/fuzz.cache"
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip(err)
		}
		c, err := Open(Config{Entries: 32, Path: path})
		if err != nil {
			t.Fatalf("Open on fuzzed file: %v", err)
		}
		c.Close()
	})
}
