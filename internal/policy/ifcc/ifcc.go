// Package ifcc implements the indirect function-call compliance policy of
// the paper's evaluation (§5, Figure 5): it verifies that the executable
// was compiled with LLVM's indirect function-call checks (IFCC, Tice et
// al.), i.e. that every indirect call site carries the guard sequence
//
//	lea   <jump-table>(%rip), %rax
//	sub   %eax, %ecx
//	and   $<mask>, %rcx
//	add   %rax, %rcx
//	callq *%rcx
//
// with data dependence between the registers, and that the masked target
// necessarily lands inside the jump table, whose entries all have the form
//
//	jmpq <function> ; nopl (%rax)
//
// Following the paper's algorithm: the module first figures out the range
// of the jump table (via the __llvm_jump_instr_table symbols and the
// entry-format invariant), then iterates through the instruction buffer
// looking for indirect calls and pattern-matching the guard before each.
package ifcc

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"strings"

	"engarde/internal/policy"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

// TableSymbolPrefix is the LLVM jump-table symbol prefix.
const TableSymbolPrefix = "__llvm_jump_instr_table_"

// slotSize is the jump-table entry stride (jmpq rel32 + nopl = 8 bytes).
const slotSize = 8

// Module is the IFCC policy module.
type Module struct{}

// New returns the module.
func New() *Module { return &Module{} }

// Name implements policy.Module.
func (m *Module) Name() string { return "ifcc" }

// table describes a discovered jump table.
type table struct {
	base uint64
	size uint64 // bytes; power of two × slotSize
}

// Check implements policy.Module.
func (m *Module) Check(ctx *policy.Context) error {
	return policy.RunSharded(ctx, m)
}

// memoVersion tags the revalidation-payload format: empty for a function
// with no indirect calls, else uvarint(mask) + signed-varint(table base −
// function address). Bump on any change to the encoding.
const memoVersion = "ifcc/1"

// MemoFingerprint implements policy.Memoizable.
func (m *Module) MemoFingerprint() [sha256.Size]byte {
	return policy.MemoKeyFP(m, memoVersion)
}

// BeginShards implements policy.Sharded: jump-table discovery is the
// serial prologue (it can itself report a Violation); call sites are
// owned by the span containing the call instruction. The backwards guard
// walk may read instructions before the span — spans are read-only views
// of the shared buffer, so that is safe.
func (m *Module) BeginShards(ctx *policy.Context) (policy.SpanChecker, error) {
	tbl, err := m.findJumpTable(ctx)
	if err != nil {
		return nil, err
	}
	c := &checker{m: m, tbl: tbl}
	if ctx.Memo != nil {
		c.memo = true
		c.fp = m.MemoFingerprint()
	}
	return c, nil
}

type checker struct {
	m    *Module
	tbl  *table
	memo bool
	fp   [sha256.Size]byte
}

// CheckSpan scans instructions [lo, hi) for indirect calls and verifies
// the IFCC guard sequence before each.
func (c *checker) CheckSpan(ctx *policy.Context, lo, hi int) error {
	if c.memo {
		return c.checkSpanMemo(ctx, lo, hi)
	}
	_, err := c.scanRange(ctx, lo, hi)
	return err
}

// scanRange is the per-instruction scan over [lo, hi); it returns the
// number of indirect call sites verified.
func (c *checker) scanRange(ctx *policy.Context, lo, hi int) (int, error) {
	m := c.m
	p := ctx.Program
	sites := 0
	for i := lo; i < hi; i++ {
		// Visiting an instruction means inspecting its opcode and both
		// operand slots for the indirect-call shape.
		ctx.ChargeScan(1)
		ctx.ChargePattern(3)
		in := &p.Insts[i]
		if !in.IsIndirectCall() {
			continue
		}
		if c.tbl == nil {
			return sites, &policy.Violation{
				Module: m.Name(), Addr: in.Addr,
				Reason: "indirect call present but the binary has no IFCC jump table",
			}
		}
		if err := m.checkCallSite(ctx, i, c.tbl); err != nil {
			return sites, err
		}
		sites++
	}
	return sites, nil
}

// checkSpanMemo walks [lo, hi) function by function via the digest table.
// A whole function with a revalidated hit is skipped; a miss is scanned in
// full and recorded. Instructions outside any digest span (the prefix gap,
// padding) and functions straddling a span cut are scanned cold.
func (c *checker) checkSpanMemo(ctx *policy.Context, lo, hi int) error {
	i := lo
	for i < hi {
		sp, ok := ctx.Memo.SpanContaining(i)
		if !ok {
			if _, err := c.scanRange(ctx, i, i+1); err != nil {
				return err
			}
			i++
			continue
		}
		segEnd := sp.EndIdx
		if segEnd > hi {
			segEnd = hi
		}
		if sp.StartIdx < lo || sp.EndIdx > hi {
			// Straddles the span cut: each touching span scans its part
			// cold, so no span depends on another's progress.
			if _, err := c.scanRange(ctx, i, segEnd); err != nil {
				return err
			}
			i = segEnd
			continue
		}
		if payload, hit := ctx.Memo.Hit(c.fp, sp.Addr); hit && c.revalidate(ctx, payload, sp.Addr) {
			ctx.Memo.CountReuse(1)
			i = segEnd
			continue
		}
		sites, err := c.scanRange(ctx, sp.StartIdx, sp.EndIdx)
		if err != nil {
			return err
		}
		ctx.Memo.Record(c.fp, sp.Addr, c.payload(sites, sp.Addr))
		i = segEnd
	}
	return nil
}

// payload encodes the memo payload for a function that passed the scan
// with the given number of indirect call sites. Every passing site carried
// mask == size−slotSize and base == tbl.base, so one (mask, base-rel) pair
// pins all of them.
func (c *checker) payload(sites int, fnAddr uint64) []byte {
	if sites == 0 {
		return nil
	}
	b := binary.AppendUvarint(nil, c.tbl.size-slotSize)
	return binary.AppendVarint(b, int64(c.tbl.base)-int64(fnAddr))
}

// revalidate checks a memoized function against *this* image's jump
// table: the mask its sites carry must match the table size and the
// RIP-relative base its sites load must land on the table.
func (c *checker) revalidate(ctx *policy.Context, payload []byte, fnAddr uint64) bool {
	if len(payload) == 0 {
		return true // no indirect calls in the digest-pinned bytes
	}
	ctx.ChargePattern(2)
	if c.tbl == nil {
		return false
	}
	mask, n := binary.Uvarint(payload)
	if n <= 0 {
		return false
	}
	rel, n2 := binary.Varint(payload[n:])
	if n2 <= 0 || n+n2 != len(payload) {
		return false
	}
	return mask == c.tbl.size-slotSize && fnAddr+uint64(rel) == c.tbl.base
}

// Finish implements policy.SpanChecker; there is no epilogue.
func (c *checker) Finish(ctx *policy.Context) error { return nil }

// findJumpTable locates the jump table via its symbols and verifies the
// entry format invariant the paper relies on. Returns nil (no error) when
// the binary simply has no table.
func (m *Module) findJumpTable(ctx *policy.Context) (*table, error) {
	var entries []symtab.Entry
	for _, fn := range ctx.Symbols.Functions() {
		ctx.ChargeLookup(1)
		if strings.HasPrefix(fn.Name, TableSymbolPrefix) {
			entries = append(entries, fn)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	// Functions() is address-sorted, so entries are in table order.
	base := entries[0].Addr
	size := uint64(len(entries)) * slotSize
	p := ctx.Program

	// Verify contiguity and the jmpq/nopl format of every slot.
	for k, ent := range entries {
		ctx.ChargePattern(3)
		want := base + uint64(k)*slotSize
		if ent.Addr != want {
			return nil, &policy.Violation{
				Module: m.Name(), Addr: ent.Addr,
				Reason: fmt.Sprintf("jump table not contiguous at slot %d", k),
			}
		}
		ji, ok := p.InstAt(ent.Addr)
		if !ok || p.Insts[ji].Op != x86.OpJmp {
			return nil, &policy.Violation{
				Module: m.Name(), Addr: ent.Addr,
				Reason: fmt.Sprintf("jump table slot %d is not a jmpq", k),
			}
		}
		if ji+1 >= len(p.Insts) || p.Insts[ji+1].Op != x86.OpNop || p.Insts[ji+1].Len != 3 {
			return nil, &policy.Violation{
				Module: m.Name(), Addr: ent.Addr,
				Reason: fmt.Sprintf("jump table slot %d is not jmpq+nopl", k),
			}
		}
		// Slot targets must be valid function starts outside the table.
		tgt, _ := p.Insts[ji].BranchTarget()
		ctx.ChargeLookup(1)
		if name, ok := ctx.Symbols.NameAt(tgt); !ok || strings.HasPrefix(name, TableSymbolPrefix) {
			return nil, &policy.Violation{
				Module: m.Name(), Addr: ent.Addr,
				Reason: fmt.Sprintf("jump table slot %d targets a non-function", k),
			}
		}
	}
	// The and-mask argument requires a power-of-two table size and
	// size-aligned base.
	if size&(size-1) != 0 {
		return nil, &policy.Violation{
			Module: m.Name(), Addr: base,
			Reason: fmt.Sprintf("jump table size %d is not a power of two", size),
		}
	}
	if base%size != 0 {
		return nil, &policy.Violation{
			Module: m.Name(), Addr: base,
			Reason: "jump table is not aligned to its size",
		}
	}
	return &table{base: base, size: size}, nil
}

// checkCallSite verifies the guard sequence ending in the indirect call at
// instruction index ci. Alignment NOPs may be interleaved.
func (m *Module) checkCallSite(ctx *policy.Context, ci int, tbl *table) error {
	p := ctx.Program
	call := &p.Insts[ci]
	if call.NArgs != 1 || call.Args[0].Kind != x86.KindReg {
		return m.siteViolation(call, "indirect call through memory cannot carry an IFCC guard")
	}
	ptrReg := call.Args[0].Reg

	// Walk backwards over the guard, skipping NOPs.
	prev := func(i int) int {
		i--
		for i >= 0 && p.Insts[i].Op == x86.OpNop {
			ctx.ChargeScan(1)
			i--
		}
		return i
	}

	// add %rax, %rcx (dst = ptrReg, src = base register).
	ai := prev(ci)
	ctx.ChargePattern(2)
	if ai < 0 || p.Insts[ai].Op != x86.OpAdd || p.Insts[ai].NArgs != 2 ||
		!p.Insts[ai].Args[0].IsReg(ptrReg) || p.Insts[ai].Args[1].Kind != x86.KindReg {
		return m.siteViolation(call, "missing add step of IFCC guard")
	}
	baseReg := p.Insts[ai].Args[1].Reg

	// and $mask, %rcx.
	ni := prev(ai)
	ctx.ChargePattern(2)
	if ni < 0 || p.Insts[ni].Op != x86.OpAnd || p.Insts[ni].NArgs != 2 ||
		!p.Insts[ni].Args[0].IsReg(ptrReg) {
		return m.siteViolation(call, "missing and-mask step of IFCC guard")
	}
	mask := uint64(p.Insts[ni].Imm)
	if mask != tbl.size-slotSize {
		return m.siteViolation(call, fmt.Sprintf(
			"IFCC mask %#x does not match jump table size %#x", mask, tbl.size))
	}
	if mask%slotSize != 0 {
		return m.siteViolation(call, "IFCC mask does not preserve slot alignment")
	}

	// sub %eax, %ecx (32-bit, dst = ptrReg, src = baseReg).
	si := prev(ni)
	ctx.ChargePattern(2)
	if si < 0 || p.Insts[si].Op != x86.OpSub || p.Insts[si].NArgs != 2 ||
		!p.Insts[si].Args[0].IsReg(ptrReg) || !p.Insts[si].Args[1].IsReg(baseReg) {
		return m.siteViolation(call, "missing sub step of IFCC guard")
	}

	// lea table(%rip), %rax.
	li := prev(si)
	ctx.ChargePattern(2)
	if li < 0 || p.Insts[li].Op != x86.OpLea || !p.Insts[li].Args[0].IsReg(baseReg) {
		return m.siteViolation(call, "missing lea step of IFCC guard")
	}
	leaTgt, ok := p.Insts[li].RIPTarget()
	if !ok || leaTgt != tbl.base {
		return m.siteViolation(call, fmt.Sprintf(
			"IFCC guard base %#x is not the jump table %#x", leaTgt, tbl.base))
	}

	// With base == table, mask == size-8 and slot-aligned masking, the
	// computed target base + (ptr-base)&mask necessarily lands on a slot
	// inside [table, table+size) — the "target is within the range of the
	// jump table" conclusion of the paper's check.
	ctx.ChargePattern(1)
	return nil
}

func (m *Module) siteViolation(call *x86.Inst, reason string) error {
	return &policy.Violation{Module: m.Name(), Addr: call.Addr, Reason: reason}
}
