package ifcc

import (
	"encoding/binary"
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/policytest"
	"engarde/internal/toolchain"
)

func cfg(ifcc bool) toolchain.Config {
	return toolchain.Config{
		Name: "ic", Seed: 41,
		NumFuncs: 10, AvgFuncInsts: 80,
		IndirectRate:       0.03,
		NumIndirectTargets: 5,
		IFCC:               ifcc,
	}
}

func TestInstrumentedBinaryPasses(t *testing.T) {
	bin := policytest.Build(t, cfg(true))
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestUninstrumentedBinaryRejected(t *testing.T) {
	bin := policytest.Build(t, cfg(false))
	ctx := policytest.Context(t, bin)
	err := New().Check(ctx)
	v, ok := policy.AsViolation(err)
	if !ok {
		t.Fatalf("Check = %v, want violation", err)
	}
	if v.Addr == 0 {
		t.Error("violation should carry the indirect-call address")
	}
}

func TestNoIndirectCallsPasses(t *testing.T) {
	// A program without indirect calls trivially complies even without a
	// jump table.
	c := cfg(false)
	c.IndirectRate = 0
	bin := policytest.Build(t, c)
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestTamperedMaskRejected(t *testing.T) {
	// Widen one guard's and-mask: the masked target could then escape the
	// jump table, so the policy must reject it.
	bin := policytest.Build(t, cfg(true))
	// The guard's and is 48 81 E1 <imm32> with imm = tableSize-8.
	mask := uint32(bin.JumpTableSize - 8)
	img := bin.Image
	patched := false
	for i := 0; i+7 <= len(img); i++ {
		if img[i] == 0x48 && img[i+1] == 0x81 && img[i+2] == 0xE1 &&
			binary.LittleEndian.Uint32(img[i+3:]) == mask {
			binary.LittleEndian.PutUint32(img[i+3:], 0xFFF8)
			patched = true
			break
		}
	}
	if !patched {
		t.Fatal("no IFCC and-mask found to patch")
	}
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err == nil {
		t.Error("widened mask must be rejected")
	}
}

func TestMissingGuardStepRejected(t *testing.T) {
	// Replace the sub step (29 C1: sub %eax,%ecx) preceding a guard with
	// NOPs: data dependence is broken.
	bin := policytest.Build(t, cfg(true))
	img := bin.Image
	patched := false
	for i := 0; i+2 <= len(img); i++ {
		if img[i] == 0x29 && img[i+1] == 0xC1 {
			img[i], img[i+1] = 0x90, 0x90
			patched = true
			break
		}
	}
	if !patched {
		t.Skip("no sub eax,ecx sequence found (register allocation changed)")
	}
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err == nil {
		t.Error("guard with missing sub step must be rejected")
	}
}

func TestJumpTableDiscovery(t *testing.T) {
	bin := policytest.Build(t, cfg(true))
	ctx := policytest.Context(t, bin)
	m := New()
	tbl, err := m.findJumpTable(ctx)
	if err != nil {
		t.Fatalf("findJumpTable: %v", err)
	}
	if tbl == nil {
		t.Fatal("no table found")
	}
	if tbl.base != bin.JumpTableAddr || tbl.size != bin.JumpTableSize {
		t.Errorf("table = %#x+%#x, want %#x+%#x", tbl.base, tbl.size,
			bin.JumpTableAddr, bin.JumpTableSize)
	}
}

func TestCheckCostRoughlyLinear(t *testing.T) {
	// Figure 5's checking cost is almost uniform per instruction across
	// benchmarks — the scan dominates. Verify our per-instruction cost
	// stays in a narrow band across very different shapes.
	a := policytest.Build(t, toolchain.Config{
		Name: "lin-a", Seed: 42, NumFuncs: 40, AvgFuncInsts: 60,
		IFCC: true, IndirectRate: 0.01, NumIndirectTargets: 4})
	b := policytest.Build(t, toolchain.Config{
		Name: "lin-b", Seed: 43, NumFuncs: 4, AvgFuncInsts: 900,
		IFCC: true, IndirectRate: 0.01, NumIndirectTargets: 4})
	ctxA := policytest.Context(t, a)
	ctxB := policytest.Context(t, b)
	if err := New().Check(ctxA); err != nil {
		t.Fatal(err)
	}
	if err := New().Check(ctxB); err != nil {
		t.Fatal(err)
	}
	perA := float64(ctxA.Counter.Cycles(cycles.PhasePolicy)) / float64(a.NumInsts)
	perB := float64(ctxB.Counter.Cycles(cycles.PhasePolicy)) / float64(b.NumInsts)
	ratio := perA / perB
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("per-instruction cost ratio %.2f outside [0.5, 2.0] (%.1f vs %.1f)", ratio, perA, perB)
	}
}
