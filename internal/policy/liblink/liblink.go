// Package liblink implements the library-linking compliance policy of the
// paper's evaluation (§5, Figure 3): it verifies that an executable is
// linked against an approved library build — musl-libc v1.0.5 in the paper
// — by comparing SHA-256 hashes of the library functions the program
// actually calls against a database the cloud provider derived from its
// approved build.
//
// Following the paper's algorithm exactly: the module iterates through the
// instruction buffer looking for direct function calls. For each one it
// computes the call target and resolves it through the symbol hash table;
// an unresolvable target marks the call invalid. If the resolved name is in
// the approved-library database, the module hashes the function's
// instructions — reading from the target address until it encounters an
// instruction at the beginning of another function — and compares against
// the database. No memoization is performed (the paper describes none), so
// hot library functions are re-hashed per call site; this is the dominant
// cost in Figure 3.
package liblink

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync/atomic"

	"engarde/internal/policy"
)

// Module is the library-linking policy module.
type Module struct {
	libName string
	db      map[string][sha256.Size]byte
	// RequireUse, when set, additionally demands that the program call at
	// least one approved-library function (a program that never touches
	// libc trivially satisfies the hash check).
	RequireUse bool
}

// New builds the module for the named library with the provider's hash
// database (function name → SHA-256 of the function's linked bytes).
func New(libName string, db map[string][sha256.Size]byte) *Module {
	return &Module{libName: libName, db: db}
}

// Name implements policy.Module.
func (m *Module) Name() string { return "liblink(" + m.libName + ")" }

// Fingerprint implements policy.Fingerprinter: the verdict depends on the
// approved-hash database and the RequireUse setting, so both go into the
// canonical identity. Entries are folded in sorted-name order so map
// iteration order cannot perturb the digest.
func (m *Module) Fingerprint() []byte {
	names := make([]string, 0, len(m.db))
	for name := range m.db {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		fmt.Fprintf(h, "%d:%s=", len(name), name)
		sum := m.db[name]
		h.Write(sum[:])
	}
	if m.RequireUse {
		h.Write([]byte("require-use"))
	}
	return h.Sum(nil)
}

// Check implements policy.Module.
func (m *Module) Check(ctx *policy.Context) error {
	return policy.RunSharded(ctx, m)
}

// UsesDigestTable implements policy.DigestTableUser. The module does not
// memoize call-site verdicts across images (they depend on the resolved
// callee, not only the caller's bytes), but when a memo session is active
// its per-site hash is exactly the content digest the session's
// fingerprint pass already computed, so each site costs one digest-table
// fetch instead of a full re-hash — the paper's dominant Figure 3 cost.
func (m *Module) UsesDigestTable() {}

// BeginShards implements policy.Sharded. Call sites are owned by the span
// containing the call instruction; the library-use tally is accumulated
// atomically and judged once in Finish.
func (m *Module) BeginShards(ctx *policy.Context) (policy.SpanChecker, error) {
	return &checker{m: m}, nil
}

type checker struct {
	m    *Module
	used atomic.Uint64
}

// CheckSpan scans instructions [lo, hi) for direct calls and verifies each
// resolvable target against the approved-library database.
func (c *checker) CheckSpan(ctx *policy.Context, lo, hi int) error {
	m := c.m
	p := ctx.Program
	for i := lo; i < hi; i++ {
		ctx.ChargeScan(1)
		in := &p.Insts[i]
		if !in.IsDirectCall() {
			continue
		}
		target, ok := in.BranchTarget()
		if !ok {
			continue
		}
		// Resolve the target through the symbol hash table.
		ctx.ChargeLookup(1)
		name, ok := ctx.Symbols.NameAt(target)
		if !ok {
			return &policy.Violation{
				Module: m.Name(), Addr: in.Addr,
				Reason: fmt.Sprintf("direct call target %#x is not a known function", target),
			}
		}
		// Hash the target function unconditionally — the paper's check
		// hashes every resolvable direct-call target and then compares
		// against the library database ("otherwise, it will compute the
		// SHA-256 hash of all the instructions of the function"). Only
		// names present in the database carry an expectation; the rest
		// are application-internal functions.
		var got [sha256.Size]byte
		if d, ok := digestFor(ctx, target); ok {
			got = d
		} else {
			var n uint64
			var err error
			got, n, err = m.hashFunction(ctx, target)
			if err != nil {
				return err
			}
			ctx.ChargeHash(n)
		}
		want, inDB := m.db[name]
		if !inDB {
			continue
		}
		if got != want {
			return &policy.Violation{
				Module: m.Name(), Addr: in.Addr,
				Reason: fmt.Sprintf("function %q does not match the approved %s build", name, m.libName),
			}
		}
		c.used.Add(1)
	}
	return nil
}

// Finish enforces RequireUse once every span has passed.
func (c *checker) Finish(ctx *policy.Context) error {
	m := c.m
	if m.RequireUse && c.used.Load() == 0 {
		return &policy.Violation{
			Module: m.Name(),
			Reason: fmt.Sprintf("program never calls into %s; linkage cannot be verified", m.libName),
		}
	}
	return nil
}

// digestFor fetches the target function's content digest from the memo
// session's table when one is active. The table is computed with exactly
// hashFunction's boundary rule, so the digest equals what hashFunction
// would return; one probe replaces the whole per-site walk. Targets the
// fingerprint pass skipped (non-boundary starts, non-symbol targets) miss
// and take the cold path, which reports the precise violation.
func digestFor(ctx *policy.Context, addr uint64) ([sha256.Size]byte, bool) {
	if ctx.Memo == nil {
		return [sha256.Size]byte{}, false
	}
	d, ok := ctx.Memo.Digest(addr)
	if ok {
		ctx.ChargeMemoProbe(1)
	}
	return d, ok
}

// hashFunction hashes the instructions of the function starting at addr,
// stopping at the first instruction that begins another function (paper
// §5: "the policy module sequentially reads instructions starting from the
// computed target address and stops when it comes across an instruction
// that is at the beginning of another function"). It returns the hash and
// the number of bytes hashed.
func (m *Module) hashFunction(ctx *policy.Context, addr uint64) ([sha256.Size]byte, uint64, error) {
	p := ctx.Program
	idx, ok := p.InstAt(addr)
	if !ok {
		return [sha256.Size]byte{}, 0, &policy.Violation{
			Module: m.Name(), Addr: addr,
			Reason: "call target is not an instruction boundary",
		}
	}
	h := sha256.New()
	var n uint64
	for i := idx; i < len(p.Insts); i++ {
		in := &p.Insts[i]
		if i > idx {
			// The symbol hash table tells us whether this instruction
			// starts another function.
			ctx.ChargeLookup(1)
			if ctx.Symbols.IsFuncStart(in.Addr) {
				break
			}
		}
		h.Write(in.Raw)
		n += uint64(len(in.Raw))
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, n, nil
}
