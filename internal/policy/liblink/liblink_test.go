package liblink

import (
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/policytest"
	"engarde/internal/toolchain"
)

func cfg() toolchain.Config {
	return toolchain.Config{
		Name: "ll", Seed: 21,
		NumFuncs: 10, AvgFuncInsts: 70,
		LibcCallRate: 0.08, AppCallRate: 0.02,
	}
}

func TestCompliantBinaryPasses(t *testing.T) {
	bin := policytest.Build(t, cfg())
	ctx := policytest.Context(t, bin)
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, false)
	if err != nil {
		t.Fatal(err)
	}
	m := New("musl-libc v1.0.5", db)
	m.RequireUse = true
	if err := m.Check(ctx); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestWrongLibraryVersionRejected(t *testing.T) {
	// The binary links musl 1.0.5, but the provider's database comes from
	// 1.1.0: every hashed function differs.
	bin := policytest.Build(t, cfg())
	ctx := policytest.Context(t, bin)
	db, err := toolchain.MuslHashDB(toolchain.MuslV110, false)
	if err != nil {
		t.Fatal(err)
	}
	err = New("musl-libc v1.1.0", db).Check(ctx)
	if err == nil {
		t.Fatal("expected violation for wrong library version")
	}
	if _, ok := policy.AsViolation(err); !ok {
		t.Errorf("error is not a Violation: %v", err)
	}
}

func TestBinaryLinkingOtherVersionRejected(t *testing.T) {
	// Conversely: binary built against 1.1.0, provider requires 1.0.5.
	c := cfg()
	c.MuslVersion = toolchain.MuslV110
	bin := policytest.Build(t, c)
	ctx := policytest.Context(t, bin)
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := New("musl-libc v1.0.5", db).Check(ctx); err == nil {
		t.Fatal("expected violation")
	}
}

func TestRequireUse(t *testing.T) {
	bin := policytest.Build(t, cfg())
	ctx := policytest.Context(t, bin)
	// An empty database means no call ever matches a library function.
	m := New("musl-libc v1.0.5", map[string][32]byte{})
	m.RequireUse = true
	err := m.Check(ctx)
	v, ok := policy.AsViolation(err)
	if !ok {
		t.Fatalf("Check = %v, want require-use violation", err)
	}
	if v.Addr != 0 {
		t.Errorf("require-use violation should not carry an address")
	}
}

func TestChargesAccounted(t *testing.T) {
	bin := policytest.Build(t, cfg())
	ctx := policytest.Context(t, bin)
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := New("musl", db).Check(ctx); err != nil {
		t.Fatal(err)
	}
	// The scan must have visited every instruction, and hashing must have
	// processed a multiple of the text (hot functions re-hashed per call).
	scans := ctx.Counter.Units(cycles.PhasePolicy, cycles.UnitScanInst)
	if scans < uint64(bin.NumInsts) {
		t.Errorf("scanned %d < %d instructions", scans, bin.NumInsts)
	}
	hashed := ctx.Counter.Units(cycles.PhasePolicy, cycles.UnitHashedByte)
	if hashed == 0 {
		t.Error("no bytes hashed; the library check did not run")
	}
}
