// Memoization support: the glue between policy modules and the
// content-addressed function-result cache (internal/policy/memo).
//
// The protocol is deliberately conservative:
//
//   - Only *passing* per-function outcomes are memoized. A violating
//     function is always rechecked in full, so warm and cold runs reject
//     with bit-identical violations.
//   - A hit carries a module-private revalidation payload pinning the
//     cross-function conditions the function's own bytes do not (a
//     __stack_chk_fail resolution, a jump-table base, ...). Failed
//     revalidation silently falls back to the full check.
//   - Probing happens once, serially, in Set.ProbeMemo before any module
//     runs: modules' prologues execute concurrently under CheckParallel, so
//     the hit sets must be fixed — and therefore lock-free to read — before
//     the fan-out.
package policy

import (
	"crypto/sha256"
	"encoding/binary"

	"engarde/internal/cycles"
)

// ChargeMemoProbe records n function-result cache probes.
func (c *Context) ChargeMemoProbe(n uint64) { c.charge(cycles.UnitMemoProbe, n) }

// Memoizable is optionally implemented by modules that can reuse
// per-function outcomes across images through the function-result cache.
// MemoFingerprint must identify the module, its configuration, and its
// revalidation-payload format: two modules with equal fingerprints must
// interpret each other's payloads and accept exactly the same functions.
type Memoizable interface {
	Module
	MemoFingerprint() [sha256.Size]byte
}

// MemoKeyFP builds a module's memo fingerprint from its Name, its
// Fingerprinter digest when it has one, and a format-version tag that the
// module bumps whenever its payload encoding changes (stale-format entries
// then simply miss instead of being misparsed).
func MemoKeyFP(m Module, formatVersion string) [sha256.Size]byte {
	h := sha256.New()
	writeField := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	writeField([]byte(m.Name()))
	if f, ok := m.(Fingerprinter); ok {
		writeField(f.Fingerprint())
	} else {
		writeField(nil)
	}
	writeField([]byte(formatVersion))
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// AnyMemoizable reports whether any module in the set can use the
// function-result cache (directly, or via the digest table like liblink).
// The core pipeline uses it to skip the fingerprint pass when nothing
// would consume it.
func (s *Set) AnyMemoizable() bool {
	for _, m := range s.modules {
		if _, ok := m.(Memoizable); ok {
			return true
		}
		if _, ok := m.(DigestTableUser); ok {
			return true
		}
	}
	return false
}

// DigestTableUser marks modules that consume the session's digest table
// without memoizing outcomes across images (liblink: call-site verdicts
// depend on the callee database, but each site's hash is exactly the
// digest the fingerprint pass already computed).
type DigestTableUser interface {
	UsesDigestTable()
}

// ProbeMemo fixes every memoizable module's hit set for this provisioning.
// It must run serially, after the session's fingerprint pass and before
// Check/CheckParallel; probes are charged to the policy phase here so the
// charge order is deterministic regardless of worker count.
func (s *Set) ProbeMemo(ctx *Context) {
	if ctx.Memo == nil {
		return
	}
	for _, m := range s.modules {
		if mm, ok := m.(Memoizable); ok {
			ctx.ChargeMemoProbe(uint64(ctx.Memo.Probe(mm.MemoFingerprint())))
		}
	}
}
