package policy

import (
	"errors"
	"fmt"
	"testing"

	"engarde/internal/cycles"
)

// fakeModule is a scriptable policy module.
type fakeModule struct {
	name   string
	err    error
	called *int
}

func (m *fakeModule) Name() string { return m.name }
func (m *fakeModule) Check(*Context) error {
	if m.called != nil {
		*m.called++
	}
	return m.err
}

func TestSetRunsInOrderAndStopsAtViolation(t *testing.T) {
	var aCalls, bCalls, cCalls int
	v := &Violation{Module: "b", Addr: 0x40, Reason: "nope"}
	s := NewSet(
		&fakeModule{name: "a", called: &aCalls},
		&fakeModule{name: "b", called: &bCalls, err: v},
		&fakeModule{name: "c", called: &cCalls},
	)
	err := s.Check(&Context{})
	if err == nil {
		t.Fatal("expected violation")
	}
	if aCalls != 1 || bCalls != 1 || cCalls != 0 {
		t.Errorf("calls = %d/%d/%d, want 1/1/0", aCalls, bCalls, cCalls)
	}
	got, ok := AsViolation(err)
	if !ok || got != v {
		t.Errorf("AsViolation = %v, %v", got, ok)
	}
}

func TestSetAllPass(t *testing.T) {
	s := NewSet(&fakeModule{name: "a"}, &fakeModule{name: "b"})
	if err := s.Check(&Context{}); err != nil {
		t.Errorf("Check: %v", err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestSetAdd(t *testing.T) {
	s := NewSet()
	s.Add(&fakeModule{name: "x"})
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestNonViolationErrorPropagates(t *testing.T) {
	boom := errors.New("machinery broke")
	s := NewSet(&fakeModule{name: "a", err: boom})
	err := s.Check(&Context{})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if _, ok := AsViolation(err); ok {
		t.Error("plain error must not be a Violation")
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Module: "m", Addr: 0x1234, Reason: "bad"}
	if msg := v.Error(); msg != "policy m: violation at 0x1234: bad" {
		t.Errorf("Error() = %q", msg)
	}
	v2 := &Violation{Module: "m", Reason: "global"}
	if msg := v2.Error(); msg != "policy m: violation: global" {
		t.Errorf("Error() = %q", msg)
	}
	// Wrapped violations still extract.
	wrapped := fmt.Errorf("module m: %w", v)
	if got, ok := AsViolation(wrapped); !ok || got != v {
		t.Error("wrapped violation not extracted")
	}
}

func TestContextChargesNilCounterSafe(t *testing.T) {
	ctx := &Context{} // no counter
	ctx.ChargeScan(5)
	ctx.ChargeLookup(5)
	ctx.ChargePattern(5)
	ctx.ChargeHash(100)
}

func TestContextCharges(t *testing.T) {
	ctr := cycles.NewCounter(cycles.DefaultModel())
	ctx := &Context{Counter: ctr}
	ctx.ChargeScan(3)
	ctx.ChargeLookup(2)
	ctx.ChargePattern(4)
	ctx.ChargeHash(64)
	if got := ctr.Units(cycles.PhasePolicy, cycles.UnitScanInst); got != 3 {
		t.Errorf("scan units = %d", got)
	}
	if got := ctr.Units(cycles.PhasePolicy, cycles.UnitHashedByte); got != 64 {
		t.Errorf("hashed bytes = %d", got)
	}
	if got := ctr.Units(cycles.PhasePolicy, cycles.UnitHashInit); got != 1 {
		t.Errorf("hash inits = %d", got)
	}
}

// fpModule is a configurable test module implementing Fingerprinter.
type fpModule struct {
	name string
	fp   []byte
}

func (m fpModule) Name() string         { return m.name }
func (m fpModule) Check(*Context) error { return nil }
func (m fpModule) Fingerprint() []byte  { return m.fp }

func TestSetFingerprint(t *testing.T) {
	a := fpModule{name: "a", fp: []byte{1}}
	b := fpModule{name: "b", fp: []byte{2}}

	same1 := NewSet(a, b).Fingerprint()
	same2 := NewSet(a, b).Fingerprint()
	if same1 != same2 {
		t.Error("identical sets must share a fingerprint")
	}
	if NewSet(a, b).Fingerprint() == NewSet(b, a).Fingerprint() {
		t.Error("module order must be part of the identity")
	}
	if NewSet(a).Fingerprint() == NewSet(a, b).Fingerprint() {
		t.Error("module count must be part of the identity")
	}
	reconfigured := fpModule{name: "a", fp: []byte{9}}
	if NewSet(a).Fingerprint() == NewSet(reconfigured).Fingerprint() {
		t.Error("module configuration must be part of the identity")
	}
	if NewSet().Fingerprint() == NewSet(a).Fingerprint() {
		t.Error("empty set must differ from non-empty")
	}
}
