// Parallel policy checking. Modules run concurrently, and modules that
// implement Sharded additionally split their instruction-buffer scan into
// index spans checked across a worker pool. The merge is deterministic:
// staging counters and errors are folded in set order (and, within a
// module, span order), so the verdict — including the Violation address —
// and the per-phase cycle totals are identical to the sequential path for
// any worker count.
package policy

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"engarde/internal/cycles"
	"engarde/internal/nacl"
	"engarde/internal/symtab"
)

// Sharded is optionally implemented by modules whose scan over the
// instruction buffer can be split into disjoint index spans. The contract
// that makes sharding exact: work (and its charges) is owned by the span
// containing the *start* index/address of the item being checked, checkers
// may freely read instructions outside their span, and CheckSpan visits
// its span in ascending order so its first error is the span's
// lowest-position error.
type Sharded interface {
	Module
	// BeginShards runs the module's serial prologue (symbol discovery,
	// table validation, ...) and returns the checker shared by all spans.
	// A returned error — possibly a *Violation — aborts the module.
	BeginShards(ctx *Context) (SpanChecker, error)
}

// SpanChecker checks one module over index spans of ctx.Program.Insts.
// CheckSpan may run concurrently with itself on disjoint spans; Finish
// runs once, after every span passed.
type SpanChecker interface {
	CheckSpan(ctx *Context, lo, hi int) error
	Finish(ctx *Context) error
}

// RunSharded drives a Sharded module sequentially: prologue, one span
// covering the whole buffer, epilogue. Modules implement Check by
// delegating here, which makes the sequential path and the single-span
// parallel path the same code by construction.
func RunSharded(ctx *Context, m Sharded) error {
	checker, err := m.BeginShards(ctx)
	if err != nil {
		return err
	}
	if err := checker.CheckSpan(ctx, 0, len(ctx.Program.Insts)); err != nil {
		return err
	}
	return checker.Finish(ctx)
}

// SpanAddrRange maps an index span [lo, hi) of p.Insts to the address
// interval it owns. The first span's interval is extended down to 0 and
// the last span's up to the maximum address, so items (function symbols,
// call targets) falling outside the decoded region are still owned by
// exactly one span.
func SpanAddrRange(p *nacl.Program, lo, hi int) (loAddr, hiAddr uint64) {
	loAddr = 0
	if lo > 0 && lo < len(p.Insts) {
		loAddr = p.Insts[lo].Addr
	}
	hiAddr = ^uint64(0)
	if hi < len(p.Insts) {
		hiAddr = p.Insts[hi].Addr
	}
	return loAddr, hiAddr
}

// FuncsInSpan returns the subslice of funcs (address-sorted, as returned
// by symtab.Table.Functions) owned by the index span [lo, hi): those whose
// start address falls in the span's address interval.
func FuncsInSpan(p *nacl.Program, funcs []symtab.Entry, lo, hi int) []symtab.Entry {
	loAddr, hiAddr := SpanAddrRange(p, lo, hi)
	i := sort.Search(len(funcs), func(i int) bool { return funcs[i].Addr >= loAddr })
	j := sort.Search(len(funcs), func(j int) bool { return funcs[j].Addr >= hiAddr })
	return funcs[i:j]
}

// minSpanInsts bounds sharding overhead: spans are never cut smaller than
// this many instructions, so small programs are checked in one span.
const minSpanInsts = 1024

// cutSpans splits [0, n) into at most `parts` contiguous spans.
func cutSpans(n, parts int) [][2]int {
	if parts > n/minSpanInsts {
		parts = n / minSpanInsts
	}
	if parts < 1 {
		parts = 1
	}
	size := (n + parts - 1) / parts
	var spans [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	if len(spans) == 0 {
		spans = append(spans, [2]int{0, 0})
	}
	return spans
}

// moduleResult is one module's parallel outcome: its error (if any) and
// the staging counters to fold, in deterministic order, on merge.
type moduleResult struct {
	stages []*cycles.Counter
	err    error
}

// CheckParallel runs every module concurrently, sharding the scans of
// Sharded modules across a pool of the given size (<= 0 means GOMAXPROCS).
// The verdict and all cycle charges are identical to Check: each worker
// charges a private staging counter, and on merge the stages are folded
// into ctx.Counter in set order — within the first failing module, span
// stages only up to the failing span — exactly reproducing the sequential
// early-exit totals.
func (s *Set) CheckParallel(ctx *Context, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(s.modules) == 0 {
		return s.Check(ctx)
	}

	// stage returns a private counter for one task's charges, or nil when
	// the caller isn't metering.
	stage := func() *cycles.Counter {
		if ctx.Counter == nil {
			return nil
		}
		return ctx.Counter.Stage()
	}
	withCounter := func(c *cycles.Counter) *Context {
		c2 := *ctx
		c2.Counter = c
		return &c2
	}

	// sem gates the tasks that do real scanning work; coordinator
	// goroutines (one per module) don't hold slots while waiting.
	sem := make(chan struct{}, workers)
	spans := cutSpans(len(ctx.Program.Insts), workers)

	results := make([]moduleResult, len(s.modules))
	var wg sync.WaitGroup
	for mi, m := range s.modules {
		wg.Add(1)
		go func(mi int, m Module) {
			defer wg.Done()
			res := &results[mi]
			sp := ctx.Trace.StartSpan("policy:" + m.Name())
			defer sp.End()

			sh, ok := m.(Sharded)
			if !ok {
				// Opaque module: run whole, as one pool task.
				sem <- struct{}{}
				defer func() { <-sem }()
				st := stage()
				res.err = m.Check(withCounter(st))
				res.stages = []*cycles.Counter{st}
				return
			}

			// Serial prologue.
			pst := stage()
			checker, err := sh.BeginShards(withCounter(pst))
			res.stages = append(res.stages, pst)
			if err != nil {
				res.err = err
				return
			}

			// Fan the spans out across the pool.
			spanStages := make([]*cycles.Counter, len(spans))
			spanErrs := make([]error, len(spans))
			var swg sync.WaitGroup
			for si, sp := range spans {
				swg.Add(1)
				go func(si, lo, hi int) {
					defer swg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					st := stage()
					spanStages[si] = st
					spanErrs[si] = checker.CheckSpan(withCounter(st), lo, hi)
				}(si, sp[0], sp[1])
			}
			swg.Wait()

			// Merge spans in order: fold stages up to the first failing
			// span inclusive — what a sequential scan would have charged
			// before stopping there.
			for si := range spans {
				res.stages = append(res.stages, spanStages[si])
				if spanErrs[si] != nil {
					res.err = spanErrs[si]
					return
				}
			}

			fst := stage()
			res.err = checker.Finish(withCounter(fst))
			res.stages = append(res.stages, fst)
		}(mi, m)
	}
	wg.Wait()

	// Merge modules in set order, stopping at the first failure — the
	// sequential contract. Later modules' work is discarded unfolded.
	for mi, m := range s.modules {
		res := &results[mi]
		if ctx.Counter != nil {
			for _, st := range res.stages {
				ctx.Counter.Fold(st)
			}
		}
		if res.err != nil {
			if _, isViolation := AsViolation(res.err); isViolation {
				return res.err
			}
			return fmt.Errorf("module %s: %w", m.Name(), res.err)
		}
	}
	return nil
}
