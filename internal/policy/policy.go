// Package policy defines EnGarde's pluggable policy-module architecture
// (paper §3): "EnGarde checks policies using pluggable policy modules. Each
// policy module checks compliance for a specific property, and specific
// policy modules that are loaded during enclave creation depend upon the
// policies that the client and cloud provider have agreed upon."
//
// A Module receives a Context with the validated instruction buffer, the
// symbol hash table, and a cycle counter; it reports either compliance or
// a Violation that names the offending address. The three modules of the
// paper's evaluation live in the liblink, stackprot and ifcc subpackages.
package policy

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"engarde/internal/cycles"
	"engarde/internal/nacl"
	"engarde/internal/obs"
	"engarde/internal/policy/memo"
	"engarde/internal/symtab"
)

// Context is what a policy module gets to inspect. The instruction buffer
// and symbol table are read-only; all metered work must go through the
// Charge helpers so the evaluation tables come out right.
type Context struct {
	// Program is the validated, fully decoded instruction buffer.
	Program *nacl.Program
	// Symbols is the symbol hash table built during disassembly.
	Symbols *symtab.Table
	// Counter receives policy-phase work charges; may be nil.
	Counter *cycles.Counter
	// Memo, when non-nil, is the per-image view of the function-result
	// cache: the digest table plus the per-module hit sets fixed by
	// Set.ProbeMemo. Nil means cold checking (the default).
	Memo *memo.Session
	// Trace, when non-nil, receives one wall-clock span per policy module.
	// Module spans may run concurrently under CheckParallel, so they carry
	// no cycle attribution — the enclosing pipeline phase span does.
	Trace *obs.Trace
	// JumpTableHint carries binary metadata some policies need (unused by
	// the built-in modules, reserved for extensions).
	JumpTableHint uint64
}

// ChargeScan records n instruction-buffer visit steps.
func (c *Context) ChargeScan(n uint64) { c.charge(cycles.UnitScanInst, n) }

// ChargeLookup records n symbol hash-table lookups.
func (c *Context) ChargeLookup(n uint64) { c.charge(cycles.UnitSymLookup, n) }

// ChargePattern records n operand/pattern predicate evaluations.
func (c *Context) ChargePattern(n uint64) { c.charge(cycles.UnitPatternStep, n) }

// ChargeHash records one SHA-256 computation over n bytes.
func (c *Context) ChargeHash(n uint64) {
	c.charge(cycles.UnitHashInit, 1)
	c.charge(cycles.UnitHashedByte, n)
}

func (c *Context) charge(u cycles.Unit, n uint64) {
	if c.Counter != nil {
		c.Counter.Charge(cycles.PhasePolicy, u, n)
	}
}

// Violation is the error a module returns when the client's code is not
// policy compliant. EnGarde reports only the fact of non-compliance to the
// cloud provider; the details stay with the client.
type Violation struct {
	// Module is the reporting policy module's name.
	Module string
	// Addr is the offending code address (0 if not address-specific).
	Addr uint64
	// Reason is a human-readable explanation.
	Reason string
}

func (v *Violation) Error() string {
	if v.Addr != 0 {
		return fmt.Sprintf("policy %s: violation at %#x: %s", v.Module, v.Addr, v.Reason)
	}
	return fmt.Sprintf("policy %s: violation: %s", v.Module, v.Reason)
}

// AsViolation extracts a *Violation from an error chain.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// Module is one pluggable compliance check.
type Module interface {
	// Name identifies the module in reports.
	Name() string
	// Check inspects the program; it returns nil for compliant code and a
	// *Violation (possibly wrapped) otherwise. Any other error kind means
	// the check itself failed.
	Check(ctx *Context) error
}

// Set is an ordered collection of policy modules, as negotiated between
// the cloud provider and the client.
type Set struct {
	modules []Module
}

// NewSet builds a set from the given modules.
func NewSet(mods ...Module) *Set {
	return &Set{modules: mods}
}

// Add appends a module.
func (s *Set) Add(m Module) { s.modules = append(s.modules, m) }

// Names lists the module names in check order.
func (s *Set) Names() []string {
	out := make([]string, len(s.modules))
	for i, m := range s.modules {
		out[i] = m.Name()
	}
	return out
}

// Len returns the number of modules.
func (s *Set) Len() int { return len(s.modules) }

// Fingerprinter is optionally implemented by modules whose verdict depends
// on configuration beyond what Name() captures (an approved-hash database,
// a denied-instruction list, ...). Fingerprint must return a stable digest
// of that configuration: two modules with equal Name and equal Fingerprint
// must accept and reject exactly the same programs.
type Fingerprinter interface {
	Fingerprint() []byte
}

// Fingerprint returns a canonical SHA-256 digest identifying the set: the
// module count, then each module's name and (when the module implements
// Fingerprinter) its configuration digest, in check order. Because every
// module's Check is a pure function of the program and its configuration,
// two sets with equal fingerprints produce identical verdicts for
// byte-identical images — the property that makes verdict caching sound.
func (s *Set) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	writeField := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	var count [8]byte
	binary.BigEndian.PutUint64(count[:], uint64(len(s.modules)))
	h.Write(count[:])
	for _, m := range s.modules {
		writeField([]byte(m.Name()))
		if f, ok := m.(Fingerprinter); ok {
			writeField(f.Fingerprint())
		} else {
			writeField(nil)
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Check runs every module in order, stopping at the first violation.
func (s *Set) Check(ctx *Context) error {
	for _, m := range s.modules {
		sp := ctx.Trace.StartSpan("policy:" + m.Name())
		err := m.Check(ctx)
		sp.End()
		if err != nil {
			if _, isViolation := AsViolation(err); isViolation {
				// Violations already carry the module name.
				return err
			}
			return fmt.Errorf("module %s: %w", m.Name(), err)
		}
	}
	return nil
}
