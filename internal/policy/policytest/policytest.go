// Package policytest provides shared helpers for policy-module tests: it
// runs a built binary through the same parse → symtab → validate pipeline
// EnGarde's core uses and hands back a ready policy.Context.
package policytest

import (
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/nacl"
	"engarde/internal/policy"
	"engarde/internal/symtab"
	"engarde/internal/toolchain"
)

// Context disassembles and validates bin and returns a policy context over
// it, with a fresh default-model counter attached.
func Context(t *testing.T, bin *toolchain.Binary) *policy.Context {
	t.Helper()
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		t.Fatalf("policytest: parse: %v", err)
	}
	tab, err := symtab.FromELF(f)
	if err != nil {
		t.Fatalf("policytest: symtab: %v", err)
	}
	text := f.Section(".text")
	ctr := cycles.NewCounter(cycles.DefaultModel())
	prog, err := nacl.Validate(text.Data, text.Addr, f.Header.Entry, tab, ctr)
	if err != nil {
		t.Fatalf("policytest: validate: %v", err)
	}
	return &policy.Context{Program: prog, Symbols: tab, Counter: ctr}
}

// Build builds a toolchain config or fails the test.
func Build(t *testing.T, cfg toolchain.Config) *toolchain.Binary {
	t.Helper()
	bin, err := toolchain.Build(cfg)
	if err != nil {
		t.Fatalf("policytest: build: %v", err)
	}
	return bin
}
