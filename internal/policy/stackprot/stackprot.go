// Package stackprot implements the stack-protection compliance policy of
// the paper's evaluation (§5, Figure 4): it verifies that every function of
// the executable carries Clang's -fstack-protector(-all) canary
// instrumentation:
//
//	mov %fs:0x28, %rax        ; prologue: load canary
//	mov %rax, (%rsp)          ; prologue: store canary
//	...
//	mov %fs:0x28, %rax        ; epilogue: reload canary
//	cmp (%rsp), %rax          ; epilogue: compare
//	jne <fail>                ;
//	<fail>: callq __stack_chk_fail
//
// Following the paper's algorithm: within each function the module looks
// for instructions that affect the stack's variables (stores through %rsp);
// for each candidate it identifies the source operand, checks that the
// preceding instruction computes it from %fs:0x28, then searches the
// function for a cmp against the same stack slot whose own source was
// freshly reloaded from %fs:0x28, followed by a jne whose target is a call
// to __stack_chk_fail. Every stack-affecting store triggers a fresh search,
// so the check is superlinear in function size — which is why 401.bzip2
// (few gigantic functions) costs more than Nginx (thousands of small ones)
// despite having an order of magnitude fewer instructions.
package stackprot

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"engarde/internal/policy"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

// CanaryTLSOffset is the %fs-relative canary location Clang uses on
// x86-64 Linux.
const CanaryTLSOffset = 0x28

// FailFunc is the runtime helper invoked on canary mismatch.
const FailFunc = "__stack_chk_fail"

// Module is the stack-protection policy module.
type Module struct {
	// EarlyExit stops scanning a function at the first complete canary
	// chain. The paper's implementation visits every stack-affecting
	// instruction ("continues with the next iteration until it reaches the
	// end of the instruction buffer"), which is what makes the check
	// superlinear in function size — the mechanism behind Figure 4's
	// bzip2-costs-more-than-Nginx inversion. EarlyExit is the obvious
	// optimization; BenchmarkAblationStackprotEarlyExit quantifies it.
	EarlyExit bool
}

// New returns the module in its paper-faithful (exhaustive) configuration.
func New() *Module { return &Module{} }

// Name implements policy.Module.
func (m *Module) Name() string { return "stack-protector" }

// Check implements policy.Module.
func (m *Module) Check(ctx *policy.Context) error {
	return policy.RunSharded(ctx, m)
}

// memoVersion tags the revalidation-payload format: a signed varint of
// (jne-target address − function address), or empty for a trivial thunk.
// Bump it whenever the encoding or its interpretation changes.
const memoVersion = "stackprot/1"

// MemoFingerprint implements policy.Memoizable. EarlyExit changes only
// charge accounting, never the verdict, but memoized outcomes skip the
// charges too — so it is part of the identity to keep warm-path accounting
// consistent per configuration.
func (m *Module) MemoFingerprint() [sha256.Size]byte {
	v := memoVersion
	if m.EarlyExit {
		v += "+early-exit"
	}
	return policy.MemoKeyFP(m, v)
}

// BeginShards implements policy.Sharded. The check is function-granular:
// a function (and all its charges) is owned by the span whose address
// interval contains the function's start, so span cuts never split or
// double-count a function.
func (m *Module) BeginShards(ctx *policy.Context) (policy.SpanChecker, error) {
	c := &checker{m: m, funcs: ctx.Symbols.Functions()}
	if ctx.Memo != nil {
		c.memo = true
		c.fp = m.MemoFingerprint()
	}
	return c, nil
}

type checker struct {
	m     *Module
	funcs []symtab.Entry
	memo  bool
	fp    [sha256.Size]byte
}

// CheckSpan verifies every function owned by the index span [lo, hi).
func (c *checker) CheckSpan(ctx *policy.Context, lo, hi int) error {
	m := c.m
	p := ctx.Program
	for _, fn := range policy.FuncsInSpan(p, c.funcs, lo, hi) {
		startIdx, ok := p.InstAt(fn.Addr)
		if !ok {
			return &policy.Violation{
				Module: m.Name(), Addr: fn.Addr,
				Reason: fmt.Sprintf("function %s does not start at an instruction", fn.Name),
			}
		}
		ctx.ChargeLookup(1)
		endIdx := len(p.Insts)
		if next, ok := ctx.Symbols.NextFuncAfter(fn.Addr); ok {
			if i, ok := p.InstAt(next); ok {
				endIdx = i
			}
		}
		if c.memo {
			if done, err := c.checkMemo(ctx, fn, startIdx, endIdx); done {
				if err != nil {
					return err
				}
				continue
			}
		}
		if m.isTrivialThunk(p.Insts[startIdx:endIdx]) {
			// Jump-table entries and pure-padding spans have no stack
			// frame to protect; Clang does not instrument them either.
			continue
		}
		if _, err := m.checkFunction(ctx, fn.Name, startIdx, endIdx); err != nil {
			return err
		}
	}
	return nil
}

// Finish implements policy.SpanChecker; there is no epilogue.
func (c *checker) Finish(ctx *policy.Context) error { return nil }

// checkMemo runs one function through the memo cache: revalidated hit →
// skip, otherwise full check with the passing outcome recorded. done is
// false when the function is memo-ineligible — its boundary per
// NextFuncAfter disagrees with the digest span's, so the memoized bytes
// would not be the bytes this module inspects — and the caller must take
// the cold path.
func (c *checker) checkMemo(ctx *policy.Context, fn symtab.Entry, startIdx, endIdx int) (done bool, err error) {
	m := c.m
	sp, ok := ctx.Memo.Span(fn.Addr)
	if !ok || sp.StartIdx != startIdx || sp.EndIdx != endIdx {
		return false, nil
	}
	if payload, hit := ctx.Memo.Hit(c.fp, fn.Addr); hit && m.revalidate(ctx, payload, fn.Addr) {
		ctx.Memo.CountReuse(1)
		return true, nil
	}
	p := ctx.Program
	if m.isTrivialThunk(p.Insts[startIdx:endIdx]) {
		ctx.Memo.Record(c.fp, fn.Addr, nil)
		return true, nil
	}
	payload, err := m.checkFunction(ctx, fn.Name, startIdx, endIdx)
	if err != nil {
		return true, err
	}
	ctx.Memo.Record(c.fp, fn.Addr, payload)
	return true, nil
}

// revalidate re-executes the cross-function tail of a memoized canary
// chain: the payload's jne target (function-relative) must still lead —
// possibly through alignment NOPs — to a direct call resolving to
// __stack_chk_fail in *this* image's symbol table. An empty payload marks
// a trivial thunk, a pure function of the digest-pinned bytes.
func (m *Module) revalidate(ctx *policy.Context, payload []byte, fnAddr uint64) bool {
	if len(payload) == 0 {
		return true
	}
	rel, n := binary.Varint(payload)
	if n != len(payload) {
		return false
	}
	p := ctx.Program
	ti, ok := p.InstAt(fnAddr + uint64(rel))
	if !ok {
		return false
	}
	for ti < len(p.Insts) && p.Insts[ti].Op == x86.OpNop {
		ti++
	}
	if ti >= len(p.Insts) || !p.Insts[ti].IsDirectCall() {
		return false
	}
	callTgt, ok := p.Insts[ti].BranchTarget()
	if !ok {
		return false
	}
	ctx.ChargeLookup(1)
	fname, ok := ctx.Symbols.NameAt(callTgt)
	return ok && fname == FailFunc
}

// isTrivialThunk reports whether the body is only jumps/nops (IFCC
// jump-table slots).
func (m *Module) isTrivialThunk(insts []x86.Inst) bool {
	for i := range insts {
		switch insts[i].Op {
		case x86.OpJmp, x86.OpNop, x86.OpUd2:
		default:
			return false
		}
	}
	return true
}

// prevNonNop steps backwards over NaCl alignment NOPs, which are
// transparent to the instrumentation pattern.
func prevNonNop(insts []x86.Inst, i int) int {
	i--
	for i >= 0 && insts[i].Op == x86.OpNop {
		i--
	}
	return i
}

// nextNonNop steps forward over alignment NOPs.
func nextNonNop(insts []x86.Inst, i int) int {
	i++
	for i < len(insts) && insts[i].Op == x86.OpNop {
		i++
	}
	return i
}

// checkFunction verifies the canary chain within one function. On success
// it returns the memo revalidation payload: the first complete chain's jne
// target, encoded function-relative.
func (m *Module) checkFunction(ctx *policy.Context, name string, start, end int) ([]byte, error) {
	p := ctx.Program
	insts := p.Insts[start:end]
	protected := false
	var witness uint64 // jne target of the first complete chain

	for i := range insts {
		ctx.ChargeScan(1)
		in := &insts[i]
		// Candidate: a store that affects the stack's variables.
		slot, srcReg, ok := stackStore(in)
		if !ok {
			continue
		}
		ctx.ChargePattern(2)
		// Search the function for a cmp against the same stack slot; the
		// paper performs this containment search for every candidate.
		j, cmpReg, found := m.findCanaryCompare(ctx, insts, slot)
		if !found {
			continue
		}
		// Provenance of the stored value: the instruction preceding the
		// store must compute it from %fs:0x28 ...
		pi := prevNonNop(insts, i)
		if pi < 0 || !canaryLoad(&insts[pi], srcReg) {
			continue
		}
		ctx.ChargePattern(1)
		// ... and the rest of the verification chain must hang off the cmp.
		if tgt, ok := m.verifyChain(ctx, insts, j, cmpReg); ok {
			if !protected {
				protected = true
				witness = tgt
			}
			if m.EarlyExit {
				break
			}
		}
	}
	if !protected {
		return nil, &policy.Violation{
			Module: m.Name(), Addr: insts[0].Addr,
			Reason: fmt.Sprintf("function %s lacks -fstack-protector instrumentation", name),
		}
	}
	return binary.AppendVarint(nil, int64(witness)-int64(insts[0].Addr)), nil
}

// findCanaryCompare scans the whole function for "cmp slot(%rsp), REG",
// charging per instruction visited — the containment search the paper
// performs per candidate store.
func (m *Module) findCanaryCompare(ctx *policy.Context, insts []x86.Inst, slot int64) (int, x86.Reg, bool) {
	for j := range insts {
		ctx.ChargeScan(1)
		ctx.ChargePattern(2) // opcode + both operands inspected per visit
		if reg, ok := canaryCompare(&insts[j], slot); ok {
			return j, reg, true
		}
	}
	return 0, 0, false
}

// verifyChain checks the epilogue chain hanging off the cmp at index j:
// a canary reload just before it, a jne just after, and a jne target that
// is (or falls through NOPs to) callq __stack_chk_fail. On success it
// returns the jne target — the memo payload's witness.
func (m *Module) verifyChain(ctx *policy.Context, insts []x86.Inst, j int, cmpReg x86.Reg) (uint64, bool) {
	p := ctx.Program
	ctx.ChargePattern(3)
	pj := prevNonNop(insts, j)
	if pj < 0 || !canaryLoad(&insts[pj], cmpReg) {
		return 0, false
	}
	nj := nextNonNop(insts, j)
	if nj >= len(insts) {
		return 0, false
	}
	jne := &insts[nj]
	if jne.Op != x86.OpJcc || jne.Cond != x86.CondNE {
		return 0, false
	}
	target, ok := jne.BranchTarget()
	if !ok {
		return 0, false
	}
	ti, ok := p.InstAt(target)
	if !ok {
		return 0, false
	}
	for ti < len(p.Insts) && p.Insts[ti].Op == x86.OpNop {
		ti++
	}
	if ti >= len(p.Insts) || !p.Insts[ti].IsDirectCall() {
		return 0, false
	}
	callTgt, ok := p.Insts[ti].BranchTarget()
	if !ok {
		return 0, false
	}
	ctx.ChargeLookup(1)
	fname, ok := ctx.Symbols.NameAt(callTgt)
	if !ok || fname != FailFunc {
		return 0, false
	}
	return target, true
}

// stackStore matches "mov REG, disp(%rsp)" and returns the slot and source
// register.
func stackStore(in *x86.Inst) (slot int64, src x86.Reg, ok bool) {
	if in.Op != x86.OpMov || in.NArgs != 2 {
		return 0, 0, false
	}
	dst, s := in.Args[0], in.Args[1]
	if s.Kind != x86.KindReg || dst.Kind != x86.KindMem {
		return 0, 0, false
	}
	mem := dst.Mem
	if mem.Base != x86.RegSP || mem.Index != x86.RegNone || mem.Seg != x86.SegNone {
		return 0, 0, false
	}
	return mem.Disp, s.Reg, true
}

// canaryLoad matches "mov %fs:0x28, REG".
func canaryLoad(in *x86.Inst, reg x86.Reg) bool {
	return in.Op == x86.OpMov && in.NArgs == 2 &&
		in.Args[0].IsReg(reg) && in.Args[1].IsSegDisp(x86.SegFS, CanaryTLSOffset)
}

// canaryCompare matches "cmp slot(%rsp), REG" and returns REG.
func canaryCompare(in *x86.Inst, slot int64) (x86.Reg, bool) {
	if in.Op != x86.OpCmp || in.NArgs != 2 {
		return 0, false
	}
	if in.Args[0].Kind != x86.KindReg || !in.Args[1].IsMemBaseDisp(x86.RegSP, slot) {
		return 0, false
	}
	return in.Args[0].Reg, true
}
