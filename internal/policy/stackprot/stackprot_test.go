package stackprot

import (
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/policytest"
	"engarde/internal/toolchain"
)

func cfg(protected bool) toolchain.Config {
	return toolchain.Config{
		Name: "sp", Seed: 31,
		NumFuncs: 8, AvgFuncInsts: 90,
		LibcCallRate:   0.04,
		StackProtector: protected,
	}
}

func TestProtectedBinaryPasses(t *testing.T) {
	bin := policytest.Build(t, cfg(true))
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestUnprotectedBinaryRejected(t *testing.T) {
	bin := policytest.Build(t, cfg(false))
	ctx := policytest.Context(t, bin)
	err := New().Check(ctx)
	v, ok := policy.AsViolation(err)
	if !ok {
		t.Fatalf("Check = %v, want violation", err)
	}
	if v.Addr == 0 {
		t.Error("violation should name the unprotected function's address")
	}
}

func TestProtectedIFCCBinaryPasses(t *testing.T) {
	// Jump-table thunks carry no frames; the module must not flag them.
	c := cfg(true)
	c.IFCC = true
	c.IndirectRate = 0.02
	bin := policytest.Build(t, c)
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err != nil {
		t.Errorf("Check with IFCC thunks: %v", err)
	}
}

func TestTamperedCanaryRejected(t *testing.T) {
	// Patch one canary TLS offset (0x28 → 0x30) in a protected binary:
	// the function no longer matches Clang's instrumentation.
	bin := policytest.Build(t, cfg(true))
	patched := 0
	img := bin.Image
	// The canary load is 64 48 8B 04 25 28 00 00 00; flip its
	// displacement once.
	for i := 0; i+9 <= len(img); i++ {
		if img[i] == 0x64 && img[i+1] == 0x48 && img[i+2] == 0x8B &&
			img[i+3] == 0x04 && img[i+4] == 0x25 && img[i+5] == 0x28 {
			img[i+5] = 0x30
			patched++
			break
		}
	}
	if patched == 0 {
		t.Fatal("no canary load found to patch")
	}
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err == nil {
		t.Error("tampered canary offset should be rejected")
	}
}

func TestCostSuperlinearInFunctionSize(t *testing.T) {
	// The Figure-4 inversion mechanism: the same total instruction count
	// arranged as few huge functions must cost more pattern work than
	// many small functions.
	small := policytest.Build(t, toolchain.Config{
		Name: "many", Seed: 32, NumFuncs: 64, AvgFuncInsts: 50,
		StackProtector: true,
	})
	big := policytest.Build(t, toolchain.Config{
		Name: "few", Seed: 32, NumFuncs: 4, AvgFuncInsts: 800,
		StackProtector: true,
	})
	ctxSmall := policytest.Context(t, small)
	ctxBig := policytest.Context(t, big)
	if err := New().Check(ctxSmall); err != nil {
		t.Fatal(err)
	}
	if err := New().Check(ctxBig); err != nil {
		t.Fatal(err)
	}
	costSmall := ctxSmall.Counter.Cycles(cycles.PhasePolicy)
	costBig := ctxBig.Counter.Cycles(cycles.PhasePolicy)
	// Normalize by app instruction counts (musl is identical in both).
	perInstSmall := float64(costSmall) / float64(small.NumInsts)
	perInstBig := float64(costBig) / float64(big.NumInsts)
	if perInstBig <= perInstSmall {
		t.Errorf("per-instruction cost: big funcs %.1f ≤ small funcs %.1f; expected superlinear growth",
			perInstBig, perInstSmall)
	}
}
