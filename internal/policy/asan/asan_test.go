package asan

import (
	"strings"
	"testing"

	"engarde/internal/policy"
	"engarde/internal/policy/policytest"
	"engarde/internal/toolchain"
)

func cfg(instrumented bool) toolchain.Config {
	return toolchain.Config{
		Name: "as", Seed: 71,
		NumFuncs: 8, AvgFuncInsts: 60,
		LibcCallRate: 0.04,
		ASan:         instrumented,
	}
}

func TestInstrumentedBinaryPasses(t *testing.T) {
	bin := policytest.Build(t, cfg(true))
	ctx := policytest.Context(t, bin)
	if err := New(toolchain.MuslFunctionNames()...).Check(ctx); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestUninstrumentedBinaryRejected(t *testing.T) {
	bin := policytest.Build(t, cfg(false))
	ctx := policytest.Context(t, bin)
	err := New(toolchain.MuslFunctionNames()...).Check(ctx)
	v, ok := policy.AsViolation(err)
	if !ok {
		t.Fatalf("Check = %v, want violation", err)
	}
	if !strings.Contains(v.Reason, "sanitizer") {
		t.Errorf("reason = %q", v.Reason)
	}
}

func TestASanPlusStackProtector(t *testing.T) {
	// The two hardening schemes coexist; the canary store is exempt from
	// the sanitizer check, as in real ASan.
	c := cfg(true)
	c.StackProtector = true
	bin := policytest.Build(t, c)
	ctx := policytest.Context(t, bin)
	if err := New(toolchain.MuslFunctionNames()...).Check(ctx); err != nil {
		t.Errorf("Check with canaries: %v", err)
	}
}

func TestTamperedGuardRejected(t *testing.T) {
	// Neutralize one shadow scale step (shr $3 → shr $0... patch imm):
	// 49 C1 EB 03 is shr $3, %r11.
	bin := policytest.Build(t, cfg(true))
	img := bin.Image
	patched := false
	for i := 0; i+4 <= len(img); i++ {
		if img[i] == 0x49 && img[i+1] == 0xC1 && img[i+2] == 0xEB && img[i+3] == 0x03 {
			img[i+3] = 0x02
			patched = true
			break
		}
	}
	if !patched {
		t.Skip("no shr $3, %%r11 found (register allocation changed)")
	}
	ctx := policytest.Context(t, bin)
	if err := New(toolchain.MuslFunctionNames()...).Check(ctx); err == nil {
		t.Error("tampered shadow scaling must be rejected")
	}
}
