// Package asan implements an AddressSanitizer-compliance policy module.
// The paper notes that its stack-protection check "can easily be
// customized to check stack protection instrumentation inserted by other
// tools, such as Google's AddressSanitizer, LLVM SoftBound, etc." (§5) —
// this module is that customization for the simplified ASan scheme the
// synthetic toolchain emits: every store to a stack frame slot must be
// preceded by a shadow-byte check,
//
//	lea   slot(%rsp), R       ; the address being stored to
//	shr   $3, R               ; shadow index
//	and   $(shadowSize-1), R  ; masked into the shadow region
//	lea   <shadow>(%rip), S
//	add   S, R
//	cmpb  $0, (R)
//	je    <the store>
//	call  __asan_report
//
// with data dependence between the registers, the je landing exactly on
// the guarded store, and the call targeting the sanitizer's report
// function. The canary slot at (%rsp) is exempt (compiler-generated, as in
// real ASan).
package asan

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"engarde/internal/policy"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

// ReportFunc is the sanitizer runtime entry the guard must call.
const ReportFunc = "__asan_report"

// Module is the sanitizer-compliance policy module.
type Module struct {
	// ExemptFuncs names functions whose instrumentation this module does
	// not demand — typically the approved library's functions, whose
	// exact bytes the library-linking policy already pins, plus the
	// sanitizer runtime itself.
	ExemptFuncs map[string]bool
}

// New returns the module with the given exempt function names.
func New(exempt ...string) *Module {
	m := &Module{ExemptFuncs: make(map[string]bool, len(exempt)+1)}
	m.ExemptFuncs[ReportFunc] = true
	for _, name := range exempt {
		m.ExemptFuncs[name] = true
	}
	return m
}

// Name implements policy.Module.
func (m *Module) Name() string { return "address-sanitizer" }

// Fingerprint implements policy.Fingerprinter: the exempt-function list is
// the module's entire configuration, folded in sorted order.
func (m *Module) Fingerprint() []byte {
	names := make([]string, 0, len(m.ExemptFuncs))
	for name := range m.ExemptFuncs {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		fmt.Fprintf(h, "%d:%s", len(name), name)
	}
	return h.Sum(nil)
}

// Check implements policy.Module.
func (m *Module) Check(ctx *policy.Context) error {
	return policy.RunSharded(ctx, m)
}

// memoVersion tags the revalidation-payload format: deduplicated signed
// varints of (report-call target − function address). Bump on any change
// to the encoding or its interpretation.
const memoVersion = "asan/1"

// MemoFingerprint implements policy.Memoizable.
func (m *Module) MemoFingerprint() [sha256.Size]byte {
	return policy.MemoKeyFP(m, memoVersion)
}

// BeginShards implements policy.Sharded. Like stackprot, the check is
// function-granular: each function is owned by the span whose address
// interval contains its start.
func (m *Module) BeginShards(ctx *policy.Context) (policy.SpanChecker, error) {
	c := &checker{m: m, funcs: ctx.Symbols.Functions()}
	if ctx.Memo != nil {
		c.memo = true
		c.fp = m.MemoFingerprint()
	}
	return c, nil
}

type checker struct {
	m     *Module
	funcs []symtab.Entry
	memo  bool
	fp    [sha256.Size]byte
}

// CheckSpan verifies every function owned by the index span [lo, hi).
func (c *checker) CheckSpan(ctx *policy.Context, lo, hi int) error {
	m := c.m
	p := ctx.Program
	for _, fn := range policy.FuncsInSpan(p, c.funcs, lo, hi) {
		ctx.ChargeLookup(1)
		if m.ExemptFuncs[fn.Name] {
			continue
		}
		start, ok := p.InstAt(fn.Addr)
		if !ok {
			continue
		}
		end := len(p.Insts)
		if next, ok := ctx.Symbols.NextFuncAfter(fn.Addr); ok {
			if ni, ok := p.InstAt(next); ok {
				end = ni
			}
		}
		if c.memo {
			// Memo path, guarded on the digest span agreeing with this
			// module's function boundary (otherwise the memoized bytes are
			// not the bytes inspected here).
			if sp, ok := ctx.Memo.Span(fn.Addr); ok && sp.StartIdx == start && sp.EndIdx == end {
				if payload, hit := ctx.Memo.Hit(c.fp, fn.Addr); hit && m.revalidate(ctx, payload, fn.Addr) {
					ctx.Memo.CountReuse(1)
					continue
				}
				payload, eligible, err := m.checkFunction(ctx, start, end)
				if err != nil {
					return err
				}
				if eligible {
					ctx.Memo.Record(c.fp, fn.Addr, payload)
				}
				continue
			}
		}
		if _, _, err := m.checkFunction(ctx, start, end); err != nil {
			return err
		}
	}
	return nil
}

// Finish implements policy.SpanChecker; there is no epilogue.
func (c *checker) Finish(ctx *policy.Context) error { return nil }

// checkFunction scans one function's instructions [start, end) for guarded
// frame stores. On pass it returns the memo payload (function-relative
// report-call targets, deduplicated) and whether the outcome is memoizable
// — a guard chain that reads instructions below the function start depends
// on bytes the function digest does not pin, so it is not.
func (m *Module) checkFunction(ctx *policy.Context, start, end int) (payload []byte, eligible bool, err error) {
	p := ctx.Program
	fnAddr := p.Insts[start].Addr
	eligible = true
	var seen map[int64]bool
	for i := start; i < end; i++ {
		ctx.ChargeScan(1)
		in := &p.Insts[i]
		slot, ok := frameStore(in)
		if !ok || slot == 0 {
			// Not a frame store, or the canary slot (exempt).
			continue
		}
		ctx.ChargePattern(2)
		tgt, minIdx, err := m.checkGuard(ctx, i, slot)
		if err != nil {
			return nil, false, err
		}
		if minIdx < start {
			eligible = false
			continue
		}
		rel := int64(tgt) - int64(fnAddr)
		if !seen[rel] {
			if seen == nil {
				seen = make(map[int64]bool)
			}
			seen[rel] = true
			payload = binary.AppendVarint(payload, rel)
		}
	}
	if !eligible {
		return nil, false, nil
	}
	return payload, true, nil
}

// revalidate checks a memoized function's cross-function conditions: every
// report-call target in the payload must still resolve to __asan_report in
// *this* image's symbol table. An empty payload (no guarded stores) is a
// pure function of the digest-pinned bytes.
func (m *Module) revalidate(ctx *policy.Context, payload []byte, fnAddr uint64) bool {
	for len(payload) > 0 {
		rel, n := binary.Varint(payload)
		if n <= 0 {
			return false
		}
		payload = payload[n:]
		ctx.ChargeLookup(1)
		if name, ok := ctx.Symbols.NameAt(fnAddr + uint64(rel)); !ok || name != ReportFunc {
			return false
		}
	}
	return true
}

// checkGuard validates the shadow-check chain preceding the store at
// index si. On success it returns the report call's target and the lowest
// instruction index the backward walk visited (the chain's head), which
// decides memo eligibility.
func (m *Module) checkGuard(ctx *policy.Context, si int, slot int64) (reportTgt uint64, minIdx int, err error) {
	p := ctx.Program
	store := &p.Insts[si]
	prev := func(i int) int {
		i--
		for i >= 0 && p.Insts[i].Op == x86.OpNop {
			ctx.ChargeScan(1)
			i--
		}
		return i
	}
	fail := func(step string) (uint64, int, error) {
		return 0, 0, &policy.Violation{
			Module: m.Name(), Addr: store.Addr,
			Reason: fmt.Sprintf("store to %d(%%rsp) lacks sanitizer guard (%s)", slot, step),
		}
	}

	// call __asan_report (the poisoned path, jumped over by je).
	ci := prev(si)
	ctx.ChargePattern(2)
	if ci < 0 || !p.Insts[ci].IsDirectCall() {
		return fail("missing report call")
	}
	tgt, _ := p.Insts[ci].BranchTarget()
	ctx.ChargeLookup(1)
	if name, ok := ctx.Symbols.NameAt(tgt); !ok || name != ReportFunc {
		return fail("report call targets the wrong function")
	}

	// je <store>.
	ji := prev(ci)
	ctx.ChargePattern(2)
	if ji < 0 || p.Insts[ji].Op != x86.OpJcc || p.Insts[ji].Cond != x86.CondE {
		return fail("missing je")
	}
	if jt, ok := p.Insts[ji].BranchTarget(); !ok || jt != store.Addr {
		return fail("je does not guard the store")
	}

	// cmpb $0, (R).
	cmpi := prev(ji)
	ctx.ChargePattern(2)
	if cmpi < 0 {
		return fail("missing shadow compare")
	}
	cmp := &p.Insts[cmpi]
	if cmp.Op != x86.OpCmp || cmp.NArgs != 2 ||
		cmp.Args[0].Kind != x86.KindMem || cmp.Args[0].Width != 1 ||
		cmp.Args[1].Kind != x86.KindImm || cmp.Args[1].Imm != 0 {
		return fail("shadow compare malformed")
	}
	shadowReg := cmp.Args[0].Mem.Base

	// add S, R.
	ai := prev(cmpi)
	ctx.ChargePattern(2)
	if ai < 0 || p.Insts[ai].Op != x86.OpAdd || !p.Insts[ai].Args[0].IsReg(shadowReg) ||
		p.Insts[ai].Args[1].Kind != x86.KindReg {
		return fail("missing shadow rebase")
	}
	baseReg := p.Insts[ai].Args[1].Reg

	// lea <shadow>(%rip), S.
	li := prev(ai)
	ctx.ChargePattern(2)
	if li < 0 || p.Insts[li].Op != x86.OpLea || !p.Insts[li].Args[0].IsReg(baseReg) {
		return fail("missing shadow base load")
	}
	if _, ok := p.Insts[li].RIPTarget(); !ok {
		return fail("shadow base is not RIP-relative")
	}

	// and $(size-1), R — the mask keeping the index inside the shadow.
	ni := prev(li)
	ctx.ChargePattern(2)
	if ni < 0 || p.Insts[ni].Op != x86.OpAnd || !p.Insts[ni].Args[0].IsReg(shadowReg) {
		return fail("missing index mask")
	}
	mask := uint64(p.Insts[ni].Imm)
	if mask == 0 || (mask+1)&mask != 0 {
		return fail("mask is not 2^n-1")
	}

	// shr $3, R — ASan's 8-bytes-per-shadow-byte scaling.
	sh := prev(ni)
	ctx.ChargePattern(2)
	if sh < 0 || p.Insts[sh].Op != x86.OpShr || !p.Insts[sh].Args[0].IsReg(shadowReg) ||
		p.Insts[sh].Imm != 3 {
		return fail("missing shadow scaling")
	}

	// lea slot(%rsp), R — the guarded address must be the stored one.
	le := prev(sh)
	ctx.ChargePattern(2)
	if le < 0 || p.Insts[le].Op != x86.OpLea || !p.Insts[le].Args[0].IsReg(shadowReg) {
		return fail("missing address computation")
	}
	leaMem := p.Insts[le].Args[1].Mem
	if leaMem.Base != x86.RegSP || leaMem.Disp != slot {
		return fail("guard checks a different address than the store")
	}
	// The walk descends monotonically, so the address computation at le is
	// the lowest index visited.
	return tgt, le, nil
}

// frameStore matches "mov REG, disp(%rsp)" and returns the slot.
func frameStore(in *x86.Inst) (int64, bool) {
	if in.Op != x86.OpMov || in.NArgs != 2 {
		return 0, false
	}
	dst, src := in.Args[0], in.Args[1]
	if src.Kind != x86.KindReg || dst.Kind != x86.KindMem {
		return 0, false
	}
	mem := dst.Mem
	if mem.Base != x86.RegSP || mem.Index != x86.RegNone || mem.Seg != x86.SegNone {
		return 0, false
	}
	return mem.Disp, true
}
