// Package noforbidden implements a forbidden-instruction policy module.
// SGX enclaves cannot invoke OS services: SYSCALL, INT and privileged
// instructions fault inside an enclave (paper §2: "An enclave can only
// execute user-mode code and cannot invoke any OS services"). A provider
// therefore gains nothing from allowing them — but code that *carries*
// them is at best broken and at worst probing for emulator gaps or
// preparing detection-proof behaviour outside the enclave. This module
// rejects executables containing any instruction from a configurable deny
// list.
//
// This is a fourth policy module beyond the paper's three, demonstrating
// the pluggable-module architecture of §3 on a fresh policy.
package noforbidden

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"engarde/internal/policy"
	"engarde/internal/x86"
)

// Module is the forbidden-instruction policy module.
type Module struct {
	deny map[x86.Op]bool
}

// DefaultDenied returns the default deny list: OS-service and privileged
// control instructions that cannot legally execute inside an enclave.
func DefaultDenied() []x86.Op {
	return []x86.Op{
		x86.OpSyscall, x86.OpInt, x86.OpHlt,
		x86.OpIn, x86.OpOut,
		x86.OpCli, x86.OpSti,
	}
}

// New builds the module; with no arguments it uses DefaultDenied.
func New(denied ...x86.Op) *Module {
	if len(denied) == 0 {
		denied = DefaultDenied()
	}
	m := &Module{deny: make(map[x86.Op]bool, len(denied))}
	for _, op := range denied {
		m.deny[op] = true
	}
	return m
}

// Name implements policy.Module.
func (m *Module) Name() string { return "no-forbidden-instructions" }

// Fingerprint implements policy.Fingerprinter: the deny list is the
// module's entire configuration. Opcodes are folded in sorted order so the
// map's iteration order cannot perturb the digest.
func (m *Module) Fingerprint() []byte {
	ops := make([]int, 0, len(m.deny))
	for op := range m.deny {
		ops = append(ops, int(op))
	}
	sort.Ints(ops)
	h := sha256.New()
	for _, op := range ops {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(op))
		h.Write(b[:])
	}
	return h.Sum(nil)
}

// Check implements policy.Module.
func (m *Module) Check(ctx *policy.Context) error {
	return policy.RunSharded(ctx, m)
}

// memoVersion tags the (empty) revalidation-payload format. The verdict is
// a pure function of the digest-pinned bytes, so hits need no payload.
const memoVersion = "noforbidden/1"

// MemoFingerprint implements policy.Memoizable.
func (m *Module) MemoFingerprint() [sha256.Size]byte {
	return policy.MemoKeyFP(m, memoVersion)
}

// BeginShards implements policy.Sharded; the scan has no prologue.
func (m *Module) BeginShards(ctx *policy.Context) (policy.SpanChecker, error) {
	c := &checker{m: m}
	if ctx.Memo != nil {
		c.memo = true
		c.fp = m.MemoFingerprint()
	}
	return c, nil
}

type checker struct {
	m    *Module
	memo bool
	fp   [sha256.Size]byte
}

// CheckSpan scans instructions [lo, hi) against the deny list.
func (c *checker) CheckSpan(ctx *policy.Context, lo, hi int) error {
	if c.memo {
		return c.checkSpanMemo(ctx, lo, hi)
	}
	return c.scanRange(ctx, lo, hi)
}

// scanRange is the per-instruction deny-list scan over [lo, hi).
func (c *checker) scanRange(ctx *policy.Context, lo, hi int) error {
	m := c.m
	p := ctx.Program
	for i := lo; i < hi; i++ {
		ctx.ChargeScan(1)
		ctx.ChargePattern(1)
		in := &p.Insts[i]
		if m.deny[in.Op] {
			return &policy.Violation{
				Module: m.Name(), Addr: in.Addr,
				Reason: fmt.Sprintf("forbidden instruction %s (enclaves cannot invoke OS services)", in.String()),
			}
		}
	}
	return nil
}

// checkSpanMemo hops [lo, hi) function by function via the digest table,
// skipping functions whose clean scan is memoized. The verdict is a pure
// function of the bytes, so a hit needs no revalidation; everything else —
// gaps, straddling functions, misses — is scanned cold.
func (c *checker) checkSpanMemo(ctx *policy.Context, lo, hi int) error {
	i := lo
	for i < hi {
		sp, ok := ctx.Memo.SpanContaining(i)
		if !ok {
			if err := c.scanRange(ctx, i, i+1); err != nil {
				return err
			}
			i++
			continue
		}
		segEnd := sp.EndIdx
		if segEnd > hi {
			segEnd = hi
		}
		if sp.StartIdx < lo || sp.EndIdx > hi {
			if err := c.scanRange(ctx, i, segEnd); err != nil {
				return err
			}
			i = segEnd
			continue
		}
		if _, hit := ctx.Memo.Hit(c.fp, sp.Addr); hit {
			ctx.Memo.CountReuse(1)
			i = segEnd
			continue
		}
		if err := c.scanRange(ctx, sp.StartIdx, sp.EndIdx); err != nil {
			return err
		}
		ctx.Memo.Record(c.fp, sp.Addr, nil)
		i = segEnd
	}
	return nil
}

// Finish implements policy.SpanChecker; there is no epilogue.
func (c *checker) Finish(ctx *policy.Context) error { return nil }
