package noforbidden

import (
	"strings"
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/policytest"
	"engarde/internal/toolchain"
	"engarde/internal/x86"
)

func cfg(withSyscall bool) toolchain.Config {
	return toolchain.Config{
		Name: "nf", Seed: 51,
		NumFuncs: 6, AvgFuncInsts: 50,
		EmitSyscall: withSyscall,
	}
}

func TestCleanBinaryPasses(t *testing.T) {
	bin := policytest.Build(t, cfg(false))
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestSyscallRejected(t *testing.T) {
	bin := policytest.Build(t, cfg(true))
	ctx := policytest.Context(t, bin)
	err := New().Check(ctx)
	v, ok := policy.AsViolation(err)
	if !ok {
		t.Fatalf("Check = %v, want violation", err)
	}
	if !strings.Contains(v.Reason, "syscall") {
		t.Errorf("reason %q does not name the instruction", v.Reason)
	}
	if v.Addr == 0 {
		t.Error("violation should carry the address")
	}
}

func TestCustomDenyList(t *testing.T) {
	// A deny list without OpSyscall lets the syscall binary through.
	bin := policytest.Build(t, cfg(true))
	ctx := policytest.Context(t, bin)
	m := New(x86.OpHlt, x86.OpIn, x86.OpOut)
	if err := m.Check(ctx); err != nil {
		t.Errorf("Check with custom list: %v", err)
	}
}

func TestDefaultListContents(t *testing.T) {
	denied := DefaultDenied()
	want := map[x86.Op]bool{x86.OpSyscall: true, x86.OpInt: true, x86.OpHlt: true}
	found := 0
	for _, op := range denied {
		if want[op] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("default deny list missing core entries: %v", denied)
	}
}

func TestChargesWork(t *testing.T) {
	bin := policytest.Build(t, cfg(false))
	ctx := policytest.Context(t, bin)
	if err := New().Check(ctx); err != nil {
		t.Fatal(err)
	}
	// The scan must visit every instruction exactly once.
	scans := ctx.Counter.Units(cycles.PhasePolicy, cycles.UnitScanInst)
	if scans < uint64(bin.NumInsts) {
		t.Errorf("scanned %d < %d", scans, bin.NumInsts)
	}
}
