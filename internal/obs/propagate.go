package obs

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// TraceContext is the cross-process trace identity a client originates and
// every hop (router, gateway) adopts: a 128-bit trace ID, the originating
// span's 64-bit ID, and a sampling bit. It is deliberately minimal — W3C
// traceparent's useful core without the header syntax — and deliberately
// random: IDs are drawn from crypto/rand and never derived from image
// bytes, digests, or tenant names, so propagating one discloses nothing
// about the content being inspected (the package's disclosure contract).
//
// The context travels twice per session, by design:
//
//   - in the plaintext RouteHello preamble, so the router — which never
//     holds the session key — can tag its splice spans;
//   - in the authenticated secchan session-open field (wrapped under the
//     enclave's public key alongside the AES session key), so the gateway
//     adopts an ID the router cannot have forged or stripped.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters (128 bits).
	TraceID string
	// ParentSpan is 16 lowercase hex characters (64 bits) naming the
	// client-side span that caused this hop.
	ParentSpan string
	// Sampled propagates the client's sampling decision. Hops still serve
	// unsampled sessions normally; they just keep their locally-generated
	// trace IDs instead of adopting this one.
	Sampled bool
}

// traceContextWireLen is the marshaled size: 16 ID bytes + 8 parent-span
// bytes + 1 flag byte.
const traceContextWireLen = 16 + 8 + 1

// NewTraceContext draws a fresh sampled context from crypto/rand.
func NewTraceContext() TraceContext {
	var b [24]byte
	_, _ = rand.Read(b[:])
	return TraceContext{
		TraceID:    hex.EncodeToString(b[:16]),
		ParentSpan: hex.EncodeToString(b[16:]),
		Sampled:    true,
	}
}

// NewSpanID draws a random 64-bit span ID (16 hex characters).
func NewSpanID() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Valid reports whether the context is well-formed: a 32-hex-char trace ID
// that is not all zeros, and a parent span that is either empty or 16 hex
// chars. Both the router (plaintext path) and the gateway (authenticated
// path) validate before adopting — the preamble is untrusted input.
func (tc TraceContext) Valid() bool {
	if !validHexID(tc.TraceID, 32) || tc.TraceID == zeroTraceID {
		return false
	}
	return tc.ParentSpan == "" || validHexID(tc.ParentSpan, 16)
}

const zeroTraceID = "00000000000000000000000000000000"

func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Marshal encodes the context into its fixed 25-byte wire form. The caller
// is expected to have a Valid context; an invalid one marshals to zeros.
func (tc TraceContext) Marshal() []byte {
	out := make([]byte, traceContextWireLen)
	if !tc.Valid() {
		return out
	}
	hex.Decode(out[:16], []byte(tc.TraceID))
	if tc.ParentSpan != "" {
		hex.Decode(out[16:24], []byte(tc.ParentSpan))
	}
	if tc.Sampled {
		out[24] = 1
	}
	return out
}

// UnmarshalTraceContext decodes a 25-byte wire form back into a
// TraceContext, rejecting wrong lengths, unknown flag bits, and the
// all-zero trace ID.
func UnmarshalTraceContext(b []byte) (TraceContext, error) {
	if len(b) != traceContextWireLen {
		return TraceContext{}, fmt.Errorf("obs: trace context is %d bytes, want %d", len(b), traceContextWireLen)
	}
	if b[24]&^1 != 0 {
		return TraceContext{}, fmt.Errorf("obs: trace context flags %#x unknown", b[24])
	}
	tc := TraceContext{
		TraceID: hex.EncodeToString(b[:16]),
		Sampled: b[24]&1 == 1,
	}
	var zeroSpan [8]byte
	if string(b[16:24]) != string(zeroSpan[:]) {
		tc.ParentSpan = hex.EncodeToString(b[16:24])
	}
	if tc.TraceID == zeroTraceID {
		return TraceContext{}, errors.New("obs: trace context has all-zero trace ID")
	}
	return tc, nil
}

// Context returns the TraceContext a downstream hop should adopt for this
// trace: the trace's 128-bit ID with a fresh parent-span ID. A trace made
// by NewTrace carries a 64-bit local ID; the first Context call upgrades
// it in place (AdoptID) so the client's own span file and every
// downstream hop share one 128-bit ID. Returns a zero, invalid context on
// a nil or finished trace (callers gate on Valid()).
func (t *Trace) Context() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	id := t.ID()
	if !validHexID(id, 32) {
		id = NewTraceContext().TraceID
		if !t.AdoptID(id) {
			return TraceContext{}
		}
	}
	return TraceContext{TraceID: id, ParentSpan: NewSpanID(), Sampled: true}
}

// AdoptID replaces the trace's locally-generated random ID with one
// propagated from upstream, joining this process's spans to the
// cross-process trace. The ID must be 16 or 32 lowercase hex characters
// (a local 64-bit ID or a propagated 128-bit one); anything else — or a
// finished trace — leaves the trace unchanged and returns false.
func (t *Trace) AdoptID(id string) bool {
	if t == nil {
		return false
	}
	if !validHexID(id, 32) && !validHexID(id, 16) {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return false
	}
	t.id = id
	return true
}
