package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	wire := tc.Marshal()
	if len(wire) != traceContextWireLen {
		t.Fatalf("wire length = %d, want %d", len(wire), traceContextWireLen)
	}
	got, err := UnmarshalTraceContext(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
}

func TestTraceContextRejectsMalformed(t *testing.T) {
	tc := NewTraceContext()
	wire := tc.Marshal()

	if _, err := UnmarshalTraceContext(wire[:10]); err == nil {
		t.Error("short wire form accepted")
	}
	bad := append([]byte(nil), wire...)
	bad[24] = 0x82 // unknown flag bit
	if _, err := UnmarshalTraceContext(bad); err == nil {
		t.Error("unknown flag bits accepted")
	}
	if _, err := UnmarshalTraceContext(make([]byte, traceContextWireLen)); err == nil {
		t.Error("all-zero trace ID accepted")
	}

	// Invalid contexts marshal to all zeros rather than garbage.
	if got := (TraceContext{TraceID: "XYZ"}).Marshal(); !bytes.Equal(got, make([]byte, traceContextWireLen)) {
		t.Errorf("invalid context marshaled to %x", got)
	}
}

func TestTraceContextValid(t *testing.T) {
	cases := []struct {
		tc   TraceContext
		want bool
	}{
		{NewTraceContext(), true},
		{TraceContext{TraceID: strings.Repeat("a", 32)}, true},
		{TraceContext{TraceID: strings.Repeat("a", 32), ParentSpan: strings.Repeat("b", 16)}, true},
		{TraceContext{TraceID: zeroTraceID}, false},
		{TraceContext{TraceID: strings.Repeat("A", 32)}, false}, // uppercase
		{TraceContext{TraceID: strings.Repeat("a", 16)}, false}, // short
		{TraceContext{TraceID: strings.Repeat("a", 32), ParentSpan: "zz"}, false},
		{TraceContext{}, false},
	}
	for i, c := range cases {
		if got := c.tc.Valid(); got != c.want {
			t.Errorf("case %d: Valid(%+v) = %v, want %v", i, c.tc, got, c.want)
		}
	}
}

func TestTraceContextUpgradesLocalID(t *testing.T) {
	tr := NewTrace("client", nil)
	local := tr.ID()
	if len(local) != 16 {
		t.Fatalf("local trace ID %q is not 64-bit", local)
	}
	tc := tr.Context()
	if !tc.Valid() {
		t.Fatalf("Context() invalid: %+v", tc)
	}
	if tr.ID() != tc.TraceID {
		t.Errorf("trace ID %q not upgraded to the propagated %q", tr.ID(), tc.TraceID)
	}
	// A second Context keeps the (now 128-bit) ID stable.
	if tc2 := tr.Context(); tc2.TraceID != tc.TraceID {
		t.Errorf("second Context changed trace ID: %q -> %q", tc.TraceID, tc2.TraceID)
	}

	// Nil and finished traces yield invalid contexts; callers gate on Valid.
	var nilTrace *Trace
	if nilTrace.Context().Valid() {
		t.Error("nil trace produced a valid context")
	}
	tr.Finish()
	done := NewTrace("done", nil)
	done.Finish()
	if done.Context().Valid() {
		t.Error("finished trace produced a valid context")
	}
}

func TestAdoptID(t *testing.T) {
	tr := NewTrace("gateway", nil)
	tc := NewTraceContext()
	if !tr.AdoptID(tc.TraceID) {
		t.Fatal("AdoptID rejected a valid 128-bit ID")
	}
	if tr.ID() != tc.TraceID {
		t.Fatalf("ID() = %q after adopting %q", tr.ID(), tc.TraceID)
	}
	if tr.AdoptID("not-hex") {
		t.Error("AdoptID accepted garbage")
	}
	tr.Finish()
	if tr.AdoptID(NewTraceContext().TraceID) {
		t.Error("AdoptID mutated a finished trace")
	}
}

func TestSpanArgsExport(t *testing.T) {
	tr := NewTrace("attempted", nil)
	sp := tr.StartSpanArgs("attempt", map[string]string{"attempt": "1"})
	sp.SetArg("outcome", "verdict")
	sp.End()
	tr.Finish()

	d := tr.Snapshot()
	if len(d.Spans) != 1 || d.Spans[0].Args["attempt"] != "1" || d.Spans[0].Args["outcome"] != "verdict" {
		t.Fatalf("snapshot args = %+v", d.Spans)
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*TraceData{d}); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("chrome spans = %d, want 1", len(spans))
	}
	if spans[0].TraceID != d.ID {
		t.Errorf("chrome trace_id = %q, want %q", spans[0].TraceID, d.ID)
	}
	if spans[0].Args["attempt"] != "1" || spans[0].Args["outcome"] != "verdict" {
		t.Errorf("chrome args = %+v", spans[0].Args)
	}
}
