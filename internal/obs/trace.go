// Package obs is the gateway's zero-dependency telemetry layer: per-session
// trace spans threaded through the provisioning pipeline via
// context.Context, a Prometheus text-format metrics registry, and log/slog
// construction helpers — so an operator can see not just *that* a provision
// was slow or shed, but *where* it spent its time, in both wall-clock and
// the paper's cycle model.
//
// The disclosure contract matches the paper's (§3) and the Confidential
// Attestation line of work: telemetry exposes timings, sizes, verdict codes
// and cycle counts — never client code bytes, image hashes, or anything
// derived from the plaintext content.
//
// Everything here is allocation-light by construction: spans live in a
// per-trace slab addressed by index, histograms are fixed arrays of atomic
// buckets, and every instrumentation entry point is a no-op on a nil
// *Trace, so untraced provisioning (benchmarks, library use) pays nothing.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"engarde/internal/cycles"
)

// Trace is one session's span timeline. A Trace is created per provisioning
// session (gateway admit), threaded through the pipeline via
// context.Context and core.Config, and finished when the session ends.
//
// Two span kinds exist:
//
//   - Phase spans (StartPhase) additionally snapshot the trace's cycle
//     counter at start and end, attributing the per-phase cycle delta to
//     the span. Phase spans must not overlap each other in time; the
//     provisioning pipeline is sequential, so its phase spans partition the
//     session and their per-phase deltas sum exactly to the counter's
//     growth over the trace — Report.Phases, when the counter is
//     session-private and started at zero.
//   - Plain spans (StartSpan) record wall-clock only and may overlap freely
//     (disassembly chunks, policy modules running concurrently).
//
// All methods are safe on a nil *Trace and do nothing, so instrumented code
// needs no "is tracing on" branches.
type Trace struct {
	id      string
	name    string
	start   time.Time
	counter *cycles.Counter

	mu    sync.Mutex
	spans []span
	end   time.Time
	done  bool
}

// span is the slab-resident record behind a SpanRef.
type span struct {
	name  string
	start time.Time
	dur   time.Duration
	open  bool
	phase bool
	args  map[string]string        // optional tags (attempt, backend, …)
	begin [cycles.NumPhases]uint64 // counter snapshot at StartPhase
	delta [cycles.NumPhases]uint64 // per-phase cycles attributed on End
}

// spanSlabCap is the preallocated span capacity: a full provisioning
// session records a couple dozen spans (protocol steps, pipeline phases,
// decode chunks, policy modules), so one slab allocation covers it.
const spanSlabCap = 32

// NewTrace starts a trace. counter, when non-nil, is snapshotted by phase
// spans to attribute per-phase cycle deltas; pass the counter the session's
// enclave charges into.
func NewTrace(name string, counter *cycles.Counter) *Trace {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return &Trace{
		id:      hex.EncodeToString(b[:]),
		name:    name,
		start:   time.Now(),
		counter: counter,
		spans:   make([]span, 0, spanSlabCap),
	}
}

// ID returns the trace's identifier ("" on a nil trace) — the value
// logged as the "trace" attribute of every session log record. The ID is
// random at NewTrace and may be replaced once by AdoptID when an upstream
// hop propagated its own, hence the lock.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Name returns the trace name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SpanRef addresses a span within its trace's slab by index, so the slab
// can grow (append) without invalidating outstanding references. The zero
// SpanRef is valid and End on it is a no-op.
type SpanRef struct {
	t *Trace
	i int
}

// StartSpan opens a wall-clock span. Safe for concurrent use; concurrent
// spans (decode chunks, policy modules) may overlap freely.
func (t *Trace) StartSpan(name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return t.startSpan(name, false)
}

// StartSpanArgs opens a wall-clock span carrying tags that export with it
// (Chrome args, JSONL) — the mechanism behind the failover loop's attempt
// and backend labels. The map is copied; nil args degrade to StartSpan.
func (t *Trace) StartSpanArgs(name string, args map[string]string) SpanRef {
	r := t.StartSpan(name)
	r.setArgs(args)
	return r
}

// SetArg tags the span after it was opened — outcomes ("error", "busy")
// known only once the work finished. No-op on the zero SpanRef.
func (r SpanRef) SetArg(key, value string) {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	sp := &r.t.spans[r.i]
	if sp.args == nil {
		sp.args = make(map[string]string, 2)
	}
	sp.args[key] = value
}

func (r SpanRef) setArgs(args map[string]string) {
	if r.t == nil || len(args) == 0 {
		return
	}
	cp := make(map[string]string, len(args))
	for k, v := range args {
		cp[k] = v
	}
	r.t.mu.Lock()
	r.t.spans[r.i].args = cp
	r.t.mu.Unlock()
}

// StartPhase opens a cycle-metered span: the trace counter's per-phase
// totals are snapshotted now and again at End, and the deltas attributed to
// this span. Phase spans must be sequential within a trace — overlapping
// phase spans double-attribute cycles. With a nil trace counter the span
// degrades to wall-clock only.
func (t *Trace) StartPhase(name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return t.startSpan(name, t.counter != nil)
}

func (t *Trace) startSpan(name string, phase bool) SpanRef {
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, span{name: name, open: true, phase: phase})
	sp := &t.spans[i]
	if phase {
		sp.begin = t.counter.SnapshotArray()
	}
	sp.start = time.Now() // last, so the span excludes slab bookkeeping
	t.mu.Unlock()
	return SpanRef{t: t, i: i}
}

// End closes the span, recording its duration and (for phase spans) the
// per-phase cycle delta since StartPhase. Ending a span twice, or ending
// the zero SpanRef, does nothing.
func (r SpanRef) End() {
	if r.t == nil {
		return
	}
	now := time.Now()
	var after [cycles.NumPhases]uint64
	// Snapshot before taking the lock: the charges belong to work that
	// already happened, and keeping counter loads outside the critical
	// section keeps concurrent plain spans cheap.
	t := r.t
	t.mu.Lock()
	sp := &t.spans[r.i]
	if !sp.open {
		t.mu.Unlock()
		return
	}
	sp.open = false
	sp.dur = now.Sub(sp.start)
	if sp.phase {
		after = t.counter.SnapshotArray()
		for p := 1; p < cycles.NumPhases; p++ {
			sp.delta[p] = after[p] - sp.begin[p]
		}
	}
	t.mu.Unlock()
}

// RecordSpan appends an already-closed plain (wall-clock) span whose start
// predates the call — windows measured from timestamps taken elsewhere,
// like first-byte-to-verdict (anchored at the first frame's arrival) or
// recv-overlap (anchored at the first streamed decode chunk). No-op on a
// nil or finished trace.
func (t *Trace) RecordSpan(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.spans = append(t.spans, span{name: name, start: start, dur: dur})
}

// RecordSpanArgs is RecordSpan with tags attached, for windows measured
// elsewhere that still need attempt/endpoint labels in the export.
func (t *Trace) RecordSpanArgs(name string, start time.Time, dur time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	var cp map[string]string
	if len(args) > 0 {
		cp = make(map[string]string, len(args))
		for k, v := range args {
			cp[k] = v
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.spans = append(t.spans, span{name: name, start: start, dur: dur, args: cp})
}

// Finish ends the trace. Spans still open are closed with their duration up
// to now (phase deltas included), so a session that errors out mid-phase
// still exports a complete timeline. Finish is idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	t.done = true
	t.end = now
	for i := range t.spans {
		sp := &t.spans[i]
		if !sp.open {
			continue
		}
		sp.open = false
		sp.dur = now.Sub(sp.start)
		if sp.phase {
			after := t.counter.SnapshotArray()
			for p := 1; p < cycles.NumPhases; p++ {
				sp.delta[p] = after[p] - sp.begin[p]
			}
		}
	}
}

// PhaseTotals sums the per-phase cycle deltas over all phase spans. For a
// session-private counter that started at zero, the result equals the
// counter's final snapshot — i.e. Report.Phases — exactly; under a counter
// shared across concurrent sessions the deltas also absorb the other
// sessions' concurrent charges and are an attribution estimate.
func (t *Trace) PhaseTotals() map[cycles.Phase]uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sums [cycles.NumPhases]uint64
	for i := range t.spans {
		if !t.spans[i].phase {
			continue
		}
		for p := 1; p < cycles.NumPhases; p++ {
			sums[p] += t.spans[i].delta[p]
		}
	}
	out := make(map[cycles.Phase]uint64)
	for p := 1; p < cycles.NumPhases; p++ {
		if sums[p] > 0 {
			out[cycles.Phase(p)] = sums[p]
		}
	}
	return out
}

// SpanData is one exported span.
type SpanData struct {
	Name          string        `json:"name"`
	StartUnixNano int64         `json:"start_unix_nano"`
	Dur           time.Duration `json:"dur_ns"`
	// Cycles is the per-phase cycle delta attributed to this span, keyed by
	// phase name. Present only on phase spans with a non-zero delta.
	Cycles map[string]uint64 `json:"cycles,omitempty"`
	// Args are the span's tags (attempt, backend, outcome, …), exported
	// into the Chrome event's args block.
	Args map[string]string `json:"args,omitempty"`
}

// TraceData is the exportable snapshot of a finished (or in-flight) trace.
type TraceData struct {
	ID            string     `json:"trace_id"`
	Name          string     `json:"name"`
	StartUnixNano int64      `json:"start_unix_nano"`
	EndUnixNano   int64      `json:"end_unix_nano,omitempty"`
	Spans         []SpanData `json:"spans"`
}

// Snapshot exports the trace. Open spans appear with their duration so far.
func (t *Trace) Snapshot() *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &TraceData{
		ID:            t.id,
		Name:          t.name,
		StartUnixNano: t.start.UnixNano(),
		Spans:         make([]SpanData, 0, len(t.spans)),
	}
	if t.done {
		d.EndUnixNano = t.end.UnixNano()
	}
	now := time.Now()
	for i := range t.spans {
		sp := &t.spans[i]
		sd := SpanData{
			Name:          sp.name,
			StartUnixNano: sp.start.UnixNano(),
			Dur:           sp.dur,
		}
		if sp.open {
			sd.Dur = now.Sub(sp.start)
		}
		if len(sp.args) > 0 {
			sd.Args = make(map[string]string, len(sp.args))
			for k, v := range sp.args {
				sd.Args[k] = v
			}
		}
		if sp.phase {
			for p := 1; p < cycles.NumPhases; p++ {
				if sp.delta[p] == 0 {
					continue
				}
				if sd.Cycles == nil {
					sd.Cycles = make(map[string]uint64, 2)
				}
				sd.Cycles[cycles.Phase(p).String()] = sp.delta[p]
			}
		}
		d.Spans = append(d.Spans, sd)
	}
	return d
}

// traceKey is the context key carrying the session trace.
type traceKey struct{}

// WithTrace returns a context carrying t, the threading mechanism between
// the gateway's admission layer and the protocol/pipeline instrumentation.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil — and nil flows through
// every instrumentation point as a no-op.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
