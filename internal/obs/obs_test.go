package obs

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"engarde/internal/cycles"
)

func TestTracePhaseDeltasMatchCounter(t *testing.T) {
	ctr := cycles.NewCounter(cycles.DefaultModel())
	tr := NewTrace("session", ctr)

	sp := tr.StartPhase("disasm")
	ctr.Charge(cycles.PhaseDisasm, cycles.UnitDecodedInst, 100)
	sp.End()

	sp = tr.StartPhase("policy")
	ctr.Charge(cycles.PhasePolicy, cycles.UnitScanInst, 100)
	ctr.Charge(cycles.PhasePolicy, cycles.UnitHashedByte, 64)
	sp.End()

	// A plain span never attributes cycles, even if charges land inside it.
	plain := tr.StartSpan("shard")
	ctr.Charge(cycles.PhaseLoad, cycles.UnitRelocEntry, 7)
	plain.End()

	// An open phase span at Finish still captures its delta.
	_ = tr.StartPhase("load-tail")
	ctr.Charge(cycles.PhaseLoad, cycles.UnitPageMap, 3)
	tr.Finish()

	got := tr.PhaseTotals()
	want := ctr.Snapshot()
	// PhaseLoad charges split across a plain span (unattributed) and an open
	// phase span: the phase span's window covers both charges because the
	// plain span doesn't snapshot — so totals must still equal the counter
	// for PhaseLoad? No: the plain-span charge happened BEFORE load-tail
	// started, outside any phase span, so it must be missing from totals.
	wantLoad := want[cycles.PhaseLoad] - 7*cycles.DefaultModel()[cycles.UnitRelocEntry]
	if got[cycles.PhaseDisasm] != want[cycles.PhaseDisasm] {
		t.Errorf("disasm: got %d want %d", got[cycles.PhaseDisasm], want[cycles.PhaseDisasm])
	}
	if got[cycles.PhasePolicy] != want[cycles.PhasePolicy] {
		t.Errorf("policy: got %d want %d", got[cycles.PhasePolicy], want[cycles.PhasePolicy])
	}
	if got[cycles.PhaseLoad] != wantLoad {
		t.Errorf("load: got %d want %d (charge outside phase spans must not be attributed)", got[cycles.PhaseLoad], wantLoad)
	}
}

func TestTraceSequentialPhasesSumToSnapshot(t *testing.T) {
	// The acceptance property: when every charge happens inside some phase
	// span and the counter is session-private, span totals == Snapshot.
	ctr := cycles.NewCounter(cycles.DefaultModel())
	tr := NewTrace("session", ctr)
	phases := []struct {
		name string
		p    cycles.Phase
		u    cycles.Unit
		n    uint64
	}{
		{"stage", cycles.PhaseProvision, cycles.UnitAESByte, 4096},
		{"disasm", cycles.PhaseDisasm, cycles.UnitDecodedInst, 500},
		{"policy", cycles.PhasePolicy, cycles.UnitScanInst, 500},
		{"load", cycles.PhaseLoad, cycles.UnitRelocEntry, 20},
		{"attest", cycles.PhaseAttest, cycles.UnitRSAOp, 1},
	}
	for _, ph := range phases {
		sp := tr.StartPhase(ph.name)
		ctr.Charge(ph.p, ph.u, ph.n)
		sp.End()
	}
	tr.Finish()
	got := tr.PhaseTotals()
	want := ctr.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("phase sets differ: got %v want %v", got, want)
	}
	for p, w := range want {
		if got[p] != w {
			t.Errorf("%v: got %d want %d", p, got[p], w)
		}
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	sp.End()
	tr.StartPhase("y").End()
	tr.Finish()
	if tr.ID() != "" || tr.Name() != "" || tr.Snapshot() != nil || tr.PhaseTotals() != nil {
		t.Fatal("nil trace must be inert")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil)")
	}
	var ref SpanRef
	ref.End() // zero SpanRef must not panic
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.StartSpan("worker")
				sp.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	if n := len(tr.Snapshot().Spans); n != 800 {
		t.Fatalf("got %d spans, want 800", n)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "t", HistogramOpts{Buckets: 10, Scale: 1e-3})
	for v := uint64(0); v < 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 4950 {
		t.Fatalf("sum %d", h.Sum())
	}
	// p50 of 0..99: first bucket with cumulative > 50 observations.
	// Buckets: len 0→{0}, 1→{1}, 2→{2,3}, ... len 6 → [32,63]: cumulative 64 > 50.
	if q := h.Quantile(0.5); q != 64 {
		t.Errorf("p50 = %d, want 64", q)
	}
	if q := h.Quantile(0.99); q != 128 {
		t.Errorf("p99 = %d, want 128 (values 64..99 in bucket le=128)", q)
	}
	snap := h.Snapshot()
	if len(snap) == 0 || snap[len(snap)-1].Count != 100 {
		t.Fatalf("snapshot %v", snap)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Count < snap[i-1].Count {
			t.Fatalf("non-cumulative snapshot %v", snap)
		}
	}
}

func TestHistogramClampsOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_small", "t", HistogramOpts{Buckets: 4})
	h.Observe(math.MaxUint64)
	if h.Count() != 1 {
		t.Fatal("overflow observation lost")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(strings.NewReader(buf.String())); len(errs) > 0 {
		t.Fatalf("lint: %v\n%s", errs, buf.String())
	}
	// The +Inf bucket must carry the clamped observation.
	if !strings.Contains(buf.String(), `test_small_bucket{le="+Inf"} 1`) {
		t.Fatalf("missing +Inf bucket:\n%s", buf.String())
	}
}

func TestRegistryExpositionLints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engarde_sessions_accepted_total", "Sessions admitted.")
	c.Add(3)
	r.Counter("engarde_faults_total", "Faults injected.", Label{"op", "read"}).Inc()
	r.Counter("engarde_faults_total", "Faults injected.", Label{"op", "write"}).Add(2)
	g := r.Gauge("engarde_sessions_active", "In-flight sessions.")
	g.Set(2)
	r.GaugeFunc("engarde_phase_cycles_total", "Cycles.", func() float64 { return 12345 },
		Label{"phase", "Policy Checking"})
	r.GaugeFunc("engarde_phase_cycles_total", "Cycles.", func() float64 { return 99 },
		Label{"phase", `odd"name\with`}) // exercises escaping
	h := r.Histogram("engarde_session_seconds", "Latency.", HistogramOpts{Buckets: 22, Scale: 1e-3})
	h.Observe(5)
	h.Observe(120)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Fatalf("lint errors: %v\nexposition:\n%s", errs, out)
	}
	for _, want := range []string{
		"# TYPE engarde_sessions_accepted_total counter",
		"engarde_sessions_accepted_total 3",
		`engarde_faults_total{op="write"} 2`,
		"# TYPE engarde_session_seconds histogram",
		`engarde_session_seconds_bucket{le="+Inf"} 2`,
		"engarde_session_seconds_count 2",
		`engarde_phase_cycles_total{phase="Policy Checking"} 12345`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("ok_total", "h")
	mustPanic("bad name", func() { r.Counter("1bad", "h") })
	mustPanic("type clash", func() { r.Gauge("ok_total", "h") })
	mustPanic("dup series", func() { r.Counter("ok_total", "h") })
	mustPanic("le reserved", func() { r.Counter("x_total", "h", Label{"le", "1"}) })
}

func TestLintCatchesMalformedExpositions(t *testing.T) {
	cases := map[string]string{
		"no type":            "some_metric 1\n",
		"dup series":         "# TYPE a counter\na 1\na 1\n",
		"bad value":          "# TYPE a counter\na abc\n",
		"type after sample":  "# TYPE a counter\na 1\n# TYPE a counter\n",
		"no inf bucket":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n",
		"non-cumulative":     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing sum":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"unterminated label": "# TYPE a counter\na{x=\"y 1\n",
		"bad escape":         "# TYPE a counter\na{x=\"\\q\"} 1\n",
		"le on counter":      "# TYPE a counter\na{le=\"1\"} 1\n",
	}
	for name, in := range cases {
		if errs := Lint(strings.NewReader(in)); len(errs) == 0 {
			t.Errorf("%s: lint accepted malformed input:\n%s", name, in)
		}
	}
	good := "# HELP a help text\n# TYPE a counter\na{x=\"esc\\\\aped\\\"quote\\nnewline\"} 1 1712345678\n" +
		"# TYPE h histogram\nh_bucket{le=\"0.001\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 2\n"
	if errs := Lint(strings.NewReader(good)); len(errs) > 0 {
		t.Errorf("lint rejected valid input: %v", errs)
	}
}

func TestSinkWritesJSONLAndChromeTrace(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	ctr := cycles.NewCounter(cycles.DefaultModel())
	var last *Trace
	for i := 0; i < 3; i++ {
		tr := NewTrace("session", ctr)
		sp := tr.StartPhase("disasm")
		ctr.Charge(cycles.PhaseDisasm, cycles.UnitDecodedInst, 10)
		sp.End()
		sink.Record(tr)
		last = tr
	}
	if n := len(sink.Recent()); n != 2 {
		t.Fatalf("ring kept %d traces, want 2", n)
	}

	jl, err := os.ReadFile(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(jl), "\n"); n != 3 {
		t.Fatalf("traces.jsonl has %d lines, want 3", n)
	}

	cf, err := os.Open(filepath.Join(dir, "session-"+last.ID()+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	spans, err := ReadChromeTrace(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "disasm" || spans[0].TraceID != last.ID() {
		t.Fatalf("chrome spans %+v", spans)
	}
	wantCycles := 10 * cycles.DefaultModel()[cycles.UnitDecodedInst]
	if spans[0].Cycles[cycles.PhaseDisasm.String()] != wantCycles {
		t.Fatalf("chrome span cycles %v, want %d", spans[0].Cycles, wantCycles)
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTrace("d", nil)
	sp := tr.StartSpan("sleepy")
	time.Sleep(5 * time.Millisecond)
	sp.End()
	tr.Finish()
	d := tr.Snapshot()
	if d.Spans[0].Dur < 5*time.Millisecond {
		t.Fatalf("span duration %v < 5ms", d.Spans[0].Dur)
	}
	if d.EndUnixNano < d.StartUnixNano {
		t.Fatal("trace end before start")
	}
}

func TestLoggers(t *testing.T) {
	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
	lv, err := ParseLevel("WARN")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, lv, "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "trace", "abc123")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "abc123") {
		t.Fatalf("level filtering broken: %q", out)
	}
	if _, err := NewLogger(&buf, lv, "yaml"); err == nil {
		t.Fatal("NewLogger accepted unknown format")
	}
	DiscardLogger().Error("nowhere")

	var lines []string
	lf := LogfLogger(lv, func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) })
	lf.Info("below level")
	lf.With("trace", "t1").Warn("shed", "reason", "queue full")
	if len(lines) != 1 || !strings.Contains(lines[0], "trace=t1") || !strings.Contains(lines[0], "queue full") {
		t.Fatalf("logf adapter lines: %q", lines)
	}
}
