// Command promlint validates a Prometheus text exposition against the
// strict checks of obs.Lint. It reads stdin by default, or scrapes a URL:
//
//	curl -s http://127.0.0.1:7780/metricsz | go run ./internal/obs/promlint
//	go run ./internal/obs/promlint -url http://127.0.0.1:7780/metricsz
//
// Exit status is non-zero if the exposition is malformed or (with -url)
// the scrape fails. CI's metrics-conformance job runs it against a live
// gatewayd.
package main

import (
	"flag"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"time"

	"engarde/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL instead of reading stdin")
	flag.Parse()

	if err := run(*url); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(url string) error {
	var in io.Reader = os.Stdin
	if url != "" {
		c := &http.Client{Timeout: 10 * time.Second}
		resp, err := c.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape %s: status %s", url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			mt, params, err := mime.ParseMediaType(ct)
			if err != nil || mt != "text/plain" || params["version"] != "0.0.4" {
				return fmt.Errorf("scrape %s: content type %q is not text/plain; version=0.0.4", url, ct)
			}
		}
		in = resp.Body
	}
	errs := obs.Lint(in)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, e)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d exposition problem(s)", len(errs))
	}
	fmt.Println("exposition OK")
	return nil
}
