package obs

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProfilerCaptureOnce(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewSink(0, "")
	if err != nil {
		t.Fatal(err)
	}
	p := &Profiler{Dir: dir, Interval: time.Hour, CPUDuration: 10 * time.Millisecond, Sink: sink}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	p.CaptureOnce()
	p.Stop()

	for _, name := range []string{"cpu-1.pprof", "heap-1.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s not written: %v", name, err)
		}
		if name == "heap-1.pprof" && fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}

	// The capture is stamped into the trace stream.
	var stamped *TraceData
	for _, d := range sink.Recent() {
		if d.Name == "profile-capture" {
			stamped = d
		}
	}
	if stamped == nil {
		t.Fatal("no profile-capture trace recorded")
	}
	if len(stamped.Spans) != 1 || stamped.Spans[0].Args["cpu"] != "cpu-1.pprof" {
		t.Errorf("capture trace spans = %+v", stamped.Spans)
	}
}

func TestProfilerRequiresDir(t *testing.T) {
	p := &Profiler{}
	if err := p.Start(); err == nil {
		t.Fatal("profiler started without a directory")
	}
	p.Stop() // must be safe after failed Start
}

func TestMountPprof(t *testing.T) {
	mux := http.NewServeMux()
	MountPprof(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}
