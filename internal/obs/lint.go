package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint strictly validates a Prometheus text exposition (format 0.0.4) and
// returns every problem found. It is an independent re-implementation of
// the format rules — not a call back into the Registry's writer — so it
// can catch the writer's own bugs; the CI metrics-conformance job and the
// scrape tests both run scrape output through it.
//
// Checks: comment/sample grammar, metric and label name charsets, escape
// sequences in label values, TYPE declared once and before samples, known
// TYPE values, every sample belonging to a declared family, no duplicate
// series, parseable values, and histogram shape (le on every bucket, an
// le="+Inf" bucket equal to _count, _sum present, cumulative bucket counts
// non-decreasing in le order).
func Lint(r io.Reader) []error {
	l := &linter{
		typ:     make(map[string]string),
		help:    make(map[string]bool),
		seen:    make(map[string]int),
		sampled: make(map[string]bool),
		hists:   make(map[string]*histState),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("read: %w", err))
	}
	l.finish()
	return l.errs
}

type histState struct {
	line    int
	buckets map[float64]float64 // le → cumulative count
	sum     *float64
	count   *float64
}

type linter struct {
	errs    []error
	typ     map[string]string
	help    map[string]bool
	seen    map[string]int        // name + canonical labels → first line
	sampled map[string]bool       // family names that already emitted samples
	hists   map[string]*histState // histogram base + "|" + labels sans le
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		l.comment(n, s)
		return
	}
	l.sample(n, s)
}

func (l *linter) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return // bare comment, legal and ignored
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			l.errf(n, "malformed HELP line %q", s)
			return
		}
		if l.help[fields[2]] {
			l.errf(n, "second HELP for metric %s", fields[2])
		}
		l.help[fields[2]] = true
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			l.errf(n, "malformed TYPE line %q", s)
			return
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "unknown TYPE %q for metric %s", typ, name)
			return
		}
		if _, dup := l.typ[name]; dup {
			l.errf(n, "second TYPE for metric %s", name)
			return
		}
		if l.sampled[name] {
			l.errf(n, "TYPE for %s appears after its samples", name)
		}
		l.typ[name] = typ
	default:
		// other comments are ignored
	}
}

// sampleFamily maps a sample name to its declared family, folding
// histogram/summary suffixes onto the base name.
func sampleFamily(name string, typ map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := typ[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

func (l *linter) sample(n int, s string) {
	name, labels, value, ok := l.parseSample(n, s)
	if !ok {
		return
	}
	fam := sampleFamily(name, l.typ)
	l.sampled[name] = true
	l.sampled[fam] = true
	t, declared := l.typ[fam]
	if !declared {
		l.errf(n, "sample %s has no TYPE declaration", name)
		return
	}

	key := name + "{" + canonicalLintLabels(labels) + "}"
	if first, dup := l.seen[key]; dup {
		l.errf(n, "duplicate series %s (first at line %d)", key, first)
		return
	}
	l.seen[key] = n

	if t != "histogram" {
		for _, lb := range labels {
			if lb.Key == "le" {
				l.errf(n, "label le on non-histogram metric %s", name)
			}
		}
		return
	}

	// Histogram bookkeeping, grouped by base name + labels without le.
	var le *float64
	rest := make([]Label, 0, len(labels))
	for _, lb := range labels {
		if lb.Key == "le" {
			v, err := parseLintFloat(lb.Value)
			if err != nil {
				l.errf(n, "unparseable le=%q on %s", lb.Value, name)
				return
			}
			le = &v
			continue
		}
		rest = append(rest, lb)
	}
	hk := fam + "|" + canonicalLintLabels(rest)
	h := l.hists[hk]
	if h == nil {
		h = &histState{line: n, buckets: make(map[float64]float64)}
		l.hists[hk] = h
	}
	switch {
	case name == fam+"_bucket":
		if le == nil {
			l.errf(n, "histogram bucket %s missing le label", name)
			return
		}
		h.buckets[*le] = value
	case name == fam+"_sum":
		h.sum = &value
	case name == fam+"_count":
		h.count = &value
	default:
		l.errf(n, "sample %s under histogram %s is not _bucket/_sum/_count", name, fam)
	}
}

func (l *linter) finish() {
	keys := make([]string, 0, len(l.hists))
	for k := range l.hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := l.hists[k]
		fam := strings.SplitN(k, "|", 2)[0]
		inf, hasInf := h.buckets[math.Inf(1)]
		if !hasInf {
			l.errf(h.line, "histogram %s has no le=\"+Inf\" bucket", fam)
		}
		if h.count == nil {
			l.errf(h.line, "histogram %s missing _count", fam)
		} else if hasInf && *h.count != inf {
			l.errf(h.line, "histogram %s: _count %v != +Inf bucket %v", fam, *h.count, inf)
		}
		if h.sum == nil {
			l.errf(h.line, "histogram %s missing _sum", fam)
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		for i := 1; i < len(les); i++ {
			if h.buckets[les[i]] < h.buckets[les[i-1]] {
				l.errf(h.line, "histogram %s: bucket counts not cumulative (le=%v count %v < le=%v count %v)",
					fam, les[i], h.buckets[les[i]], les[i-1], h.buckets[les[i-1]])
				break
			}
		}
	}
}

// parseSample parses `name{labels} value [timestamp]`.
func (l *linter) parseSample(n int, s string) (string, []Label, float64, bool) {
	i := 0
	for i < len(s) && isNameChar(s[i], i == 0) {
		i++
	}
	name := s[:i]
	if !validMetricName(name) {
		l.errf(n, "invalid metric name in sample %q", s)
		return "", nil, 0, false
	}
	var labels []Label
	if i < len(s) && s[i] == '{' {
		var ok bool
		labels, i, ok = l.parseLabels(n, s, i+1)
		if !ok {
			return "", nil, 0, false
		}
	}
	rest := strings.Fields(s[i:])
	if len(rest) < 1 || len(rest) > 2 {
		l.errf(n, "expected value [timestamp] after series in %q", s)
		return "", nil, 0, false
	}
	value, err := parseLintFloat(rest[0])
	if err != nil {
		l.errf(n, "unparseable value %q in %q", rest[0], s)
		return "", nil, 0, false
	}
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			l.errf(n, "unparseable timestamp %q in %q", rest[1], s)
			return "", nil, 0, false
		}
	}
	return name, labels, value, true
}

// parseLabels parses from just after '{' through '}', handling the three
// escape sequences the format defines for label values (\\ \" \n).
func (l *linter) parseLabels(n int, s string, i int) ([]Label, int, bool) {
	var out []Label
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return out, i + 1, true
		}
		j := i
		for j < len(s) && isLabelChar(s[j], j == i) {
			j++
		}
		key := s[i:j]
		if !validLintLabelName(key) {
			l.errf(n, "invalid label name at column %d in %q", i+1, s)
			return nil, 0, false
		}
		if j >= len(s) || s[j] != '=' {
			l.errf(n, "expected = after label %s in %q", key, s)
			return nil, 0, false
		}
		j++
		if j >= len(s) || s[j] != '"' {
			l.errf(n, "label value for %s not quoted in %q", key, s)
			return nil, 0, false
		}
		j++
		var val strings.Builder
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
				if j >= len(s) {
					break
				}
				switch s[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					l.errf(n, "invalid escape \\%c in label %s of %q", s[j], key, s)
					return nil, 0, false
				}
				j++
				continue
			}
			val.WriteByte(s[j])
			j++
		}
		if j >= len(s) {
			l.errf(n, "unterminated label value for %s in %q", key, s)
			return nil, 0, false
		}
		out = append(out, Label{Key: key, Value: val.String()})
		i = j + 1
	}
}

func parseLintFloat(s string) (float64, error) {
	// strconv accepts "+Inf"/"-Inf"/"NaN" in the casings Prometheus emits.
	return strconv.ParseFloat(s, 64)
}

func canonicalLintLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func isNameChar(c byte, first bool) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// validLintLabelName is validLabelName without the registry-side "le is
// reserved" rule: scraped output legitimately contains le on buckets.
func validLintLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isLabelChar(s[i], i == 0) {
			return false
		}
	}
	return true
}
