package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	runtimepprof "runtime/pprof"
	"sync"
	"time"
)

// Continuous-profiling defaults.
const (
	DefaultProfileInterval = 60 * time.Second
	DefaultCPUDuration     = 5 * time.Second
)

// Profiler periodically captures CPU and heap profiles into a directory —
// the always-on tail of the observability story: when a fleet drill-down
// (trace → slow span) lands on "the gateway was just busy", the profile
// covering that window says with what. Captures are stamped into the
// trace stream (a one-span "profile-capture" trace in Sink) so profiles
// and traces cross-reference by wall clock.
//
// Profiling is opt-in at the daemons (-profile-dir) because profiles
// describe the process, not the inspected content: symbol names and
// allocation sites disclose nothing about enclave-bound images, but CPU
// time attribution is still operator telemetry that has no business on by
// default in a mutually-suspicious deployment.
type Profiler struct {
	// Dir receives cpu-N.pprof and heap-N.pprof files.
	Dir string
	// Interval between capture rounds; 0 means DefaultProfileInterval.
	Interval time.Duration
	// CPUDuration is how long each CPU profile runs; 0 means
	// DefaultCPUDuration. Clamped below Interval.
	CPUDuration time.Duration
	// Sink, when set, receives a "profile-capture" trace per round.
	Sink *Sink
	// Logf, when set, receives capture errors.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	seq      int
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Start begins the capture loop. It errors if the directory cannot be
// created or a first CPU profile cannot start (e.g. another profiler owns
// the process's CPU profiling).
func (p *Profiler) Start() error {
	if p.Dir == "" {
		return fmt.Errorf("obs: profiler needs a directory")
	}
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return err
	}
	if p.Interval <= 0 {
		p.Interval = DefaultProfileInterval
	}
	if p.CPUDuration <= 0 {
		p.CPUDuration = DefaultCPUDuration
	}
	if p.CPUDuration >= p.Interval {
		p.CPUDuration = p.Interval / 2
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop()
	return nil
}

// Stop ends the loop and waits for any in-flight capture to finish.
func (p *Profiler) Stop() {
	if p.stop == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Profiler) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

func (p *Profiler) loop() {
	defer close(p.done)
	tick := time.NewTicker(p.Interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
			p.CaptureOnce()
		}
	}
}

// CaptureOnce runs one capture round: a CPUDuration-long CPU profile and
// a heap snapshot, then a trace stamp. Exported so tests (and operators
// via SIGUSR-style hooks) can force a round without waiting a cadence.
func (p *Profiler) CaptureOnce() {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()

	start := time.Now()
	cpuPath := filepath.Join(p.Dir, fmt.Sprintf("cpu-%d.pprof", seq))
	heapPath := filepath.Join(p.Dir, fmt.Sprintf("heap-%d.pprof", seq))

	if f, err := os.Create(cpuPath); err != nil {
		p.logf("obs: profiler: %v", err)
	} else if err := runtimepprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is running (e.g. a pprof HTTP request);
		// skip this round's CPU leg rather than fight over it.
		p.logf("obs: profiler: cpu profile: %v", err)
		f.Close()
		os.Remove(cpuPath)
	} else {
		// Honor Stop during the capture window.
		select {
		case <-time.After(p.CPUDuration):
		case <-p.stop:
		}
		runtimepprof.StopCPUProfile()
		f.Close()
	}

	if f, err := os.Create(heapPath); err != nil {
		p.logf("obs: profiler: %v", err)
	} else {
		if err := runtimepprof.WriteHeapProfile(f); err != nil {
			p.logf("obs: profiler: heap profile: %v", err)
		}
		f.Close()
	}

	if p.Sink != nil {
		tr := NewTrace("profile-capture", nil)
		tr.RecordSpanArgs("capture", start, time.Since(start), map[string]string{
			"cpu":  filepath.Base(cpuPath),
			"heap": filepath.Base(heapPath),
		})
		tr.Finish()
		p.Sink.Record(tr)
	}
}

// MountPprof attaches the net/http/pprof handlers to mux under
// /debug/pprof/ without going through http.DefaultServeMux (the daemons
// never register anything globally; pprof exposure stays a per-mux,
// opt-in decision behind the -pprof flag).
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
