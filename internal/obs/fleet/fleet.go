package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"engarde/internal/obs"
)

// Aggregation defaults.
const (
	DefaultInterval           = 5 * time.Second
	DefaultScrapeTimeout      = 2 * time.Second
	DefaultKeepTraces         = 8
	DefaultAvailabilityTarget = 0.999
)

// Metric families the SLO block is derived from (the gateway's names).
const (
	famServed  = "engarde_gateway_sessions_served_total"
	famErrors  = "engarde_gateway_errors_total"
	famSession = "engarde_gateway_session_seconds"
	famFBTV    = "engarde_gateway_first_byte_to_verdict_seconds"
)

// Backend is one scrape target.
type Backend struct {
	// Name labels every re-emitted series (backend="<name>").
	Name string
	// MetricsURL is the full URL of the backend's Prometheus exposition.
	MetricsURL string
	// TracesURL, when non-empty, is the backend's trace JSONL endpoint;
	// its most recent traces feed FleetView.RecentTraces.
	TracesURL string
}

// Config configures an Aggregator.
type Config struct {
	Backends []Backend
	// Interval is the background scrape cadence (and the staleness bound
	// of Handler-triggered scrapes). 0 means DefaultInterval.
	Interval time.Duration
	// ScrapeTimeout bounds one backend scrape. 0 means DefaultScrapeTimeout.
	ScrapeTimeout time.Duration
	// Client overrides the scrape HTTP client (tests).
	Client *http.Client
	// Self, when set, is the router's own registry: its families are
	// merged into the prom exposition under SelfName, and the
	// aggregator's scrape counters are registered on it.
	Self *obs.Registry
	// SelfSink, when set, contributes the router's own recent traces to
	// RecentTraces under SelfName.
	SelfSink *obs.Sink
	// SelfName labels the Self registry's series; default "router".
	SelfName string
	// AvailabilityTarget is the SLO target availability; default 0.999.
	AvailabilityTarget float64
	// KeepTraces bounds recent traces retained per source; default 8,
	// negative disables trace scraping.
	KeepTraces int
	// Logf, when set, receives scrape diagnostics.
	Logf func(format string, args ...any)
}

// Aggregator scrapes the fleet and serves the merged view.
type Aggregator struct {
	cfg     Config
	client  *http.Client
	scrapes *obs.Counter
	fails   *obs.Counter

	mu        sync.Mutex
	last      FleetView
	families  map[string][]Family // per-backend parsed exposition
	prevSums  map[string]map[string]float64
	scrapedAt time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an Aggregator (no background scraping until Start).
func New(cfg Config) *Aggregator {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = DefaultScrapeTimeout
	}
	if cfg.SelfName == "" {
		cfg.SelfName = "router"
	}
	if cfg.AvailabilityTarget <= 0 || cfg.AvailabilityTarget >= 1 {
		cfg.AvailabilityTarget = DefaultAvailabilityTarget
	}
	if cfg.KeepTraces == 0 {
		cfg.KeepTraces = DefaultKeepTraces
	}
	a := &Aggregator{
		cfg:      cfg,
		client:   cfg.Client,
		families: make(map[string][]Family),
		prevSums: make(map[string]map[string]float64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if a.client == nil {
		a.client = &http.Client{Timeout: cfg.ScrapeTimeout}
	}
	if cfg.Self != nil {
		a.scrapes = cfg.Self.Counter("engarde_fleet_scrapes_total",
			"Backend scrapes attempted by the fleet aggregator.")
		a.fails = cfg.Self.Counter("engarde_fleet_scrape_errors_total",
			"Backend scrapes that failed (backend down or malformed exposition).")
	}
	return a
}

// Start launches the background scrape loop (Stop to end it).
func (a *Aggregator) Start() {
	go func() {
		defer close(a.done)
		tick := time.NewTicker(a.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-tick.C:
				a.ScrapeOnce(context.Background())
			}
		}
	}()
}

// Stop ends the background loop started by Start. Safe to call without
// Start (the loop goroutine simply never ran; Stop only closes the
// channel) and safe to call twice.
func (a *Aggregator) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
}

func (a *Aggregator) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// scrapeText GETs url and hands the body to parse.
func (a *Aggregator) scrapeBody(ctx context.Context, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return resp.Body, nil
}

// ScrapeOnce scrapes every backend, rebuilds the merged view, and returns
// it. A dead backend costs its scrape timeout and appears with Up=false;
// it never fails the aggregation.
func (a *Aggregator) ScrapeOnce(ctx context.Context) FleetView {
	type result struct {
		backend Backend
		fams    []Family
		traces  []obs.TraceData
		err     error
	}
	results := make([]result, len(a.cfg.Backends))
	var wg sync.WaitGroup
	for i, b := range a.cfg.Backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			res := result{backend: b}
			sctx, cancel := context.WithTimeout(ctx, a.cfg.ScrapeTimeout)
			defer cancel()
			if a.scrapes != nil {
				a.scrapes.Inc()
			}
			body, err := a.scrapeBody(sctx, b.MetricsURL)
			if err == nil {
				res.fams, err = ParseProm(body)
				body.Close()
			}
			if err != nil {
				res.err = err
				if a.fails != nil {
					a.fails.Inc()
				}
				a.logf("fleet: scrape %s: %v", b.Name, err)
			} else if b.TracesURL != "" && a.cfg.KeepTraces > 0 {
				// Traces are best-effort garnish on a healthy scrape.
				if tb, terr := a.scrapeBody(sctx, b.TracesURL); terr == nil {
					res.traces = readTraceJSONL(tb, a.cfg.KeepTraces)
					tb.Close()
				}
			}
			results[i] = res
		}(i, b)
	}
	wg.Wait()

	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	view := FleetView{
		ScrapedAtUnixNano: now.UnixNano(),
		SLO:               SLO{AvailabilityTarget: a.cfg.AvailabilityTarget, VerdictIntegrity: 1.0},
	}
	sessionAll, fbtvAll := newHist(), newHist()
	for _, res := range results {
		bv := BackendView{Name: res.backend.Name, Up: res.err == nil}
		if res.err != nil {
			bv.Error = res.err.Error()
			// A dead backend's families are dropped — its counters would
			// otherwise freeze into the fleet sums forever. Its delta
			// baseline is kept so a restart shows sane deltas.
			delete(a.families, res.backend.Name)
		} else {
			a.families[res.backend.Name] = res.fams
			sums := counterSums(res.fams)
			bv.Served = uint64(sums[famServed])
			bv.Errors = uint64(sums[famErrors])
			bv.Deltas = counterDeltas(a.prevSums[res.backend.Name], sums)
			a.prevSums[res.backend.Name] = sums
			if h := histogramOf(res.fams, famSession); h != nil {
				bv.SessionP50 = h.quantile(0.50)
				bv.SessionP99 = h.quantile(0.99)
				sessionAll.merge(h)
			}
			if h := histogramOf(res.fams, famFBTV); h != nil {
				bv.FBTVP99 = h.quantile(0.99)
				fbtvAll.merge(h)
			}
			view.Fleet.Served += bv.Served
			view.Fleet.Errors += bv.Errors
			view.Fleet.BackendsUp++
		}
		for _, td := range res.traces {
			view.RecentTraces = append(view.RecentTraces, summarize(res.backend.Name, td))
		}
		view.Backends = append(view.Backends, bv)
	}
	view.Fleet.BackendsTotal = len(a.cfg.Backends)
	view.Fleet.SessionP50 = sessionAll.quantile(0.50)
	view.Fleet.SessionP90 = sessionAll.quantile(0.90)
	view.Fleet.SessionP99 = sessionAll.quantile(0.99)
	view.Fleet.FBTVP99 = fbtvAll.quantile(0.99)

	// The router's own registry contributes the fleet-level failover and
	// splice-eviction counters (satellite: surface them in /fleetz).
	if a.cfg.Self != nil {
		var buf strings.Builder
		a.cfg.Self.WriteText(&buf)
		if fams, err := ParseProm(strings.NewReader(buf.String())); err == nil {
			a.families[a.cfg.SelfName] = fams
			sums := counterSums(fams)
			view.Fleet.RouterFailovers = uint64(sums["engarde_router_failover_total"])
			view.Fleet.SplicesEvicted = uint64(sums["engarde_router_splices_evicted_total"])
		}
	}
	if a.cfg.SelfSink != nil && a.cfg.KeepTraces > 0 {
		recent := a.cfg.SelfSink.Recent()
		if len(recent) > a.cfg.KeepTraces {
			recent = recent[len(recent)-a.cfg.KeepTraces:]
		}
		for _, td := range recent {
			if td != nil {
				view.RecentTraces = append(view.RecentTraces, summarize(a.cfg.SelfName, *td))
			}
		}
	}

	// Availability over everything the fleet carried to completion:
	// served sessions that did not end in a machinery error. Verdict
	// integrity is 1.0 by construction — verdicts are computed inside the
	// attested enclave and checked end-to-end; no aggregation layer can
	// degrade that number, which is exactly why it is pinned here.
	view.SLO.Availability = 1.0
	if view.Fleet.Served > 0 {
		av := 1.0 - float64(view.Fleet.Errors)/float64(view.Fleet.Served)
		view.SLO.Availability = math.Max(0, av)
	}
	budget := 1.0 - a.cfg.AvailabilityTarget
	view.SLO.ErrorBudgetRemaining = (budget - (1.0 - view.SLO.Availability)) / budget
	view.SLO.FBTVP99Seconds = view.Fleet.FBTVP99

	a.last = view
	a.scrapedAt = now
	return view
}

// Snapshot returns the most recent view, scraping synchronously when none
// exists yet or the last one is older than the interval — so /fleetz is
// always at most one cadence stale, loop or no loop.
func (a *Aggregator) Snapshot(ctx context.Context) FleetView {
	a.mu.Lock()
	fresh := !a.scrapedAt.IsZero() && time.Since(a.scrapedAt) <= a.cfg.Interval
	view := a.last
	a.mu.Unlock()
	if fresh {
		return view
	}
	return a.ScrapeOnce(ctx)
}

// Handler serves the fleet view (mount at /fleetz): JSON by default, the
// merged backend-labeled Prometheus exposition with ?format=prom.
func (a *Aggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		view := a.Snapshot(r.Context())
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			a.WriteProm(w, view)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}

// WriteProm renders the fleet exposition: fleet-level summary series
// first, then every scraped family re-emitted with a backend label. One
// HELP/TYPE per family and per-backend label disambiguation keep the
// merged output valid under obs.Lint.
func (a *Aggregator) WriteProm(w io.Writer, view FleetView) {
	fmt.Fprintf(w, "# HELP engarde_fleet_backends_up Backends whose last scrape succeeded.\n# TYPE engarde_fleet_backends_up gauge\nengarde_fleet_backends_up %d\n", view.Fleet.BackendsUp)
	fmt.Fprintf(w, "# HELP engarde_fleet_backends_total Backends configured for aggregation.\n# TYPE engarde_fleet_backends_total gauge\nengarde_fleet_backends_total %d\n", view.Fleet.BackendsTotal)
	fmt.Fprintf(w, "# HELP engarde_fleet_availability Fleet availability (served minus errors over served).\n# TYPE engarde_fleet_availability gauge\nengarde_fleet_availability %s\n", formatProm(view.SLO.Availability))
	fmt.Fprintf(w, "# HELP engarde_fleet_error_budget_remaining Fraction of the availability error budget left.\n# TYPE engarde_fleet_error_budget_remaining gauge\nengarde_fleet_error_budget_remaining %s\n", formatProm(view.SLO.ErrorBudgetRemaining))
	fmt.Fprintf(w, "# HELP engarde_fleet_verdict_integrity Verdict integrity (always 1: verdicts are enclave-computed and end-to-end checked).\n# TYPE engarde_fleet_verdict_integrity gauge\nengarde_fleet_verdict_integrity 1\n")
	fmt.Fprintf(w, "# HELP engarde_fleet_session_p99_seconds Fleet-merged p99 session latency.\n# TYPE engarde_fleet_session_p99_seconds gauge\nengarde_fleet_session_p99_seconds %s\n", formatProm(view.Fleet.SessionP99))
	fmt.Fprintf(w, "# HELP engarde_fleet_fbtv_p99_seconds Fleet-merged p99 first-byte-to-verdict latency.\n# TYPE engarde_fleet_fbtv_p99_seconds gauge\nengarde_fleet_fbtv_p99_seconds %s\n", formatProm(view.SLO.FBTVP99Seconds))

	a.mu.Lock()
	sources := make([]string, 0, len(a.families))
	for name := range a.families {
		sources = append(sources, name)
	}
	sort.Strings(sources)
	// Merge families across sources by name, preserving one TYPE/HELP.
	type series struct {
		source string
		sample Sample
	}
	type merged struct {
		typ, help string
		series    []series
	}
	order := []string{}
	fams := map[string]*merged{}
	for _, src := range sources {
		for _, f := range a.families[src] {
			m, ok := fams[f.Name]
			if !ok {
				m = &merged{typ: f.Type, help: f.Help}
				fams[f.Name] = m
				order = append(order, f.Name)
			}
			if m.typ != f.Type {
				// A cross-source type clash would corrupt the exposition;
				// first declaration wins, the clashing source is skipped.
				a.logf("fleet: family %s type %s from %s clashes with %s; skipped", f.Name, f.Type, src, m.typ)
				continue
			}
			if m.help == "" {
				m.help = f.Help
			}
			for _, s := range f.Samples {
				m.series = append(m.series, series{source: src, sample: s})
			}
		}
	}
	a.mu.Unlock()

	for _, name := range order {
		m := fams[name]
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, m.typ)
		for _, s := range m.series {
			var lb strings.Builder
			lb.WriteString(`{backend="`)
			lb.WriteString(escapeLabel(s.source))
			lb.WriteByte('"')
			for _, l := range s.sample.Labels {
				lb.WriteString(",")
				lb.WriteString(l.Key)
				lb.WriteString(`="`)
				lb.WriteString(escapeLabel(l.Value))
				lb.WriteByte('"')
			}
			lb.WriteByte('}')
			fmt.Fprintf(w, "%s%s %s\n", s.sample.Name, lb.String(), formatProm(s.sample.Value))
		}
	}
}

// FleetView is the JSON shape of /fleetz.
type FleetView struct {
	ScrapedAtUnixNano int64          `json:"scraped_at_unix_nano"`
	Backends          []BackendView  `json:"backends"`
	Fleet             Summary        `json:"fleet"`
	SLO               SLO            `json:"slo"`
	RecentTraces      []TraceSummary `json:"recent_traces,omitempty"`
}

// BackendView is one backend's slice of the fleet view.
type BackendView struct {
	Name string `json:"name"`
	Up   bool   `json:"up"`
	// Error is the scrape failure when Up is false.
	Error  string `json:"error,omitempty"`
	Served uint64 `json:"served"`
	Errors uint64 `json:"errors"`
	// Deltas are per-counter-family increases since the previous
	// successful scrape — the per-backend health delta block.
	Deltas     map[string]float64 `json:"deltas,omitempty"`
	SessionP50 float64            `json:"session_p50_seconds"`
	SessionP99 float64            `json:"session_p99_seconds"`
	FBTVP99    float64            `json:"fbtv_p99_seconds"`
}

// Summary is the fleet-merged block.
type Summary struct {
	BackendsUp      int     `json:"backends_up"`
	BackendsTotal   int     `json:"backends_total"`
	Served          uint64  `json:"served"`
	Errors          uint64  `json:"errors"`
	SessionP50      float64 `json:"session_p50_seconds"`
	SessionP90      float64 `json:"session_p90_seconds"`
	SessionP99      float64 `json:"session_p99_seconds"`
	FBTVP99         float64 `json:"fbtv_p99_seconds"`
	RouterFailovers uint64  `json:"router_failovers"`
	SplicesEvicted  uint64  `json:"splices_evicted"`
}

// SLO is the error-budget block.
type SLO struct {
	AvailabilityTarget   float64 `json:"availability_target"`
	Availability         float64 `json:"availability"`
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`
	FBTVP99Seconds       float64 `json:"fbtv_p99_seconds"`
	// VerdictIntegrity is pinned at 1: the inspection verdict is computed
	// inside the attested enclave and integrity-protected end to end, so
	// no fleet component can degrade it — the SLO records the invariant.
	VerdictIntegrity float64 `json:"verdict_integrity"`
}

// TraceSummary is one recent trace, for drill-down correlation.
type TraceSummary struct {
	Source    string  `json:"source"`
	TraceID   string  `json:"trace_id"`
	Name      string  `json:"name"`
	DurMillis float64 `json:"dur_ms"`
	Spans     int     `json:"spans"`
}

func summarize(source string, td obs.TraceData) TraceSummary {
	ts := TraceSummary{Source: source, TraceID: td.ID, Name: td.Name, Spans: len(td.Spans)}
	if td.EndUnixNano > td.StartUnixNano {
		ts.DurMillis = float64(td.EndUnixNano-td.StartUnixNano) / 1e6
	}
	return ts
}

// readTraceJSONL parses a /tracez body (one TraceData JSON per line),
// keeping the last keep traces.
func readTraceJSONL(r io.Reader, keep int) []obs.TraceData {
	var out []obs.TraceData
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var td obs.TraceData
		if json.Unmarshal([]byte(line), &td) == nil && td.ID != "" {
			out = append(out, td)
		}
	}
	if len(out) > keep {
		out = out[len(out)-keep:]
	}
	return out
}

// counterSums sums each counter family's samples (all label sets).
func counterSums(fams []Family) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range fams {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			out[f.Name] += s.Value
		}
	}
	return out
}

// counterDeltas returns per-family increases since prev, dropping zeros.
func counterDeltas(prev, cur map[string]float64) map[string]float64 {
	if prev == nil {
		return nil
	}
	out := make(map[string]float64)
	for name, v := range cur {
		if d := v - prev[name]; d > 0 {
			out[name] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// hist is a merged cumulative histogram over exposed le bounds. Every
// backend runs the same binary, so bounds line up and cumulative counts
// sum exactly; a union of differing bounds still merges correctly because
// a cumulative histogram is a non-decreasing step function (each source
// contributes its value at the greatest of its own bounds ≤ le).
type hist struct {
	cum map[float64]float64 // finite le → cumulative count
	inf float64
	sum float64
}

func newHist() *hist { return &hist{cum: make(map[float64]float64)} }

// histogramOf extracts famName's merged bucket set (all label groups
// folded together) or nil when absent.
func histogramOf(fams []Family, famName string) *hist {
	for _, f := range fams {
		if f.Name != famName || f.Type != "histogram" {
			continue
		}
		h := newHist()
		for _, s := range f.Samples {
			switch s.Name {
			case famName + "_bucket":
				for _, l := range s.Labels {
					if l.Key != "le" {
						continue
					}
					if l.Value == "+Inf" {
						h.inf += s.Value
					} else if le, err := parsePromFloat(l.Value); err == nil {
						h.cum[le] += s.Value
					}
				}
			case famName + "_sum":
				h.sum += s.Value
			}
		}
		return h
	}
	return nil
}

func (h *hist) merge(o *hist) {
	les := make([]float64, 0, len(h.cum)+len(o.cum))
	seen := map[float64]bool{}
	for le := range h.cum {
		les = append(les, le)
		seen[le] = true
	}
	for le := range o.cum {
		if !seen[le] {
			les = append(les, le)
		}
	}
	sort.Float64s(les)
	merged := make(map[float64]float64, len(les))
	for _, le := range les {
		merged[le] = stepAt(h.cum, le) + stepAt(o.cum, le)
	}
	h.cum = merged
	h.inf += o.inf
	h.sum += o.sum
}

// stepAt evaluates a cumulative bucket map as a step function at le.
func stepAt(cum map[float64]float64, le float64) float64 {
	best, val := math.Inf(-1), 0.0
	for b, c := range cum {
		if b <= le && b > best {
			best, val = b, c
		}
	}
	return val
}

// quantile mirrors obs.Histogram.Quantile over the exposed (scaled)
// bounds: the first bound whose cumulative count exceeds q of the total.
func (h *hist) quantile(q float64) float64 {
	if h == nil || h.inf == 0 {
		return 0
	}
	target := math.Floor(q * h.inf)
	les := make([]float64, 0, len(h.cum))
	for le := range h.cum {
		les = append(les, le)
	}
	sort.Float64s(les)
	for _, le := range les {
		if h.cum[le] > target {
			return le
		}
	}
	if len(les) > 0 {
		return les[len(les)-1]
	}
	return 0
}

func parsePromFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// formatProm renders a value the way the registry does.
func formatProm(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
