package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"engarde/internal/obs"
)

// fakeBackend is one scrape target built from a real obs.Registry and
// obs.Sink — the aggregator is tested against the exact admin surface a
// gatewayd serves, not a canned exposition.
type fakeBackend struct {
	reg     *obs.Registry
	session *obs.Histogram
	fbtv    *obs.Histogram
	served  *obs.Counter
	errors  *obs.Counter
	sink    *obs.Sink
	srv     *httptest.Server
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	b := &fakeBackend{reg: obs.NewRegistry()}
	b.served = b.reg.Counter(famServed, "sessions served")
	b.errors = b.reg.Counter(famErrors, "errors")
	// Scale 1e-3: record milliseconds, expose seconds — the gateway's own
	// convention, so the merge math runs against real exposed bounds.
	b.session = b.reg.Histogram(famSession, "session latency", obs.HistogramOpts{Scale: 1e-3})
	b.fbtv = b.reg.Histogram(famFBTV, "fbtv latency", obs.HistogramOpts{Scale: 1e-3})
	var err error
	b.sink, err = obs.NewSink(0, "")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metricsz", b.reg.Handler())
	mux.Handle("/tracez", b.sink.Handler())
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

func (b *fakeBackend) target(name string) Backend {
	return Backend{
		Name:       name,
		MetricsURL: b.srv.URL + "/metricsz",
		TracesURL:  b.srv.URL + "/tracez",
	}
}

func TestAggregatorSingleBackendQuantileExact(t *testing.T) {
	b := newFakeBackend(t)
	for _, ms := range []uint64{3, 7, 12, 40, 40, 95, 200, 900} {
		b.session.Observe(ms)
		b.served.Inc()
	}

	agg := New(Config{Backends: []Backend{b.target("b0")}})
	view := agg.ScrapeOnce(context.Background())

	if view.Fleet.BackendsUp != 1 || !view.Backends[0].Up {
		t.Fatalf("backend not up: %+v", view.Backends)
	}
	if view.Fleet.Served != 8 {
		t.Fatalf("served = %d, want 8", view.Fleet.Served)
	}
	// With one backend the fleet quantile must EQUAL the backend's own
	// Quantile (×scale): same buckets, same cumulative sums, same walk.
	want := float64(b.session.Quantile(0.99)) * 1e-3
	if view.Fleet.SessionP99 != want {
		t.Errorf("fleet p99 = %g, backend Quantile×scale = %g", view.Fleet.SessionP99, want)
	}
	if view.Backends[0].SessionP99 != want {
		t.Errorf("backend view p99 = %g, want %g", view.Backends[0].SessionP99, want)
	}
}

func TestAggregatorMergesAcrossBackends(t *testing.T) {
	b0, b1 := newFakeBackend(t), newFakeBackend(t)
	// A reference histogram receives the union of both backends'
	// observations: the merged fleet quantile must match it exactly,
	// because same-binary backends expose identical bucket bounds.
	ref := obs.NewRegistry().Histogram("ref", "", obs.HistogramOpts{Scale: 1e-3})
	for _, ms := range []uint64{2, 5, 9, 30} {
		b0.session.Observe(ms)
		ref.Observe(ms)
		b0.served.Inc()
	}
	for _, ms := range []uint64{400, 800, 1600, 3000} {
		b1.session.Observe(ms)
		ref.Observe(ms)
		b1.served.Inc()
	}

	agg := New(Config{Backends: []Backend{b0.target("b0"), b1.target("b1")}})
	view := agg.ScrapeOnce(context.Background())

	for _, q := range []struct {
		got  float64
		qval float64
	}{
		{view.Fleet.SessionP50, 0.50},
		{view.Fleet.SessionP90, 0.90},
		{view.Fleet.SessionP99, 0.99},
	} {
		want := float64(ref.Quantile(q.qval)) * 1e-3
		if q.got != want {
			t.Errorf("fleet q%.0f = %g, union reference = %g", q.qval*100, q.got, want)
		}
	}
	if view.Fleet.Served != 8 {
		t.Errorf("fleet served = %d, want 8", view.Fleet.Served)
	}
}

func TestAggregatorToleratesDeadBackend(t *testing.T) {
	live := newFakeBackend(t)
	live.served.Inc()
	dead := newFakeBackend(t)
	deadTarget := dead.target("dead")
	dead.srv.Close()

	agg := New(Config{Backends: []Backend{live.target("live"), deadTarget}})
	view := agg.ScrapeOnce(context.Background())

	if view.Fleet.BackendsUp != 1 || view.Fleet.BackendsTotal != 2 {
		t.Fatalf("up/total = %d/%d, want 1/2", view.Fleet.BackendsUp, view.Fleet.BackendsTotal)
	}
	var deadView *BackendView
	for i := range view.Backends {
		if view.Backends[i].Name == "dead" {
			deadView = &view.Backends[i]
		}
	}
	if deadView == nil || deadView.Up || deadView.Error == "" {
		t.Fatalf("dead backend view = %+v", deadView)
	}
	if view.Fleet.Served != 1 {
		t.Errorf("dead backend leaked counters into fleet sums: served = %d", view.Fleet.Served)
	}
}

func TestAggregatorDeltasAndSLO(t *testing.T) {
	b := newFakeBackend(t)
	for i := 0; i < 10; i++ {
		b.served.Inc()
	}
	b.errors.Inc()

	agg := New(Config{Backends: []Backend{b.target("b0")}, AvailabilityTarget: 0.9})
	v1 := agg.ScrapeOnce(context.Background())
	if v1.Backends[0].Deltas != nil {
		t.Errorf("first scrape produced deltas: %v", v1.Backends[0].Deltas)
	}
	// availability = 1 - 1/10 = 0.9, exactly on target: budget fully spent.
	if v1.SLO.Availability != 0.9 {
		t.Errorf("availability = %g, want 0.9", v1.SLO.Availability)
	}
	if v1.SLO.ErrorBudgetRemaining > 1e-9 {
		t.Errorf("error budget remaining = %g, want ~0", v1.SLO.ErrorBudgetRemaining)
	}
	if v1.SLO.VerdictIntegrity != 1.0 {
		t.Errorf("verdict integrity = %g, must be pinned at 1", v1.SLO.VerdictIntegrity)
	}

	for i := 0; i < 5; i++ {
		b.served.Inc()
	}
	v2 := agg.ScrapeOnce(context.Background())
	if d := v2.Backends[0].Deltas[famServed]; d != 5 {
		t.Errorf("served delta = %g, want 5 (deltas: %v)", d, v2.Backends[0].Deltas)
	}
}

func TestAggregatorPromOutputLints(t *testing.T) {
	b0, b1 := newFakeBackend(t), newFakeBackend(t)
	b0.session.Observe(10)
	b0.served.Inc()
	b1.session.Observe(20)
	b1.served.Inc()
	b1.errors.Inc()

	self := obs.NewRegistry()
	self.Counter("engarde_router_failover_total", "failovers").Inc()
	self.Counter("engarde_router_splices_evicted_total", "evictions").Inc()

	agg := New(Config{
		Backends: []Backend{b0.target("b0"), b1.target("b1")},
		Self:     self,
	})
	view := agg.ScrapeOnce(context.Background())
	if view.Fleet.RouterFailovers != 1 || view.Fleet.SplicesEvicted != 1 {
		t.Errorf("router counters not surfaced: failovers=%d evicted=%d",
			view.Fleet.RouterFailovers, view.Fleet.SplicesEvicted)
	}

	var buf strings.Builder
	agg.WriteProm(&buf, view)
	out := buf.String()
	if errs := obs.Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Fatalf("merged exposition fails lint: %v\n%s", errs, out)
	}
	for _, want := range []string{
		`backend="b0"`, `backend="b1"`, `backend="router"`,
		"engarde_fleet_backends_up 2",
		"engarde_fleet_verdict_integrity 1",
		famSession + `_bucket{backend="b0",le="+Inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestAggregatorRecentTraces(t *testing.T) {
	b := newFakeBackend(t)
	tr := obs.NewTrace("session", nil)
	tr.RecordSpan("disasm", time.Now(), 0)
	b.sink.Record(tr)

	selfSink, err := obs.NewSink(0, "")
	if err != nil {
		t.Fatal(err)
	}
	rt := obs.NewTrace("route", nil)
	selfSink.Record(rt)

	agg := New(Config{Backends: []Backend{b.target("b0")}, SelfSink: selfSink})
	view := agg.ScrapeOnce(context.Background())

	ids := map[string]string{}
	for _, ts := range view.RecentTraces {
		ids[ts.TraceID] = ts.Source
	}
	if src := ids[tr.ID()]; src != "b0" {
		t.Errorf("backend trace %s attributed to %q, want b0 (traces: %+v)", tr.ID(), src, view.RecentTraces)
	}
	if src := ids[rt.ID()]; src != "router" {
		t.Errorf("router trace %s attributed to %q, want router", rt.ID(), src)
	}
}

func TestParsePromRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "a counter", obs.Label{Key: "k", Value: `quo"te`}).Inc()
	reg.Histogram("lat_seconds", "latency", obs.HistogramOpts{Scale: 1e-3}).Observe(5)

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	c, ok := byName["x_total"]
	if !ok || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 1 {
		t.Fatalf("x_total parsed as %+v", c)
	}
	if c.Samples[0].Labels[0].Value != `quo"te` {
		t.Errorf("escaped label decoded as %q", c.Samples[0].Labels[0].Value)
	}
	h, ok := byName["lat_seconds"]
	if !ok || h.Type != "histogram" {
		t.Fatalf("lat_seconds parsed as %+v", h)
	}
	var buckets, sums, counts int
	for _, s := range h.Samples {
		switch s.Name {
		case "lat_seconds_bucket":
			buckets++
		case "lat_seconds_sum":
			sums++
		case "lat_seconds_count":
			counts++
		}
	}
	if buckets == 0 || sums != 1 || counts != 1 {
		t.Errorf("histogram shape: %d buckets, %d sums, %d counts", buckets, sums, counts)
	}
}
