// Package fleet aggregates a fleet's telemetry at the router: it scrapes
// each backend's /metricsz (Prometheus text) and /tracez (trace JSONL) on
// a cadence, merges the histograms into fleet-level quantiles, derives an
// SLO/error-budget block, and re-serves the whole thing at /fleetz as
// JSON and as a backend-labeled Prometheus exposition.
//
// Everything is zero-dependency like the rest of obs: the parser below is
// a small independent reader of the 0.0.4 text format (the counterpart of
// obs.Lint's independent validator), not a shared implementation with the
// Registry's writer.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"engarde/internal/obs"
)

// Sample is one series sample of a parsed exposition.
type Sample struct {
	// Name is the sample name as written — for histograms this includes
	// the _bucket/_sum/_count suffix.
	Name   string
	Labels []obs.Label
	Value  float64
}

// Family is one metric family of a parsed exposition: its TYPE, HELP, and
// every sample that folds onto its base name.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, untyped
	Help    string
	Samples []Sample
}

// ParseProm reads a Prometheus 0.0.4 text exposition into families, in
// declaration order. Samples without a TYPE declaration are grouped into
// an implicit untyped family. The parser is strict about sample grammar
// (it shares obs.Lint's reading of the format) but does not validate
// histogram shape — that stays Lint's job.
func ParseProm(r io.Reader) ([]Family, error) {
	var (
		order []string
		fams  = make(map[string]*Family)
	)
	family := func(name, typ string) *Family {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &Family{Name: name, Type: typ}
		fams[name] = f
		order = append(order, name)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				f := family(fields[2], "untyped")
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) == 4 {
					f := family(fields[2], fields[3])
					f.Type = fields[3]
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: line %d: %w", n, err)
		}
		f := family(familyOf(name, fams), "untyped")
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: reading exposition: %w", err)
	}
	out := make([]Family, 0, len(order))
	for _, name := range order {
		out = append(out, *fams[name])
	}
	return out, nil
}

// familyOf folds a histogram/summary sample name onto its declared base.
func familyOf(name string, fams map[string]*Family) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return name
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(s string) (string, []obs.Label, float64, error) {
	i := 0
	for i < len(s) && isNameChar(s[i], i == 0) {
		i++
	}
	name := s[:i]
	if name == "" {
		return "", nil, 0, fmt.Errorf("no metric name in %q", s)
	}
	var labels []obs.Label
	if i < len(s) && s[i] == '{' {
		var err error
		labels, i, err = parseLabels(s, i+1)
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest := strings.Fields(s[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp] in %q", s)
	}
	value, err := strconv.ParseFloat(rest[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", rest[0], s)
	}
	return name, labels, value, nil
}

// parseLabels parses from just after '{' through '}', decoding the three
// escape sequences the format defines (\\ \" \n).
func parseLabels(s string, i int) ([]obs.Label, int, error) {
	var out []obs.Label
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return out, i + 1, nil
		}
		j := i
		for j < len(s) && isLabelChar(s[j], j == i) {
			j++
		}
		key := s[i:j]
		if key == "" {
			return nil, 0, fmt.Errorf("invalid label name in %q", s)
		}
		if j >= len(s) || s[j] != '=' {
			return nil, 0, fmt.Errorf("expected = after label %s in %q", key, s)
		}
		j++
		if j >= len(s) || s[j] != '"' {
			return nil, 0, fmt.Errorf("label value for %s not quoted in %q", key, s)
		}
		j++
		var val strings.Builder
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
				if j >= len(s) {
					break
				}
				switch s[j] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("invalid escape \\%c in %q", s[j], s)
				}
				j++
				continue
			}
			val.WriteByte(s[j])
			j++
		}
		if j >= len(s) {
			return nil, 0, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, obs.Label{Key: key, Value: val.String()})
		i = j + 1
	}
}

func isNameChar(c byte, first bool) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

func isLabelChar(c byte, first bool) bool {
	if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// escapeLabel encodes a label value for re-emission.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
