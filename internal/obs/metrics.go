package obs

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry rendering the Prometheus
// text exposition format (version 0.0.4). It is deliberately tiny: three
// instrument kinds (Counter, Gauge/GaugeFunc, Histogram), registration
// panics on programmer errors (bad names, type clashes, duplicate series),
// and reads are lock-free atomics so instruments can sit on the gateway's
// hot path.
//
// Multiple series under one metric name are allowed as long as their label
// sets differ — register each with its own Label values and the registry
// groups them into one family with a single HELP/TYPE header.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byN  map[string]*family
}

// Label is one metric label pair. Labels are rendered in registration
// order, not sorted, so pass them consistently.
type Label struct {
	Key, Value string
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

type series struct {
	labels string // pre-rendered {k="v",...} or ""
	keys   string // canonical sorted key=value form for duplicate detection
	write  func(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]*family)}
}

func (r *Registry) register(name, help string, typ metricType, labels []Label, write func(io.Writer, string, string)) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validLabelName(l.Key) {
			panic("obs: invalid label name " + strconv.Quote(l.Key) + " on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byN[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byN[name] = f
		r.fams = append(r.fams, f)
	} else if f.typ != typ {
		panic("obs: metric " + name + " registered as both " + f.typ.String() + " and " + typ.String())
	}
	keys := canonicalLabels(labels)
	for _, s := range f.series {
		if s.keys == keys {
			panic("obs: duplicate series " + name + "{" + keys + "}")
		}
	}
	f.series = append(f.series, &series{
		labels: renderLabels(labels),
		keys:   keys,
		write:  write,
	})
}

// Counter registers and returns a monotonically increasing counter. The
// name should end in _total per Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, c.Value())
	})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, g.Value())
	})
	return g
}

// CounterFunc registers a counter whose value is read live at scrape time,
// for monotone totals owned by another object (cache eviction counts,
// cycle-model phase totals). The function must be monotonically
// non-decreasing over the process lifetime, or scrapers will see resets.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, typeCounter, labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %d\n", n, l, fn())
	})
}

// GaugeFunc registers a gauge whose value is read live at scrape time —
// the mechanism that keeps /metricsz and /statsz views of shared state
// (cache sizes, phase cycle totals, queue depth) from ever diverging:
// both read the same underlying object.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, typeGauge, labels, func(w io.Writer, n, l string) {
		fmt.Fprintf(w, "%s%s %s\n", n, l, formatFloat(fn()))
	})
}

// HistogramOpts configures a log₂-bucketed histogram.
type HistogramOpts struct {
	// Buckets is the number of finite buckets (default 22, matching the
	// gateway's historical latency histogram). Bucket i counts observations
	// v with bits.Len64(v) == i, i.e. v < 2^i, so finite upper bounds are
	// 1, 2, 4, ... 2^(Buckets-1); larger observations land in the last
	// bucket, whose rendered bound still undercounts them — the +Inf bucket
	// carries the true total.
	Buckets int
	// Scale multiplies bucket bounds and _sum at exposition time, so an
	// instrument can record in its natural integer unit (ms, µs, bytes)
	// while the exposition follows Prometheus base-unit conventions
	// (seconds): record ms with Scale 1e-3, µs with Scale 1e-6. Default 1.
	Scale float64
}

// maxHistBuckets bounds the fixed bucket array; 64 covers every power of
// two a uint64 observation can reach.
const maxHistBuckets = 64

// Histogram registers and returns a histogram with log₂ buckets backed by
// atomic counters — Observe is a few atomic adds, no locks, no allocation.
func (r *Registry) Histogram(name, help string, opts HistogramOpts, labels ...Label) *Histogram {
	n := opts.Buckets
	if n <= 0 {
		n = 22
	}
	if n > maxHistBuckets {
		n = maxHistBuckets
	}
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	h := &Histogram{n: n, scale: scale}
	r.register(name, help, typeHistogram, labels, func(w io.Writer, nm, l string) {
		h.expose(w, nm, l)
	})
	return h
}

// Handler returns an http.Handler serving the exposition, for mounting at
// /metricsz.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// WriteText renders the full exposition.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := &errWriter{w: w}
	for _, f := range r.fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			s.write(bw, f.name, s.labels)
		}
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-size log₂-bucketed histogram with atomic buckets.
// Observation i lands in bucket bits.Len64(v) (clamped), giving power-of-two
// upper bounds — coarse but allocation-free and mergeable, the same scheme
// the gateway has always used for /statsz latency.
type Histogram struct {
	n       int
	scale   float64
	buckets [maxHistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one observation in the histogram's native integer unit.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= h.n {
		i = h.n - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations in the native unit.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket is one (upper bound, cumulative count) pair of a histogram
// snapshot, in the histogram's native unit.
type Bucket struct {
	Le    uint64 `json:"le_ms"`
	Count uint64 `json:"count"`
}

// Snapshot returns cumulative buckets in the native unit, trailing empty
// buckets trimmed — the shape /statsz has always served.
func (h *Histogram) Snapshot() []Bucket {
	counts := h.counts()
	last := 0
	for i, c := range counts {
		if c > 0 {
			last = i
		}
	}
	out := make([]Bucket, 0, last+1)
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		out = append(out, Bucket{Le: leBound(i), Count: cum})
	}
	return out
}

// Quantile returns the upper bound (native unit) of the first bucket whose
// cumulative count exceeds q of the total — an upper-bound estimate, like
// any bucketed quantile. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	counts := h.counts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range counts {
		cum += c
		if c > 0 && cum > target {
			return leBound(i)
		}
	}
	return leBound(h.n - 1)
}

func (h *Histogram) counts() []uint64 {
	out := make([]uint64, h.n)
	for i := 0; i < h.n; i++ {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// leBound is the inclusive upper bound of bucket i in the native unit:
// bucket i holds v with bits.Len64(v)==i, i.e. v <= 2^i - 1... except
// bucket 0, which holds exactly v==0 but is bounded by 1 for continuity
// with the historical /statsz rendering.
func leBound(i int) uint64 {
	if i >= 63 {
		return 1 << 63
	}
	return 1 << uint(i)
}

// expose renders the histogram's exposition lines. Buckets are cumulative;
// the count of observations past the last finite bound is carried by +Inf,
// as the format requires.
func (h *Histogram) expose(w io.Writer, name, labels string) {
	counts := h.counts()
	var cum uint64
	for i := 0; i < h.n; i++ {
		cum += counts[i]
		le := float64(leBound(i)) * h.scale
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatFloat(le)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(float64(h.sum.Load())*h.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// bucketLabels merges a series' label block with the le label.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "=" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
