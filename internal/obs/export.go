package obs

import (
	"encoding/json"
	"io"
)

// WriteJSONL appends one trace as a single JSON line — the on-disk format
// of -trace-dir's traces.jsonl and the default /tracez body. One line per
// trace keeps the file greppable by trace_id and tailable while the
// gateway runs.
func WriteJSONL(w io.Writer, d *TraceData) error {
	if d == nil {
		return nil
	}
	enc, err := json.Marshal(d)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// chromeEvent is one entry of the Chrome trace_event JSON array format,
// the subset understood by chrome://tracing and Perfetto: complete events
// ("ph":"X") with microsecond timestamps plus thread-name metadata events
// ("ph":"M").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // µs since trace epoch
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders traces in Chrome trace_event format. Each trace
// becomes one "thread" (tid = its index, labeled name [id] via a metadata
// event), so concurrent sessions render as parallel rows; spans become
// complete events carrying per-phase cycle deltas in args.cycles. Open the
// output in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, traces []*TraceData) error {
	var f chromeFile
	// Timestamps are relative to the earliest trace start so the viewer
	// opens at t=0 rather than 56 years into a Unix-epoch timeline.
	var epoch int64
	for _, d := range traces {
		if d == nil {
			continue
		}
		if epoch == 0 || d.StartUnixNano < epoch {
			epoch = d.StartUnixNano
		}
	}
	for tid, d := range traces {
		if d == nil {
			continue
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": d.Name + " [" + d.ID + "]"},
		})
		for _, sp := range d.Spans {
			ev := chromeEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   float64(sp.StartUnixNano-epoch) / 1e3,
				Dur:  float64(sp.Dur) / 1e3,
				Pid:  1,
				Tid:  tid,
				Args: map[string]any{"trace_id": d.ID},
			}
			if len(sp.Cycles) > 0 {
				ev.Args["cycles"] = sp.Cycles
			}
			for k, v := range sp.Args {
				// Span tags flatten into the event args; trace_id/cycles
				// keys stay reserved for the export's own fields.
				if k != "trace_id" && k != "cycles" {
					ev.Args[k] = v
				}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// ReadChromeTrace parses a file written by WriteChromeTrace back into its
// events' name/args form — enough for tests (and offline tooling) to
// recover the per-phase cycle attributions without a browser.
func ReadChromeTrace(r io.Reader) ([]ChromeSpan, error) {
	var f struct {
		TraceEvents []struct {
			Name string                     `json:"name"`
			Ph   string                     `json:"ph"`
			Args map[string]json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	out := make([]ChromeSpan, 0, len(f.TraceEvents))
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		cs := ChromeSpan{Name: ev.Name}
		for k, raw := range ev.Args {
			switch k {
			case "trace_id":
				_ = json.Unmarshal(raw, &cs.TraceID)
			case "cycles":
				_ = json.Unmarshal(raw, &cs.Cycles)
			default:
				var s string
				if json.Unmarshal(raw, &s) == nil {
					if cs.Args == nil {
						cs.Args = make(map[string]string)
					}
					cs.Args[k] = s
				}
			}
		}
		out = append(out, cs)
	}
	return out, nil
}

// ChromeSpan is one complete event recovered by ReadChromeTrace.
type ChromeSpan struct {
	Name    string
	TraceID string
	Cycles  map[string]uint64
	Args    map[string]string
}
