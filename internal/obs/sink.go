package obs

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
)

// Sink collects finished traces: the newest keep-count live in a ring
// buffer served by /tracez, and, when a directory is configured
// (-trace-dir), every trace is appended to <dir>/traces.jsonl and written
// as <dir>/<name>-<id>.trace.json in Chrome trace_event format.
//
// Record is called once per session off the hot provisioning path (after
// the verdict is sent), so the file writes cost the session nothing it
// would notice; a nil *Sink is a valid no-op sink.
type Sink struct {
	dir string

	mu   sync.Mutex
	ring []*TraceData // newest last, len <= keep
	keep int
	errs int // file-write failures, reported once via /tracez header
}

// DefaultSinkKeep is how many recent traces /tracez serves from memory.
const DefaultSinkKeep = 64

// NewSink returns a sink retaining keep recent traces (0 = DefaultSinkKeep)
// in memory. dir, when non-empty, is created and receives JSONL + Chrome
// files for every recorded trace.
func NewSink(keep int, dir string) (*Sink, error) {
	if keep <= 0 {
		keep = DefaultSinkKeep
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("trace dir: %w", err)
		}
	}
	return &Sink{dir: dir, keep: keep}, nil
}

// Record finishes t (idempotent) and stores its snapshot. Safe on nil Sink
// and nil Trace.
func (s *Sink) Record(t *Trace) {
	if s == nil || t == nil {
		return
	}
	t.Finish()
	d := t.Snapshot()

	s.mu.Lock()
	s.ring = append(s.ring, d)
	if len(s.ring) > s.keep {
		// Shift rather than reslice so the backing array doesn't pin every
		// trace ever recorded.
		copy(s.ring, s.ring[len(s.ring)-s.keep:])
		s.ring = s.ring[:s.keep]
	}
	s.mu.Unlock()

	if s.dir == "" {
		return
	}
	if err := s.writeFiles(d); err != nil {
		s.mu.Lock()
		s.errs++
		s.mu.Unlock()
	}
}

func (s *Sink) writeFiles(d *TraceData) error {
	jl, err := os.OpenFile(filepath.Join(s.dir, "traces.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	werr := WriteJSONL(jl, d)
	if cerr := jl.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}

	name := d.Name
	if name == "" {
		name = "trace"
	}
	cf, err := os.Create(filepath.Join(s.dir, name+"-"+d.ID+".trace.json"))
	if err != nil {
		return err
	}
	werr = WriteChromeTrace(cf, []*TraceData{d})
	if cerr := cf.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Recent returns the retained traces, oldest first.
func (s *Sink) Recent() []*TraceData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*TraceData, len(s.ring))
	copy(out, s.ring)
	return out
}

// Handler serves the retained traces: JSONL by default (one trace per
// line, newest last), or a single Chrome trace_event document with
// ?format=chrome — pipe that straight into chrome://tracing or Perfetto.
func (s *Sink) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := s.Recent()
		if s != nil {
			s.mu.Lock()
			errs := s.errs
			s.mu.Unlock()
			if errs > 0 {
				w.Header().Set("X-Trace-Write-Errors", fmt.Sprint(errs))
			}
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteChromeTrace(w, traces)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, d := range traces {
			_ = WriteJSONL(w, d)
		}
	})
}
