package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level. Accepted:
// debug, info, warn, error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the process logger from the -log-level/-log-format flag
// pair. format is "text" or "json"; anything else errors so a typo'd flag
// fails loudly at startup instead of silently logging in the wrong shape.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
}

// DiscardLogger returns a logger that drops everything — the default for
// library code (gateway, tests, benchmarks) when no logger is configured,
// so instrumentation never nil-checks. (slog.DiscardHandler needs go 1.24;
// this module targets 1.22, hence the hand-rolled handler.)
func DiscardLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogfLogger adapts a printf-style sink (the gateway's historical
// Config.Logf hook) into a slog.Logger, so code migrated to structured
// logging keeps feeding tests and embedders that still capture lines.
func LogfLogger(level slog.Level, logf func(format string, args ...any)) *slog.Logger {
	return slog.New(&logfHandler{level: level, logf: logf})
}

type logfHandler struct {
	level slog.Level
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &logfHandler{level: h.level, logf: h.logf}
	n.attrs = append(append(n.attrs, h.attrs...), attrs...)
	return n
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }
