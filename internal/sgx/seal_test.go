package sgx

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	secret := []byte("policy verdict: compliant; exec pages: 7")
	blob, err := d.Seal(e, secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(blob, []byte("compliant")) {
		t.Error("sealed blob leaks plaintext")
	}
	got, err := d.Unseal(e, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("round trip mismatch")
	}
}

func TestSealBindsToMeasurement(t *testing.T) {
	d := newTestDevice(t, V2)
	e1 := buildEnclave(t, d, 0x10000, [][]byte{bytes.Repeat([]byte{1}, PageSize)})
	e2 := buildEnclave(t, d, 0x10000, [][]byte{bytes.Repeat([]byte{2}, PageSize)})
	blob, err := d.Seal(e1, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Unseal(e2, blob); !errors.Is(err, ErrSealBroken) {
		t.Errorf("different-measurement unseal = %v, want ErrSealBroken", err)
	}
	// But an enclave with the SAME measurement unseals fine.
	e3 := buildEnclave(t, d, 0x10000, [][]byte{bytes.Repeat([]byte{1}, PageSize)})
	if _, err := d.Unseal(e3, blob); err != nil {
		t.Errorf("same-measurement unseal: %v", err)
	}
}

func TestSealBindsToDevice(t *testing.T) {
	content := bytes.Repeat([]byte{9}, PageSize)
	d1 := newTestDevice(t, V2)
	e1 := buildEnclave(t, d1, 0x10000, [][]byte{content})
	d2 := newTestDevice(t, V2)
	e2 := buildEnclave(t, d2, 0x10000, [][]byte{content})
	blob, err := d1.Seal(e1, []byte("device-bound"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Unseal(e2, blob); !errors.Is(err, ErrSealBroken) {
		t.Errorf("cross-device unseal = %v, want ErrSealBroken", err)
	}
}

func TestSealTamperDetected(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	blob, err := d.Seal(e, []byte("integrity matters"))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 1
	if _, err := d.Unseal(e, blob); !errors.Is(err, ErrSealBroken) {
		t.Errorf("tampered unseal = %v, want ErrSealBroken", err)
	}
	if _, err := d.Unseal(e, blob[:4]); !errors.Is(err, ErrSealBroken) {
		t.Errorf("truncated unseal = %v, want ErrSealBroken", err)
	}
}

func TestQuickSealIdentity(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	f := func(data []byte) bool {
		blob, err := d.Seal(e, data)
		if err != nil {
			t.Errorf("Seal: %v", err)
			return false
		}
		got, err := d.Unseal(e, blob)
		if err != nil {
			t.Errorf("Unseal: %v", err)
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSealRequiresInit(t *testing.T) {
	d := newTestDevice(t, V2)
	e, err := d.ECreate(0x10000, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(e, []byte("x")); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("Seal before EINIT = %v", err)
	}
}
