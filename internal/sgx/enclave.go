package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Measurement is an enclave measurement (MRENCLAVE), the SHA-256 digest of
// the log of all build-time activities (ECREATE/EADD/EEXTEND), as produced
// by the quoting flow in the paper's §2.
type Measurement [sha256.Size]byte

// Enclave is a linear span of some process's address space whose pages are
// drawn from the EPC.
type Enclave struct {
	id   EnclaveID
	dev  *Device
	base uint64
	size uint64

	// pages maps page-aligned virtual addresses to EPC slots.
	pages map[uint64]int

	mrLog       []byte // measurement log, hashed at EINIT
	mrEnclave   Measurement
	initialized bool
	// evictVer is the monotone per-page eviction counter (never reset —
	// the rollback-protection property of SGX's version arrays); evicted
	// maps pages currently paged out to the version that left.
	evictVer map[uint64]uint64
	evicted  map[uint64]uint64
	// locked forbids further EADD/EAUG; EnGarde's host component locks the
	// enclave once provisioning completes (paper §3).
	locked bool
	// lost means the host reclaimed the enclave's EPC pages (see loss.go);
	// every subsequent access fails with ErrEnclaveLost.
	lost bool
}

// ID returns the enclave's identifier.
func (e *Enclave) ID() EnclaveID { return e.id }

// Dev returns the device hosting the enclave.
func (e *Enclave) Dev() *Device { return e.dev }

// Base returns the enclave's base virtual address.
func (e *Enclave) Base() uint64 { return e.base }

// Size returns the enclave's span in bytes.
func (e *Enclave) Size() uint64 { return e.size }

// Contains reports whether [addr, addr+n) lies inside the enclave span.
func (e *Enclave) Contains(addr, n uint64) bool {
	end := addr + n
	return addr >= e.base && end >= addr && end <= e.base+e.size
}

// Measurement returns MRENCLAVE; valid only after EINIT.
func (e *Enclave) Measurement() Measurement { return e.mrEnclave }

// Initialized reports whether EINIT has run.
func (e *Enclave) Initialized() bool {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	return e.initialized
}

// Locked reports whether the enclave has been locked against growth.
func (e *Enclave) Locked() bool {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	return e.locked
}

// MappedPages returns the page-aligned virtual addresses currently backed
// by EPC pages, in no particular order.
func (e *Enclave) MappedPages() []uint64 {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	out := make([]uint64, 0, len(e.pages))
	for va := range e.pages {
		out = append(out, va)
	}
	return out
}

// PageSlot returns the EPC slot backing the page containing addr; the host
// OS uses it as the physical frame number when building page tables.
func (e *Enclave) PageSlot(addr uint64) (int, bool) {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	slot, ok := e.pages[addr&^uint64(PageSize-1)]
	return slot, ok
}

// PagePerm returns the EPCM permissions of the page containing addr.
func (e *Enclave) PagePerm(addr uint64) (Perm, error) {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	slot, ok := e.pages[addr&^uint64(PageSize-1)]
	if !ok {
		return 0, ErrPageNotMapped
	}
	return e.dev.epc[slot].perm, nil
}

//
// Lifecycle instructions (each charged as one SGX instruction).
//

// ECreate allocates a new enclave covering [base, base+size) and opens its
// measurement log. size must be a multiple of the page size.
func (d *Device) ECreate(base, size uint64) (*Enclave, error) {
	if size == 0 || size%PageSize != 0 || base%PageSize != 0 {
		return nil, fmt.Errorf("%w: base %#x size %#x not page-aligned", ErrBadAddress, base, size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	e := &Enclave{
		id:    d.nextID,
		dev:   d,
		base:  base,
		size:  size,
		pages: make(map[uint64]int),
	}
	d.nextID++
	d.enclaves[e.id] = e
	// Measurement log starts with the ECREATE record.
	var rec [24]byte
	copy(rec[:8], "ECREATE\x00")
	binary.LittleEndian.PutUint64(rec[8:], base)
	binary.LittleEndian.PutUint64(rec[16:], size)
	e.mrLog = append(e.mrLog, rec[:]...)
	return e, nil
}

// EAdd copies a 4 KiB source page into a free EPC page, records it in the
// EPCM with the given permissions, and extends the measurement log with the
// page's metadata. Content is measured separately via EExtend, as on real
// hardware.
func (d *Device) EAdd(e *Enclave, vaddr uint64, perm Perm, ptype PageType, content []byte) error {
	if vaddr%PageSize != 0 {
		return fmt.Errorf("%w: EADD vaddr %#x not page-aligned", ErrBadAddress, vaddr)
	}
	if len(content) > PageSize {
		return fmt.Errorf("sgx: EADD content %d bytes exceeds page size", len(content))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if !e.Contains(vaddr, PageSize) {
		return fmt.Errorf("%w: EADD vaddr %#x outside enclave", ErrBadAddress, vaddr)
	}
	if e.initialized && d.version == V1 {
		// SGXv1 requires all enclave memory committed at build time
		// (paper §4); post-EINIT growth needs v2's EAUG.
		return fmt.Errorf("%w: EADD after EINIT requires SGXv2 EAUG", ErrInitialized)
	}
	if e.locked {
		return ErrEnclaveLocked
	}
	if e.lost {
		return fmt.Errorf("%w: enclave %d", ErrEnclaveLost, e.id)
	}
	if _, dup := e.pages[vaddr]; dup {
		return fmt.Errorf("%w: %#x", ErrPageMapped, vaddr)
	}
	slot, err := d.allocSlotLocked()
	if err != nil {
		return err
	}
	var page [PageSize]byte
	copy(page[:], content)
	ct := d.pageCrypt(slot, e.id, page[:])
	copy(d.epc[slot].data[:], ct)
	d.epc[slot] = epcPage{
		data:  d.epc[slot].data,
		valid: true, owner: e.id, vaddr: vaddr, perm: perm, ptype: ptype,
	}
	e.pages[vaddr] = slot

	var rec [24]byte
	copy(rec[:8], "EADD\x00\x00\x00\x00")
	binary.LittleEndian.PutUint64(rec[8:], vaddr)
	binary.LittleEndian.PutUint32(rec[16:], uint32(perm))
	binary.LittleEndian.PutUint32(rec[20:], uint32(ptype))
	e.mrLog = append(e.mrLog, rec[:]...)
	return nil
}

// extendChunk is the EEXTEND measurement granularity.
const extendChunk = 256

// EExtend measures one 256-byte chunk of an added page into the enclave's
// measurement log.
func (d *Device) EExtend(e *Enclave, vaddr uint64, offset uint64) error {
	if offset%extendChunk != 0 || offset+extendChunk > PageSize {
		return fmt.Errorf("%w: EEXTEND offset %#x", ErrBadAddress, offset)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	slot, ok := e.pages[vaddr]
	if !ok {
		return fmt.Errorf("%w: EEXTEND %#x", ErrPageNotMapped, vaddr)
	}
	pt := d.pageCrypt(slot, e.id, d.epc[slot].data[:])
	var rec [16]byte
	copy(rec[:8], "EEXTEND\x00")
	binary.LittleEndian.PutUint64(rec[8:], vaddr+offset)
	e.mrLog = append(e.mrLog, rec[:]...)
	e.mrLog = append(e.mrLog, pt[offset:offset+extendChunk]...)
	return nil
}

// EExtendPage measures a whole page. It is semantically identical to 16
// consecutive EEXTENDs (same measurement log, same 16-instruction charge)
// but decrypts the page once.
func (d *Device) EExtendPage(e *Enclave, vaddr uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	slot, ok := e.pages[vaddr]
	if !ok {
		return fmt.Errorf("%w: EEXTEND %#x", ErrPageNotMapped, vaddr)
	}
	d.chargeLocked(PageSize / extendChunk)
	pt := d.pageCrypt(slot, e.id, d.epc[slot].data[:])
	for off := uint64(0); off < PageSize; off += extendChunk {
		var rec [16]byte
		copy(rec[:8], "EEXTEND\x00")
		binary.LittleEndian.PutUint64(rec[8:], vaddr+off)
		e.mrLog = append(e.mrLog, rec[:]...)
		e.mrLog = append(e.mrLog, pt[off:off+extendChunk]...)
	}
	return nil
}

// EInit finalizes the measurement: MRENCLAVE becomes the SHA-256 of the
// build log and the enclave becomes executable.
func (d *Device) EInit(e *Enclave) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if e.initialized {
		return ErrInitialized
	}
	e.mrEnclave = sha256.Sum256(e.mrLog)
	e.initialized = true
	return nil
}

// ERemove evicts one page from the enclave and returns its EPC slot to the
// free pool.
func (d *Device) ERemove(e *Enclave, vaddr uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	slot, ok := e.pages[vaddr]
	if !ok {
		return fmt.Errorf("%w: EREMOVE %#x", ErrPageNotMapped, vaddr)
	}
	delete(e.pages, vaddr)
	d.epc[slot] = epcPage{}
	d.free = append(d.free, slot)
	return nil
}

// DestroyEnclave removes every page and forgets the enclave.
func (d *Device) DestroyEnclave(e *Enclave) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, slot := range e.pages {
		d.epc[slot] = epcPage{}
		d.free = append(d.free, slot)
	}
	e.pages = make(map[uint64]int)
	delete(d.enclaves, e.id)
}

// Lock forbids any further EADD/EAUG on the enclave. EnGarde's host-level
// component invokes this after provisioning so the client cannot inject
// code after the policy check (paper §3).
func (e *Enclave) Lock() {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	e.locked = true
}

func (d *Device) allocSlotLocked() (int, error) {
	if len(d.free) == 0 {
		return 0, ErrEPCFull
	}
	slot := d.free[len(d.free)-1]
	d.free = d.free[:len(d.free)-1]
	return slot, nil
}

//
// SGXv2 dynamic-memory instructions.
//

// EAug adds a zeroed page to an already-initialized enclave (v2 only). The
// page is pending until the enclave EAccepts it.
func (d *Device) EAug(e *Enclave, vaddr uint64, perm Perm) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if d.version != V2 {
		return ErrV2Only
	}
	if !e.initialized {
		return ErrNotInitialized
	}
	if e.locked {
		return ErrEnclaveLocked
	}
	if e.lost {
		return fmt.Errorf("%w: enclave %d", ErrEnclaveLost, e.id)
	}
	if !e.Contains(vaddr, PageSize) {
		return fmt.Errorf("%w: EAUG vaddr %#x", ErrBadAddress, vaddr)
	}
	if _, dup := e.pages[vaddr]; dup {
		return fmt.Errorf("%w: %#x", ErrPageMapped, vaddr)
	}
	slot, err := d.allocSlotLocked()
	if err != nil {
		return err
	}
	ct := d.pageCrypt(slot, e.id, make([]byte, PageSize))
	copy(d.epc[slot].data[:], ct)
	d.epc[slot].valid = true
	d.epc[slot].owner = e.id
	d.epc[slot].vaddr = vaddr
	d.epc[slot].perm = perm
	d.epc[slot].ptype = PageREG
	d.epc[slot].pending = true
	e.pages[vaddr] = slot
	return nil
}

// EAccept completes an EAUG or EMODPR from inside the enclave.
func (d *Device) EAccept(e *Enclave, vaddr uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if d.version != V2 {
		return ErrV2Only
	}
	slot, ok := e.pages[vaddr]
	if !ok {
		return fmt.Errorf("%w: EACCEPT %#x", ErrPageNotMapped, vaddr)
	}
	d.epc[slot].pending = false
	return nil
}

// EModPR restricts the EPCM permissions of a page (v2 only; OS-initiated).
// The new permissions must be a subset of the current ones.
func (d *Device) EModPR(e *Enclave, vaddr uint64, perm Perm) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if d.version != V2 {
		return ErrV2Only
	}
	slot, ok := e.pages[vaddr]
	if !ok {
		return fmt.Errorf("%w: EMODPR %#x", ErrPageNotMapped, vaddr)
	}
	cur := d.epc[slot].perm
	if perm&^cur != 0 {
		return fmt.Errorf("%w: EMODPR cannot add permissions (%s → %s)", ErrPermission, cur, perm)
	}
	d.epc[slot].perm = perm
	return nil
}

// EModPE extends the EPCM permissions of a page (v2 only;
// enclave-initiated).
func (d *Device) EModPE(e *Enclave, vaddr uint64, perm Perm) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if d.version != V2 {
		return ErrV2Only
	}
	slot, ok := e.pages[vaddr]
	if !ok {
		return fmt.Errorf("%w: EMODPE %#x", ErrPageNotMapped, vaddr)
	}
	d.epc[slot].perm |= perm
	return nil
}

//
// Enclave memory access.
//

// access validates and performs an enclave-mediated memory access.
// checkPerm is the EPCM permission required; on SGXv1 EPCM permissions are
// not enforced for REG pages beyond validity (the v1/v2 difference EnGarde
// cares about), so the perm check applies only on V2 devices.
func (e *Enclave) access(addr uint64, buf []byte, write bool) error {
	d := e.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if e.lost {
		return fmt.Errorf("%w: enclave %d", ErrEnclaveLost, e.id)
	}
	if !e.Contains(addr, uint64(len(buf))) {
		return fmt.Errorf("%w: %#x+%d", ErrBadAddress, addr, len(buf))
	}
	pos := 0
	for pos < len(buf) {
		va := addr + uint64(pos)
		pageVA := va &^ uint64(PageSize-1)
		slot, ok := e.pages[pageVA]
		if !ok {
			return fmt.Errorf("%w: %#x", ErrPageNotMapped, pageVA)
		}
		pg := &d.epc[slot]
		if d.version == V2 {
			need := PermR
			if write {
				need = PermW
			}
			if pg.perm&need == 0 {
				return fmt.Errorf("%w: %s access to %#x (%s)", ErrPermission,
					map[bool]string{true: "write", false: "read"}[write], pageVA, pg.perm)
			}
			if pg.pending {
				return fmt.Errorf("%w: page %#x pending EACCEPT", ErrPermission, pageVA)
			}
		}
		off := int(va - pageVA)
		n := len(buf) - pos
		if n > PageSize-off {
			n = PageSize - off
		}
		pt := d.pageCrypt(slot, e.id, pg.data[:])
		if write {
			copy(pt[off:off+n], buf[pos:pos+n])
			ct := d.pageCrypt(slot, e.id, pt)
			copy(pg.data[:], ct)
		} else {
			copy(buf[pos:pos+n], pt[off:off+n])
		}
		pos += n
	}
	return nil
}

// Read copies enclave memory at addr into buf (in-enclave view: plaintext).
func (e *Enclave) Read(addr uint64, buf []byte) error { return e.access(addr, buf, false) }

// Write copies buf into enclave memory at addr.
func (e *Enclave) Write(addr uint64, buf []byte) error { return e.access(addr, buf, true) }
