package sgx

import "sort"

// Enclave loss models the one failure mode SGX hardware imposes on a
// well-behaved host: the OS may reclaim EPC pages at any time (EREMOVE is
// a ring-0 instruction), and an enclave whose pages were torn out from
// under it can never run again — its working set is gone and the EPCM
// entries that made its identity meaningful are invalidated. Real-world
// triggers are EPC pressure, S3 sleep, and TCB recovery; all of them look
// the same from inside: every subsequent access faults.
//
// EnGarde's fleet invariant is that such a loss may cost availability but
// never verdict integrity, so the model here is deliberately total: a
// reclaimed enclave keeps its handle (the gateway still holds it) but
// every memory access and growth instruction fails with ErrEnclaveLost,
// which callers detect with errors.Is and recover from by discarding the
// enclave and re-running the session on a fresh clone.

// ReclaimEnclave performs an EREMOVE sweep over every page of the enclave,
// returning the slots to the free pool and marking the enclave lost. It
// models the host OS invalidating the enclave under EPC pressure: the
// handle survives, but all further accesses fail with ErrEnclaveLost.
// Each page costs one EREMOVE instruction charge. Returns the number of
// pages reclaimed. Reclaiming an already-lost enclave is a no-op.
func (d *Device) ReclaimEnclave(e *Enclave) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reclaimLocked(e)
}

func (d *Device) reclaimLocked(e *Enclave) int {
	if e.lost {
		return 0
	}
	n := len(e.pages)
	d.chargeLocked(uint64(n))
	for _, slot := range e.pages {
		d.epc[slot] = epcPage{}
		d.free = append(d.free, slot)
	}
	e.pages = make(map[uint64]int)
	e.lost = true
	return n
}

// SimulateEPCPressure reclaims initialized enclaves — newest first, i.e.
// in descending creation order, so long-lived infrastructure enclaves
// such as the quoting enclave are victimized last — until at least `need`
// EPC pages are free. The victim order is a deterministic function of
// device state, which lets chaos tests assert exactly which enclaves were
// lost. Returns the enclaves reclaimed (possibly none if the free pool
// already covers the demand, or all candidates are exhausted).
func (d *Device) SimulateEPCPressure(need int) []*Enclave {
	d.mu.Lock()
	defer d.mu.Unlock()
	var victims []*Enclave
	if len(d.free) >= need {
		return victims
	}
	candidates := make([]*Enclave, 0, len(d.enclaves))
	for _, e := range d.enclaves {
		if e.initialized && !e.lost && len(e.pages) > 0 {
			candidates = append(candidates, e)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].id > candidates[j].id })
	for _, e := range candidates {
		if len(d.free) >= need {
			break
		}
		d.reclaimLocked(e)
		victims = append(victims, e)
	}
	return victims
}

// Lost reports whether the enclave's EPC pages were reclaimed out from
// under it. A lost enclave cannot be entered, read, written, or grown;
// the only useful operation left is DestroyEnclave.
func (e *Enclave) Lost() bool {
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	return e.lost
}
