package sgx

import (
	"fmt"
	"sort"
)

// Enclave snapshotting: the serverless-cold-start answer to EADD/EEXTEND
// dominating enclave creation. Every EnGarde session uses the *identical*
// measured bootstrap image, so the device can capture one post-EINIT
// enclave — page contents, EPCM attributes, and the finalized SECS state
// (measurement, span) — and later restore it into fresh EPC slots at
// memcpy speed instead of replaying the measured build.
//
// The security argument mirrors SGX fork/snapshot designs (cf. the
// Confidential Attestation line of work, which reuses one measured
// bootstrap enclave across tasks): the snapshot is taken from an enclave
// whose measurement the build already finalized, clones carry that exact
// MRENCLAVE, and each clone gets a fresh enclave identity so reports and
// quotes are per-instance. Page ciphertext is never shared between
// enclaves — the EPC encryption IV is (slot, owner), so a clone's pages
// are re-encrypted under its own identity and a bus-level adversary sees
// unrelated ciphertext for identical plaintext.
//
// Cost model: capturing charges one SGX instruction per page (an EWB-style
// read-out); cloning and scrubbing charge one per page (an ELDU-style
// restore) plus one for the SECS setup — 17× fewer SGX instructions than
// the EADD + 16×EEXTEND build, and none of the measurement-log hashing.

// snapPage is one captured page: plaintext content plus its EPCM entry.
type snapPage struct {
	vaddr uint64
	perm  Perm
	ptype PageType
	data  [PageSize]byte // plaintext; re-encrypted per clone
}

// Snapshot is a reusable post-EINIT enclave image. It lives in host memory
// (outside the EPC), holding plaintext page contents — acceptable here
// because the snapshot is taken from the *bootstrap* enclave before any
// client secret enters it; both parties can already inspect that code.
type Snapshot struct {
	base      uint64
	size      uint64
	mrEnclave Measurement
	pages     []snapPage // sorted by vaddr
}

// Base returns the snapshotted enclave's base virtual address.
func (s *Snapshot) Base() uint64 { return s.base }

// Size returns the snapshotted enclave's span in bytes.
func (s *Snapshot) Size() uint64 { return s.size }

// Measurement returns the MRENCLAVE every clone will carry.
func (s *Snapshot) Measurement() Measurement { return s.mrEnclave }

// Pages returns the number of captured pages.
func (s *Snapshot) Pages() int { return len(s.pages) }

// PageVaddrs returns the captured page addresses in ascending order; the
// host OS uses it to rebuild page-table mappings for a clone.
func (s *Snapshot) PageVaddrs() []uint64 {
	out := make([]uint64, len(s.pages))
	for i := range s.pages {
		out[i] = s.pages[i].vaddr
	}
	return out
}

// SnapshotEnclave captures an initialized enclave's page image and SECS
// state. The enclave must be fully resident (no pages evicted by demand
// paging) and not locked; it is left untouched. Charges one SGX
// instruction per page.
func (d *Device) SnapshotEnclave(e *Enclave) (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !e.initialized {
		return nil, fmt.Errorf("%w: snapshot requires EINIT", ErrNotInitialized)
	}
	if e.locked {
		return nil, fmt.Errorf("%w: cannot snapshot a locked enclave", ErrEnclaveLocked)
	}
	if len(e.evicted) != 0 {
		return nil, fmt.Errorf("sgx: cannot snapshot enclave %d: %d pages evicted", e.id, len(e.evicted))
	}
	d.chargeLocked(uint64(len(e.pages)))
	s := &Snapshot{
		base:      e.base,
		size:      e.size,
		mrEnclave: e.mrEnclave,
		pages:     make([]snapPage, 0, len(e.pages)),
	}
	for vaddr, slot := range e.pages {
		pg := &d.epc[slot]
		sp := snapPage{vaddr: vaddr, perm: pg.perm, ptype: pg.ptype}
		copy(sp.data[:], d.pageCrypt(slot, e.id, pg.data[:]))
		s.pages = append(s.pages, sp)
	}
	sort.Slice(s.pages, func(i, j int) bool { return s.pages[i].vaddr < s.pages[j].vaddr })
	return s, nil
}

// CloneEnclave restores a snapshot into fresh EPC slots under a new enclave
// identity: the clone is already initialized, carries the snapshot's
// MRENCLAVE, and its pages are re-encrypted under its own (slot, id) IVs.
// On EPC exhaustion every slot allocated so far is returned and the clone
// never existed. Charges one SGX instruction per page plus one for the
// SECS setup.
func (d *Device) CloneEnclave(s *Snapshot) (*Enclave, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.free) < len(s.pages) {
		return nil, fmt.Errorf("%w: clone needs %d pages, %d free", ErrEPCFull, len(s.pages), len(d.free))
	}
	d.chargeLocked(uint64(len(s.pages)) + 1)
	e := &Enclave{
		id:          d.nextID,
		dev:         d,
		base:        s.base,
		size:        s.size,
		mrEnclave:   s.mrEnclave,
		initialized: true,
		pages:       make(map[uint64]int, len(s.pages)),
	}
	d.nextID++
	for i := range s.pages {
		sp := &s.pages[i]
		slot, err := d.allocSlotLocked()
		if err != nil {
			// Unreachable given the free-list check above, but roll back
			// defensively so a bug never leaks slots.
			for _, used := range e.pages {
				d.epc[used] = epcPage{}
				d.free = append(d.free, used)
			}
			return nil, err
		}
		copy(d.epc[slot].data[:], d.pageCrypt(slot, e.id, sp.data[:]))
		d.epc[slot].valid = true
		d.epc[slot].owner = e.id
		d.epc[slot].vaddr = sp.vaddr
		d.epc[slot].perm = sp.perm
		d.epc[slot].ptype = sp.ptype
		d.epc[slot].pending = false
		e.pages[sp.vaddr] = slot
	}
	d.enclaves[e.id] = e
	return e, nil
}

// ScrubEnclave restores a clone to its snapshot state in place: every page's
// content, EPCM permissions and type are reset from the snapshot (keeping
// the EPC slots already allocated), and the growth lock is cleared. The
// measurement is untouched — scrubbing recreates exactly the state a fresh
// clone would have, which is what makes returning a used enclave to a pool
// sound: no bytes a previous session wrote survive. Charges one SGX
// instruction per page.
func (d *Device) ScrubEnclave(e *Enclave, s *Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e.base != s.base || e.size != s.size {
		return fmt.Errorf("%w: enclave span %#x+%#x does not match snapshot %#x+%#x",
			ErrBadAddress, e.base, e.size, s.base, s.size)
	}
	if e.mrEnclave != s.mrEnclave {
		return fmt.Errorf("sgx: scrub measurement mismatch: enclave %x, snapshot %x",
			e.mrEnclave[:8], s.mrEnclave[:8])
	}
	if len(e.pages) != len(s.pages) {
		return fmt.Errorf("sgx: scrub page-count mismatch: enclave has %d, snapshot %d",
			len(e.pages), len(s.pages))
	}
	d.chargeLocked(uint64(len(s.pages)))
	for i := range s.pages {
		sp := &s.pages[i]
		slot, ok := e.pages[sp.vaddr]
		if !ok {
			return fmt.Errorf("%w: scrub: %#x", ErrPageNotMapped, sp.vaddr)
		}
		copy(d.epc[slot].data[:], d.pageCrypt(slot, e.id, sp.data[:]))
		d.epc[slot].perm = sp.perm
		d.epc[slot].ptype = sp.ptype
		d.epc[slot].pending = false
	}
	e.locked = false
	return nil
}
