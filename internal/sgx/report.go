package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// ReportDataSize is the size of the user-data field of a report; EnGarde
// binds the enclave's ephemeral RSA public key to the quote through it
// (paper §2, "Attesting and Provisioning Enclaves").
const ReportDataSize = 64

// Report is the output of EREPORT: a locally-verifiable statement, keyed to
// this device, that an enclave with the given measurement is running here.
type Report struct {
	MREnclave  Measurement
	EnclaveID  EnclaveID
	Version    Version
	ReportData [ReportDataSize]byte
	MAC        [sha256.Size]byte
}

func (r *Report) macInput() []byte {
	buf := make([]byte, 0, len(r.MREnclave)+8+8+len(r.ReportData))
	buf = append(buf, r.MREnclave[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.EnclaveID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Version))
	buf = append(buf, r.ReportData[:]...)
	return buf
}

// reportKey derives the device's report-MAC key.
func (d *Device) reportKey() []byte {
	mac := hmac.New(sha256.New, d.sealKey[:])
	mac.Write([]byte("REPORT-KEY"))
	return mac.Sum(nil)
}

// EReport produces a report over the enclave's measurement with the given
// user data, MACed with the device's report key. Only code on the same
// device (in practice: the quoting enclave) can verify it.
func (d *Device) EReport(e *Enclave, reportData [ReportDataSize]byte) (Report, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if !e.initialized {
		return Report{}, ErrNotInitialized
	}
	r := Report{
		MREnclave:  e.mrEnclave,
		EnclaveID:  e.id,
		Version:    d.version,
		ReportData: reportData,
	}
	mac := hmac.New(sha256.New, d.reportKey())
	mac.Write(r.macInput())
	copy(r.MAC[:], mac.Sum(nil))
	return r, nil
}

// VerifyReport checks a report's MAC against this device's report key —
// the local-attestation step the quoting enclave performs before signing.
func (d *Device) VerifyReport(r Report) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1) // EGETKEY for the report key
	mac := hmac.New(sha256.New, d.reportKey())
	mac.Write(r.macInput())
	if !hmac.Equal(mac.Sum(nil), r.MAC[:]) {
		return fmt.Errorf("sgx: report MAC verification failed")
	}
	return nil
}

// KeyType selects an EGETKEY derivation.
type KeyType int

// Key types.
const (
	// KeySeal derives a sealing key bound to the enclave's measurement.
	KeySeal KeyType = iota + 1
	// KeyProvision derives a provisioning key.
	KeyProvision
)

// EGetKey derives a key bound to the device and the enclave's measurement,
// as real SGX does for sealing. Two enclaves with the same measurement on
// the same device derive the same key; any other combination differs.
func (d *Device) EGetKey(e *Enclave, kt KeyType) ([32]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	var out [32]byte
	if !e.initialized {
		return out, ErrNotInitialized
	}
	mac := hmac.New(sha256.New, d.sealKey[:])
	mac.Write([]byte{byte(kt)})
	mac.Write(e.mrEnclave[:])
	copy(out[:], mac.Sum(nil))
	return out, nil
}

//
// Enclave entry/exit and OpenSGX-style trampolines.
//

// Context is an execution context inside an enclave, created by EEnter.
type Context struct {
	e       *Enclave
	entered bool
}

// EEnter enters the enclave, returning an execution context. The enclave
// must be initialized.
func (d *Device) EEnter(e *Enclave) (*Context, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if !e.initialized {
		return nil, ErrNotInitialized
	}
	if e.lost {
		return nil, fmt.Errorf("%w: enclave %d", ErrEnclaveLost, e.id)
	}
	return &Context{e: e, entered: true}, nil
}

// EExit leaves the enclave.
func (c *Context) EExit() {
	if !c.entered {
		return
	}
	c.e.dev.ChargeSGX(1)
	c.entered = false
}

// Enclave returns the enclave this context executes in.
func (c *Context) Enclave() *Enclave { return c.e }

// HostCall performs an OpenSGX-style trampoline: enclave state is saved,
// execution exits the enclave, fn runs in the untrusted host, and execution
// re-enters. It costs one EEXIT plus one EENTER (2 SGX instructions =
// 20K cycles), which is why EnGarde batches in-enclave malloc to a page at
// a time (paper §4).
func (c *Context) HostCall(fn func() error) error {
	c.e.dev.ChargeSGX(2)
	return fn()
}
