// Package sgx is a software model of the Intel SGX architecture, playing
// the role OpenSGX plays in the EnGarde paper (§4): it provides enclaves
// whose pages live in an encrypted page cache (EPC), the enclave lifecycle
// instructions (ECREATE/EADD/EEXTEND/EINIT/EREMOVE), enclave entry and exit
// (EENTER/EEXIT) with OpenSGX-style trampolines for host calls, local
// reports (EREPORT/EGETKEY) for attestation, and — switchable — the SGX
// version-1 and version-2 permission semantics whose difference the paper
// depends on (EPCM-level page permissions exist only in v2).
//
// EPC pages are stored AES-CTR-encrypted under a hardware key that the
// device never reveals, so tests can verify that plaintext enclave content
// is unobservable from outside the enclave, the property EnGarde's threat
// model builds on.
package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"engarde/internal/cycles"
)

// PageSize is the EPC page granularity.
const PageSize = 4096

// DefaultEPCPages is OpenSGX's default EPC size (2000 pages ≈ 8 MB). The
// paper raised it to 32000 pages (128 MB) to fit client executables plus
// their decoded instruction buffers; see ModifiedEPCPages.
const DefaultEPCPages = 2000

// ModifiedEPCPages is the EPC size after the paper's OpenSGX modification
// (§4 "Modifications to OpenSGX").
const ModifiedEPCPages = 32000

// DefaultHeapPages is OpenSGX's default number of initial heap page frames;
// the paper raises it from 300 to 5000.
const (
	DefaultHeapPages  = 300
	ModifiedHeapPages = 5000
)

// Version selects the SGX instruction-set generation.
type Version int

// SGX instruction-set versions.
const (
	// V1 is the Skylake instruction set: EPC page permissions cannot be
	// changed at the hardware level, so W^X can only be enforced in host
	// page tables (subvertible by the host OS — paper §3, [39]).
	V1 Version = iota + 1
	// V2 adds EAUG/EMODPR/EMODPE: EPCM-level permissions are enforced on
	// every enclave access, which EnGarde requires for security.
	V2
)

func (v Version) String() string {
	switch v {
	case V1:
		return "SGXv1"
	case V2:
		return "SGXv2"
	default:
		return fmt.Sprintf("SGXv(%d)", int(v))
	}
}

// Perm is an EPCM page-permission bitmask.
type Perm uint8

// Page permissions.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// PageType is the EPCM page-type field.
type PageType uint8

// EPC page types.
const (
	PageSECS PageType = iota + 1
	PageTCS
	PageREG
)

// EnclaveID identifies an enclave on a device.
type EnclaveID uint64

// Errors returned by the device.
var (
	ErrEPCFull        = errors.New("sgx: EPC exhausted")
	ErrNotInitialized = errors.New("sgx: enclave not initialized")
	ErrInitialized    = errors.New("sgx: enclave already initialized")
	ErrBadAddress     = errors.New("sgx: address outside enclave range")
	ErrPageMapped     = errors.New("sgx: page already mapped")
	ErrPageNotMapped  = errors.New("sgx: page not mapped")
	ErrPermission     = errors.New("sgx: EPCM permission violation")
	ErrV2Only         = errors.New("sgx: instruction requires SGX version 2")
	ErrEnclaveLocked  = errors.New("sgx: enclave is locked against growth")
	ErrEnclaveLost    = errors.New("sgx: enclave lost (EPC pages reclaimed by host)")
)

// epcPage is one ciphertext page plus its EPCM entry.
type epcPage struct {
	data [PageSize]byte // AES-CTR ciphertext under the hardware key

	valid   bool
	owner   EnclaveID
	vaddr   uint64
	perm    Perm
	ptype   PageType
	pending bool // EAUG'd but not yet EACCEPT'd (v2)
}

// Config configures a Device.
type Config struct {
	// EPCPages is the EPC capacity in pages; DefaultEPCPages if zero.
	EPCPages int
	// Version is the instruction-set generation; V1 if zero.
	Version Version
	// Counter, if non-nil, is charged for every SGX instruction executed
	// (10K cycles each, per the paper's methodology).
	Counter *cycles.Counter
}

// Device models one SGX-capable machine: an EPC, its EPCM, and a hardware
// key hierarchy.
type Device struct {
	mu       sync.Mutex
	version  Version
	epc      []epcPage
	free     []int // free EPC slot indexes
	enclaves map[EnclaveID]*Enclave
	nextID   EnclaveID

	hwKey   [16]byte // hardware-managed memory-encryption key (never exposed)
	sealKey [32]byte // root for EGETKEY derivations

	counter *cycles.Counter
	phase   cycles.Phase
}

// NewDevice creates a device.
func NewDevice(cfg Config) (*Device, error) {
	n := cfg.EPCPages
	if n == 0 {
		n = DefaultEPCPages
	}
	v := cfg.Version
	if v == 0 {
		v = V1
	}
	d := &Device{
		version:  v,
		epc:      make([]epcPage, n),
		free:     make([]int, n),
		enclaves: make(map[EnclaveID]*Enclave),
		nextID:   1,
		counter:  cfg.Counter,
		phase:    cycles.PhaseProvision,
	}
	for i := range d.free {
		d.free[i] = n - 1 - i // pop from the end → ascending allocation
	}
	if _, err := rand.Read(d.hwKey[:]); err != nil {
		return nil, fmt.Errorf("sgx: generating hardware key: %w", err)
	}
	if _, err := rand.Read(d.sealKey[:]); err != nil {
		return nil, fmt.Errorf("sgx: generating seal key: %w", err)
	}
	return d, nil
}

// Version reports the device's instruction-set generation.
func (d *Device) Version() Version { return d.version }

// EPCCapacity returns the EPC size in pages.
func (d *Device) EPCCapacity() int { return len(d.epc) }

// EPCFree returns the number of free EPC pages.
func (d *Device) EPCFree() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.free)
}

// SetPhase directs subsequent SGX-instruction charges at the given
// accounting phase.
func (d *Device) SetPhase(p cycles.Phase) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.phase = p
}

// chargeLocked charges n SGX instructions; callers hold d.mu.
func (d *Device) chargeLocked(n uint64) {
	if d.counter != nil {
		d.counter.Charge(d.phase, cycles.UnitSGXInstr, n)
	}
}

// ChargeSGX charges n SGX-instruction crossings from outside the device
// (used by the runtime's trampoline helpers).
func (d *Device) ChargeSGX(n uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(n)
}

// pageCrypt en/decrypts one page with AES-CTR keyed by the hardware key and
// a per-slot, per-enclave IV. Encryption and decryption are the same
// operation.
func (d *Device) pageCrypt(slot int, owner EnclaveID, in []byte) []byte {
	block, err := aes.NewCipher(d.hwKey[:])
	if err != nil {
		// The key is a fixed 16 bytes; this cannot fail.
		panic(fmt.Sprintf("sgx: aes init: %v", err))
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:], uint64(slot))
	binary.LittleEndian.PutUint64(iv[8:], uint64(owner))
	out := make([]byte, len(in))
	cipher.NewCTR(block, iv[:]).XORKeyStream(out, in)
	return out
}

// RawEPCPage exposes the stored (encrypted) bytes of an EPC slot — the view
// an adversary probing the memory bus would get. Test-and-demo API.
func (d *Device) RawEPCPage(slot int) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if slot < 0 || slot >= len(d.epc) || !d.epc[slot].valid {
		return nil, false
	}
	out := make([]byte, PageSize)
	copy(out, d.epc[slot].data[:])
	return out, true
}

// Enclave returns the enclave with the given ID.
func (d *Device) Enclave(id EnclaveID) (*Enclave, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.enclaves[id]
	return e, ok
}
