package sgx

import (
	"bytes"
	"errors"
	"testing"
)

func TestEvictReloadRoundTrip(t *testing.T) {
	d := newTestDevice(t, V2)
	content := bytes.Repeat([]byte("page-data"), PageSize/9+1)[:PageSize]
	e := buildEnclave(t, d, 0x10000, [][]byte{content, nil})

	before := d.EPCFree()
	ep, err := d.EWB(e, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if d.EPCFree() != before+1 {
		t.Error("EWB did not free the EPC slot")
	}
	// The evicted blob must not leak plaintext.
	if bytes.Contains(ep.Data[:], []byte("page-data")) {
		t.Error("evicted page leaks plaintext")
	}
	// Access while evicted faults.
	if err := e.Read(0x10000, make([]byte, 8)); !errors.Is(err, ErrPageNotMapped) {
		t.Errorf("read of evicted page = %v", err)
	}
	// Reload restores the exact content.
	if err := d.ELDU(e, ep); err != nil {
		t.Fatalf("ELDU: %v", err)
	}
	got := make([]byte, PageSize)
	if err := e.Read(0x10000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("round trip mismatch")
	}
}

func TestEvictTamperDetected(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	ep, err := d.EWB(e, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	ep.Data[100] ^= 1
	if err := d.ELDU(e, ep); !errors.Is(err, ErrEvictBroken) {
		t.Errorf("tampered reload = %v, want ErrEvictBroken", err)
	}
}

func TestEvictRollbackDetected(t *testing.T) {
	// The classic rollback attack: evict, reload, evict again (newer
	// version), then try to reload the FIRST (stale) blob.
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})

	old, err := d.EWB(e, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ELDU(e, old); err != nil {
		t.Fatal(err)
	}
	// Mutate the page, then evict the new state.
	if err := e.Write(0x10000, []byte("new state")); err != nil {
		t.Fatal(err)
	}
	fresh, err := d.EWB(e, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the stale blob must fail.
	if err := d.ELDU(e, old); !errors.Is(err, ErrEvictReplay) {
		t.Errorf("stale reload = %v, want ErrEvictReplay", err)
	}
	// The fresh blob still loads.
	if err := d.ELDU(e, fresh); err != nil {
		t.Fatalf("fresh reload: %v", err)
	}
	got := make([]byte, 9)
	if err := e.Read(0x10000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "new state" {
		t.Errorf("content = %q", got)
	}
}

func TestEvictWrongEnclaveRejected(t *testing.T) {
	d := newTestDevice(t, V2)
	e1 := buildEnclave(t, d, 0x10000, [][]byte{nil})
	e2 := buildEnclave(t, d, 0x40000, [][]byte{nil})
	ep, err := d.EWB(e1, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ELDU(e2, ep); !errors.Is(err, ErrEvictBroken) {
		t.Errorf("cross-enclave reload = %v, want ErrEvictBroken", err)
	}
}

func TestEvictNotEvictedRejected(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil, nil})
	ep, err := d.EWB(e, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ELDU(e, ep); err != nil {
		t.Fatal(err)
	}
	// Reloading again (page is resident, no longer evicted) must fail.
	if err := d.ELDU(e, ep); !errors.Is(err, ErrNotEvicted) {
		t.Errorf("double reload = %v, want ErrNotEvicted", err)
	}
}

func TestPagingRelievesEPCPressure(t *testing.T) {
	// An enclave larger than the EPC can run by paging: evict a cold page
	// to make room, add a new page, reload later.
	d, err := NewDevice(Config{EPCPages: 4, Version: V2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.ECreate(0, 8*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.EAdd(e, uint64(i)*PageSize, PermR|PermW, PageREG, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// EPC full: the fifth EADD fails ...
	if err := d.EAdd(e, 4*PageSize, PermR|PermW, PageREG, nil); !errors.Is(err, ErrEPCFull) {
		t.Fatalf("expected EPC exhaustion, got %v", err)
	}
	// ... so the OS evicts page 0 and retries.
	ep, err := d.EWB(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EAdd(e, 4*PageSize, PermR|PermW, PageREG, []byte{4}); err != nil {
		t.Fatalf("EADD after eviction: %v", err)
	}
	// Touching page 0 requires reloading it; evict page 4 to make room.
	if _, err := d.EWB(e, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := d.ELDU(e, ep); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1)
	if err := e.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("page 0 content = %d", got[0])
	}
}
