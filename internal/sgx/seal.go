package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
)

// Sealed storage: SGX lets an enclave encrypt state under a key derived
// from the device and its own measurement (EGETKEY with the seal-key
// type), so the state can survive outside the enclave — on disk, in host
// memory — but can only be recovered by the same enclave code on the same
// machine (paper §2: "SGX offers various data structures to save enclave
// state in an encrypted fashion").

// ErrSealBroken is returned when sealed data fails authentication — it was
// tampered with, or the unsealing enclave/measurement/device differs.
var ErrSealBroken = errors.New("sgx: sealed data authentication failed")

// Seal encrypts data under the enclave's seal key. The blob can be stored
// anywhere outside the enclave.
func (d *Device) Seal(e *Enclave, data []byte) ([]byte, error) {
	aead, err := d.sealAEAD(e)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sgx: sealing nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, data, nil), nil
}

// Unseal recovers data sealed by an enclave with the same measurement on
// this device.
func (d *Device) Unseal(e *Enclave, blob []byte) ([]byte, error) {
	aead, err := d.sealAEAD(e)
	if err != nil {
		return nil, err
	}
	ns := aead.NonceSize()
	if len(blob) < ns {
		return nil, ErrSealBroken
	}
	plain, err := aead.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return nil, ErrSealBroken
	}
	return plain, nil
}

func (d *Device) sealAEAD(e *Enclave) (cipher.AEAD, error) {
	key, err := d.EGetKey(e, KeySeal)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgx: seal cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sgx: seal GCM: %w", err)
	}
	return aead, nil
}
