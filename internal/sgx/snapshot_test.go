package sgx

import (
	"bytes"
	"errors"
	"testing"
)

// snapPages builds a small distinctive page set for snapshot tests.
func snapPages(n int) [][]byte {
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(0x11 * (i + 1))}, PageSize)
	}
	return pages
}

func TestSnapshotCloneMatchesOriginal(t *testing.T) {
	d := newTestDevice(t, V2)
	pages := snapPages(3)
	e := buildEnclave(t, d, 0x10000, pages)

	snap, err := d.SnapshotEnclave(e)
	if err != nil {
		t.Fatalf("SnapshotEnclave: %v", err)
	}
	if snap.Pages() != len(pages) {
		t.Fatalf("snapshot has %d pages, want %d", snap.Pages(), len(pages))
	}
	if snap.Measurement() != e.Measurement() {
		t.Fatal("snapshot measurement differs from the enclave's")
	}

	clone, err := d.CloneEnclave(snap)
	if err != nil {
		t.Fatalf("CloneEnclave: %v", err)
	}
	if !clone.Initialized() {
		t.Fatal("clone is not initialized")
	}
	if clone.Measurement() != e.Measurement() {
		t.Fatal("clone measurement differs from the original's")
	}
	if clone.ID() == e.ID() {
		t.Fatal("clone shares the original's enclave identity")
	}
	buf := make([]byte, PageSize)
	for i, want := range pages {
		va := uint64(0x10000 + i*PageSize)
		if err := clone.Read(va, buf); err != nil {
			t.Fatalf("clone Read(%#x): %v", va, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("clone page %#x content diverges", va)
		}
		// Distinct identities must yield distinct EPC ciphertext for the
		// same plaintext — no cross-enclave ciphertext sharing.
		origSlot, _ := e.PageSlot(va)
		cloneSlot, _ := clone.PageSlot(va)
		origRaw, _ := d.RawEPCPage(origSlot)
		cloneRaw, _ := d.RawEPCPage(cloneSlot)
		if bytes.Equal(origRaw, cloneRaw) {
			t.Fatalf("page %#x: clone ciphertext identical to original's", va)
		}
	}
	// Snapshotting leaves the original untouched.
	if err := e.Read(0x10000, buf); err != nil || !bytes.Equal(buf, pages[0]) {
		t.Fatalf("original page disturbed by snapshot/clone (err=%v)", err)
	}
}

func TestSnapshotRequiresInitializedUnlocked(t *testing.T) {
	d := newTestDevice(t, V2)
	e, err := d.ECreate(0x10000, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SnapshotEnclave(e); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("snapshot before EINIT = %v, want ErrNotInitialized", err)
	}

	done := buildEnclave(t, d, 0x40000, snapPages(1))
	done.Lock()
	if _, err := d.SnapshotEnclave(done); !errors.Is(err, ErrEnclaveLocked) {
		t.Fatalf("snapshot of locked enclave = %v, want ErrEnclaveLocked", err)
	}
}

func TestCloneEPCExhaustionRollsBack(t *testing.T) {
	d := newTestDevice(t, V2) // 64-page EPC
	e := buildEnclave(t, d, 0x10000, snapPages(40))
	snap, err := d.SnapshotEnclave(e)
	if err != nil {
		t.Fatal(err)
	}
	free := d.EPCFree()
	if _, err := d.CloneEnclave(snap); !errors.Is(err, ErrEPCFull) {
		t.Fatalf("clone into exhausted EPC = %v, want ErrEPCFull", err)
	}
	if got := d.EPCFree(); got != free {
		t.Fatalf("failed clone leaked slots: %d free, was %d", got, free)
	}
	// Destroying the original must make room for a clone of it.
	d.DestroyEnclave(e)
	clone, err := d.CloneEnclave(snap)
	if err != nil {
		t.Fatalf("clone after destroy: %v", err)
	}
	d.DestroyEnclave(clone)
	if got, want := d.EPCFree(), free+40; got != want {
		t.Fatalf("EPC balance after clone+destroy: %d free, want %d", got, want)
	}
}

func TestScrubRestoresSnapshotState(t *testing.T) {
	d := newTestDevice(t, V2)
	pages := snapPages(2)
	e := buildEnclave(t, d, 0x10000, pages)
	snap, err := d.SnapshotEnclave(e)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := d.CloneEnclave(snap)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty the clone the way a session would: overwrite content, restrict
	// permissions, lock against growth.
	dirty := bytes.Repeat([]byte{0xEE}, PageSize)
	if err := clone.Write(0x10000, dirty); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.EModPR(clone, 0x10000, PermR); err != nil {
		t.Fatalf("EModPR: %v", err)
	}
	if err := d.EAccept(clone, 0x10000); err != nil {
		t.Fatalf("EAccept: %v", err)
	}
	clone.Lock()

	if err := d.ScrubEnclave(clone, snap); err != nil {
		t.Fatalf("ScrubEnclave: %v", err)
	}
	if clone.Locked() {
		t.Fatal("scrub left the enclave locked")
	}
	buf := make([]byte, PageSize)
	if err := clone.Read(0x10000, buf); err != nil {
		t.Fatalf("Read after scrub: %v", err)
	}
	if !bytes.Equal(buf, pages[0]) {
		t.Fatal("scrub did not restore snapshot page content")
	}
	if perm, err := clone.PagePerm(0x10000); err != nil || perm != PermR|PermW|PermX {
		t.Fatalf("scrub did not restore EPCM perms: %v %v", perm, err)
	}
	// A scrubbed clone accepts writes again (unlocked, perms restored).
	if err := clone.Write(0x10000, dirty); err != nil {
		t.Fatalf("Write after scrub: %v", err)
	}
}

func TestScrubRejectsMismatchedSnapshot(t *testing.T) {
	d := newTestDevice(t, V2)
	a := buildEnclave(t, d, 0x10000, snapPages(2))
	b := buildEnclave(t, d, 0x40000, snapPages(3))
	snapA, err := d.SnapshotEnclave(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ScrubEnclave(b, snapA); err == nil {
		t.Fatal("scrub accepted a snapshot from a different enclave shape")
	}
}
