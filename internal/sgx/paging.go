package sgx

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// EPC paging: the EPC is a scarce resource (8-128 MB), so SGX lets the OS
// evict enclave pages to ordinary memory with EWB and reload them with
// ELDU/ELDB. Evicted pages stay confidential (encrypted under a paging
// key), integrity-protected (MACed), and rollback-protected (a per-page
// version counter stored in EPC-resident version arrays prevents replaying
// a stale copy). The paper's motivation for raising OpenSGX's EPC limit
// (§4) is exactly the pressure this mechanism exists to relieve.

// Paging errors.
var (
	// ErrEvictBroken is returned when an evicted blob fails MAC
	// verification.
	ErrEvictBroken = errors.New("sgx: evicted page authentication failed")
	// ErrEvictReplay is returned when a stale (rolled-back) evicted page
	// is reloaded.
	ErrEvictReplay = errors.New("sgx: evicted page version mismatch (rollback)")
	// ErrNotEvicted is returned when reloading a page that is not
	// currently evicted.
	ErrNotEvicted = errors.New("sgx: page is not evicted")
)

// EvictedPage is the out-of-EPC representation of an enclave page, safe to
// keep anywhere in untrusted memory.
type EvictedPage struct {
	Enclave EnclaveID
	Vaddr   uint64
	Version uint64
	Nonce   [16]byte
	Data    [PageSize]byte // ciphertext under the device paging key
	Perm    Perm
	PType   PageType
	MAC     [sha256.Size]byte
}

// pagingKey derives the device key that protects evicted pages.
func (d *Device) pagingKey() []byte {
	mac := hmac.New(sha256.New, d.sealKey[:])
	mac.Write([]byte("PAGING-KEY"))
	return mac.Sum(nil)
}

func (d *Device) evictMAC(ep *EvictedPage) [sha256.Size]byte {
	mac := hmac.New(sha256.New, d.pagingKey())
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(ep.Enclave))
	binary.LittleEndian.PutUint64(hdr[8:], ep.Vaddr)
	binary.LittleEndian.PutUint64(hdr[16:], ep.Version)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(ep.Perm))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(ep.PType))
	mac.Write(hdr[:])
	mac.Write(ep.Nonce[:])
	mac.Write(ep.Data[:])
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// evictCrypt en/decrypts page content with the paging key and a fresh
// nonce (XOR keystream derived per nonce; same operation both ways).
func (d *Device) evictCrypt(nonce [16]byte, in []byte) [PageSize]byte {
	var out [PageSize]byte
	key := d.pagingKey()
	var stream []byte
	counter := uint64(0)
	for len(stream) < PageSize {
		mac := hmac.New(sha256.New, key)
		mac.Write(nonce[:])
		var c [8]byte
		binary.LittleEndian.PutUint64(c[:], counter)
		mac.Write(c[:])
		stream = append(stream, mac.Sum(nil)...)
		counter++
	}
	for i := 0; i < PageSize; i++ {
		out[i] = in[i] ^ stream[i]
	}
	return out
}

// EWB evicts one enclave page: its plaintext is re-encrypted under the
// paging key, the EPC slot is freed, and the page's version counter is
// bumped so only the freshest copy can ever be reloaded.
func (d *Device) EWB(e *Enclave, vaddr uint64) (*EvictedPage, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	slot, ok := e.pages[vaddr]
	if !ok {
		return nil, fmt.Errorf("%w: EWB %#x", ErrPageNotMapped, vaddr)
	}
	pg := &d.epc[slot]
	plain := d.pageCrypt(slot, e.id, pg.data[:])

	if e.evicted == nil {
		e.evicted = make(map[uint64]uint64)
		e.evictVer = make(map[uint64]uint64)
	}
	e.evictVer[vaddr]++
	e.evicted[vaddr] = e.evictVer[vaddr]
	ep := &EvictedPage{
		Enclave: e.id,
		Vaddr:   vaddr,
		Version: e.evictVer[vaddr],
		Perm:    pg.perm,
		PType:   pg.ptype,
	}
	if _, err := rand.Read(ep.Nonce[:]); err != nil {
		return nil, fmt.Errorf("sgx: EWB nonce: %w", err)
	}
	ep.Data = d.evictCrypt(ep.Nonce, plain)
	ep.MAC = d.evictMAC(ep)

	delete(e.pages, vaddr)
	d.epc[slot] = epcPage{}
	d.free = append(d.free, slot)
	return ep, nil
}

// ELDU reloads an evicted page into a free EPC slot after verifying its
// MAC and that it is the freshest eviction of that page.
func (d *Device) ELDU(e *Enclave, ep *EvictedPage) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.chargeLocked(1)
	if ep.Enclave != e.id {
		return fmt.Errorf("%w: enclave mismatch", ErrEvictBroken)
	}
	if want := d.evictMAC(ep); !hmac.Equal(want[:], ep.MAC[:]) {
		return ErrEvictBroken
	}
	current, ok := e.evicted[ep.Vaddr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotEvicted, ep.Vaddr)
	}
	if ep.Version != current {
		return fmt.Errorf("%w: blob v%d, current v%d", ErrEvictReplay, ep.Version, current)
	}
	if _, dup := e.pages[ep.Vaddr]; dup {
		return fmt.Errorf("%w: %#x", ErrPageMapped, ep.Vaddr)
	}
	slot, err := d.allocSlotLocked()
	if err != nil {
		return err
	}
	plain := d.evictCrypt(ep.Nonce, ep.Data[:])
	ct := d.pageCrypt(slot, e.id, plain[:])
	copy(d.epc[slot].data[:], ct)
	d.epc[slot].valid = true
	d.epc[slot].owner = e.id
	d.epc[slot].vaddr = ep.Vaddr
	d.epc[slot].perm = ep.Perm
	d.epc[slot].ptype = ep.PType
	e.pages[ep.Vaddr] = slot
	delete(e.evicted, ep.Vaddr)
	return nil
}
