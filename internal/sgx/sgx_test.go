package sgx

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"engarde/internal/cycles"
)

func newTestDevice(t *testing.T, v Version) *Device {
	t.Helper()
	d, err := NewDevice(Config{EPCPages: 64, Version: v})
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d
}

// buildEnclave creates, populates and initializes a small enclave.
func buildEnclave(t *testing.T, d *Device, base uint64, pages [][]byte) *Enclave {
	t.Helper()
	e, err := d.ECreate(base, uint64(len(pages)*PageSize))
	if err != nil {
		t.Fatalf("ECreate: %v", err)
	}
	for i, pg := range pages {
		va := base + uint64(i*PageSize)
		if err := d.EAdd(e, va, PermR|PermW|PermX, PageREG, pg); err != nil {
			t.Fatalf("EAdd(%#x): %v", va, err)
		}
		if err := d.EExtendPage(e, va); err != nil {
			t.Fatalf("EExtendPage(%#x): %v", va, err)
		}
	}
	if err := d.EInit(e); err != nil {
		t.Fatalf("EInit: %v", err)
	}
	return e
}

func TestEnclaveLifecycle(t *testing.T) {
	d := newTestDevice(t, V1)
	content := bytes.Repeat([]byte{0xAB}, PageSize)
	e := buildEnclave(t, d, 0x10000, [][]byte{content})

	if !e.Initialized() {
		t.Fatal("enclave not initialized")
	}
	got := make([]byte, PageSize)
	if err := e.Read(0x10000, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Error("in-enclave read does not return plaintext")
	}
}

func TestEPCContentIsEncrypted(t *testing.T) {
	// The confidentiality property EnGarde builds on: outside the enclave
	// the EPC holds only ciphertext.
	d := newTestDevice(t, V1)
	secret := bytes.Repeat([]byte("SECRET--"), PageSize/8)
	buildEnclave(t, d, 0x10000, [][]byte{secret})

	found := false
	for slot := 0; slot < d.EPCCapacity(); slot++ {
		raw, ok := d.RawEPCPage(slot)
		if !ok {
			continue
		}
		found = true
		if bytes.Contains(raw, []byte("SECRET--")) {
			t.Fatal("plaintext visible in raw EPC")
		}
		if bytes.Equal(raw, secret) {
			t.Fatal("EPC page stored unencrypted")
		}
	}
	if !found {
		t.Fatal("no valid EPC pages found")
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	content := bytes.Repeat([]byte{7}, PageSize)
	build := func() Measurement {
		d := newTestDevice(t, V1)
		e := buildEnclave(t, d, 0x10000, [][]byte{content})
		return e.Measurement()
	}
	if build() != build() {
		t.Error("same build steps should give identical MRENCLAVE across devices")
	}
}

func TestMeasurementSensitivity(t *testing.T) {
	// Property: flipping any byte of the measured content changes
	// MRENCLAVE — the attestation guarantee of §2.
	base := bytes.Repeat([]byte{0x11}, PageSize)
	d1 := newTestDevice(t, V1)
	ref := buildEnclave(t, d1, 0x10000, [][]byte{base}).Measurement()

	f := func(pos uint16, flip byte) bool {
		if flip == 0 {
			return true // no-op flip
		}
		mut := append([]byte(nil), base...)
		mut[int(pos)%PageSize] ^= flip
		d2 := newTestDevice(t, V1)
		got := buildEnclave(t, d2, 0x10000, [][]byte{mut}).Measurement()
		return got != ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasurementCoversLayout(t *testing.T) {
	content := bytes.Repeat([]byte{1}, PageSize)
	d1 := newTestDevice(t, V1)
	m1 := buildEnclave(t, d1, 0x10000, [][]byte{content}).Measurement()
	d2 := newTestDevice(t, V1)
	m2 := buildEnclave(t, d2, 0x20000, [][]byte{content}).Measurement()
	if m1 == m2 {
		t.Error("different base addresses must yield different measurements")
	}
}

func TestEPCExhaustion(t *testing.T) {
	d, err := NewDevice(Config{EPCPages: 4, Version: V1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.ECreate(0, 16*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var adds int
	for i := 0; i < 16; i++ {
		err := d.EAdd(e, uint64(i*PageSize), PermR|PermW, PageREG, nil)
		if err != nil {
			if !errors.Is(err, ErrEPCFull) {
				t.Fatalf("EAdd: %v", err)
			}
			break
		}
		adds++
	}
	if adds != 4 {
		t.Errorf("added %d pages before exhaustion, want 4", adds)
	}
	// ERemove frees capacity.
	if err := d.ERemove(e, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.EAdd(e, 5*PageSize, PermR, PageREG, nil); err != nil {
		t.Errorf("EAdd after ERemove: %v", err)
	}
}

func TestPaperEPCSizes(t *testing.T) {
	if DefaultEPCPages != 2000 || ModifiedEPCPages != 32000 {
		t.Fatal("EPC constants drifted from the paper")
	}
	// 32000 pages × 4 KB = 128,000 KB, the "128 MB" of §4.
	if ModifiedEPCPages*PageSize/1024 != 128_000 {
		t.Errorf("modified EPC = %d KB, want 128000 KB", ModifiedEPCPages*PageSize/1024)
	}
}

func TestLockPreventsGrowth(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{make([]byte, PageSize), nil})
	e.Lock()
	err := d.EAug(e, 0x10000+PageSize, PermR|PermW)
	if !errors.Is(err, ErrEnclaveLocked) {
		t.Errorf("EAUG on locked enclave = %v, want ErrEnclaveLocked", err)
	}
}

func TestV1ForbidsPostInitEAdd(t *testing.T) {
	d := newTestDevice(t, V1)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil, nil})
	err := d.EAdd(e, 0x10000+2*PageSize, PermR, PageREG, nil)
	if err == nil {
		t.Fatal("SGXv1 must reject EADD after EINIT")
	}
}

func TestV2DynamicPages(t *testing.T) {
	d := newTestDevice(t, V2)
	e, err := d.ECreate(0x10000, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EAdd(e, 0x10000, PermR|PermW, PageREG, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.EInit(e); err != nil {
		t.Fatal(err)
	}
	if err := d.EAug(e, 0x11000, PermR|PermW); err != nil {
		t.Fatalf("EAUG: %v", err)
	}
	// Pending page unusable until EACCEPT.
	if err := e.Write(0x11000, []byte{1}); err == nil {
		t.Error("write to pending page should fail")
	}
	if err := d.EAccept(e, 0x11000); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(0x11000, []byte{1}); err != nil {
		t.Errorf("write after EACCEPT: %v", err)
	}
}

func TestEModPRPermissionSemantics(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})

	// Restrict RWX → RX: allowed.
	if err := d.EModPR(e, 0x10000, PermR|PermX); err != nil {
		t.Fatalf("EMODPR restrict: %v", err)
	}
	if p, _ := e.PagePerm(0x10000); p != PermR|PermX {
		t.Errorf("perm = %s", p)
	}
	// Writing through the enclave now fails (EPCM enforced on v2).
	if err := e.Write(0x10000, []byte{1}); !errors.Is(err, ErrPermission) {
		t.Errorf("write to RX page = %v, want ErrPermission", err)
	}
	// EMODPR cannot add permissions.
	if err := d.EModPR(e, 0x10000, PermR|PermW|PermX); !errors.Is(err, ErrPermission) {
		t.Errorf("EMODPR widen = %v, want ErrPermission", err)
	}
	// EMODPE can.
	if err := d.EModPE(e, 0x10000, PermW); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(0x10000, []byte{1}); err != nil {
		t.Errorf("write after EMODPE: %v", err)
	}
}

func TestV1HasNoEPCMPermissionEnforcement(t *testing.T) {
	// On SGXv1 the EPCM records permissions but the hardware does not
	// enforce them on access — the gap AsyncShock exploits and the reason
	// EnGarde requires v2 (paper §3).
	d := newTestDevice(t, V1)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	if err := d.EModPR(e, 0x10000, PermR); !errors.Is(err, ErrV2Only) {
		t.Fatalf("EMODPR on v1 = %v, want ErrV2Only", err)
	}
	// Even a nominally read-only page accepts writes on v1.
	e2, _ := d.ECreate(0x40000, PageSize)
	if err := d.EAdd(e2, 0x40000, PermR, PageREG, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.EInit(e2); err != nil {
		t.Fatal(err)
	}
	if err := e2.Write(0x40000, []byte{1}); err != nil {
		t.Errorf("v1 write ignoring EPCM perm = %v, want success", err)
	}
}

func TestReportVerify(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	var rd [ReportDataSize]byte
	copy(rd[:], "rsa-pubkey-digest")
	rep, err := d.EReport(e, rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyReport(rep); err != nil {
		t.Errorf("VerifyReport: %v", err)
	}
	// Tampering with any field breaks the MAC.
	bad := rep
	bad.ReportData[0] ^= 1
	if err := d.VerifyReport(bad); err == nil {
		t.Error("tampered report data must fail verification")
	}
	bad = rep
	bad.MREnclave[5] ^= 1
	if err := d.VerifyReport(bad); err == nil {
		t.Error("tampered measurement must fail verification")
	}
	// A different device cannot verify it.
	d2 := newTestDevice(t, V2)
	if err := d2.VerifyReport(rep); err == nil {
		t.Error("cross-device report must fail verification")
	}
}

func TestEGetKeyBinding(t *testing.T) {
	d := newTestDevice(t, V1)
	content := bytes.Repeat([]byte{3}, PageSize)
	e1 := buildEnclave(t, d, 0x10000, [][]byte{content})
	e2 := buildEnclave(t, d, 0x10000, [][]byte{content})
	k1, err := d.EGetKey(e1, KeySeal)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := d.EGetKey(e2, KeySeal)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("same measurement on same device must derive the same seal key")
	}
	kp, _ := d.EGetKey(e1, KeyProvision)
	if kp == k1 {
		t.Error("different key types must derive different keys")
	}
}

func TestSGXInstructionAccounting(t *testing.T) {
	ctr := cycles.NewCounter(cycles.DefaultModel())
	d, err := NewDevice(Config{EPCPages: 16, Version: V1, Counter: ctr})
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.ECreate(0, PageSize) // 1 SGX instruction
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EAdd(e, 0, PermR|PermW|PermX, PageREG, nil); err != nil { // 1
		t.Fatal(err)
	}
	if err := d.EExtendPage(e, 0); err != nil { // 16
		t.Fatal(err)
	}
	if err := d.EInit(e); err != nil { // 1
		t.Fatal(err)
	}
	want := uint64(1+1+16+1) * 10_000
	if got := ctr.Cycles(cycles.PhaseProvision); got != want {
		t.Errorf("provisioning cycles = %d, want %d", got, want)
	}

	ctx, err := d.EEnter(e) // 1
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.HostCall(func() error { return nil }); err != nil { // 2
		t.Fatal(err)
	}
	ctx.EExit() // 1
	want += 4 * 10_000
	if got := ctr.Cycles(cycles.PhaseProvision); got != want {
		t.Errorf("after enter/hostcall/exit: %d, want %d", got, want)
	}
}

func TestEEnterRequiresInit(t *testing.T) {
	d := newTestDevice(t, V1)
	e, _ := d.ECreate(0, PageSize)
	if _, err := d.EEnter(e); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("EEnter before EINIT = %v", err)
	}
	if _, err := d.EReport(e, [ReportDataSize]byte{}); !errors.Is(err, ErrNotInitialized) {
		t.Errorf("EReport before EINIT = %v", err)
	}
}

func TestAccessBounds(t *testing.T) {
	d := newTestDevice(t, V1)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil})
	if err := e.Read(0x0f000, make([]byte, 8)); !errors.Is(err, ErrBadAddress) {
		t.Errorf("below-range read = %v", err)
	}
	if err := e.Read(0x10000+PageSize-4, make([]byte, 8)); !errors.Is(err, ErrBadAddress) {
		t.Errorf("straddling read = %v", err)
	}
}

func TestCrossPageReadWrite(t *testing.T) {
	d := newTestDevice(t, V1)
	e := buildEnclave(t, d, 0x10000, [][]byte{nil, nil})
	data := make([]byte, 1000)
	r := rand.New(rand.NewSource(42))
	r.Read(data)
	addr := uint64(0x10000 + PageSize - 500) // straddles the page boundary
	if err := e.Write(addr, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := e.Read(addr, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page round trip mismatch")
	}
}

// TestQuickEnclaveMemoryRoundTrip: writes followed by reads return the same
// bytes at arbitrary in-range offsets and lengths.
func TestQuickEnclaveMemoryRoundTrip(t *testing.T) {
	d := newTestDevice(t, V2)
	e := buildEnclave(t, d, 0, [][]byte{nil, nil, nil, nil})
	span := uint64(4 * PageSize)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if uint64(len(data)) > span {
			data = data[:span]
		}
		addr := uint64(off) % (span - uint64(len(data)))
		if err := e.Write(addr, data); err != nil {
			t.Errorf("Write(%#x, %d): %v", addr, len(data), err)
			return false
		}
		got := make([]byte, len(data))
		if err := e.Read(addr, got); err != nil {
			t.Errorf("Read(%#x): %v", addr, err)
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDestroyEnclaveReclaims(t *testing.T) {
	d, _ := NewDevice(Config{EPCPages: 8, Version: V1})
	e := buildEnclave(t, d, 0, [][]byte{nil, nil, nil})
	free := d.EPCFree()
	d.DestroyEnclave(e)
	if got := d.EPCFree(); got != free+3 {
		t.Errorf("free pages = %d, want %d", got, free+3)
	}
	if _, ok := d.Enclave(e.ID()); ok {
		t.Error("enclave still registered after destroy")
	}
}
