package sgx

import (
	"bytes"
	"errors"
	"testing"
)

func TestReclaimEnclave(t *testing.T) {
	d := newTestDevice(t, V2)
	content := bytes.Repeat([]byte{0xCD}, PageSize)
	e := buildEnclave(t, d, 0x10000, [][]byte{content, content})

	freeBefore := d.EPCFree()
	if e.Lost() {
		t.Fatal("fresh enclave reports lost")
	}
	if n := d.ReclaimEnclave(e); n != 2 {
		t.Fatalf("ReclaimEnclave freed %d pages, want 2", n)
	}
	if !e.Lost() {
		t.Fatal("reclaimed enclave does not report lost")
	}
	if got := d.EPCFree(); got != freeBefore+2 {
		t.Fatalf("EPCFree after reclaim = %d, want %d", got, freeBefore+2)
	}

	// Every path back into the enclave must fail with ErrEnclaveLost.
	buf := make([]byte, 8)
	if err := e.Read(0x10000, buf); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("Read after reclaim: %v, want ErrEnclaveLost", err)
	}
	if err := e.Write(0x10000, buf); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("Write after reclaim: %v, want ErrEnclaveLost", err)
	}
	if _, err := d.EEnter(e); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("EEnter after reclaim: %v, want ErrEnclaveLost", err)
	}
	if err := d.EAug(e, 0x10000, PermR|PermW); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("EAug after reclaim: %v, want ErrEnclaveLost", err)
	}

	// Reclaim is idempotent and Destroy still balances the ledger.
	if n := d.ReclaimEnclave(e); n != 0 {
		t.Fatalf("second ReclaimEnclave freed %d pages, want 0", n)
	}
	d.DestroyEnclave(e)
	if got := d.EPCFree(); got != d.EPCCapacity() {
		t.Fatalf("EPCFree after destroy = %d, want %d", got, d.EPCCapacity())
	}
}

func TestSimulateEPCPressureVictimOrder(t *testing.T) {
	d := newTestDevice(t, V2)
	page := bytes.Repeat([]byte{0x11}, PageSize)
	old := buildEnclave(t, d, 0x10000, [][]byte{page, page})
	mid := buildEnclave(t, d, 0x20000, [][]byte{page, page})
	young := buildEnclave(t, d, 0x30000, [][]byte{page, page})

	// Free pool already covers the demand: nothing is lost.
	if victims := d.SimulateEPCPressure(4); len(victims) != 0 {
		t.Fatalf("pressure within free pool reclaimed %d enclaves", len(victims))
	}

	// Demand beyond the free pool reclaims newest-first, leaving the
	// oldest (quoting-enclave-shaped) resident untouched.
	need := d.EPCFree() + 3
	victims := d.SimulateEPCPressure(need)
	if len(victims) != 2 {
		t.Fatalf("got %d victims, want 2", len(victims))
	}
	if victims[0] != young || victims[1] != mid {
		t.Fatalf("victim order = [%d %d], want newest-first [%d %d]",
			victims[0].ID(), victims[1].ID(), young.ID(), mid.ID())
	}
	if old.Lost() {
		t.Fatal("oldest enclave was reclaimed before younger candidates")
	}
	if !young.Lost() || !mid.Lost() {
		t.Fatal("victims not marked lost")
	}
}
