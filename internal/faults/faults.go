// Package faults is the deterministic fault-injection layer behind the
// gateway's resilience tests: seeded wrappers that make a connection or a
// filesystem misbehave in all the ways production infrastructure does —
// latency spikes, partial reads and writes, truncated streams, bit-flips,
// stalls, and disk I/O errors — at configurable probabilities or scripted
// trigger points.
//
// Everything is driven by a Schedule: the same seed replays the same fault
// sequence (given the same operation order), so a failure found by the
// chaos soak or the fuzzer is reproducible from its schedule alone.
//
// The wrappers never violate interface contracts — a partial read is a
// legal short read, a truncation is a real close — so anything they break
// in the system under test is a real bug, not an artifact.
package faults

import (
	"errors"
	"log/slog"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error returned by operations failed on purpose.
var ErrInjected = errors.New("faults: injected fault")

// Op identifies the operation class an event applies to.
type Op int

const (
	OpRead Op = iota
	OpWrite
)

// String names the operation class for logs and failure reports.
func (o Op) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Action is one kind of injected fault.
type Action int

const (
	// ActNone leaves the operation untouched.
	ActNone Action = iota
	// ActLatency sleeps Schedule.Latency before the operation.
	ActLatency
	// ActPartial serves at most one byte of the operation (a legal short
	// read/write that forces the peer to loop).
	ActPartial
	// ActBitFlip flips one bit of the transferred data.
	ActBitFlip
	// ActStall sleeps Schedule.Stall before the operation — long enough to
	// trip idle deadlines.
	ActStall
	// ActTruncate closes the underlying resource mid-stream.
	ActTruncate
	// ActError fails the operation with ErrInjected.
	ActError
)

// String names an action for logs and failure reports.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActLatency:
		return "latency"
	case ActPartial:
		return "partial"
	case ActBitFlip:
		return "bit-flip"
	case ActStall:
		return "stall"
	case ActTruncate:
		return "truncate"
	case ActError:
		return "error"
	}
	return "unknown"
}

// Trigger scripts one fault at an exact operation index, independent of
// the probabilistic rolls: "on the Nth read, truncate".
type Trigger struct {
	Op Op
	// N is the 0-based index among operations of that class.
	N int
	// Do is the fault to fire.
	Do Action
}

// Schedule configures a deterministic fault source. The zero value injects
// nothing. Probabilities are per-operation in [0,1] and are rolled in a
// fixed order (stall, error, truncate, partial, bit-flip, latency), so one
// operation suffers at most one fault; scripted Triggers take precedence
// over all rolls.
type Schedule struct {
	// Seed fixes the random stream. Schedules differing only in Seed
	// produce different but individually reproducible fault sequences.
	Seed int64

	LatencyProb float64
	// Latency is the ActLatency sleep; 0 means 1ms.
	Latency time.Duration

	PartialProb float64
	BitFlipProb float64

	StallProb float64
	// Stall is the ActStall sleep; 0 means 50ms.
	Stall time.Duration

	TruncateProb float64
	ErrorProb    float64

	Triggers []Trigger

	// Logger, when set, records every injected fault (action, operation
	// class, operation index) — the same structured handler the serving
	// layer logs through, so a chaos run's faults interleave with the
	// sessions they hit.
	Logger *slog.Logger
	// TraceID, when set, tags this schedule's fault records with the
	// session trace the faulted stream belongs to.
	TraceID string
}

// injector is the shared decision engine: a seeded stream of fault
// decisions over a counted operation sequence. Safe for concurrent use;
// decisions are serialized, the faults themselves are applied outside the
// lock.
type injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	sched  Schedule
	counts [2]int // per-Op operation index
}

func newInjector(s Schedule) *injector {
	if s.Latency == 0 {
		s.Latency = time.Millisecond
	}
	if s.Stall == 0 {
		s.Stall = 50 * time.Millisecond
	}
	return &injector{rng: rand.New(rand.NewSource(s.Seed)), sched: s}
}

// decide picks the fault for the next operation of class op, logging any
// non-trivial decision outside the lock.
func (in *injector) decide(op Op) Action {
	in.mu.Lock()
	n := in.counts[op]
	in.counts[op]++
	act := in.pickLocked(op, n)
	in.mu.Unlock()
	if act != ActNone && in.sched.Logger != nil {
		in.sched.Logger.Warn("faults: injecting",
			"action", act.String(), "op", op.String(), "n", n,
			"trace", in.sched.TraceID)
	}
	return act
}

func (in *injector) pickLocked(op Op, n int) Action {
	for _, t := range in.sched.Triggers {
		if t.Op == op && t.N == n {
			return t.Do
		}
	}
	s := &in.sched
	for _, roll := range []struct {
		p  float64
		do Action
	}{
		{s.StallProb, ActStall},
		{s.ErrorProb, ActError},
		{s.TruncateProb, ActTruncate},
		{s.PartialProb, ActPartial},
		{s.BitFlipProb, ActBitFlip},
		{s.LatencyProb, ActLatency},
	} {
		if roll.p > 0 && in.rng.Float64() < roll.p {
			return roll.do
		}
	}
	return ActNone
}

// flipBit returns the index of the bit to flip in a buffer of n bytes.
func (in *injector) flipBit(n int) (byteIdx int, bit uint) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n), uint(in.rng.Intn(8))
}
