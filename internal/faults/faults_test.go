package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestInjectorDeterminism: the same schedule replays the same fault
// sequence; a different seed produces a different one.
func TestInjectorDeterminism(t *testing.T) {
	sched := Schedule{Seed: 42, StallProb: 0.1, ErrorProb: 0.1, PartialProb: 0.2, BitFlipProb: 0.1}
	run := func(s Schedule) []Action {
		in := newInjector(s)
		out := make([]Action, 500)
		for i := range out {
			out[i] = in.decide(OpRead)
		}
		return out
	}
	a, b := run(sched), run(sched)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	other := sched
	other.Seed = 43
	c := run(other)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("500 decisions identical under different seeds")
	}
}

// TestTriggersFireExactly: scripted triggers hit the exact operation index
// regardless of probabilities.
func TestTriggersFireExactly(t *testing.T) {
	in := newInjector(Schedule{
		Triggers: []Trigger{
			{Op: OpRead, N: 2, Do: ActTruncate},
			{Op: OpWrite, N: 0, Do: ActError},
		},
	})
	want := []Action{ActNone, ActNone, ActTruncate, ActNone}
	for i, w := range want {
		if got := in.decide(OpRead); got != w {
			t.Fatalf("read %d: %v, want %v", i, got, w)
		}
	}
	if got := in.decide(OpWrite); got != ActError {
		t.Fatalf("write 0: %v, want %v", got, ActError)
	}
	if got := in.decide(OpWrite); got != ActNone {
		t.Fatalf("write 1: %v, want %v", got, ActNone)
	}
}

// pipePair builds a chaos-wrapped client over net.Pipe with an echo-free
// raw server end.
func pipePair(s Schedule) (*ChaosConn, net.Conn) {
	cli, srv := net.Pipe()
	return WrapConn(cli, s), srv
}

func TestChaosConnBitFlipCorruptsExactlyOneBit(t *testing.T) {
	chaos, srv := pipePair(Schedule{Seed: 7, Triggers: []Trigger{{Op: OpWrite, N: 0, Do: ActBitFlip}}})
	defer chaos.Close()
	defer srv.Close()

	payload := bytes.Repeat([]byte{0xA5}, 64)
	sent := append([]byte(nil), payload...)
	go func() {
		if _, err := chaos.Write(payload); err != nil {
			t.Errorf("chaos write: %v", err)
		}
	}()
	got := make([]byte, 64)
	if _, err := io.ReadFull(srv, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, sent) {
		t.Error("bit-flip mutated the caller's buffer")
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^payload[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("received data differs in %d bits, want exactly 1", diff)
	}
	if n := chaos.Injected()[ActBitFlip]; n != 1 {
		t.Fatalf("Injected[bit-flip] = %d, want 1", n)
	}
}

func TestChaosConnTruncateClosesUnderlying(t *testing.T) {
	chaos, srv := pipePair(Schedule{Triggers: []Trigger{{Op: OpRead, N: 0, Do: ActTruncate}}})
	defer srv.Close()
	if _, err := chaos.Read(make([]byte, 8)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read error = %v, want ErrUnexpectedEOF", err)
	}
	// The wrapped conn is genuinely closed: the peer sees EOF.
	if _, err := srv.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after truncation")
	}
}

func TestChaosConnPartialRead(t *testing.T) {
	chaos, srv := pipePair(Schedule{Triggers: []Trigger{{Op: OpRead, N: 0, Do: ActPartial}}})
	defer chaos.Close()
	defer srv.Close()
	go srv.Write([]byte("abcdef"))
	buf := make([]byte, 6)
	n, err := chaos.Read(buf)
	if err != nil || n != 1 || buf[0] != 'a' {
		t.Fatalf("partial read = %d, %v (%q), want 1 byte", n, err, buf[:n])
	}
}

func TestChaosConnInjectedError(t *testing.T) {
	chaos, srv := pipePair(Schedule{Triggers: []Trigger{{Op: OpWrite, N: 0, Do: ActError}}})
	defer chaos.Close()
	defer srv.Close()
	if _, err := chaos.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("injected write error = %v, want ErrInjected", err)
	}
}

func TestChaosConnStallDelays(t *testing.T) {
	chaos, srv := pipePair(Schedule{
		Stall:    30 * time.Millisecond,
		Triggers: []Trigger{{Op: OpRead, N: 0, Do: ActStall}},
	})
	defer chaos.Close()
	defer srv.Close()
	go srv.Write([]byte("y"))
	start := time.Now()
	if _, err := chaos.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stalled read returned after %v, want >= ~30ms", d)
	}
}

func TestChaosFSScriptedFailures(t *testing.T) {
	fs := WrapFS(nil, Schedule{})
	path := filepath.Join(t.TempDir(), "f")

	fs.FailNextOpens(1)
	if _, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("open error = %v, want ErrInjected", err)
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	fs.FailNextWrites(2)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d error = %v, want ErrInjected", i, err)
		}
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after faults drained: %v", err)
	}

	fs.FailNextRenames(1)
	if err := fs.Rename(path, path+"2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename error = %v, want ErrInjected", err)
	}
	if err := fs.Rename(path, path+"2"); err != nil {
		t.Fatalf("rename after faults drained: %v", err)
	}
	if got := fs.Faults.Load(); got != 4 {
		t.Fatalf("Faults = %d, want 4", got)
	}
}
