package faults

import (
	"io"
	"net"
	"sync/atomic"
	"time"
)

// ChaosConn wraps a net.Conn with schedule-driven faults on every Read and
// Write. Deadlines and addresses pass through to the wrapped conn, so the
// system under test sees an ordinary — if deeply unlucky — peer.
type ChaosConn struct {
	net.Conn
	in *injector

	// Injected counts faults actually applied, by Action.
	injected [ActError + 1]atomic.Uint64
	closed   atomic.Bool
}

// WrapConn applies a fault schedule to conn.
func WrapConn(conn net.Conn, s Schedule) *ChaosConn {
	return &ChaosConn{Conn: conn, in: newInjector(s)}
}

// Injected reports how many faults of each kind have been applied.
func (c *ChaosConn) Injected() map[Action]uint64 {
	out := make(map[Action]uint64)
	for a := ActLatency; a <= ActError; a++ {
		if n := c.injected[a].Load(); n > 0 {
			out[a] = n
		}
	}
	return out
}

func (c *ChaosConn) note(a Action) { c.injected[a].Add(1) }

func (c *ChaosConn) Read(b []byte) (int, error) {
	switch a := c.in.decide(OpRead); a {
	case ActStall:
		c.note(a)
		time.Sleep(c.in.sched.Stall)
	case ActLatency:
		c.note(a)
		time.Sleep(c.in.sched.Latency)
	case ActError:
		c.note(a)
		return 0, ErrInjected
	case ActTruncate:
		c.note(a)
		c.closed.Store(true)
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	case ActPartial:
		if len(b) > 1 {
			c.note(a)
			b = b[:1]
		}
	case ActBitFlip:
		n, err := c.Conn.Read(b)
		if n > 0 {
			c.note(a)
			i, bit := c.in.flipBit(n)
			b[i] ^= 1 << bit
		}
		return n, err
	}
	return c.Conn.Read(b)
}

func (c *ChaosConn) Write(b []byte) (int, error) {
	switch a := c.in.decide(OpWrite); a {
	case ActStall:
		c.note(a)
		time.Sleep(c.in.sched.Stall)
	case ActLatency:
		c.note(a)
		time.Sleep(c.in.sched.Latency)
	case ActError:
		c.note(a)
		return 0, ErrInjected
	case ActTruncate:
		c.note(a)
		c.closed.Store(true)
		c.Conn.Close()
		return 0, net.ErrClosed
	case ActPartial:
		if len(b) > 1 {
			c.note(a)
			n, err := c.Conn.Write(b[:1])
			if err != nil {
				return n, err
			}
			// A short Write must return an error by contract; report how far
			// we got and let the caller's framing fail or retry.
			return n, io.ErrShortWrite
		}
	case ActBitFlip:
		if len(b) > 0 {
			c.note(a)
			dup := make([]byte, len(b))
			copy(dup, b)
			i, bit := c.in.flipBit(len(dup))
			dup[i] ^= 1 << bit
			return c.Conn.Write(dup)
		}
	}
	return c.Conn.Write(b)
}

// Close is idempotent-safe around injected truncations.
func (c *ChaosConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}
