package faults

import (
	"os"
	"sync/atomic"

	"engarde/internal/policy/memo"
)

// ChaosFS is a memo.FS that injects disk faults: scripted ("fail the next
// N writes") or probabilistic, both deterministic under the schedule's
// seed. It drives the function-result cache's disk-tier circuit breaker in
// tests without needing a genuinely failing disk.
type ChaosFS struct {
	// Under is the real filesystem; nil means memo.OSFS.
	Under memo.FS
	in    *injector

	failWrites  atomic.Int64
	failOpens   atomic.Int64
	failRenames atomic.Int64
	failSyncs   atomic.Int64

	// Faults counts injected failures across all operations.
	Faults atomic.Uint64
}

// WrapFS builds a ChaosFS over under (nil = the real filesystem). Only
// Schedule.ErrorProb and Seed are consulted: disk faults are errors, not
// latency.
func WrapFS(under memo.FS, s Schedule) *ChaosFS {
	if under == nil {
		under = memo.OSFS
	}
	return &ChaosFS{Under: under, in: newInjector(s)}
}

// FailNextWrites arms the next n File.Write calls (across all open files)
// to fail with ErrInjected.
func (fs *ChaosFS) FailNextWrites(n int) { fs.failWrites.Store(int64(n)) }

// FailNextOpens arms the next n OpenFile calls to fail.
func (fs *ChaosFS) FailNextOpens(n int) { fs.failOpens.Store(int64(n)) }

// FailNextRenames arms the next n Rename calls to fail.
func (fs *ChaosFS) FailNextRenames(n int) { fs.failRenames.Store(int64(n)) }

// FailNextSyncs arms the next n File.Sync calls to fail.
func (fs *ChaosFS) FailNextSyncs(n int) { fs.failSyncs.Store(int64(n)) }

// take consumes one scripted failure from ctr if armed.
func (fs *ChaosFS) take(ctr *atomic.Int64) bool {
	for {
		n := ctr.Load()
		if n <= 0 {
			return false
		}
		if ctr.CompareAndSwap(n, n-1) {
			fs.Faults.Add(1)
			return true
		}
	}
}

// roll applies the probabilistic error schedule to one write-side op.
func (fs *ChaosFS) roll() bool {
	if fs.in.sched.ErrorProb <= 0 {
		return false
	}
	if fs.in.decide(OpWrite) == ActError {
		fs.Faults.Add(1)
		return true
	}
	return false
}

func (fs *ChaosFS) OpenFile(name string, flag int, perm os.FileMode) (memo.File, error) {
	if fs.take(&fs.failOpens) {
		return nil, ErrInjected
	}
	f, err := fs.Under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &chaosFile{File: f, fs: fs}, nil
}

func (fs *ChaosFS) Rename(oldpath, newpath string) error {
	if fs.take(&fs.failRenames) {
		return ErrInjected
	}
	return fs.Under.Rename(oldpath, newpath)
}

func (fs *ChaosFS) Remove(name string) error { return fs.Under.Remove(name) }

// chaosFile interposes on the write-side calls of one open file.
type chaosFile struct {
	memo.File
	fs *ChaosFS
}

func (f *chaosFile) Write(b []byte) (int, error) {
	if f.fs.take(&f.fs.failWrites) || f.fs.roll() {
		return 0, ErrInjected
	}
	return f.File.Write(b)
}

func (f *chaosFile) Sync() error {
	if f.fs.take(&f.fs.failSyncs) {
		return ErrInjected
	}
	return f.File.Sync()
}
