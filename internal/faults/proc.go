package faults

// Process-level faults: where conn.go makes one stream misbehave,
// ChaosListener makes a whole backend misbehave — crash (listener gone,
// every accepted connection reset), lose just its accept socket, or wedge
// (alive at the TCP layer but making no progress). These are the triggers
// behind the fleet chaos soak: a router and its clients must survive any
// of them with, at worst, an availability cost.

import (
	"net"
	"sync"
)

// ChaosListener wraps a net.Listener and tracks every accepted connection
// so tests can kill or wedge the listening process as a unit. The wrapped
// listener behaves identically until a trigger fires.
type ChaosListener struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[*procConn]struct{}
	wedged chan struct{} // non-nil while wedged; closed by Unwedge/Kill
	killed bool
}

// WrapListener puts ln under chaos control.
func WrapListener(ln net.Listener) *ChaosListener {
	return &ChaosListener{ln: ln, conns: make(map[*procConn]struct{})}
}

// Accept accepts from the wrapped listener and registers the connection
// for later triggers.
func (l *ChaosListener) Accept() (net.Conn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	c := &procConn{Conn: conn, l: l, done: make(chan struct{})}
	l.mu.Lock()
	if l.killed {
		l.mu.Unlock()
		c.hardClose()
		return nil, net.ErrClosed
	}
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	return c, nil
}

// Close closes the accept socket; accepted connections are untouched.
func (l *ChaosListener) Close() error { return l.ln.Close() }

// Addr reports the wrapped listener's address.
func (l *ChaosListener) Addr() net.Addr { return l.ln.Addr() }

// Conns reports how many accepted connections are currently open.
func (l *ChaosListener) Conns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

// Kill emulates a process crash: the accept socket closes and every
// accepted connection is reset (SO_LINGER 0, so TCP peers see RST, not an
// orderly FIN — exactly what a SIGKILLed process leaves behind). A killed
// listener stays dead: late Accept races return net.ErrClosed.
func (l *ChaosListener) Kill() {
	l.mu.Lock()
	l.killed = true
	if l.wedged != nil { // a dead process is not wedged
		close(l.wedged)
		l.wedged = nil
	}
	conns := make([]*procConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.ln.Close()
	for _, c := range conns {
		c.hardClose()
	}
}

// KillListener closes only the accept socket: established sessions keep
// running, new arrivals get connection refused — a backend that stopped
// accepting without dying.
func (l *ChaosListener) KillListener() { l.ln.Close() }

// Wedge blocks every accepted connection's Reads and Writes until Unwedge:
// the process is alive — probes connect, TCP keeps the sessions up — but
// nothing makes progress. Closing a wedged connection unblocks it with
// net.ErrClosed, so idle-deadline enforcement still works.
func (l *ChaosListener) Wedge() {
	l.mu.Lock()
	if l.wedged == nil && !l.killed {
		l.wedged = make(chan struct{})
	}
	l.mu.Unlock()
}

// Unwedge releases every operation blocked by Wedge.
func (l *ChaosListener) Unwedge() {
	l.mu.Lock()
	if l.wedged != nil {
		close(l.wedged)
		l.wedged = nil
	}
	l.mu.Unlock()
}

// procConn is one accepted connection under chaos control.
type procConn struct {
	net.Conn
	l    *ChaosListener
	once sync.Once
	done chan struct{}
}

// gate blocks while the listener is wedged; a close (graceful or injected)
// unblocks it.
func (c *procConn) gate() error {
	for {
		c.l.mu.Lock()
		w := c.l.wedged
		c.l.mu.Unlock()
		if w == nil {
			return nil
		}
		select {
		case <-w:
		case <-c.done:
			return net.ErrClosed
		}
	}
}

func (c *procConn) Read(b []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(b)
}

func (c *procConn) Write(b []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Write(b)
}

func (c *procConn) Close() error {
	err := net.ErrClosed
	c.once.Do(func() {
		close(c.done)
		c.detach()
		err = c.Conn.Close()
	})
	return err
}

// hardClose resets the connection the way a crashed process would.
func (c *procConn) hardClose() {
	c.once.Do(func() {
		close(c.done)
		c.detach()
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		c.Conn.Close()
	})
}

func (c *procConn) detach() {
	c.l.mu.Lock()
	delete(c.l.conns, c)
	c.l.mu.Unlock()
}
