package faults

import (
	"net"
	"testing"
	"time"
)

// chaosEchoPair starts an echo server behind a ChaosListener and returns
// the listener plus one established client connection.
func chaosEchoPair(t *testing.T) (*ChaosListener, net.Conn) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := WrapListener(raw)
	go func() {
		for {
			conn, err := cl.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 64)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	conn, err := net.Dial("tcp", cl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close(); cl.Close() })
	return cl, conn
}

func echo(t *testing.T, conn net.Conn, msg string) error {
	t.Helper()
	if _, err := conn.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err := conn.Read(buf)
	return err
}

// TestChaosListenerKill: Kill resets established connections and refuses
// new ones — the whole process surface dies at once.
func TestChaosListenerKill(t *testing.T) {
	cl, conn := chaosEchoPair(t)
	if err := echo(t, conn, "alive"); err != nil {
		t.Fatalf("echo before kill: %v", err)
	}

	cl.Kill()
	deadline := time.Now().Add(2 * time.Second)
	for echo(t, conn, "dead") == nil {
		if time.Now().After(deadline) {
			t.Fatal("connection survived Kill")
		}
	}
	if _, err := net.DialTimeout("tcp", cl.Addr().String(), time.Second); err == nil {
		t.Error("killed listener still accepts connections")
	}
	if n := cl.Conns(); n != 0 {
		t.Errorf("Conns() after Kill = %d, want 0", n)
	}
}

// TestChaosListenerWedge: a wedged backend stays connected but makes no
// progress until Unwedge; afterwards the same session completes.
func TestChaosListenerWedge(t *testing.T) {
	cl, conn := chaosEchoPair(t)
	if err := echo(t, conn, "warmup"); err != nil {
		t.Fatalf("echo before wedge: %v", err)
	}

	cl.Wedge()
	done := make(chan error, 1)
	go func() { done <- echo(t, conn, "wedged?") }()
	select {
	case err := <-done:
		t.Fatalf("echo completed during wedge (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	cl.Unwedge()
	if err := <-done; err != nil {
		t.Fatalf("echo after unwedge: %v", err)
	}
}

// TestChaosListenerKillListenerKeepsSessions: losing only the accept
// socket must not disturb established sessions.
func TestChaosListenerKillListenerKeepsSessions(t *testing.T) {
	cl, conn := chaosEchoPair(t)
	cl.KillListener()
	if _, err := net.DialTimeout("tcp", cl.Addr().String(), time.Second); err == nil {
		t.Error("dead listener still accepts connections")
	}
	if err := echo(t, conn, "still-here"); err != nil {
		t.Fatalf("established session died with the listener: %v", err)
	}
}
