package interp

import (
	"encoding/binary"
	"errors"
	"testing"

	"engarde/internal/x86"
)

// flatMem is an unchecked flat memory for unit tests.
type flatMem struct {
	base uint64
	data []byte
	// noExec marks a page (by index from base) as non-executable, to test
	// fetch faulting.
	noExec map[uint64]bool
}

var errPerm = errors.New("flatmem: permission")

func (m *flatMem) at(addr uint64, n int) ([]byte, error) {
	off := addr - m.base
	if off+uint64(n) > uint64(len(m.data)) {
		return nil, errors.New("flatmem: out of range")
	}
	return m.data[off : off+uint64(n)], nil
}

func (m *flatMem) Fetch(addr uint64, b []byte) error {
	if m.noExec[(addr-m.base)/4096] {
		return errPerm
	}
	src, err := m.at(addr, len(b))
	if err != nil {
		return err
	}
	copy(b, src)
	return nil
}

func (m *flatMem) Read(addr uint64, b []byte) error {
	src, err := m.at(addr, len(b))
	if err != nil {
		return err
	}
	copy(b, src)
	return nil
}

func (m *flatMem) Write(addr uint64, b []byte) error {
	dst, err := m.at(addr, len(b))
	if err != nil {
		return err
	}
	copy(dst, b)
	return nil
}

// assemble builds code with the x86 assembler; fails on unresolved fixups.
func assemble(t *testing.T, build func(a *x86.Assembler)) []byte {
	t.Helper()
	var a x86.Assembler
	build(&a)
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(fixups) != 0 {
		t.Fatalf("unresolved fixups: %v", fixups)
	}
	return code
}

// run executes code at base 0x1000 with a stack at the top of a 64 KiB
// arena and returns the CPU.
func run(t *testing.T, code []byte, maxSteps uint64) (*CPU, StopReason) {
	t.Helper()
	mem := &flatMem{base: 0x1000, data: make([]byte, 64*1024)}
	copy(mem.data, code)
	cpu := New(mem, 0x1000, 0x1000+60*1024)
	reason, err := cpu.Run(maxSteps)
	if err != nil {
		t.Fatalf("Run: %v (RIP %#x, steps %d)", err, cpu.RIP, cpu.Steps)
	}
	return cpu, reason
}

func TestBasicArithmetic(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegImm32(x86.RegAX, 10)
		a.MovRegImm32(x86.RegBX, 32)
		a.AddRegReg(x86.RegAX, x86.RegBX)  // rax = 42
		a.SubRegImm8(x86.RegBX, 2)         // rbx = 30
		a.ImulRegReg(x86.RegAX, x86.RegBX) // rax = 1260
		a.Ud2()
	})
	cpu, reason := run(t, code, 100)
	if reason != StopTrap {
		t.Fatalf("reason = %v", reason)
	}
	if cpu.Regs[x86.RegAX] != 1260 {
		t.Errorf("rax = %d, want 1260", cpu.Regs[x86.RegAX])
	}
	if cpu.Regs[x86.RegBX] != 30 {
		t.Errorf("rbx = %d, want 30", cpu.Regs[x86.RegBX])
	}
}

func TestMov64And32ZeroExtension(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegImm64(x86.RegAX, -1) // rax = 0xFFFF...
		a.MovRegReg32(x86.RegCX, x86.RegAX)
		a.Ud2()
	})
	cpu, _ := run(t, code, 10)
	if cpu.Regs[x86.RegCX] != 0xFFFF_FFFF {
		t.Errorf("32-bit mov must zero-extend: rcx = %#x", cpu.Regs[x86.RegCX])
	}
}

func TestStackOps(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegImm32(x86.RegAX, 7)
		a.PushReg(x86.RegAX)
		a.MovRegImm32(x86.RegAX, 9)
		a.PopReg(x86.RegDX)
		a.Ud2()
	})
	cpu, _ := run(t, code, 10)
	if cpu.Regs[x86.RegDX] != 7 {
		t.Errorf("rdx = %d, want 7", cpu.Regs[x86.RegDX])
	}
}

func TestCallRet(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.CallSym("fn")
		a.Ud2()
		a.Label("fn")
		a.MovRegImm32(x86.RegAX, 99)
		a.Ret()
	})
	cpu, reason := run(t, code, 20)
	if reason != StopTrap || cpu.Regs[x86.RegAX] != 99 {
		t.Errorf("reason=%v rax=%d", reason, cpu.Regs[x86.RegAX])
	}
}

func TestIndirectCallThroughRegister(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.LeaRIP(x86.RegCX, "fn")
		a.CallReg(x86.RegCX)
		a.Ud2()
		a.Label("fn")
		a.MovRegImm32(x86.RegAX, 123)
		a.Ret()
	})
	cpu, _ := run(t, code, 20)
	if cpu.Regs[x86.RegAX] != 123 {
		t.Errorf("rax = %d", cpu.Regs[x86.RegAX])
	}
}

func TestConditionalBranches(t *testing.T) {
	// if (5 < 7) rax = 1 else rax = 2
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegImm32(x86.RegBX, 5)
		a.CmpRegImm8(x86.RegBX, 7)
		a.JccLabel(x86.CondL, "less")
		a.MovRegImm32(x86.RegAX, 2)
		a.JmpLabel("end")
		a.Label("less")
		a.MovRegImm32(x86.RegAX, 1)
		a.Label("end")
		a.Ud2()
	})
	cpu, _ := run(t, code, 20)
	if cpu.Regs[x86.RegAX] != 1 {
		t.Errorf("rax = %d, want 1 (signed less)", cpu.Regs[x86.RegAX])
	}
}

func TestAllConditionCodes(t *testing.T) {
	// For a handful of (a, b) pairs, each Jcc must agree with the
	// mathematical predicate after cmp a, b.
	type pair struct{ a, b int32 }
	pairs := []pair{{5, 7}, {7, 5}, {5, 5}, {-3, 2}, {2, -3}, {-3, -3}, {0, 0}}
	for _, p := range pairs {
		preds := map[x86.Cond]bool{
			x86.CondE:  p.a == p.b,
			x86.CondNE: p.a != p.b,
			x86.CondL:  p.a < p.b,
			x86.CondGE: p.a >= p.b,
			x86.CondLE: p.a <= p.b,
			x86.CondG:  p.a > p.b,
			x86.CondB:  uint32(p.a) < uint32(p.b),
			x86.CondAE: uint32(p.a) >= uint32(p.b),
			x86.CondBE: uint32(p.a) <= uint32(p.b),
			x86.CondA:  uint32(p.a) > uint32(p.b),
			x86.CondS:  p.a-p.b < 0,
			x86.CondNS: p.a-p.b >= 0,
		}
		for cond, want := range preds {
			code := assemble(t, func(a *x86.Assembler) {
				a.MovRegImm32(x86.RegBX, p.a)
				a.MovRegImm32(x86.RegCX, p.b)
				// 64-bit cmp of sign-extended 32-bit values keeps the
				// signed relations intact.
				a.MovRegImm64(x86.RegBX, int64(p.a))
				a.MovRegImm64(x86.RegCX, int64(p.b))
				a.CmpRegReg(x86.RegBX, x86.RegCX)
				a.JccLabel(cond, "taken")
				a.MovRegImm32(x86.RegAX, 0)
				a.Ud2()
				a.Label("taken")
				a.MovRegImm32(x86.RegAX, 1)
				a.Ud2()
			})
			cpu, _ := run(t, code, 20)
			got := cpu.Regs[x86.RegAX] == 1
			if got != want {
				t.Errorf("cmp(%d,%d) j%v = %v, want %v", p.a, p.b, cond, got, want)
			}
		}
	}
}

func TestMemoryOperands(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.SubRegImm8(x86.RegSP, 0x20)
		a.MovRegImm32(x86.RegAX, 0x1234)
		a.MovMemReg(x86.Mem{Base: x86.RegSP, Index: x86.RegNone, Disp: 8}, x86.RegAX)
		a.MovRegMem(x86.RegDX, x86.Mem{Base: x86.RegSP, Index: x86.RegNone, Disp: 8})
		a.AddRegImm8(x86.RegSP, 0x20)
		a.Ud2()
	})
	cpu, _ := run(t, code, 20)
	if cpu.Regs[x86.RegDX] != 0x1234 {
		t.Errorf("rdx = %#x", cpu.Regs[x86.RegDX])
	}
}

func TestFSSegmentAccess(t *testing.T) {
	mem := &flatMem{base: 0x1000, data: make([]byte, 64*1024)}
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegFS(x86.RegAX, 0x28)
		a.Ud2()
	})
	copy(mem.data, code)
	cpu := New(mem, 0x1000, 0x1000+60*1024)
	cpu.FSBase = 0x1000 + 32*1024
	// Plant a canary value at fs:0x28.
	canary := []byte{0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}
	copy(mem.data[32*1024+0x28:], canary)
	if _, err := cpu.Run(10); err != nil {
		t.Fatal(err)
	}
	want := binary.LittleEndian.Uint64(canary)
	if cpu.Regs[x86.RegAX] != want {
		t.Errorf("canary load = %#x, want %#x", cpu.Regs[x86.RegAX], want)
	}
}

func TestShifts(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegImm32(x86.RegAX, 3)
		a.ShlRegImm8(x86.RegAX, 4) // 48
		a.MovRegImm32(x86.RegBX, 0x100)
		a.ShrRegImm8(x86.RegBX, 4) // 16
		a.Ud2()
	})
	cpu, _ := run(t, code, 10)
	if cpu.Regs[x86.RegAX] != 48 || cpu.Regs[x86.RegBX] != 16 {
		t.Errorf("rax=%d rbx=%d", cpu.Regs[x86.RegAX], cpu.Regs[x86.RegBX])
	}
}

func TestIFCCGuardSemantics(t *testing.T) {
	// The full IFCC dispatch: a jump table of two slots, a pointer to
	// slot 1, and the guard sequence; execution must land in fn1.
	code := assemble(t, func(a *x86.Assembler) {
		a.LeaRIP(x86.RegCX, "slot1")
		a.LeaRIP(x86.RegAX, "table")
		a.SubRegReg32(x86.RegCX, x86.RegAX)
		a.AndRegImm32(x86.RegCX, 8) // 2 slots → mask = size-8 = 8
		a.AddRegReg(x86.RegCX, x86.RegAX)
		a.CallReg(x86.RegCX)
		a.Ud2()
		a.Label("fn0")
		a.MovRegImm32(x86.RegDX, 100)
		a.Ret()
		a.Label("fn1")
		a.MovRegImm32(x86.RegDX, 200)
		a.Ret()
		// Table must be 16-aligned for the mask to be exact; pad.
		a.Nop(16 - a.Len()%16)
		a.Label("table")
		a.JmpSym("fn0")
		a.NopModRM()
		a.Label("slot1")
		a.JmpSym("fn1")
		a.NopModRM()
	})
	// Align the code base so the table lands 16-aligned in memory space:
	// base 0x1000 is 16-aligned and Len-relative padding handles the rest.
	cpu, reason := run(t, code, 50)
	if reason != StopTrap {
		t.Fatalf("reason = %v", reason)
	}
	if cpu.Regs[x86.RegDX] != 200 {
		t.Errorf("rdx = %d, want 200 (dispatch through slot 1)", cpu.Regs[x86.RegDX])
	}
}

func TestBreakpoint(t *testing.T) {
	var secondInst int
	code := assemble(t, func(a *x86.Assembler) {
		a.MovRegImm32(x86.RegAX, 1)
		secondInst = a.Len()
		a.MovRegImm32(x86.RegAX, 2)
		a.Ud2()
	})
	mem := &flatMem{base: 0x1000, data: make([]byte, 4096*4)}
	copy(mem.data, code)
	cpu := New(mem, 0x1000, 0x1000+3*4096)
	bp := 0x1000 + uint64(secondInst)
	cpu.Breakpoints = map[uint64]bool{bp: true}
	reason, err := cpu.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if reason != StopBreakpoint || cpu.RIP != bp {
		t.Errorf("reason=%v rip=%#x want %#x", reason, cpu.RIP, bp)
	}
}

func TestMaxSteps(t *testing.T) {
	code := assemble(t, func(a *x86.Assembler) {
		a.Label("loop")
		a.Nop(1)
		a.JmpLabel("loop")
	})
	_, reason := run(t, code, 50)
	if reason != StopMaxSteps {
		t.Errorf("reason = %v", reason)
	}
}

func TestFetchPermissionFault(t *testing.T) {
	mem := &flatMem{base: 0x1000, data: make([]byte, 4*4096), noExec: map[uint64]bool{1: true}}
	// jmp to the non-executable page.
	code := assemble(t, func(a *x86.Assembler) {
		a.JmpSym("target")
		a.Label("target")
	})
	_ = code
	var a x86.Assembler
	a.Raw(0xE9) // jmp rel32 to 0x2000
	rel := int32(0x2000 - (0x1000 + 5))
	a.Raw(byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24))
	jmp, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	copy(mem.data, jmp)
	cpu := New(mem, 0x1000, 0x1000+3*4096)
	reason, err := cpu.Run(10)
	if err == nil || reason == StopTrap {
		t.Errorf("expected fetch fault, got reason=%v err=%v", reason, err)
	}
}

func TestUnsupportedInstruction(t *testing.T) {
	var a x86.Assembler
	a.Syscall()
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mem := &flatMem{base: 0x1000, data: make([]byte, 4096)}
	copy(mem.data, code)
	cpu := New(mem, 0x1000, 0x1800)
	if _, err := cpu.Run(5); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Run = %v, want ErrUnsupported", err)
	}
}
