// Package interp is a small x86-64 interpreter that executes provisioned
// client code inside the emulated enclave. Every instruction fetch goes
// through the host page tables AND the EPCM (via the Memory interface), so
// execution observes exactly the protections EnGarde installed: fetching
// from a data page faults, writing a code page faults, and the
// instrumentation the policies verified statically — stack canaries and
// IFCC jump-table dispatch — actually runs.
//
// The interpreter covers the instruction subset the synthetic toolchain
// emits (the integer core of x86-64: mov/lea/arith/logic/shift, push/pop,
// direct and indirect call/jmp/jcc with full condition codes, ret, nop,
// ud2), which is also the subset any policy-compliant binary in this
// reproduction consists of. It is an extension beyond the paper's
// prototype, which stopped at static inspection.
package interp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"engarde/internal/x86"
)

// Memory is the interpreter's view of enclave memory. Implementations
// must enforce permissions: Fetch requires execute, Read requires read,
// Write requires write.
type Memory interface {
	Fetch(addr uint64, b []byte) error
	Read(addr uint64, b []byte) error
	Write(addr uint64, b []byte) error
}

// StopReason says why Run returned.
type StopReason int

// Stop reasons.
const (
	// StopTrap means the program executed ud2 or int3 (normal termination
	// for generated programs, whose _start traps after exit returns).
	StopTrap StopReason = iota + 1
	// StopMaxSteps means the step budget ran out.
	StopMaxSteps
	// StopBreakpoint means RIP reached a registered breakpoint.
	StopBreakpoint
	// StopFault means a memory access or decode fault occurred; the
	// accompanying error has details.
	StopFault
)

func (r StopReason) String() string {
	switch r {
	case StopTrap:
		return "trap"
	case StopMaxSteps:
		return "max-steps"
	case StopBreakpoint:
		return "breakpoint"
	case StopFault:
		return "fault"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// ErrUnsupported is returned when the program uses an instruction outside
// the interpreter's subset.
var ErrUnsupported = errors.New("interp: unsupported instruction")

// flags is the subset of RFLAGS the generated code can observe.
type flags struct {
	cf, zf, sf, of, pf bool
}

// CPU is one execution context.
type CPU struct {
	// Regs holds the 16 general-purpose registers, indexed by x86.Reg.
	Regs [16]uint64
	// RIP is the instruction pointer.
	RIP uint64
	// FSBase is the %fs segment base (thread-local storage; the stack
	// canary lives at FSBase+0x28).
	FSBase uint64

	// Steps counts executed instructions.
	Steps uint64
	// Breakpoints stops execution when RIP reaches a key.
	Breakpoints map[uint64]bool
	// CFICheck, when set, is consulted on every indirect control transfer
	// with the computed target; returning false aborts execution with
	// ErrCFIViolation. This is the paper's §1 sketch of "an extension of
	// EnGarde that instruments client code to enforce policies at
	// runtime" — here enforced by the execution substrate itself.
	CFICheck func(target uint64) bool

	mem Memory
	fl  flags
}

// ErrCFIViolation is returned when CFICheck rejects an indirect transfer
// target.
var ErrCFIViolation = errors.New("interp: control-flow integrity violation")

// New creates a CPU with the given entry point and stack pointer.
func New(mem Memory, entry, stackTop uint64) *CPU {
	c := &CPU{mem: mem, RIP: entry}
	c.Regs[x86.RegSP] = stackTop
	return c
}

// Run executes until a stop condition; at most maxSteps instructions.
func (c *CPU) Run(maxSteps uint64) (StopReason, error) {
	for i := uint64(0); i < maxSteps; i++ {
		if c.Breakpoints[c.RIP] {
			return StopBreakpoint, nil
		}
		stop, err := c.Step()
		if err != nil {
			return StopFault, err
		}
		if stop {
			return StopTrap, nil
		}
	}
	return StopMaxSteps, nil
}

// Step executes one instruction. It returns true when the program trapped
// (ud2/int3).
func (c *CPU) Step() (bool, error) {
	var window [15]byte
	n := len(window)
	if err := c.mem.Fetch(c.RIP, window[:]); err != nil {
		// Retry shorter fetches near a region boundary: instructions are
		// never longer than the space to the next page EnGarde mapped.
		ok := false
		for n = 14; n > 0; n-- {
			if err2 := c.mem.Fetch(c.RIP, window[:n]); err2 == nil {
				ok = true
				break
			}
		}
		if !ok {
			return false, fmt.Errorf("interp: fetch at %#x: %w", c.RIP, err)
		}
	}
	in, err := x86.Decode(window[:n], c.RIP)
	if err != nil {
		return false, fmt.Errorf("interp: decode at %#x: %w", c.RIP, err)
	}
	c.Steps++
	next := c.RIP + uint64(in.Len)

	switch in.Op {
	case x86.OpNop:
		// nothing
	case x86.OpUd2, x86.OpInt3, x86.OpHlt:
		c.RIP = next
		return true, nil

	case x86.OpMov:
		v, err := c.readOperand(&in, in.Args[1])
		if err != nil {
			return false, err
		}
		if err := c.writeOperand(&in, in.Args[0], v); err != nil {
			return false, err
		}
	case x86.OpMovsxd:
		v, err := c.readOperand(&in, in.Args[1])
		if err != nil {
			return false, err
		}
		if err := c.writeOperand(&in, in.Args[0], uint64(int64(int32(v)))); err != nil {
			return false, err
		}
	case x86.OpLea:
		addr, err := c.effectiveAddr(&in, in.Args[1])
		if err != nil {
			return false, err
		}
		if err := c.writeOperand(&in, in.Args[0], addr); err != nil {
			return false, err
		}

	case x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr, x86.OpXor, x86.OpCmp, x86.OpTest:
		if err := c.arith(&in); err != nil {
			return false, err
		}
	case x86.OpImul:
		a, err := c.readOperand(&in, in.Args[0])
		if err != nil {
			return false, err
		}
		b, err := c.readOperand(&in, in.Args[1])
		if err != nil {
			return false, err
		}
		if err := c.writeOperand(&in, in.Args[0], a*b); err != nil {
			return false, err
		}
	case x86.OpShl, x86.OpShr, x86.OpSar:
		if err := c.shift(&in); err != nil {
			return false, err
		}

	case x86.OpPush:
		v, err := c.readOperand(&in, in.Args[0])
		if err != nil {
			return false, err
		}
		if err := c.push(v); err != nil {
			return false, err
		}
	case x86.OpPop:
		v, err := c.pop()
		if err != nil {
			return false, err
		}
		if err := c.writeOperand(&in, in.Args[0], v); err != nil {
			return false, err
		}

	case x86.OpCall:
		tgt, ok := in.BranchTarget()
		if !ok {
			return false, fmt.Errorf("%w: call without target at %#x", ErrUnsupported, in.Addr)
		}
		if err := c.push(next); err != nil {
			return false, err
		}
		c.RIP = tgt
		return false, nil
	case x86.OpCallInd:
		tgt, err := c.readOperand(&in, in.Args[0])
		if err != nil {
			return false, err
		}
		if c.CFICheck != nil && !c.CFICheck(tgt) {
			return false, fmt.Errorf("%w: indirect call to %#x at %#x", ErrCFIViolation, tgt, in.Addr)
		}
		if err := c.push(next); err != nil {
			return false, err
		}
		c.RIP = tgt
		return false, nil
	case x86.OpRet:
		tgt, err := c.pop()
		if err != nil {
			return false, err
		}
		c.RIP = tgt
		return false, nil
	case x86.OpJmp:
		tgt, ok := in.BranchTarget()
		if !ok {
			return false, fmt.Errorf("%w: jmp without target at %#x", ErrUnsupported, in.Addr)
		}
		c.RIP = tgt
		return false, nil
	case x86.OpJmpInd:
		tgt, err := c.readOperand(&in, in.Args[0])
		if err != nil {
			return false, err
		}
		if c.CFICheck != nil && !c.CFICheck(tgt) {
			return false, fmt.Errorf("%w: indirect jump to %#x at %#x", ErrCFIViolation, tgt, in.Addr)
		}
		c.RIP = tgt
		return false, nil
	case x86.OpJcc:
		if c.cond(in.Cond) {
			tgt, _ := in.BranchTarget()
			c.RIP = tgt
			return false, nil
		}

	default:
		return false, fmt.Errorf("%w: %s at %#x", ErrUnsupported, in.String(), in.Addr)
	}

	c.RIP = next
	return false, nil
}

//
// Operand access.
//

func widthMask(w uint8) uint64 {
	switch w {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	case 4:
		return 0xFFFF_FFFF
	default:
		return ^uint64(0)
	}
}

func (c *CPU) effectiveAddr(in *x86.Inst, o x86.Operand) (uint64, error) {
	if o.Kind != x86.KindMem {
		return 0, fmt.Errorf("%w: effective address of non-memory operand", ErrUnsupported)
	}
	m := o.Mem
	var addr uint64
	switch {
	case m.Base == x86.RegRIP:
		addr = in.Addr + uint64(in.Len) + uint64(m.Disp)
	case m.Base != x86.RegNone:
		addr = c.Regs[m.Base] + uint64(m.Disp)
	default:
		addr = uint64(m.Disp)
	}
	if m.Index != x86.RegNone {
		addr += c.Regs[m.Index] * uint64(m.Scale)
	}
	if m.Seg == x86.SegFS {
		addr += c.FSBase
	}
	return addr, nil
}

func (c *CPU) readOperand(in *x86.Inst, o x86.Operand) (uint64, error) {
	switch o.Kind {
	case x86.KindImm:
		return uint64(o.Imm), nil
	case x86.KindReg:
		if o.High8 {
			return (c.Regs[o.Reg-4] >> 8) & 0xFF, nil
		}
		return c.Regs[o.Reg] & widthMask(o.Width), nil
	case x86.KindMem:
		addr, err := c.effectiveAddr(in, o)
		if err != nil {
			return 0, err
		}
		w := int(o.Width)
		if w == 0 {
			w = 8
		}
		var buf [8]byte
		if err := c.mem.Read(addr, buf[:w]); err != nil {
			return 0, fmt.Errorf("interp: read %d bytes at %#x: %w", w, addr, err)
		}
		return binary.LittleEndian.Uint64(buf[:]) & widthMask(o.Width), nil
	default:
		return 0, fmt.Errorf("%w: read of empty operand", ErrUnsupported)
	}
}

func (c *CPU) writeOperand(in *x86.Inst, o x86.Operand, v uint64) error {
	switch o.Kind {
	case x86.KindReg:
		if o.High8 {
			c.Regs[o.Reg-4] = c.Regs[o.Reg-4]&^uint64(0xFF00) | (v&0xFF)<<8
			return nil
		}
		switch o.Width {
		case 1:
			c.Regs[o.Reg] = c.Regs[o.Reg]&^uint64(0xFF) | v&0xFF
		case 2:
			c.Regs[o.Reg] = c.Regs[o.Reg]&^uint64(0xFFFF) | v&0xFFFF
		case 4:
			// 32-bit writes zero-extend — the semantics IFCC's
			// sub %eax, %ecx guard step depends on.
			c.Regs[o.Reg] = v & 0xFFFF_FFFF
		default:
			c.Regs[o.Reg] = v
		}
		return nil
	case x86.KindMem:
		addr, err := c.effectiveAddr(in, o)
		if err != nil {
			return err
		}
		w := int(o.Width)
		if w == 0 {
			w = 8
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		if err := c.mem.Write(addr, buf[:w]); err != nil {
			return fmt.Errorf("interp: write %d bytes at %#x: %w", w, addr, err)
		}
		return nil
	default:
		return fmt.Errorf("%w: write to non-writable operand", ErrUnsupported)
	}
}

//
// ALU.
//

// setFlagsResult updates ZF/SF/PF from a result at the given width.
func (c *CPU) setFlagsResult(v uint64, w uint8) {
	m := widthMask(w)
	v &= m
	c.fl.zf = v == 0
	signBit := uint64(1) << (8*uint64(widthBytes(w)) - 1)
	c.fl.sf = v&signBit != 0
	// PF covers the low byte only.
	b := byte(v)
	ones := 0
	for i := 0; i < 8; i++ {
		if b&(1<<i) != 0 {
			ones++
		}
	}
	c.fl.pf = ones%2 == 0
}

func widthBytes(w uint8) int {
	if w == 0 {
		return 8
	}
	return int(w)
}

func (c *CPU) arith(in *x86.Inst) error {
	dst, src := in.Args[0], in.Args[1]
	a, err := c.readOperand(in, dst)
	if err != nil {
		return err
	}
	b, err := c.readOperand(in, src)
	if err != nil {
		return err
	}
	w := dst.Width
	if w == 0 {
		w = 8
	}
	m := widthMask(w)
	a &= m
	bv := b & m
	var res uint64
	signBit := uint64(1) << (8*uint64(widthBytes(w)) - 1)

	switch in.Op {
	case x86.OpAdd:
		res = (a + bv) & m
		c.fl.cf = res < a
		c.fl.of = (a^bv)&signBit == 0 && (a^res)&signBit != 0
	case x86.OpSub, x86.OpCmp:
		res = (a - bv) & m
		c.fl.cf = a < bv
		c.fl.of = (a^bv)&signBit != 0 && (a^res)&signBit != 0
	case x86.OpAnd, x86.OpTest:
		res = a & bv
		c.fl.cf, c.fl.of = false, false
	case x86.OpOr:
		res = (a | bv) & m
		c.fl.cf, c.fl.of = false, false
	case x86.OpXor:
		res = (a ^ bv) & m
		c.fl.cf, c.fl.of = false, false
	}
	c.setFlagsResult(res, w)
	if in.Op == x86.OpCmp || in.Op == x86.OpTest {
		return nil
	}
	return c.writeOperand(in, dst, res)
}

func (c *CPU) shift(in *x86.Inst) error {
	dst := in.Args[0]
	a, err := c.readOperand(in, dst)
	if err != nil {
		return err
	}
	amt, err := c.readOperand(in, in.Args[1])
	if err != nil {
		return err
	}
	w := dst.Width
	if w == 0 {
		w = 8
	}
	bits := uint64(8 * widthBytes(w))
	amt &= bits - 1
	var res uint64
	switch in.Op {
	case x86.OpShl:
		res = a << amt
	case x86.OpShr:
		res = (a & widthMask(w)) >> amt
	case x86.OpSar:
		switch widthBytes(w) {
		case 4:
			res = uint64(uint32(int32(uint32(a)) >> amt))
		default:
			res = uint64(int64(a) >> amt)
		}
	}
	res &= widthMask(w)
	if amt != 0 {
		c.setFlagsResult(res, w)
	}
	return c.writeOperand(in, dst, res)
}

//
// Stack and conditions.
//

func (c *CPU) push(v uint64) error {
	c.Regs[x86.RegSP] -= 8
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if err := c.mem.Write(c.Regs[x86.RegSP], buf[:]); err != nil {
		return fmt.Errorf("interp: push at %#x: %w", c.Regs[x86.RegSP], err)
	}
	return nil
}

func (c *CPU) pop() (uint64, error) {
	var buf [8]byte
	if err := c.mem.Read(c.Regs[x86.RegSP], buf[:]); err != nil {
		return 0, fmt.Errorf("interp: pop at %#x: %w", c.Regs[x86.RegSP], err)
	}
	c.Regs[x86.RegSP] += 8
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// cond evaluates a condition code against the flags.
func (c *CPU) cond(cc x86.Cond) bool {
	f := c.fl
	switch cc {
	case x86.CondO:
		return f.of
	case x86.CondNO:
		return !f.of
	case x86.CondB:
		return f.cf
	case x86.CondAE:
		return !f.cf
	case x86.CondE:
		return f.zf
	case x86.CondNE:
		return !f.zf
	case x86.CondBE:
		return f.cf || f.zf
	case x86.CondA:
		return !f.cf && !f.zf
	case x86.CondS:
		return f.sf
	case x86.CondNS:
		return !f.sf
	case x86.CondP:
		return f.pf
	case x86.CondNP:
		return !f.pf
	case x86.CondL:
		return f.sf != f.of
	case x86.CondGE:
		return f.sf == f.of
	case x86.CondLE:
		return f.zf || f.sf != f.of
	case x86.CondG:
		return !f.zf && f.sf == f.of
	default:
		return false
	}
}
