package core

import (
	"crypto/sha256"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"

	"engarde/internal/faults"
	"engarde/internal/policy"
	"engarde/internal/policy/memo"
	"engarde/internal/policy/stackprot"
	"engarde/internal/secchan"
	"engarde/internal/toolchain"
)

// provisionOver runs one full receive-and-provision over an in-memory pipe:
// the client session streams image in blockSize frames while the enclave
// receives on either the buffered sequential path (ProvisionStream) or the
// streaming pipeline (RecvImageStreaming + ProvisionStaged).
func provisionOver(t *testing.T, streaming bool, image []byte, pols *policy.Set, dw, pw, blockSize int, cache *memo.Cache) *Report {
	t.Helper()
	cfg := testConfig(pols)
	cfg.DisasmWorkers = dw
	cfg.PolicyWorkers = pw
	cfg.FnMemo = cache
	g, client := newEnGarde(t, cfg)

	cli, srv := net.Pipe()
	defer srv.Close()
	sendErr := make(chan error, 1)
	go func() {
		defer cli.Close()
		sendErr <- client.SendStream(cli, image, blockSize)
	}()

	var rep *Report
	var err error
	if streaming {
		var st *StagedImage
		st, err = g.RecvImageStreaming(srv)
		if err == nil {
			if st.Digest != sha256.Sum256(image) {
				t.Fatal("incremental digest disagrees with a full-buffer hash")
			}
			rep, err = g.ProvisionStaged(st)
		}
	} else {
		rep, err = g.ProvisionStream(srv)
	}
	if err != nil {
		t.Fatalf("provision (streaming=%v, disasm=%d, policy=%d, block=%d): %v",
			streaming, dw, pw, blockSize, err)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("SendStream: %v", err)
	}
	return rep
}

// TestStreamingMatchesSequential is the contract the whole streaming
// pipeline rests on: for any frame schedule, worker count, and memo tier,
// the streamed receive-and-provision produces exactly the sequential
// outcome — verdict, violation, instruction count, and (for cold runs)
// every per-phase cycle total. Streaming may only move work earlier in
// time, never change it.
func TestStreamingMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			image := tc.image(t)
			workerPairs := [][2]int{{1, 1}, {3, 3}, {1 + rng.Intn(8), 1 + rng.Intn(8)}}
			blockSizes := []int{517, 4 * 1024, 64 * 1024, 1 + rng.Intn(32*1024)}

			for _, wp := range workerPairs {
				want := provisionOver(t, false, image, tc.makePols(t), wp[0], wp[1], 64*1024, nil)
				for _, bs := range blockSizes {
					got := provisionOver(t, true, image, tc.makePols(t), wp[0], wp[1], bs, nil)
					if got.Compliant != want.Compliant || got.Reason != want.Reason {
						t.Fatalf("workers %v block %d: verdict (%v, %q), sequential (%v, %q)",
							wp, bs, got.Compliant, got.Reason, want.Compliant, want.Reason)
					}
					if !reflect.DeepEqual(got.Violation, want.Violation) {
						t.Fatalf("workers %v block %d: violation %+v, sequential %+v",
							wp, bs, got.Violation, want.Violation)
					}
					if got.NumInsts != want.NumInsts || got.Entry != want.Entry || got.HeapBytes != want.HeapBytes {
						t.Fatalf("workers %v block %d: (insts=%d entry=%#x heap=%d), sequential (%d, %#x, %d)",
							wp, bs, got.NumInsts, got.Entry, got.HeapBytes,
							want.NumInsts, want.Entry, want.HeapBytes)
					}
					if !reflect.DeepEqual(got.Phases, want.Phases) {
						t.Fatalf("workers %v block %d: phase cycle totals diverge:\n  stream: %v\n  seq:    %v",
							wp, bs, got.Phases, want.Phases)
					}
				}
			}

			// Memo tiers: a function-result cache warmed identically on both
			// sides must leave the streamed outcome equal to the buffered one.
			// (Cycle totals are span-cut-dependent on warm runs — see
			// TestWarmProvisionMatchesCold — so only the outcome is compared.)
			for _, wp := range workerPairs[:2] {
				warm := func() *memo.Cache {
					c, err := memo.Open(memo.Config{Entries: 1 << 12})
					if err != nil {
						t.Fatal(err)
					}
					provisionWarm(t, image, tc.makePols(t), 1, 1, c)
					return c
				}
				cacheA, cacheB := warm(), warm()
				defer cacheA.Close()
				defer cacheB.Close()
				want := provisionOver(t, false, image, tc.makePols(t), wp[0], wp[1], 64*1024, cacheA)
				got := provisionOver(t, true, image, tc.makePols(t), wp[0], wp[1], 1+rng.Intn(16*1024), cacheB)
				if got.Compliant != want.Compliant || got.Reason != want.Reason ||
					!reflect.DeepEqual(got.Violation, want.Violation) || got.NumInsts != want.NumInsts {
					t.Fatalf("workers %v warm: streamed (%v, %q, %d insts), sequential (%v, %q, %d insts)",
						wp, got.Compliant, got.Reason, got.NumInsts, want.Compliant, want.Reason, want.NumInsts)
				}
				if tc.name == "compliant-full-set" && got.CachedFunctions == 0 {
					t.Fatalf("workers %v: warm streamed run reused no function outcomes", wp)
				}
			}
		})
	}
}

// TestRecvImageStreamingRequiresSession mirrors the buffered path's
// contract: content before the key exchange is rejected.
func TestRecvImageStreamingRequiresSession(t *testing.T) {
	g, err := New(testConfig(policy.NewSet(stackprot.New())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RecvImageStreaming(nil); err != ErrNoSession {
		t.Fatalf("error = %v, want ErrNoSession", err)
	}
}

// TestStagedImageReleaseIdempotent: Release is safe on nil receivers,
// before provisioning, and repeatedly after.
func TestStagedImageReleaseIdempotent(t *testing.T) {
	var st *StagedImage
	st.Release()
	st = &StagedImage{}
	st.Release()
	st.Release()
}

// TestProvisionStagedPrecheckedGuards: like ProvisionPrechecked, a staged
// precheck demands a compliant prior.
func TestProvisionStagedPrecheckedGuards(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(policy.NewSet(stackprot.New())))
	st := &StagedImage{Image: buildClient(t, clientCfg())}
	if _, err := g.ProvisionStagedPrechecked(st, nil); err == nil {
		t.Error("nil prior accepted")
	}
	if _, err := g.ProvisionStagedPrechecked(st, &Report{Compliant: false}); err == nil {
		t.Error("non-compliant prior accepted")
	}
}

// FuzzStreamingFrameSchedule drives the streaming receive through
// adversarial frame schedules and connection faults: arbitrary block sizes
// and seeded chaos (partial reads, bit flips, injected errors, truncations)
// on the server side of the pipe. The property is the availability/
// integrity split: the session may fail, but if it produces a verdict, that
// verdict is byte-for-byte the sequential one.
func FuzzStreamingFrameSchedule(f *testing.F) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "fuzz-stream", Seed: 99,
		NumFuncs: 10, AvgFuncInsts: 80,
		StackProtector: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	compliant := bin.Image
	bad, err := toolchain.Build(toolchain.Config{
		Name: "fuzz-stream-bad", Seed: 100,
		NumFuncs: 10, AvgFuncInsts: 80,
	})
	if err != nil {
		f.Fatal(err)
	}
	violating := bad.Image
	images := [2][]byte{compliant, violating}

	// The sequential baselines each fuzz execution is judged against.
	var baseline [2]*Report
	for i, image := range images {
		g, err := New(testConfig(policy.NewSet(stackprot.New())))
		if err != nil {
			f.Fatal(err)
		}
		pub, err := g.PublicKeyDER()
		if err != nil {
			f.Fatal(err)
		}
		_, wrapped, err := secchan.WrapSessionKey(pub, nil)
		if err != nil {
			f.Fatal(err)
		}
		if err := g.AcceptSessionKey(wrapped); err != nil {
			f.Fatal(err)
		}
		rep, err := g.Provision(image)
		if err != nil {
			f.Fatal(err)
		}
		baseline[i] = rep
	}

	f.Add(int64(1), uint16(512), false, uint8(0))
	f.Add(int64(2), uint16(17), true, uint8(40))
	f.Add(int64(3), uint16(8192), false, uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, block uint16, useViolating bool, chaos uint8) {
		idx := 0
		if useViolating {
			idx = 1
		}
		image, want := images[idx], baseline[idx]

		cfg := testConfig(policy.NewSet(stackprot.New()))
		cfg.DisasmWorkers = 1 + int(seed&3)
		g, client := newEnGarde(t, cfg)

		cli, srvRaw := net.Pipe()
		// Fault probabilities scale with the chaos byte; bit flips and
		// truncations are availability faults here — GCM authentication
		// turns corruption into a clean receive error.
		p := float64(chaos) / 255 * 0.3
		srv := faults.WrapConn(srvRaw, faults.Schedule{
			Seed:        seed,
			PartialProb: p,
			BitFlipProb: p / 4,
			ErrorProb:   p / 8,
			LatencyProb: p,
		})
		defer srv.Close()

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cli.Close()
			_ = client.SendStream(cli, image, int(block)+1)
		}()

		st, err := g.RecvImageStreaming(srv)
		if err == nil {
			var rep *Report
			rep, err = g.ProvisionStaged(st)
			if err == nil {
				if rep.Compliant != want.Compliant || rep.Reason != want.Reason ||
					!reflect.DeepEqual(rep.Violation, want.Violation) || rep.NumInsts != want.NumInsts {
					t.Fatalf("chaotic streamed verdict (%v, %q, %d insts) != sequential (%v, %q, %d insts)",
						rep.Compliant, rep.Reason, rep.NumInsts, want.Compliant, want.Reason, want.NumInsts)
				}
			}
		}
		// err != nil is acceptable: chaos may cost availability, never
		// verdict integrity.
		srv.Close()
		wg.Wait()
	})
}
