package core

import (
	"errors"
	"testing"

	"engarde/internal/elf64"
	"engarde/internal/interp"
	"engarde/internal/symtab"
	"engarde/internal/toolchain"
)

// provisionFor builds and provisions a client, returning the EnGarde
// instance and the image.
func provisionFor(t *testing.T, cfg toolchain.Config) (*EnGarde, []byte) {
	t.Helper()
	bin, err := toolchain.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := newEnGarde(t, testConfig(nil))
	rep, err := g.Provision(bin.Image)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatalf("rejected: %s", rep.Reason)
	}
	return g, bin.Image
}

// objectSymbolAddr resolves any symbol (function or object) to its
// runtime address.
func objectSymbolAddr(t *testing.T, g *EnGarde, image []byte, name string) uint64 {
	t.Helper()
	f, err := elf64.Parse(image)
	if err != nil {
		t.Fatal(err)
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range syms {
		if s.SymName == name {
			return g.LoadResult().Bias + s.Value
		}
	}
	t.Fatalf("symbol %s not found", name)
	return 0
}

// symbolAddr resolves a function's *runtime* address (static address +
// load bias).
func symbolAddr(t *testing.T, g *EnGarde, image []byte, name string) uint64 {
	t.Helper()
	f, err := elf64.Parse(image)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := symtab.FromELF(f)
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := tab.AddrOf(name)
	if !ok {
		t.Fatalf("symbol %s not found", name)
	}
	return g.LoadResult().Bias + addr
}

func TestExecuteProvisionedClient(t *testing.T) {
	// Real execution of checked code through the page tables and EPCM:
	// the program must run a substantial number of instructions and either
	// terminate cleanly (ud2 after exit) or exhaust the step budget —
	// never fault.
	g, _ := provisionFor(t, toolchain.Config{
		Name: "run", Seed: 91, NumFuncs: 6, AvgFuncInsts: 40,
		LibcCallRate: 0.04, AppCallRate: 0.02,
	})
	res, err := g.Execute(200_000)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Steps < 100 {
		t.Errorf("only %d steps executed", res.Steps)
	}
	if res.Reason != interp.StopTrap && res.Reason != interp.StopMaxSteps {
		t.Errorf("stop reason = %v", res.Reason)
	}
	t.Logf("executed %d instructions, stop=%v at %#x", res.Steps, res.Reason, res.StoppedAt)
}

func TestExecuteStackProtectedClient(t *testing.T) {
	// The canary instrumentation the policy verified statically must also
	// hold up dynamically: with an intact canary, __stack_chk_fail is
	// never reached.
	g, image := provisionFor(t, toolchain.Config{
		Name: "canary", Seed: 92, NumFuncs: 5, AvgFuncInsts: 40,
		LibcCallRate: 0.04, StackProtector: true,
	})
	failAddr := symbolAddr(t, g, image, "__stack_chk_fail")

	cpu, err := g.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	cpu.Breakpoints[failAddr] = true
	reason, err := cpu.Run(200_000)
	if err != nil {
		t.Fatalf("Run: %v (rip %#x)", err, cpu.RIP)
	}
	if reason == interp.StopBreakpoint {
		t.Fatal("reached __stack_chk_fail with an intact canary")
	}
	if cpu.Steps < 100 {
		t.Errorf("only %d steps", cpu.Steps)
	}
}

func TestExecuteDetectsCorruptedCanary(t *testing.T) {
	// Corrupt the TLS canary mid-run: the very next protected epilogue
	// must divert to __stack_chk_fail. This demonstrates the runtime
	// behaviour of the instrumentation EnGarde's Figure-4 policy checks
	// for.
	g, image := provisionFor(t, toolchain.Config{
		Name: "corrupt", Seed: 93, NumFuncs: 5, AvgFuncInsts: 40,
		LibcCallRate: 0.04, StackProtector: true,
	})
	failAddr := symbolAddr(t, g, image, "__stack_chk_fail")

	cpu, err := g.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	cpu.Breakpoints[failAddr] = true
	// Let some code run so canaries are live on the stack.
	if _, err := cpu.Run(200); err != nil {
		t.Fatal(err)
	}
	// The attacker corrupts the TLS canary (equivalently: an overflow
	// corrupted the on-stack copy; either way the compare fails).
	if err := g.Enclave().Write(g.LoadResult().TLSBase+CanaryTLSOffset, []byte{0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88}); err != nil {
		t.Fatal(err)
	}
	reason, err := cpu.Run(200_000)
	if err != nil {
		t.Fatalf("Run after corruption: %v", err)
	}
	if reason != interp.StopBreakpoint || cpu.RIP != failAddr {
		t.Errorf("expected stop at __stack_chk_fail (%#x), got %v at %#x",
			failAddr, reason, cpu.RIP)
	}
}

func TestExecuteIFCCClient(t *testing.T) {
	// IFCC-instrumented dispatch actually flows through the jump table at
	// runtime.
	g, _ := provisionFor(t, toolchain.Config{
		Name: "ifccrun", Seed: 94, NumFuncs: 6, AvgFuncInsts: 40,
		IndirectRate: 0.05, NumIndirectTargets: 4, IFCC: true,
	})
	res, err := g.Execute(200_000)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Reason != interp.StopTrap && res.Reason != interp.StopMaxSteps {
		t.Errorf("stop reason = %v", res.Reason)
	}
}

func TestExecuteWithRuntimeCFI(t *testing.T) {
	// The §1 runtime-enforcement extension: with the CFI monitor on,
	// legitimate programs (whose indirect targets are function starts)
	// run exactly as before.
	g, _ := provisionFor(t, toolchain.Config{
		Name: "cfi", Seed: 96, NumFuncs: 6, AvgFuncInsts: 40,
		IndirectRate: 0.05, NumIndirectTargets: 3,
	})
	cpu, err := g.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	g.EnableRuntimeCFI(cpu)
	reason, err := cpu.Run(200_000)
	if err != nil {
		t.Fatalf("Run with CFI: %v", err)
	}
	if reason != interp.StopTrap && reason != interp.StopMaxSteps {
		t.Errorf("reason = %v", reason)
	}

	// A hijacked function pointer (mid-function target) is killed by the
	// monitor: simulate by re-running with a poisoned CFI target.
	g2, _ := provisionFor(t, toolchain.Config{
		Name: "cfi", Seed: 96, NumFuncs: 6, AvgFuncInsts: 40,
		IndirectRate: 0.05, NumIndirectTargets: 3,
	})
	cpu2, err := g2.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	// Monitor that treats every target as hijacked — the first indirect
	// call must abort with a CFI violation.
	cpu2.CFICheck = func(uint64) bool { return false }
	_, err = cpu2.Run(200_000)
	if !errors.Is(err, interp.ErrCFIViolation) {
		t.Errorf("poisoned run = %v, want ErrCFIViolation", err)
	}
}

func TestExecuteASanDetectsPoisonedShadow(t *testing.T) {
	// The sanitizer instrumentation the asan policy verifies statically
	// also fires at runtime: poisoning the shadow region sends the next
	// guarded store to __asan_report.
	g, image := provisionFor(t, toolchain.Config{
		Name: "asanrun", Seed: 99, NumFuncs: 5, AvgFuncInsts: 50,
		LibcCallRate: 0.03, ASan: true,
	})
	reportAddr := symbolAddr(t, g, image, toolchain.ASanReportSym)

	// Run 1: clean shadow — the report function is never reached.
	cpu, err := g.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	cpu.Breakpoints[reportAddr] = true
	reason, err := cpu.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if reason == interp.StopBreakpoint {
		t.Fatal("reached __asan_report with a clean shadow")
	}

	// Run 2: poison the whole shadow region — the very next guarded store
	// must divert to __asan_report.
	g2, image2 := provisionFor(t, toolchain.Config{
		Name: "asanrun", Seed: 99, NumFuncs: 5, AvgFuncInsts: 50,
		LibcCallRate: 0.03, ASan: true,
	})
	reportAddr2 := symbolAddr(t, g2, image2, toolchain.ASanReportSym)
	shadowAddr := objectSymbolAddr(t, g2, image2, toolchain.ASanShadowSym)
	cpu2, err := g2.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	cpu2.Breakpoints[reportAddr2] = true
	poison := make([]byte, toolchain.ASanShadowBytes)
	for i := range poison {
		poison[i] = 0xF1 // ASan's stack-left-redzone marker
	}
	if err := g2.Enclave().Write(shadowAddr, poison); err != nil {
		t.Fatal(err)
	}
	reason2, err := cpu2.Run(100_000)
	if err != nil {
		t.Fatalf("Run with poisoned shadow: %v", err)
	}
	if reason2 != interp.StopBreakpoint || cpu2.RIP != reportAddr2 {
		t.Errorf("expected stop at __asan_report, got %v at %#x", reason2, cpu2.RIP)
	}
}

func TestExecuteRequiresProvisioning(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	if _, err := g.Execute(10); err == nil {
		t.Error("Execute before provisioning should fail")
	}
}

func TestExecuteCannotWriteCodePages(t *testing.T) {
	// A hostile CPU state that tries to write into the code region via a
	// stack pointer pointed at a code page must fault (W^X at runtime).
	g, _ := provisionFor(t, toolchain.Config{
		Name: "wx", Seed: 95, NumFuncs: 4, AvgFuncInsts: 30,
	})
	cpu, err := g.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	// Point RSP into the code region: the first push must fault.
	cpu.Regs[4] = g.LoadResult().ExecPages[0] + 0x100 // RSP
	_, err = cpu.Run(10_000)
	if err == nil {
		t.Error("expected a write fault with RSP in a code page")
	}
}
