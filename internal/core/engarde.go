// Package core implements EnGarde itself — the mutually-trusted in-enclave
// inspection library of the paper. An EnGarde instance is the bootstrap
// content of a freshly created enclave. It
//
//  1. generates an ephemeral 2048-bit RSA key pair whose digest is bound
//     into the enclave's attestation quote (§2, §3);
//  2. accepts the client's AES-256 session key and receives the client's
//     executable over the encrypted channel in blocks (§3);
//  3. disassembles the executable with the NaCl-style disassembler into a
//     dynamically allocated full instruction buffer, paying one OpenSGX
//     trampoline (2 SGX crossings) per page-granular malloc (§4);
//  4. runs the agreed policy modules over the instruction buffer (§3, §5);
//  5. if compliant, loads the executable — text r-x, data/bss rw-, dynamic
//     relocations applied, call stack built — and reports the executable
//     page list to the host-kernel component, which pins W^X and locks the
//     enclave (§3, §4);
//  6. transfers control to the loaded code (§4).
//
// Every step is metered with the cycle model of internal/cycles so the
// paper's Figures 3-5 can be regenerated.
package core

import (
	"errors"
	"fmt"
	"io"

	"engarde/internal/attest"
	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/funcid"
	"engarde/internal/hostos"
	"engarde/internal/loader"
	"engarde/internal/obs"
	"engarde/internal/policy"
	"engarde/internal/policy/memo"
	"engarde/internal/secchan"
	"engarde/internal/sgx"
	"engarde/internal/symtab"
)

// Version is the EnGarde bootstrap-code version measured into MRENCLAVE.
const Version = "engarde-1.0"

// InstRecordBytes is the modelled size of one decoded-instruction record in
// the in-enclave instruction buffer.
const InstRecordBytes = 64

// BufferMode selects how the disassembler retains decoded instructions
// (the ablation of DESIGN.md §5.1).
type BufferMode int

// Buffer modes.
const (
	// FullBuffer keeps every decoded instruction — EnGarde's choice, so
	// policy modules can random-access the buffer (paper §4).
	FullBuffer BufferMode = iota + 1
	// SlidingWindow keeps only NaCl's small recent-instruction window; it
	// allocates once but could not support EnGarde's policy modules.
	// Provided for the ablation benchmark.
	SlidingWindow
)

// Provisioning errors.
var (
	// ErrAlreadyProvisioned is returned on a second provisioning attempt;
	// the enclave is locked after the first (paper §3).
	ErrAlreadyProvisioned = errors.New("core: enclave already provisioned")
	// ErrNoSession is returned when content arrives before the key
	// exchange.
	ErrNoSession = errors.New("core: session key not established")
)

// Config configures an EnGarde enclave.
type Config struct {
	// Version selects SGX v1 or v2 semantics; default V2 (EnGarde requires
	// v2 for security, §3, but v1 is supported to demonstrate the attack).
	Version sgx.Version
	// EPCPages is the device EPC capacity; default ModifiedEPCPages (the
	// paper's OpenSGX modification).
	EPCPages int
	// HeapPages is the enclave's pre-committed heap (receive buffer +
	// instruction buffer); default ModifiedHeapPages.
	HeapPages int
	// ClientPages is the region reserved for the loaded client image +
	// stack; default 1024 (4 MB).
	ClientPages int
	// Policies are the mutually agreed policy modules.
	Policies *policy.Set
	// Counter meters all work; a fresh default-model counter is created
	// if nil.
	Counter *cycles.Counter
	// BufferMode is FullBuffer unless overridden for ablation.
	BufferMode BufferMode
	// MallocPerInst disables the page-at-a-time malloc batching (paper
	// §4's optimization), paying one trampoline per instruction record —
	// the ablation baseline.
	MallocPerInst bool
	// AllowStripped enables the §6 extension: binaries without symbol
	// tables are not auto-rejected; function boundaries are recovered
	// statically (internal/funcid) instead. Name-based policies (library
	// linking) still cannot match recovered names and will reject.
	AllowStripped bool
	// EnableEPCPaging turns on OS demand paging of EPC pages (EWB/ELDU):
	// the alternative to the paper's enlarge-the-EPC modification. Large
	// clients then fit a stock 2000-page EPC at the cost of extra SGX
	// instructions per eviction/reload.
	EnableEPCPaging bool
	// DisasmWorkers shards the disassembly pass across this many workers;
	// 0 means GOMAXPROCS, 1 forces the sequential path. The decoded
	// Program and all cycle charges are identical either way.
	DisasmWorkers int
	// PolicyWorkers sizes the policy-checking worker pool the same way.
	PolicyWorkers int
	// FnMemo, when non-nil, enables warm-path provisioning: per-function
	// policy outcomes are shared through this content-addressed cache, so
	// an image whose functions (typically the approved libc) were already
	// checked — by another enclave or a previous gatewayd run — skips
	// re-checking them. Verdicts are identical with or without it; only
	// the metered cost changes. Nil (the default) means cold checking.
	FnMemo *memo.Cache
	// Trace, when non-nil, records the provisioning timeline: one
	// cycle-metered phase span per pipeline stage (enclave creation,
	// staging, disassembly, policy checking, loading, finalization) plus
	// wall-clock sub-spans from the sharded passes. When the trace shares
	// Counter with this config and the counter started at zero, the spans'
	// per-phase cycle sums equal Report.Phases exactly.
	Trace *obs.Trace
}

func (c *Config) applyDefaults() {
	if c.Version == 0 {
		c.Version = sgx.V2
	}
	if c.EPCPages == 0 {
		c.EPCPages = sgx.ModifiedEPCPages
	}
	if c.HeapPages == 0 {
		c.HeapPages = sgx.ModifiedHeapPages
	}
	if c.ClientPages == 0 {
		c.ClientPages = 1024
	}
	if c.Policies == nil {
		c.Policies = policy.NewSet()
	}
	if c.Counter == nil {
		c.Counter = cycles.NewCounter(cycles.DefaultModel())
	}
	if c.BufferMode == 0 {
		c.BufferMode = FullBuffer
	}
}

// bootPages is the number of bootstrap-code pages EnGarde occupies.
const bootPages = 16

// enclaveBase is where the EnGarde enclave lives in the host process.
const enclaveBase = 0x10000000

// Layout describes the enclave's internal address map.
type Layout struct {
	Base       uint64
	BootBase   uint64
	HeapBase   uint64
	ClientBase uint64
	Size       uint64
}

// EnGarde is one provisioning-ready enclave instance.
type EnGarde struct {
	cfg    Config
	dev    *sgx.Device
	drv    *hostos.Driver
	proc   *hostos.Process
	kern   *hostos.KernelComponent
	encl   *sgx.Enclave
	ctx    *sgx.Context
	key    *secchan.EnclaveKey
	sess   *secchan.Session
	layout Layout

	peerTC   obs.TraceContext // client trace context from the session-open extra
	peerTCOK bool

	heapUsed     uint64
	provisioned  bool
	loadResult   *loader.Result
	clientSymtab *symtab.Table
}

// BootstrapCode returns the deterministic bootstrap content measured into
// the enclave. Both the provider and the client inspect this code and can
// recompute the expected MRENCLAVE from it.
func BootstrapCode() [][]byte {
	pages := make([][]byte, bootPages)
	for i := range pages {
		page := make([]byte, sgx.PageSize)
		seed := []byte(Version + "/bootstrap-page/")
		copy(page, seed)
		page[len(seed)] = byte(i)
		// Fill with a deterministic pattern standing in for the loader,
		// crypto library and policy-module code.
		for j := len(seed) + 1; j < len(page); j++ {
			page[j] = byte(j*7 + i*13)
		}
		pages[i] = page
	}
	return pages
}

// New creates a fresh enclave provisioned with the EnGarde bootstrap:
// ECREATE, EADD+EEXTEND of the bootstrap/heap/client pages, EINIT, EENTER,
// and the ephemeral RSA key generation.
func New(cfg Config) (*EnGarde, error) {
	cfg.applyDefaults()
	dev, err := sgx.NewDevice(sgx.Config{
		EPCPages: cfg.EPCPages,
		Version:  cfg.Version,
		Counter:  cfg.Counter,
	})
	if err != nil {
		return nil, err
	}
	return NewOnDevice(cfg, dev)
}

// NewOnDevice creates the EnGarde enclave on an existing device (so several
// enclaves can share one device, as in the multi-tenant example).
func NewOnDevice(cfg Config, dev *sgx.Device) (*EnGarde, error) {
	cfg.applyDefaults()
	// Enclave creation charges (EADD/EEXTEND/EINIT/EENTER, RSA keygen) land
	// in the provisioning phase; the span attributes them to this session.
	sp := cfg.Trace.StartPhase("create-enclave")
	defer sp.End()
	g := &EnGarde{cfg: cfg, dev: dev}
	g.drv = hostos.NewDriver(dev)
	g.proc = hostos.NewProcess()
	g.kern = hostos.NewKernelComponent(g.drv, cfg.Counter)
	if cfg.EnableEPCPaging {
		g.drv.EnablePaging()
		g.proc.FaultHandler = g.drv.HandleEPCFault
	}

	totalPages := bootPages + cfg.HeapPages + cfg.ClientPages
	g.layout = Layout{
		Base:       enclaveBase,
		BootBase:   enclaveBase,
		HeapBase:   enclaveBase + bootPages*sgx.PageSize,
		ClientBase: enclaveBase + uint64(bootPages+cfg.HeapPages)*sgx.PageSize,
		Size:       uint64(totalPages) * sgx.PageSize,
	}

	dev.SetPhase(cycles.PhaseProvision)
	encl, err := g.drv.CreateEnclave(g.proc, g.layout.Base, g.layout.Size)
	if err != nil {
		return nil, err
	}
	g.encl = encl

	// Bootstrap code: r-x at both levels.
	for i, page := range BootstrapCode() {
		va := g.layout.BootBase + uint64(i)*sgx.PageSize
		if err := g.drv.AddMeasuredPage(g.proc, encl, va,
			sgx.PermR|sgx.PermX, hostos.PermR|hostos.PermX, page); err != nil {
			return nil, fmt.Errorf("core: adding bootstrap page: %w", err)
		}
	}
	// Heap and client regions: rw- in page tables; the EPCM keeps RWX at
	// build time so the kernel component can later *restrict* client text
	// pages to r-x (EMODPR can only remove permissions).
	for p := bootPages; p < bootPages+cfg.HeapPages+cfg.ClientPages; p++ {
		va := g.layout.Base + uint64(p)*sgx.PageSize
		if err := g.drv.AddMeasuredPage(g.proc, encl, va,
			sgx.PermR|sgx.PermW|sgx.PermX, hostos.PermR|hostos.PermW, nil); err != nil {
			return nil, fmt.Errorf("core: adding heap page %#x: %w", va, err)
		}
	}
	if err := g.drv.InitEnclave(encl); err != nil {
		return nil, err
	}
	ctx, err := dev.EEnter(encl)
	if err != nil {
		return nil, err
	}
	g.ctx = ctx

	// "The bootstrap code loaded into a freshly-created enclave first
	// generates a 2048-bit RSA key pair" (§3).
	key, err := secchan.GenerateEnclaveKey(cfg.Counter)
	if err != nil {
		return nil, err
	}
	g.key = key
	return g, nil
}

// ExpectedMeasurement computes the MRENCLAVE a correctly initialized
// EnGarde enclave with this configuration must have. Clients call this
// (over code they have inspected) to know what to demand in the quote.
func ExpectedMeasurement(cfg Config) (sgx.Measurement, error) {
	cfg.applyDefaults()
	// Measurements do not depend on device keys, so replaying the build on
	// a scratch device yields the production enclave's measurement.
	scratch, err := sgx.NewDevice(sgx.Config{EPCPages: cfg.EPCPages, Version: cfg.Version})
	if err != nil {
		return sgx.Measurement{}, err
	}
	g, err := NewOnDevice(Config{
		Version:     cfg.Version,
		EPCPages:    cfg.EPCPages,
		HeapPages:   cfg.HeapPages,
		ClientPages: cfg.ClientPages,
	}, scratch)
	if err != nil {
		return sgx.Measurement{}, err
	}
	return g.encl.Measurement(), nil
}

// Measurement returns the enclave's MRENCLAVE.
func (g *EnGarde) Measurement() sgx.Measurement { return g.encl.Measurement() }

// Enclave returns the underlying enclave (tests and examples).
func (g *EnGarde) Enclave() *sgx.Enclave { return g.encl }

// Process returns the hosting process (tests and examples).
func (g *EnGarde) Process() *hostos.Process { return g.proc }

// Device returns the SGX device.
func (g *EnGarde) Device() *sgx.Device { return g.dev }

// Counter returns the cycle counter.
func (g *EnGarde) Counter() *cycles.Counter { return g.cfg.Counter }

// Layout returns the enclave's internal address map.
func (g *EnGarde) Layout() Layout { return g.layout }

// PublicKeyDER exports the enclave's ephemeral public key.
func (g *EnGarde) PublicKeyDER() ([]byte, error) { return g.key.PublicDER() }

// Quote obtains a signed quote binding the enclave measurement and the
// ephemeral public key, via the platform's quoting enclave.
func (g *EnGarde) Quote(qe *attest.QuotingEnclave) (attest.Quote, error) {
	g.dev.SetPhase(cycles.PhaseAttest)
	defer g.dev.SetPhase(cycles.PhaseProvision)
	pub, err := g.key.PublicDER()
	if err != nil {
		return attest.Quote{}, err
	}
	return qe.Quote(g.encl, attest.BindPublicKey(pub))
}

// AcceptSessionKey completes the key exchange: the client's AES-256 key,
// wrapped under the enclave's RSA public key. If the client appended a
// trace context to the OAEP plaintext (the authenticated session-open
// extra), it is captured for SessionTraceContext; a malformed extra is
// ignored rather than failing the handshake — tracing is best-effort,
// key exchange is not.
func (g *EnGarde) AcceptSessionKey(wrapped []byte) error {
	sess, extra, err := g.key.UnwrapSessionKeyExtra(wrapped, g.cfg.Counter)
	if err != nil {
		return err
	}
	g.sess = sess
	g.peerTC, g.peerTCOK = obs.TraceContext{}, false
	if len(extra) > 0 {
		if tc, err := obs.UnmarshalTraceContext(extra); err == nil && tc.Valid() {
			g.peerTC, g.peerTCOK = tc, true
		}
	}
	return nil
}

// SessionTraceContext returns the client's trace context carried inside
// the current session's wrapped-key exchange, and whether one was present
// and well-formed. Unlike the RouteHello copy, this one is authenticated:
// it was encrypted under the enclave's public key, so no on-path router
// could alter it.
func (g *EnGarde) SessionTraceContext() (obs.TraceContext, bool) {
	return g.peerTC, g.peerTCOK
}

// Report is the outcome of a provisioning attempt. Its Compliant flag and
// the executable-page list are the only facts EnGarde discloses to the
// cloud provider (§3).
type Report struct {
	// Compliant says whether the content passed every check.
	Compliant bool
	// Reason explains a rejection (empty when compliant).
	Reason string
	// Violation carries the policy violation, if that is what failed.
	Violation *policy.Violation

	// NumInsts is the size of the decoded instruction buffer.
	NumInsts int
	// HeapBytes is the in-enclave heap consumed (receive buffer +
	// instruction buffer).
	HeapBytes uint64
	// ExecPages and DataPages are the page lists handed to the host.
	ExecPages []uint64
	DataPages []uint64
	// Entry is the relocated client entry point (0 if rejected).
	Entry uint64
	// Phases snapshots the per-phase cycle counters after the attempt.
	Phases map[cycles.Phase]uint64
	// CacheHit records that this verdict was served from a verdict cache:
	// the byte-identical image had already been checked under an identical
	// policy set, so disassembly and policy evaluation were skipped (the
	// check is deterministic, making the reuse sound).
	CacheHit bool
	// CachedFunctions counts per-function policy outcomes served from the
	// function-result cache (Config.FnMemo) during this provisioning —
	// function × module reuses whose revalidation succeeded. Zero when the
	// cache is disabled or everything was checked cold.
	CachedFunctions uint64
}

// reject produces a non-compliant report.
func (g *EnGarde) reject(reason string, violation *policy.Violation) *Report {
	return &Report{
		Compliant: false,
		Reason:    reason,
		Violation: violation,
		Phases:    g.cfg.Counter.Snapshot(),
	}
}

// RecvImage receives and decrypts the client's executable over the
// encrypted channel (length header + encrypted blocks) without provisioning
// it. Serving layers use it to inspect the plaintext — e.g. hash it for a
// verdict-cache lookup — before deciding how to provision.
func (g *EnGarde) RecvImage(r io.Reader) ([]byte, error) {
	if g.sess == nil {
		return nil, ErrNoSession
	}
	g.dev.SetPhase(cycles.PhaseProvision)
	image, err := g.sess.RecvStream(r)
	if err != nil {
		return nil, fmt.Errorf("core: receiving content: %w", err)
	}
	return image, nil
}

// ProvisionStream receives the client's executable over the encrypted
// channel (length header + encrypted blocks) and provisions it.
func (g *EnGarde) ProvisionStream(r io.Reader) (*Report, error) {
	image, err := g.RecvImage(r)
	if err != nil {
		return nil, err
	}
	return g.Provision(image)
}

// Provision runs the full EnGarde pipeline over a decrypted executable
// image. A non-nil Report with Compliant == false is a *decision*, not an
// error; errors mean the machinery itself failed.
func (g *EnGarde) Provision(image []byte) (*Report, error) {
	return g.provision(&StagedImage{Image: image}, nil)
}

// ProvisionPrechecked provisions an image a prior compliant Report already
// vouches for: disassembly and policy checking are skipped and the image
// goes straight to loading. The caller must guarantee that the image is
// byte-identical to the one the prior report describes AND that it was
// checked under a policy set with an identical fingerprint — that is what
// makes skipping the deterministic check sound. The returned Report carries
// CacheHit = true.
func (g *EnGarde) ProvisionPrechecked(image []byte, prior *Report) (*Report, error) {
	if prior == nil || !prior.Compliant {
		return nil, errors.New("core: prechecked provisioning requires a prior compliant report")
	}
	return g.provision(&StagedImage{Image: image}, prior)
}

// provision is the shared pipeline — buffered and streaming provisioning
// both land here, so their verdicts and charges cannot diverge. With
// prior == nil it runs the full check; with a prior compliant report it
// skips disassembly and policy evaluation (the verdict-cache fast path).
// A streamed st may carry a speculative decode, adopted (or discarded) at
// the disassembly stage by decodeText.
func (g *EnGarde) provision(st *StagedImage, prior *Report) (*Report, error) {
	// Whatever path exits, never leave the speculative decoder's chunk
	// goroutines or pooled buffers in flight.
	defer st.Release()
	image := st.Image
	if g.provisioned {
		return nil, ErrAlreadyProvisioned
	}

	// Each pipeline stage runs under a cycle-metered phase span. The stages
	// are strictly sequential, so `cur` always holds the one open span; the
	// deferred End closes it on every early return (End is idempotent).
	tr := g.cfg.Trace
	cur := tr.StartPhase("stage")
	defer func() { cur.End() }()

	// Stage the received image in the enclave heap.
	g.dev.SetPhase(cycles.PhaseProvision)
	if _, err := g.heapAlloc(uint64(len(image)), cycles.PhaseProvision); err != nil {
		return g.reject(fmt.Sprintf("image too large for enclave heap: %v", err), nil), nil
	}
	if err := (enclaveMemory{g: g}).Write(g.layout.HeapBase, image); err != nil {
		return nil, fmt.Errorf("core: staging image: %w", err)
	}
	g.cfg.Counter.Charge(cycles.PhaseProvision, cycles.UnitCopiedByte, uint64(len(image)))

	// Header verification (§4: signature, class, machine, PIE).
	f, err := elf64.Parse(image)
	if err != nil {
		return g.reject(fmt.Sprintf("malformed executable: %v", err), nil), nil
	}
	if err := f.VerifyPIE(); err != nil {
		return g.reject(err.Error(), nil), nil
	}

	var tab *symtab.Table
	var numInsts int
	var cachedFuncs uint64
	if prior == nil {
		// Symbol hash table; stripped binaries are auto-rejected (§6)
		// unless boundary recovery is enabled.
		var symErr error
		tab, symErr = symtab.FromELF(f)
		stripped := false
		if symErr != nil {
			if !g.cfg.AllowStripped {
				return g.reject(fmt.Sprintf("symbol table: %v", symErr), nil), nil
			}
			stripped = true
		}

		texts := f.TextSections()
		if len(texts) != 1 {
			return g.reject(fmt.Sprintf("expected exactly one text section, found %d", len(texts)), nil), nil
		}
		text := texts[0]

		// Disassembly into the instruction buffer, with malloc-trampoline
		// accounting (§4). For stripped binaries, function boundaries are
		// recovered from the decoded program before the reachability rule
		// runs (the §6 extension).
		cur.End()
		cur = tr.StartPhase("disasm")
		g.dev.SetPhase(cycles.PhaseDisasm)
		prog, err := g.decodeText(st, text, tr)
		if err != nil {
			return g.reject(fmt.Sprintf("disassembly: %v", err), nil), nil
		}
		if stripped {
			tab = funcid.Recover(prog, f.Header.Entry)
		}
		if err := prog.CheckReachability(f.Header.Entry, tab); err != nil {
			return g.reject(fmt.Sprintf("disassembly: %v", err), nil), nil
		}
		if err := g.chargeInstBuffer(len(prog.Insts)); err != nil {
			return g.reject(err.Error(), nil), nil
		}
		numInsts = len(prog.Insts)

		// Policy checking (§3, §5).
		cur.End()
		cur = tr.StartPhase("policy")
		g.dev.SetPhase(cycles.PhasePolicy)
		pctx := &policy.Context{Program: prog, Symbols: tab, Counter: g.cfg.Counter, Trace: tr}
		if g.cfg.FnMemo != nil && tab != nil && g.cfg.Policies.AnyMemoizable() {
			// Warm path: one serial fingerprint pass computes every
			// function's content digest, then the module hit sets are fixed
			// — both before the parallel fan-out, so the charges land in a
			// deterministic order and span checkers read without locks.
			pctx.Memo = memo.NewSession(g.cfg.FnMemo, prog, tab, g.cfg.Counter)
			g.cfg.Policies.ProbeMemo(pctx)
		}
		if err := g.cfg.Policies.CheckParallel(pctx, g.cfg.PolicyWorkers); err != nil {
			if v, ok := policy.AsViolation(err); ok {
				rep := g.reject(err.Error(), v)
				if pctx.Memo != nil {
					rep.CachedFunctions = pctx.Memo.Reused()
				}
				return rep, nil
			}
			return nil, fmt.Errorf("core: policy machinery: %w", err)
		}
		if pctx.Memo != nil {
			cachedFuncs = pctx.Memo.Reused()
		}
	} else {
		// Verdict-cache fast path: the byte-identical image already passed
		// disassembly and policy checking under an identical policy set, so
		// neither is repeated (and no instruction buffer is allocated). The
		// symbol table is still rebuilt — runtime CFI needs it — but that is
		// ELF metadata parsing, not the metered in-enclave check.
		tab, _ = symtab.FromELF(f)
		numInsts = prior.NumInsts
	}

	// Loading and relocation (§4).
	cur.End()
	cur = tr.StartPhase("load")
	g.dev.SetPhase(cycles.PhaseLoad)
	res, err := loader.Load(f, enclaveMemory{g: g}, loader.Config{
		Base:    g.layout.ClientBase,
		Limit:   uint64(g.cfg.ClientPages) * sgx.PageSize,
		Counter: g.cfg.Counter,
	})
	if err != nil {
		if errors.Is(err, sgx.ErrEnclaveLost) {
			// The enclave died under the loader (EPC reclaim). That is a
			// machinery failure to recover from, never a verdict about the
			// image — misclassifying it as a rejection would poison the
			// client with a wrong outcome.
			return nil, fmt.Errorf("core: loading: %w", err)
		}
		return g.reject(fmt.Sprintf("loading: %v", err), nil), nil
	}
	g.loadResult = res

	// Hand the executable-page list to the host kernel component, which
	// pins W^X, drops the stack guard to read-only, and locks the enclave
	// (§3).
	cur.End()
	cur = tr.StartPhase("finalize")
	g.dev.SetPhase(cycles.PhaseProvision)
	if err := g.kern.ProtectGuardPages(g.proc, g.encl, []uint64{res.GuardPage}); err != nil {
		return nil, fmt.Errorf("core: guard setup: %w", err)
	}
	if err := g.kern.ApplyProvisionedPermissions(g.proc, g.encl, res.ExecPages, res.DataPages); err != nil {
		return nil, fmt.Errorf("core: host permission setup: %w", err)
	}
	g.provisioned = true
	g.clientSymtab = tab

	return &Report{
		Compliant:       true,
		NumInsts:        numInsts,
		HeapBytes:       g.heapUsed,
		ExecPages:       res.ExecPages,
		DataPages:       res.DataPages,
		Entry:           res.Entry,
		Phases:          g.cfg.Counter.Snapshot(),
		CacheHit:        prior != nil,
		CachedFunctions: cachedFuncs,
	}, nil
}

// chargeInstBuffer models the dynamically allocated instruction buffer:
// records are InstRecordBytes each; in FullBuffer mode every record is
// kept, and each page-granular malloc pays one trampoline (2 SGX
// crossings). MallocPerInst pays the trampoline per record instead —
// the cost the paper's batching optimization removes.
func (g *EnGarde) chargeInstBuffer(n int) error {
	var bytes uint64
	var mallocs uint64
	switch g.cfg.BufferMode {
	case SlidingWindow:
		bytes = 4 * sgx.PageSize // NaCl's bounded window
		mallocs = 1
	default:
		bytes = uint64(n) * InstRecordBytes
		if g.cfg.MallocPerInst {
			mallocs = uint64(n)
		} else {
			mallocs = (bytes + sgx.PageSize - 1) / sgx.PageSize
		}
	}
	if _, err := g.heapAlloc(bytes, cycles.PhaseDisasm); err != nil {
		return fmt.Errorf("instruction buffer: %v", err)
	}
	g.dev.ChargeSGX(2 * mallocs)
	return nil
}

// heapAlloc bumps the in-enclave heap.
func (g *EnGarde) heapAlloc(n uint64, _ cycles.Phase) (uint64, error) {
	heapSize := uint64(g.cfg.HeapPages) * sgx.PageSize
	if g.heapUsed+n > heapSize {
		return 0, fmt.Errorf("core: enclave heap exhausted (%d + %d > %d bytes)",
			g.heapUsed, n, heapSize)
	}
	addr := g.layout.HeapBase + g.heapUsed
	g.heapUsed += n
	return addr, nil
}

// Enter transfers control to the provisioned executable: EENTER, then an
// instruction fetch at the relocated entry point (both the page tables and
// the EPCM must grant execute). It returns the entry address actually
// fetched.
func (g *EnGarde) Enter() (uint64, error) {
	if !g.provisioned {
		return 0, errors.New("core: nothing provisioned")
	}
	ctx, err := g.dev.EEnter(g.encl)
	if err != nil {
		return 0, err
	}
	defer ctx.EExit()
	var first [16]byte
	if err := g.proc.EnclaveFetch(g.encl, g.loadResult.Entry, first[:]); err != nil {
		return 0, fmt.Errorf("core: fetching entry instruction: %w", err)
	}
	return g.loadResult.Entry, nil
}

// LoadResult exposes the loader outcome (examples/benches).
func (g *EnGarde) LoadResult() *loader.Result { return g.loadResult }

// Destroy releases the enclave's EPC pages back to the device. A serving
// layer that creates one enclave per connection must call this when the
// connection ends, or the shared EPC is exhausted after a handful of
// tenants. The instance is unusable afterwards.
func (g *EnGarde) Destroy() {
	g.dev.DestroyEnclave(g.encl)
}
