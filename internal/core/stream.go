package core

// Streaming provisioning: RecvImageStreaming overlaps the encrypted
// transfer with the front of the provisioning pipeline. As each secchan
// frame is decrypted it is folded into an incremental SHA-256 (so a
// verdict-cache lookup can fire at last-byte with no second full-buffer
// pass) and, once the ELF program headers have arrived, the text segment's
// bytes are fed straight into a nacl.StreamDecoder whose speculative chunk
// decodes run while later frames are still in flight.
//
// The overlap never changes the outcome: speculative decode work is
// uncharged (exactly like PR 2's sharded decoder), and ProvisionStaged
// adopts the streamed decode only after verifying it covers byte-for-byte
// the text section the full ELF parse names — otherwise the decode is
// discarded and the buffered path runs, making streaming and sequential
// provisioning produce identical verdicts, violations, and per-phase cycle
// charges by construction.

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/nacl"
	"engarde/internal/obs"
	"engarde/internal/secchan"
)

// StagedImage is a client executable received over the encrypted channel
// with the streaming pipeline already warmed up behind it: the assembled
// plaintext, its digest (computed incrementally during receive), and —
// privately — the in-flight speculative decode ProvisionStaged may adopt.
type StagedImage struct {
	// Image is the assembled plaintext executable.
	Image []byte
	// Digest is the image's SHA-256, available the instant the last byte
	// arrived — the verdict-cache key needs no separate hashing pass.
	Digest [sha256.Size]byte
	// FirstByteAt is the monotonic arrival time of the stream's first
	// content frame, the anchor for first-byte-to-verdict measurement.
	FirstByteAt time.Time

	dec     *nacl.StreamDecoder
	decAddr uint64 // link-time address the decoder assumed for its region
}

// Release discards any in-flight speculative decode without provisioning.
// Callers that obtain a StagedImage but never pass it to ProvisionStaged —
// e.g. a gateway serving a cached rejection — must call it; Release after
// ProvisionStaged is a harmless no-op.
func (st *StagedImage) Release() {
	if st == nil || st.dec == nil {
		return
	}
	st.dec.Abandon()
	st.dec = nil
}

// maxStreamText bounds the text-segment size the streaming path will
// speculatively decode; the hint is peer-claimed until the full parse, so
// cap it at the stream's own payload bound.
const maxStreamText = 1 << 30

// RecvImageStreaming receives and decrypts the client's executable like
// RecvImage, but pipelined: hashing and speculative text-segment decode run
// chunk-by-chunk as frames arrive instead of after assembly. Cycle charges
// are identical to RecvImage (the same bytes are decrypted and staged;
// speculative decode is never charged). On any receive error all partial
// state — buffer, hash, decoder — is dropped before returning.
func (g *EnGarde) RecvImageStreaming(r io.Reader) (*StagedImage, error) {
	if g.sess == nil {
		return nil, ErrNoSession
	}
	g.dev.SetPhase(cycles.PhaseProvision)
	tr := g.cfg.Trace
	st := &StagedImage{}
	h := sha256.New()
	var (
		image       []byte
		sniffDone   bool
		hint        elf64.ExecSegmentHint
		fedEnd      uint64 // image offset up to which the decoder has been fed
		overlapFrom time.Time
	)
	err := g.sess.RecvStreamFunc(r,
		func(total uint64) error {
			st.FirstByteAt = time.Now()
			// Same anti-DoS posture as RecvStream: the total is peer-claimed,
			// so reserve at most one block up front.
			initial := total
			if initial > secchan.MaxBlock {
				initial = secchan.MaxBlock
			}
			image = make([]byte, 0, initial)
			return nil
		},
		func(b []byte) error {
			h.Write(b)
			image = append(image, b...)
			if !sniffDone {
				var ok bool
				hint, ok, sniffDone = elf64.SniffExecSegment(image)
				if sniffDone && ok && hint.Filesz <= maxStreamText {
					st.dec = nacl.NewStreamDecoder(hint.Vaddr, int(hint.Filesz), g.cfg.DisasmWorkers)
					st.decAddr = hint.Vaddr
					fedEnd = hint.Off
				}
			}
			if st.dec != nil {
				// Feed the decoder whatever part of the text segment the
				// buffer now covers beyond what it has already seen.
				avail := uint64(len(image))
				if segEnd := hint.Off + hint.Filesz; avail > segEnd {
					avail = segEnd
				}
				if avail > fedEnd {
					if overlapFrom.IsZero() {
						overlapFrom = time.Now()
					}
					if err := st.dec.Feed(image[fedEnd:avail]); err != nil {
						return fmt.Errorf("core: streaming decode: %w", err)
					}
					fedEnd = avail
				}
			}
			return nil
		})
	if err != nil {
		// A failed receive must not pin the partial plaintext or leave chunk
		// goroutines holding pooled buffers until session teardown.
		image = nil
		st.Release()
		return nil, fmt.Errorf("core: receiving content: %w", err)
	}
	st.Image = image
	h.Sum(st.Digest[:0])
	if st.dec != nil && st.dec.Overlapped() && !overlapFrom.IsZero() {
		// The window during which transfer and speculative decode actually
		// ran concurrently — the overlap BENCH_8 attributes its win to.
		tr.RecordSpan("recv-overlap", overlapFrom, time.Since(overlapFrom))
	}
	return st, nil
}

// ProvisionStaged runs the full pipeline over a streamed image, adopting
// its speculative decode when it verifiably covers the text section and
// falling back to the buffered decode otherwise. Verdicts, violations, and
// cycle charges are identical to Provision(st.Image).
func (g *EnGarde) ProvisionStaged(st *StagedImage) (*Report, error) {
	return g.provision(st, nil)
}

// ProvisionStagedPrechecked is ProvisionPrechecked for a streamed image:
// the prior compliant report vouches for the (digest-identical) image, so
// disassembly and policy checking are skipped and any speculative decode is
// discarded unused.
func (g *EnGarde) ProvisionStagedPrechecked(st *StagedImage, prior *Report) (*Report, error) {
	if prior == nil || !prior.Compliant {
		return nil, errors.New("core: prechecked provisioning requires a prior compliant report")
	}
	return g.provision(st, prior)
}

// decodeText resolves the disassembly for the verified text section: adopt
// the streamed decode only if it demonstrably decoded these exact bytes at
// this exact address — the full parse is authoritative, the sniff was a
// hint — and otherwise discard it and decode from the buffer. Both paths
// charge and validate identically.
func (g *EnGarde) decodeText(st *StagedImage, text *elf64.Section, tr *obs.Trace) (*nacl.Program, error) {
	if dec := st.dec; dec != nil {
		st.dec = nil
		if st.decAddr == text.Addr && dec.Complete() && bytes.Equal(dec.Bytes(), text.Data) {
			return dec.Finish(g.cfg.Counter, tr)
		}
		dec.Abandon()
	}
	return nacl.DecodeProgramTraced(text.Data, text.Addr, g.cfg.Counter, g.cfg.DisasmWorkers, tr)
}
