package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"engarde/internal/attest"
	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/ifcc"
	"engarde/internal/policy/liblink"
	"engarde/internal/policy/noforbidden"
	"engarde/internal/policy/stackprot"
	"engarde/internal/secchan"
	"engarde/internal/sgx"
	"engarde/internal/toolchain"
)

// testConfig keeps enclaves small so tests stay fast.
func testConfig(pols *policy.Set) Config {
	return Config{
		Version:     sgx.V2,
		EPCPages:    4096,
		HeapPages:   1500,
		ClientPages: 512,
		Policies:    pols,
	}
}

func buildClient(t *testing.T, cfg toolchain.Config) []byte {
	t.Helper()
	bin, err := toolchain.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bin.Image
}

func clientCfg() toolchain.Config {
	return toolchain.Config{
		Name: "cl", Seed: 61,
		NumFuncs: 8, AvgFuncInsts: 60,
		LibcCallRate: 0.05, NumDataRelocs: 6,
	}
}

// newEnGarde builds an EnGarde enclave and completes the key exchange,
// returning the enclave side and the client session.
func newEnGarde(t *testing.T, cfg Config) (*EnGarde, *secchan.Session) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pub, err := g.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	client, wrapped, err := secchan.WrapSessionKey(pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AcceptSessionKey(wrapped); err != nil {
		t.Fatal(err)
	}
	return g, client
}

func TestProvisionCompliant(t *testing.T) {
	db, err := toolchain.MuslHashDB(toolchain.MuslV105, false)
	if err != nil {
		t.Fatal(err)
	}
	pols := policy.NewSet(liblink.New("musl-1.0.5", db))
	g, _ := newEnGarde(t, testConfig(pols))

	rep, err := g.Provision(buildClient(t, clientCfg()))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if !rep.Compliant {
		t.Fatalf("rejected: %s", rep.Reason)
	}
	if rep.NumInsts == 0 || len(rep.ExecPages) == 0 {
		t.Error("report incomplete")
	}
	// All four pipeline phases must have accumulated cycles.
	for _, ph := range []cycles.Phase{cycles.PhaseProvision, cycles.PhaseDisasm, cycles.PhasePolicy, cycles.PhaseLoad} {
		if rep.Phases[ph] == 0 {
			t.Errorf("phase %s has no cycles", ph)
		}
	}

	// Control transfer works: entry fetch succeeds.
	entry, err := g.Enter()
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
	if entry != rep.Entry {
		t.Errorf("entered at %#x, report says %#x", entry, rep.Entry)
	}
}

func TestProvisionRejectsPolicyViolation(t *testing.T) {
	pols := policy.NewSet(stackprot.New())
	g, _ := newEnGarde(t, testConfig(pols))
	// Client built WITHOUT stack protection.
	rep, err := g.Provision(buildClient(t, clientCfg()))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if rep.Compliant {
		t.Fatal("unprotected client must be rejected")
	}
	if rep.Violation == nil {
		t.Error("rejection should carry the violation")
	}
	// The enclave must NOT be locked or provisioned.
	if _, err := g.Enter(); err == nil {
		t.Error("Enter after rejection should fail")
	}
}

func TestProvisionAcceptsInstrumentedClient(t *testing.T) {
	pols := policy.NewSet(stackprot.New(), ifcc.New())
	g, _ := newEnGarde(t, testConfig(pols))
	cfg := clientCfg()
	cfg.StackProtector = true
	cfg.IFCC = true
	cfg.IndirectRate = 0.02
	rep, err := g.Provision(buildClient(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatalf("rejected: %s", rep.Reason)
	}
}

func TestProvisionRejectsStripped(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	cfg := clientCfg()
	cfg.Strip = true
	rep, err := g.Provision(buildClient(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant || !strings.Contains(rep.Reason, "symbol") {
		t.Errorf("stripped binary: compliant=%v reason=%q", rep.Compliant, rep.Reason)
	}
}

func TestProvisionStrippedWithRecovery(t *testing.T) {
	// The §6 extension: with AllowStripped, function boundaries are
	// recovered and boundary-only policies still run.
	pols := policy.NewSet(noforbidden.New())
	cfg := testConfig(pols)
	cfg.AllowStripped = true
	g, _ := newEnGarde(t, cfg)
	ccfg := clientCfg()
	ccfg.Strip = true
	rep, err := g.Provision(buildClient(t, ccfg))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatalf("stripped binary with recovery rejected: %s", rep.Reason)
	}
	// And the loaded code still executes.
	if _, err := g.Execute(50_000); err != nil {
		t.Errorf("Execute: %v", err)
	}
}

func TestProvisionStrippedSyscallStillCaught(t *testing.T) {
	// Recovery does not weaken the checks: a forbidden instruction in a
	// stripped binary is still found.
	pols := policy.NewSet(noforbidden.New())
	cfg := testConfig(pols)
	cfg.AllowStripped = true
	g, _ := newEnGarde(t, cfg)
	ccfg := clientCfg()
	ccfg.Strip = true
	ccfg.EmitSyscall = true
	rep, err := g.Provision(buildClient(t, ccfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Fatal("forbidden instruction must be caught in stripped binaries too")
	}
}

func TestProvisionRejectsMixedCodeData(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	cfg := clientCfg()
	cfg.MixedCodeData = true
	rep, err := g.Provision(buildClient(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant || !strings.Contains(rep.Reason, "disassembly") {
		t.Errorf("mixed code/data: compliant=%v reason=%q", rep.Compliant, rep.Reason)
	}
}

func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(12345)) }

func TestProvisionMutatedImagesNeverPanic(t *testing.T) {
	// EnGarde's pipeline handles attacker-supplied images; random
	// mutations of a valid binary must always produce a verdict or a
	// clean error, never a panic.
	image := buildClient(t, clientCfg())
	rng := newDeterministicRand()
	for trial := 0; trial < 10; trial++ {
		mutated := append([]byte(nil), image...)
		for k := 0; k < 8; k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 << rng.Intn(8))
		}
		g, _ := newEnGarde(t, testConfig(nil))
		rep, err := g.Provision(mutated)
		if err != nil {
			continue // mechanical failure is acceptable; panics are not
		}
		if rep == nil {
			t.Fatalf("trial %d: nil report without error", trial)
		}
	}
}

func TestProvisionRejectsGarbage(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	rep, err := g.Provision([]byte("not an elf at all"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Error("garbage accepted")
	}
}

func TestProvisionOnlyOnce(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	image := buildClient(t, clientCfg())
	if _, err := g.Provision(image); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Provision(image); !errors.Is(err, ErrAlreadyProvisioned) {
		t.Errorf("second Provision = %v, want ErrAlreadyProvisioned", err)
	}
}

func TestProvisionedPagesAreWX(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	rep, err := g.Provision(buildClient(t, clientCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatal(rep.Reason)
	}
	// Writing to a code page must fault; writing to a data page must work.
	code := rep.ExecPages[0]
	if err := g.Process().EnclaveWrite(g.Enclave(), code, []byte{0xCC}); err == nil {
		t.Error("write to provisioned code page should fault")
	}
	data := rep.DataPages[len(rep.DataPages)-1]
	if err := g.Process().EnclaveWrite(g.Enclave(), data, []byte{1}); err != nil {
		t.Errorf("write to data page: %v", err)
	}
	// The enclave is locked: no new pages.
	if err := g.Device().EAug(g.Enclave(), g.Layout().Base+g.Layout().Size-sgx.PageSize, sgx.PermR); !errors.Is(err, sgx.ErrEnclaveLocked) {
		// The page may already be mapped; the point is growth is refused.
		if err == nil {
			t.Error("post-provision EAUG should fail")
		}
	}
}

func TestAttestationFlow(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(nil))
	qe, err := attest.NewQuotingEnclave(g.Device())
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.Quote(qe)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	expected, err := ExpectedMeasurement(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := g.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	if err := attest.VerifyQuote(q, qe.AttestationPublicKey(), expected, attest.BindPublicKey(pub)); err != nil {
		t.Errorf("VerifyQuote: %v", err)
	}
	// A different layout (tampered bootstrap) yields a different expected
	// measurement.
	other := testConfig(nil)
	other.HeapPages++
	otherM, err := ExpectedMeasurement(other)
	if err != nil {
		t.Fatal(err)
	}
	if otherM == expected {
		t.Error("different enclave layouts must measure differently")
	}
}

func TestDefaultEPCTooSmallForLargeClients(t *testing.T) {
	// The paper's motivation for raising OpenSGX's EPC limit: EnGarde's
	// enclave (bootstrap + heap for image and instruction buffer + client
	// region) does not fit the stock 2000-page EPC.
	cfg := Config{
		Version:  sgx.V2,
		EPCPages: sgx.DefaultEPCPages, // 2000 — OpenSGX stock
		// Defaults: 5000 heap pages + 1024 client pages.
	}
	if _, err := New(cfg); !errors.Is(err, sgx.ErrEPCFull) {
		t.Errorf("New with stock EPC = %v, want ErrEPCFull", err)
	}
	// With the paper's modification it fits.
	cfg.EPCPages = sgx.ModifiedEPCPages
	if _, err := New(cfg); err != nil {
		t.Errorf("New with modified EPC: %v", err)
	}
}

func TestProvisionStreamRequiresSession(t *testing.T) {
	g, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ProvisionStream(nil); !errors.Is(err, ErrNoSession) {
		t.Errorf("ProvisionStream without session = %v", err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	cfg := testConfig(nil)
	cfg.HeapPages = 8 // far too small for image + instruction buffer
	g, _ := newEnGarde(t, cfg)
	rep, err := g.Provision(buildClient(t, clientCfg()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Error("tiny heap should cause rejection")
	}
}

func TestMeasurementDetectsBootstrapTampering(t *testing.T) {
	// Same device/config → same measurement across instances.
	cfg := testConfig(nil)
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Measurement() != g2.Measurement() {
		t.Error("identical builds must have identical MRENCLAVE")
	}
}

func TestProvisionPrechecked(t *testing.T) {
	// First enclave: the cold path produces the prior report.
	pols := policy.NewSet(stackprot.New())
	cfg := clientCfg()
	cfg.StackProtector = true
	image := buildClient(t, cfg)
	g1, _ := newEnGarde(t, testConfig(pols))
	prior, err := g1.Provision(image)
	if err != nil {
		t.Fatal(err)
	}
	if !prior.Compliant || prior.CacheHit {
		t.Fatalf("cold path: compliant=%v cacheHit=%v", prior.Compliant, prior.CacheHit)
	}

	// Second enclave: the prechecked path must skip disassembly and policy
	// checking but still produce a fully loaded, enterable enclave.
	g2, _ := newEnGarde(t, testConfig(pols))
	rep, err := g2.ProvisionPrechecked(image, prior)
	if err != nil {
		t.Fatalf("ProvisionPrechecked: %v", err)
	}
	if !rep.Compliant || !rep.CacheHit {
		t.Fatalf("prechecked: compliant=%v cacheHit=%v", rep.Compliant, rep.CacheHit)
	}
	if rep.NumInsts != prior.NumInsts {
		t.Errorf("NumInsts = %d, want %d (carried from prior report)", rep.NumInsts, prior.NumInsts)
	}
	if rep.Entry != prior.Entry {
		t.Errorf("Entry = %#x, want %#x (loading is deterministic)", rep.Entry, prior.Entry)
	}
	if got := g2.Counter().Cycles(cycles.PhaseDisasm); got != 0 {
		t.Errorf("prechecked path charged %d disassembly cycles, want 0", got)
	}
	if got := g2.Counter().Cycles(cycles.PhasePolicy); got != 0 {
		t.Errorf("prechecked path charged %d policy cycles, want 0", got)
	}
	if entry, err := g2.Enter(); err != nil || entry != rep.Entry {
		t.Errorf("Enter = %#x, %v", entry, err)
	}
	// Runtime execution still works on the fast path.
	if _, err := g2.Execute(10_000); err != nil {
		t.Errorf("Execute after prechecked provisioning: %v", err)
	}
}

func TestProvisionPrecheckedRequiresCompliantPrior(t *testing.T) {
	g, _ := newEnGarde(t, testConfig(policy.NewSet()))
	image := buildClient(t, clientCfg())
	if _, err := g.ProvisionPrechecked(image, nil); err == nil {
		t.Error("nil prior must be refused")
	}
	if _, err := g.ProvisionPrechecked(image, &Report{Compliant: false}); err == nil {
		t.Error("non-compliant prior must be refused")
	}
}
