package core

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"engarde/internal/policy"
	"engarde/internal/policy/memo"
)

// provisionWarm provisions image on a fresh enclave sharing the given
// function-result cache, with the given worker counts.
func provisionWarm(t *testing.T, image []byte, pols *policy.Set, disasmWorkers, policyWorkers int, cache *memo.Cache) *Report {
	t.Helper()
	cfg := testConfig(pols)
	cfg.DisasmWorkers = disasmWorkers
	cfg.PolicyWorkers = policyWorkers
	cfg.FnMemo = cache
	g, _ := newEnGarde(t, cfg)
	rep, err := g.Provision(image)
	if err != nil {
		t.Fatalf("Provision(disasm=%d, policy=%d, warm): %v", disasmWorkers, policyWorkers, err)
	}
	return rep
}

// TestWarmProvisionMatchesCold is the differential property the warm path
// rests on: provisioning through a function-result cache — freshly warmed
// in memory, or replayed from the disk tier after a restart — yields the
// same verdict, violation, and instruction count as a cold run, for any
// worker count. Cycle totals are deliberately NOT compared: straddle
// handling is span-cut-dependent, so warm metering varies with worker
// count (see EXPERIMENTS.md); only the outcome must be invariant.
func TestWarmProvisionMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			image := tc.image(t)
			cold := provisionWith(t, image, tc.makePols(t), 1, 1)

			for _, tier := range []string{"mem", "disk"} {
				t.Run(tier, func(t *testing.T) {
					var path string
					if tier == "disk" {
						path = filepath.Join(t.TempDir(), "fn.cache")
					}
					cache, err := memo.Open(memo.Config{Entries: 1 << 12, Path: path})
					if err != nil {
						t.Fatal(err)
					}
					defer func() { cache.Close() }()

					// Warming pass under randomized seams populates the cache
					// (passing functions only; violations are never memoized).
					provisionWarm(t, image, tc.makePols(t), 1+rng.Intn(12), 1+rng.Intn(12), cache)

					if tier == "disk" {
						// Simulate a gatewayd restart: the warm runs below must
						// see only what the append log replays.
						if err := cache.Close(); err != nil {
							t.Fatal(err)
						}
						cache, err = memo.Open(memo.Config{Entries: 1 << 12, Path: path})
						if err != nil {
							t.Fatal(err)
						}
						if st := cache.Stats(); tc.name == "compliant-full-set" && st.DiskLoaded == 0 {
							t.Fatal("disk tier replayed nothing for a compliant warming pass")
						}
					}

					for i := 0; i < 3; i++ {
						dw, pw := 1+rng.Intn(12), 1+rng.Intn(12)
						got := provisionWarm(t, image, tc.makePols(t), dw, pw, cache)
						if got.Compliant != cold.Compliant || got.Reason != cold.Reason {
							t.Fatalf("workers (%d,%d): warm verdict (%v, %q), cold (%v, %q)",
								dw, pw, got.Compliant, got.Reason, cold.Compliant, cold.Reason)
						}
						if !reflect.DeepEqual(got.Violation, cold.Violation) {
							t.Fatalf("workers (%d,%d): warm violation %+v, cold %+v",
								dw, pw, got.Violation, cold.Violation)
						}
						if got.NumInsts != cold.NumInsts {
							t.Fatalf("workers (%d,%d): warm decoded %d instructions, cold %d",
								dw, pw, got.NumInsts, cold.NumInsts)
						}
						// The compliant image re-provisioned through a warmed
						// cache must actually reuse outcomes — otherwise this
						// test passes trivially with the cache inert.
						if tc.name == "compliant-full-set" && got.CachedFunctions == 0 {
							t.Fatalf("workers (%d,%d): warm run reused no function outcomes", dw, pw)
						}
					}
				})
			}
		})
	}
}
