package core

import (
	"errors"
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/interp"
	"engarde/internal/policy"
	"engarde/internal/policy/noforbidden"
	"engarde/internal/sgx"
	"engarde/internal/toolchain"
)

// TestStockEPCWithPaging shows the alternative to the paper's §4 EPC
// enlargement: with OS demand paging, the same EnGarde enclave (5000 heap
// pages + 1024 client pages) that cannot even be built inside OpenSGX's
// stock 2000-page EPC builds, provisions and runs — at the cost of extra
// SGX instructions per eviction/reload, which the counter quantifies.
func TestStockEPCWithPaging(t *testing.T) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "paged", Seed: 97, NumFuncs: 8, AvgFuncInsts: 60, LibcCallRate: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Without paging, this configuration cannot be created at all (the
	// existing TestDefaultEPCTooSmallForLargeClients); with paging it can.
	ctr := cycles.NewCounter(cycles.DefaultModel())
	g, err := New(Config{
		Version:         sgx.V2,
		EPCPages:        sgx.DefaultEPCPages, // stock 2000
		HeapPages:       2500,
		ClientPages:     512, // 16 + 2500 + 512 = 3028 pages > 2000 EPC
		Policies:        policy.NewSet(noforbidden.New()),
		Counter:         ctr,
		EnableEPCPaging: true,
	})
	if err != nil {
		t.Fatalf("New with paging: %v", err)
	}

	rep, err := g.Provision(bin.Image)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if !rep.Compliant {
		t.Fatalf("rejected: %s", rep.Reason)
	}

	// The enclave's pages exceed the EPC, so evictions must have happened:
	// SGX-instruction charges beyond the no-paging baseline.
	if free := g.Device().EPCFree(); free < 0 {
		t.Fatalf("impossible free count %d", free)
	}

	// And the code still executes — faults on evicted pages are serviced
	// transparently.
	res, err := g.Execute(20_000)
	if err != nil {
		t.Fatalf("Execute under paging: %v", err)
	}
	if res.Reason != interp.StopTrap && res.Reason != interp.StopMaxSteps {
		t.Errorf("stop = %v", res.Reason)
	}
	t.Logf("executed %d steps under EPC pressure (EPC %d pages, enclave %d pages)",
		res.Steps, sgx.DefaultEPCPages, 16+2500+512)
}

// TestPagingCostVisible compares provisioning cost with a roomy EPC vs a
// stock EPC + paging: the paged run must charge strictly more SGX
// instructions (every EWB/ELDU is one).
func TestPagingCostVisible(t *testing.T) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "pagecost", Seed: 98, NumFuncs: 6, AvgFuncInsts: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(epcPages int, paging bool) uint64 {
		ctr := cycles.NewCounter(cycles.DefaultModel())
		g, err := New(Config{
			Version: sgx.V2, EPCPages: epcPages,
			HeapPages: 2500, ClientPages: 512,
			Counter: ctr, EnableEPCPaging: paging,
		})
		if err != nil {
			t.Fatalf("New(epc=%d): %v", epcPages, err)
		}
		rep, err := g.Provision(bin.Image)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Compliant {
			t.Fatal(rep.Reason)
		}
		return ctr.Units(cycles.PhaseProvision, cycles.UnitSGXInstr) +
			ctr.Units(cycles.PhaseDisasm, cycles.UnitSGXInstr) +
			ctr.Units(cycles.PhaseLoad, cycles.UnitSGXInstr)
	}
	roomy := run(4096, false)
	paged := run(sgx.DefaultEPCPages, true)
	if paged <= roomy {
		t.Errorf("paged run charged %d SGX instructions ≤ roomy run's %d", paged, roomy)
	}
	t.Logf("SGX instructions: roomy EPC %d, stock EPC with paging %d (+%d from EWB/ELDU)",
		roomy, paged, paged-roomy)
}

// TestPagingDisabledStillFails confirms the paging flag is what makes the
// difference.
func TestPagingDisabledStillFails(t *testing.T) {
	_, err := New(Config{
		Version: sgx.V2, EPCPages: sgx.DefaultEPCPages,
		HeapPages: 2500, ClientPages: 512,
	})
	if !errors.Is(err, sgx.ErrEPCFull) {
		t.Errorf("New without paging = %v, want ErrEPCFull", err)
	}
}
