package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"engarde/internal/attest"
	"engarde/internal/cycles"
	"engarde/internal/policy"
	"engarde/internal/policy/memo"
	"engarde/internal/secchan"
	"engarde/internal/sgx"
)

// newSnapshotter builds a Snapshotter on its own device with its own
// counter, from testConfig plus the given workers/cache.
func newSnapshotter(t *testing.T, pols *policy.Set, dw, pw int, cache *memo.Cache) *Snapshotter {
	t.Helper()
	cfg := testConfig(pols)
	cfg.DisasmWorkers = dw
	cfg.PolicyWorkers = pw
	cfg.FnMemo = cache
	cfg.Counter = cycles.NewCounter(cycles.DefaultModel())
	dev, err := sgx.NewDevice(sgx.Config{
		EPCPages: cfg.EPCPages, Version: cfg.Version, Counter: cfg.Counter,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshotter(cfg, dev)
	if err != nil {
		t.Fatalf("NewSnapshotter: %v", err)
	}
	return s
}

// keyExchange completes the RSA/AES key exchange on any EnGarde instance
// (what newEnGarde does for freshly built ones).
func keyExchange(t *testing.T, g *EnGarde) {
	t.Helper()
	pub, err := g.PublicKeyDER()
	if err != nil {
		t.Fatal(err)
	}
	_, wrapped, err := secchan.WrapSessionKey(pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AcceptSessionKey(wrapped); err != nil {
		t.Fatal(err)
	}
}

// provisionDelta provisions image on g and returns the report plus the
// per-phase cycle DELTAS of the provisioning run itself. Report.Phases is
// a cumulative counter snapshot, so it includes enclave-creation cost —
// which legitimately differs between a measured build and a snapshot
// clone; the delta over Provision is what must be identical.
func provisionDelta(t *testing.T, g *EnGarde, image []byte) (*Report, map[cycles.Phase]uint64) {
	t.Helper()
	pre := g.Counter().Snapshot()
	rep, err := g.Provision(image)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	delta := make(map[cycles.Phase]uint64)
	for p, v := range rep.Phases {
		if d := v - pre[p]; d != 0 {
			delta[p] = d
		}
	}
	return rep, delta
}

// compareReports asserts the observable provisioning outcome matches.
func compareReports(t *testing.T, label string, got, want *Report, gotDelta, wantDelta map[cycles.Phase]uint64) {
	t.Helper()
	if got.Compliant != want.Compliant || got.Reason != want.Reason {
		t.Fatalf("%s: verdict (%v, %q), fresh (%v, %q)",
			label, got.Compliant, got.Reason, want.Compliant, want.Reason)
	}
	if !reflect.DeepEqual(got.Violation, want.Violation) {
		t.Fatalf("%s: violation %+v, fresh %+v", label, got.Violation, want.Violation)
	}
	if got.NumInsts != want.NumInsts {
		t.Fatalf("%s: decoded %d instructions, fresh %d", label, got.NumInsts, want.NumInsts)
	}
	if !reflect.DeepEqual(gotDelta, wantDelta) {
		t.Fatalf("%s: per-phase provisioning cycle deltas diverge:\n  pooled: %v\n  fresh:  %v",
			label, gotDelta, wantDelta)
	}
}

// TestPooledProvisionMatchesFresh is the differential property the warm
// pool rests on: a session served by a snapshot-cloned (or scrubbed-and-
// recycled) enclave is observationally identical to one served by a
// freshly measured-built enclave — same verdict, violation, instruction
// count, per-phase provisioning cycle deltas, same MRENCLAVE, and an
// attestation quote that verifies against the fresh enclave's measurement.
// Checked across the PR-2 differential cases, randomized worker counts,
// and the warm-path memo tiers (none, mem, disk-with-restart).
func TestPooledProvisionMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			image := tc.image(t)
			for _, tier := range []string{"none", "mem", "disk"} {
				t.Run(tier, func(t *testing.T) {
					dw, pw := 1+rng.Intn(12), 1+rng.Intn(12)
					warmDW, warmPW := 1+rng.Intn(12), 1+rng.Intn(12)

					// openCache builds one memo tier; fresh and pooled sides
					// get their own, warmed identically (same image, same
					// worker counts), so the measured runs see equal state.
					openCache := func(name string) *memo.Cache {
						if tier == "none" {
							return nil
						}
						var path string
						if tier == "disk" {
							path = filepath.Join(t.TempDir(), name+".cache")
						}
						cache, err := memo.Open(memo.Config{Entries: 1 << 12, Path: path})
						if err != nil {
							t.Fatal(err)
						}
						t.Cleanup(func() { cache.Close() })
						provisionWarm(t, image, tc.makePols(t), warmDW, warmPW, cache)
						if tier == "disk" {
							// Simulate a restart: only the append log survives.
							if err := cache.Close(); err != nil {
								t.Fatal(err)
							}
							cache, err = memo.Open(memo.Config{Entries: 1 << 12, Path: path})
							if err != nil {
								t.Fatal(err)
							}
							t.Cleanup(func() { cache.Close() })
						}
						return cache
					}

					// Fresh side: the measured build.
					freshCfg := testConfig(tc.makePols(t))
					freshCfg.DisasmWorkers, freshCfg.PolicyWorkers = dw, pw
					freshCfg.FnMemo = openCache("fresh")
					fresh, _ := newEnGarde(t, freshCfg)
					freshRep, freshDelta := provisionDelta(t, fresh, image)

					// Pooled side: snapshot template once, then a clone.
					snap := newSnapshotter(t, tc.makePols(t), dw, pw, openCache("pooled"))
					if snap.Measurement() != fresh.Measurement() {
						t.Fatalf("clone MRENCLAVE %x, fresh %x",
							snap.Measurement(), fresh.Measurement())
					}
					clone, err := snap.Clone(nil)
					if err != nil {
						t.Fatalf("Clone: %v", err)
					}
					if clone.Measurement() != fresh.Measurement() {
						t.Fatal("cloned enclave measurement diverges")
					}

					// The clone's attestation transcript must satisfy a client
					// expecting the fresh enclave's measurement.
					qe, err := attest.NewQuotingEnclave(clone.Device())
					if err != nil {
						t.Fatal(err)
					}
					q, err := clone.Quote(qe)
					if err != nil {
						t.Fatalf("clone Quote: %v", err)
					}
					pub, err := clone.PublicKeyDER()
					if err != nil {
						t.Fatal(err)
					}
					if err := attest.VerifyQuote(q, qe.AttestationPublicKey(),
						fresh.Measurement(), attest.BindPublicKey(pub)); err != nil {
						t.Fatalf("clone quote does not verify against fresh measurement: %v", err)
					}

					keyExchange(t, clone)
					cloneRep, cloneDelta := provisionDelta(t, clone, image)
					compareReports(t, "clone", cloneRep, freshRep, cloneDelta, freshDelta)
					if tier != "none" && tc.name == "compliant-full-set" &&
						(cloneRep.CachedFunctions == 0 || cloneRep.CachedFunctions != freshRep.CachedFunctions) {
						t.Fatalf("warm-tier reuse diverges: clone %d cached functions, fresh %d",
							cloneRep.CachedFunctions, freshRep.CachedFunctions)
					}

					// Recycled generation: scrub the used clone back to the
					// snapshot and serve a second session through it. The
					// first session's run itself warmed the memo tier, so the
					// reference is a SECOND fresh enclave sharing the fresh
					// cache — generation 2 against generation 2.
					fresh2, _ := newEnGarde(t, freshCfg)
					fresh2Rep, fresh2Delta := provisionDelta(t, fresh2, image)
					recycled, err := snap.Recycle(clone)
					if err != nil {
						t.Fatalf("Recycle: %v", err)
					}
					keyExchange(t, recycled)
					recRep, recDelta := provisionDelta(t, recycled, image)
					compareReports(t, "recycled", recRep, fresh2Rep, recDelta, fresh2Delta)
				})
			}
		})
	}
}

// TestRecycleErasesResidue is the scrub guarantee in isolation: bytes a
// session writes into heap pages must be unreadable after Recycle — the
// next tenant sees exactly the snapshot image, never a predecessor's data.
func TestRecycleErasesResidue(t *testing.T) {
	snap := newSnapshotter(t, policy.NewSet(), 1, 1, nil)
	g1, err := snap.Clone(nil)
	if err != nil {
		t.Fatal(err)
	}
	canary := bytes.Repeat([]byte("SESSION-A-SECRET"), 256)[:sgx.PageSize]
	addr := g1.Layout().HeapBase + 100*sgx.PageSize
	if err := g1.Enclave().Write(addr, canary); err != nil {
		t.Fatalf("writing canary: %v", err)
	}

	g2, err := snap.Recycle(g1)
	if err != nil {
		t.Fatalf("Recycle: %v", err)
	}
	got := make([]byte, sgx.PageSize)
	if err := g2.Enclave().Read(addr, got); err != nil {
		t.Fatalf("reading after recycle: %v", err)
	}
	if bytes.Contains(got, []byte("SESSION-A-SECRET")) {
		t.Fatal("session A's canary survived the scrub")
	}
	if !bytes.Equal(got, make([]byte, sgx.PageSize)) {
		t.Fatal("recycled heap page is not the pristine snapshot image")
	}
}

// TestCloneDestroyRestoresEPCBalance pins the no-leak invariant the
// gateway chaos tests rely on: any clone/recycle/destroy sequence returns
// the device to its pre-clone EPC free count.
func TestCloneDestroyRestoresEPCBalance(t *testing.T) {
	snap := newSnapshotter(t, policy.NewSet(), 1, 1, nil)
	g, err := snap.Clone(nil)
	if err != nil {
		t.Fatal(err)
	}
	dev := g.Device()
	free := dev.EPCFree() + snap.SnapshotPages() // balance before this clone

	g, err = snap.Recycle(g)
	if err != nil {
		t.Fatal(err)
	}
	g.Destroy()
	if got := dev.EPCFree(); got != free {
		t.Fatalf("EPC free %d after clone→recycle→destroy, want %d", got, free)
	}
}
