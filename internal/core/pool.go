package core

import (
	"fmt"

	"engarde/internal/cycles"
	"engarde/internal/hostos"
	"engarde/internal/obs"
	"engarde/internal/secchan"
	"engarde/internal/sgx"
)

// Snapshotter amortizes enclave creation. It builds one template EnGarde
// enclave the measured way (ECREATE + EADD/EEXTEND + EINIT), captures a
// post-EINIT device snapshot, and then mints provisioning-ready instances
// by cloning the snapshot — page restore at memcpy speed instead of
// replaying the measured build. Every clone carries the template's
// MRENCLAVE (so client attestation is unchanged) but a fresh enclave
// identity and a fresh ephemeral RSA key (so sessions stay per-instance).
//
// Used enclaves can be recycled: the device scrubs every page back to the
// snapshot image — provably erasing any client residue — and the enclave
// re-enters service with new host-OS state and a new key.
type Snapshotter struct {
	cfg    Config // defaults applied; Trace stripped (per-clone traces attach at Clone)
	dev    *sgx.Device
	snap   *sgx.Snapshot
	layout Layout
	meas   sgx.Measurement

	buildCycles uint64
}

// NewSnapshotter builds the template enclave on dev, snapshots it, and
// destroys the template. The one-time build cost (the full measured build
// plus the template's RSA keygen) is charged to cfg.Counter's provisioning
// phase and reported via BuildCycles; it is the amortized capital cost of
// the pool, deliberately outside any session's trace.
func NewSnapshotter(cfg Config, dev *sgx.Device) (*Snapshotter, error) {
	cfg.applyDefaults()
	base := cfg
	base.Trace = nil
	pre := base.Counter.Total()
	tmpl, err := NewOnDevice(base, dev)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot template build: %w", err)
	}
	snap, err := dev.SnapshotEnclave(tmpl.encl)
	if err != nil {
		tmpl.Destroy()
		return nil, fmt.Errorf("core: snapshotting template: %w", err)
	}
	s := &Snapshotter{
		cfg:    base,
		dev:    dev,
		snap:   snap,
		layout: tmpl.layout,
		meas:   tmpl.encl.Measurement(),
	}
	tmpl.Destroy()
	s.buildCycles = base.Counter.Total() - pre
	return s, nil
}

// Measurement returns the MRENCLAVE every clone carries — identical to
// what ExpectedMeasurement computes for the same configuration.
func (s *Snapshotter) Measurement() sgx.Measurement { return s.meas }

// BuildCycles returns the one-time cycle cost of building and capturing
// the template (amortized across all clones).
func (s *Snapshotter) BuildCycles() uint64 { return s.buildCycles }

// SnapshotPages returns the number of pages restored per clone.
func (s *Snapshotter) SnapshotPages() int { return s.snap.Pages() }

// CloneCycleCost returns the deterministic cycle-model cost of minting one
// clone: the per-page restore plus SECS setup plus the fresh RSA keygen.
// Scrub-based recycling costs the same (page restore + keygen) minus the
// SECS instruction.
func (s *Snapshotter) CloneCycleCost() uint64 {
	model := s.cfg.Counter.Model()
	return uint64(s.snap.Pages()+2)*model[cycles.UnitSGXInstr] + model[cycles.UnitRSAOp]
}

// wrap builds a fresh EnGarde instance around an already-restored enclave:
// new host process and page tables, EENTER, fresh ephemeral RSA key. The
// enclave is destroyed on any error so callers never leak EPC slots.
func (s *Snapshotter) wrap(encl *sgx.Enclave, tr *obs.Trace) (*EnGarde, error) {
	cfg := s.cfg
	cfg.Trace = tr
	g := &EnGarde{cfg: cfg, dev: s.dev, encl: encl, layout: s.layout}
	g.drv = hostos.NewDriver(s.dev)
	g.proc = hostos.NewProcess()
	g.kern = hostos.NewKernelComponent(g.drv, cfg.Counter)
	fail := func(err error) (*EnGarde, error) {
		s.dev.DestroyEnclave(encl)
		return nil, err
	}
	// Rebuild the page tables the template had at EINIT: bootstrap r-x,
	// heap/client rw-. The EPCM side is already restored by the device.
	for _, va := range s.snap.PageVaddrs() {
		perm := hostos.PermR | hostos.PermW
		if va < s.layout.HeapBase {
			perm = hostos.PermR | hostos.PermX
		}
		slot, ok := encl.PageSlot(va)
		if !ok {
			return fail(fmt.Errorf("core: clone page table: page %#x not mapped", va))
		}
		if err := g.proc.AS.Map(va, slot, perm); err != nil {
			return fail(fmt.Errorf("core: clone page table: %w", err))
		}
	}
	s.dev.SetPhase(cycles.PhaseProvision)
	ctx, err := s.dev.EEnter(encl)
	if err != nil {
		return fail(fmt.Errorf("core: clone EENTER: %w", err))
	}
	g.ctx = ctx
	key, err := secchan.GenerateEnclaveKey(cfg.Counter)
	if err != nil {
		return fail(fmt.Errorf("core: clone keygen: %w", err))
	}
	g.key = key
	return g, nil
}

// Clone mints a fresh provisioning-ready EnGarde instance from the
// snapshot. The returned instance is attestation-ready (quote binds the
// snapshot MRENCLAVE and a fresh per-clone RSA key) and behaves exactly
// like one built by NewOnDevice, minus the measured-build cost. tr may be
// nil; pools typically clone untraced in the background and attach the
// session's trace at checkout via SetTrace.
func (s *Snapshotter) Clone(tr *obs.Trace) (*EnGarde, error) {
	sp := tr.StartPhase("clone-enclave")
	defer sp.End()
	s.dev.SetPhase(cycles.PhaseProvision)
	encl, err := s.dev.CloneEnclave(s.snap)
	if err != nil {
		return nil, fmt.Errorf("core: cloning snapshot: %w", err)
	}
	return s.wrap(encl, tr)
}

// Recycle scrubs a used clone back to the snapshot image and returns a
// fresh EnGarde instance around the same EPC pages: contents, EPCM
// permissions and the growth lock are reset, host-OS state and the RSA
// key are rebuilt from scratch. The old instance must not be used again.
// On any error the enclave is destroyed (never returned half-scrubbed).
func (s *Snapshotter) Recycle(g *EnGarde) (*EnGarde, error) {
	if g.dev != s.dev {
		g.Destroy()
		return nil, fmt.Errorf("core: recycle: enclave from a different device")
	}
	s.dev.SetPhase(cycles.PhaseProvision)
	if err := s.dev.ScrubEnclave(g.encl, s.snap); err != nil {
		g.Destroy()
		return nil, fmt.Errorf("core: scrubbing enclave: %w", err)
	}
	return s.wrap(g.encl, nil)
}

// SetTrace attaches a trace to an existing instance, so a pooled enclave
// cloned in the background reports its provisioning spans against the
// session that checked it out.
func (g *EnGarde) SetTrace(tr *obs.Trace) { g.cfg.Trace = tr }
