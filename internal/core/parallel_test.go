package core

import (
	"math/rand"
	"reflect"
	"testing"

	"engarde/internal/policy"
	"engarde/internal/policy/ifcc"
	"engarde/internal/policy/liblink"
	"engarde/internal/policy/noforbidden"
	"engarde/internal/policy/stackprot"
	"engarde/internal/toolchain"
)

// diffCase pairs a client binary with a policy set; makePols builds a fresh
// Set per run because policy modules (liblink's use counter, ifcc's jump
// table) carry per-check state.
type diffCase struct {
	name     string
	image    func(t *testing.T) []byte
	makePols func(t *testing.T) *policy.Set
}

func diffCases() []diffCase {
	protected := func(t *testing.T) []byte {
		cfg := toolchain.Config{
			Name: "par-prot", Seed: 71,
			NumFuncs: 14, AvgFuncInsts: 90,
			LibcCallRate: 0.05, NumDataRelocs: 6,
			StackProtector: true, IFCC: true, IndirectRate: 0.02,
		}
		return buildClient(t, cfg)
	}
	plain := func(t *testing.T) []byte {
		cfg := toolchain.Config{
			Name: "par-plain", Seed: 72,
			NumFuncs: 14, AvgFuncInsts: 90,
			LibcCallRate: 0.05, NumDataRelocs: 6,
		}
		return buildClient(t, cfg)
	}
	syscalls := func(t *testing.T) []byte {
		cfg := toolchain.Config{
			Name: "par-sys", Seed: 73,
			NumFuncs: 14, AvgFuncInsts: 90,
			LibcCallRate: 0.05, EmitSyscall: true,
		}
		return buildClient(t, cfg)
	}
	fullSet := func(t *testing.T) *policy.Set {
		t.Helper()
		db, err := toolchain.MuslHashDB(toolchain.MuslV105, false)
		if err != nil {
			t.Fatal(err)
		}
		return policy.NewSet(noforbidden.New(), liblink.New("musl-1.0.5", db),
			stackprot.New(), ifcc.New())
	}
	return []diffCase{
		{ // every module passes: the full compliant pipeline
			name:  "compliant-full-set",
			image: protected,
			makePols: func(t *testing.T) *policy.Set {
				return fullSet(t)
			},
		},
		{ // unprotected client under stackprot: a function-granular violation
			name:  "stackprot-violation",
			image: plain,
			makePols: func(t *testing.T) *policy.Set {
				return policy.NewSet(stackprot.New())
			},
		},
		{ // forbidden instruction: a per-instruction violation mid-scan
			name:  "noforbidden-violation",
			image: syscalls,
			makePols: func(t *testing.T) *policy.Set {
				return policy.NewSet(noforbidden.New())
			},
		},
		{ // violation while later modules still run: merge-order sensitivity
			name:  "violation-in-full-set",
			image: syscalls,
			makePols: func(t *testing.T) *policy.Set {
				return fullSet(t)
			},
		},
	}
}

// provisionWith provisions image on a fresh enclave with the given worker
// counts and returns the report.
func provisionWith(t *testing.T, image []byte, pols *policy.Set, disasmWorkers, policyWorkers int) *Report {
	t.Helper()
	cfg := testConfig(pols)
	cfg.DisasmWorkers = disasmWorkers
	cfg.PolicyWorkers = policyWorkers
	g, _ := newEnGarde(t, cfg)
	rep, err := g.Provision(image)
	if err != nil {
		t.Fatalf("Provision(disasm=%d, policy=%d): %v", disasmWorkers, policyWorkers, err)
	}
	return rep
}

// TestParallelProvisionMatchesSequential is the differential property the
// whole parallel pipeline rests on: for any worker count, the provisioning
// outcome — verdict, violation (module, address, reason), instruction
// count, and every per-phase cycle total — is identical to the sequential
// run. Worker counts are randomized (seeded) so seams move between runs.
func TestParallelProvisionMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			image := tc.image(t)
			want := provisionWith(t, image, tc.makePols(t), 1, 1)

			workerPairs := [][2]int{{0, 0}, {2, 3}, {8, 8}}
			for i := 0; i < 3; i++ {
				workerPairs = append(workerPairs, [2]int{1 + rng.Intn(16), 1 + rng.Intn(16)})
			}
			for _, wp := range workerPairs {
				got := provisionWith(t, image, tc.makePols(t), wp[0], wp[1])
				if got.Compliant != want.Compliant || got.Reason != want.Reason {
					t.Fatalf("workers %v: verdict (%v, %q), sequential (%v, %q)",
						wp, got.Compliant, got.Reason, want.Compliant, want.Reason)
				}
				if !reflect.DeepEqual(got.Violation, want.Violation) {
					t.Fatalf("workers %v: violation %+v, sequential %+v", wp, got.Violation, want.Violation)
				}
				if got.NumInsts != want.NumInsts {
					t.Fatalf("workers %v: %d instructions, sequential %d", wp, got.NumInsts, want.NumInsts)
				}
				if !reflect.DeepEqual(got.Phases, want.Phases) {
					t.Fatalf("workers %v: phase cycle totals diverge:\n  par: %v\n  seq: %v",
						wp, got.Phases, want.Phases)
				}
			}
		})
	}
}
