package core

import (
	"crypto/rand"
	"errors"
	"fmt"

	"engarde/internal/cycles"
	"engarde/internal/interp"
	"engarde/internal/sgx"
)

// This file extends EnGarde beyond the paper's prototype: after
// provisioning, the client code can actually be *executed* by the
// interpreter in internal/interp, with every fetch/read/write mediated by
// the host page tables and (on SGXv2) the EPCM — so the W^X split the
// kernel component installed, the stack canaries the policy verified, and
// the IFCC jump-table dispatch are all live at runtime.

// enclaveMemory adapts the provisioned enclave to interp.Memory. All three
// access kinds go through the process (page tables) and then the hardware
// (EPCM + decryption).
type enclaveMemory struct {
	g *EnGarde
}

func (m enclaveMemory) Fetch(addr uint64, b []byte) error {
	return m.g.proc.EnclaveFetch(m.g.encl, addr, b)
}

func (m enclaveMemory) Read(addr uint64, b []byte) error {
	return m.g.proc.EnclaveRead(m.g.encl, addr, b)
}

func (m enclaveMemory) Write(addr uint64, b []byte) error {
	return m.g.proc.EnclaveWrite(m.g.encl, addr, b)
}

// CanaryTLSOffset is where the runtime keeps the stack canary relative to
// the %fs base, matching Clang's %fs:0x28.
const CanaryTLSOffset = 0x28

// NewCPU prepares an execution context over the provisioned client code:
// stack pointer at the loader's stack top, %fs base at the TLS page, and a
// fresh random canary written to %fs:0x28 (the runtime-init step a real
// libc performs).
func (g *EnGarde) NewCPU() (*interp.CPU, error) {
	if !g.provisioned {
		return nil, errors.New("core: nothing provisioned")
	}
	res := g.loadResult

	// Runtime TLS init: a fresh canary value.
	var canary [8]byte
	if _, err := rand.Read(canary[:]); err != nil {
		return nil, fmt.Errorf("core: generating canary: %w", err)
	}
	canary[0] = 0 // Clang's canaries keep a NUL guard byte
	if err := (enclaveMemory{g: g}).Write(res.TLSBase+CanaryTLSOffset, canary[:]); err != nil {
		return nil, fmt.Errorf("core: initializing TLS canary: %w", err)
	}

	cpu := interp.New(enclaveMemory{g: g}, res.Entry, res.StackTop)
	cpu.FSBase = res.TLSBase
	cpu.Breakpoints = make(map[uint64]bool)
	return cpu, nil
}

// EnableRuntimeCFI installs a runtime control-flow-integrity monitor on a
// CPU created by NewCPU: every indirect call or jump may target only a
// known function start (including IFCC jump-table slots). This realizes
// the paper's §1 sketch of runtime policy enforcement as an execution-
// substrate feature.
func (g *EnGarde) EnableRuntimeCFI(cpu *interp.CPU) {
	bias := g.loadResult.Bias
	tab := g.clientSymtab
	cpu.CFICheck = func(target uint64) bool {
		return tab.IsFuncStart(target - bias)
	}
}

// ExecResult summarizes an Execute run.
type ExecResult struct {
	Reason    interp.StopReason
	Steps     uint64
	StoppedAt uint64 // RIP at stop
}

// Execute runs the provisioned client code for at most maxSteps
// instructions. Generated programs terminate with a trap (ud2) when
// _start finishes; long-running programs stop at the step budget. Any
// memory-permission fault is returned as an error — under a correct
// provisioning there are none.
func (g *EnGarde) Execute(maxSteps uint64) (*ExecResult, error) {
	cpu, err := g.NewCPU()
	if err != nil {
		return nil, err
	}
	// Runtime execution is charged nowhere in the paper's tables — EnGarde
	// imposes no runtime overhead; provisioning absorbs the EENTER
	// crossings.
	g.dev.SetPhase(cycles.PhaseProvision)
	reason, err := cpu.Run(maxSteps)
	if err != nil {
		return nil, err
	}
	return &ExecResult{Reason: reason, Steps: cpu.Steps, StoppedAt: cpu.RIP}, nil
}

// EnclavePageSize re-exports the page size for callers of execution APIs.
const EnclavePageSize = sgx.PageSize
