package elf64

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickParseNeverPanics feeds random byte blobs to Parse: every input
// must produce a *File or an error, never a panic or an out-of-bounds
// access. EnGarde parses attacker-supplied images, so this is a security
// property of the pipeline, not just robustness.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		file, err := Parse(data)
		if err != nil {
			return true
		}
		// Walk every accessor over a successfully parsed file; none may
		// panic.
		_ = file.VerifyPIE()
		_ = file.TextSections()
		_, _ = file.Symbols()
		_, _ = file.Dynamic()
		_, _ = file.Relocations()
		_, _ = file.DataAt(0, 1)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickMutatedImageNeverPanics takes a valid image and flips random
// bytes — closer to real attack inputs than pure noise, since headers stay
// mostly plausible.
func TestQuickMutatedImageNeverPanics(t *testing.T) {
	base := buildTestPIEImage(t)
	f := func(seed int64, flips uint8) bool {
		r := rand.New(rand.NewSource(seed))
		img := append([]byte(nil), base...)
		for k := 0; k < int(flips%32)+1; k++ {
			img[r.Intn(len(img))] ^= byte(1 << r.Intn(8))
		}
		file, err := Parse(img)
		if err != nil {
			return true
		}
		_ = file.VerifyPIE()
		_ = file.TextSections()
		_, _ = file.Symbols()
		_, _ = file.Relocations()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickTruncationNeverPanics parses every prefix of a valid image.
func TestQuickTruncationNeverPanics(t *testing.T) {
	img := buildTestPIEImage(t)
	for n := 0; n <= len(img); n += 7 {
		file, err := Parse(img[:n])
		if err != nil {
			continue
		}
		_, _ = file.Symbols()
		_, _ = file.Relocations()
	}
}

func buildTestPIEImage(t *testing.T) []byte {
	t.Helper()
	return buildTestPIE(t, make([]byte, 512), make([]byte, 128))
}
