package elf64

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PageSize is the layout granularity for loadable segments; it matches the
// EPC page size of the SGX substrate.
const PageSize = 4096

// BuildSection describes one section to be placed in the output image by a
// Builder. Alloc sections must carry pre-assigned virtual addresses (the
// linker in internal/toolchain does address assignment); non-alloc sections
// (symtab etc.) are appended after the loadable part of the file.
type BuildSection struct {
	Name    string
	Type    uint32
	Flags   uint64
	Addr    uint64
	Data    []byte
	MemSize uint64 // for SHT_NOBITS; otherwise len(Data) is used
	Align   uint64
	Entsize uint64
	Link    string // name of the linked section (e.g. symtab→strtab)
}

// BuildSymbol is a symbol to be emitted into .symtab.
type BuildSymbol struct {
	Name    string
	Value   uint64
	Size    uint64
	Info    uint8
	Section string // name of the defining section ("" = SHN_UNDEF)
}

// Builder assembles a complete ELF64 position-independent executable image.
// The zero value is ready for use.
type Builder struct {
	// Entry is the virtual address of the entry point.
	Entry uint64
	// Type is the ELF file type; defaults to TypeDyn (PIE) if zero.
	Type uint16

	sections []BuildSection
	symbols  []BuildSymbol
}

// AddSection appends a section. Sections are emitted in the order added;
// alloc sections must be added in increasing address order.
func (b *Builder) AddSection(s BuildSection) { b.sections = append(b.sections, s) }

// AddSymbol appends a symbol for the .symtab.
func (b *Builder) AddSymbol(s BuildSymbol) { b.symbols = append(b.symbols, s) }

// EncodeDynamic serializes a dynamic table, appending the DT_NULL
// terminator.
func EncodeDynamic(entries []Dyn) []byte {
	var buf bytes.Buffer
	for _, d := range entries {
		_ = binary.Write(&buf, binary.LittleEndian, d)
	}
	_ = binary.Write(&buf, binary.LittleEndian, Dyn{})
	return buf.Bytes()
}

// EncodeRelas serializes a RELA relocation table.
func EncodeRelas(relas []Rela) []byte {
	var buf bytes.Buffer
	for _, r := range relas {
		_ = binary.Write(&buf, binary.LittleEndian, r)
	}
	return buf.Bytes()
}

// strtab is an incremental ELF string table builder.
type strtab struct {
	buf  bytes.Buffer
	offs map[string]uint32
}

func newStrtab() *strtab {
	st := &strtab{offs: make(map[string]uint32)}
	st.buf.WriteByte(0) // index 0 is the empty string
	return st
}

func (st *strtab) add(s string) uint32 {
	if s == "" {
		return 0
	}
	if off, ok := st.offs[s]; ok {
		return off
	}
	off := uint32(st.buf.Len())
	st.offs[s] = off
	st.buf.WriteString(s)
	st.buf.WriteByte(0)
	return off
}

// Build lays out and serializes the image.
func (b *Builder) Build() ([]byte, error) {
	if b.Entry == 0 {
		return nil, errors.New("elf64: builder: no entry point set")
	}

	// Synthesize .symtab/.strtab/.shstrtab sections.
	sections := make([]BuildSection, len(b.sections))
	copy(sections, b.sections)

	secIndex := func(name string) (uint16, error) {
		if name == "" {
			return SHNUndef, nil
		}
		for i, s := range sections {
			if s.Name == name {
				return uint16(i + 1), nil // +1 for the null section
			}
		}
		return 0, fmt.Errorf("elf64: builder: unknown section %q", name)
	}

	// symtabInfo becomes sh_info of .symtab: one greater than the index of
	// the last local symbol.
	var symtabInfo uint32
	if len(b.symbols) > 0 {
		symstr := newStrtab()
		var symbuf bytes.Buffer
		_ = binary.Write(&symbuf, binary.LittleEndian, Sym{}) // null symbol
		// Locals must precede globals in a symtab.
		syms := make([]BuildSymbol, len(b.symbols))
		copy(syms, b.symbols)
		sort.SliceStable(syms, func(i, j int) bool {
			return syms[i].Info>>4 < syms[j].Info>>4
		})
		nLocal := 1
		for _, s := range syms {
			shndx, err := secIndex(s.Section)
			if err != nil {
				return nil, err
			}
			if s.Info>>4 == STBLocal {
				nLocal++
			}
			_ = binary.Write(&symbuf, binary.LittleEndian, Sym{
				Name:  symstr.add(s.Name),
				Info:  s.Info,
				Shndx: shndx,
				Value: s.Value,
				Size:  s.Size,
			})
		}
		sections = append(sections,
			BuildSection{Name: ".symtab", Type: SHTSymtab, Data: symbuf.Bytes(),
				Align: 8, Entsize: SymSize, Link: ".strtab"},
			BuildSection{Name: ".strtab", Type: SHTStrtab, Data: symstr.buf.Bytes(), Align: 1},
		)
		symtabInfo = uint32(nLocal)
	}

	shstr := newStrtab()
	for i := range sections {
		shstr.add(sections[i].Name)
	}
	shstr.add(".shstrtab")
	sections = append(sections, BuildSection{
		Name: ".shstrtab", Type: SHTStrtab, Data: shstr.buf.Bytes(), Align: 1,
	})

	// Segment planning: group alloc sections into an RX segment and an RW
	// segment by flags, in address order.
	type segment struct {
		flags          uint32
		vaddr, off     uint64
		filesz, memsz  uint64
		firstSec, last int
	}
	var segs []segment
	var dynamicSec = -1
	for i, s := range sections {
		if s.Flags&SHFAlloc == 0 {
			continue
		}
		var pf uint32 = PFR
		if s.Flags&SHFExecinstr != 0 {
			pf |= PFX
		}
		if s.Flags&SHFWrite != 0 {
			pf |= PFW
		}
		if s.Type == SHTDynamic {
			dynamicSec = i
		}
		if len(segs) > 0 && segs[len(segs)-1].flags == pf {
			segs[len(segs)-1].last = i
		} else {
			segs = append(segs, segment{flags: pf, firstSec: i, last: i})
		}
	}

	// File layout. Header + phdrs first; each segment starts at a file
	// offset congruent to its vaddr modulo the page size.
	nPhdr := len(segs)
	if dynamicSec >= 0 {
		nPhdr++
	}
	off := uint64(EhdrSize + nPhdr*PhdrSize)
	offsets := make([]uint64, len(sections))
	for si := range segs {
		seg := &segs[si]
		base := sections[seg.firstSec].Addr
		// Advance off so that off ≡ base (mod PageSize), the mmap
		// congruence requirement for PT_LOAD.
		off += (PageSize + base%PageSize - off%PageSize) % PageSize
		seg.vaddr = base
		seg.off = off
		var memEnd, fileEnd uint64 = base, base
		for i := seg.firstSec; i <= seg.last; i++ {
			s := &sections[i]
			if s.Flags&SHFAlloc == 0 {
				continue
			}
			if s.Addr < memEnd {
				return nil, fmt.Errorf("elf64: builder: section %q overlaps previous (addr %#x < %#x)", s.Name, s.Addr, memEnd)
			}
			offsets[i] = seg.off + (s.Addr - seg.vaddr)
			size := uint64(len(s.Data))
			if s.Type == SHTNobits {
				memEnd = s.Addr + s.MemSize
			} else {
				memEnd = s.Addr + size
				fileEnd = s.Addr + size
			}
		}
		seg.filesz = fileEnd - seg.vaddr
		seg.memsz = memEnd - seg.vaddr
		off = seg.off + seg.filesz
	}
	// Non-alloc sections follow the loadable image.
	for i, s := range sections {
		if s.Flags&SHFAlloc != 0 {
			continue
		}
		align := s.Align
		if align == 0 {
			align = 1
		}
		off = (off + align - 1) / align * align
		offsets[i] = off
		if s.Type != SHTNobits {
			off += uint64(len(s.Data))
		}
	}
	shoff := (off + 7) / 8 * 8

	total := shoff + uint64(1+len(sections))*ShdrSize
	image := make([]byte, total)

	// ELF header.
	ftype := b.Type
	if ftype == 0 {
		ftype = TypeDyn
	}
	var hdr Ehdr
	copy(hdr.Ident[:], Magic)
	hdr.Ident[EIClass] = Class64
	hdr.Ident[EIData] = Data2LSB
	hdr.Ident[EIVersion] = VersionCurrent
	hdr.Type = ftype
	hdr.Machine = MachineX8664
	hdr.Version = VersionCurrent
	hdr.Entry = b.Entry
	hdr.Phoff = EhdrSize
	hdr.Shoff = shoff
	hdr.Ehsize = EhdrSize
	hdr.Phentsize = PhdrSize
	hdr.Phnum = uint16(nPhdr)
	hdr.Shentsize = ShdrSize
	hdr.Shnum = uint16(1 + len(sections))
	hdr.Shstrndx = uint16(len(sections)) // .shstrtab is last
	putStruct(image[0:], &hdr)

	// Program headers.
	phoff := uint64(EhdrSize)
	for _, seg := range segs {
		putStruct(image[phoff:], &Phdr{
			Type: PTLoad, Flags: seg.flags,
			Off: seg.off, Vaddr: seg.vaddr, Paddr: seg.vaddr,
			Filesz: seg.filesz, Memsz: seg.memsz, Align: PageSize,
		})
		phoff += PhdrSize
	}
	if dynamicSec >= 0 {
		d := sections[dynamicSec]
		putStruct(image[phoff:], &Phdr{
			Type: PTDynamic, Flags: PFR | PFW,
			Off: offsets[dynamicSec], Vaddr: d.Addr, Paddr: d.Addr,
			Filesz: uint64(len(d.Data)), Memsz: uint64(len(d.Data)), Align: 8,
		})
	}

	// Section contents.
	for i, s := range sections {
		if s.Type != SHTNobits && len(s.Data) > 0 {
			copy(image[offsets[i]:], s.Data)
		}
	}

	// Section headers (null first).
	shpos := shoff + ShdrSize
	for i, s := range sections {
		size := uint64(len(s.Data))
		if s.Type == SHTNobits {
			size = s.MemSize
		}
		var link uint32
		if s.Link != "" {
			li, err := secIndex(s.Link)
			if err != nil {
				return nil, err
			}
			link = uint32(li)
		}
		var info uint32
		if s.Type == SHTSymtab {
			info = symtabInfo
		}
		align := s.Align
		if align == 0 {
			align = 1
		}
		putStruct(image[shpos:], &Shdr{
			Name: shstr.add(s.Name), Type: s.Type, Flags: s.Flags,
			Addr: s.Addr, Off: offsets[i], Size: size,
			Link: link, Info: info, Addralign: align, Entsize: s.Entsize,
		})
		shpos += ShdrSize
	}

	return image, nil
}

func putStruct(dst []byte, v any) {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, v)
	copy(dst, buf.Bytes())
}
