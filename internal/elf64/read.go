package elf64

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Parse and verification errors.
var (
	// ErrBadMagic is returned when the file does not start with \x7fELF.
	ErrBadMagic = errors.New("elf64: bad magic")
	// ErrBadClass is returned for non-64-bit files.
	ErrBadClass = errors.New("elf64: not an ELF64 file")
	// ErrBadEncoding is returned for big-endian files.
	ErrBadEncoding = errors.New("elf64: not little-endian")
	// ErrBadMachine is returned for non-x86-64 files.
	ErrBadMachine = errors.New("elf64: not an x86-64 binary")
	// ErrNotPIE is returned when the file is not ET_DYN; EnGarde requires
	// position-independent executables (paper §4).
	ErrNotPIE = errors.New("elf64: not a position-independent executable")
	// ErrTruncatedFile is returned when a header points past the end of
	// the file image.
	ErrTruncatedFile = errors.New("elf64: truncated file")
	// ErrNoSymtab is returned by Symbols when the binary is stripped.
	// EnGarde auto-rejects stripped binaries (paper §6).
	ErrNoSymtab = errors.New("elf64: no symbol table (stripped binary)")
)

// Section is a parsed section header plus its name and data.
type Section struct {
	Shdr
	SecName string
	// Data is the raw section content (nil for SHT_NOBITS).
	Data []byte
}

// Symbol is a parsed symbol-table entry with its name resolved.
type Symbol struct {
	Sym
	SymName string
}

// File is a parsed ELF64 image.
type File struct {
	Header   Ehdr
	Progs    []Phdr
	Sections []Section

	raw []byte
}

// Parse reads an ELF64 image from memory. It performs the same header
// verification EnGarde's loader does before disassembly: signature, class,
// encoding, machine and version (paper §4: "checking the signature as well
// as the ELF class of the executable").
func Parse(data []byte) (*File, error) {
	if len(data) < EhdrSize {
		return nil, ErrTruncatedFile
	}
	if string(data[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if data[EIClass] != Class64 {
		return nil, ErrBadClass
	}
	if data[EIData] != Data2LSB {
		return nil, ErrBadEncoding
	}

	f := &File{raw: data}
	if err := binary.Read(bytes.NewReader(data[:EhdrSize]), binary.LittleEndian, &f.Header); err != nil {
		return nil, fmt.Errorf("elf64: reading header: %w", err)
	}
	h := &f.Header
	if h.Machine != MachineX8664 {
		return nil, ErrBadMachine
	}
	if h.Version != VersionCurrent {
		return nil, fmt.Errorf("elf64: unsupported version %d", h.Version)
	}
	if h.Phentsize != 0 && h.Phentsize != PhdrSize {
		return nil, fmt.Errorf("elf64: bad phentsize %d", h.Phentsize)
	}
	if h.Shentsize != 0 && h.Shentsize != ShdrSize {
		return nil, fmt.Errorf("elf64: bad shentsize %d", h.Shentsize)
	}

	// Program headers.
	if h.Phnum > 0 {
		end := h.Phoff + uint64(h.Phnum)*PhdrSize
		if end > uint64(len(data)) || end < h.Phoff {
			return nil, fmt.Errorf("%w: program headers", ErrTruncatedFile)
		}
		f.Progs = make([]Phdr, h.Phnum)
		r := bytes.NewReader(data[h.Phoff:end])
		for i := range f.Progs {
			if err := binary.Read(r, binary.LittleEndian, &f.Progs[i]); err != nil {
				return nil, fmt.Errorf("elf64: reading phdr %d: %w", i, err)
			}
		}
	}

	// Section headers.
	if h.Shnum > 0 {
		end := h.Shoff + uint64(h.Shnum)*ShdrSize
		if end > uint64(len(data)) || end < h.Shoff {
			return nil, fmt.Errorf("%w: section headers", ErrTruncatedFile)
		}
		shdrs := make([]Shdr, h.Shnum)
		r := bytes.NewReader(data[h.Shoff:end])
		for i := range shdrs {
			if err := binary.Read(r, binary.LittleEndian, &shdrs[i]); err != nil {
				return nil, fmt.Errorf("elf64: reading shdr %d: %w", i, err)
			}
		}
		if int(h.Shstrndx) >= len(shdrs) {
			return nil, fmt.Errorf("elf64: shstrndx %d out of range", h.Shstrndx)
		}
		shstr, err := sliceAt(data, shdrs[h.Shstrndx].Off, shdrs[h.Shstrndx].Size)
		if err != nil {
			return nil, fmt.Errorf("elf64: section name table: %w", err)
		}
		f.Sections = make([]Section, h.Shnum)
		for i, sh := range shdrs {
			sec := Section{Shdr: sh}
			sec.SecName = cstring(shstr, sh.Name)
			if sh.Type != SHTNobits && sh.Type != SHTNull {
				d, err := sliceAt(data, sh.Off, sh.Size)
				if err != nil {
					return nil, fmt.Errorf("elf64: section %q: %w", sec.SecName, err)
				}
				sec.Data = d
			}
			f.Sections[i] = sec
		}
	}
	return f, nil
}

// VerifyPIE checks that the file is a position-independent x86-64
// executable, the only format EnGarde's prototype supports.
func (f *File) VerifyPIE() error {
	if f.Header.Type != TypeDyn {
		return ErrNotPIE
	}
	if f.Header.Entry == 0 {
		return errors.New("elf64: no entry point")
	}
	return nil
}

// Section returns the first section with the given name, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].SecName == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// TextSections returns all allocatable executable sections, in file order.
// This mirrors the loader step "reads the program header of the executable
// to extract all text sections" (paper §4).
func (f *File) TextSections() []*Section {
	var out []*Section
	for i := range f.Sections {
		s := &f.Sections[i]
		if s.Type == SHTProgbits && s.Flags&SHFAlloc != 0 && s.Flags&SHFExecinstr != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Symbols parses the .symtab section. It returns ErrNoSymtab for stripped
// binaries, which EnGarde rejects outright.
func (f *File) Symbols() ([]Symbol, error) {
	symtab := f.Section(".symtab")
	if symtab == nil {
		return nil, ErrNoSymtab
	}
	if int(symtab.Link) >= len(f.Sections) {
		return nil, fmt.Errorf("elf64: symtab link %d out of range", symtab.Link)
	}
	strtab := f.Sections[symtab.Link].Data
	if symtab.Size%SymSize != 0 {
		return nil, fmt.Errorf("elf64: symtab size %d not a multiple of %d", symtab.Size, SymSize)
	}
	n := int(symtab.Size / SymSize)
	syms := make([]Symbol, 0, n)
	r := bytes.NewReader(symtab.Data)
	for i := 0; i < n; i++ {
		var s Sym
		if err := binary.Read(r, binary.LittleEndian, &s); err != nil {
			return nil, fmt.Errorf("elf64: reading symbol %d: %w", i, err)
		}
		syms = append(syms, Symbol{Sym: s, SymName: cstring(strtab, s.Name)})
	}
	return syms, nil
}

// Dynamic parses the .dynamic section into tag/value pairs, stopping at
// DT_NULL.
func (f *File) Dynamic() ([]Dyn, error) {
	dyn := f.Section(".dynamic")
	if dyn == nil {
		return nil, errors.New("elf64: no .dynamic section")
	}
	var out []Dyn
	r := bytes.NewReader(dyn.Data)
	for {
		var d Dyn
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			break
		}
		if d.Tag == DTNull {
			break
		}
		out = append(out, d)
	}
	return out, nil
}

// DynValue returns the value of the first dynamic entry with the given tag.
func (f *File) DynValue(tag uint64) (uint64, bool) {
	entries, err := f.Dynamic()
	if err != nil {
		return 0, false
	}
	for _, d := range entries {
		if d.Tag == tag {
			return d.Val, true
		}
	}
	return 0, false
}

// Relocations locates the RELA table through the .dynamic section — the
// address and size of the relocation table come from DT_RELA/DT_RELASZ,
// exactly as the paper's loader does ("the loader determines the address
// and the size of relocation tables ... by reading appropriated entries of
// the .dynamic section").
func (f *File) Relocations() ([]Rela, error) {
	addr, ok := f.DynValue(DTRela)
	if !ok {
		return nil, nil // no relocations
	}
	size, ok := f.DynValue(DTRelasz)
	if !ok {
		return nil, errors.New("elf64: DT_RELA without DT_RELASZ")
	}
	if ent, ok := f.DynValue(DTRelaent); ok && ent != RelaSize {
		return nil, fmt.Errorf("elf64: unsupported DT_RELAENT %d", ent)
	}
	data, err := f.DataAt(addr, size)
	if err != nil {
		return nil, fmt.Errorf("elf64: relocation table: %w", err)
	}
	n := int(size / RelaSize)
	out := make([]Rela, 0, n)
	r := bytes.NewReader(data)
	for i := 0; i < n; i++ {
		var rel Rela
		if err := binary.Read(r, binary.LittleEndian, &rel); err != nil {
			return nil, fmt.Errorf("elf64: reading rela %d: %w", i, err)
		}
		out = append(out, rel)
	}
	return out, nil
}

// DataAt resolves a virtual address range to file bytes using the program
// headers.
func (f *File) DataAt(vaddr, size uint64) ([]byte, error) {
	for _, p := range f.Progs {
		if p.Type != PTLoad {
			continue
		}
		if vaddr >= p.Vaddr && vaddr+size <= p.Vaddr+p.Filesz {
			off := p.Off + (vaddr - p.Vaddr)
			return sliceAt(f.raw, off, size)
		}
	}
	return nil, fmt.Errorf("address %#x (+%d) not mapped by any PT_LOAD", vaddr, size)
}

// Raw returns the underlying file image.
func (f *File) Raw() []byte { return f.raw }

func sliceAt(data []byte, off, size uint64) ([]byte, error) {
	end := off + size
	if end < off || end > uint64(len(data)) {
		return nil, ErrTruncatedFile
	}
	return data[off:end], nil
}

// cstring extracts a NUL-terminated string at the given offset.
func cstring(strtab []byte, off uint32) string {
	if int(off) >= len(strtab) {
		return ""
	}
	end := bytes.IndexByte(strtab[off:], 0)
	if end < 0 {
		return string(strtab[off:])
	}
	return string(strtab[off : int(off)+end])
}
