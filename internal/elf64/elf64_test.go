package elf64

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTestPIE constructs a small but complete PIE image: .text, .data,
// .bss, .dynamic, .rela.dyn, symbols.
func buildTestPIE(t *testing.T, text, data []byte) []byte {
	t.Helper()
	const (
		textAddr = 0x1000
		dataAddr = 0x10000
	)
	relas := []Rela{
		{Off: dataAddr, Info: uint64(RX8664Relative), Addend: textAddr + 8},
	}
	relaBytes := EncodeRelas(relas)
	relaAddr := uint64(dataAddr + len(data))
	dynAddr := relaAddr + uint64(len(relaBytes))
	dynBytes := EncodeDynamic([]Dyn{
		{Tag: DTRela, Val: relaAddr},
		{Tag: DTRelasz, Val: uint64(len(relaBytes))},
		{Tag: DTRelaent, Val: RelaSize},
	})
	bssAddr := dynAddr + uint64(len(dynBytes))

	var b Builder
	b.Entry = textAddr
	b.AddSection(BuildSection{Name: ".text", Type: SHTProgbits,
		Flags: SHFAlloc | SHFExecinstr, Addr: textAddr, Data: text, Align: 16})
	b.AddSection(BuildSection{Name: ".data", Type: SHTProgbits,
		Flags: SHFAlloc | SHFWrite, Addr: dataAddr, Data: data, Align: 8})
	b.AddSection(BuildSection{Name: ".rela.dyn", Type: SHTRela,
		Flags: SHFAlloc | SHFWrite, Addr: relaAddr, Data: relaBytes, Align: 8, Entsize: RelaSize})
	b.AddSection(BuildSection{Name: ".dynamic", Type: SHTDynamic,
		Flags: SHFAlloc | SHFWrite, Addr: dynAddr, Data: dynBytes, Align: 8, Entsize: DynSize})
	b.AddSection(BuildSection{Name: ".bss", Type: SHTNobits,
		Flags: SHFAlloc | SHFWrite, Addr: bssAddr, MemSize: 256, Align: 8})
	b.AddSymbol(BuildSymbol{Name: "_start", Value: textAddr, Size: 16,
		Info: STBGlobal<<4 | STTFunc, Section: ".text"})
	b.AddSymbol(BuildSymbol{Name: "main", Value: textAddr + 16, Size: 32,
		Info: STBGlobal<<4 | STTFunc, Section: ".text"})
	b.AddSymbol(BuildSymbol{Name: "local_helper", Value: textAddr + 48, Size: 8,
		Info: STBLocal<<4 | STTFunc, Section: ".text"})

	img, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return img
}

func TestRoundTrip(t *testing.T) {
	text := bytes.Repeat([]byte{0x90}, 128)
	data := []byte("hello, enclave")
	img := buildTestPIE(t, text, data)

	f, err := Parse(img)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := f.VerifyPIE(); err != nil {
		t.Fatalf("VerifyPIE: %v", err)
	}
	if f.Header.Entry != 0x1000 {
		t.Errorf("entry = %#x", f.Header.Entry)
	}

	sec := f.Section(".text")
	if sec == nil {
		t.Fatal("no .text")
	}
	if !bytes.Equal(sec.Data, text) {
		t.Error(".text content mismatch")
	}
	if sec.Addr != 0x1000 {
		t.Errorf(".text addr = %#x", sec.Addr)
	}

	if got := f.Section(".data"); got == nil || !bytes.Equal(got.Data, data) {
		t.Error(".data content mismatch")
	}

	texts := f.TextSections()
	if len(texts) != 1 || texts[0].SecName != ".text" {
		t.Errorf("TextSections = %v", texts)
	}
}

func TestRoundTripSymbols(t *testing.T) {
	img := buildTestPIE(t, make([]byte, 64), []byte{1, 2, 3})
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatalf("Symbols: %v", err)
	}
	// null + 3 added.
	if len(syms) != 4 {
		t.Fatalf("got %d symbols, want 4", len(syms))
	}
	byName := map[string]Symbol{}
	for _, s := range syms {
		byName[s.SymName] = s
	}
	start, ok := byName["_start"]
	if !ok || start.Value != 0x1000 || start.SymType() != STTFunc {
		t.Errorf("_start = %+v", start)
	}
	if local, ok := byName["local_helper"]; !ok || local.Bind() != STBLocal {
		t.Errorf("local_helper = %+v", local)
	}
	// Locals must precede globals.
	if syms[1].Bind() != STBLocal {
		t.Errorf("symbol 1 should be local, got bind %d", syms[1].Bind())
	}
}

func TestRoundTripRelocations(t *testing.T) {
	img := buildTestPIE(t, make([]byte, 64), make([]byte, 32))
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	relas, err := f.Relocations()
	if err != nil {
		t.Fatalf("Relocations: %v", err)
	}
	if len(relas) != 1 {
		t.Fatalf("got %d relocations, want 1", len(relas))
	}
	r := relas[0]
	if r.RelaType() != RX8664Relative || r.Off != 0x10000 || r.Addend != 0x1008 {
		t.Errorf("rela = %+v", r)
	}
}

func TestRoundTripDynamic(t *testing.T) {
	img := buildTestPIE(t, make([]byte, 64), make([]byte, 32))
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := f.DynValue(DTRelaent); !ok || v != RelaSize {
		t.Errorf("DT_RELAENT = %d, %v", v, ok)
	}
	if _, ok := f.DynValue(DTFlags); ok {
		t.Error("DT_FLAGS should be absent")
	}
}

func TestParseRejectsBadInputs(t *testing.T) {
	good := buildTestPIE(t, make([]byte, 64), make([]byte, 16))

	tests := []struct {
		name   string
		mutate func([]byte)
		want   error
	}{
		{"bad magic", func(b []byte) { b[0] = 'X' }, ErrBadMagic},
		{"bad class", func(b []byte) { b[EIClass] = 1 }, ErrBadClass},
		{"big endian", func(b []byte) { b[EIData] = 2 }, ErrBadEncoding},
		{"wrong machine", func(b []byte) { binary.LittleEndian.PutUint16(b[18:], 3) }, ErrBadMachine},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := append([]byte(nil), good...)
			tt.mutate(img)
			if _, err := Parse(img); err != tt.want {
				t.Errorf("Parse = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestParseTruncated(t *testing.T) {
	img := buildTestPIE(t, make([]byte, 64), make([]byte, 16))
	for _, n := range []int{0, 10, EhdrSize - 1, EhdrSize + 3, len(img) / 2} {
		if _, err := Parse(img[:n]); err == nil {
			t.Errorf("Parse(%d bytes): expected error", n)
		}
	}
}

func TestVerifyPIERejectsExec(t *testing.T) {
	var b Builder
	b.Entry = 0x1000
	b.Type = TypeExec
	b.AddSection(BuildSection{Name: ".text", Type: SHTProgbits,
		Flags: SHFAlloc | SHFExecinstr, Addr: 0x1000, Data: make([]byte, 16)})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyPIE(); err != ErrNotPIE {
		t.Errorf("VerifyPIE = %v, want ErrNotPIE", err)
	}
}

func TestStrippedBinaryRejected(t *testing.T) {
	var b Builder
	b.Entry = 0x1000
	b.AddSection(BuildSection{Name: ".text", Type: SHTProgbits,
		Flags: SHFAlloc | SHFExecinstr, Addr: 0x1000, Data: make([]byte, 16)})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Symbols(); err != ErrNoSymtab {
		t.Errorf("Symbols = %v, want ErrNoSymtab", err)
	}
}

func TestDataAt(t *testing.T) {
	text := make([]byte, 64)
	for i := range text {
		text[i] = byte(i)
	}
	img := buildTestPIE(t, text, make([]byte, 16))
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.DataAt(0x1010, 8)
	if err != nil {
		t.Fatalf("DataAt: %v", err)
	}
	if !bytes.Equal(got, text[0x10:0x18]) {
		t.Errorf("DataAt = % x", got)
	}
	if _, err := f.DataAt(0x999999, 1); err == nil {
		t.Error("expected unmapped-address error")
	}
}

func TestPhdrCongruence(t *testing.T) {
	img := buildTestPIE(t, make([]byte, 100), make([]byte, 50))
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	var loads int
	for _, p := range f.Progs {
		if p.Type != PTLoad {
			continue
		}
		loads++
		if p.Off%PageSize != p.Vaddr%PageSize {
			t.Errorf("segment off %#x / vaddr %#x break page congruence", p.Off, p.Vaddr)
		}
		if p.Memsz < p.Filesz {
			t.Errorf("memsz %d < filesz %d", p.Memsz, p.Filesz)
		}
	}
	if loads != 2 {
		t.Errorf("got %d PT_LOAD segments, want 2 (RX + RW)", loads)
	}
	// Exactly one PT_DYNAMIC.
	var dyns int
	for _, p := range f.Progs {
		if p.Type == PTDynamic {
			dyns++
		}
	}
	if dyns != 1 {
		t.Errorf("got %d PT_DYNAMIC, want 1", dyns)
	}
}

// TestQuickWriterReaderIdentity: for random section contents, Build→Parse
// returns identical bytes and addresses.
func TestQuickWriterReaderIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		text := make([]byte, 1+r.Intn(4096))
		data := make([]byte, 1+r.Intn(2048))
		r.Read(text)
		r.Read(data)

		var b Builder
		b.Entry = 0x1000
		b.AddSection(BuildSection{Name: ".text", Type: SHTProgbits,
			Flags: SHFAlloc | SHFExecinstr, Addr: 0x1000, Data: text, Align: 16})
		dataAddr := uint64(0x1000+len(text)+PageSize) &^ (PageSize - 1)
		b.AddSection(BuildSection{Name: ".data", Type: SHTProgbits,
			Flags: SHFAlloc | SHFWrite, Addr: dataAddr, Data: data, Align: 8})
		img, err := b.Build()
		if err != nil {
			t.Errorf("seed %d: Build: %v", seed, err)
			return false
		}
		pf, err := Parse(img)
		if err != nil {
			t.Errorf("seed %d: Parse: %v", seed, err)
			return false
		}
		ts := pf.Section(".text")
		ds := pf.Section(".data")
		if ts == nil || ds == nil {
			t.Errorf("seed %d: missing sections", seed)
			return false
		}
		if !bytes.Equal(ts.Data, text) || !bytes.Equal(ds.Data, data) {
			t.Errorf("seed %d: content mismatch", seed)
			return false
		}
		if ts.Addr != 0x1000 || ds.Addr != dataAddr {
			t.Errorf("seed %d: address mismatch", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
