package elf64

import (
	"bytes"
	"encoding/binary"
)

// ExecSegmentHint locates the unique executable PT_LOAD of an ELF64 image,
// derived from a prefix of the file — enough for a streaming receiver to
// know which byte range holds the text before the rest of the image
// arrives.
type ExecSegmentHint struct {
	Off    uint64 // file offset of the segment
	Filesz uint64 // bytes of the segment present in the file
	Vaddr  uint64 // link-time virtual address
}

// SniffExecSegment inspects an image prefix for the executable PT_LOAD.
// It returns (hint, true, true) once the ELF and program headers are
// available and name exactly one PF_X load segment; (_, false, true) when
// the prefix is definitively not such an image (bad magic, wrong class, no
// or ambiguous executable segment); and (_, false, false) when the prefix
// is simply too short to tell yet — feed more bytes and retry.
//
// This is a hint, not a verification: the streaming pipeline that acts on
// it re-validates against the full Parse of the completed image and
// discards speculative work on any mismatch.
func SniffExecSegment(prefix []byte) (ExecSegmentHint, bool, bool) {
	if len(prefix) < EhdrSize {
		return ExecSegmentHint{}, false, false
	}
	if string(prefix[:4]) != Magic || prefix[EIClass] != Class64 || prefix[EIData] != Data2LSB {
		return ExecSegmentHint{}, false, true
	}
	var h Ehdr
	if err := binary.Read(bytes.NewReader(prefix[:EhdrSize]), binary.LittleEndian, &h); err != nil {
		return ExecSegmentHint{}, false, true
	}
	if h.Machine != MachineX8664 || h.Phnum == 0 {
		return ExecSegmentHint{}, false, true
	}
	end := h.Phoff + uint64(h.Phnum)*PhdrSize
	if end < h.Phoff { // overflow: never satisfiable
		return ExecSegmentHint{}, false, true
	}
	if end > uint64(len(prefix)) {
		return ExecSegmentHint{}, false, false
	}
	var hint ExecSegmentHint
	found := false
	r := bytes.NewReader(prefix[h.Phoff:end])
	for i := 0; i < int(h.Phnum); i++ {
		var ph Phdr
		if err := binary.Read(r, binary.LittleEndian, &ph); err != nil {
			return ExecSegmentHint{}, false, true
		}
		if ph.Type != PTLoad || ph.Flags&PFX == 0 {
			continue
		}
		if found { // ambiguous: more than one executable segment
			return ExecSegmentHint{}, false, true
		}
		found = true
		hint = ExecSegmentHint{Off: ph.Off, Filesz: ph.Filesz, Vaddr: ph.Vaddr}
	}
	if !found || hint.Filesz == 0 || hint.Off+hint.Filesz < hint.Off {
		return ExecSegmentHint{}, false, true
	}
	return hint, true, true
}
