// Package elf64 implements a from-scratch reader and writer for 64-bit ELF
// executables, covering exactly the structures EnGarde's in-enclave loader
// consumes (paper §4): the ELF header, program headers, section headers,
// symbol tables, the .dynamic section and RELA relocation tables.
//
// The writer half is used by the synthetic toolchain (internal/toolchain)
// to produce statically-linked position-independent executables, so that
// the reader half — the code under test — parses real binaries rather than
// mocks.
package elf64

// ELF identification and header constants (System V ABI, ELF-64 object
// file format).
const (
	// Magic is the 4-byte ELF signature.
	Magic = "\x7fELF"

	// e_ident indices.
	EIClass   = 4
	EIData    = 5
	EIVersion = 6
	EIOSABI   = 7

	// Classes.
	Class64 = 2

	// Data encodings.
	Data2LSB = 1 // little-endian

	// Object file types.
	TypeNone = 0
	TypeRel  = 1
	TypeExec = 2
	TypeDyn  = 3 // shared object / position-independent executable

	// Machines.
	MachineX8664 = 62

	// Current version.
	VersionCurrent = 1

	// Fixed structure sizes.
	EhdrSize = 64
	PhdrSize = 56
	ShdrSize = 64
	SymSize  = 24
	DynSize  = 16
	RelaSize = 24
)

// Program header types and flags.
const (
	PTNull    = 0
	PTLoad    = 1
	PTDynamic = 2

	PFX = 1 // executable
	PFW = 2 // writable
	PFR = 4 // readable
)

// Section header types.
const (
	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTRela     = 4
	SHTDynamic  = 6
	SHTNobits   = 8
)

// Section flags.
const (
	SHFWrite     = 1
	SHFAlloc     = 2
	SHFExecinstr = 4
)

// Dynamic table tags.
const (
	DTNull    = 0
	DTStrtab  = 5
	DTSymtab  = 6
	DTRela    = 7
	DTRelasz  = 8
	DTRelaent = 9
	DTFlags   = 30
)

// Relocation types (x86-64).
const (
	// RX8664Relative is R_X86_64_RELATIVE: *(u64*)(base+r_offset) =
	// base + r_addend. The only relocation a statically-linked PIE needs.
	RX8664Relative = 8
)

// Symbol binding and type encodings (st_info = binding<<4 | type).
const (
	STBLocal  = 0
	STBGlobal = 1

	STTNotype = 0
	STTObject = 1
	STTFunc   = 2
)

// SHNUndef is the undefined-section index.
const SHNUndef = 0

// Ehdr is the ELF-64 file header. Field order and widths match the on-disk
// layout so the struct can be serialized directly.
type Ehdr struct {
	Ident     [16]byte
	Type      uint16
	Machine   uint16
	Version   uint32
	Entry     uint64
	Phoff     uint64
	Shoff     uint64
	Flags     uint32
	Ehsize    uint16
	Phentsize uint16
	Phnum     uint16
	Shentsize uint16
	Shnum     uint16
	Shstrndx  uint16
}

// Phdr is an ELF-64 program header.
type Phdr struct {
	Type   uint32
	Flags  uint32
	Off    uint64
	Vaddr  uint64
	Paddr  uint64
	Filesz uint64
	Memsz  uint64
	Align  uint64
}

// Shdr is an ELF-64 section header.
type Shdr struct {
	Name      uint32
	Type      uint32
	Flags     uint64
	Addr      uint64
	Off       uint64
	Size      uint64
	Link      uint32
	Info      uint32
	Addralign uint64
	Entsize   uint64
}

// Sym is an ELF-64 symbol table entry.
type Sym struct {
	Name  uint32
	Info  uint8
	Other uint8
	Shndx uint16
	Value uint64
	Size  uint64
}

// Bind returns the symbol binding (upper nibble of Info).
func (s Sym) Bind() uint8 { return s.Info >> 4 }

// SymType returns the symbol type (lower nibble of Info).
func (s Sym) SymType() uint8 { return s.Info & 0xf }

// Dyn is an entry of the .dynamic section.
type Dyn struct {
	Tag uint64
	Val uint64
}

// Rela is an ELF-64 relocation with addend.
type Rela struct {
	Off    uint64
	Info   uint64
	Addend int64
}

// RelaType returns the relocation type (low 32 bits of Info).
func (r Rela) RelaType() uint32 { return uint32(r.Info) }

// RelaSym returns the symbol index (high 32 bits of Info).
func (r Rela) RelaSym() uint32 { return uint32(r.Info >> 32) }
