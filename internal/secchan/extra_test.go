package secchan

import (
	"bytes"
	"testing"
)

// TestSessionExtraRoundTrip covers the authenticated session-open field:
// bytes wrapped alongside the AES key under the enclave's public key come
// back intact from the enclave-side unwrap — and only from it.
func TestSessionExtraRoundTrip(t *testing.T) {
	ek, err := GenerateEnclaveKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ek.PublicDER()
	if err != nil {
		t.Fatal(err)
	}

	extra := []byte("trace-context-goes-here-25-bytes!")
	client, wrapped, err := WrapSessionKeyExtra(pub, nil, extra)
	if err != nil {
		t.Fatal(err)
	}
	enclave, got, err := ek.UnwrapSessionKeyExtra(wrapped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, extra) {
		t.Fatalf("extra round trip = %q, want %q", got, extra)
	}

	// The channel still works end to end with extra present.
	ct, err := client.Seal([]byte("content"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := enclave.Open(ct); err != nil || string(pt) != "content" {
		t.Fatalf("Open = %q, %v", pt, err)
	}
}

func TestSessionExtraEmptyIsLegacy(t *testing.T) {
	ek, err := GenerateEnclaveKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ek.PublicDER()
	if err != nil {
		t.Fatal(err)
	}
	// A legacy 32-byte wrap yields nil extra from the extended unwrap.
	_, wrapped, err := WrapSessionKey(pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, extra, err := ek.UnwrapSessionKeyExtra(wrapped, nil); err != nil || extra != nil {
		t.Fatalf("legacy wrap: extra = %v, err = %v", extra, err)
	}
}

func TestSessionExtraTooLong(t *testing.T) {
	ek, err := GenerateEnclaveKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ek.PublicDER()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := WrapSessionKeyExtra(pub, nil, make([]byte, MaxSessionExtra+1)); err == nil {
		t.Fatal("oversized extra accepted (would overflow the OAEP plaintext cap)")
	}
	if _, _, err := WrapSessionKeyExtra(pub, nil, make([]byte, MaxSessionExtra)); err != nil {
		t.Fatalf("max-size extra rejected: %v", err)
	}
}
