package secchan

import (
	"bytes"
	"testing"
)

// BenchmarkRecvStream measures the streaming receive path, the gateway's
// per-connection hot loop: frame buffers are pooled and GCM decryption
// runs in place, so steady-state allocs/op should be dominated by the one
// payload buffer handed to the caller.
func BenchmarkRecvStream(b *testing.B) {
	sender, err := newSession(bytes.Repeat([]byte{7}, AESKeySize), nil)
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 1<<20)
	var wire bytes.Buffer
	if err := sender.SendStream(&wire, payload, 64*1024); err != nil {
		b.Fatal(err)
	}
	frames := wire.Bytes()

	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recv, err := newSession(bytes.Repeat([]byte{7}, AESKeySize), nil)
		if err != nil {
			b.Fatal(err)
		}
		out, err := recv.RecvStream(bytes.NewReader(frames))
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(payload) {
			b.Fatalf("got %d bytes, want %d", len(out), len(payload))
		}
	}
}
