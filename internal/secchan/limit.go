package secchan

// Per-frame idle deadlines and a total session budget.
//
// A single whole-session deadline punishes the wrong peers: a healthy
// client streaming a large image through a slow link gets cut off, while a
// malicious one can hold a serving worker for the entire deadline by
// trickling one byte at a time. Limited splits the two concerns: every
// Read/Write refreshes a short *idle* deadline (progress keeps a session
// alive, silence kills it within idle), and a separate total *budget*
// bounds the whole session no matter how steadily the peer trickles.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// Timeout errors. Both wrap the transport's deadline error, so callers can
// match the typed reason (errors.Is(err, ErrIdleTimeout)) or the generic
// os.ErrDeadlineExceeded.
var (
	// ErrIdleTimeout: the peer made no progress for a whole idle interval.
	ErrIdleTimeout = errors.New("secchan: idle deadline exceeded")
	// ErrSessionBudget: the session outlived its total time budget.
	ErrSessionBudget = errors.New("secchan: session budget exhausted")
)

// DeadlineRW is a stream with per-direction deadlines; net.Conn satisfies
// it.
type DeadlineRW interface {
	io.ReadWriter
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Limited enforces the idle/budget pair over a DeadlineRW. It is not safe
// for concurrent use, matching Session.
type Limited struct {
	c        DeadlineRW
	idle     time.Duration // <= 0: no idle deadline
	deadline time.Time     // zero: no budget
}

// NewLimited wraps c: each Read/Write arms a deadline of now+idle, capped
// at the absolute session deadline now+budget. idle <= 0 disables the idle
// deadline, budget <= 0 the session budget; with both disabled the wrapper
// is transparent.
func NewLimited(c DeadlineRW, idle, budget time.Duration) *Limited {
	l := &Limited{c: c, idle: idle}
	if budget > 0 {
		l.deadline = time.Now().Add(budget)
	}
	return l
}

// arm installs the deadline for the next operation.
func (l *Limited) arm(set func(time.Time) error) error {
	now := time.Now()
	if !l.deadline.IsZero() && !now.Before(l.deadline) {
		return ErrSessionBudget
	}
	var dl time.Time
	if l.idle > 0 {
		dl = now.Add(l.idle)
	}
	if !l.deadline.IsZero() && (dl.IsZero() || l.deadline.Before(dl)) {
		dl = l.deadline
	}
	if dl.IsZero() {
		return nil
	}
	return set(dl)
}

// classify wraps a transport timeout with the typed reason: budget if the
// session deadline has passed, idle otherwise.
func (l *Limited) classify(err error) error {
	if err == nil || !isTimeout(err) {
		return err
	}
	if !l.deadline.IsZero() && !time.Now().Before(l.deadline) {
		return fmt.Errorf("%w: %w", ErrSessionBudget, err)
	}
	return fmt.Errorf("%w: %w", ErrIdleTimeout, err)
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (l *Limited) Read(b []byte) (int, error) {
	if err := l.arm(l.c.SetReadDeadline); err != nil {
		return 0, err
	}
	n, err := l.c.Read(b)
	return n, l.classify(err)
}

func (l *Limited) Write(b []byte) (int, error) {
	if err := l.arm(l.c.SetWriteDeadline); err != nil {
		return 0, err
	}
	n, err := l.c.Write(b)
	return n, l.classify(err)
}
