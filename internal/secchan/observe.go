package secchan

import (
	"io"
	"time"
)

// FrameObserver receives one callback per framed block moved over an
// observed stream, with the frame's full wire size (4-byte length header +
// body). The telemetry layer implements it with histograms; observations
// happen on the session's serving goroutine, so implementations must be
// cheap and need only be as concurrent as the stream itself.
type FrameObserver interface {
	ObserveReadFrame(bytes int)
	ObserveWriteFrame(bytes int)
}

// FrameTimeObserver extends FrameObserver with the monotonic completion
// time of each frame, so first-byte-to-verdict and inter-frame gap
// distributions derive from one clock source instead of a second
// time.Now() at the call site. An observer implementing it receives only
// the timestamped callbacks (never both forms for one frame); at is the
// instant the frame's last body byte was read or written.
type FrameTimeObserver interface {
	FrameObserver
	ObserveReadFrameAt(bytes int, at time.Time)
	ObserveWriteFrameAt(bytes int, at time.Time)
}

// Observed couples a stream with a FrameObserver. The framing functions
// (WriteBlock/ReadBlock and the streaming receive path) type-assert their
// io.Reader/io.Writer against FrameObserver, so wrapping a connection with
// ObserveFrames is all a serving layer does to get per-frame size
// telemetry — the protocol code itself stays observer-free.
type Observed struct {
	io.ReadWriter
	obs FrameObserver
}

// ObserveFrames wraps rw so every framed block read or written through it
// is reported to obs. A nil obs returns rw unchanged.
func ObserveFrames(rw io.ReadWriter, obs FrameObserver) io.ReadWriter {
	if obs == nil {
		return rw
	}
	return &Observed{ReadWriter: rw, obs: obs}
}

// ObserveReadFrame implements FrameObserver by delegation, which is what
// lets the framing functions discover the observer via type assertion.
func (o *Observed) ObserveReadFrame(n int) { o.obs.ObserveReadFrame(n) }

// ObserveWriteFrame implements FrameObserver by delegation.
func (o *Observed) ObserveWriteFrame(n int) { o.obs.ObserveWriteFrame(n) }

// ObserveReadFrameAt forwards the timestamped callback when the wrapped
// observer wants one, and downgrades to the plain callback otherwise — so
// ObserveFrames works unchanged for both observer generations.
func (o *Observed) ObserveReadFrameAt(n int, at time.Time) {
	if t, ok := o.obs.(FrameTimeObserver); ok {
		t.ObserveReadFrameAt(n, at)
		return
	}
	o.obs.ObserveReadFrame(n)
}

// ObserveWriteFrameAt is the write-side timestamped delegation.
func (o *Observed) ObserveWriteFrameAt(n int, at time.Time) {
	if t, ok := o.obs.(FrameTimeObserver); ok {
		t.ObserveWriteFrameAt(n, at)
		return
	}
	o.obs.ObserveWriteFrame(n)
}

// frameHeaderBytes is the wire overhead counted into observed frame sizes.
const frameHeaderBytes = 4

func observeRead(r io.Reader, body int) {
	if o, ok := r.(FrameTimeObserver); ok {
		o.ObserveReadFrameAt(frameHeaderBytes+body, time.Now())
		return
	}
	if o, ok := r.(FrameObserver); ok {
		o.ObserveReadFrame(frameHeaderBytes + body)
	}
}

func observeWrite(w io.Writer, body int) {
	if o, ok := w.(FrameTimeObserver); ok {
		o.ObserveWriteFrameAt(frameHeaderBytes+body, time.Now())
		return
	}
	if o, ok := w.(FrameObserver); ok {
		o.ObserveWriteFrame(frameHeaderBytes + body)
	}
}
