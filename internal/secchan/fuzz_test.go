package secchan

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"
)

// fuzzKey is the fixed session key used by FuzzReadFrame: GCM with a
// deterministic nonce sequence makes sealed frames reproducible, so seed
// inputs can exercise the success paths, not just rejections.
var fuzzKey = bytes.Repeat([]byte{0x42}, AESKeySize)

func fuzzSession(t testing.TB) *Session {
	t.Helper()
	s, err := newSession(fuzzKey, nil)
	if err != nil {
		t.Fatalf("newSession: %v", err)
	}
	return s
}

// sealStream returns the wire bytes SendStream produces for payload under
// the fixed fuzz key, starting from sequence zero.
func sealStream(t testing.TB, payload []byte, blockSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fuzzSession(t).SendStream(&buf, payload, blockSize); err != nil {
		t.Fatalf("SendStream: %v", err)
	}
	return buf.Bytes()
}

// sealStreamHeader returns a validly sealed stream whose header claims
// total bytes, followed by the given sealed body frames (possibly none):
// the shape a misbehaving peer uses to lie about the payload length.
func sealStreamHeader(t testing.TB, total uint64, bodies ...[]byte) []byte {
	t.Helper()
	s := fuzzSession(t)
	var buf bytes.Buffer
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], total)
	if err := s.SendSealed(&buf, hdr[:]); err != nil {
		t.Fatalf("SendSealed header: %v", err)
	}
	for _, body := range bodies {
		if err := s.SendSealed(&buf, body); err != nil {
			t.Fatalf("SendSealed body: %v", err)
		}
	}
	return buf.Bytes()
}

func fuzzReadFrameSeeds(t testing.TB) [][]byte {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteBlock(&buf, payload); err != nil {
			t.Fatalf("WriteBlock: %v", err)
		}
		return buf.Bytes()
	}
	oversized := make([]byte, 4)
	binary.BigEndian.PutUint32(oversized, MaxBlock+65)
	return [][]byte{
		frame([]byte("hello")),
		frame(nil),
		frame(bytes.Repeat([]byte{0xAB}, 1024)),
		frame([]byte("truncated"))[:6], // header promises more than follows
		oversized,                      // frame length over the MaxBlock cap
		{0x00, 0x00},                   // truncated header
		sealStream(t, []byte("small payload"), 4),
		sealStream(t, bytes.Repeat([]byte{0xCD}, 300), 100),
		sealStream(t, nil, 64),
		sealStreamHeader(t, 1<<30),             // max claimed length, no body
		sealStreamHeader(t, (1<<30)+1),         // over the payload cap
		sealStreamHeader(t, 10, nil, nil, nil), // sealed empty blocks
		sealStreamHeader(t, 4, []byte("toolong")),
	}
}

// FuzzReadFrame asserts the receive side of the provisioning wire protocol
// on arbitrary bytes: ReadBlock (which carries every JSON protocol message)
// and RecvStream (which carries the encrypted content transfer) must return
// an error or a bounded result — never panic, hang, or let a peer-claimed
// length drive allocation past the frame cap.
func FuzzReadFrame(f *testing.F) {
	for _, seed := range fuzzReadFrameSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if blk, err := ReadBlock(bytes.NewReader(data)); err == nil {
			if len(blk) > MaxBlock+64 {
				t.Fatalf("ReadBlock accepted %d-byte block over cap", len(blk))
			}
		}
		recv, err := newSession(fuzzKey, nil)
		if err != nil {
			t.Fatalf("newSession: %v", err)
		}
		if payload, err := recv.RecvStream(bytes.NewReader(data)); err == nil {
			if uint64(len(payload)) > 1<<30 {
				t.Fatalf("RecvStream accepted %d-byte payload over cap", len(payload))
			}
		}
	})
}

// TestRecvStreamZeroLengthBlocks pins the fix for the receive-loop hang:
// a peer that streams validly sealed empty blocks after the length header
// makes no progress toward the claimed total, and an unfixed receiver on a
// live connection would spin on them forever. RecvStream must reject the
// first empty block instead.
func TestRecvStreamZeroLengthBlocks(t *testing.T) {
	sender := fuzzSession(t)
	recv := fuzzSession(t)

	pr, pw := io.Pipe()
	defer pr.Close()
	go func() {
		defer pw.Close()
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], 10)
		if err := sender.SendSealed(pw, hdr[:]); err != nil {
			return
		}
		for { // a misbehaving peer never stops sending empty blocks
			if err := sender.SendSealed(pw, nil); err != nil {
				return
			}
		}
	}()

	type result struct {
		payload []byte
		err     error
	}
	done := make(chan result, 1)
	go func() {
		payload, err := recv.RecvStream(pr)
		done <- result{payload, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			t.Fatalf("RecvStream accepted empty-block stream: %d bytes", len(res.payload))
		}
		if !strings.Contains(res.err.Error(), "empty stream block") {
			t.Fatalf("RecvStream error = %v, want empty stream block rejection", res.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RecvStream hung on zero-length blocks")
	}
}

// TestRecvStreamHeaderAllocation pins the fix for the allocation bomb: the
// stream header is peer-claimed and arrives before any payload, so a forged
// maximum-length header must not reserve a gigabyte up front.
func TestRecvStreamHeaderAllocation(t *testing.T) {
	wire := sealStreamHeader(t, 1<<30) // claims 1 GiB, carries nothing
	recv := fuzzSession(t)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := recv.RecvStream(bytes.NewReader(wire))
	runtime.ReadMemStats(&after)

	if err == nil {
		t.Fatal("RecvStream accepted a truncated 1 GiB stream")
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("RecvStream error = %v, want EOF after header", err)
	}
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 16<<20 {
		t.Fatalf("RecvStream allocated %d bytes for an empty stream with a forged header", delta)
	}
}

// TestRecvStreamOverlongBody covers the complementary direction: a body
// that overshoots the claimed total is rejected, not silently truncated.
func TestRecvStreamOverlongBody(t *testing.T) {
	wire := sealStreamHeader(t, 4, []byte("toolong"))
	recv := fuzzSession(t)
	_, err := recv.RecvStream(bytes.NewReader(wire))
	if err == nil || !strings.Contains(err.Error(), "stream length") {
		t.Fatalf("RecvStream error = %v, want length mismatch", err)
	}
}
