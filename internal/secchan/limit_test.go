package secchan

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestLimitedIdleTimeout: a silent peer is cut off within roughly the idle
// interval, long before any session budget.
func TestLimitedIdleTimeout(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	l := NewLimited(srv, 50*time.Millisecond, time.Minute)
	start := time.Now()
	_, err := l.Read(make([]byte, 1))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("error = %v, want ErrIdleTimeout", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("error %v should also match os.ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("idle cut-off took %v", elapsed)
	}
}

// TestLimitedBudgetStopsTrickler: a peer that keeps making 1-byte progress
// within the idle window is still bounded by the total session budget.
func TestLimitedBudgetStopsTrickler(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			cli.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := cli.Write([]byte{'x'}); err != nil {
				cli.Close()
				return
			}
			select {
			case <-stop:
				cli.Close()
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()

	l := NewLimited(srv, time.Minute, 150*time.Millisecond)
	var got int
	var err error
	start := time.Now()
	for {
		_, err = l.Read(make([]byte, 1))
		if err != nil {
			break
		}
		got++
		if got > 10000 {
			t.Fatal("trickler never cut off")
		}
	}
	if !errors.Is(err, ErrSessionBudget) {
		t.Fatalf("error = %v after %d bytes, want ErrSessionBudget", err, got)
	}
	if got == 0 {
		t.Fatal("no progress before the budget fired; trickle never started")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("budget cut-off took %v", elapsed)
	}
}

// TestLimitedSteadyTransferSurvives: a transfer that keeps making progress
// within the idle window completes even though it takes several idle
// intervals end to end.
func TestLimitedSteadyTransferSurvives(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	const chunks = 8
	go func() {
		for i := 0; i < chunks; i++ {
			time.Sleep(20 * time.Millisecond) // well inside idle
			cli.Write([]byte{byte(i)})
		}
	}()

	l := NewLimited(srv, 200*time.Millisecond, time.Minute)
	buf := make([]byte, 1)
	for i := 0; i < chunks; i++ {
		if _, err := l.Read(buf); err != nil {
			t.Fatalf("chunk %d: %v (steady progress must survive idle refresh)", i, err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("chunk %d: got %d", i, buf[0])
		}
	}
}

// TestLimitedDisabled: zero idle and budget make the wrapper transparent.
func TestLimitedDisabled(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go cli.Write([]byte("ok"))
	l := NewLimited(srv, 0, 0)
	buf := make([]byte, 2)
	if _, err := l.Read(buf); err != nil || string(buf) != "ok" {
		t.Fatalf("Read = %q, %v", buf, err)
	}
}

// TestLimitedWriteBudget: writes are budgeted too — a peer that never
// reads cannot pin the sender past the session budget.
func TestLimitedWriteBudget(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	l := NewLimited(srv, time.Minute, 100*time.Millisecond)
	var err error
	for i := 0; i < 100; i++ {
		if _, err = l.Write(make([]byte, 1024)); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrSessionBudget) && !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("error = %v, want a typed timeout", err)
	}
}
