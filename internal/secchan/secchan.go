// Package secchan implements the end-to-end encrypted provisioning channel
// of the EnGarde protocol (paper §3): the bootstrap code in a fresh enclave
// generates a 2048-bit RSA key pair and sends the public key to the client;
// the client generates a 256-bit AES key, encrypts it under the enclave's
// public key, and sends it back; all subsequent content flows in encrypted
// blocks under that AES key.
//
// The enclave side is Endpoint with role RoleEnclave; the client side is
// Endpoint with role RoleClient. Framing is length-prefixed blocks suitable
// for any io.ReadWriter (net.Conn in the examples and cmd tools).
package secchan

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"engarde/internal/cycles"
)

// RSABits is the enclave key size mandated by the paper.
const RSABits = 2048

// AESKeySize is the 256-bit session key size mandated by the paper.
const AESKeySize = 32

// MaxBlock bounds a single framed block (plaintext size).
const MaxBlock = 1 << 20

// Channel errors.
var (
	// ErrBlockTooLarge is returned when a frame exceeds MaxBlock.
	ErrBlockTooLarge = errors.New("secchan: block too large")
	// ErrNoSessionKey is returned when encryption is attempted before the
	// AES key exchange completed.
	ErrNoSessionKey = errors.New("secchan: session key not established")
)

// EnclaveKey is the enclave-resident RSA key pair generated at bootstrap.
type EnclaveKey struct {
	priv *rsa.PrivateKey
}

// GenerateEnclaveKey generates the enclave's ephemeral 2048-bit RSA pair.
// counter, if non-nil, is charged one RSA operation.
func GenerateEnclaveKey(counter *cycles.Counter) (*EnclaveKey, error) {
	priv, err := rsa.GenerateKey(rand.Reader, RSABits)
	if err != nil {
		return nil, fmt.Errorf("secchan: generating RSA key: %w", err)
	}
	if counter != nil {
		counter.Charge(cycles.PhaseProvision, cycles.UnitRSAOp, 1)
	}
	return &EnclaveKey{priv: priv}, nil
}

// PublicDER returns the PKIX DER encoding of the public key, the form sent
// to the client and bound into the attestation quote.
func (k *EnclaveKey) PublicDER() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(&k.priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("secchan: marshaling public key: %w", err)
	}
	return der, nil
}

// MaxSessionExtra bounds the opaque session-open field WrapSessionKeyExtra
// can carry next to the AES key: the RSA-2048/SHA-256 OAEP plaintext cap
// (190 bytes) minus the 32-byte key.
const MaxSessionExtra = RSABits/8 - 2*sha256.Size - 2 - AESKeySize

// UnwrapSessionKey decrypts the client's wrapped AES key, discarding any
// session-open extra field the client attached.
func (k *EnclaveKey) UnwrapSessionKey(wrapped []byte, counter *cycles.Counter) (*Session, error) {
	sess, _, err := k.UnwrapSessionKeyExtra(wrapped, counter)
	return sess, err
}

// UnwrapSessionKeyExtra decrypts the client's wrapped AES key and returns
// the session-open extra field that rode with it (nil when the client sent
// a bare 32-byte key — every pre-extra client). Because the whole OAEP
// plaintext is decrypted and integrity-checked under the enclave's private
// key, the extra bytes carry the same authenticity as the session key
// itself: an on-path router can read neither and forge neither.
func (k *EnclaveKey) UnwrapSessionKeyExtra(wrapped []byte, counter *cycles.Counter) (*Session, []byte, error) {
	plain, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, k.priv, wrapped, []byte("engarde-session"))
	if err != nil {
		return nil, nil, fmt.Errorf("secchan: unwrapping session key: %w", err)
	}
	if len(plain) < AESKeySize {
		return nil, nil, fmt.Errorf("secchan: wrapped payload is %d bytes, want at least %d", len(plain), AESKeySize)
	}
	if counter != nil {
		counter.Charge(cycles.PhaseProvision, cycles.UnitRSAOp, 1)
	}
	key, extra := plain[:AESKeySize], plain[AESKeySize:]
	sess, err := newSession(key, counter)
	if err != nil {
		return nil, nil, err
	}
	if len(extra) == 0 {
		extra = nil
	}
	return sess, extra, nil
}

// WrapSessionKey is the client side: generate a fresh 256-bit AES key and
// encrypt it under the enclave's public key.
func WrapSessionKey(enclavePubDER []byte, counter *cycles.Counter) (*Session, []byte, error) {
	return WrapSessionKeyExtra(enclavePubDER, counter, nil)
}

// WrapSessionKeyExtra is WrapSessionKey with an opaque session-open field
// (at most MaxSessionExtra bytes) appended to the OAEP plaintext after the
// AES key — the authenticated carriage for the client's trace context.
func WrapSessionKeyExtra(enclavePubDER []byte, counter *cycles.Counter, extra []byte) (*Session, []byte, error) {
	if len(extra) > MaxSessionExtra {
		return nil, nil, fmt.Errorf("secchan: session extra is %d bytes, max %d", len(extra), MaxSessionExtra)
	}
	pubAny, err := x509.ParsePKIXPublicKey(enclavePubDER)
	if err != nil {
		return nil, nil, fmt.Errorf("secchan: parsing enclave public key: %w", err)
	}
	pub, ok := pubAny.(*rsa.PublicKey)
	if !ok {
		return nil, nil, errors.New("secchan: enclave key is not RSA")
	}
	key := make([]byte, AESKeySize, AESKeySize+len(extra))
	if _, err := rand.Read(key); err != nil {
		return nil, nil, fmt.Errorf("secchan: generating AES key: %w", err)
	}
	plain := append(key, extra...)
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, plain, []byte("engarde-session"))
	if err != nil {
		return nil, nil, fmt.Errorf("secchan: wrapping session key: %w", err)
	}
	if counter != nil {
		counter.Charge(cycles.PhaseProvision, cycles.UnitRSAOp, 1)
	}
	sess, err := newSession(key, counter)
	if err != nil {
		return nil, nil, err
	}
	return sess, wrapped, nil
}

// Session is an established AES-256-GCM channel state. Each direction uses
// a monotone nonce counter; Session is not safe for concurrent use.
type Session struct {
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64
	counter *cycles.Counter
}

func newSession(key []byte, counter *cycles.Counter) (*Session, error) {
	if len(key) != AESKeySize {
		return nil, fmt.Errorf("secchan: AES key must be %d bytes, got %d", AESKeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("secchan: AES init: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("secchan: GCM init: %w", err)
	}
	return &Session{aead: aead, counter: counter}, nil
}

func nonceFor(seq uint64) []byte {
	nonce := make([]byte, 12)
	binary.LittleEndian.PutUint64(nonce, seq)
	return nonce
}

// Seal encrypts one block.
func (s *Session) Seal(plain []byte) ([]byte, error) {
	if s == nil || s.aead == nil {
		return nil, ErrNoSessionKey
	}
	ct := s.aead.Seal(nil, nonceFor(s.sendSeq), plain, nil)
	s.sendSeq++
	if s.counter != nil {
		s.counter.Charge(cycles.PhaseProvision, cycles.UnitAESByte, uint64(len(plain)))
	}
	return ct, nil
}

// Open decrypts one block, enforcing in-order delivery via the nonce
// counter.
func (s *Session) Open(ct []byte) ([]byte, error) {
	return s.open(nil, ct)
}

// openInPlace decrypts ct over its own backing array (dst = ct[:0] is the
// exactly-overlapping aliasing GCM documents as safe), so the streaming
// receive path needs no per-block plaintext allocation. The returned slice
// aliases ct.
func (s *Session) openInPlace(ct []byte) ([]byte, error) {
	return s.open(ct[:0], ct)
}

func (s *Session) open(dst, ct []byte) ([]byte, error) {
	if s == nil || s.aead == nil {
		return nil, ErrNoSessionKey
	}
	plain, err := s.aead.Open(dst, nonceFor(s.recvSeq), ct, nil)
	if err != nil {
		return nil, fmt.Errorf("secchan: decrypting block %d: %w", s.recvSeq, err)
	}
	s.recvSeq++
	if s.counter != nil {
		s.counter.Charge(cycles.PhaseProvision, cycles.UnitAESByte, uint64(len(plain)))
	}
	return plain, nil
}

//
// Framing.
//

// WriteBlock writes one length-prefixed block.
func WriteBlock(w io.Writer, data []byte) error {
	if len(data) > MaxBlock+64 { // allow GCM overhead over MaxBlock
		return ErrBlockTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("secchan: writing frame header: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("secchan: writing frame body: %w", err)
	}
	observeWrite(w, len(data))
	return nil
}

// ReadBlock reads one length-prefixed block.
func ReadBlock(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("secchan: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxBlock+64 {
		return nil, ErrBlockTooLarge
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("secchan: reading frame body: %w", err)
	}
	observeRead(r, int(n))
	return data, nil
}

// blockPool recycles frame buffers on the streaming receive path. Sized
// for SendStream's default 64 KiB blocks plus GCM overhead; oversized
// frames fall back to a fresh allocation. Only RecvStream takes from and
// returns to the pool — its callers receive the assembled payload, never a
// pooled slice.
var blockPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024+64)
		return &b
	},
}

// readBlockPooled is ReadBlock into a pooled buffer. The caller must hand
// the returned pointer back to blockPool when done with the bytes.
func readBlockPooled(r io.Reader) (*[]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("secchan: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxBlock+64 {
		return nil, ErrBlockTooLarge
	}
	bp := blockPool.Get().(*[]byte)
	if cap(*bp) < int(n) {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	if _, err := io.ReadFull(r, *bp); err != nil {
		blockPool.Put(bp)
		return nil, fmt.Errorf("secchan: reading frame body: %w", err)
	}
	observeRead(r, int(n))
	return bp, nil
}

// SendSealed seals data and writes it as one frame.
func (s *Session) SendSealed(w io.Writer, data []byte) error {
	ct, err := s.Seal(data)
	if err != nil {
		return err
	}
	return WriteBlock(w, ct)
}

// RecvSealed reads one frame and opens it.
func (s *Session) RecvSealed(r io.Reader) ([]byte, error) {
	ct, err := ReadBlock(r)
	if err != nil {
		return nil, err
	}
	return s.Open(ct)
}

// SendStream transfers an arbitrarily large payload as a sequence of
// encrypted blocks of at most blockSize bytes, preceded by an encrypted
// 8-byte length header — "the client sends the content in encrypted
// blocks" (paper §3).
func (s *Session) SendStream(w io.Writer, payload []byte, blockSize int) error {
	if blockSize <= 0 || blockSize > MaxBlock {
		blockSize = 64 * 1024
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(payload)))
	if err := s.SendSealed(w, hdr[:]); err != nil {
		return err
	}
	for off := 0; off < len(payload); off += blockSize {
		end := off + blockSize
		if end > len(payload) {
			end = len(payload)
		}
		if err := s.SendSealed(w, payload[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// RecvStreamFunc receives a payload sent with SendStream, delivering it
// incrementally instead of assembled: start is called once with the
// header-claimed total, then chunk is called with each decrypted block in
// arrival order. Either callback may abort the receive by returning an
// error. chunk's argument aliases a pooled frame buffer that is reused for
// the next block — callbacks must copy any bytes they keep.
//
// This is the primitive under both RecvStream (which assembles the chunks
// into one buffer) and the streaming provisioning path (which pipes them
// straight into the disassembly pipeline while later frames are still in
// flight).
func (s *Session) RecvStreamFunc(r io.Reader, start func(total uint64) error, chunk func(b []byte) error) error {
	hdr, err := s.RecvSealed(r)
	if err != nil {
		return err
	}
	if len(hdr) != 8 {
		return fmt.Errorf("secchan: bad stream header length %d", len(hdr))
	}
	total := binary.BigEndian.Uint64(hdr)
	const maxPayload = 1 << 30
	if total > maxPayload {
		return ErrBlockTooLarge
	}
	if start != nil {
		if err := start(total); err != nil {
			return err
		}
	}
	var got uint64
	for got < total {
		// Each block cycles one pooled frame buffer: the ciphertext is read
		// into it, decrypted in place, handed to chunk, and returned —
		// zero per-block allocations in steady state.
		bp, err := readBlockPooled(r)
		if err != nil {
			return err
		}
		blk, err := s.openInPlace(*bp)
		if err != nil {
			blockPool.Put(bp)
			return err
		}
		if len(blk) == 0 {
			// A validly sealed empty block makes no progress; looping on
			// them would hang the receiver forever.
			blockPool.Put(bp)
			return fmt.Errorf("secchan: empty stream block at offset %d of %d", got, total)
		}
		got += uint64(len(blk))
		err = chunk(blk)
		blockPool.Put(bp)
		if err != nil {
			return err
		}
	}
	if got != total {
		return fmt.Errorf("secchan: stream length %d != header %d", got, total)
	}
	return nil
}

// recvBufDropped is a test seam: when non-nil, RecvStream reports the
// partial buffer it abandons on a mid-stream error, so tests can assert the
// release actually severs the last reachable reference.
var recvBufDropped func([]byte)

// RecvStream receives a payload sent with SendStream.
func (s *Session) RecvStream(r io.Reader) ([]byte, error) {
	var out []byte
	err := s.RecvStreamFunc(r,
		func(total uint64) error {
			// The header length is peer-claimed: allocate no more than one
			// block up front and let append grow with bytes actually
			// received, so a forged header cannot reserve a gigabyte before
			// the first payload byte arrives.
			initial := total
			if initial > MaxBlock {
				initial = MaxBlock
			}
			out = make([]byte, 0, initial)
			return nil
		},
		func(b []byte) error {
			out = append(out, b...)
			return nil
		})
	if err != nil {
		// A mid-stream failure — idle timeout, budget expiry, a tampered
		// block — must not keep the partial plaintext pinned for as long as
		// the caller holds the error path's session state. Drop it here,
		// where the error is classified, not at session teardown.
		if recvBufDropped != nil {
			recvBufDropped(out)
		}
		out = nil
		return nil, err
	}
	return out, nil
}
