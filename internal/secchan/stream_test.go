package secchan

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestRecvStreamFuncDelivery: the incremental receive delivers exactly the
// sent payload, in order, with the header-claimed total announced first and
// every chunk bounded by the sender's block size.
func TestRecvStreamFuncDelivery(t *testing.T) {
	payload := bytes.Repeat([]byte("stream-chunk-equivalence"), 4096) // ~96 KB
	for _, blockSize := range []int{1024, 4096, 64 * 1024, len(payload) + 1} {
		enclave, client := handshake(t)
		cli, srv := net.Pipe()

		errc := make(chan error, 1)
		go func() {
			defer cli.Close()
			errc <- client.SendStream(cli, payload, blockSize)
		}()

		var (
			total    uint64
			starts   int
			got      []byte
			maxChunk int
		)
		err := enclave.RecvStreamFunc(srv,
			func(tot uint64) error {
				starts++
				total = tot
				return nil
			},
			func(b []byte) error {
				if len(b) > maxChunk {
					maxChunk = len(b)
				}
				got = append(got, b...) // must copy: b is pooled
				return nil
			})
		srv.Close()
		if err != nil {
			t.Fatalf("blockSize=%d: RecvStreamFunc: %v", blockSize, err)
		}
		if sendErr := <-errc; sendErr != nil {
			t.Fatalf("blockSize=%d: SendStream: %v", blockSize, sendErr)
		}
		if starts != 1 || total != uint64(len(payload)) {
			t.Fatalf("blockSize=%d: start called %d times with total %d, want once with %d",
				blockSize, starts, total, len(payload))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("blockSize=%d: reassembled payload mismatch", blockSize)
		}
		wantMax := blockSize
		if wantMax > len(payload) {
			wantMax = len(payload)
		}
		if maxChunk > wantMax {
			t.Fatalf("blockSize=%d: chunk of %d bytes exceeds block size", blockSize, maxChunk)
		}
	}
}

// TestRecvStreamFuncCallbackAbort: either callback returning an error stops
// the receive and surfaces that exact error.
func TestRecvStreamFuncCallbackAbort(t *testing.T) {
	boom := errors.New("abort")
	payload := make([]byte, 8*1024)

	for _, stage := range []string{"start", "chunk"} {
		enclave, client := handshake(t)
		cli, srv := net.Pipe()
		go func() {
			defer cli.Close()
			_ = client.SendStream(cli, payload, 1024)
		}()
		var err error
		if stage == "start" {
			err = enclave.RecvStreamFunc(srv, func(uint64) error { return boom }, func([]byte) error { return nil })
		} else {
			err = enclave.RecvStreamFunc(srv, nil, func([]byte) error { return boom })
		}
		srv.Close()
		if !errors.Is(err, boom) {
			t.Fatalf("%s abort: error = %v, want %v", stage, err, boom)
		}
	}
}

// TestRecvStreamReleasesPartialOnTimeout is the regression test for the
// receive-path retention bug: when a mid-stream idle timeout (or budget
// expiry) aborts RecvStream, the partially assembled plaintext must become
// garbage immediately — not stay pinned until the session or error value is
// torn down. The recvBufDropped seam hands the test the abandoned buffer's
// identity; a finalizer then proves the receive path kept no reference.
func TestRecvStreamReleasesPartialOnTimeout(t *testing.T) {
	enclave, client := handshake(t)
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()

	// The sender delivers the header and two blocks, then goes silent so the
	// receiver's idle deadline fires mid-stream.
	go func() {
		var buf bytes.Buffer
		if err := client.SendStream(&buf, bytes.Repeat([]byte{0xEE}, 96*1024), 32*1024); err != nil {
			return
		}
		wire := buf.Bytes()
		cli.SetWriteDeadline(time.Now().Add(5 * time.Second))
		cli.Write(wire[:len(wire)-16]) // hold back the tail, then stall
	}()

	var released atomic.Bool
	recvBufDropped = func(b []byte) {
		if len(b) == 0 {
			t.Error("no partial bytes were assembled before the timeout")
			return
		}
		runtime.SetFinalizer(&b[0], func(*byte) { released.Store(true) })
	}
	t.Cleanup(func() { recvBufDropped = nil })

	l := NewLimited(srv, 50*time.Millisecond, time.Minute)
	out, err := enclave.RecvStream(l)
	if !errors.Is(err, ErrIdleTimeout) {
		t.Fatalf("RecvStream error = %v, want ErrIdleTimeout", err)
	}
	if out != nil {
		t.Fatal("RecvStream returned a partial buffer alongside its error")
	}

	deadline := time.Now().Add(10 * time.Second)
	for !released.Load() {
		if time.Now().After(deadline) {
			t.Fatal("partial receive buffer is still reachable after the mid-stream error")
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// frameTimeRecorder implements FrameTimeObserver; frameRecorder only the
// legacy FrameObserver. Both count callbacks so the delegation tests can
// assert exactly one form fires per frame.
type frameTimeRecorder struct {
	reads, writes     int
	timedR, timedW    int
	lastReadAt        time.Time
	lastReadFrameSize int
}

func (r *frameTimeRecorder) ObserveReadFrame(n int)  { r.reads++ }
func (r *frameTimeRecorder) ObserveWriteFrame(n int) { r.writes++ }
func (r *frameTimeRecorder) ObserveReadFrameAt(n int, at time.Time) {
	r.timedR++
	r.lastReadAt = at
	r.lastReadFrameSize = n
}
func (r *frameTimeRecorder) ObserveWriteFrameAt(n int, at time.Time) { r.timedW++ }

type frameRecorder struct{ reads, writes int }

func (r *frameRecorder) ObserveReadFrame(n int)  { r.reads++ }
func (r *frameRecorder) ObserveWriteFrame(n int) { r.writes++ }

// TestFrameTimeObserverDelegation: an observer implementing the timestamped
// interface receives only the timestamped callbacks, with a plausible
// monotonic arrival time; a legacy observer keeps receiving the plain ones
// through the same ObserveFrames wrapper.
func TestFrameTimeObserverDelegation(t *testing.T) {
	run := func(obs FrameObserver) (cli net.Conn, done chan error) {
		cliRaw, srvRaw := net.Pipe()
		done = make(chan error, 1)
		go func() {
			defer srvRaw.Close()
			rw := ObserveFrames(srvRaw, obs)
			if _, err := ReadBlock(rw); err != nil {
				done <- err
				return
			}
			done <- WriteBlock(rw, []byte("reply"))
		}()
		return cliRaw, done
	}

	timed := &frameTimeRecorder{}
	before := time.Now()
	cli, done := run(timed)
	if err := WriteBlock(cli, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlock(cli); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if timed.timedR != 1 || timed.timedW != 1 {
		t.Fatalf("timed observer: %d timed reads, %d timed writes, want 1 and 1", timed.timedR, timed.timedW)
	}
	if timed.reads != 0 || timed.writes != 0 {
		t.Fatalf("timed observer also received %d/%d plain callbacks", timed.reads, timed.writes)
	}
	if timed.lastReadAt.Before(before) || time.Since(timed.lastReadAt) > time.Minute {
		t.Fatalf("frame arrival time %v is implausible", timed.lastReadAt)
	}
	if want := frameHeaderBytes + len("hello"); timed.lastReadFrameSize != want {
		t.Fatalf("timed read frame size %d, want %d", timed.lastReadFrameSize, want)
	}

	legacy := &frameRecorder{}
	cli, done = run(legacy)
	if err := WriteBlock(cli, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlock(cli); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if legacy.reads != 1 || legacy.writes != 1 {
		t.Fatalf("legacy observer: %d reads, %d writes, want 1 and 1", legacy.reads, legacy.writes)
	}
}
