package secchan

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"

	"engarde/internal/cycles"
)

// handshake runs the paper's key-exchange: enclave RSA pair → client wraps
// AES key → enclave unwraps. Returns both session halves.
func handshake(t *testing.T) (enclave, client *Session) {
	t.Helper()
	ek, err := GenerateEnclaveKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ek.PublicDER()
	if err != nil {
		t.Fatal(err)
	}
	client, wrapped, err := WrapSessionKey(pub, nil)
	if err != nil {
		t.Fatal(err)
	}
	enclave, err = ek.UnwrapSessionKey(wrapped, nil)
	if err != nil {
		t.Fatal(err)
	}
	return enclave, client
}

func TestKeyExchangeAndBlocks(t *testing.T) {
	enclave, client := handshake(t)
	ct, err := client.Seal([]byte("enclave content page 1"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, []byte("enclave")) {
		t.Error("ciphertext leaks plaintext")
	}
	pt, err := enclave.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "enclave content page 1" {
		t.Errorf("round trip = %q", pt)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	enclave, client := handshake(t)
	c1, err := client.Seal([]byte("block-1"))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.Seal([]byte("block-2"))
	if err != nil {
		t.Fatal(err)
	}
	// Deliver block 2 first: nonce mismatch must reject it.
	if _, err := enclave.Open(c2); err == nil {
		t.Error("out-of-order block should fail authentication")
	}
	_ = c1
}

func TestTamperedBlockRejected(t *testing.T) {
	enclave, client := handshake(t)
	ct, err := client.Seal([]byte("sensitive"))
	if err != nil {
		t.Fatal(err)
	}
	ct[0] ^= 1
	if _, err := enclave.Open(ct); err == nil {
		t.Error("tampered ciphertext should fail authentication")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	_, client := handshake(t)
	otherEnclave, _ := handshake(t)
	ct, err := client.Seal([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := otherEnclave.Open(ct); err == nil {
		t.Error("decryption under a different session key should fail")
	}
}

func TestUnwrapGarbageFails(t *testing.T) {
	ek, err := GenerateEnclaveKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ek.UnwrapSessionKey(bytes.Repeat([]byte{1}, 256), nil); err == nil {
		t.Error("unwrapping garbage should fail")
	}
}

func TestSealWithoutSession(t *testing.T) {
	var s *Session
	if _, err := s.Seal([]byte("x")); err != ErrNoSessionKey {
		t.Errorf("Seal on nil session = %v", err)
	}
}

func TestStreamOverTCP(t *testing.T) {
	// Full transfer over a real socket, as the cmd tools use it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	payload := bytes.Repeat([]byte("0123456789abcdef"), 10_000) // 160 KB
	enclave, client := handshake(t)

	errc := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		errc <- client.SendStream(conn, payload, 32*1024)
	}()

	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := enclave.RecvStream(conn)
	if err != nil {
		t.Fatalf("RecvStream: %v", err)
	}
	if sendErr := <-errc; sendErr != nil {
		t.Fatalf("SendStream: %v", sendErr)
	}
	if !bytes.Equal(got, payload) {
		t.Error("stream round trip mismatch")
	}
}

func TestQuickSealOpenIdentity(t *testing.T) {
	enclave, client := handshake(t)
	f := func(data []byte) bool {
		ct, err := client.Seal(data)
		if err != nil {
			t.Errorf("Seal: %v", err)
			return false
		}
		pt, err := enclave.Open(ct)
		if err != nil {
			t.Errorf("Open: %v", err)
			return false
		}
		return bytes.Equal(pt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCycleCharging(t *testing.T) {
	ctr := cycles.NewCounter(cycles.DefaultModel())
	ek, err := GenerateEnclaveKey(ctr)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := ek.PublicDER()
	if err != nil {
		t.Fatal(err)
	}
	client, wrapped, err := WrapSessionKey(pub, ctr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ek.UnwrapSessionKey(wrapped, ctr); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Units(cycles.PhaseProvision, cycles.UnitRSAOp); got != 3 {
		t.Errorf("RSA ops charged = %d, want 3", got)
	}
	if _, err := client.Seal(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Units(cycles.PhaseProvision, cycles.UnitAESByte); got != 1000 {
		t.Errorf("AES bytes charged = %d, want 1000", got)
	}
}

func TestBlockFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlock(&buf, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Errorf("frame round trip = %q", got)
	}
	// Oversized length header rejected.
	var bad bytes.Buffer
	bad.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadBlock(&bad); err != ErrBlockTooLarge {
		t.Errorf("oversized frame = %v, want ErrBlockTooLarge", err)
	}
}
