package hostos

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"engarde/internal/sgx"
)

func TestPageTableMapTranslate(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x7f0000001000, 42, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	frame, perm, err := as.Translate(0x7f0000001abc)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if frame != 42 || perm != PermR|PermW {
		t.Errorf("frame=%d perm=%s", frame, perm)
	}
	if _, _, err := as.Translate(0x7f0000002000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("unmapped translate = %v", err)
	}
}

func TestPageTableUnalignedMapRejected(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1001, 1, PermR); !errors.Is(err, ErrBadAlign) {
		t.Errorf("Map unaligned = %v", err)
	}
}

func TestPageTableProtect(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 1, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if err := as.Check(0x1000, 8, PermW); err != nil {
		t.Errorf("Check W: %v", err)
	}
	if err := as.Protect(0x1000, PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if err := as.Check(0x1000, 8, PermW); !errors.Is(err, ErrPageFault) {
		t.Errorf("Check W after Protect = %v, want page fault", err)
	}
	if err := as.Check(0x1000, 8, PermX); err != nil {
		t.Errorf("Check X: %v", err)
	}
	if err := as.Protect(0x9000, PermR); !errors.Is(err, ErrNotMapped) {
		t.Errorf("Protect unmapped = %v", err)
	}
}

func TestPageTableUnmap(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 1, PermR); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := as.Translate(0x1000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("Translate after Unmap = %v", err)
	}
	if err := as.Unmap(0x1000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("double Unmap = %v", err)
	}
}

func TestCheckSpansPages(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x1000, 1, PermR|PermW); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x2000, 2, PermR); err != nil {
		t.Fatal(err)
	}
	// A write spanning both pages must fault on the second.
	if err := as.Check(0x1ff0, 0x20, PermW); !errors.Is(err, ErrPageFault) {
		t.Errorf("cross-page W check = %v, want page fault", err)
	}
	if err := as.Check(0x1ff0, 0x20, PermR); err != nil {
		t.Errorf("cross-page R check = %v", err)
	}
}

// TestQuickTranslationConsistency: Translate returns exactly what Map
// installed for arbitrary canonical addresses.
func TestQuickTranslationConsistency(t *testing.T) {
	as := NewAddressSpace()
	f := func(vaRaw uint64, frame int32, permRaw uint8) bool {
		va := (vaRaw &^ uint64(PageSize-1)) & 0x0000_7FFF_FFFF_F000
		perm := Perm(permRaw)&(PermW|PermX) | PermR
		if err := as.Map(va, int(frame), perm); err != nil {
			t.Errorf("Map(%#x): %v", va, err)
			return false
		}
		gotFrame, gotPerm, err := as.Translate(va + 0x123%PageSize)
		if err != nil {
			t.Errorf("Translate(%#x): %v", va, err)
			return false
		}
		return gotFrame == int(frame) && gotPerm == perm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

//
// Driver and EnGarde kernel component.
//

// provision builds a 2-page enclave (page 0 code, page 1 data) through the
// driver and applies EnGarde's provisioned permissions.
func provision(t *testing.T, version sgx.Version) (*Process, *sgx.Enclave, *Driver) {
	t.Helper()
	dev, err := sgx.NewDevice(sgx.Config{EPCPages: 16, Version: version})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(dev)
	p := NewProcess()
	e, err := drv.CreateEnclave(p, 0x100000, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	code := bytes.Repeat([]byte{0x90}, PageSize)
	if err := drv.AddMeasuredPage(p, e, 0x100000, sgx.PermR|sgx.PermW|sgx.PermX, PermR|PermW, code); err != nil {
		t.Fatal(err)
	}
	if err := drv.AddMeasuredPage(p, e, 0x101000, sgx.PermR|sgx.PermW|sgx.PermX, PermR|PermW, nil); err != nil {
		t.Fatal(err)
	}
	if err := drv.InitEnclave(e); err != nil {
		t.Fatal(err)
	}
	k := NewKernelComponent(drv, nil)
	if err := k.ApplyProvisionedPermissions(p, e, []uint64{0x100000}, []uint64{0x101000}); err != nil {
		t.Fatal(err)
	}
	return p, e, drv
}

func TestProvisionedWXSplit(t *testing.T) {
	for _, v := range []sgx.Version{sgx.V1, sgx.V2} {
		t.Run(v.String(), func(t *testing.T) {
			p, e, _ := provision(t, v)

			// Code page: executable, not writable.
			if err := p.EnclaveFetch(e, 0x100000, make([]byte, 16)); err != nil {
				t.Errorf("fetch from code page: %v", err)
			}
			if err := p.EnclaveWrite(e, 0x100000, []byte{1}); err == nil {
				t.Error("write to code page should fault")
			}
			// Data page: writable, not executable.
			if err := p.EnclaveWrite(e, 0x101000, []byte{1}); err != nil {
				t.Errorf("write to data page: %v", err)
			}
			if err := p.EnclaveFetch(e, 0x101000, make([]byte, 16)); err == nil {
				t.Error("fetch from data page should fault")
			}
		})
	}
}

func TestProvisionedEnclaveLocked(t *testing.T) {
	p, e, drv := provision(t, sgx.V2)
	err := drv.AddDynamicPage(p, e, 0x100000+2*PageSize, sgx.PermR|sgx.PermW, PermR|PermW)
	if err == nil {
		t.Fatal("post-provisioning growth must be refused")
	}
}

func TestAsyncShockStyleAttack(t *testing.T) {
	// A malicious host OS flips the writable bit back on a code page after
	// EnGarde's check. On SGXv1 only the page tables enforce W^X, so the
	// attack succeeds (code injection after the policy check); on SGXv2
	// the EPCM blocks it. This is the paper's argument for requiring v2.
	t.Run("V1-attack-succeeds", func(t *testing.T) {
		p, e, _ := provision(t, sgx.V1)
		if err := p.AS.Protect(0x100000, PermR|PermW|PermX); err != nil {
			t.Fatal(err)
		}
		if err := p.EnclaveWrite(e, 0x100000, []byte{0xCC}); err != nil {
			t.Errorf("on SGXv1 the host-level attack should succeed, got %v", err)
		}
	})
	t.Run("V2-attack-blocked", func(t *testing.T) {
		p, e, _ := provision(t, sgx.V2)
		if err := p.AS.Protect(0x100000, PermR|PermW|PermX); err != nil {
			t.Fatal(err)
		}
		err := p.EnclaveWrite(e, 0x100000, []byte{0xCC})
		if !errors.Is(err, sgx.ErrPermission) {
			t.Errorf("on SGXv2 the EPCM must block the write, got %v", err)
		}
	})
}

func TestEnclaveReadThroughProcess(t *testing.T) {
	p, e, _ := provision(t, sgx.V2)
	buf := make([]byte, 32)
	if err := p.EnclaveRead(e, 0x100000, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if buf[0] != 0x90 {
		t.Errorf("read content = %#x, want 0x90", buf[0])
	}
	// Reads outside any mapping fault at the page-table level.
	if err := p.EnclaveRead(e, 0x300000, buf); !errors.Is(err, ErrNotMapped) {
		t.Errorf("unmapped read = %v", err)
	}
}
