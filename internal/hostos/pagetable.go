// Package hostos simulates the host operating system underneath the SGX
// device: x86-64 4-level page tables, the SGX driver that services enclave
// build requests, and EnGarde's in-kernel component (paper §3), which marks
// provisioned code pages executable-but-not-writable, data pages
// writable-but-not-executable, and locks the enclave against growth.
//
// Page tables matter here because SGX version 1 enforces page permissions
// only at this level — a malicious or compromised host OS can rewrite them
// after EnGarde's check, which is why the paper concludes EnGarde requires
// SGX v2's EPCM-level permissions for security. The package reproduces both
// sides of that argument (see the AsyncShock-style tests).
package hostos

import (
	"errors"
	"fmt"
	"sync"

	"engarde/internal/sgx"
)

// PageSize is the translation granularity.
const PageSize = sgx.PageSize

// Page-table errors.
var (
	// ErrNotMapped is returned when a translation misses.
	ErrNotMapped = errors.New("hostos: page not mapped")
	// ErrPageFault is returned when an access violates page-table
	// permissions.
	ErrPageFault = errors.New("hostos: page fault (permission)")
	// ErrBadAlign is returned for unaligned mapping requests.
	ErrBadAlign = errors.New("hostos: address not page-aligned")
)

// Perm is a page-table permission set (software view of PTE bits: present,
// writable, and the inverted NX bit).
type Perm uint8

// Page-table permissions.
const (
	PermR Perm = 1 << iota // present/readable
	PermW                  // writable
	PermX                  // executable (NX clear)
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// pte is a leaf page-table entry.
type pte struct {
	present bool
	perm    Perm
	frame   int // backing frame (EPC slot for enclave pages)
}

// ptNode is one 512-entry level of the radix tree. Interior levels hold
// children; the leaf level holds PTEs.
type ptNode struct {
	children [512]*ptNode
	ptes     [512]*pte
}

// AddressSpace is a 4-level x86-64 page table.
type AddressSpace struct {
	mu   sync.RWMutex
	root *ptNode
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{root: &ptNode{}}
}

// levelIndex extracts the 9-bit index for the given level (0 = PML4).
func levelIndex(va uint64, level int) int {
	shift := uint(39 - 9*level)
	return int(va>>shift) & 0x1FF
}

// walkLocked returns the leaf PTE for va, optionally allocating intermediate
// levels.
func (as *AddressSpace) walkLocked(va uint64, create bool) *pte {
	node := as.root
	for level := 0; level < 3; level++ {
		idx := levelIndex(va, level)
		next := node.children[idx]
		if next == nil {
			if !create {
				return nil
			}
			next = &ptNode{}
			node.children[idx] = next
		}
		node = next
	}
	idx := levelIndex(va, 3)
	entry := node.ptes[idx]
	if entry == nil && create {
		entry = &pte{}
		node.ptes[idx] = entry
	}
	return entry
}

// Map installs a translation for the page containing va.
func (as *AddressSpace) Map(va uint64, frame int, perm Perm) error {
	if va%PageSize != 0 {
		return fmt.Errorf("%w: %#x", ErrBadAlign, va)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	entry := as.walkLocked(va, true)
	entry.present = true
	entry.perm = perm | PermR
	entry.frame = frame
	return nil
}

// Unmap removes the translation for the page containing va.
func (as *AddressSpace) Unmap(va uint64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	entry := as.walkLocked(va&^uint64(PageSize-1), false)
	if entry == nil || !entry.present {
		return fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	entry.present = false
	return nil
}

// Protect changes the permissions of an existing mapping. This is the
// host-controlled operation that makes SGXv1-only enforcement subvertible.
func (as *AddressSpace) Protect(va uint64, perm Perm) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	entry := as.walkLocked(va&^uint64(PageSize-1), false)
	if entry == nil || !entry.present {
		return fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	entry.perm = perm | PermR
	return nil
}

// Translate walks the table for va and returns the frame and permissions.
func (as *AddressSpace) Translate(va uint64) (frame int, perm Perm, err error) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	entry := as.walkLocked(va&^uint64(PageSize-1), false)
	if entry == nil || !entry.present {
		return 0, 0, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	return entry.frame, entry.perm, nil
}

// Check validates an access of the given kind against the page-table
// permissions for every page in [va, va+n).
func (as *AddressSpace) Check(va, n uint64, need Perm) error {
	if n == 0 {
		return nil
	}
	first := va &^ uint64(PageSize-1)
	last := (va + n - 1) &^ uint64(PageSize-1)
	for page := first; ; page += PageSize {
		_, perm, err := as.Translate(page)
		if err != nil {
			return err
		}
		if perm&need != need {
			return fmt.Errorf("%w: need %s at %#x, have %s", ErrPageFault, need, page, perm)
		}
		if page == last {
			break
		}
	}
	return nil
}
