package hostos

import (
	"bytes"
	"errors"
	"testing"

	"engarde/internal/sgx"
)

// pagingSetup builds a driver in paging mode over a tiny EPC.
func pagingSetup(t *testing.T, epcPages int) (*Driver, *Process, *sgx.Enclave) {
	t.Helper()
	dev, err := sgx.NewDevice(sgx.Config{EPCPages: epcPages, Version: sgx.V2})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(dev)
	drv.EnablePaging()
	p := NewProcess()
	p.FaultHandler = drv.HandleEPCFault
	e, err := drv.CreateEnclave(p, 0x100000, 64*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return drv, p, e
}

func TestDriverPagesUnderPressure(t *testing.T) {
	// 4-page EPC, 12-page enclave: adds must succeed by evicting.
	drv, p, e := pagingSetup(t, 4)
	for i := 0; i < 12; i++ {
		va := 0x100000 + uint64(i)*PageSize
		content := bytes.Repeat([]byte{byte(i + 1)}, PageSize)
		if err := drv.AddMeasuredPage(p, e, va, sgx.PermR|sgx.PermW, PermR|PermW, content); err != nil {
			t.Fatalf("AddMeasuredPage %d: %v", i, err)
		}
	}
	if err := drv.InitEnclave(e); err != nil {
		t.Fatal(err)
	}
	// Touch every page; evicted ones must fault in transparently with the
	// right content.
	for i := 0; i < 12; i++ {
		va := 0x100000 + uint64(i)*PageSize
		buf := make([]byte, 4)
		if err := p.EnclaveRead(e, va, buf); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if buf[0] != byte(i+1) {
			t.Errorf("page %d content = %d, want %d", i, buf[0], i+1)
		}
	}
}

func TestFaultHandlerWithoutPaging(t *testing.T) {
	dev, err := sgx.NewDevice(sgx.Config{EPCPages: 8, Version: sgx.V2})
	if err != nil {
		t.Fatal(err)
	}
	drv := NewDriver(dev)
	if drv.PagingEnabled() {
		t.Fatal("paging should default off")
	}
	e, err := drv.CreateEnclave(NewProcess(), 0x100000, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.HandleEPCFault(e, 0x100000); !errors.Is(err, ErrPagingDisabled) {
		t.Errorf("HandleEPCFault = %v, want ErrPagingDisabled", err)
	}
}

func TestPagingWritesSurviveEviction(t *testing.T) {
	drv, p, e := pagingSetup(t, 4)
	for i := 0; i < 6; i++ {
		va := 0x100000 + uint64(i)*PageSize
		if err := drv.AddMeasuredPage(p, e, va, sgx.PermR|sgx.PermW, PermR|PermW, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := drv.InitEnclave(e); err != nil {
		t.Fatal(err)
	}
	// Write page 0 (faulting it in), then thrash pages 1-5 to evict it,
	// then read it back.
	if err := p.EnclaveWrite(e, 0x100000, []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 1; i < 6; i++ {
			va := 0x100000 + uint64(i)*PageSize
			if err := p.EnclaveWrite(e, va, []byte{byte(round)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make([]byte, 10)
	if err := p.EnclaveRead(e, 0x100000, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persistent" {
		t.Errorf("page 0 = %q after eviction cycles", got)
	}
}
