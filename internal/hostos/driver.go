package hostos

import (
	"errors"
	"fmt"

	"engarde/internal/sgx"
)

// Driver errors.
var (
	// ErrProvisioned is returned when the EnGarde kernel component refuses
	// to grow an enclave that has already been provisioned and locked.
	ErrProvisioned = errors.New("hostos: enclave already provisioned and locked")
)

// Process is a host process owning an address space that may contain
// enclaves.
type Process struct {
	AS *AddressSpace
	// FaultHandler, when set, is invoked on an EPC miss (an access to a
	// page the OS evicted); returning nil means the page was reloaded and
	// the access should be retried. Installed by drivers in demand-paging
	// mode.
	FaultHandler func(e *sgx.Enclave, vaddr uint64) error
}

// NewProcess returns a process with an empty address space.
func NewProcess() *Process {
	return &Process{AS: NewAddressSpace()}
}

// retryEPC runs access, servicing at most a bounded number of EPC misses
// through the fault handler.
func (p *Process) retryEPC(e *sgx.Enclave, addr uint64, n int, access func() error) error {
	const maxFaults = 64 // an access spans at most a handful of pages
	for i := 0; ; i++ {
		err := access()
		if err == nil || p.FaultHandler == nil || !errors.Is(err, sgx.ErrPageNotMapped) || i >= maxFaults {
			return err
		}
		// Fault in every page of the span; the handler no-ops cheaply on
		// resident ones via the backing-store lookup.
		var handled bool
		for page := addr &^ uint64(PageSize-1); page < addr+uint64(n); page += PageSize {
			if _, resident := e.PageSlot(page); !resident {
				if herr := p.FaultHandler(e, page); herr != nil {
					return fmt.Errorf("%w (paging: %v)", err, herr)
				}
				handled = true
			}
		}
		if !handled {
			return err
		}
	}
}

// EnclaveRead performs a read the way enclave code would: the host page
// tables translate (and permission-check) the access, then the hardware
// checks the EPCM (on SGX v2) and decrypts. Accesses to evicted pages are
// transparently serviced through the fault handler.
func (p *Process) EnclaveRead(e *sgx.Enclave, addr uint64, buf []byte) error {
	if err := p.AS.Check(addr, uint64(len(buf)), PermR); err != nil {
		return err
	}
	return p.retryEPC(e, addr, len(buf), func() error { return e.Read(addr, buf) })
}

// EnclaveWrite is the write counterpart of EnclaveRead.
func (p *Process) EnclaveWrite(e *sgx.Enclave, addr uint64, buf []byte) error {
	if err := p.AS.Check(addr, uint64(len(buf)), PermW); err != nil {
		return err
	}
	return p.retryEPC(e, addr, len(buf), func() error { return e.Write(addr, buf) })
}

// EnclaveFetch models an instruction fetch at addr: both the page tables
// and (on v2) the EPCM must grant execute permission.
func (p *Process) EnclaveFetch(e *sgx.Enclave, addr uint64, buf []byte) error {
	if err := p.AS.Check(addr, uint64(len(buf)), PermX); err != nil {
		return err
	}
	return p.retryEPC(e, addr, len(buf), func() error {
		perm, err := e.PagePerm(addr)
		if err != nil {
			return err
		}
		if e.Dev().Version() == sgx.V2 && perm&sgx.PermX == 0 {
			return fmt.Errorf("%w: EPCM denies execute at %#x", ErrPageFault, addr)
		}
		return e.Read(addr, buf)
	})
}

// Driver is the in-kernel SGX driver: it owns the device and services
// enclave build requests on behalf of processes, mirroring OpenSGX's
// driver support (paper §4). With EnablePaging it also demand-pages the
// EPC (see paging.go).
type Driver struct {
	dev   *sgx.Device
	pager *pager
}

// NewDriver returns a driver for the device.
func NewDriver(dev *sgx.Device) *Driver {
	return &Driver{dev: dev}
}

// Device returns the underlying SGX device.
func (d *Driver) Device() *sgx.Device { return d.dev }

// CreateEnclave allocates an enclave span in the process's address space.
func (d *Driver) CreateEnclave(p *Process, base, size uint64) (*sgx.Enclave, error) {
	e, err := d.dev.ECreate(base, size)
	if err != nil {
		return nil, fmt.Errorf("hostos: ECREATE: %w", err)
	}
	return e, nil
}

// AddMeasuredPage EADDs one page with content, measures it (16 EEXTENDs)
// and installs a page-table mapping with the given page-table permissions.
// In paging mode, EPC exhaustion evicts a victim and retries.
func (d *Driver) AddMeasuredPage(p *Process, e *sgx.Enclave, vaddr uint64, epcm sgx.Perm, pt Perm, content []byte) error {
	return d.addMeasuredPageRetrying(p, e, vaddr, epcm, pt, content)
}

// AddDynamicPage grows an initialized enclave by one zeroed page (SGX v2
// EAUG + EACCEPT) and maps it. In paging mode, EPC exhaustion evicts a
// victim and retries.
func (d *Driver) AddDynamicPage(p *Process, e *sgx.Enclave, vaddr uint64, epcm sgx.Perm, pt Perm) error {
	for {
		err := d.dev.EAug(e, vaddr, epcm)
		if err == nil {
			break
		}
		if d.pager == nil || !errors.Is(err, sgx.ErrEPCFull) {
			return fmt.Errorf("hostos: EAUG %#x: %w", vaddr, err)
		}
		if evictErr := d.evictOne(); evictErr != nil {
			return evictErr
		}
	}
	d.trackResident(e, vaddr)
	if err := d.dev.EAccept(e, vaddr); err != nil {
		return fmt.Errorf("hostos: EACCEPT %#x: %w", vaddr, err)
	}
	slot, _ := e.PageSlot(vaddr)
	if err := p.AS.Map(vaddr, slot, pt); err != nil {
		return fmt.Errorf("hostos: mapping %#x: %w", vaddr, err)
	}
	return nil
}

// InitEnclave finalizes the enclave measurement.
func (d *Driver) InitEnclave(e *sgx.Enclave) error {
	if err := d.dev.EInit(e); err != nil {
		return fmt.Errorf("hostos: EINIT: %w", err)
	}
	return nil
}
