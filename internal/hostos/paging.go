package hostos

import (
	"errors"
	"fmt"

	"engarde/internal/sgx"
)

// Demand paging: the EPC is small (OpenSGX stock: 2000 pages), and the
// paper's response was to enlarge it (§4). The alternative an OS would
// take is to page: when the EPC is exhausted, evict a victim page with EWB
// into an untrusted backing store and reload it with ELDU when the enclave
// touches it again. This file implements that policy in the driver — FIFO
// victim selection, a per-driver backing store, and a fault handler the
// process access path consults — so the trade-off can be measured (every
// eviction/reload is an SGX instruction: 10K cycles plus crypto).

// ErrPagingDisabled is returned by the fault handler when paging is off.
var ErrPagingDisabled = errors.New("hostos: EPC paging not enabled")

// pageKey identifies an enclave page in the backing store.
type pageKey struct {
	enclave sgx.EnclaveID
	vaddr   uint64
}

// pager is the driver's paging state.
type pager struct {
	store map[pageKey]*sgx.EvictedPage
	// fifo is the victim queue of resident, evictable pages.
	fifo []pageRef
}

type pageRef struct {
	e     *sgx.Enclave
	vaddr uint64
}

// EnablePaging switches the driver to demand-paging mode: page additions
// that hit EPC exhaustion evict a victim instead of failing, and faults on
// evicted pages reload them transparently.
func (d *Driver) EnablePaging() {
	if d.pager == nil {
		d.pager = &pager{store: make(map[pageKey]*sgx.EvictedPage)}
	}
}

// PagingEnabled reports whether demand paging is on.
func (d *Driver) PagingEnabled() bool { return d.pager != nil }

// trackResident registers a page as an eviction candidate.
func (d *Driver) trackResident(e *sgx.Enclave, vaddr uint64) {
	if d.pager != nil {
		d.pager.fifo = append(d.pager.fifo, pageRef{e: e, vaddr: vaddr})
	}
}

// evictOne pages out the oldest resident page, returning an error when
// nothing is evictable.
func (d *Driver) evictOne() error {
	p := d.pager
	for len(p.fifo) > 0 {
		victim := p.fifo[0]
		p.fifo = p.fifo[1:]
		if _, resident := victim.e.PageSlot(victim.vaddr); !resident {
			continue // already evicted or removed
		}
		blob, err := d.dev.EWB(victim.e, victim.vaddr)
		if err != nil {
			return fmt.Errorf("hostos: evicting %#x: %w", victim.vaddr, err)
		}
		p.store[pageKey{victim.e.ID(), victim.vaddr}] = blob
		return nil
	}
	return errors.New("hostos: EPC exhausted and nothing evictable")
}

// HandleEPCFault reloads an evicted page after the enclave faulted on it,
// evicting a victim first if the EPC is still full. The process access
// path calls this via Process.FaultHandler.
func (d *Driver) HandleEPCFault(e *sgx.Enclave, vaddr uint64) error {
	if d.pager == nil {
		return ErrPagingDisabled
	}
	page := vaddr &^ uint64(PageSize-1)
	key := pageKey{e.ID(), page}
	blob, ok := d.pager.store[key]
	if !ok {
		return fmt.Errorf("hostos: %#x not in the backing store", page)
	}
	for {
		err := d.dev.ELDU(e, blob)
		if err == nil {
			delete(d.pager.store, key)
			d.trackResident(e, page)
			return nil
		}
		if !errors.Is(err, sgx.ErrEPCFull) {
			return fmt.Errorf("hostos: reloading %#x: %w", page, err)
		}
		if evictErr := d.evictOne(); evictErr != nil {
			return evictErr
		}
	}
}

// addPagedMeasuredPage is AddMeasuredPage with eviction-on-pressure.
func (d *Driver) addMeasuredPageRetrying(p *Process, e *sgx.Enclave, vaddr uint64, epcm sgx.Perm, pt Perm, content []byte) error {
	for {
		err := d.dev.EAdd(e, vaddr, epcm, sgx.PageREG, content)
		if err == nil {
			break
		}
		if d.pager == nil || !errors.Is(err, sgx.ErrEPCFull) {
			return fmt.Errorf("hostos: EADD %#x: %w", vaddr, err)
		}
		if evictErr := d.evictOne(); evictErr != nil {
			return evictErr
		}
	}
	if err := d.dev.EExtendPage(e, vaddr); err != nil {
		return fmt.Errorf("hostos: EEXTEND %#x: %w", vaddr, err)
	}
	slot, _ := e.PageSlot(vaddr)
	if err := p.AS.Map(vaddr, slot, pt); err != nil {
		return fmt.Errorf("hostos: mapping %#x: %w", vaddr, err)
	}
	d.trackResident(e, vaddr)
	return nil
}
