package hostos

import (
	"errors"
	"fmt"
	"sort"

	"engarde/internal/cycles"
	"engarde/internal/sgx"
)

// KernelComponent is EnGarde's host-level component (paper §3): after the
// in-enclave library reports the list of executable code pages, it marks
// those pages executable-but-not-writable and every other provisioned page
// writable-but-not-executable, then prevents the enclave from being
// extended. On SGX v2 devices it additionally pins the same W^X split into
// the EPCM via EMODPR, which is what makes the enforcement binding against
// a malicious host.
type KernelComponent struct {
	drv     *Driver
	counter *cycles.Counter
}

// NewKernelComponent returns the EnGarde kernel component. counter may be
// nil.
func NewKernelComponent(drv *Driver, counter *cycles.Counter) *KernelComponent {
	return &KernelComponent{drv: drv, counter: counter}
}

// ApplyProvisionedPermissions receives the executable-page list from the
// in-enclave component and enforces W^X over the client's provisioned
// region: pages in execPages become r-x, pages in dataPages become rw-.
// Pages outside both lists (EnGarde's own bootstrap code and heap) are left
// untouched. Finally the enclave is locked so no further pages can be
// added — EADD and EAUG both fail afterwards, preventing post-check code
// injection (paper §3).
func (k *KernelComponent) ApplyProvisionedPermissions(p *Process, e *sgx.Enclave, execPages, dataPages []uint64) error {
	apply := func(pages []uint64, ptPerm Perm, epcmPerm sgx.Perm) error {
		sorted := append([]uint64(nil), pages...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		v2 := k.drv.Device().Version() == sgx.V2
		for _, va := range sorted {
			if va%PageSize != 0 {
				return fmt.Errorf("%w: page %#x", ErrBadAlign, va)
			}
			if err := p.AS.Protect(va, ptPerm); err != nil {
				return fmt.Errorf("hostos: engarde: protecting %#x: %w", va, err)
			}
			if v2 {
				if err := k.modprFaulting(p, e, va, epcmPerm); err != nil {
					return err
				}
			}
			// Permission pinning happens host-side; the paper's "Loading
			// and Relocation" column covers only the in-enclave loader, so
			// this is charged to provisioning.
			if k.counter != nil {
				k.counter.Charge(cycles.PhaseProvision, cycles.UnitPageMap, 1)
			}
		}
		return nil
	}
	if err := apply(execPages, PermR|PermX, sgx.PermR|sgx.PermX); err != nil {
		return err
	}
	if err := apply(dataPages, PermR|PermW, sgx.PermR|sgx.PermW); err != nil {
		return err
	}
	e.Lock()
	return nil
}

// modprFaulting restricts EPCM permissions, faulting the page back in
// first when the driver has demand-paged it out.
func (k *KernelComponent) modprFaulting(p *Process, e *sgx.Enclave, va uint64, perm sgx.Perm) error {
	err := k.drv.Device().EModPR(e, va, perm)
	if errors.Is(err, sgx.ErrPageNotMapped) && k.drv.PagingEnabled() {
		if ferr := k.drv.HandleEPCFault(e, va); ferr != nil {
			return fmt.Errorf("hostos: engarde: faulting in %#x: %w", va, ferr)
		}
		err = k.drv.Device().EModPR(e, va, perm)
	}
	if err != nil {
		return fmt.Errorf("hostos: engarde: EMODPR %#x: %w", va, err)
	}
	if err := k.drv.Device().EAccept(e, va); err != nil {
		return fmt.Errorf("hostos: engarde: EACCEPT %#x: %w", va, err)
	}
	return nil
}

// ProtectGuardPages strips the given pages to read-only at both levels, so
// a stack overflow faults instead of descending into adjacent memory.
func (k *KernelComponent) ProtectGuardPages(p *Process, e *sgx.Enclave, pages []uint64) error {
	v2 := k.drv.Device().Version() == sgx.V2
	for _, va := range pages {
		if err := p.AS.Protect(va, PermR); err != nil {
			return fmt.Errorf("hostos: engarde: guarding %#x: %w", va, err)
		}
		if v2 {
			if err := k.modprFaulting(p, e, va, sgx.PermR); err != nil {
				return err
			}
		}
	}
	return nil
}
