package nacl

import (
	"testing"

	"engarde/internal/elf64"
	"engarde/internal/toolchain"
)

// BenchmarkDecodeSharded measures the parallel decode's steady-state
// allocations: the per-chunk speculative buffers come from a pool and the
// merged slice is presized, so allocs/op should stay flat as the decode
// repeats (the dominant remaining allocation is the merged Insts slice
// itself, which escapes into the Program).
func BenchmarkDecodeSharded(b *testing.B) {
	bin, err := toolchain.Build(toolchain.Config{
		Name: "decbench", Seed: 42, NumFuncs: 40, AvgFuncInsts: 120,
	})
	if err != nil {
		b.Fatal(err)
	}
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		b.Fatal(err)
	}
	text := f.Section(".text")
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "sequential", 4: "workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(text.Data)))
			for i := 0; i < b.N; i++ {
				if _, err := DecodeProgramParallel(text.Data, text.Addr, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
