package nacl

import (
	"reflect"
	"testing"

	"engarde/internal/x86"
)

// fuzzValidateSeeds builds seed inputs: valid assembler-emitted programs
// (so the fuzzer starts from accepting paths, not just rejections) plus
// raw byte patterns hitting each rejection rule.
func fuzzValidateSeeds() [][]byte {
	var seeds [][]byte

	var a x86.Assembler
	a.MovRegImm32(x86.RegAX, 1)
	a.CmpRegImm8(x86.RegAX, 0)
	a.JccLabel(x86.CondNE, "end")
	a.Nop(1)
	a.Label("end")
	a.Ret()
	if code, fixups, err := a.Finish(); err == nil && len(fixups) == 0 {
		seeds = append(seeds, code)
	}

	var b x86.Assembler
	b.Nop(3)
	b.MovRegFS(x86.RegAX, 0x28)
	b.Ret()
	if code, fixups, err := b.Finish(); err == nil && len(fixups) == 0 {
		seeds = append(seeds, code)
	}

	seeds = append(seeds,
		[]byte{0xC3},                               // minimal accept
		[]byte{0x90, 0x90, 0xC3},                   // NOP padding
		[]byte{0xE9, 0xFB, 0xFF, 0xFF, 0xFF},       // jmp self
		[]byte{0xE9, 0x01, 0x00, 0x00, 0x00, 0xC3}, // jmp into immediate
		[]byte{0xC3, 0x06, 0x07},                   // undecodable tail
		append(make([]byte, 0, 40), []byte{
			0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90,
			0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90,
			0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90, 0x90,
			0x90, 0x90, 0x90, 0x90, // 28 NOPs, then a bundle-crossing mov
			0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0x00, 0x00, 0x00, 0xC3,
		}...),
	)
	return seeds
}

// FuzzValidate asserts the validator's trust-boundary properties on
// arbitrary code regions: it never panics; every instruction start of an
// accepted Program re-decodes, in isolation, to the identical instruction
// (the self-consistency NaCl's reliable-disassembly argument rests on);
// consecutive instructions tile the region exactly; and the sharded
// decoder is bit-identical to the sequential one even when forced to cut
// mid-instruction chunk seams.
func FuzzValidate(f *testing.F) {
	for _, seed := range fuzzValidateSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, code []byte) {
		const base = 0x1000 // bundle-aligned, as loaded text always is

		// Differential: force the sharded path with chunk sizes small
		// enough to cut seams inside instructions (normalizeWorkers would
		// keep inputs this small sequential in production).
		seqInsts, seqErr := decodeRange(code, base, 0, len(code))
		for _, workers := range []int{2, 3, 5} {
			parInsts, parErr := decodeSharded(code, base, workers)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("workers=%d: sequential err %v, sharded err %v", workers, seqErr, parErr)
			}
			if seqErr != nil {
				if seqErr.Error() != parErr.Error() {
					t.Fatalf("workers=%d: error mismatch:\n  seq: %v\n  par: %v", workers, seqErr, parErr)
				}
				continue
			}
			if !reflect.DeepEqual(seqInsts, parInsts) {
				t.Fatalf("workers=%d: sharded decode diverges from sequential", workers)
			}
		}

		p, err := Validate(code, base, base, nil, nil)
		if err != nil {
			return // rejection is a valid outcome; panics/hangs are not
		}

		// Accepted ⇒ instruction starts tile the region and re-decode
		// identically in isolation.
		next := uint64(base)
		for i := range p.Insts {
			in := &p.Insts[i]
			if in.Addr != next {
				t.Fatalf("instruction %d at %#x, expected %#x (overlap or gap)", i, in.Addr, next)
			}
			re, err := x86.Decode(code[in.Addr-base:], in.Addr)
			if err != nil {
				t.Fatalf("accepted instruction at %#x does not re-decode: %v", in.Addr, err)
			}
			if !reflect.DeepEqual(*in, re) {
				t.Fatalf("accepted instruction at %#x re-decodes differently:\n  got  %s\n  want %s",
					in.Addr, re.String(), in.String())
			}
			idx, ok := p.InstAt(in.Addr)
			if !ok || idx != i {
				t.Fatalf("InstAt(%#x) = %d,%v, want %d,true", in.Addr, idx, ok, i)
			}
			next = in.Addr + uint64(in.Len)
		}
		if next != base+uint64(len(code)) {
			t.Fatalf("instructions end at %#x, region at %#x", next, base+uint64(len(code)))
		}
	})
}
