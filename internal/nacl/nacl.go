// Package nacl implements the Native-Client-style disassembly validation
// EnGarde performs before any policy runs (paper §3): "NaCl makes a number
// of assumptions to ensure clean, unambiguous disassembly. For example, it
// requires no instructions to overlap a 32-byte boundary, that all
// control-transfers target valid instructions, and that all valid
// instructions are reachable from the start address."
//
// Validate decodes an entire text region and enforces those three
// constraints. The reachability rule is applied from the entry point plus
// every function symbol (functions are entered via calls whose targets the
// second rule already validates); NOP padding between functions is exempt,
// since bundle alignment necessarily produces unreachable NOPs.
package nacl

import (
	"errors"
	"fmt"

	"engarde/internal/cycles"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

// BundleSize is the NaCl bundle granularity.
const BundleSize = 32

// Validation errors.
var (
	// ErrBundleCrossing is returned when an instruction overlaps a 32-byte
	// boundary.
	ErrBundleCrossing = errors.New("nacl: instruction crosses bundle boundary")
	// ErrBadBranchTarget is returned when a direct control transfer does
	// not target a valid instruction start.
	ErrBadBranchTarget = errors.New("nacl: control transfer to invalid target")
	// ErrUnreachable is returned when a non-padding instruction is not
	// reachable from the entry point or any function start.
	ErrUnreachable = errors.New("nacl: unreachable instruction")
	// ErrUndecodable wraps decode failures — the symptom of mixed
	// code/data pages, which EnGarde rejects.
	ErrUndecodable = errors.New("nacl: undecodable byte sequence")
)

// Program is a validated instruction buffer. Unlike NaCl's sliding window,
// EnGarde retains every decoded instruction so policy modules can random-
// access the buffer (paper §4).
type Program struct {
	// Insts is the full decoded instruction sequence in address order.
	Insts []x86.Inst
	// Base and End delimit the validated text region.
	Base, End uint64

	index map[uint64]int
}

// InstAt returns the index of the instruction starting exactly at addr.
func (p *Program) InstAt(addr uint64) (int, bool) {
	i, ok := p.index[addr]
	return i, ok
}

// IsInstStart reports whether addr is a decoded instruction boundary.
func (p *Program) IsInstStart(addr uint64) bool {
	_, ok := p.index[addr]
	return ok
}

// Contains reports whether addr falls inside the validated region.
func (p *Program) Contains(addr uint64) bool {
	return addr >= p.Base && addr < p.End
}

// Validate decodes and validates the text region starting at base. entry
// is the program entry point; tab supplies function starts for the
// reachability rule (it may be nil, in which case only entry seeds the
// reachability walk). Decoding work is charged to the disassembly phase of
// counter when non-nil.
func Validate(code []byte, base, entry uint64, tab *symtab.Table, counter *cycles.Counter) (*Program, error) {
	p, err := DecodeProgram(code, base, counter)
	if err != nil {
		return nil, err
	}
	if err := p.CheckReachability(entry, tab); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeProgram performs the first three validation rules (full decode,
// bundle discipline, branch-target validity) without the reachability
// walk. Callers recovering function boundaries from stripped binaries
// (internal/funcid) decode first, recover, then run CheckReachability with
// the recovered table.
func DecodeProgram(code []byte, base uint64, counter *cycles.Counter) (*Program, error) {
	p := &Program{
		Base:  base,
		End:   base + uint64(len(code)),
		index: make(map[uint64]int, len(code)/4),
	}

	// Pass 1: full decode (rejects mixed code/data).
	off := 0
	for off < len(code) {
		addr := base + uint64(off)
		in, err := x86.Decode(code[off:], addr)
		if err != nil {
			return nil, fmt.Errorf("%w: at %#x: %v", ErrUndecodable, addr, err)
		}
		p.index[addr] = len(p.Insts)
		p.Insts = append(p.Insts, in)
		off += in.Len
	}
	if counter != nil {
		counter.Charge(cycles.PhaseDisasm, cycles.UnitDecodedInst, uint64(len(p.Insts)))
	}

	// Pass 2: bundle rule.
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Addr/BundleSize != (in.Addr+uint64(in.Len)-1)/BundleSize {
			return nil, fmt.Errorf("%w: %s at %#x (%d bytes)", ErrBundleCrossing, in.String(), in.Addr, in.Len)
		}
	}

	// Pass 3: control-transfer targets. Targets outside the region (e.g.
	// into a runtime the enclave doesn't have) are invalid too.
	for i := range p.Insts {
		in := &p.Insts[i]
		tgt, ok := in.BranchTarget()
		if !ok {
			continue
		}
		if !p.Contains(tgt) || !p.IsInstStart(tgt) {
			return nil, fmt.Errorf("%w: %s at %#x targets %#x", ErrBadBranchTarget, in.String(), in.Addr, tgt)
		}
	}

	return p, nil
}

// CheckReachability enforces the fourth rule: every non-padding
// instruction must be reachable from the entry point or a function start.
func (p *Program) CheckReachability(entry uint64, tab *symtab.Table) error {
	reached := make([]bool, len(p.Insts))
	var stack []int
	push := func(addr uint64) {
		if i, ok := p.index[addr]; ok && !reached[i] {
			reached[i] = true
			stack = append(stack, i)
		}
	}
	push(entry)
	if tab != nil {
		for _, fn := range tab.Functions() {
			push(fn.Addr)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := &p.Insts[i]
		// Branch edge.
		if tgt, ok := in.BranchTarget(); ok {
			push(tgt)
		}
		// Fall-through edge; ret and unconditional jmp do not fall
		// through. Indirect jumps don't either, but their targets are
		// function starts already seeded.
		switch in.Op {
		case x86.OpRet, x86.OpJmp, x86.OpJmpInd, x86.OpUd2, x86.OpHlt:
		default:
			push(in.Addr + uint64(in.Len))
		}
	}
	for i := range p.Insts {
		if !reached[i] && p.Insts[i].Op != x86.OpNop {
			return fmt.Errorf("%w: %s at %#x", ErrUnreachable, p.Insts[i].String(), p.Insts[i].Addr)
		}
	}
	return nil
}
