// Package nacl implements the Native-Client-style disassembly validation
// EnGarde performs before any policy runs (paper §3): "NaCl makes a number
// of assumptions to ensure clean, unambiguous disassembly. For example, it
// requires no instructions to overlap a 32-byte boundary, that all
// control-transfers target valid instructions, and that all valid
// instructions are reachable from the start address."
//
// Validate decodes an entire text region and enforces those three
// constraints. The reachability rule is applied from the entry point plus
// every function symbol (functions are entered via calls whose targets the
// second rule already validates); NOP padding between functions is exempt,
// since bundle alignment necessarily produces unreachable NOPs.
//
// Decoding can be sharded across workers: the region is split into chunks
// that are decoded speculatively in parallel and then reconciled at the
// seams. x86 decoding self-synchronizes, so a speculative chunk almost
// always rejoins the true instruction stream; where it does not, the seam
// is re-decoded serially. The result is bit-identical to the sequential
// pass, including cycle charges.
package nacl

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"engarde/internal/cycles"
	"engarde/internal/obs"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

// BundleSize is the NaCl bundle granularity.
const BundleSize = 32

// minChunkBytes bounds sharding overhead: a region is never split into
// chunks smaller than this, so tiny inputs decode sequentially.
const minChunkBytes = 2048

// Validation errors.
var (
	// ErrBundleCrossing is returned when an instruction overlaps a 32-byte
	// boundary.
	ErrBundleCrossing = errors.New("nacl: instruction crosses bundle boundary")
	// ErrBadBranchTarget is returned when a direct control transfer does
	// not target a valid instruction start.
	ErrBadBranchTarget = errors.New("nacl: control transfer to invalid target")
	// ErrUnreachable is returned when a non-padding instruction is not
	// reachable from the entry point or any function start.
	ErrUnreachable = errors.New("nacl: unreachable instruction")
	// ErrUndecodable wraps decode failures — the symptom of mixed
	// code/data pages, which EnGarde rejects.
	ErrUndecodable = errors.New("nacl: undecodable byte sequence")
)

// Program is a validated instruction buffer. Unlike NaCl's sliding window,
// EnGarde retains every decoded instruction so policy modules can random-
// access the buffer (paper §4). Instruction starts are looked up by binary
// search over the address-ordered Insts slice, so a Program needs no side
// index and is immutable (and therefore freely shared) once built.
type Program struct {
	// Insts is the full decoded instruction sequence in address order.
	Insts []x86.Inst
	// Base and End delimit the validated text region.
	Base, End uint64
}

// InstAt returns the index of the instruction starting exactly at addr.
func (p *Program) InstAt(addr uint64) (int, bool) {
	i := sort.Search(len(p.Insts), func(i int) bool { return p.Insts[i].Addr >= addr })
	if i < len(p.Insts) && p.Insts[i].Addr == addr {
		return i, true
	}
	return 0, false
}

// IsInstStart reports whether addr is a decoded instruction boundary.
func (p *Program) IsInstStart(addr uint64) bool {
	_, ok := p.InstAt(addr)
	return ok
}

// Contains reports whether addr falls inside the validated region.
func (p *Program) Contains(addr uint64) bool {
	return addr >= p.Base && addr < p.End
}

// Validate decodes and validates the text region starting at base. entry
// is the program entry point; tab supplies function starts for the
// reachability rule (it may be nil, in which case only entry seeds the
// reachability walk). Decoding work is charged to the disassembly phase of
// counter when non-nil.
func Validate(code []byte, base, entry uint64, tab *symtab.Table, counter *cycles.Counter) (*Program, error) {
	return ValidateParallel(code, base, entry, tab, counter, 1)
}

// ValidateParallel is Validate with decoding sharded across the given
// number of workers (<= 0 means GOMAXPROCS). The accepted Program, any
// rejection, and all cycle charges are identical to Validate's.
func ValidateParallel(code []byte, base, entry uint64, tab *symtab.Table, counter *cycles.Counter, workers int) (*Program, error) {
	p, err := DecodeProgramParallel(code, base, counter, workers)
	if err != nil {
		return nil, err
	}
	if err := p.CheckReachability(entry, tab); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodeProgram performs the first three validation rules (full decode,
// bundle discipline, branch-target validity) without the reachability
// walk. Callers recovering function boundaries from stripped binaries
// (internal/funcid) decode first, recover, then run CheckReachability with
// the recovered table.
func DecodeProgram(code []byte, base uint64, counter *cycles.Counter) (*Program, error) {
	return DecodeProgramParallel(code, base, counter, 1)
}

// DecodeProgramParallel is DecodeProgram sharded across workers (<= 0
// means GOMAXPROCS). The produced Program is bit-identical to the
// sequential path and charges the same cycle totals: speculative decode
// work thrown away at seam reconciliation is never charged.
func DecodeProgramParallel(code []byte, base uint64, counter *cycles.Counter, workers int) (*Program, error) {
	return DecodeProgramTraced(code, base, counter, workers, nil)
}

// DecodeProgramTraced is DecodeProgramParallel with one wall-clock span per
// validation pass recorded on tr (nil tr is a no-op). The passes run
// sequentially, but cycle attribution stays with the caller's enclosing
// disassembly phase span, so the pass spans are timing-only.
func DecodeProgramTraced(code []byte, base uint64, counter *cycles.Counter, workers int, tr *obs.Trace) (*Program, error) {
	// Pass 1: full decode (rejects mixed code/data).
	sp := tr.StartSpan("disasm:decode")
	insts, err := decodeSharded(code, base, normalizeWorkers(workers, len(code)))
	sp.End()
	if err != nil {
		return nil, err
	}
	return finishProgram(insts, base, uint64(len(code)), counter, workers, tr)
}

// finishProgram runs everything downstream of the raw decode — the decoded-
// instruction cycle charge and validation passes 2 and 3 — shared between
// the buffered path above and StreamDecoder.Finish, so both produce
// identical Programs, rejections, and charges by construction.
func finishProgram(insts []x86.Inst, base, size uint64, counter *cycles.Counter, workers int, tr *obs.Trace) (*Program, error) {
	p := &Program{Insts: insts, Base: base, End: base + size}
	if counter != nil {
		counter.Charge(cycles.PhaseDisasm, cycles.UnitDecodedInst, uint64(len(p.Insts)))
	}

	// Pass 2: bundle rule.
	sp := tr.StartSpan("disasm:bundle-check")
	i := firstIndex(len(p.Insts), workers, func(i int) bool {
		in := &p.Insts[i]
		return in.Addr/BundleSize != (in.Addr+uint64(in.Len)-1)/BundleSize
	})
	sp.End()
	if i >= 0 {
		in := &p.Insts[i]
		return nil, fmt.Errorf("%w: %s at %#x (%d bytes)", ErrBundleCrossing, in.String(), in.Addr, in.Len)
	}

	// Pass 3: control-transfer targets. Targets outside the region (e.g.
	// into a runtime the enclave doesn't have) are invalid too.
	sp = tr.StartSpan("disasm:branch-check")
	i = firstIndex(len(p.Insts), workers, func(i int) bool {
		tgt, ok := p.Insts[i].BranchTarget()
		return ok && (!p.Contains(tgt) || !p.IsInstStart(tgt))
	})
	sp.End()
	if i >= 0 {
		in := &p.Insts[i]
		tgt, _ := in.BranchTarget()
		return nil, fmt.Errorf("%w: %s at %#x targets %#x", ErrBadBranchTarget, in.String(), in.Addr, tgt)
	}

	return p, nil
}

// normalizeWorkers resolves the requested worker count against the input
// size: <= 0 means GOMAXPROCS, and the region is never cut into chunks
// smaller than minChunkBytes.
func normalizeWorkers(workers, size int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := size / minChunkBytes; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// chunkDecode is one worker's speculative decode of [start, spill).
type chunkDecode struct {
	insts  []x86.Inst
	spill  int   // offset where decoding stopped (first offset NOT consumed)
	err    error // decode failure, if any
	errOff int   // offset of the failure
}

// chunkInstPool recycles the per-chunk speculative decode buffers across
// provisioning sessions. Safe because seam reconciliation copies adopted
// instruction values into the merged slice — no chunk backing array
// outlives decodeSharded.
var chunkInstPool = sync.Pool{
	New: func() any {
		s := make([]x86.Inst, 0, 1024)
		return &s
	},
}

// decodeSharded decodes code into its instruction sequence. With one
// worker it is the plain sequential loop; with more, chunks are decoded
// speculatively in parallel and reconciled in address order.
func decodeSharded(code []byte, base uint64, workers int) ([]x86.Inst, error) {
	if workers <= 1 || len(code) < workers {
		return decodeRange(code, base, 0, len(code))
	}

	chunkSize := (len(code) + workers - 1) / workers
	numChunks := (len(code) + chunkSize - 1) / chunkSize
	chunks := make([]chunkDecode, numChunks)
	defer func() {
		for k := range chunks {
			if chunks[k].insts == nil {
				continue
			}
			s := chunks[k].insts[:0]
			chunkInstPool.Put(&s)
		}
	}()
	var wg sync.WaitGroup
	for k := 0; k < numChunks; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			start := k * chunkSize
			end := start + chunkSize
			if end > len(code) {
				end = len(code)
			}
			decodeChunk(&chunks[k], code, base, start, end)
		}(k)
	}
	wg.Wait()
	return mergeChunks(code, base, chunks, chunkSize)
}

// decodeChunk is one worker's speculative decode of code offsets
// [start, end): decoding continues past end into the following chunk until
// an instruction boundary lands at or beyond it (spill). The chunk's
// result depends only on code[start : min(end+14, len(code))] — an
// instruction is at most 15 bytes, so the last decode started before end
// never reads further — which is what lets the streaming decoder launch a
// chunk before the whole region has arrived.
func decodeChunk(c *chunkDecode, code []byte, base uint64, start, end int) {
	c.insts = (*chunkInstPool.Get().(*[]x86.Inst))[:0]
	off := start
	for off < end {
		addr := base + uint64(off)
		in, err := x86.Decode(code[off:], addr)
		if err != nil {
			c.err, c.errOff = err, off
			break
		}
		c.insts = append(c.insts, in)
		off += in.Len
	}
	c.spill = off
}

// mergeChunks performs seam reconciliation: walk the region in address
// order. Whenever the true decode position coincides with an instruction
// start some chunk decoded speculatively, that chunk's tail is adopted
// wholesale (its decode from that offset is, by determinism, exactly what a
// serial pass would produce); otherwise a single instruction is re-decoded
// serially and the test repeats. Chunk 0 always starts aligned, so the
// prefix is adopted immediately.
func mergeChunks(code []byte, base uint64, chunks []chunkDecode, chunkSize int) ([]x86.Inst, error) {
	// The merged slice is presized from the speculative totals: the true
	// sequence has at most a handful more instructions than the chunks'
	// sum (seam re-decodes), so one allocation nearly always suffices.
	var est int
	for k := range chunks {
		est += len(chunks[k].insts)
	}
	insts := make([]x86.Inst, 0, est)
	pos := 0
	for pos < len(code) {
		c := &chunks[pos/chunkSize]
		if i, ok := seekChunk(c, base+uint64(pos)); ok {
			insts = append(insts, c.insts[i:]...)
			if c.err != nil {
				return nil, undecodable(base+uint64(c.errOff), c.err)
			}
			pos = c.spill
			continue
		}
		addr := base + uint64(pos)
		in, err := x86.Decode(code[pos:], addr)
		if err != nil {
			return nil, undecodable(addr, err)
		}
		insts = append(insts, in)
		pos += in.Len
	}
	return insts, nil
}

// seekChunk finds the index in c.insts of the instruction starting at
// addr, if the chunk's speculative decode visited that start.
func seekChunk(c *chunkDecode, addr uint64) (int, bool) {
	i := sort.Search(len(c.insts), func(i int) bool { return c.insts[i].Addr >= addr })
	if i < len(c.insts) && c.insts[i].Addr == addr {
		return i, true
	}
	return 0, false
}

// decodeRange is the sequential decode loop over code[start:end).
func decodeRange(code []byte, base uint64, start, end int) ([]x86.Inst, error) {
	// Synthetic-toolchain instructions average ~4 bytes, so this presize
	// usually avoids every append regrow.
	insts := make([]x86.Inst, 0, (end-start)/4+1)
	off := start
	for off < end {
		addr := base + uint64(off)
		in, err := x86.Decode(code[off:], addr)
		if err != nil {
			return nil, undecodable(addr, err)
		}
		insts = append(insts, in)
		off += in.Len
	}
	return insts, nil
}

func undecodable(addr uint64, err error) error {
	return fmt.Errorf("%w: at %#x: %v", ErrUndecodable, addr, err)
}

// firstIndex returns the lowest i in [0, n) for which bad(i) holds, or -1.
// The scan is sharded across workers; the result is deterministic because
// shards are contiguous and merged in order.
func firstIndex(n, workers int, bad func(i int) bool) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const minShard = 4096
	if shards := n / minShard; workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if bad(i) {
				return i
			}
		}
		return -1
	}
	shardSize := (n + workers - 1) / workers
	numShards := (n + shardSize - 1) / shardSize
	hits := make([]int, numShards)
	var wg sync.WaitGroup
	for s := 0; s < numShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			lo, hi := s*shardSize, (s+1)*shardSize
			if hi > n {
				hi = n
			}
			hits[s] = -1
			for i := lo; i < hi; i++ {
				if bad(i) {
					hits[s] = i
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, h := range hits {
		if h >= 0 {
			return h
		}
	}
	return -1
}

// CheckReachability enforces the fourth rule: every non-padding
// instruction must be reachable from the entry point or a function start.
func (p *Program) CheckReachability(entry uint64, tab *symtab.Table) error {
	reached := make([]bool, len(p.Insts))
	var stack []int
	push := func(addr uint64) {
		if i, ok := p.InstAt(addr); ok && !reached[i] {
			reached[i] = true
			stack = append(stack, i)
		}
	}
	push(entry)
	if tab != nil {
		for _, fn := range tab.Functions() {
			push(fn.Addr)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := &p.Insts[i]
		// Branch edge.
		if tgt, ok := in.BranchTarget(); ok {
			push(tgt)
		}
		// Fall-through edge; ret and unconditional jmp do not fall
		// through. Indirect jumps don't either, but their targets are
		// function starts already seeded.
		switch in.Op {
		case x86.OpRet, x86.OpJmp, x86.OpJmpInd, x86.OpUd2, x86.OpHlt:
		default:
			push(in.Addr + uint64(in.Len))
		}
	}
	for i := range p.Insts {
		if !reached[i] && p.Insts[i].Op != x86.OpNop {
			return fmt.Errorf("%w: %s at %#x", ErrUnreachable, p.Insts[i].String(), p.Insts[i].Addr)
		}
	}
	return nil
}
