package nacl

// Streaming decode: the gateway's provisioning pipeline feeds text-segment
// bytes into a StreamDecoder as secchan frames arrive, so the sharded
// speculative decode of PR 2 runs concurrently with the transfer instead of
// after it. The decoder reuses decodeChunk/mergeChunks/finishProgram from
// the buffered path, so a completed stream produces a Program, rejection,
// and cycle charges identical to DecodeProgramTraced over the same bytes —
// the overlap moves work earlier in wall-clock time, never changes it.

import (
	"fmt"
	"sync"

	"engarde/internal/cycles"
	"engarde/internal/obs"
	"engarde/internal/x86"
)

// streamSpillBytes is how far past its chunk boundary a speculative decode
// may read: one architectural maximum-length instruction starting at the
// chunk's last byte. A chunk is launched only once this margin has arrived
// (or the region is complete), which makes its result byte-identical to a
// decode against the full region.
const streamSpillBytes = 15

// streamInitialBuf caps the up-front buffer reservation. The region size
// is derived from peer-supplied ELF headers, so like RecvStream the decoder
// allocates at most this much before real bytes arrive and lets append
// grow the rest.
const streamInitialBuf = 1 << 20

// StreamDecoder incrementally decodes a text region whose bytes arrive in
// pieces. Feed copies each piece in and launches a chunk's speculative
// decode goroutine the moment the chunk's byte range (plus spill margin) is
// complete; Finish waits, reconciles seams, and runs the bundle and
// branch-target passes. Feed and Finish must be called from one goroutine;
// only the chunk decodes run concurrently.
type StreamDecoder struct {
	base    uint64
	size    int
	workers int // as requested; normalized count lives in len(chunks)

	buf        []byte
	chunkSize  int
	chunks     []chunkDecode
	launched   int // chunks whose decode goroutine has started
	overlapped bool
	wg         sync.WaitGroup
	released   bool
}

// NewStreamDecoder prepares an incremental decode of a size-byte region
// based at base, sharded across workers (<= 0 means GOMAXPROCS, same
// normalization as DecodeProgramParallel). Small regions degrade to one
// sequential decode at Finish, exactly as the buffered path does.
func NewStreamDecoder(base uint64, size, workers int) *StreamDecoder {
	d := &StreamDecoder{base: base, size: size, workers: workers}
	initial := size
	if initial > streamInitialBuf {
		initial = streamInitialBuf
	}
	d.buf = make([]byte, 0, initial)
	if w := normalizeWorkers(workers, size); w > 1 && size >= w {
		d.chunkSize = (size + w - 1) / w
		d.chunks = make([]chunkDecode, (size+d.chunkSize-1)/d.chunkSize)
	}
	return d
}

// Feed appends the next region bytes (copying b, which the caller may
// reuse) and starts any chunk decodes the new bytes complete. Feeding more
// than the declared size is an error.
func (d *StreamDecoder) Feed(b []byte) error {
	if len(d.buf)+len(b) > d.size {
		return fmt.Errorf("nacl: stream decoder fed %d bytes beyond declared size %d", len(d.buf)+len(b)-d.size, d.size)
	}
	d.buf = append(d.buf, b...)
	d.launch()
	return nil
}

// launch starts every not-yet-running chunk whose input is fully buffered.
// The goroutine captures the buffer as it is now: later appends either
// write beyond len into the same array or relocate into a fresh one, so the
// captured prefix is immutable and the decode is race-free.
func (d *StreamDecoder) launch() {
	for d.launched < len(d.chunks) {
		k := d.launched
		start := k * d.chunkSize
		end := start + d.chunkSize
		if end > d.size {
			end = d.size
		}
		need := end + streamSpillBytes
		if need > d.size {
			need = d.size
		}
		if len(d.buf) < need {
			return
		}
		window := d.buf[:len(d.buf)]
		d.launched++
		if len(d.buf) < d.size {
			d.overlapped = true
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			decodeChunk(&d.chunks[k], window, d.base, start, end)
		}()
	}
}

// Complete reports whether the full declared region has been fed.
func (d *StreamDecoder) Complete() bool { return len(d.buf) == d.size }

// Bytes returns the region received so far. The caller must not mutate it
// while chunk decodes may still be running (i.e. before Finish/Abandon).
func (d *StreamDecoder) Bytes() []byte { return d.buf }

// Overlapped reports whether any chunk decode was launched before the last
// region byte arrived — i.e. whether transfer and decode actually ran
// concurrently (telemetry: the recv-overlap span is only meaningful then).
func (d *StreamDecoder) Overlapped() bool { return d.overlapped }

// Finish completes the decode and validation over the fully-fed region:
// seam reconciliation, the decoded-instruction charge, and the bundle and
// branch passes — the same spans, charges, and results as
// DecodeProgramTraced(Bytes(), ...). The decoder cannot be reused after.
func (d *StreamDecoder) Finish(counter *cycles.Counter, tr *obs.Trace) (*Program, error) {
	if !d.Complete() {
		d.Abandon()
		return nil, fmt.Errorf("nacl: stream decoder finished at %d of %d bytes", len(d.buf), d.size)
	}
	var insts []x86.Inst
	var err error
	sp := tr.StartSpan("disasm:decode")
	if d.chunks == nil {
		insts, err = decodeRange(d.buf, d.base, 0, d.size)
	} else {
		d.launch() // zero-byte regions aside, all chunks are launchable now
		d.wg.Wait()
		insts, err = mergeChunks(d.buf, d.base, d.chunks, d.chunkSize)
		d.release()
	}
	sp.End()
	d.released = true
	if err != nil {
		return nil, err
	}
	return finishProgram(insts, d.base, uint64(d.size), counter, d.workers, tr)
}

// Abandon discards the decode — the streaming receive failed, or the
// provisioning pipeline could not adopt it — waiting out any in-flight
// chunk goroutines and returning their buffers to the pool. Safe to call
// more than once and after Finish.
func (d *StreamDecoder) Abandon() {
	if d.released {
		return
	}
	d.released = true
	d.wg.Wait()
	d.release()
	d.buf = nil
}

// release hands the chunks' speculative decode buffers back to the shared
// pool. Callers must have waited out the chunk goroutines first.
func (d *StreamDecoder) release() {
	for k := range d.chunks {
		if d.chunks[k].insts == nil {
			continue
		}
		s := d.chunks[k].insts[:0]
		d.chunks[k].insts = nil
		chunkInstPool.Put(&s)
	}
}
