package nacl

import (
	"math/rand"
	"reflect"
	"testing"

	"engarde/internal/cycles"
)

// streamCases builds code regions spanning the decoder's regimes: valid
// programs large enough to shard, tiny regions that degrade to sequential,
// and garbage that must reject with the buffered path's exact error.
func streamCases() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	cases := map[string][]byte{}

	for _, seed := range fuzzValidateSeeds() {
		cases["seed-"+string(rune('a'+len(cases)))] = seed
	}

	sled := make([]byte, 96*1024)
	for i := range sled {
		sled[i] = 0x90
	}
	sled[len(sled)-1] = 0xC3
	cases["large-nop-sled"] = sled

	garbage := make([]byte, 48*1024)
	rng.Read(garbage)
	cases["random-bytes"] = garbage

	mixed := make([]byte, 64*1024)
	for i := range mixed {
		mixed[i] = 0x90
	}
	rng.Read(mixed[40*1024:]) // valid prefix, garbage tail
	cases["nop-then-garbage"] = mixed

	return cases
}

// feedAll pushes code into d in random-sized pieces (1 byte up to 8 KiB),
// modelling the arbitrary frame boundaries a secchan transfer produces.
func feedAll(t *testing.T, d *StreamDecoder, code []byte, rng *rand.Rand) {
	t.Helper()
	for off := 0; off < len(code); {
		n := 1 + rng.Intn(8*1024)
		if off+n > len(code) {
			n = len(code) - off
		}
		if err := d.Feed(code[off : off+n]); err != nil {
			t.Fatalf("Feed at offset %d: %v", off, err)
		}
		off += n
	}
}

// TestStreamDecoderMatchesBuffered is the streaming analogue of
// FuzzValidate's differential: for any feed schedule and worker count, a
// completed StreamDecoder produces the same Program (or the same error)
// and the same cycle charges as DecodeProgramTraced over the full buffer.
func TestStreamDecoderMatchesBuffered(t *testing.T) {
	const base = 0x1000
	rng := rand.New(rand.NewSource(20260807))
	for name, code := range streamCases() {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 7} {
				seqCtr := cycles.NewCounter(cycles.DefaultModel())
				want, wantErr := DecodeProgramTraced(code, base, seqCtr, workers, nil)

				for trial := 0; trial < 3; trial++ {
					ctr := cycles.NewCounter(cycles.DefaultModel())
					d := NewStreamDecoder(base, len(code), workers)
					feedAll(t, d, code, rng)
					if !d.Complete() {
						t.Fatalf("workers=%d: decoder incomplete after full feed", workers)
					}
					got, gotErr := d.Finish(ctr, nil)

					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("workers=%d: buffered err %v, streamed err %v", workers, wantErr, gotErr)
					}
					if wantErr != nil {
						if wantErr.Error() != gotErr.Error() {
							t.Fatalf("workers=%d: error mismatch:\n  buffered: %v\n  streamed: %v",
								workers, wantErr, gotErr)
						}
						continue
					}
					if !reflect.DeepEqual(got.Insts, want.Insts) || got.Base != want.Base || got.End != want.End {
						t.Fatalf("workers=%d: streamed decode diverges from buffered", workers)
					}
					if !reflect.DeepEqual(ctr.Snapshot(), seqCtr.Snapshot()) {
						t.Fatalf("workers=%d: cycle charges diverge:\n  streamed: %v\n  buffered: %v",
							workers, ctr.Snapshot(), seqCtr.Snapshot())
					}
				}
			}
		})
	}
}

// TestStreamDecoderOverlap pins the telemetry contract: feeding a sharded
// region in small pieces launches chunk decodes before the last byte
// arrives, and a one-shot feed does not count as overlap.
func TestStreamDecoderOverlap(t *testing.T) {
	code := make([]byte, 64*1024)
	for i := range code {
		code[i] = 0x90
	}
	code[len(code)-1] = 0xC3

	d := NewStreamDecoder(0x1000, len(code), 4)
	rng := rand.New(rand.NewSource(7))
	feedAll(t, d, code, rng)
	if !d.Overlapped() {
		t.Error("piecewise feed of a sharded region reported no overlap")
	}
	if _, err := d.Finish(cycles.NewCounter(cycles.DefaultModel()), nil); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	d2 := NewStreamDecoder(0x1000, len(code), 4)
	if err := d2.Feed(code); err != nil {
		t.Fatal(err)
	}
	if d2.Overlapped() {
		t.Error("single full-region feed reported overlap")
	}
	d2.Abandon()
}

// TestStreamDecoderMisuse covers the decoder's error contract: overfeeding
// fails, finishing an incomplete region fails, and Abandon is idempotent
// (including after Finish).
func TestStreamDecoderMisuse(t *testing.T) {
	d := NewStreamDecoder(0, 8, 1)
	if err := d.Feed(make([]byte, 9)); err == nil {
		t.Error("overfeed accepted")
	}

	d = NewStreamDecoder(0, 8, 1)
	if err := d.Feed([]byte{0x90, 0x90}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Finish(cycles.NewCounter(cycles.DefaultModel()), nil); err == nil {
		t.Error("incomplete Finish accepted")
	}
	d.Abandon()
	d.Abandon()

	code := []byte{0x90, 0xC3}
	d = NewStreamDecoder(0x1000, len(code), 1)
	if err := d.Feed(code); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Finish(cycles.NewCounter(cycles.DefaultModel()), nil); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	d.Abandon()
}

// TestStreamDecoderSpillGate asserts chunk launches wait for the spill
// margin: a decoder fed exactly one chunk's bytes (but not the 15-byte
// margin) must not have launched that chunk, because an instruction
// straddling the boundary could decode differently without the margin.
func TestStreamDecoderSpillGate(t *testing.T) {
	size := 4 * 1024
	code := make([]byte, size)
	for i := range code {
		code[i] = 0x90
	}
	code[size-1] = 0xC3

	d := NewStreamDecoder(0x1000, size, 4)
	if len(d.chunks) < 2 {
		t.Skip("region did not shard")
	}
	if err := d.Feed(code[:d.chunkSize]); err != nil {
		t.Fatal(err)
	}
	if d.launched != 0 {
		t.Fatalf("chunk launched without its %d-byte spill margin", streamSpillBytes)
	}
	if err := d.Feed(code[d.chunkSize : d.chunkSize+streamSpillBytes]); err != nil {
		t.Fatal(err)
	}
	if d.launched != 1 {
		t.Fatalf("launched %d chunks after margin arrived, want 1", d.launched)
	}
	d.Abandon()
}
