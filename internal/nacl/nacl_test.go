package nacl

import (
	"errors"
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/symtab"
	"engarde/internal/toolchain"
	"engarde/internal/x86"
)

func finish(t *testing.T, a *x86.Assembler) []byte {
	t.Helper()
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(fixups) != 0 {
		t.Fatalf("unresolved fixups: %v", fixups)
	}
	return code
}

func TestValidateSimpleProgram(t *testing.T) {
	var a x86.Assembler
	a.Label("start")
	a.MovRegImm32(x86.RegAX, 1)
	a.CmpRegImm8(x86.RegAX, 0)
	a.JccLabel(x86.CondNE, "end")
	a.Nop(1)
	a.Label("end")
	a.Ret()
	code := finish(t, &a)
	p, err := Validate(code, 0x1000, 0x1000, nil, nil)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Insts) != 5 {
		t.Errorf("decoded %d instructions", len(p.Insts))
	}
}

func TestValidateRejectsBundleCrossing(t *testing.T) {
	var a x86.Assembler
	// 28 one-byte NOPs, then a 9-byte instruction crossing offset 32.
	for i := 0; i < 28; i++ {
		a.Raw(0x90)
	}
	a.MovRegFS(x86.RegAX, 0x28) // 9 bytes: spans [28, 37)
	a.Ret()
	code := finish(t, &a)
	_, err := Validate(code, 0x1000, 0x1000, nil, nil)
	if !errors.Is(err, ErrBundleCrossing) {
		t.Errorf("Validate = %v, want ErrBundleCrossing", err)
	}
}

func TestValidateRejectsBadBranchTarget(t *testing.T) {
	// jmp into the middle of the mov's immediate bytes.
	var a x86.Assembler
	a.MovRegImm32(x86.RegAX, 0x11223344) // 7 bytes at 0x1000
	a.Ret()
	code := finish(t, &a)
	// Append a hand-crafted jmp rel32 to 0x1003 (inside the mov).
	jmp := []byte{0xE9, 0, 0, 0, 0}
	at := uint64(0x1000 + len(code))
	rel := int32(0x1003 - (at + 5))
	jmp[1] = byte(rel)
	jmp[2] = byte(rel >> 8)
	jmp[3] = byte(rel >> 16)
	jmp[4] = byte(rel >> 24)
	code = append(code, jmp...)

	tab := symtab.New()
	tab.Add(symtab.Entry{Name: "j", Addr: at})
	_, err := Validate(code, 0x1000, 0x1000, tab, nil)
	if !errors.Is(err, ErrBadBranchTarget) {
		t.Errorf("Validate = %v, want ErrBadBranchTarget", err)
	}
}

func TestValidateRejectsOutOfRangeTarget(t *testing.T) {
	var a x86.Assembler
	a.CallSym("far")
	a.Ret()
	code, fixups, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Resolve the call to an address beyond the region.
	if len(fixups) != 1 {
		t.Fatal("expected one fixup")
	}
	rel := int32(0x99999)
	code[fixups[0].Off] = byte(rel)
	code[fixups[0].Off+1] = byte(rel >> 8)
	code[fixups[0].Off+2] = byte(rel >> 16)
	code[fixups[0].Off+3] = byte(rel >> 24)
	_, err = Validate(code, 0x1000, 0x1000, nil, nil)
	if !errors.Is(err, ErrBadBranchTarget) {
		t.Errorf("Validate = %v, want ErrBadBranchTarget", err)
	}
}

func TestValidateRejectsMixedCodeData(t *testing.T) {
	var a x86.Assembler
	a.Ret()
	code := finish(t, &a)
	code = append(code, []byte("\x06plain data bytes\xc4\xc5")...)
	_, err := Validate(code, 0x1000, 0x1000, nil, nil)
	if !errors.Is(err, ErrUndecodable) {
		t.Errorf("Validate = %v, want ErrUndecodable", err)
	}
}

func TestValidateRejectsUnreachable(t *testing.T) {
	var a x86.Assembler
	a.Ret()                     // entry returns immediately
	a.MovRegImm32(x86.RegAX, 7) // dead non-NOP code, no symbol
	a.Ret()
	code := finish(t, &a)
	_, err := Validate(code, 0x1000, 0x1000, nil, nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("Validate = %v, want ErrUnreachable", err)
	}
}

func TestValidateAllowsUnreachablePaddingAndSymbols(t *testing.T) {
	var a x86.Assembler
	a.Ret()  // entry
	a.Nop(9) // padding: allowed unreachable
	fnStart := a.Len()
	a.MovRegImm32(x86.RegAX, 7)
	a.Ret()
	code := finish(t, &a)
	tab := symtab.New()
	tab.Add(symtab.Entry{Name: "helper", Addr: 0x1000 + uint64(fnStart)})
	if _, err := Validate(code, 0x1000, 0x1000, tab, nil); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateChargesDisassembly(t *testing.T) {
	var a x86.Assembler
	a.Nop(1)
	a.Nop(1)
	a.Ret()
	code := finish(t, &a)
	ctr := cycles.NewCounter(cycles.DefaultModel())
	if _, err := Validate(code, 0x1000, 0x1000, nil, ctr); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Units(cycles.PhaseDisasm, cycles.UnitDecodedInst); got != 3 {
		t.Errorf("charged %d decoded instructions, want 3", got)
	}
}

func TestValidateRealToolchainOutput(t *testing.T) {
	// Every binary the synthetic toolchain emits must validate — the
	// by-construction guarantee the whole reproduction rests on.
	for _, variant := range []struct {
		name string
		cfg  toolchain.Config
	}{
		{"plain", toolchain.Config{Name: "v", Seed: 11, NumFuncs: 12, AvgFuncInsts: 80}},
		{"stackprot", toolchain.Config{Name: "v", Seed: 12, NumFuncs: 12, AvgFuncInsts: 80, StackProtector: true}},
		{"ifcc", toolchain.Config{Name: "v", Seed: 13, NumFuncs: 12, AvgFuncInsts: 80, IFCC: true, IndirectRate: 0.02}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			bin, err := toolchain.Build(variant.cfg)
			if err != nil {
				t.Fatal(err)
			}
			f, err := elf64.Parse(bin.Image)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := symtab.FromELF(f)
			if err != nil {
				t.Fatal(err)
			}
			text := f.Section(".text")
			p, err := Validate(text.Data, text.Addr, f.Header.Entry, tab, nil)
			if err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if len(p.Insts) != bin.NumInsts {
				t.Errorf("validated %d instructions, toolchain reported %d", len(p.Insts), bin.NumInsts)
			}
		})
	}
}
