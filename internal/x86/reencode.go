package x86

import "fmt"

// Encode reconstructs the byte encoding of a decoded instruction from its
// layout metadata, in canonical form: each active legacy prefix exactly
// once, in a fixed order, followed by the REX prefix (if any), opcode
// bytes, ModRM/SIB, displacement and immediates. For input without
// redundant prefixes Encode(Decode(b)) == b; input carrying duplicate or
// oddly-ordered prefixes canonicalizes to a shorter equivalent encoding
// that decodes to the same instruction (modulo Len/NumPrefix/Raw).
//
// Encode is the inverse half of the decoder's round-trip property and
// exists for FuzzDecode; it is not an assembler (see Assembler for that).
func Encode(in *Inst) ([]byte, error) {
	if in.NumOpcode < 1 || in.NumOpcode > 3 {
		return nil, fmt.Errorf("x86: encode: opcode byte count %d out of range", in.NumOpcode)
	}
	if in.NumPrefix < 0 || in.NumPrefix+in.NumOpcode > len(in.Raw) {
		return nil, fmt.Errorf("x86: encode: layout (%d prefix + %d opcode bytes) exceeds %d raw bytes",
			in.NumPrefix, in.NumOpcode, len(in.Raw))
	}
	out := make([]byte, 0, maxInstLen)
	if in.Lock {
		out = append(out, 0xF0)
	}
	if in.RepF2 {
		out = append(out, 0xF2)
	}
	if in.RepF3 {
		out = append(out, 0xF3)
	}
	if in.OpSize16 {
		out = append(out, 0x66)
	}
	if in.Addr32 {
		out = append(out, 0x67)
	}
	if in.Seg != SegNone {
		p, ok := segPrefix[in.Seg]
		if !ok {
			return nil, fmt.Errorf("x86: encode: unknown segment override %v", in.Seg)
		}
		out = append(out, p)
	}
	if in.REX != 0 {
		if in.REX&0xF0 != 0x40 {
			return nil, fmt.Errorf("x86: encode: REX byte %#02x out of range", in.REX)
		}
		out = append(out, in.REX)
	}
	out = append(out, in.Raw[in.NumPrefix:in.NumPrefix+in.NumOpcode]...)
	if in.HasModRM {
		out = append(out, in.ModRM)
	}
	if in.HasSIB {
		out = append(out, in.SIB)
	}
	out = appendLEBytes(out, uint64(in.Disp), in.NumDisp)
	if in.NumImm == 3 {
		// ENTER's imm16,imm8 pair (the only 3-byte immediate form).
		out = appendLEBytes(out, uint64(in.Imm), 2)
		out = appendLEBytes(out, uint64(in.Imm2), 1)
	} else {
		out = appendLEBytes(out, uint64(in.Imm), in.NumImm)
	}
	return out, nil
}

func appendLEBytes(out []byte, v uint64, n int) []byte {
	for i := 0; i < n; i++ {
		out = append(out, byte(v>>(8*i)))
	}
	return out
}
