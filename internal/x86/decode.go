package x86

import (
	"errors"
	"fmt"
)

// Decode errors.
var (
	// ErrTruncated is returned when the byte stream ends mid-instruction.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrInvalidOpcode is returned for opcodes that are undefined or that
	// the disassembler refuses to accept (VEX, far branches, #UD forms).
	ErrInvalidOpcode = errors.New("x86: invalid opcode")
	// ErrTooLong is returned when prefixes push the instruction past the
	// architectural 15-byte limit.
	ErrTooLong = errors.New("x86: instruction exceeds 15 bytes")
)

// maxInstLen is the architectural instruction-length limit.
const maxInstLen = 15

// Decode decodes the instruction starting at code[0], assumed to reside at
// virtual address addr. The returned Inst aliases code for its Raw field.
func Decode(code []byte, addr uint64) (Inst, error) {
	var d decoder
	d.code = code
	d.inst.Addr = addr
	if err := d.run(); err != nil {
		return Inst{}, err
	}
	return d.inst, nil
}

// DecodeAll decodes a contiguous code region into a slice of instructions.
// Decoding stops at the first error, which is returned along with the
// instructions decoded so far and the offset at which the error occurred.
func DecodeAll(code []byte, addr uint64) ([]Inst, error) {
	insts := make([]Inst, 0, len(code)/4)
	off := 0
	for off < len(code) {
		in, err := Decode(code[off:], addr+uint64(off))
		if err != nil {
			return insts, fmt.Errorf("at 0x%x: %w", addr+uint64(off), err)
		}
		insts = append(insts, in)
		off += in.Len
	}
	return insts, nil
}

type decoder struct {
	code []byte
	pos  int
	inst Inst

	rexPresent bool
	opcodeByte byte // last opcode byte, for opcode-encoded registers
}

func (d *decoder) byteAt(i int) (byte, error) {
	if i >= len(d.code) {
		return 0, ErrTruncated
	}
	if i >= maxInstLen {
		return 0, ErrTooLong
	}
	return d.code[i], nil
}

func (d *decoder) next() (byte, error) {
	b, err := d.byteAt(d.pos)
	if err != nil {
		return 0, err
	}
	d.pos++
	return b, nil
}

func (d *decoder) run() error {
	if err := d.prefixes(); err != nil {
		return err
	}
	ent, err := d.opcode()
	if err != nil {
		return err
	}
	if !ent.valid {
		return fmt.Errorf("%w: %#02x map bytes %v", ErrInvalidOpcode, d.code[:min(d.pos, len(d.code))], d.inst.NumOpcode)
	}
	if ent.modrm {
		if err := d.modrm(); err != nil {
			return err
		}
	}
	// Resolve group opcodes now that ModRM.reg is known.
	if ent.grp != groupNone {
		var gerr error
		ent, gerr = d.resolveGroup(ent)
		if gerr != nil {
			return gerr
		}
	}
	d.inst.Op = ent.op
	if err := d.immediates(ent); err != nil {
		return err
	}
	d.operands(ent)
	d.inst.Len = d.pos
	d.inst.Raw = d.code[:d.pos]
	return nil
}

// prefixes consumes legacy prefixes followed by an optional REX prefix.
func (d *decoder) prefixes() error {
	for {
		b, err := d.byteAt(d.pos)
		if err != nil {
			return err
		}
		switch b {
		case 0xF0:
			d.inst.Lock = true
		case 0xF2:
			d.inst.RepF2 = true
		case 0xF3:
			d.inst.RepF3 = true
		case 0x66:
			d.inst.OpSize16 = true
		case 0x67:
			d.inst.Addr32 = true
		case 0x26:
			d.inst.Seg = SegES
		case 0x2E:
			d.inst.Seg = SegCS
		case 0x36:
			d.inst.Seg = SegSS
		case 0x3E:
			d.inst.Seg = SegDS
		case 0x64:
			d.inst.Seg = SegFS
		case 0x65:
			d.inst.Seg = SegGS
		default:
			if b&0xF0 == 0x40 { // REX: must immediately precede the opcode
				d.inst.REX = b
				d.rexPresent = true
				d.pos++
				d.inst.NumPrefix = d.pos
				return nil
			}
			d.inst.NumPrefix = d.pos
			return nil
		}
		d.pos++
	}
}

// invalid64 marks one-byte opcodes that #UD in 64-bit mode.
var invalid64 = map[byte]bool{
	0x06: true, 0x07: true, 0x0E: true, 0x16: true, 0x17: true,
	0x1E: true, 0x1F: true, 0x27: true, 0x2F: true, 0x37: true,
	0x3F: true, 0x60: true, 0x61: true, 0x62: true, 0x82: true,
	0x9A: true, 0xC4: true, 0xC5: true, 0xD4: true, 0xD5: true,
	0xD6: true, 0xEA: true,
}

func (d *decoder) opcode() (entry, error) {
	b, err := d.next()
	if err != nil {
		return entry{}, err
	}
	if b != 0x0F {
		if invalid64[b] {
			return entry{}, fmt.Errorf("%w: opcode %#02x is undefined in 64-bit mode", ErrInvalidOpcode, b)
		}
		d.inst.NumOpcode = 1
		ent := oneByte[b]
		d.deriveCond(b, ent)
		d.opcodeByte = b
		return ent, nil
	}
	b2, err := d.next()
	if err != nil {
		return entry{}, err
	}
	switch b2 {
	case 0x38: // three-byte map: ModRM, no immediate
		b3, err := d.next()
		if err != nil {
			return entry{}, err
		}
		_ = b3
		d.inst.NumOpcode = 3
		d.opcodeByte = b3
		return e(OpSSE, argsRM, immNone, true), nil
	case 0x3A: // three-byte map: ModRM + imm8
		b3, err := d.next()
		if err != nil {
			return entry{}, err
		}
		_ = b3
		d.inst.NumOpcode = 3
		d.opcodeByte = b3
		return e(OpSSE, argsRM, imm8, true), nil
	default:
		d.inst.NumOpcode = 2
		ent := twoByte[b2]
		d.deriveCond(b2, ent)
		d.opcodeByte = b2
		return ent, nil
	}
}

func (d *decoder) deriveCond(opcodeByte byte, ent entry) {
	switch ent.op {
	case OpJcc, OpSetcc, OpCmovcc:
		d.inst.Cond = Cond(opcodeByte & 0x0F)
	}
}

func (d *decoder) resolveGroup(ent entry) (entry, error) {
	reg := (d.inst.ModRM >> 3) & 7
	switch ent.grp {
	case group1:
		ent.op = group1Ops[reg]
		ent.args = argsRMImm
	case group1A:
		if reg != 0 {
			return entry{}, fmt.Errorf("%w: 8F /%d", ErrInvalidOpcode, reg)
		}
		ent.op = OpPop
	case group2:
		ent.op = group2Ops[reg]
		if ent.args == argsRM && ent.imm != immNone {
			ent.args = argsRMImm
		}
	case group3:
		ent.op = group3Ops[reg]
		if reg <= 1 { // TEST r/m, imm
			ent.args = argsRMImm
			if ent.width8 {
				ent.imm = imm8
			} else {
				ent.imm = immZ
			}
		}
	case group4:
		ent.op = group4Ops[reg]
	case group5:
		ent.op = group5Ops[reg]
	case group8:
		ent.op = group8Ops[reg]
		ent.args = argsRMImm
	case group9:
		ent.op = OpCmpxchg // cmpxchg8b/16b; rdrand/rdseed share the cell
		if (d.inst.ModRM>>6)&3 == 3 {
			ent.op = OpOther
		}
	case group15:
		ent.op = OpFence
	}
	if ent.op == OpInvalid {
		return entry{}, fmt.Errorf("%w: group opcode with /%d", ErrInvalidOpcode, reg)
	}
	return ent, nil
}

func (d *decoder) modrm() error {
	m, err := d.next()
	if err != nil {
		return err
	}
	d.inst.HasModRM = true
	d.inst.ModRM = m
	mod := m >> 6
	rm := m & 7

	if mod == 3 {
		return nil // register operand, no SIB/disp
	}

	dispSize := 0
	switch mod {
	case 0:
		if rm == 5 { // RIP-relative
			dispSize = 4
		}
	case 1:
		dispSize = 1
	case 2:
		dispSize = 4
	}

	if rm == 4 { // SIB byte
		sib, err := d.next()
		if err != nil {
			return err
		}
		d.inst.HasSIB = true
		d.inst.SIB = sib
		if mod == 0 && sib&7 == 5 { // no base, disp32
			dispSize = 4
		}
	}

	if dispSize > 0 {
		v, err := d.readLE(dispSize)
		if err != nil {
			return err
		}
		d.inst.Disp = signExtend(v, dispSize)
		d.inst.NumDisp = dispSize
	}
	return nil
}

func (d *decoder) readLE(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := d.next()
		if err != nil {
			return 0, err
		}
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

func signExtend(v uint64, n int) int64 {
	shift := uint(64 - 8*n)
	return int64(v<<shift) >> shift
}

func (d *decoder) immediates(ent entry) error {
	size := 0
	switch ent.imm {
	case immNone:
		return nil
	case imm8, immRel8:
		size = 1
	case imm16:
		size = 2
	case immZ, immRelZ:
		if d.inst.OpSize16 && ent.imm == immZ {
			size = 2
		} else {
			size = 4
		}
	case immV:
		switch {
		case d.inst.REX&0x08 != 0:
			size = 8
		case d.inst.OpSize16:
			size = 2
		default:
			size = 4
		}
	case immEnter:
		v, err := d.readLE(2)
		if err != nil {
			return err
		}
		d.inst.Imm = int64(v)
		v2, err := d.readLE(1)
		if err != nil {
			return err
		}
		d.inst.Imm2 = int64(v2)
		d.inst.NumImm = 3
		return nil
	case immMoffs:
		size = 8
		if d.inst.Addr32 {
			size = 4
		}
	}
	v, err := d.readLE(size)
	if err != nil {
		return err
	}
	d.inst.Imm = signExtend(v, size)
	d.inst.NumImm = size
	return nil
}

// rexR, rexX, rexB extract the register-extension bits of the REX prefix,
// already shifted into bit 3 of a register number.
func (d *decoder) rexR() Reg { return Reg((d.inst.REX>>2)&1) << 3 }
func (d *decoder) rexX() Reg { return Reg((d.inst.REX>>1)&1) << 3 }
func (d *decoder) rexB() Reg { return Reg(d.inst.REX&1) << 3 }

func (d *decoder) regOperand(width uint8) Operand {
	r := Reg((d.inst.ModRM>>3)&7) | d.rexR()
	return d.gpr(r, width)
}

// gpr builds a register operand, honouring the legacy AH/CH/DH/BH encodings
// when no REX prefix is present on a byte-sized operand.
func (d *decoder) gpr(r Reg, width uint8) Operand {
	if width == 1 && !d.rexPresent && r >= 4 && r <= 7 {
		return Operand{Kind: KindReg, Reg: r, Width: 1, High8: true}
	}
	return Operand{Kind: KindReg, Reg: r, Width: width}
}

func (d *decoder) rmOperand(width uint8) Operand {
	mod := d.inst.ModRM >> 6
	rm := Reg(d.inst.ModRM & 7)
	if mod == 3 {
		return d.gpr(rm|d.rexB(), width)
	}
	m := Mem{Seg: d.inst.Seg, Base: RegNone, Index: RegNone, Scale: 1, Disp: d.inst.Disp}
	switch {
	case rm == 4: // SIB
		sib := d.inst.SIB
		base := Reg(sib&7) | d.rexB()
		idx := Reg((sib>>3)&7) | d.rexX()
		m.Scale = 1 << (sib >> 6)
		// index=100b without REX.X means "no index"; with REX.X the same
		// bits name R12, which idx already reflects.
		if idx != RegSP {
			m.Index = idx
		}
		if sib&7 == 5 && mod == 0 {
			// no base register, disp32 only
		} else {
			m.Base = base
		}
	case rm == 5 && mod == 0: // RIP-relative
		m.Base = RegRIP
	default:
		m.Base = rm | d.rexB()
	}
	return Operand{Kind: KindMem, Width: width, Mem: m}
}

func (d *decoder) operands(ent entry) {
	width := uint8(0)
	if ent.width8 {
		width = 1
	} else {
		def64 := false
		switch ent.op {
		case OpPush, OpPop, OpCallInd, OpJmpInd:
			def64 = true
		}
		width = d.inst.width(def64)
	}

	set2 := func(dst, src Operand) {
		d.inst.Args[0] = dst
		d.inst.Args[1] = src
		d.inst.NArgs = 2
	}
	set1 := func(o Operand) {
		d.inst.Args[0] = o
		d.inst.NArgs = 1
	}

	switch ent.args {
	case argsRMtoR:
		srcW := width
		// movzx/movsx/movsxd read a narrower source.
		switch {
		case d.inst.Op == OpMovzx || d.inst.Op == OpMovsx:
			if d.opcodeByte == 0xB6 || d.opcodeByte == 0xBE {
				srcW = 1
			} else {
				srcW = 2
			}
		case d.inst.Op == OpMovsxd:
			srcW = 4
		}
		set2(d.regOperand(width), d.rmOperand(srcW))
	case argsRtoRM:
		set2(d.rmOperand(width), d.regOperand(width))
	case argsAccImm:
		set2(d.gpr(RegAX, width), Operand{Kind: KindImm, Imm: d.inst.Imm})
	case argsRMImm:
		set2(d.rmOperand(width), Operand{Kind: KindImm, Imm: d.inst.Imm})
	case argsRM:
		set1(d.rmOperand(width))
	case argsOpReg:
		r := Reg(d.opcodeByte&7) | d.rexB()
		set1(d.gpr(r, width))
	case argsOpRegImm:
		r := Reg(d.opcodeByte&7) | d.rexB()
		set2(d.gpr(r, width), Operand{Kind: KindImm, Imm: d.inst.Imm})
	case argsRRMImm:
		set2(d.regOperand(width), d.rmOperand(width))
	case argsRMOne:
		set2(d.rmOperand(width), Operand{Kind: KindImm, Imm: 1})
	case argsRMCl:
		set2(d.rmOperand(width), d.gpr(RegCX, 1))
	case argsMoffs:
		memOp := Operand{Kind: KindMem, Width: width, Mem: Mem{
			Seg: d.inst.Seg, Base: RegNone, Index: RegNone, Scale: 1,
			Disp: d.inst.Imm, Direct: true,
		}}
		acc := d.gpr(RegAX, width)
		if d.opcodeByte <= 0xA1 { // A0/A1: load
			set2(acc, memOp)
		} else { // A2/A3: store
			set2(memOp, acc)
		}
	case argsXchgAcc:
		r := Reg(d.opcodeByte&7) | d.rexB()
		set2(d.gpr(RegAX, width), d.gpr(r, width))
	case argsRel, argsImmOnly, argsNone:
		// no register/memory operands; immediate lives in Inst.Imm
	}
}
