package x86

// Op is an instruction mnemonic. The decoder assigns a concrete Op to every
// instruction form that EnGarde's policy modules reason about; forms that
// are decodable (length and metadata are always exact) but semantically
// uninteresting to the policies are grouped under coarse mnemonics such as
// OpSSE or OpOther.
type Op int16

// Mnemonics. Ordered roughly by opcode-map appearance; the zero value is
// reserved for "invalid" so that an uninitialized Inst is never mistaken
// for a real instruction.
const (
	OpInvalid Op = iota
	OpAdd
	OpOr
	OpAdc
	OpSbb
	OpAnd
	OpSub
	OpXor
	OpCmp
	OpPush
	OpPop
	OpMovsxd
	OpImul
	OpJcc // conditional jump; condition in Inst.Cond
	OpTest
	OpXchg
	OpMov
	OpLea
	OpNop
	OpCwde
	OpCdq
	OpPushf
	OpPopf
	OpMovs
	OpCmps
	OpStos
	OpLods
	OpScas
	OpRet
	OpCall    // direct near call (E8 rel32)
	OpCallInd // indirect call (FF /2)
	OpJmp     // direct jump (E9/EB)
	OpJmpInd  // indirect jump (FF /4)
	OpEnter
	OpLeave
	OpInt3
	OpInt
	OpRol
	OpRor
	OpRcl
	OpRcr
	OpShl
	OpShr
	OpSar
	OpNot
	OpNeg
	OpMul
	OpDiv
	OpIdiv
	OpInc
	OpDec
	OpHlt
	OpCmc
	OpClc
	OpStc
	OpCli
	OpSti
	OpCld
	OpStd
	OpSyscall
	OpUd2
	OpCmovcc // conditional move; condition in Inst.Cond
	OpSetcc  // conditional set; condition in Inst.Cond
	OpMovzx
	OpMovsx
	OpBt
	OpBts
	OpBtr
	OpBtc
	OpBsf
	OpBsr
	OpBswap
	OpXadd
	OpCmpxchg
	OpCpuid
	OpRdtsc
	OpLoop
	OpJrcxz
	OpIn
	OpOut
	OpFence // lfence/mfence/sfence and the rest of group 15
	OpSSE   // SSE/SSE2 and other vector forms: decoded for length/metadata only
	OpOther // any remaining decodable form
)

var opNames = map[Op]string{
	OpInvalid: "(invalid)",
	OpAdd:     "add", OpOr: "or", OpAdc: "adc", OpSbb: "sbb",
	OpAnd: "and", OpSub: "sub", OpXor: "xor", OpCmp: "cmp",
	OpPush: "push", OpPop: "pop", OpMovsxd: "movsxd", OpImul: "imul",
	OpJcc: "j", OpTest: "test", OpXchg: "xchg", OpMov: "mov",
	OpLea: "lea", OpNop: "nop", OpCwde: "cwde", OpCdq: "cdq",
	OpPushf: "pushf", OpPopf: "popf", OpMovs: "movs", OpCmps: "cmps",
	OpStos: "stos", OpLods: "lods", OpScas: "scas", OpRet: "ret",
	OpCall: "call", OpCallInd: "call*", OpJmp: "jmp", OpJmpInd: "jmp*",
	OpEnter: "enter", OpLeave: "leave", OpInt3: "int3", OpInt: "int",
	OpRol: "rol", OpRor: "ror", OpRcl: "rcl", OpRcr: "rcr",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpNot: "not",
	OpNeg: "neg", OpMul: "mul", OpDiv: "div", OpIdiv: "idiv",
	OpInc: "inc", OpDec: "dec", OpHlt: "hlt", OpCmc: "cmc",
	OpClc: "clc", OpStc: "stc", OpCli: "cli", OpSti: "sti",
	OpCld: "cld", OpStd: "std", OpSyscall: "syscall", OpUd2: "ud2",
	OpCmovcc: "cmov", OpSetcc: "set", OpMovzx: "movzx", OpMovsx: "movsx",
	OpBt: "bt", OpBts: "bts", OpBtr: "btr", OpBtc: "btc",
	OpBsf: "bsf", OpBsr: "bsr", OpBswap: "bswap", OpXadd: "xadd",
	OpCmpxchg: "cmpxchg", OpCpuid: "cpuid", OpRdtsc: "rdtsc",
	OpLoop: "loop", OpJrcxz: "jrcxz", OpIn: "in", OpOut: "out",
	OpFence: "fence", OpSSE: "(sse)", OpOther: "(other)",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return "op?"
}

// IsControlTransfer reports whether the mnemonic transfers control
// (calls, jumps, conditional jumps and returns).
func (op Op) IsControlTransfer() bool {
	switch op {
	case OpJcc, OpCall, OpCallInd, OpJmp, OpJmpInd, OpRet, OpLoop, OpJrcxz:
		return true
	}
	return false
}
