package x86

import (
	"bytes"
	"testing"
)

// mustDecode decodes one instruction or fails the test.
func mustDecode(t *testing.T, code []byte, addr uint64) Inst {
	t.Helper()
	in, err := Decode(code, addr)
	if err != nil {
		t.Fatalf("Decode(% x) error: %v", code, err)
	}
	return in
}

func TestDecodeStackProtectorPattern(t *testing.T) {
	// The exact canary-load sequence from the paper (§5):
	//   19311: mov %fs:0x28, %rax
	in := mustDecode(t, []byte{0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0x00, 0x00, 0x00}, 0x19311)
	if in.Op != OpMov {
		t.Fatalf("Op = %v, want mov", in.Op)
	}
	if in.Len != 9 {
		t.Fatalf("Len = %d, want 9", in.Len)
	}
	if !in.Args[0].IsReg(RegAX) {
		t.Errorf("dst = %+v, want %%rax", in.Args[0])
	}
	if !in.Args[1].IsSegDisp(SegFS, 0x28) {
		t.Errorf("src = %+v, want %%fs:0x28", in.Args[1])
	}
	if in.NumPrefix != 2 || in.NumOpcode != 1 || in.NumDisp != 4 {
		t.Errorf("layout = (%d,%d,%d), want (2,1,4)", in.NumPrefix, in.NumOpcode, in.NumDisp)
	}
}

func TestDecodeCanaryStore(t *testing.T) {
	// 1931a: mov %rax, (%rsp)  =  48 89 04 24
	in := mustDecode(t, []byte{0x48, 0x89, 0x04, 0x24}, 0x1931a)
	if in.Op != OpMov || in.Len != 4 {
		t.Fatalf("got %v len %d", in.Op, in.Len)
	}
	if !in.Args[0].IsMemBaseDisp(RegSP, 0) {
		t.Errorf("dst = %+v, want (%%rsp)", in.Args[0])
	}
	if !in.Args[1].IsReg(RegAX) {
		t.Errorf("src = %+v, want %%rax", in.Args[1])
	}
}

func TestDecodeCanaryCompare(t *testing.T) {
	// 19407: cmp (%rsp), %rax  =  48 3B 04 24
	in := mustDecode(t, []byte{0x48, 0x3B, 0x04, 0x24}, 0x19407)
	if in.Op != OpCmp {
		t.Fatalf("Op = %v, want cmp", in.Op)
	}
	if !in.Args[0].IsReg(RegAX) || !in.Args[1].IsMemBaseDisp(RegSP, 0) {
		t.Errorf("args = %+v", in.Args)
	}
}

func TestDecodeIFCCPattern(t *testing.T) {
	// The IFCC guard sequence from the paper (§5):
	//   1b459: lea 0x85c70(%rip), %rax
	//   1b460: sub %eax, %ecx
	//   1b462: and $0x1ff8, %rcx
	//   1b469: add %rax, %rcx
	//   1b475: callq *%rcx
	code := []byte{
		0x48, 0x8D, 0x05, 0x70, 0x5C, 0x08, 0x00, // lea
		0x29, 0xC1, // sub %eax,%ecx
		0x48, 0x81, 0xE1, 0xF8, 0x1F, 0x00, 0x00, // and $0x1ff8,%rcx
		0x48, 0x01, 0xC1, // add %rax,%rcx
		0xFF, 0xD1, // callq *%rcx
	}
	insts, err := DecodeAll(code, 0x1b459)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(insts) != 5 {
		t.Fatalf("decoded %d instructions, want 5", len(insts))
	}

	lea := insts[0]
	if lea.Op != OpLea || !lea.Args[0].IsReg(RegAX) {
		t.Errorf("inst 0 = %v, want lea → rax", lea.String())
	}
	if tgt, ok := lea.RIPTarget(); !ok || tgt != 0x1b459+7+0x85c70 {
		t.Errorf("lea RIP target = %#x, %v", tgt, ok)
	}

	sub := insts[1]
	if sub.Op != OpSub || !sub.Args[0].IsReg(RegCX) || !sub.Args[1].IsReg(RegAX) {
		t.Errorf("inst 1 = %v, want sub %%eax, %%ecx", sub.String())
	}
	if sub.Args[0].Width != 4 {
		t.Errorf("sub width = %d, want 4", sub.Args[0].Width)
	}

	and := insts[2]
	if and.Op != OpAnd || !and.Args[0].IsReg(RegCX) || and.Args[1].Imm != 0x1ff8 {
		t.Errorf("inst 2 = %v, want and $0x1ff8, %%rcx", and.String())
	}

	add := insts[3]
	if add.Op != OpAdd || !add.Args[0].IsReg(RegCX) || !add.Args[1].IsReg(RegAX) {
		t.Errorf("inst 3 = %v, want add %%rax, %%rcx", add.String())
	}

	call := insts[4]
	if !call.IsIndirectCall() || !call.Args[0].IsReg(RegCX) {
		t.Errorf("inst 4 = %v, want callq *%%rcx", call.String())
	}
}

func TestDecodeDirectCall(t *testing.T) {
	// E8 rel32 at 0x1000, target 0x2000: rel = 0x2000 - 0x1005 = 0xFFB
	in := mustDecode(t, []byte{0xE8, 0xFB, 0x0F, 0x00, 0x00}, 0x1000)
	if !in.IsDirectCall() {
		t.Fatalf("not a direct call: %v", in.String())
	}
	if tgt, ok := in.BranchTarget(); !ok || tgt != 0x2000 {
		t.Errorf("target = %#x, want 0x2000", tgt)
	}
}

func TestDecodeJccForms(t *testing.T) {
	// jne rel8 (75 xx) and jne rel32 (0F 85 xx).
	in8 := mustDecode(t, []byte{0x75, 0x12}, 0x1941f-0x14)
	if in8.Op != OpJcc || in8.Cond != CondNE {
		t.Errorf("rel8: %v cond %v", in8.Op, in8.Cond)
	}
	in32 := mustDecode(t, []byte{0x0F, 0x85, 0x10, 0x00, 0x00, 0x00}, 0x100)
	if in32.Op != OpJcc || in32.Cond != CondNE {
		t.Errorf("rel32: %v cond %v", in32.Op, in32.Cond)
	}
	if tgt, _ := in32.BranchTarget(); tgt != 0x100+6+0x10 {
		t.Errorf("rel32 target = %#x", tgt)
	}
}

func TestDecodeJumpTableEntry(t *testing.T) {
	// jmpq rel32 followed by nopl (%rax) — an IFCC jump-table slot.
	code := []byte{
		0xE9, 0x00, 0x10, 0x00, 0x00, // jmpq
		0x0F, 0x1F, 0x00, // nopl (%rax)
	}
	insts, err := DecodeAll(code, 0xa19d0)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if insts[0].Op != OpJmp {
		t.Errorf("inst 0 = %v, want jmp", insts[0].Op)
	}
	if insts[1].Op != OpNop || insts[1].Len != 3 {
		t.Errorf("inst 1 = %v len %d, want 3-byte nop", insts[1].Op, insts[1].Len)
	}
}

func TestDecodeInvalidOpcodes(t *testing.T) {
	for _, b := range []byte{0x06, 0x0E, 0x27, 0x62, 0x9A, 0xC4, 0xEA} {
		if _, err := Decode([]byte{b, 0, 0, 0, 0, 0, 0, 0}, 0); err == nil {
			t.Errorf("opcode %#02x: expected error in 64-bit mode", b)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	cases := [][]byte{
		{0x48},                   // lone REX
		{0xE8, 0x01},             // call with short rel32
		{0x48, 0x8B},             // mov missing ModRM
		{0x48, 0x8B, 0x04},       // missing SIB
		{0x48, 0x8B, 0x84, 0x24}, // missing disp32
	}
	for _, c := range cases {
		if _, err := Decode(c, 0); err == nil {
			t.Errorf("Decode(% x): expected truncation error", c)
		}
	}
}

func TestDecodeTooLong(t *testing.T) {
	// 15 segment prefixes exceed the architectural limit.
	code := bytes.Repeat([]byte{0x2E}, 16)
	if _, err := Decode(code, 0); err == nil {
		t.Error("expected ErrTooLong")
	}
}

func TestDecodeRexRegisters(t *testing.T) {
	// mov %r8, %r15 = 4D 89 C7
	in := mustDecode(t, []byte{0x4D, 0x89, 0xC7}, 0)
	if !in.Args[0].IsReg(RegR15) || !in.Args[1].IsReg(RegR8) {
		t.Errorf("args = %v", in.String())
	}
}

func TestDecodePushPop(t *testing.T) {
	in := mustDecode(t, []byte{0x55}, 0) // push %rbp
	if in.Op != OpPush || !in.Args[0].IsReg(RegBP) {
		t.Errorf("got %v", in.String())
	}
	in = mustDecode(t, []byte{0x41, 0x54}, 0) // push %r12
	if in.Op != OpPush || !in.Args[0].IsReg(RegR12) {
		t.Errorf("got %v", in.String())
	}
	if in.Args[0].Width != 8 {
		t.Errorf("push width = %d, want 8 (64-bit default)", in.Args[0].Width)
	}
}

func TestDecodeGroup5(t *testing.T) {
	// call *(%rax) — indirect through memory (FF 10).
	in := mustDecode(t, []byte{0xFF, 0x10}, 0)
	if !in.IsIndirectCall() || in.Args[0].Kind != KindMem {
		t.Errorf("got %v", in.String())
	}
	// jmp *%rdx (FF E2)
	in = mustDecode(t, []byte{0xFF, 0xE2}, 0)
	if in.Op != OpJmpInd {
		t.Errorf("got %v, want jmp*", in.Op)
	}
	// push (%rbx) (FF 33)
	in = mustDecode(t, []byte{0xFF, 0x33}, 0)
	if in.Op != OpPush {
		t.Errorf("got %v, want push", in.Op)
	}
}

func TestDecodeMovImm64(t *testing.T) {
	// movabs $0x1122334455667788, %rax = 48 B8 88 77 66 55 44 33 22 11
	in := mustDecode(t, []byte{0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11}, 0)
	if in.Op != OpMov || in.NumImm != 8 || in.Imm != 0x1122334455667788 {
		t.Errorf("got %v imm=%#x numimm=%d", in.Op, in.Imm, in.NumImm)
	}
}

func TestDecodeRIPRelative(t *testing.T) {
	// mov 0x200010(%rip), %rax = 48 8B 05 10 00 20 00
	in := mustDecode(t, []byte{0x48, 0x8B, 0x05, 0x10, 0x00, 0x20, 0x00}, 0x400000)
	tgt, ok := in.RIPTarget()
	if !ok || tgt != 0x400000+7+0x200010 {
		t.Errorf("RIP target = %#x, ok=%v", tgt, ok)
	}
}

func TestDecodeSIBScaledIndex(t *testing.T) {
	// mov (%rax,%rcx,8), %rdx = 48 8B 14 C8
	in := mustDecode(t, []byte{0x48, 0x8B, 0x14, 0xC8}, 0)
	m := in.Args[1].Mem
	if m.Base != RegAX || m.Index != RegCX || m.Scale != 8 {
		t.Errorf("mem = %+v", m)
	}
}

func TestDecodeHigh8Registers(t *testing.T) {
	// mov %ah, %bl without REX = 88 E3
	in := mustDecode(t, []byte{0x88, 0xE3}, 0)
	if !in.Args[1].High8 {
		t.Errorf("src should be AH (High8): %+v", in.Args[1])
	}
	// With REX, the same bits mean %spl: 40 88 E3
	in = mustDecode(t, []byte{0x40, 0x88, 0xE3}, 0)
	if in.Args[1].High8 {
		t.Errorf("src should be SPL, not AH: %+v", in.Args[1])
	}
}

func TestDecodeNopFamily(t *testing.T) {
	for n := 1; n <= 9; n++ {
		var a Assembler
		a.Nop(n)
		code, _, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		in := mustDecode(t, code, 0)
		if in.Op != OpNop {
			t.Errorf("nop(%d): op = %v", n, in.Op)
		}
		if in.Len != n {
			t.Errorf("nop(%d): len = %d", n, in.Len)
		}
	}
}

func TestDecodeSyscallAndFriends(t *testing.T) {
	tests := []struct {
		code []byte
		op   Op
	}{
		{[]byte{0x0F, 0x05}, OpSyscall},
		{[]byte{0x0F, 0x0B}, OpUd2},
		{[]byte{0xF4}, OpHlt},
		{[]byte{0xC3}, OpRet},
		{[]byte{0xC9}, OpLeave},
		{[]byte{0xCC}, OpInt3},
		{[]byte{0x0F, 0xA2}, OpCpuid},
		{[]byte{0x0F, 0x31}, OpRdtsc},
	}
	for _, tt := range tests {
		in := mustDecode(t, tt.code, 0)
		if in.Op != tt.op {
			t.Errorf("% x: op = %v, want %v", tt.code, in.Op, tt.op)
		}
	}
}

func TestDecodeAllStopsAtError(t *testing.T) {
	code := []byte{0x90, 0x90, 0x06} // nop, nop, invalid
	insts, err := DecodeAll(code, 0x100)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(insts) != 2 {
		t.Errorf("decoded %d before error, want 2", len(insts))
	}
}

func TestControlTransferClassification(t *testing.T) {
	ops := map[Op]bool{
		OpCall: true, OpCallInd: true, OpJmp: true, OpJmpInd: true,
		OpJcc: true, OpRet: true, OpMov: false, OpAdd: false,
	}
	for op, want := range ops {
		if got := op.IsControlTransfer(); got != want {
			t.Errorf("%v.IsControlTransfer() = %v, want %v", op, got, want)
		}
	}
}
