package x86

import "testing"

// TestKnownEncodings decodes a corpus of hand-verified x86-64 encodings
// spanning the opcode map well beyond what the toolchain emits: extension
// groups, string ops, moffs forms, SSE (one-, two- and three-byte maps),
// lock/rep prefixes and address-size overrides. For each, the decoded
// mnemonic and total length must be exact — lengths are what NaCl-style
// reliable disassembly lives or dies by.
func TestKnownEncodings(t *testing.T) {
	tests := []struct {
		name string
		code []byte
		op   Op
		len  int
	}{
		{"movzx rax, bl", []byte{0x48, 0x0F, 0xB6, 0xC3}, OpMovzx, 4},
		{"movzx ecx, ax", []byte{0x0F, 0xB7, 0xC8}, OpMovzx, 3},
		{"movsx rax, al", []byte{0x48, 0x0F, 0xBE, 0xC0}, OpMovsx, 4},
		{"movsxd rcx, eax", []byte{0x48, 0x63, 0xC8}, OpMovsxd, 3},
		{"sete al", []byte{0x0F, 0x94, 0xC0}, OpSetcc, 3},
		{"setg bl", []byte{0x0F, 0x9F, 0xC3}, OpSetcc, 3},
		{"cmove rcx, rax", []byte{0x48, 0x0F, 0x44, 0xC8}, OpCmovcc, 4},
		{"bswap eax", []byte{0x0F, 0xC8}, OpBswap, 2},
		{"bswap rcx", []byte{0x48, 0x0F, 0xC9}, OpBswap, 3},
		{"lock cmpxchg [rbx], rcx", []byte{0xF0, 0x48, 0x0F, 0xB1, 0x0B}, OpCmpxchg, 5},
		{"lock xadd [rbx], rax", []byte{0xF0, 0x48, 0x0F, 0xC1, 0x03}, OpXadd, 5},
		{"rep movsb", []byte{0xF3, 0xA4}, OpMovs, 2},
		{"movsq", []byte{0x48, 0xA5}, OpMovs, 2},
		{"rep stosq", []byte{0xF3, 0x48, 0xAB}, OpStos, 3},
		{"scasb", []byte{0xAE}, OpScas, 1},
		{"lodsd", []byte{0xAD}, OpLods, 1},
		{"syscall", []byte{0x0F, 0x05}, OpSyscall, 2},
		{"cpuid", []byte{0x0F, 0xA2}, OpCpuid, 2},
		{"rdtsc", []byte{0x0F, 0x31}, OpRdtsc, 2},
		{"6-byte nop", []byte{0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00}, OpNop, 6},
		{"movaps xmm0, xmm1", []byte{0x0F, 0x28, 0xC1}, OpSSE, 3},
		{"movdqa xmm0, [rip+0]", []byte{0x66, 0x0F, 0x6F, 0x05, 0, 0, 0, 0}, OpSSE, 8},
		{"movsd xmm1, [rip+16]", []byte{0xF2, 0x0F, 0x10, 0x0D, 0x10, 0, 0, 0}, OpSSE, 8},
		{"pshufb mm0, mm1 (0F38)", []byte{0x0F, 0x38, 0x00, 0xC1}, OpSSE, 4},
		{"palignr xmm0, xmm1, 8 (0F3A)", []byte{0x66, 0x0F, 0x3A, 0x0F, 0xC1, 0x08}, OpSSE, 6},
		{"pshufd xmm0, xmm1, 0", []byte{0x66, 0x0F, 0x70, 0xC1, 0x00}, OpSSE, 5},
		{"mov eax, moffs", []byte{0xA1, 1, 2, 3, 4, 5, 6, 7, 8}, OpMov, 9},
		{"mov moffs, rax", []byte{0x48, 0xA3, 1, 2, 3, 4, 5, 6, 7, 8}, OpMov, 10},
		{"cqo", []byte{0x48, 0x99}, OpCdq, 2},
		{"cdqe", []byte{0x48, 0x98}, OpCwde, 2},
		{"jmp [rip+0]", []byte{0xFF, 0x25, 0, 0, 0, 0}, OpJmpInd, 6},
		{"call [r8+rcx*8]", []byte{0x41, 0xFF, 0x14, 0xC8}, OpCallInd, 4},
		{"inc dword [rax]", []byte{0xFF, 0x00}, OpInc, 2},
		{"dec bl", []byte{0xFE, 0xCB}, OpDec, 2},
		{"push qword [rbp+8]", []byte{0xFF, 0x75, 0x08}, OpPush, 3},
		{"addr32 mov eax, [eax]", []byte{0x67, 0x8B, 0x00}, OpMov, 3},
		{"neg eax", []byte{0xF7, 0xD8}, OpNeg, 2},
		{"not rax", []byte{0x48, 0xF7, 0xD0}, OpNot, 3},
		{"mul rcx", []byte{0x48, 0xF7, 0xE1}, OpMul, 3},
		{"idiv ecx", []byte{0xF7, 0xF9}, OpIdiv, 2},
		{"test bl, 1", []byte{0xF6, 0xC3, 0x01}, OpTest, 3},
		{"test rdi, 1", []byte{0x48, 0xF7, 0xC7, 1, 0, 0, 0}, OpTest, 7},
		{"enter 16, 1", []byte{0xC8, 0x10, 0x00, 0x01}, OpEnter, 4},
		{"leave", []byte{0xC9}, OpLeave, 1},
		{"push 0x7f", []byte{0x6A, 0x7F}, OpPush, 2},
		{"push 0x100", []byte{0x68, 0x00, 0x01, 0x00, 0x00}, OpPush, 5},
		{"imul eax, eax, 10000", []byte{0x69, 0xC0, 0x10, 0x27, 0, 0}, OpImul, 6},
		{"imul eax, eax, 100", []byte{0x6B, 0xC0, 0x64}, OpImul, 3},
		{"imul rax, rcx", []byte{0x48, 0x0F, 0xAF, 0xC1}, OpImul, 4},
		{"pop qword [rsp]", []byte{0x8F, 0x04, 0x24}, OpPop, 3},
		{"shl eax, 1", []byte{0xD1, 0xE0}, OpShl, 2},
		{"shr eax, cl", []byte{0xD3, 0xE8}, OpShr, 2},
		{"sar rdx, 3", []byte{0x48, 0xC1, 0xFA, 0x03}, OpSar, 4},
		{"rol cl, 1", []byte{0xD0, 0xC1}, OpRol, 2},
		{"mfence", []byte{0x0F, 0xAE, 0xF0}, OpFence, 3},
		{"bt eax, 4", []byte{0x0F, 0xBA, 0xE0, 0x04}, OpBt, 4},
		{"bt eax, ebx", []byte{0x0F, 0xA3, 0xD8}, OpBt, 3},
		{"bts rdx, rax", []byte{0x48, 0x0F, 0xAB, 0xC2}, OpBts, 4},
		{"bsf eax, ecx", []byte{0x0F, 0xBC, 0xC1}, OpBsf, 3},
		{"bsr rax, rcx", []byte{0x48, 0x0F, 0xBD, 0xC1}, OpBsr, 4},
		{"ud2", []byte{0x0F, 0x0B}, OpUd2, 2},
		{"int 0x80", []byte{0xCD, 0x80}, OpInt, 2},
		{"int3", []byte{0xCC}, OpInt3, 1},
		{"in al, dx", []byte{0xEC}, OpIn, 1},
		{"out 0x70, al", []byte{0xE6, 0x70}, OpOut, 2},
		{"xchg rax, rbx", []byte{0x48, 0x93}, OpXchg, 2},
		{"xchg [rax], ecx", []byte{0x87, 0x08}, OpXchg, 2},
		{"pushf", []byte{0x9C}, OpPushf, 1},
		{"popf", []byte{0x9D}, OpPopf, 1},
		{"ret 0x10", []byte{0xC2, 0x10, 0x00}, OpRet, 3},
		{"loop -2", []byte{0xE2, 0xFE}, OpLoop, 2},
		{"jrcxz +0", []byte{0xE3, 0x00}, OpJrcxz, 2},
		{"adc rax, rbx", []byte{0x48, 0x11, 0xD8}, OpAdc, 3},
		{"sbb ecx, edx", []byte{0x19, 0xD1}, OpSbb, 2},
		{"or byte [rdi], 0x40", []byte{0x80, 0x0F, 0x40}, OpOr, 3},
		{"xlat", []byte{0xD7}, OpOther, 1},
		{"fld qword [rax] (x87)", []byte{0xDD, 0x00}, OpOther, 2},
		{"fstp st1 (x87)", []byte{0xDD, 0xD9}, OpOther, 2},
		{"mov gs:[0x10], eax", []byte{0x65, 0x89, 0x04, 0x25, 0x10, 0, 0, 0}, OpMov, 8},
		{"cmpxchg8b [rsi]", []byte{0x0F, 0xC7, 0x0E}, OpCmpxchg, 3},
		{"mov r15b, 7", []byte{0x41, 0xB7, 0x07}, OpMov, 3},
		{"movabs r9", []byte{0x49, 0xB9, 1, 2, 3, 4, 5, 6, 7, 8}, OpMov, 10},
		{"lea r12, [r13+r14*4+0x100]", []byte{0x4F, 0x8D, 0xA4, 0xB5, 0x00, 0x01, 0x00, 0x00}, OpLea, 8},
		{"shld eax, ebx, 4", []byte{0x0F, 0xA4, 0xD8, 0x04}, OpOther, 4},
		{"prefetcht0 [rax]", []byte{0x0F, 0x18, 0x08}, OpNop, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in, err := Decode(tt.code, 0x1000)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if in.Op != tt.op {
				t.Errorf("op = %v, want %v", in.Op, tt.op)
			}
			if in.Len != tt.len {
				t.Errorf("len = %d, want %d", in.Len, tt.len)
			}
		})
	}
}

// TestEncodingsLayoutSums re-decodes the corpus asserting the NaCl layout
// metadata always sums to the instruction length.
func TestEncodingsLayoutSums(t *testing.T) {
	corpus := [][]byte{
		{0x48, 0x0F, 0xB6, 0xC3},
		{0xF0, 0x48, 0x0F, 0xB1, 0x0B},
		{0x66, 0x0F, 0x3A, 0x0F, 0xC1, 0x08},
		{0x48, 0xA3, 1, 2, 3, 4, 5, 6, 7, 8},
		{0x4F, 0x8D, 0xA4, 0xB5, 0x00, 0x01, 0x00, 0x00},
		{0xC8, 0x10, 0x00, 0x01},
		{0x65, 0x89, 0x04, 0x25, 0x10, 0, 0, 0},
	}
	for _, code := range corpus {
		in, err := Decode(code, 0)
		if err != nil {
			t.Fatalf("Decode(% x): %v", code, err)
		}
		sum := in.NumPrefix + in.NumOpcode + in.NumDisp + in.NumImm
		if in.HasModRM {
			sum++
		}
		if in.HasSIB {
			sum++
		}
		if sum != in.Len {
			t.Errorf("% x: layout sum %d != len %d", code, sum, in.Len)
		}
	}
}

// TestOperandDirection verifies dst/src assignment for both ModRM
// direction bits.
func TestOperandDirection(t *testing.T) {
	// 01 D8: add eax(rm), ebx(reg)  → dst=rm=eax
	in, err := Decode([]byte{0x01, 0xD8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Args[0].IsReg(RegAX) || !in.Args[1].IsReg(RegBX) {
		t.Errorf("01 D8: %v", in.String())
	}
	// 03 D8: add ebx(reg), eax(rm) → dst=reg=ebx
	in, err = Decode([]byte{0x03, 0xD8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Args[0].IsReg(RegBX) || !in.Args[1].IsReg(RegAX) {
		t.Errorf("03 D8: %v", in.String())
	}
}

// TestStringFormatting smoke-tests the AT&T formatter across operand
// shapes (it is a debugging aid, so exact text is asserted only loosely).
func TestStringFormatting(t *testing.T) {
	cases := map[string][]byte{
		"mov":  {0x48, 0x89, 0xD8},                            // mov %rbx, %rax
		"lea":  {0x48, 0x8D, 0x05, 0x10, 0x00, 0x00, 0x00},    // lea 0x10(%rip), %rax
		"call": {0xE8, 0x00, 0x00, 0x00, 0x00},                // call .+5
		"jne":  {0x75, 0x10},                                  // jne .+0x12
		"fs":   {0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0, 0, 0}, // mov %fs:0x28, %rax
		"sib":  {0x48, 0x8B, 0x54, 0xC8, 0x08},                // mov 8(%rax,%rcx,8), %rdx
	}
	for name, code := range cases {
		in, err := Decode(code, 0x1000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s := in.String(); len(s) < 3 {
			t.Errorf("%s: suspicious formatting %q", name, s)
		}
	}
}
