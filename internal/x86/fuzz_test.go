package x86

import (
	"bytes"
	"testing"
)

// fuzzSeeds are hand-picked encodings covering every structural corner of
// the decoder: prefixes (legacy, REX, segment, duplicated), all immediate
// forms (imm8/16/Z/V, ENTER's pair, moffs), ModRM modes with and without
// SIB, RIP-relative addressing, two- and three-byte opcode maps, groups,
// and bytes that must be rejected.
var fuzzSeeds = [][]byte{
	{0x90},             // nop
	{0xC3},             // ret
	{0xCC},             // int3
	{0x48, 0x89, 0xE5}, // mov %rsp, %rbp
	{0x48, 0xC7, 0xC0, 0x01, 0x00, 0x00, 0x00},             // mov $1, %rax
	{0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8},                   // movabs (immV, 8-byte)
	{0x66, 0xB8, 0x34, 0x12},                               // mov $0x1234, %ax (immZ@16)
	{0xB0, 0x7F},                                           // mov $0x7f, %al (imm8)
	{0xC8, 0x20, 0x00, 0x01},                               // enter $0x20, $1 (immEnter)
	{0xA1, 1, 2, 3, 4, 5, 6, 7, 8},                         // mov moffs64, %eax
	{0x67, 0xA1, 1, 2, 3, 4},                               // mov moffs32, %eax (addr32)
	{0x64, 0x48, 0x8B, 0x04, 0x25, 0x28, 0x00, 0x00, 0x00}, // mov %fs:0x28, %rax
	{0x48, 0x8B, 0x05, 0x10, 0x00, 0x00, 0x00},             // mov 0x10(%rip), %rax
	{0x42, 0x8B, 0x44, 0x9D, 0x08},                         // mov 8(%rbp,%r11,4), %eax (REX.X + SIB)
	{0x0F, 0x84, 0x00, 0x01, 0x00, 0x00},                   // je rel32
	{0x74, 0xFE},                                           // je rel8 (self)
	{0xE8, 0x00, 0x00, 0x00, 0x00},                         // call rel32
	{0xFF, 0xD0},                                           // call *%rax (group 5)
	{0xFF, 0x25, 0, 0, 0, 0},                               // jmp *0(%rip)
	{0xF0, 0x48, 0x0F, 0xB1, 0x0B},                         // lock cmpxchg %rcx,(%rbx)
	{0xF3, 0x0F, 0x1E, 0xFA},                               // endbr64 (F3 two-byte)
	{0x0F, 0x38, 0x00, 0xC1},                               // three-byte map 0F38
	{0x0F, 0x3A, 0x0F, 0xC1, 0x08},                         // three-byte map 0F3A + imm8
	{0x80, 0x7C, 0x24, 0x10, 0x00},                         // cmpb $0,0x10(%rsp) (group 1)
	{0xC1, 0xE0, 0x04},                                     // shl $4, %eax (group 2)
	{0xF7, 0xD8},                                           // neg %eax (group 3)
	{0xD1, 0xF8},                                           // sar %eax (RMOne)
	{0xD3, 0xE0},                                           // shl %cl, %eax (RMCl)
	{0x86, 0xE0},                                           // xchg %ah, %al (High8)
	{0x66, 0x66, 0x90},                                     // duplicated 66 prefix
	{0x2E, 0x3E, 0x90},                                     // overriding segment prefixes
	{0x06},                                                 // invalid in 64-bit mode
	{0xC4, 0x01, 0x00},                                     // VEX (rejected)
	{0x0F, 0x0B},                                           // ud2
	{0xF0},                                                 // lone prefix (truncated)
	{0x48},                                                 // lone REX (truncated)
	{0x66, 0x67, 0xF2, 0xF3, 0xF0, 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65, 0x48, 0x90, 0x90, 0x90, 0x90}, // prefix soup past 15 bytes
}

// instEq compares every semantic field of two decoded instructions —
// everything except Len, NumPrefix and Raw, which legitimately differ
// when Encode canonicalizes redundant prefixes away.
func instEq(a, b *Inst) bool {
	return a.Addr == b.Addr && a.Op == b.Op && a.Cond == b.Cond &&
		a.NumOpcode == b.NumOpcode && a.NumDisp == b.NumDisp && a.NumImm == b.NumImm &&
		a.REX == b.REX && a.HasModRM == b.HasModRM && a.ModRM == b.ModRM &&
		a.HasSIB == b.HasSIB && a.SIB == b.SIB &&
		a.Seg == b.Seg && a.Lock == b.Lock && a.RepF2 == b.RepF2 && a.RepF3 == b.RepF3 &&
		a.OpSize16 == b.OpSize16 && a.Addr32 == b.Addr32 &&
		a.Disp == b.Disp && a.Imm == b.Imm && a.Imm2 == b.Imm2 &&
		a.NArgs == b.NArgs && a.Args == b.Args
}

// checkLayout asserts the NaCl layout invariant: the recorded byte-layout
// fields tile the instruction exactly.
func checkLayout(t *testing.T, in *Inst, input []byte) {
	t.Helper()
	if in.Len <= 0 || in.Len > maxInstLen || in.Len > len(input) {
		t.Fatalf("Len %d out of range for %d input bytes", in.Len, len(input))
	}
	sum := in.NumPrefix + in.NumOpcode + in.NumDisp + in.NumImm
	if in.HasModRM {
		sum++
	}
	if in.HasSIB {
		sum++
	}
	if sum != in.Len {
		t.Fatalf("layout sum %d != Len %d for % x", sum, in.Len, in.Raw)
	}
}

// FuzzDecode asserts the decoder's trust-boundary properties on arbitrary
// bytes: it never panics, accepted instructions satisfy the layout
// invariant, and decode→encode→decode is a fixed point — the re-encoded
// bytes decode to the identical instruction (modulo prefix
// canonicalization) and re-encode to the identical bytes.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const addr = 0x401000
		i1, err := Decode(data, addr)
		if err != nil {
			return // rejection is a valid outcome; panics/hangs are not
		}
		checkLayout(t, &i1, data)

		e1, err := Encode(&i1)
		if err != nil {
			t.Fatalf("Encode rejected a decoded instruction %s (% x): %v", i1.String(), i1.Raw, err)
		}
		if len(e1) > len(i1.Raw) {
			t.Fatalf("canonical encoding % x longer than accepted raw % x", e1, i1.Raw)
		}

		i2, err := Decode(e1, addr)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding % x failed: %v (from %s, raw % x)", e1, err, i1.String(), i1.Raw)
		}
		if !instEq(&i1, &i2) {
			t.Fatalf("round-trip mismatch:\n raw % x -> %s\n enc % x -> %s", i1.Raw, i1.String(), e1, i2.String())
		}
		if i2.Len != len(e1) {
			t.Fatalf("re-decode consumed %d of %d canonical bytes", i2.Len, len(e1))
		}

		e2, err := Encode(&i2)
		if err != nil || !bytes.Equal(e1, e2) {
			t.Fatalf("encode not idempotent: % x vs % x (err %v)", e1, e2, err)
		}
	})
}
