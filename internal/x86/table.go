package x86

// This file defines the opcode tables that drive both the decoder and the
// assembler. The tables follow the layout of the Intel SDM volume 2 opcode
// maps (one-byte map, two-byte 0F map, and the ModRM.reg-selected groups),
// restricted to 64-bit mode: opcodes that #UD in 64-bit mode are marked
// invalid, exactly as in NaCl's x86-64 disassembler tables.

// immKind says how many immediate bytes follow the displacement.
type immKind uint8

const (
	immNone  immKind = iota
	imm8             // ib
	imm16            // iw
	immZ             // iz: 2 bytes with 0x66 prefix, else 4
	immV             // iv: 2/4/8 by operand size (only B8+r MOV)
	immEnter         // iw + ib (ENTER)
	immRel8          // one-byte branch displacement
	immRelZ          // 4-byte branch displacement (2 with 0x66; rejected)
	immMoffs         // 8-byte direct address (A0-A3)
	imm16i8          // iw then ib is only ENTER; imm16i8 unused alias
)

// argsKind is the operand-decoding recipe for an opcode.
type argsKind uint8

const (
	argsNone     argsKind = iota
	argsRMtoR             // reg ← r/m   (operands: dst=reg, src=rm)
	argsRtoRM             // r/m ← reg   (operands: dst=rm, src=reg)
	argsAccImm            // accumulator ← imm
	argsRMImm             // r/m ← imm
	argsRM                // single r/m operand
	argsOpReg             // register encoded in opcode low 3 bits (+REX.B)
	argsOpRegImm          // register from opcode + immediate (B0-BF)
	argsRel               // branch with relative displacement
	argsRRMImm            // reg ← r/m, imm (IMUL 69/6B)
	argsRMOne             // shift r/m by 1
	argsRMCl              // shift r/m by CL
	argsMoffs             // direct-address MOV (A0-A3)
	argsXchgAcc           // XCHG acc, reg-from-opcode (90-97)
	argsImmOnly           // PUSH imm, INT imm, RET imm16...
)

// group identifies a ModRM.reg-selected opcode group.
type group uint8

const (
	groupNone group = iota
	group1          // 80/81/83: add/or/adc/sbb/and/sub/xor/cmp
	group1A         // 8F: pop r/m
	group2          // C0/C1/D0-D3: rol/ror/rcl/rcr/shl/shr/sal/sar
	group3          // F6/F7: test/not/neg/mul/imul/div/idiv
	group4          // FE: inc/dec r/m8
	group5          // FF: inc/dec/call/callf/jmp/jmpf/push
	group8          // 0F BA: bt/bts/btr/btc with imm8
	group9          // 0F C7: cmpxchg8b/16b
	group15         // 0F AE: fences and friends
)

// entry describes one opcode cell.
type entry struct {
	valid  bool
	op     Op
	args   argsKind
	imm    immKind
	modrm  bool
	width8 bool  // byte-sized operand form
	grp    group // non-zero for group opcodes
}

func e(op Op, args argsKind, imm immKind, modrm bool) entry {
	return entry{valid: true, op: op, args: args, imm: imm, modrm: modrm}
}

func e8(op Op, args argsKind, imm immKind, modrm bool) entry {
	en := e(op, args, imm, modrm)
	en.width8 = true
	return en
}

func grpEntry(g group, imm immKind, width8 bool) entry {
	return entry{valid: true, args: argsRM, imm: imm, modrm: true, grp: g, width8: width8}
}

// arith fills the classic 6-opcode arithmetic row base..base+5
// (rm8←r8, rm←r, r8←rm8, r←rm, al←ib, eax←iz).
func arith(t *[256]entry, base int, op Op) {
	t[base+0] = e8(op, argsRtoRM, immNone, true)
	t[base+1] = e(op, argsRtoRM, immNone, true)
	t[base+2] = e8(op, argsRMtoR, immNone, true)
	t[base+3] = e(op, argsRMtoR, immNone, true)
	t[base+4] = e8(op, argsAccImm, imm8, false)
	t[base+5] = e(op, argsAccImm, immZ, false)
}

// oneByte is the primary opcode map for 64-bit mode.
var oneByte = buildOneByte()

func buildOneByte() [256]entry {
	var t [256]entry

	arith(&t, 0x00, OpAdd)
	arith(&t, 0x08, OpOr)
	arith(&t, 0x10, OpAdc)
	arith(&t, 0x18, OpSbb)
	arith(&t, 0x20, OpAnd)
	arith(&t, 0x28, OpSub)
	arith(&t, 0x30, OpXor)
	arith(&t, 0x38, OpCmp)

	// 0x40-0x4F are REX prefixes in 64-bit mode (handled by the prefix
	// scanner, never looked up here).

	for i := 0x50; i <= 0x57; i++ {
		t[i] = e(OpPush, argsOpReg, immNone, false)
	}
	for i := 0x58; i <= 0x5F; i++ {
		t[i] = e(OpPop, argsOpReg, immNone, false)
	}

	t[0x63] = e(OpMovsxd, argsRMtoR, immNone, true)
	t[0x68] = e(OpPush, argsImmOnly, immZ, false)
	t[0x69] = e(OpImul, argsRRMImm, immZ, true)
	t[0x6A] = e(OpPush, argsImmOnly, imm8, false)
	t[0x6B] = e(OpImul, argsRRMImm, imm8, true)

	for i := 0x70; i <= 0x7F; i++ { // Jcc rel8
		t[i] = e(OpJcc, argsRel, immRel8, false)
	}

	t[0x80] = grpEntry(group1, imm8, true)
	t[0x81] = grpEntry(group1, immZ, false)
	t[0x83] = grpEntry(group1, imm8, false)
	t[0x84] = e8(OpTest, argsRtoRM, immNone, true)
	t[0x85] = e(OpTest, argsRtoRM, immNone, true)
	t[0x86] = e8(OpXchg, argsRtoRM, immNone, true)
	t[0x87] = e(OpXchg, argsRtoRM, immNone, true)
	t[0x88] = e8(OpMov, argsRtoRM, immNone, true)
	t[0x89] = e(OpMov, argsRtoRM, immNone, true)
	t[0x8A] = e8(OpMov, argsRMtoR, immNone, true)
	t[0x8B] = e(OpMov, argsRMtoR, immNone, true)
	t[0x8C] = e(OpOther, argsRM, immNone, true) // mov r/m, sreg
	t[0x8D] = e(OpLea, argsRMtoR, immNone, true)
	t[0x8E] = e(OpOther, argsRM, immNone, true) // mov sreg, r/m
	t[0x8F] = grpEntry(group1A, immNone, false)

	t[0x90] = e(OpNop, argsNone, immNone, false)
	for i := 0x91; i <= 0x97; i++ {
		t[i] = e(OpXchg, argsXchgAcc, immNone, false)
	}
	t[0x98] = e(OpCwde, argsNone, immNone, false)
	t[0x99] = e(OpCdq, argsNone, immNone, false)
	t[0x9B] = e(OpOther, argsNone, immNone, false) // fwait
	t[0x9C] = e(OpPushf, argsNone, immNone, false)
	t[0x9D] = e(OpPopf, argsNone, immNone, false)
	t[0x9E] = e(OpOther, argsNone, immNone, false) // sahf
	t[0x9F] = e(OpOther, argsNone, immNone, false) // lahf

	t[0xA0] = e8(OpMov, argsMoffs, immMoffs, false)
	t[0xA1] = e(OpMov, argsMoffs, immMoffs, false)
	t[0xA2] = e8(OpMov, argsMoffs, immMoffs, false)
	t[0xA3] = e(OpMov, argsMoffs, immMoffs, false)
	t[0xA4] = e8(OpMovs, argsNone, immNone, false)
	t[0xA5] = e(OpMovs, argsNone, immNone, false)
	t[0xA6] = e8(OpCmps, argsNone, immNone, false)
	t[0xA7] = e(OpCmps, argsNone, immNone, false)
	t[0xA8] = e8(OpTest, argsAccImm, imm8, false)
	t[0xA9] = e(OpTest, argsAccImm, immZ, false)
	t[0xAA] = e8(OpStos, argsNone, immNone, false)
	t[0xAB] = e(OpStos, argsNone, immNone, false)
	t[0xAC] = e8(OpLods, argsNone, immNone, false)
	t[0xAD] = e(OpLods, argsNone, immNone, false)
	t[0xAE] = e8(OpScas, argsNone, immNone, false)
	t[0xAF] = e(OpScas, argsNone, immNone, false)

	for i := 0xB0; i <= 0xB7; i++ {
		t[i] = e8(OpMov, argsOpRegImm, imm8, false)
	}
	for i := 0xB8; i <= 0xBF; i++ {
		t[i] = e(OpMov, argsOpRegImm, immV, false)
	}

	t[0xC0] = grpEntry(group2, imm8, true)
	t[0xC1] = grpEntry(group2, imm8, false)
	t[0xC2] = e(OpRet, argsImmOnly, imm16, false)
	t[0xC3] = e(OpRet, argsNone, immNone, false)
	t[0xC6] = e8(OpMov, argsRMImm, imm8, true)
	t[0xC7] = e(OpMov, argsRMImm, immZ, true)
	t[0xC8] = e(OpEnter, argsImmOnly, immEnter, false)
	t[0xC9] = e(OpLeave, argsNone, immNone, false)
	t[0xCC] = e(OpInt3, argsNone, immNone, false)
	t[0xCD] = e(OpInt, argsImmOnly, imm8, false)
	t[0xCF] = e(OpOther, argsNone, immNone, false) // iret

	t[0xD0] = grpEntry(group2, immNone, true)
	t[0xD0].args = argsRMOne
	t[0xD1] = grpEntry(group2, immNone, false)
	t[0xD1].args = argsRMOne
	t[0xD2] = grpEntry(group2, immNone, true)
	t[0xD2].args = argsRMCl
	t[0xD3] = grpEntry(group2, immNone, false)
	t[0xD3].args = argsRMCl
	t[0xD7] = e(OpOther, argsNone, immNone, false) // xlat
	for i := 0xD8; i <= 0xDF; i++ {                // x87 escape: length is ModRM-determined
		t[i] = e(OpOther, argsRM, immNone, true)
	}

	t[0xE0] = e(OpLoop, argsRel, immRel8, false) // loopne
	t[0xE1] = e(OpLoop, argsRel, immRel8, false) // loope
	t[0xE2] = e(OpLoop, argsRel, immRel8, false)
	t[0xE3] = e(OpJrcxz, argsRel, immRel8, false)
	t[0xE4] = e8(OpIn, argsImmOnly, imm8, false)
	t[0xE5] = e(OpIn, argsImmOnly, imm8, false)
	t[0xE6] = e8(OpOut, argsImmOnly, imm8, false)
	t[0xE7] = e(OpOut, argsImmOnly, imm8, false)
	t[0xE8] = e(OpCall, argsRel, immRelZ, false)
	t[0xE9] = e(OpJmp, argsRel, immRelZ, false)
	t[0xEB] = e(OpJmp, argsRel, immRel8, false)
	t[0xEC] = e8(OpIn, argsNone, immNone, false)
	t[0xED] = e(OpIn, argsNone, immNone, false)
	t[0xEE] = e8(OpOut, argsNone, immNone, false)
	t[0xEF] = e(OpOut, argsNone, immNone, false)

	t[0xF1] = e(OpOther, argsNone, immNone, false) // int1
	t[0xF4] = e(OpHlt, argsNone, immNone, false)
	t[0xF5] = e(OpCmc, argsNone, immNone, false)
	t[0xF6] = grpEntry(group3, immNone, true) // imm decided by /reg
	t[0xF7] = grpEntry(group3, immNone, false)
	t[0xF8] = e(OpClc, argsNone, immNone, false)
	t[0xF9] = e(OpStc, argsNone, immNone, false)
	t[0xFA] = e(OpCli, argsNone, immNone, false)
	t[0xFB] = e(OpSti, argsNone, immNone, false)
	t[0xFC] = e(OpCld, argsNone, immNone, false)
	t[0xFD] = e(OpStd, argsNone, immNone, false)
	t[0xFE] = grpEntry(group4, immNone, true)
	t[0xFF] = grpEntry(group5, immNone, false)

	return t
}

// twoByte is the 0F-escape opcode map.
var twoByte = buildTwoByte()

func buildTwoByte() [256]entry {
	var t [256]entry

	t[0x05] = e(OpSyscall, argsNone, immNone, false)
	t[0x0B] = e(OpUd2, argsNone, immNone, false)
	t[0x0D] = e(OpNop, argsRM, immNone, true) // prefetch hint

	// 0F 10-17: SSE moves (modrm, no immediate).
	for i := 0x10; i <= 0x17; i++ {
		t[i] = e(OpSSE, argsRM, immNone, true)
	}
	// 0F 18-1F: hint NOPs and prefetches. 0F 1F is the canonical multi-byte
	// NOP used for NaCl-style bundle padding.
	for i := 0x18; i <= 0x1E; i++ {
		t[i] = e(OpNop, argsRM, immNone, true)
	}
	t[0x1F] = e(OpNop, argsRM, immNone, true)

	// 0F 28-2F: SSE moves/converts/compares.
	for i := 0x28; i <= 0x2F; i++ {
		t[i] = e(OpSSE, argsRM, immNone, true)
	}

	t[0x31] = e(OpRdtsc, argsNone, immNone, false)

	// 0F 40-4F: CMOVcc.
	for i := 0x40; i <= 0x4F; i++ {
		t[i] = e(OpCmovcc, argsRMtoR, immNone, true)
	}

	// 0F 50-6F: SSE arithmetic and packing (modrm, no immediate).
	for i := 0x50; i <= 0x6F; i++ {
		t[i] = e(OpSSE, argsRM, immNone, true)
	}
	t[0x70] = e(OpSSE, argsRM, imm8, true) // pshuf*
	// 0F 71-73: SSE shift groups with imm8.
	for i := 0x71; i <= 0x73; i++ {
		t[i] = e(OpSSE, argsRM, imm8, true)
	}
	for i := 0x74; i <= 0x76; i++ {
		t[i] = e(OpSSE, argsRM, immNone, true)
	}
	t[0x77] = e(OpOther, argsNone, immNone, false) // emms
	for i := 0x7C; i <= 0x7F; i++ {
		t[i] = e(OpSSE, argsRM, immNone, true)
	}

	// 0F 80-8F: Jcc rel32.
	for i := 0x80; i <= 0x8F; i++ {
		t[i] = e(OpJcc, argsRel, immRelZ, false)
	}
	// 0F 90-9F: SETcc r/m8.
	for i := 0x90; i <= 0x9F; i++ {
		t[i] = e8(OpSetcc, argsRM, immNone, true)
	}

	t[0xA0] = e(OpPush, argsNone, immNone, false) // push fs
	t[0xA1] = e(OpPop, argsNone, immNone, false)  // pop fs
	t[0xA2] = e(OpCpuid, argsNone, immNone, false)
	t[0xA3] = e(OpBt, argsRtoRM, immNone, true)
	t[0xA4] = e(OpOther, argsRM, imm8, true) // shld ib
	t[0xA5] = e(OpOther, argsRM, immNone, true)
	t[0xA8] = e(OpPush, argsNone, immNone, false) // push gs
	t[0xA9] = e(OpPop, argsNone, immNone, false)  // pop gs
	t[0xAB] = e(OpBts, argsRtoRM, immNone, true)
	t[0xAC] = e(OpOther, argsRM, imm8, true) // shrd ib
	t[0xAD] = e(OpOther, argsRM, immNone, true)
	t[0xAE] = grpEntry(group15, immNone, false)
	t[0xAF] = e(OpImul, argsRMtoR, immNone, true)

	t[0xB0] = e8(OpCmpxchg, argsRtoRM, immNone, true)
	t[0xB1] = e(OpCmpxchg, argsRtoRM, immNone, true)
	t[0xB3] = e(OpBtr, argsRtoRM, immNone, true)
	t[0xB6] = e(OpMovzx, argsRMtoR, immNone, true)
	t[0xB7] = e(OpMovzx, argsRMtoR, immNone, true)
	t[0xBA] = grpEntry(group8, imm8, false)
	t[0xBB] = e(OpBtc, argsRtoRM, immNone, true)
	t[0xBC] = e(OpBsf, argsRMtoR, immNone, true)
	t[0xBD] = e(OpBsr, argsRMtoR, immNone, true)
	t[0xBE] = e(OpMovsx, argsRMtoR, immNone, true)
	t[0xBF] = e(OpMovsx, argsRMtoR, immNone, true)

	t[0xC0] = e8(OpXadd, argsRtoRM, immNone, true)
	t[0xC1] = e(OpXadd, argsRtoRM, immNone, true)
	t[0xC2] = e(OpSSE, argsRM, imm8, true) // cmpps ib
	t[0xC3] = e(OpOther, argsRtoRM, immNone, true)
	t[0xC4] = e(OpSSE, argsRM, imm8, true)
	t[0xC5] = e(OpSSE, argsRM, imm8, true)
	t[0xC6] = e(OpSSE, argsRM, imm8, true) // shufps ib
	t[0xC7] = grpEntry(group9, immNone, false)
	for i := 0xC8; i <= 0xCF; i++ {
		t[i] = e(OpBswap, argsOpReg, immNone, false)
	}

	// 0F D0-FE: the MMX/SSE arithmetic block (modrm, no immediate).
	for i := 0xD0; i <= 0xFE; i++ {
		t[i] = e(OpSSE, argsRM, immNone, true)
	}

	return t
}

// Opcode groups, indexed by the ModRM.reg field.

var group1Ops = [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}

var group2Ops = [8]Op{OpRol, OpRor, OpRcl, OpRcr, OpShl, OpShr, OpShl, OpSar}

var group3Ops = [8]Op{OpTest, OpTest, OpNot, OpNeg, OpMul, OpImul, OpDiv, OpIdiv}

var group8Ops = [8]Op{OpInvalid, OpInvalid, OpInvalid, OpInvalid, OpBt, OpBts, OpBtr, OpBtc}

// group5 layout: /0 inc, /1 dec, /2 call r/m, /3 callf, /4 jmp r/m,
// /5 jmpf, /6 push r/m, /7 invalid.
var group5Ops = [8]Op{OpInc, OpDec, OpCallInd, OpOther, OpJmpInd, OpOther, OpPush, OpInvalid}

var group4Ops = [8]Op{OpInc, OpDec, OpInvalid, OpInvalid, OpInvalid, OpInvalid, OpInvalid, OpInvalid}
