package x86

import (
	"encoding/binary"
	"fmt"
)

// FixupKind says how a 4-byte fixup field is to be patched.
type FixupKind int8

// Fixup kinds.
const (
	// FixupRel32 patches a signed 32-bit PC-relative branch displacement;
	// the displacement is relative to the end of the 4-byte field.
	FixupRel32 FixupKind = iota + 1
	// FixupRIP32 patches the disp32 of a RIP-relative memory operand; like
	// FixupRel32 the base is the end of the field (which is also the end of
	// the instruction for every form the assembler emits).
	FixupRIP32
	// FixupAbs64 patches an absolute 64-bit address (movabs); the linker
	// turns these into R_X86_64_RELATIVE dynamic relocations in PIEs.
	FixupAbs64
)

// Fixup is a reference from emitted code to a named symbol, to be resolved
// by the linker (internal/toolchain) once symbol addresses are known.
type Fixup struct {
	Off  int    // byte offset of the patch field within the emitted code
	Sym  string // target symbol name
	Kind FixupKind
}

// Assembler emits x86-64 machine code. It supports local labels (resolved
// when Finish is called) and symbolic fixups (returned unresolved for the
// linker). The zero value is ready to use.
type Assembler struct {
	buf         []byte
	labels      map[string]int
	labelFixups []labelFixup
	fixups      []Fixup
}

type labelFixup struct {
	off   int
	label string
}

// Len returns the number of bytes emitted so far.
func (a *Assembler) Len() int { return len(a.buf) }

// Marks returns the current fixup counts; together with Len it captures a
// rollback point for Truncate.
func (a *Assembler) Marks() (nFixups, nLabelFixups int) {
	return len(a.fixups), len(a.labelFixups)
}

// Truncate rolls the assembler back to a state previously captured with Len
// and Marks. Bundle-aware emitters (internal/toolchain) use it to re-emit
// an instruction after inserting NOP alignment so that no instruction
// crosses a 32-byte boundary, the NaCl constraint EnGarde enforces.
func (a *Assembler) Truncate(n, nFixups, nLabelFixups int) {
	a.buf = a.buf[:n]
	a.fixups = a.fixups[:nFixups]
	a.labelFixups = a.labelFixups[:nLabelFixups]
}

// Raw appends raw bytes verbatim.
func (a *Assembler) Raw(b ...byte) { a.buf = append(a.buf, b...) }

// Label defines a local label at the current position.
func (a *Assembler) Label(name string) {
	if a.labels == nil {
		a.labels = make(map[string]int)
	}
	a.labels[name] = len(a.buf)
}

// Finish resolves local labels and returns the code and the remaining
// symbolic fixups. Symbolic rel32/RIP32 fixups whose symbol happens to be
// defined as a local label are resolved here too (this is how the
// toolchain's musl archive stays internally position-independent);
// absolute fixups and fixups against undefined symbols are returned for
// the linker. The assembler must not be reused afterwards.
func (a *Assembler) Finish() ([]byte, []Fixup, error) {
	patchRel := func(off, target int, what string) error {
		rel := int64(target) - int64(off+4)
		if rel < -1<<31 || rel >= 1<<31 {
			return fmt.Errorf("x86: %s out of rel32 range", what)
		}
		binary.LittleEndian.PutUint32(a.buf[off:], uint32(rel))
		return nil
	}
	for _, lf := range a.labelFixups {
		target, ok := a.labels[lf.label]
		if !ok {
			return nil, nil, fmt.Errorf("x86: undefined label %q", lf.label)
		}
		if err := patchRel(lf.off, target, "label "+lf.label); err != nil {
			return nil, nil, err
		}
	}
	var external []Fixup
	for _, f := range a.fixups {
		target, ok := a.labels[f.Sym]
		if !ok || f.Kind == FixupAbs64 {
			external = append(external, f)
			continue
		}
		if err := patchRel(f.Off, target, "symbol "+f.Sym); err != nil {
			return nil, nil, err
		}
	}
	return a.buf, external, nil
}

func (a *Assembler) imm32(v int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	a.buf = append(a.buf, b[:]...)
}

func (a *Assembler) imm64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	a.buf = append(a.buf, b[:]...)
}

// rex emits a REX prefix if needed. w selects 64-bit operand size; r, x, b
// are the register numbers whose high bits extend ModRM.reg, SIB.index and
// ModRM.rm/SIB.base respectively (pass 0 when unused).
func (a *Assembler) rex(w bool, r, x, b Reg) {
	v := byte(0x40)
	if w {
		v |= 8
	}
	if r >= 8 {
		v |= 4
	}
	if x >= 8 {
		v |= 2
	}
	if b >= 8 {
		v |= 1
	}
	if v != 0x40 || w {
		a.buf = append(a.buf, v)
	}
}

var segPrefix = map[Seg]byte{SegES: 0x26, SegCS: 0x2E, SegSS: 0x36, SegDS: 0x3E, SegFS: 0x64, SegGS: 0x65}

// modRM emits segment prefix, REX, opcode bytes and a full ModRM/SIB/disp
// sequence addressing mem, with reg in the ModRM.reg field. If mem has
// Base == RegRIP the displacement is either mem.Disp or, when ripSym is
// non-empty, a fixup against that symbol.
func (a *Assembler) memForm(w bool, opcode []byte, reg Reg, mem Mem, ripSym string) {
	if p, ok := segPrefix[mem.Seg]; ok && mem.Seg != SegNone {
		a.buf = append(a.buf, p)
	}
	switch {
	case mem.Base == RegRIP:
		a.rex(w, reg, 0, 0)
		a.buf = append(a.buf, opcode...)
		a.buf = append(a.buf, byte(reg&7)<<3|0x05) // mod=00 rm=101
		if ripSym != "" {
			a.fixups = append(a.fixups, Fixup{Off: len(a.buf), Sym: ripSym, Kind: FixupRIP32})
			a.imm32(0)
		} else {
			a.imm32(int32(mem.Disp))
		}
	case mem.Base == RegNone && mem.Index == RegNone:
		// Absolute: mod=00 rm=100, SIB base=101 index=100, disp32.
		a.rex(w, reg, 0, 0)
		a.buf = append(a.buf, opcode...)
		a.buf = append(a.buf, byte(reg&7)<<3|0x04, 0x25)
		a.imm32(int32(mem.Disp))
	case mem.Base == RegNone:
		// Index-only addressing: SIB with base=101, mod=00, disp32.
		idx := mem.Index
		a.rex(w, reg, idx, 0)
		a.buf = append(a.buf, opcode...)
		a.buf = append(a.buf, byte(reg&7)<<3|0x04)
		var scaleBits byte
		switch mem.Scale {
		case 2:
			scaleBits = 1
		case 4:
			scaleBits = 2
		case 8:
			scaleBits = 3
		}
		a.buf = append(a.buf, scaleBits<<6|byte(idx&7)<<3|0x05)
		a.imm32(int32(mem.Disp))
	default:
		base := mem.Base
		idx := mem.Index
		rexX := Reg(0)
		if idx != RegNone {
			rexX = idx
		}
		a.rex(w, reg, rexX, base)
		a.buf = append(a.buf, opcode...)
		needSIB := idx != RegNone || base&7 == RegSP&7
		var mod byte
		var dispSize int
		switch {
		case mem.Disp == 0 && base&7 != RegBP&7:
			mod, dispSize = 0, 0
		case mem.Disp >= -128 && mem.Disp <= 127:
			mod, dispSize = 1, 1
		default:
			mod, dispSize = 2, 4
		}
		if needSIB {
			a.buf = append(a.buf, mod<<6|byte(reg&7)<<3|0x04)
			sibIdx := byte(0x04) // none
			if idx != RegNone {
				sibIdx = byte(idx & 7)
			}
			var scaleBits byte
			switch mem.Scale {
			case 0, 1:
				scaleBits = 0
			case 2:
				scaleBits = 1
			case 4:
				scaleBits = 2
			case 8:
				scaleBits = 3
			}
			a.buf = append(a.buf, scaleBits<<6|sibIdx<<3|byte(base&7))
		} else {
			a.buf = append(a.buf, mod<<6|byte(reg&7)<<3|byte(base&7))
		}
		switch dispSize {
		case 1:
			a.buf = append(a.buf, byte(mem.Disp))
		case 4:
			a.imm32(int32(mem.Disp))
		}
	}
}

// regForm emits REX + opcode + a mod=11 ModRM byte (register-register).
func (a *Assembler) regForm(w bool, opcode []byte, reg, rm Reg) {
	a.rex(w, reg, 0, rm)
	a.buf = append(a.buf, opcode...)
	a.buf = append(a.buf, 0xC0|byte(reg&7)<<3|byte(rm&7))
}

//
// MOV family
//

// MovRegReg emits mov %src, %dst (64-bit).
func (a *Assembler) MovRegReg(dst, src Reg) { a.regForm(true, []byte{0x89}, src, dst) }

// MovRegReg32 emits the 32-bit form mov %srcd, %dstd.
func (a *Assembler) MovRegReg32(dst, src Reg) { a.regForm(false, []byte{0x89}, src, dst) }

// MovRegImm32 emits mov $imm, %dstd (C7 /0, sign-extended to 64 bits when
// REX.W; here the 32-bit form that zero-extends).
func (a *Assembler) MovRegImm32(dst Reg, imm int32) {
	a.rex(false, 0, 0, dst)
	a.buf = append(a.buf, 0xC7, 0xC0|byte(dst&7))
	a.imm32(imm)
}

// MovRegImm64 emits movabs $imm, %dst (B8+r io).
func (a *Assembler) MovRegImm64(dst Reg, imm int64) {
	a.rex(true, 0, 0, dst)
	a.buf = append(a.buf, 0xB8+byte(dst&7))
	a.imm64(imm)
}

// MovRegSymAbs emits movabs $sym, %dst with an absolute fixup.
func (a *Assembler) MovRegSymAbs(dst Reg, sym string) {
	a.rex(true, 0, 0, dst)
	a.buf = append(a.buf, 0xB8+byte(dst&7))
	a.fixups = append(a.fixups, Fixup{Off: len(a.buf), Sym: sym, Kind: FixupAbs64})
	a.imm64(0)
}

// MovMemReg emits mov %src, mem (89 /r, 64-bit).
func (a *Assembler) MovMemReg(mem Mem, src Reg) { a.memForm(true, []byte{0x89}, src, mem, "") }

// MovRegMem emits mov mem, %dst (8B /r, 64-bit).
func (a *Assembler) MovRegMem(dst Reg, mem Mem) { a.memForm(true, []byte{0x8B}, dst, mem, "") }

// MovRegFS emits mov %fs:disp, %dst — the stack-protector canary load.
func (a *Assembler) MovRegFS(dst Reg, disp int32) {
	a.memForm(true, []byte{0x8B}, dst, Mem{Seg: SegFS, Base: RegNone, Index: RegNone, Disp: int64(disp)}, "")
}

//
// LEA
//

// LeaRIP emits lea disp(%rip), %dst with a symbolic fixup.
func (a *Assembler) LeaRIP(dst Reg, sym string) {
	a.memForm(true, []byte{0x8D}, dst, Mem{Base: RegRIP}, sym)
}

// LeaMem emits lea mem, %dst.
func (a *Assembler) LeaMem(dst Reg, mem Mem) { a.memForm(true, []byte{0x8D}, dst, mem, "") }

//
// Arithmetic and logic
//

// AddRegReg emits add %src, %dst (01 /r).
func (a *Assembler) AddRegReg(dst, src Reg) { a.regForm(true, []byte{0x01}, src, dst) }

// SubRegReg emits sub %src, %dst (29 /r).
func (a *Assembler) SubRegReg(dst, src Reg) { a.regForm(true, []byte{0x29}, src, dst) }

// SubRegReg32 emits the 32-bit form sub %srcd, %dstd, as in IFCC's
// "sub %eax, %ecx" guard step.
func (a *Assembler) SubRegReg32(dst, src Reg) { a.regForm(false, []byte{0x29}, src, dst) }

// AndRegImm32 emits and $imm, %dst (81 /4 id, 64-bit).
func (a *Assembler) AndRegImm32(dst Reg, imm int32) {
	a.rex(true, 4, 0, dst)
	a.buf = append(a.buf, 0x81, 0xC0|4<<3|byte(dst&7))
	a.imm32(imm)
}

// AddRegImm8 emits add $imm8, %dst (83 /0 ib).
func (a *Assembler) AddRegImm8(dst Reg, imm int8) {
	a.rex(true, 0, 0, dst)
	a.buf = append(a.buf, 0x83, 0xC0|byte(dst&7), byte(imm))
}

// SubRegImm8 emits sub $imm8, %dst (83 /5 ib).
func (a *Assembler) SubRegImm8(dst Reg, imm int8) {
	a.rex(true, 5, 0, dst)
	a.buf = append(a.buf, 0x83, 0xC0|5<<3|byte(dst&7), byte(imm))
}

// AddRegImm32 emits add $imm, %dst (81 /0 id).
func (a *Assembler) AddRegImm32(dst Reg, imm int32) {
	a.rex(true, 0, 0, dst)
	a.buf = append(a.buf, 0x81, 0xC0|byte(dst&7))
	a.imm32(imm)
}

// SubRegImm32 emits sub $imm, %dst (81 /5 id).
func (a *Assembler) SubRegImm32(dst Reg, imm int32) {
	a.rex(true, 5, 0, dst)
	a.buf = append(a.buf, 0x81, 0xC0|5<<3|byte(dst&7))
	a.imm32(imm)
}

// XorRegReg emits xor %src, %dst (31 /r).
func (a *Assembler) XorRegReg(dst, src Reg) { a.regForm(true, []byte{0x31}, src, dst) }

// TestRegReg emits test %src, %dst (85 /r).
func (a *Assembler) TestRegReg(dst, src Reg) { a.regForm(true, []byte{0x85}, src, dst) }

// CmpRegReg emits cmp %src, %dst (39 /r).
func (a *Assembler) CmpRegReg(dst, src Reg) { a.regForm(true, []byte{0x39}, src, dst) }

// CmpRegMem emits cmp mem, %dst (3B /r) — e.g. cmp (%rsp), %rax.
func (a *Assembler) CmpRegMem(dst Reg, mem Mem) { a.memForm(true, []byte{0x3B}, dst, mem, "") }

// CmpRegImm8 emits cmp $imm8, %dst (83 /7 ib).
func (a *Assembler) CmpRegImm8(dst Reg, imm int8) {
	a.rex(true, 7, 0, dst)
	a.buf = append(a.buf, 0x83, 0xC0|7<<3|byte(dst&7), byte(imm))
}

// CmpMem8Imm8 emits cmpb $imm, mem (80 /7 ib) — the shadow-byte test of
// AddressSanitizer-style instrumentation.
func (a *Assembler) CmpMem8Imm8(mem Mem, imm int8) {
	a.memForm(false, []byte{0x80}, 7, mem, "")
	a.buf = append(a.buf, byte(imm))
}

// ImulRegReg emits imul %src, %dst (0F AF /r).
func (a *Assembler) ImulRegReg(dst, src Reg) { a.regForm(true, []byte{0x0F, 0xAF}, dst, src) }

// ShlRegImm8 emits shl $imm, %dst (C1 /4 ib).
func (a *Assembler) ShlRegImm8(dst Reg, imm int8) {
	a.rex(true, 4, 0, dst)
	a.buf = append(a.buf, 0xC1, 0xC0|4<<3|byte(dst&7), byte(imm))
}

// ShrRegImm8 emits shr $imm, %dst (C1 /5 ib).
func (a *Assembler) ShrRegImm8(dst Reg, imm int8) {
	a.rex(true, 5, 0, dst)
	a.buf = append(a.buf, 0xC1, 0xC0|5<<3|byte(dst&7), byte(imm))
}

//
// Stack
//

// PushReg emits push %r.
func (a *Assembler) PushReg(r Reg) {
	a.rex(false, 0, 0, r)
	a.buf = append(a.buf, 0x50+byte(r&7))
}

// PopReg emits pop %r.
func (a *Assembler) PopReg(r Reg) {
	a.rex(false, 0, 0, r)
	a.buf = append(a.buf, 0x58+byte(r&7))
}

//
// Control transfer
//

// CallSym emits call rel32 against a symbol.
func (a *Assembler) CallSym(sym string) {
	a.buf = append(a.buf, 0xE8)
	a.fixups = append(a.fixups, Fixup{Off: len(a.buf), Sym: sym, Kind: FixupRel32})
	a.imm32(0)
}

// CallReg emits call *%r (FF /2).
func (a *Assembler) CallReg(r Reg) {
	a.rex(false, 2, 0, r)
	a.buf = append(a.buf, 0xFF, 0xC0|2<<3|byte(r&7))
}

// JmpSym emits jmp rel32 against a symbol.
func (a *Assembler) JmpSym(sym string) {
	a.buf = append(a.buf, 0xE9)
	a.fixups = append(a.fixups, Fixup{Off: len(a.buf), Sym: sym, Kind: FixupRel32})
	a.imm32(0)
}

// JmpLabel emits jmp rel32 to a local label.
func (a *Assembler) JmpLabel(label string) {
	a.buf = append(a.buf, 0xE9)
	a.labelFixups = append(a.labelFixups, labelFixup{off: len(a.buf), label: label})
	a.imm32(0)
}

// JccLabel emits a conditional jump (rel32 form) to a local label.
func (a *Assembler) JccLabel(c Cond, label string) {
	a.buf = append(a.buf, 0x0F, 0x80+byte(c))
	a.labelFixups = append(a.labelFixups, labelFixup{off: len(a.buf), label: label})
	a.imm32(0)
}

// JccSym emits a conditional jump (rel32 form) against a symbol.
func (a *Assembler) JccSym(c Cond, sym string) {
	a.buf = append(a.buf, 0x0F, 0x80+byte(c))
	a.fixups = append(a.fixups, Fixup{Off: len(a.buf), Sym: sym, Kind: FixupRel32})
	a.imm32(0)
}

// Ret emits ret.
func (a *Assembler) Ret() { a.buf = append(a.buf, 0xC3) }

// Leave emits leave.
func (a *Assembler) Leave() { a.buf = append(a.buf, 0xC9) }

// Int3 emits int3.
func (a *Assembler) Int3() { a.buf = append(a.buf, 0xCC) }

// Syscall emits syscall (0F 05).
func (a *Assembler) Syscall() { a.buf = append(a.buf, 0x0F, 0x05) }

// Ud2 emits ud2.
func (a *Assembler) Ud2() { a.buf = append(a.buf, 0x0F, 0x0B) }

//
// Padding
//

// nopSeqs are the canonical Intel-recommended multi-byte NOP encodings.
var nopSeqs = [...][]byte{
	1: {0x90},
	2: {0x66, 0x90},
	3: {0x0F, 0x1F, 0x00},
	4: {0x0F, 0x1F, 0x40, 0x00},
	5: {0x0F, 0x1F, 0x44, 0x00, 0x00},
	6: {0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00},
	7: {0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00},
	8: {0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
	9: {0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
}

// Nop emits n bytes of NOP padding using the canonical multi-byte forms.
func (a *Assembler) Nop(n int) {
	for n > 0 {
		k := n
		if k > 9 {
			k = 9
		}
		a.buf = append(a.buf, nopSeqs[k]...)
		n -= k
	}
}

// NopModRM emits the 3-byte "nopl (%rax)" used as a jump-table entry filler
// in LLVM's IFCC jump tables.
func (a *Assembler) NopModRM() { a.buf = append(a.buf, 0x0F, 0x1F, 0x00) }
