package x86

import (
	"fmt"
	"strings"
)

// Inst is a single decoded x86-64 instruction. Besides the mnemonic and
// operands it records the byte-level layout metadata that NaCl's
// disassembler tracks (number of prefix, opcode, displacement and immediate
// bytes), which EnGarde exposes to its policy modules (paper §4).
type Inst struct {
	Addr uint64 // virtual address of the first byte
	Len  int    // total encoded length in bytes

	Op   Op
	Cond Cond // condition code for Jcc/SETcc/CMOVcc

	// Byte-layout metadata (NaCl-style).
	NumPrefix int // legacy + REX prefix bytes
	NumOpcode int // opcode bytes (1-3)
	NumDisp   int // displacement bytes
	NumImm    int // immediate bytes

	REX      byte // REX prefix value, 0 if absent
	HasModRM bool
	ModRM    byte
	HasSIB   bool
	SIB      byte

	Seg      Seg  // segment-override prefix, SegNone if absent
	Lock     bool // F0 prefix
	RepF2    bool // F2 prefix
	RepF3    bool // F3 prefix
	OpSize16 bool // 66 prefix
	Addr32   bool // 67 prefix

	Disp int64 // sign-extended ModRM/SIB displacement
	Imm  int64 // sign-extended primary immediate (also branch displacement)
	Imm2 int64 // second immediate (ENTER only)

	// Operands in AT&T order would be src,dst; we store dst-first because
	// that is the order the policy matchers reason in. NArgs says how many
	// entries of Args are valid.
	Args  [2]Operand
	NArgs int

	// Raw is a view of the encoded bytes (aliasing the decode input).
	Raw []byte
}

// Width returns the operand width in bytes implied by the instruction's
// prefixes for a non-byte instruction form.
func (in *Inst) width(defaultTo64 bool) uint8 {
	switch {
	case in.REX&0x08 != 0:
		return 8
	case in.OpSize16:
		return 2
	case defaultTo64:
		return 8
	default:
		return 4
	}
}

// BranchTarget returns the absolute target of a direct (relative) control
// transfer, and whether the instruction has one.
func (in *Inst) BranchTarget() (uint64, bool) {
	switch in.Op {
	case OpCall, OpJmp, OpJcc, OpLoop, OpJrcxz:
		if in.NumImm > 0 {
			return in.Addr + uint64(in.Len) + uint64(in.Imm), true
		}
	}
	return 0, false
}

// IsDirectCall reports whether the instruction is a near direct call.
func (in *Inst) IsDirectCall() bool { return in.Op == OpCall }

// IsIndirectCall reports whether the instruction is an indirect call
// through a register or memory operand (FF /2).
func (in *Inst) IsIndirectCall() bool { return in.Op == OpCallInd }

// RIPTarget returns the absolute address referenced by a RIP-relative
// memory operand, and whether the instruction has one.
func (in *Inst) RIPTarget() (uint64, bool) {
	for i := 0; i < in.NArgs; i++ {
		a := in.Args[i]
		if a.Kind == KindMem && a.Mem.IsRIPRel() {
			return in.Addr + uint64(in.Len) + uint64(a.Mem.Disp), true
		}
	}
	return 0, false
}

// String renders the instruction in a compact AT&T-flavoured syntax,
// operands printed src,dst like GNU as.
func (in *Inst) String() string {
	var b strings.Builder
	b.WriteString(in.mnemonic())
	if in.NArgs > 0 {
		b.WriteByte(' ')
		// AT&T prints source first: reverse our dst-first storage.
		for i := in.NArgs - 1; i >= 0; i-- {
			b.WriteString(formatOperand(in, in.Args[i]))
			if i > 0 {
				b.WriteString(", ")
			}
		}
	} else if in.NumImm > 0 {
		if t, ok := in.BranchTarget(); ok {
			fmt.Fprintf(&b, " 0x%x", t)
		} else {
			fmt.Fprintf(&b, " $0x%x", in.Imm)
		}
	}
	return b.String()
}

func (in *Inst) mnemonic() string {
	switch in.Op {
	case OpJcc:
		return "j" + in.Cond.String()
	case OpSetcc:
		return "set" + in.Cond.String()
	case OpCmovcc:
		return "cmov" + in.Cond.String()
	default:
		return in.Op.String()
	}
}

func formatOperand(in *Inst, o Operand) string {
	switch o.Kind {
	case KindReg:
		if o.High8 {
			return "%" + [4]string{"ah", "ch", "dh", "bh"}[o.Reg-4]
		}
		return "%" + o.Reg.Name(int(o.Width))
	case KindImm:
		return fmt.Sprintf("$0x%x", o.Imm)
	case KindMem:
		var b strings.Builder
		if o.Mem.Seg != SegNone {
			fmt.Fprintf(&b, "%%%s:", o.Mem.Seg)
		}
		if o.Mem.Disp != 0 || (o.Mem.Base == RegNone && o.Mem.Index == RegNone) {
			fmt.Fprintf(&b, "0x%x", o.Mem.Disp)
		}
		if o.Mem.Base != RegNone || o.Mem.Index != RegNone {
			b.WriteByte('(')
			if o.Mem.Base != RegNone {
				b.WriteString("%" + o.Mem.Base.Name(8))
			}
			if o.Mem.Index != RegNone {
				fmt.Fprintf(&b, ",%%%s,%d", o.Mem.Index.Name(8), o.Mem.Scale)
			}
			b.WriteByte(')')
		}
		return b.String()
	default:
		return "?"
	}
}
