// Package x86 implements a table-driven x86-64 instruction encoder and
// decoder in the style of Google Native Client's 64-bit disassembler, which
// the EnGarde paper uses for reliable in-enclave disassembly (ICDCS'17, §4).
//
// The decoder parses raw byte sequences into Inst values carrying the same
// metadata NaCl tracks: the number of prefix bytes, opcode bytes,
// displacement bytes and immediate bytes, plus fully decoded operands for
// the instruction forms that EnGarde's policy modules inspect (direct and
// indirect calls, mov/cmp/lea/sub/and/add, conditional jumps, and the
// %fs-segment canary loads emitted by Clang's -fstack-protector).
//
// The encoder (Assembler) is the code-generation backend of the synthetic
// toolchain in internal/toolchain; encoder and decoder share the same opcode
// tables so that every instruction the toolchain can emit is by construction
// decodable by EnGarde.
package x86

import "fmt"

// Reg identifies an x86-64 register by its hardware number. General-purpose
// registers use numbers 0-15; width is carried by the Operand that mentions
// the register, so RAX/EAX/AX/AL all decode to RegAX.
type Reg int8

// General-purpose register numbers (hardware encoding order).
const (
	RegAX Reg = iota // rax / eax / ax / al
	RegCX            // rcx
	RegDX            // rdx
	RegBX            // rbx
	RegSP            // rsp
	RegBP            // rbp
	RegSI            // rsi
	RegDI            // rdi
	RegR8
	RegR9
	RegR10
	RegR11
	RegR12
	RegR13
	RegR14
	RegR15

	// RegRIP is a pseudo-register used as the base of RIP-relative memory
	// operands.
	RegRIP Reg = 0x20
	// RegNone marks an absent base or index register.
	RegNone Reg = -1
)

// Segment override registers.
type Seg int8

// Segment registers. SegNone means no segment-override prefix was present.
const (
	SegNone Seg = iota
	SegES
	SegCS
	SegSS
	SegDS
	SegFS
	SegGS
)

var regNames = [16]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

var reg32Names = [16]string{
	"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
	"r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
}

var reg16Names = [16]string{
	"ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
	"r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
}

var reg8Names = [16]string{
	"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
	"r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
}

var segNames = [7]string{"", "es", "cs", "ss", "ds", "fs", "gs"}

// Name returns the AT&T-style name of the register at the given operand
// width in bytes (1, 2, 4 or 8).
func (r Reg) Name(width int) string {
	if r == RegRIP {
		return "rip"
	}
	if r < 0 || int(r) > 15 {
		return fmt.Sprintf("reg(%d)", int(r))
	}
	switch width {
	case 1:
		return reg8Names[r]
	case 2:
		return reg16Names[r]
	case 4:
		return reg32Names[r]
	default:
		return regNames[r]
	}
}

func (s Seg) String() string {
	if s < 0 || int(s) >= len(segNames) {
		return "?"
	}
	return segNames[s]
}

// OperandKind discriminates the payload of an Operand.
type OperandKind int8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg              // a register operand
	KindMem              // a memory operand
	KindImm              // an immediate operand
)

// Mem describes a memory operand in base+index*scale+disp form.
type Mem struct {
	Seg    Seg   // segment override, SegNone if absent
	Base   Reg   // base register, RegNone if absent, RegRIP when RIP-relative
	Index  Reg   // index register, RegNone if absent
	Scale  uint8 // 1, 2, 4 or 8 (meaningful only when Index != RegNone)
	Disp   int64 // sign-extended displacement
	Direct bool  // true for moffs-style direct addressing (no ModRM)
}

// IsRIPRel reports whether the operand is RIP-relative.
func (m Mem) IsRIPRel() bool { return m.Base == RegRIP }

// Operand is a single decoded instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg   // valid when Kind == KindReg
	Width uint8 // operand width in bytes (register and memory operands)
	High8 bool  // true for the legacy AH/CH/DH/BH encodings
	Mem   Mem   // valid when Kind == KindMem
	Imm   int64 // valid when Kind == KindImm (sign-extended)
}

// IsReg reports whether the operand is the given register (any width).
func (o Operand) IsReg(r Reg) bool { return o.Kind == KindReg && !o.High8 && o.Reg == r }

// IsMemBaseDisp reports whether the operand is a memory reference
// [base+disp] with no index and no segment override.
func (o Operand) IsMemBaseDisp(base Reg, disp int64) bool {
	return o.Kind == KindMem && o.Mem.Seg == SegNone && o.Mem.Base == base &&
		o.Mem.Index == RegNone && o.Mem.Disp == disp
}

// IsSegDisp reports whether the operand is a segment-relative absolute
// reference seg:disp, e.g. %fs:0x28 used by stack-protector canaries.
func (o Operand) IsSegDisp(seg Seg, disp int64) bool {
	return o.Kind == KindMem && o.Mem.Seg == seg && o.Mem.Base == RegNone &&
		o.Mem.Index == RegNone && o.Mem.Disp == disp
}

// Cond is a condition code (the tttn field of Jcc/SETcc/CMOVcc opcodes).
type Cond uint8

// Condition codes in hardware encoding order.
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below
	CondAE             // above or equal
	CondE              // equal / zero
	CondNE             // not equal / not zero
	CondBE             // below or equal
	CondA              // above
	CondS              // sign
	CondNS             // not sign
	CondP              // parity
	CondNP             // not parity
	CondL              // less
	CondGE             // greater or equal
	CondLE             // less or equal
	CondG              // greater
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func (c Cond) String() string { return condNames[c&0xf] }
