package x86

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genReg draws a general-purpose register, optionally excluding RSP/RBP
// whose encodings take special ModRM paths.
func genReg(r *rand.Rand, excludeSpecial bool) Reg {
	for {
		reg := Reg(r.Intn(16))
		if excludeSpecial && (reg == RegSP || reg == RegBP || reg == RegR12 || reg == RegR13) {
			continue
		}
		return reg
	}
}

// emitRandomInst appends one random instruction via the assembler and
// returns a closure that checks the decoded form matches.
func emitRandomInst(a *Assembler, r *rand.Rand) func(t *testing.T, in Inst) {
	switch r.Intn(14) {
	case 0:
		dst, src := Reg(r.Intn(16)), Reg(r.Intn(16))
		a.MovRegReg(dst, src)
		return func(t *testing.T, in Inst) {
			if in.Op != OpMov || !in.Args[0].IsReg(dst) || !in.Args[1].IsReg(src) {
				t.Errorf("mov %v,%v decoded as %v", src, dst, in.String())
			}
		}
	case 1:
		dst := Reg(r.Intn(16))
		imm := int64(r.Uint64())
		a.MovRegImm64(dst, imm)
		return func(t *testing.T, in Inst) {
			if in.Op != OpMov || in.Imm != imm || !in.Args[0].IsReg(dst) {
				t.Errorf("movabs decoded as %v imm %#x", in.String(), in.Imm)
			}
		}
	case 2:
		dst, src := Reg(r.Intn(16)), Reg(r.Intn(16))
		a.AddRegReg(dst, src)
		return func(t *testing.T, in Inst) {
			if in.Op != OpAdd || !in.Args[0].IsReg(dst) || !in.Args[1].IsReg(src) {
				t.Errorf("add decoded as %v", in.String())
			}
		}
	case 3:
		dst := Reg(r.Intn(16))
		imm := int32(r.Int31())
		a.AndRegImm32(dst, imm)
		return func(t *testing.T, in Inst) {
			if in.Op != OpAnd || in.Imm != int64(imm) || !in.Args[0].IsReg(dst) {
				t.Errorf("and decoded as %v imm %#x want %#x", in.String(), in.Imm, imm)
			}
		}
	case 4:
		reg := Reg(r.Intn(16))
		a.PushReg(reg)
		return func(t *testing.T, in Inst) {
			if in.Op != OpPush || !in.Args[0].IsReg(reg) {
				t.Errorf("push decoded as %v", in.String())
			}
		}
	case 5:
		reg := Reg(r.Intn(16))
		a.PopReg(reg)
		return func(t *testing.T, in Inst) {
			if in.Op != OpPop || !in.Args[0].IsReg(reg) {
				t.Errorf("pop decoded as %v", in.String())
			}
		}
	case 6:
		dst := genReg(r, true)
		base := genReg(r, true)
		disp := int64(int8(r.Intn(256)))
		a.MovRegMem(dst, Mem{Base: base, Index: RegNone, Disp: disp})
		return func(t *testing.T, in Inst) {
			if in.Op != OpMov || !in.Args[0].IsReg(dst) || !in.Args[1].IsMemBaseDisp(base, disp) {
				t.Errorf("mov mem decoded as %v, want base %v disp %#x", in.String(), base, disp)
			}
		}
	case 7:
		src := genReg(r, true)
		base := genReg(r, true)
		disp := int64(r.Int31())
		a.MovMemReg(Mem{Base: base, Index: RegNone, Disp: disp}, src)
		return func(t *testing.T, in Inst) {
			if in.Op != OpMov || !in.Args[0].IsMemBaseDisp(base, disp) || !in.Args[1].IsReg(src) {
				t.Errorf("mov →mem decoded as %v", in.String())
			}
		}
	case 8:
		reg := Reg(r.Intn(16))
		a.CallReg(reg)
		return func(t *testing.T, in Inst) {
			if !in.IsIndirectCall() || !in.Args[0].IsReg(reg) {
				t.Errorf("call* decoded as %v", in.String())
			}
		}
	case 9:
		a.Ret()
		return func(t *testing.T, in Inst) {
			if in.Op != OpRet {
				t.Errorf("ret decoded as %v", in.String())
			}
		}
	case 10:
		dst, src := Reg(r.Intn(16)), Reg(r.Intn(16))
		a.XorRegReg(dst, src)
		return func(t *testing.T, in Inst) {
			if in.Op != OpXor {
				t.Errorf("xor decoded as %v", in.String())
			}
		}
	case 11:
		dst := Reg(r.Intn(16))
		imm := int8(r.Intn(128))
		a.SubRegImm8(dst, imm)
		return func(t *testing.T, in Inst) {
			if in.Op != OpSub || in.Imm != int64(imm) {
				t.Errorf("sub imm8 decoded as %v", in.String())
			}
		}
	case 12:
		dst := genReg(r, true)
		base, idx := genReg(r, true), genReg(r, true)
		scale := uint8(1 << r.Intn(4))
		a.LeaMem(dst, Mem{Base: base, Index: idx, Scale: scale, Disp: 0x40})
		return func(t *testing.T, in Inst) {
			if in.Op != OpLea || in.Args[1].Mem.Index != idx || in.Args[1].Mem.Scale != scale {
				t.Errorf("lea SIB decoded as %v (want idx %v scale %d)", in.String(), idx, scale)
			}
		}
	default:
		n := 1 + r.Intn(9)
		a.Nop(n)
		return func(t *testing.T, in Inst) {
			if in.Op != OpNop || in.Len != n {
				t.Errorf("nop(%d) decoded as %v len %d", n, in.Op, in.Len)
			}
		}
	}
}

// TestQuickRoundTrip asserts that any program the assembler can emit is
// decoded back instruction-for-instruction — the invariant that makes the
// synthetic toolchain's output disassemblable by EnGarde by construction.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%32) + 1
		var a Assembler
		checks := make([]func(*testing.T, Inst), 0, count)
		for i := 0; i < count; i++ {
			checks = append(checks, emitRandomInst(&a, r))
		}
		code, fixups, err := a.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if len(fixups) != 0 {
			t.Fatalf("unexpected fixups: %v", fixups)
		}
		insts, err := DecodeAll(code, 0x1000)
		if err != nil {
			t.Errorf("seed %d: DecodeAll: %v", seed, err)
			return false
		}
		if len(insts) != count {
			t.Errorf("seed %d: decoded %d instructions, want %d", seed, len(insts), count)
			return false
		}
		for i, check := range checks {
			check(t, insts[i])
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics feeds random bytes to the decoder; it must
// return an Inst or an error but never panic and never report a length
// beyond the input or the architectural limit.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(code []byte) bool {
		in, err := Decode(code, 0x400000)
		if err != nil {
			return true
		}
		if in.Len <= 0 || in.Len > len(code) || in.Len > 15 {
			t.Errorf("Decode(% x): bad length %d", code, in.Len)
			return false
		}
		sum := in.NumPrefix + in.NumOpcode + in.NumDisp + in.NumImm
		if in.HasModRM {
			sum++
		}
		if in.HasSIB {
			sum++
		}
		if sum != in.Len {
			t.Errorf("Decode(% x): layout sum %d != len %d", code[:in.Len], sum, in.Len)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLabelBranches(t *testing.T) {
	var a Assembler
	a.Label("top")
	a.Nop(1)
	a.JccLabel(CondNE, "top")
	a.JmpLabel("end")
	a.Nop(5)
	a.Label("end")
	a.Ret()
	code, _, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	insts, err := DecodeAll(code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// insts: nop, jne top, jmp end, nop(5), ret
	if tgt, _ := insts[1].BranchTarget(); tgt != 0x1000 {
		t.Errorf("jne target = %#x, want 0x1000", tgt)
	}
	if tgt, _ := insts[2].BranchTarget(); tgt != 0x1000+uint64(len(code)-1) {
		t.Errorf("jmp target = %#x, want %#x", tgt, 0x1000+len(code)-1)
	}
}

func TestUndefinedLabel(t *testing.T) {
	var a Assembler
	a.JmpLabel("nowhere")
	if _, _, err := a.Finish(); err == nil {
		t.Error("expected undefined-label error")
	}
}
