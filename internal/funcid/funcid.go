// Package funcid recovers function boundaries in stripped binaries.
//
// EnGarde auto-rejects binaries without symbol tables because its policy
// modules need function boundaries and names (paper §6). The same section
// points at binary-analysis research (Rosenblum et al., Shin et al.) and
// notes that "as these techniques develop and improve in their accuracy
// and performance, EnGarde can be enhanced to even consider stripped
// binaries as enclave code". This package is that enhancement in its
// simplest reliable form: a static heuristic that recovers function starts
// from a validated, fully decoded instruction buffer. Policies that need
// only *boundaries* (forbidden-instruction scanning, NaCl reachability)
// work on the recovered table; policies that need *names* (library
// linking) still require real symbols and keep rejecting.
//
// The heuristic marks an address as a function start when it is
//
//   - the program entry point, or
//   - the target of a direct call, or
//   - the target of a jump-table jmpq slot, or
//   - bundle-aligned code that begins a frame-setup instruction and is
//     preceded only by padding/terminators (the "orphan prologue" rule
//     catching functions only ever called indirectly).
package funcid

import (
	"fmt"
	"sort"

	"engarde/internal/nacl"
	"engarde/internal/symtab"
	"engarde/internal/x86"
)

// bundleSize mirrors the NaCl bundle granularity; recovered starts are
// expected on these boundaries for NaCl-constrained code.
const bundleSize = 32

// Recover builds a synthetic symbol table for a validated program whose
// real symbols are missing. Recovered functions are named fn_<hexaddr>.
func Recover(p *nacl.Program, entry uint64) *symtab.Table {
	starts := make(map[uint64]bool)
	starts[entry] = true

	// Pass 1: direct call targets, and jump-table style jmpq slots.
	for i := range p.Insts {
		in := &p.Insts[i]
		switch in.Op {
		case x86.OpCall:
			if tgt, ok := in.BranchTarget(); ok && p.IsInstStart(tgt) {
				starts[tgt] = true
			}
		case x86.OpJmp:
			// A jmp followed by a short nop filler in an 8-byte stride is
			// a jump-table slot: both its target (the dispatched function)
			// and the slot itself (an indirect-call entry point, a
			// function symbol in LLVM's IFCC output) are starts.
			if tgt, ok := in.BranchTarget(); ok && p.IsInstStart(tgt) && isSlotJmp(p, i) {
				starts[tgt] = true
				starts[in.Addr] = true
			}
		}
	}

	// Pass 2: orphan prologues — bundle-aligned frame setups reachable
	// only through indirect calls.
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Addr%bundleSize != 0 || !isProloguish(in) {
			continue
		}
		if i == 0 || terminatesFlow(p, i-1) {
			starts[in.Addr] = true
		}
	}

	addrs := make([]uint64, 0, len(starts))
	for a := range starts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// Sizes: from each start to the next (or the region end).
	tab := symtab.New()
	for i, a := range addrs {
		end := p.End
		if i+1 < len(addrs) {
			end = addrs[i+1]
		}
		tab.Add(symtab.Entry{
			Name: fmt.Sprintf("fn_%x", a),
			Addr: a,
			Size: end - a,
		})
	}
	return tab
}

// isProloguish reports whether the instruction looks like the first
// instruction of a function body: stack-frame reservation or a
// callee-saved push.
func isProloguish(in *x86.Inst) bool {
	switch in.Op {
	case x86.OpSub:
		// sub $imm, %rsp
		return in.NArgs == 2 && in.Args[0].IsReg(x86.RegSP) && in.Args[1].Kind == x86.KindImm
	case x86.OpPush:
		return in.NArgs == 1 && in.Args[0].Kind == x86.KindReg
	case x86.OpMov:
		// mov %rsp, %rbp style
		return in.NArgs == 2 && in.Args[0].IsReg(x86.RegBP) && in.Args[1].IsReg(x86.RegSP)
	}
	return false
}

// terminatesFlow reports whether instruction j ends a function's
// fall-through (ret/jmp/trap) or is alignment padding whose predecessors
// terminate.
func terminatesFlow(p *nacl.Program, j int) bool {
	for j >= 0 && p.Insts[j].Op == x86.OpNop {
		j--
	}
	if j < 0 {
		return true
	}
	switch p.Insts[j].Op {
	case x86.OpRet, x86.OpJmp, x86.OpJmpInd, x86.OpUd2, x86.OpHlt, x86.OpInt3:
		return true
	}
	return false
}

// isSlotJmp reports whether the jmp at index i is immediately followed by
// a short nop (the 8-byte jump-table slot format).
func isSlotJmp(p *nacl.Program, i int) bool {
	if i+1 >= len(p.Insts) {
		return false
	}
	next := &p.Insts[i+1]
	return next.Op == x86.OpNop && p.Insts[i].Len+next.Len == 8
}
