package funcid

import (
	"testing"

	"engarde/internal/elf64"
	"engarde/internal/nacl"
	"engarde/internal/symtab"
	"engarde/internal/toolchain"
)

// buildStripped produces a stripped binary plus the ground-truth symbol
// table from an identical non-stripped build.
func buildStripped(t *testing.T, cfg toolchain.Config) (*nacl.Program, uint64, *symtab.Table) {
	t.Helper()
	cfg.Strip = true
	stripped, err := toolchain.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Strip = false
	full, err := toolchain.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := elf64.Parse(full.Image)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := symtab.FromELF(ff)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := elf64.Parse(stripped.Image)
	if err != nil {
		t.Fatal(err)
	}
	text := sf.Section(".text")
	prog, err := nacl.DecodeProgram(text.Data, text.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	return prog, sf.Header.Entry, truth
}

func cfg() toolchain.Config {
	return toolchain.Config{
		Name: "fi", Seed: 61,
		NumFuncs: 12, AvgFuncInsts: 60,
		LibcCallRate: 0.05, AppCallRate: 0.02,
	}
}

func TestRecoverFindsCalledFunctions(t *testing.T) {
	prog, entry, truth := buildStripped(t, cfg())
	rec := Recover(prog, entry)

	// Every ground-truth function must be recovered (our generator calls
	// or indirectly references them all, and prologues are canonical).
	missed := 0
	for _, fn := range truth.Functions() {
		if !rec.IsFuncStart(fn.Addr) {
			missed++
			t.Logf("missed: %s at %#x", fn.Name, fn.Addr)
		}
	}
	// Allow a small tail of misses (functions never referenced and with
	// unusual first instructions), but the bulk must be found.
	if missed > truth.Len()/10 {
		t.Errorf("missed %d of %d functions", missed, truth.Len())
	}
}

func TestRecoverNoFalseMidFunctionStarts(t *testing.T) {
	prog, entry, truth := buildStripped(t, cfg())
	rec := Recover(prog, entry)
	// No recovered start may fall strictly inside a ground-truth function
	// body (starts at padding boundaries after the body are tolerable).
	for _, fn := range rec.Functions() {
		owner, ok := truth.FuncContaining(fn.Addr)
		if !ok {
			continue
		}
		if fn.Addr > owner.Addr && fn.Addr < owner.Addr+owner.Size {
			t.Errorf("false start %#x inside %s [%#x, %#x)",
				fn.Addr, owner.Name, owner.Addr, owner.Addr+owner.Size)
		}
	}
}

func TestRecoverSupportsReachability(t *testing.T) {
	// The recovered table must be good enough for the NaCl reachability
	// rule — the property the stripped-binary pipeline needs.
	prog, entry, _ := buildStripped(t, cfg())
	rec := Recover(prog, entry)
	if err := prog.CheckReachability(entry, rec); err != nil {
		t.Errorf("reachability with recovered table: %v", err)
	}
}

func TestRecoverWithIFCC(t *testing.T) {
	c := cfg()
	c.IFCC = true
	c.IndirectRate = 0.02
	prog, entry, _ := buildStripped(t, c)
	rec := Recover(prog, entry)
	if err := prog.CheckReachability(entry, rec); err != nil {
		t.Errorf("reachability (IFCC build): %v", err)
	}
}

func TestRecoveredNamesAreSynthetic(t *testing.T) {
	prog, entry, _ := buildStripped(t, cfg())
	rec := Recover(prog, entry)
	if rec.Len() == 0 {
		t.Fatal("nothing recovered")
	}
	if name, ok := rec.NameAt(entry); !ok || name != "fn_1000" {
		t.Errorf("entry name = %q, want fn_1000", name)
	}
}
