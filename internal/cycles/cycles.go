// Package cycles implements the performance-accounting methodology of the
// EnGarde paper (§5), which in turn follows the OpenSGX paper: every SGX
// instruction (enclave crossing, trampoline call, EADD, ...) is charged a
// flat 10,000 CPU cycles, and ordinary in-enclave work is charged in units
// (instructions decoded, bytes hashed, hash-table lookups, relocations
// applied) converted to cycles with calibrated per-unit costs.
//
// The per-unit constants in DefaultModel are calibrated once against the
// paper's Figure 3 Nginx row (see EXPERIMENTS.md §Calibration) and then held
// fixed for every experiment, so relative comparisons across benchmarks and
// policies are meaningful even though absolute cycle counts are model
// outputs, exactly as in the paper.
package cycles

import (
	"fmt"
	"sync/atomic"
)

// Phase identifies a stage of EnGarde's provisioning pipeline. The three
// middle phases are the columns of the paper's Figures 3-5.
type Phase int

// Pipeline phases.
const (
	PhaseProvision Phase = iota + 1 // enclave creation + encrypted transfer
	PhaseDisasm                     // "Disassembly" column
	PhasePolicy                     // "Policy Checking" column
	PhaseLoad                       // "Loading and Relocation" column
	PhaseAttest                     // attestation (not tabulated in the paper)

	numPhases
)

// NumPhases is the exclusive upper bound of valid Phase values: phases are
// 1..NumPhases-1, so a [NumPhases]uint64 indexed by Phase has one unused
// slot at 0. Telemetry code sizes fixed per-phase arrays with it.
const NumPhases = int(numPhases)

var phaseNames = map[Phase]string{
	PhaseProvision: "Provisioning",
	PhaseDisasm:    "Disassembly",
	PhasePolicy:    "Policy Checking",
	PhaseLoad:      "Loading and Relocation",
	PhaseAttest:    "Attestation",
}

func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Unit is a kind of metered work.
type Unit int

// Work units.
const (
	// UnitSGXInstr is one SGX instruction or enclave crossing
	// (EENTER/EEXIT/EADD/trampoline). The paper charges these 10K cycles.
	UnitSGXInstr Unit = iota
	// UnitDecodedInst is one x86-64 instruction decoded by the
	// NaCl-style disassembler.
	UnitDecodedInst
	// UnitHashedByte is one byte fed through SHA-256 by a policy module.
	UnitHashedByte
	// UnitHashInit is one SHA-256 initialization+finalization.
	UnitHashInit
	// UnitSymLookup is one symbol hash-table lookup.
	UnitSymLookup
	// UnitScanInst is one instruction visited by a policy module's scan
	// over the instruction buffer.
	UnitScanInst
	// UnitPatternStep is one operand/pattern predicate evaluated by a
	// policy matcher.
	UnitPatternStep
	// UnitRelocEntry is one relocation entry applied by the loader.
	UnitRelocEntry
	// UnitPageMap is one enclave page mapped with final permissions.
	UnitPageMap
	// UnitSegmentMap is one ELF segment mapped by the loader (text, data,
	// bss), covering the per-segment setup cost.
	UnitSegmentMap
	// UnitCopiedByte is one byte copied while staging segments.
	UnitCopiedByte
	// UnitAESByte is one byte of AES-GCM processing on the provisioning
	// channel.
	UnitAESByte
	// UnitRSAOp is one RSA-2048 private/public key operation.
	UnitRSAOp
	// UnitMemoKeyByte is one byte fed through SHA-256 while computing a
	// content-addressed function digest for the memo cache (the fingerprint
	// pass of internal/policy/memo).
	UnitMemoKeyByte
	// UnitMemoProbe is one memo-cache lookup: a per-function probe of the
	// function-result cache, or a per-call-site digest-table fetch.
	UnitMemoProbe

	numUnits
)

var unitNames = [numUnits]string{
	"sgx-instr", "decoded-inst", "hashed-byte", "hash-init",
	"sym-lookup", "scan-inst", "pattern-step", "reloc-entry",
	"page-map", "segment-map", "copied-byte", "aes-byte", "rsa-op",
	"memo-key-byte", "memo-probe",
}

func (u Unit) String() string {
	if u >= 0 && int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", int(u))
}

// Model maps each work unit to its cost in CPU cycles.
type Model [numUnits]uint64

// DefaultModel returns the calibrated cost model. See EXPERIMENTS.md
// §Calibration for the derivation of each constant.
func DefaultModel() Model {
	var m Model
	m[UnitSGXInstr] = 10_000 // fixed by the paper's methodology (§5)
	m[UnitDecodedInst] = 1_400
	m[UnitHashedByte] = 30 // unoptimized in-enclave SHA-256, C reference code
	m[UnitHashInit] = 500
	m[UnitSymLookup] = 80
	m[UnitScanInst] = 25
	m[UnitPatternStep] = 15
	m[UnitRelocEntry] = 50
	m[UnitPageMap] = 400
	m[UnitSegmentMap] = 1_400
	// Segment copies are mmap-style mappings in the paper's loader; the
	// unit is counted for reporting but costs no cycles.
	m[UnitCopiedByte] = 0
	m[UnitAESByte] = 4
	m[UnitRSAOp] = 2_000_000
	// Memo-cache units: digest bytes cost the same as policy-module SHA-256
	// bytes (the work is identical); a probe is priced like a slightly
	// heavier hash-table lookup (bucket walk + 64-byte key compare).
	m[UnitMemoKeyByte] = 30
	m[UnitMemoProbe] = 120
	return m
}

// Counter accumulates cycles and unit counts per phase. It is safe for
// concurrent use and contention-free: every cell is an independent atomic,
// so parallel pipeline workers charging disjoint (or even identical) cells
// never serialize on a lock. The zero value is NOT ready: use NewCounter so
// a model is attached.
//
// For exact accounting under heavy sharded workloads, workers should charge
// a private staging Counter (Stage) and the coordinator should merge them in
// a deterministic order (Fold); that keeps totals independent of worker
// count and interleaving.
type Counter struct {
	model  Model
	cycles [numPhases]atomic.Uint64
	units  [numPhases][numUnits]atomic.Uint64
}

// NewCounter returns a Counter charging according to the given model.
func NewCounter(m Model) *Counter {
	return &Counter{model: m}
}

// Model returns the cost model the counter charges against.
func (c *Counter) Model() Model {
	return c.model
}

// Stage returns a fresh, empty Counter with the same cost model, intended
// as a per-worker staging area. Charges recorded on the stage are invisible
// to c until the coordinator calls c.Fold(stage).
func (c *Counter) Stage() *Counter {
	return NewCounter(c.model)
}

// Fold adds every cell of src into c. src is read atomically but should be
// quiescent (its workers done) when folded, or the merge is torn. Folding
// staging counters in a fixed order makes parallel accounting reproduce the
// sequential totals exactly.
func (c *Counter) Fold(src *Counter) {
	if src == nil {
		return
	}
	for p := 1; p < int(numPhases); p++ {
		if v := src.cycles[p].Load(); v != 0 {
			c.cycles[p].Add(v)
		}
		for u := 0; u < int(numUnits); u++ {
			if v := src.units[p][u].Load(); v != 0 {
				c.units[p][u].Add(v)
			}
		}
	}
}

// Charge records n units of work in the given phase.
func (c *Counter) Charge(p Phase, u Unit, n uint64) {
	if p <= 0 || p >= numPhases || u < 0 || u >= numUnits {
		return
	}
	c.units[p][u].Add(n)
	c.cycles[p].Add(n * c.model[u])
}

// Cycles returns the accumulated cycles for a phase.
func (c *Counter) Cycles(p Phase) uint64 {
	if p <= 0 || p >= numPhases {
		return 0
	}
	return c.cycles[p].Load()
}

// Units returns the accumulated count of a unit within a phase.
func (c *Counter) Units(p Phase, u Unit) uint64 {
	if p <= 0 || p >= numPhases || u < 0 || u >= numUnits {
		return 0
	}
	return c.units[p][u].Load()
}

// Total returns the cycles summed over all phases.
func (c *Counter) Total() uint64 {
	var t uint64
	for p := 1; p < int(numPhases); p++ {
		t += c.cycles[p].Load()
	}
	return t
}

// Reset zeroes all counters, keeping the model.
func (c *Counter) Reset() {
	for p := 1; p < int(numPhases); p++ {
		c.cycles[p].Store(0)
		for u := 0; u < int(numUnits); u++ {
			c.units[p][u].Store(0)
		}
	}
}

// AllPhases lists every pipeline phase in order. Serving-layer code uses
// it to render stable, complete phase tables (Snapshot omits zero phases).
func AllPhases() []Phase {
	out := make([]Phase, 0, int(numPhases)-1)
	for p := Phase(1); p < numPhases; p++ {
		out = append(out, p)
	}
	return out
}

// SnapshotNamed returns the per-phase cycle totals keyed by phase name —
// the JSON-friendly form of Snapshot, used by the gateway's stats endpoint.
func (c *Counter) SnapshotNamed() map[string]uint64 {
	out := make(map[string]uint64, int(numPhases))
	for p := Phase(1); p < numPhases; p++ {
		if v := c.cycles[p].Load(); v > 0 {
			out[p.String()] = v
		}
	}
	return out
}

// SnapshotArray returns the per-phase cycle totals as a fixed array indexed
// by Phase (slot 0 unused). It allocates nothing, so span instrumentation
// can snapshot the counter on the hot path without GC pressure.
func (c *Counter) SnapshotArray() [NumPhases]uint64 {
	var out [NumPhases]uint64
	for p := 1; p < int(numPhases); p++ {
		out[p] = c.cycles[p].Load()
	}
	return out
}

// Snapshot returns a copy of the per-phase cycle totals keyed by phase.
func (c *Counter) Snapshot() map[Phase]uint64 {
	out := make(map[Phase]uint64, int(numPhases))
	for p := Phase(1); p < numPhases; p++ {
		if v := c.cycles[p].Load(); v > 0 {
			out[p] = v
		}
	}
	return out
}

// Milliseconds converts a cycle count to wall-clock milliseconds at the
// paper's reference clock rate of 3.5 GHz ("A CPU with a clock rate of
// 3.5GHz as used in our experiments has 1/3.5 nanoseconds cycle time").
func Milliseconds(cyc uint64) float64 {
	const hz = 3.5e9
	return float64(cyc) / hz * 1e3
}
