package cycles

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestChargeAccumulates(t *testing.T) {
	c := NewCounter(DefaultModel())
	c.Charge(PhaseDisasm, UnitDecodedInst, 100)
	c.Charge(PhaseDisasm, UnitDecodedInst, 50)
	c.Charge(PhasePolicy, UnitHashedByte, 1000)

	if got := c.Units(PhaseDisasm, UnitDecodedInst); got != 150 {
		t.Errorf("units = %d, want 150", got)
	}
	wantDisasm := 150 * DefaultModel()[UnitDecodedInst]
	if got := c.Cycles(PhaseDisasm); got != wantDisasm {
		t.Errorf("disasm cycles = %d, want %d", got, wantDisasm)
	}
	wantPolicy := 1000 * DefaultModel()[UnitHashedByte]
	if got := c.Cycles(PhasePolicy); got != wantPolicy {
		t.Errorf("policy cycles = %d, want %d", got, wantPolicy)
	}
	if got := c.Total(); got != wantDisasm+wantPolicy {
		t.Errorf("total = %d", got)
	}
}

func TestSGXInstructionCost(t *testing.T) {
	// The paper's methodology fixes SGX instructions at 10K cycles.
	if DefaultModel()[UnitSGXInstr] != 10_000 {
		t.Fatalf("SGX instruction cost = %d, want 10000", DefaultModel()[UnitSGXInstr])
	}
	c := NewCounter(DefaultModel())
	c.Charge(PhaseProvision, UnitSGXInstr, 3)
	if got := c.Cycles(PhaseProvision); got != 30_000 {
		t.Errorf("3 SGX instructions = %d cycles, want 30000", got)
	}
}

func TestOutOfRangeChargesIgnored(t *testing.T) {
	c := NewCounter(DefaultModel())
	c.Charge(Phase(0), UnitSGXInstr, 5)
	c.Charge(Phase(99), UnitSGXInstr, 5)
	c.Charge(PhaseDisasm, Unit(-1), 5)
	c.Charge(PhaseDisasm, Unit(99), 5)
	if c.Total() != 0 {
		t.Errorf("total = %d, want 0", c.Total())
	}
	if c.Cycles(Phase(99)) != 0 || c.Units(Phase(0), UnitSGXInstr) != 0 {
		t.Error("out-of-range reads should return 0")
	}
}

func TestReset(t *testing.T) {
	c := NewCounter(DefaultModel())
	c.Charge(PhaseLoad, UnitPageMap, 10)
	c.Reset()
	if c.Total() != 0 {
		t.Errorf("total after reset = %d", c.Total())
	}
}

func TestSnapshot(t *testing.T) {
	c := NewCounter(DefaultModel())
	c.Charge(PhaseDisasm, UnitDecodedInst, 1)
	c.Charge(PhaseLoad, UnitRelocEntry, 2)
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d phases, want 2", len(snap))
	}
	if snap[PhaseDisasm] != DefaultModel()[UnitDecodedInst] {
		t.Errorf("snapshot disasm = %d", snap[PhaseDisasm])
	}
}

func TestConcurrentCharges(t *testing.T) {
	c := NewCounter(DefaultModel())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge(PhasePolicy, UnitScanInst, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Units(PhasePolicy, UnitScanInst); got != 8000 {
		t.Errorf("units = %d, want 8000", got)
	}
}

func TestMilliseconds(t *testing.T) {
	// The paper's worked example: 694,405,019 cycles at 3.5 GHz is
	// 198.4 ms.
	ms := Milliseconds(694_405_019)
	if ms < 198.0 || ms > 198.8 {
		t.Errorf("Milliseconds(694405019) = %.1f, want ≈198.4", ms)
	}
}

// TestQuickChargeLinear: charging is linear — charge(a+b) equals
// charge(a);charge(b) for every phase/unit.
func TestQuickChargeLinear(t *testing.T) {
	m := DefaultModel()
	f := func(a, b uint16, pRaw, uRaw uint8) bool {
		p := Phase(int(pRaw)%int(numPhases-1) + 1)
		u := Unit(int(uRaw) % int(numUnits))
		c1 := NewCounter(m)
		c1.Charge(p, u, uint64(a)+uint64(b))
		c2 := NewCounter(m)
		c2.Charge(p, u, uint64(a))
		c2.Charge(p, u, uint64(b))
		return c1.Cycles(p) == c2.Cycles(p) && c1.Units(p, u) == c2.Units(p, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseAndUnitNames(t *testing.T) {
	if PhasePolicy.String() != "Policy Checking" {
		t.Errorf("PhasePolicy = %q", PhasePolicy.String())
	}
	if UnitSGXInstr.String() != "sgx-instr" {
		t.Errorf("UnitSGXInstr = %q", UnitSGXInstr.String())
	}
	if Phase(77).String() == "" || Unit(77).String() == "" {
		t.Error("out-of-range names should be non-empty")
	}
}

func TestSnapshotNamedAndAllPhases(t *testing.T) {
	c := NewCounter(DefaultModel())
	c.Charge(PhaseDisasm, UnitDecodedInst, 10)
	c.Charge(PhasePolicy, UnitScanInst, 4)
	named := c.SnapshotNamed()
	if named["Disassembly"] != c.Cycles(PhaseDisasm) {
		t.Errorf("named disassembly = %d, want %d", named["Disassembly"], c.Cycles(PhaseDisasm))
	}
	if named["Policy Checking"] != c.Cycles(PhasePolicy) {
		t.Errorf("named policy = %d, want %d", named["Policy Checking"], c.Cycles(PhasePolicy))
	}
	if _, ok := named["Loading and Relocation"]; ok {
		t.Error("zero phases must be omitted")
	}
	phases := AllPhases()
	if len(phases) != int(numPhases)-1 {
		t.Errorf("AllPhases: %d phases, want %d", len(phases), int(numPhases)-1)
	}
	for i, p := range phases {
		if int(p) != i+1 {
			t.Errorf("AllPhases[%d] = %v", i, p)
		}
	}
}
