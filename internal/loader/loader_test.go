package loader

import (
	"encoding/binary"
	"errors"
	"testing"

	"engarde/internal/cycles"
	"engarde/internal/elf64"
	"engarde/internal/toolchain"
)

// memBuf is a flat Memory for tests.
type memBuf struct {
	base uint64
	data []byte
}

func newMemBuf(base uint64, size int) *memBuf {
	return &memBuf{base: base, data: make([]byte, size)}
}

func (m *memBuf) Write(addr uint64, b []byte) error {
	off := addr - m.base
	if off+uint64(len(b)) > uint64(len(m.data)) {
		return errors.New("membuf: out of range")
	}
	copy(m.data[off:], b)
	return nil
}

func (m *memBuf) Read(addr uint64, b []byte) error {
	off := addr - m.base
	if off+uint64(len(b)) > uint64(len(m.data)) {
		return errors.New("membuf: out of range")
	}
	copy(b, m.data[off:])
	return nil
}

func buildBin(t *testing.T) (*toolchain.Binary, *elf64.File) {
	t.Helper()
	bin, err := toolchain.Build(toolchain.Config{
		Name: "ld", Seed: 51, NumFuncs: 6, AvgFuncInsts: 40, NumDataRelocs: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf64.Parse(bin.Image)
	if err != nil {
		t.Fatal(err)
	}
	return bin, f
}

func TestLoadBasics(t *testing.T) {
	bin, f := buildBin(t)
	mem := newMemBuf(0x200000, 4<<20)
	ctr := cycles.NewCounter(cycles.DefaultModel())
	res, err := Load(f, mem, Config{Base: 0x200000, Counter: ctr})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if res.Entry != 0x200000+f.Header.Entry {
		t.Errorf("entry = %#x", res.Entry)
	}
	if res.RelocsApplied != bin.NumRelocs {
		t.Errorf("relocs applied = %d, want %d", res.RelocsApplied, bin.NumRelocs)
	}
	if len(res.ExecPages) == 0 || len(res.DataPages) == 0 {
		t.Fatal("missing page lists")
	}
	// Text content landed at base+textAddr.
	text := f.Section(".text")
	got := make([]byte, 64)
	if err := mem.Read(0x200000+text.Addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != text.Data[i] {
			t.Fatalf("text byte %d mismatch", i)
		}
	}
}

func TestLoadAppliesRelocations(t *testing.T) {
	_, f := buildBin(t)
	mem := newMemBuf(0x200000, 4<<20)
	res, err := Load(f, mem, Config{Base: 0x200000})
	if err != nil {
		t.Fatal(err)
	}
	relas, err := f.Relocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(relas) == 0 {
		t.Fatal("test binary has no relocations")
	}
	for _, r := range relas {
		var word [8]byte
		if err := mem.Read(res.Bias+r.Off, word[:]); err != nil {
			t.Fatal(err)
		}
		got := binary.LittleEndian.Uint64(word[:])
		want := res.Bias + uint64(r.Addend)
		if got != want {
			t.Errorf("reloc at %#x = %#x, want %#x", r.Off, got, want)
		}
	}
}

func TestLoadPageDisposition(t *testing.T) {
	_, f := buildBin(t)
	mem := newMemBuf(0x200000, 4<<20)
	res, err := Load(f, mem, Config{Base: 0x200000})
	if err != nil {
		t.Fatal(err)
	}
	// Exec and data page sets must be disjoint (W^X).
	seen := map[uint64]bool{}
	for _, p := range res.ExecPages {
		seen[p] = true
	}
	for _, p := range res.DataPages {
		if seen[p] {
			t.Errorf("page %#x is both executable and writable", p)
		}
	}
	// Text pages all in ExecPages.
	text := f.Section(".text")
	nTextPages := (int(text.Size) + PageSize - 1) / PageSize
	if len(res.ExecPages) < nTextPages {
		t.Errorf("%d exec pages < %d text pages", len(res.ExecPages), nTextPages)
	}
	// Stack is writable and the stack top lies in a data page.
	top := res.StackTop &^ uint64(PageSize-1)
	found := false
	for _, p := range res.DataPages {
		if p == top {
			found = true
		}
	}
	if !found {
		t.Error("stack top not in a writable page")
	}
}

func TestLoadRespectsLimit(t *testing.T) {
	_, f := buildBin(t)
	mem := newMemBuf(0x200000, 4<<20)
	_, err := Load(f, mem, Config{Base: 0x200000, Limit: 2 * PageSize})
	if !errors.Is(err, ErrImageTooLarge) {
		t.Errorf("Load with tiny limit = %v, want ErrImageTooLarge", err)
	}
}

func TestLoadChargesPhases(t *testing.T) {
	bin, f := buildBin(t)
	mem := newMemBuf(0x200000, 4<<20)
	ctr := cycles.NewCounter(cycles.DefaultModel())
	if _, err := Load(f, mem, Config{Base: 0x200000, Counter: ctr}); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Units(cycles.PhaseLoad, cycles.UnitRelocEntry); got != uint64(bin.NumRelocs) {
		t.Errorf("charged %d relocs, want %d", got, bin.NumRelocs)
	}
	// 2 PT_LOAD segments + 1 stack setup.
	if got := ctr.Units(cycles.PhaseLoad, cycles.UnitSegmentMap); got != 3 {
		t.Errorf("charged %d segment maps, want 3", got)
	}
	if ctr.Cycles(cycles.PhaseLoad) == 0 {
		t.Error("no load cycles charged")
	}
}

func TestLoadUnalignedBase(t *testing.T) {
	_, f := buildBin(t)
	mem := newMemBuf(0x200000, 4<<20)
	if _, err := Load(f, mem, Config{Base: 0x200001}); err == nil {
		t.Error("unaligned base must be rejected")
	}
}
