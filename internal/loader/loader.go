// Package loader implements EnGarde's in-enclave loader (paper §4,
// "Loading"): after the executable has been checked and confirmed to follow
// the agreed policies, the loader maps the text, data and bss segments into
// enclave memory — text executable but read-only, data and bss writable but
// non-executable — applies the relocations described by the .dynamic
// section, sets up a call stack, and transfers control to the executable.
package loader

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"engarde/internal/cycles"
	"engarde/internal/elf64"
)

// PageSize is the mapping granularity.
const PageSize = 4096

// Loader errors.
var (
	// ErrUnsupportedReloc is returned for relocation types other than
	// R_X86_64_RELATIVE (the only kind a static PIE carries).
	ErrUnsupportedReloc = errors.New("loader: unsupported relocation type")
	// ErrImageTooLarge is returned when the image does not fit the region
	// reserved for the client inside the enclave.
	ErrImageTooLarge = errors.New("loader: image exceeds the client region")
)

// Memory is the loader's view of enclave memory (satisfied by
// *sgx.Enclave).
type Memory interface {
	Write(addr uint64, b []byte) error
	Read(addr uint64, b []byte) error
}

// Result describes a completed load.
type Result struct {
	// Bias is the load bias applied to every virtual address of the PIE.
	Bias uint64
	// Entry is the relocated entry point.
	Entry uint64
	// StackTop is the initial stack pointer.
	StackTop uint64
	// TLSBase is a writable thread-local-storage page the loader sets up
	// below the stack; the runtime keeps the stack canary at TLSBase+0x28
	// (%fs:0x28).
	TLSBase uint64
	// GuardPage is the non-writable page between the TLS page and the
	// stack bottom; a stack overflow faults on it instead of silently
	// descending into the image.
	GuardPage uint64
	// ExecPages lists the page-aligned addresses of executable pages —
	// what EnGarde's in-enclave component hands to the host kernel
	// component.
	ExecPages []uint64
	// DataPages lists writable (data/bss/stack) pages.
	DataPages []uint64
	// RelocsApplied counts the dynamic relocations processed.
	RelocsApplied int
}

// Config parametrizes a load.
type Config struct {
	// Base is where in the enclave the client image lands (the PIE's
	// vaddr 0 maps here); must be page-aligned.
	Base uint64
	// Limit is the size in bytes of the client region; 0 means unchecked.
	Limit uint64
	// StackPages is the number of stack pages set up above the image
	// (default 16).
	StackPages int
	// Counter receives loading-phase charges; may be nil.
	Counter *cycles.Counter
}

// Load maps the parsed executable into mem.
func Load(f *elf64.File, mem Memory, cfg Config) (*Result, error) {
	if cfg.Base%PageSize != 0 {
		return nil, fmt.Errorf("loader: base %#x not page-aligned", cfg.Base)
	}
	if cfg.StackPages == 0 {
		cfg.StackPages = 16
	}
	charge := func(u cycles.Unit, n uint64) {
		if cfg.Counter != nil {
			cfg.Counter.Charge(cycles.PhaseLoad, u, n)
		}
	}

	res := &Result{Bias: cfg.Base}
	execSet := map[uint64]bool{}
	dataSet := map[uint64]bool{}
	var maxEnd uint64

	// Map PT_LOAD segments: copy file content, zero the bss tail.
	for _, ph := range f.Progs {
		if ph.Type != elf64.PTLoad {
			continue
		}
		charge(cycles.UnitSegmentMap, 1)
		start := cfg.Base + ph.Vaddr
		if cfg.Limit > 0 && ph.Vaddr+ph.Memsz > cfg.Limit {
			return nil, fmt.Errorf("%w: segment %#x+%#x > limit %#x",
				ErrImageTooLarge, ph.Vaddr, ph.Memsz, cfg.Limit)
		}
		if ph.Filesz > 0 {
			src, err := f.DataAt(ph.Vaddr, ph.Filesz)
			if err != nil {
				return nil, fmt.Errorf("loader: segment at %#x: %w", ph.Vaddr, err)
			}
			if err := mem.Write(start, src); err != nil {
				return nil, fmt.Errorf("loader: writing segment at %#x: %w", start, err)
			}
			charge(cycles.UnitCopiedByte, ph.Filesz)
		}
		if ph.Memsz > ph.Filesz { // zero bss
			zero := make([]byte, ph.Memsz-ph.Filesz)
			if err := mem.Write(start+ph.Filesz, zero); err != nil {
				return nil, fmt.Errorf("loader: zeroing bss at %#x: %w", start+ph.Filesz, err)
			}
			charge(cycles.UnitCopiedByte, uint64(len(zero)))
		}
		// Record page dispositions.
		first := start &^ uint64(PageSize-1)
		last := (start + ph.Memsz - 1) &^ uint64(PageSize-1)
		for page := first; page <= last; page += PageSize {
			if ph.Flags&elf64.PFX != 0 {
				execSet[page] = true
			} else {
				dataSet[page] = true
			}
		}
		if end := ph.Vaddr + ph.Memsz; end > maxEnd {
			maxEnd = end
		}
	}

	// Apply relocations from the .dynamic section's RELA table.
	relas, err := f.Relocations()
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	for _, r := range relas {
		if r.RelaType() != elf64.RX8664Relative {
			return nil, fmt.Errorf("%w: %d at %#x", ErrUnsupportedReloc, r.RelaType(), r.Off)
		}
		var word [8]byte
		binary.LittleEndian.PutUint64(word[:], cfg.Base+uint64(r.Addend))
		if err := mem.Write(cfg.Base+r.Off, word[:]); err != nil {
			return nil, fmt.Errorf("loader: applying relocation at %#x: %w", r.Off, err)
		}
		charge(cycles.UnitRelocEntry, 1)
		res.RelocsApplied++
	}

	// Set up the call stack above the image: an empty frame whose return
	// address is 0 (so a returning _start traps), stack pages writable.
	// One TLS page (canary home), a guard gap, then the stack.
	tlsBase := (cfg.Base + maxEnd + PageSize - 1) &^ uint64(PageSize-1)
	tlsBase += PageSize
	stackBase := tlsBase + 2*PageSize // TLS page + guard gap
	stackEnd := stackBase + uint64(cfg.StackPages)*PageSize
	if cfg.Limit > 0 && stackEnd > cfg.Base+cfg.Limit {
		return nil, fmt.Errorf("%w: stack end %#x > limit", ErrImageTooLarge, stackEnd)
	}
	dataSet[tlsBase] = true
	res.TLSBase = tlsBase
	res.GuardPage = tlsBase + PageSize
	for i := 0; i < cfg.StackPages; i++ {
		dataSet[stackBase+uint64(i)*PageSize] = true
	}
	res.StackTop = stackBase + uint64(cfg.StackPages)*PageSize - 16
	var zeroFrame [16]byte
	if err := mem.Write(res.StackTop, zeroFrame[:]); err != nil {
		return nil, fmt.Errorf("loader: initializing stack: %w", err)
	}
	charge(cycles.UnitSegmentMap, 1) // stack setup

	res.Entry = cfg.Base + f.Header.Entry
	res.ExecPages = sortedKeys(execSet)
	res.DataPages = sortedKeys(dataSet)
	return res, nil
}

func sortedKeys(set map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
