package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"engarde"
	"engarde/internal/secchan"
)

// busyBackend is a fake saturated gatewayd: every connection is shed with
// a Busy hello carrying the given Retry-After hint.
func busyBackend(t *testing.T, hint time.Duration) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_ = engarde.SendBusy(conn, hint)
			}()
		}
	}()
	return l.Addr().String()
}

// echoBackend is a fake healthy gatewayd: it sends a non-busy hello frame
// and then echoes whatever arrives, so tests can see bytes flow both ways.
func echoBackend(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_ = secchan.WriteBlock(conn, []byte(`{"quote":{},"public_key_der":"aGk="}`))
				for {
					b, err := secchan.ReadBlock(conn)
					if err != nil {
						return
					}
					if err := secchan.WriteBlock(conn, b); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// startRouter serves cfg on a loopback listener and returns its address.
func startRouter(t *testing.T, cfg RouterConfig) (*Router, string) {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // no background prober unless the test wants it
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = r.Serve(context.Background(), l)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
		<-done
	})
	return r, l.Addr().String()
}

// TestRouterForwardsBackendRetryAfterHint is the RetryAfterHint
// propagation regression test: when every backend sheds with its own
// hint, the router's busy verdict must carry that hint — not the router's
// default — all the way through engarde.ProvisionRetry's backoff floor.
func TestRouterForwardsBackendRetryAfterHint(t *testing.T) {
	const backendHint = 1234 * time.Millisecond
	const routerDefault = 10 * time.Millisecond
	addr := busyBackend(t, backendHint)
	_, raddr := startRouter(t, RouterConfig{
		Backends:       []Backend{{Name: "gw0", Addr: addr}},
		RetryAfterHint: routerDefault, // must NOT reach the client
		PeekTimeout:    50 * time.Millisecond,
	})

	var delays []time.Duration
	client := &engarde.Client{Route: &engarde.RouteHello{ImageDigest: "deadbeef"}}
	_, err := client.ProvisionRetry(
		func() (net.Conn, error) { return net.Dial("tcp", raddr) },
		[]byte("img"),
		engarde.RetryPolicy{
			Attempts:  2,
			BaseDelay: time.Millisecond, // jitter ceiling far below the hint
			MaxDelay:  2 * time.Millisecond,
			Seed:      1,
			Sleep:     func(time.Duration) {},
			OnRetry:   func(_ int, d time.Duration, _ error) { delays = append(delays, d) },
		})
	if err == nil {
		t.Fatal("ProvisionRetry against an all-busy fleet must fail busy")
	}
	if len(delays) != 1 {
		t.Fatalf("delays = %v, want exactly one retry", delays)
	}
	// The backoff floor is the server hint: with a 2ms jitter ceiling, a
	// 1234ms delay can only have come from the backend's hint surviving
	// the router.
	if delays[0] != backendHint {
		t.Fatalf("retry delay = %v, want the backend hint %v (router default %v must not substitute)",
			delays[0], backendHint, routerDefault)
	}
}

func TestRouterProxiesSessionWithPreamble(t *testing.T) {
	addr := echoBackend(t)
	r, raddr := startRouter(t, RouterConfig{
		Backends:    []Backend{{Name: "gw0", Addr: addr}},
		PeekTimeout: time.Second,
	})

	conn, err := net.Dial("tcp", raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Client side by hand: preamble, then read hello, then echo round-trip.
	pre := []byte(`{"proto":"engarde-route/1","image_digest":"abcd"}`)
	if err := secchan.WriteBlock(conn, pre); err != nil {
		t.Fatal(err)
	}
	hello, err := secchan.ReadBlock(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(hello) != `{"quote":{},"public_key_der":"aGk="}` {
		t.Fatalf("hello = %q", hello)
	}
	// The preamble must have been stripped: the first thing the backend
	// echoes back is our payload, not the RouteHello.
	if err := secchan.WriteBlock(conn, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	echoed, err := secchan.ReadBlock(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(echoed) != "payload" {
		t.Fatalf("echo = %q, want %q (preamble must not reach the backend)", echoed, "payload")
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		st := r.Stats()
		if st.Backends["gw0"].Sessions == 1 && st.Announced == 1 && st.Affine == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want 1 session, announced and affine", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterAnonymousSessionFallsBack(t *testing.T) {
	addr := echoBackend(t)
	r, raddr := startRouter(t, RouterConfig{
		Backends:    []Backend{{Name: "gw0", Addr: addr}},
		PeekTimeout: 50 * time.Millisecond,
	})

	// No preamble at all: the peek times out and the session still routes
	// (least-loaded), with the stream passed through untouched.
	conn, err := net.Dial("tcp", raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, err := secchan.ReadBlock(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(hello) == 0 {
		t.Fatal("empty hello")
	}
	if err := secchan.WriteBlock(conn, []byte("anon")); err != nil {
		t.Fatal(err)
	}
	if echoed, err := secchan.ReadBlock(conn); err != nil || string(echoed) != "anon" {
		t.Fatalf("echo = %q, %v", echoed, err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		st := r.Stats()
		if st.Backends["gw0"].Sessions == 1 {
			if st.Announced != 0 {
				t.Fatalf("stats = %+v: anonymous session must not count as announced", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want 1 proxied session", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterFailsOverFromDeadOwner(t *testing.T) {
	live := echoBackend(t)
	// A dead address: listener closed immediately.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	// Find a digest whose ring owner is the dead backend, so the session
	// must rebalance to the live one.
	ring := ringWith(64, "dead", "live")
	digest := ""
	for _, d := range sampleDigests(100) {
		if owner, _ := ring.Owner(d); owner == "dead" {
			digest = d
			break
		}
	}
	if digest == "" {
		t.Fatal("no digest owned by dead backend in sample")
	}

	r, raddr := startRouter(t, RouterConfig{
		Backends: []Backend{
			{Name: "dead", Addr: deadAddr},
			{Name: "live", Addr: live},
		},
		PeekTimeout: time.Second,
		DialTimeout: 500 * time.Millisecond,
	})

	conn, err := net.Dial("tcp", raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := secchan.WriteBlock(conn, []byte(`{"proto":"engarde-route/1","image_digest":"`+digest+`"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := secchan.ReadBlock(conn); err != nil {
		t.Fatalf("no hello after failover: %v", err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		st := r.Stats()
		if st.Backends["live"].Sessions == 1 {
			if st.Rebalances != 1 {
				t.Fatalf("stats = %+v, want 1 rebalance", st)
			}
			if st.Backends["dead"].Errors == 0 {
				t.Fatalf("stats = %+v, want dial errors on dead backend", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want the session on live", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterQuotaSheds(t *testing.T) {
	addr := echoBackend(t)
	_, raddr := startRouter(t, RouterConfig{
		Backends:    []Backend{{Name: "gw0", Addr: addr}},
		PeekTimeout: time.Second,
		Quota:       QuotaConfig{Rate: 0.001, Burst: 1}, // 1 session, then a long wait
	})

	provision := func() (engarde.Verdict, error) {
		conn, err := net.Dial("tcp", raddr)
		if err != nil {
			return engarde.Verdict{}, err
		}
		defer conn.Close()
		if err := secchan.WriteBlock(conn, []byte(`{"proto":"engarde-route/1","image_digest":"d1","tenant":"acme"}`)); err != nil {
			return engarde.Verdict{}, err
		}
		frame, err := secchan.ReadBlock(conn)
		if err != nil {
			return engarde.Verdict{}, err
		}
		if v, busy := engarde.PeekBusy(frame); busy {
			return v, nil
		}
		return engarde.Verdict{Compliant: true}, nil
	}

	if v, err := provision(); err != nil || !v.Compliant {
		t.Fatalf("first session: %+v, %v", v, err)
	}
	v, err := provision()
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != engarde.CodeBusy {
		t.Fatalf("second session verdict = %+v, want quota busy", v)
	}
	if v.RetryAfterMillis <= 0 {
		t.Fatalf("quota shed carries no wait hint: %+v", v)
	}
}

func TestRouterDeadlineShedsSaturated(t *testing.T) {
	const hint = 30 * time.Second
	addr := busyBackend(t, hint)
	r, raddr := startRouter(t, RouterConfig{
		Backends:    []Backend{{Name: "gw0", Addr: addr}},
		PeekTimeout: time.Second,
	})

	dial := func(deadlineMillis int64) engarde.Verdict {
		t.Helper()
		conn, err := net.Dial("tcp", raddr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		rh := `{"proto":"engarde-route/1","image_digest":"d2","deadline_ms":` +
			strconv.FormatInt(deadlineMillis, 10) + `}`
		if err := secchan.WriteBlock(conn, []byte(rh)); err != nil {
			t.Fatal(err)
		}
		frame, err := secchan.ReadBlock(conn)
		if err != nil {
			t.Fatal(err)
		}
		v, busy := engarde.PeekBusy(frame)
		if !busy {
			t.Fatal("expected a busy verdict")
		}
		return v
	}

	// First session: router learns the backend is saturated for 30s.
	if v := dial(60_000); time.Duration(v.RetryAfterMillis)*time.Millisecond != hint {
		t.Fatalf("first shed hint = %dms, want %v", v.RetryAfterMillis, hint)
	}
	// Second session with a 1s deadline: the router sheds without dialing
	// — the deadline cannot outlast the saturation horizon.
	before := r.Stats().Sheds[ShedDeadline]
	if v := dial(1000); v.RetryAfterMillis <= 0 {
		t.Fatalf("deadline shed carries no hint: %+v", v)
	}
	if after := r.Stats().Sheds[ShedDeadline]; after != before+1 {
		t.Fatalf("deadline sheds %d → %d, want +1", before, after)
	}
}

func TestRouterReadyz(t *testing.T) {
	addr := echoBackend(t)
	r, err := NewRouter(RouterConfig{
		Backends:       []Backend{{Name: "gw0", Addr: addr}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(h http.Handler) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		return rec.Code
	}
	if c := get(r.ReadyzHandler()); c != http.StatusServiceUnavailable {
		t.Errorf("readyz before Serve = %d, want 503", c)
	}
	if c := get(r.HealthzHandler()); c != http.StatusOK {
		t.Errorf("healthz = %d, want 200", c)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = r.Serve(context.Background(), l) }()
	deadline := time.Now().Add(2 * time.Second)
	for get(r.ReadyzHandler()) != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("readyz never became 200 while serving")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	<-done
	if c := get(r.ReadyzHandler()); c != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain = %d, want 503", c)
	}
}

func TestRouterHealthProberMarksDown(t *testing.T) {
	// An admin endpoint that reports not-ready.
	notReady := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer notReady.Close()
	var probes atomic.Int64
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		probes.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer ready.Close()

	live := echoBackend(t)
	r, _ := startRouter(t, RouterConfig{
		Backends: []Backend{
			{Name: "sick", Addr: live, AdminURL: notReady.URL},
			{Name: "fine", Addr: live, AdminURL: ready.URL},
		},
		HealthInterval:   10 * time.Millisecond,
		MarkdownCooldown: time.Hour, // only probes can bring it back
	})

	deadline := time.Now().Add(2 * time.Second)
	for r.health.Healthy("sick") || probes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked sick down (healthy=%v probes=%d)",
				r.health.Healthy("sick"), probes.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !r.health.Healthy("fine") {
		t.Error("fine backend must stay healthy")
	}
}
