package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// sampleDigests fabricates n image-digest-shaped keys.
func sampleDigests(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("image-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func ringWith(vnodes int, names ...string) *Ring {
	r := NewRing(vnodes)
	for _, n := range names {
		r.Add(n)
	}
	return r
}

// TestRingRebalanceBound: removing 1 of N backends must remap at most
// 1/N + ε of a 10k-digest sample, and re-adding it must restore the
// original assignment exactly — the minimal-disruption property that
// makes rolling restarts cheap for the fleet's caches.
func TestRingRebalanceBound(t *testing.T) {
	// With 64 vnodes a backend's share deviates from 1/N by up to
	// ~1/√vnodes ≈ 12% of the share; ε covers that deterministic skew.
	const eps = 0.07
	digests := sampleDigests(10_000)
	for _, n := range []int{2, 3, 4, 8} {
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("gw-%d", i)
		}
		r := ringWith(64, names...)

		before := make(map[string]string, len(digests))
		for _, d := range digests {
			owner, ok := r.Owner(d)
			if !ok {
				t.Fatal("empty ring")
			}
			before[d] = owner
		}

		victim := names[n/2]
		r.Remove(victim)
		remapped, orphaned := 0, 0
		for _, d := range digests {
			owner, _ := r.Owner(d)
			if owner == before[d] {
				continue
			}
			if before[d] == victim {
				orphaned++ // had to move; not disruption
			} else {
				remapped++ // moved although its owner is still present
			}
		}
		if remapped != 0 {
			t.Errorf("N=%d: %d digests not owned by %s changed owner on its removal", n, remapped, victim)
		}
		bound := int((1.0/float64(n) + eps) * float64(len(digests)))
		if orphaned > bound {
			t.Errorf("N=%d: removal remapped %d of %d digests, bound %d (1/N+ε)", n, orphaned, len(digests), bound)
		}
		if orphaned == 0 {
			t.Errorf("N=%d: removal remapped nothing; victim owned no digests?", n)
		}

		r.Add(victim)
		for _, d := range digests {
			owner, _ := r.Owner(d)
			if owner != before[d] {
				t.Fatalf("N=%d: digest %s owned by %s after re-add, was %s", n, d[:8], owner, before[d])
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes each backend should own a roughly fair share: no
	// backend under half or over double the ideal 1/N on a 10k sample.
	r := ringWith(64, "a", "b", "c", "d")
	counts := map[string]int{}
	digests := sampleDigests(10_000)
	for _, d := range digests {
		owner, _ := r.Owner(d)
		counts[owner]++
	}
	ideal := len(digests) / 4
	for name, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Errorf("backend %s owns %d of %d, ideal %d", name, c, len(digests), ideal)
		}
	}
}

func TestRingSequence(t *testing.T) {
	r := ringWith(16, "a", "b", "c")
	for _, d := range sampleDigests(100) {
		seq := r.Sequence(d)
		if len(seq) != 3 {
			t.Fatalf("Sequence(%s) = %v, want all 3 members", d[:8], seq)
		}
		owner, _ := r.Owner(d)
		if seq[0] != owner {
			t.Fatalf("Sequence(%s)[0] = %s, owner = %s", d[:8], seq[0], owner)
		}
		seen := map[string]bool{}
		for _, s := range seq {
			if seen[s] {
				t.Fatalf("Sequence(%s) repeats %s", d[:8], s)
			}
			seen[s] = true
		}
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring must not own anything")
	}
	if seq := r.Sequence("x"); seq != nil {
		t.Errorf("empty ring Sequence = %v", seq)
	}
	r.Add("a")
	r.Add("a")
	if got := r.Members(); len(got) != 1 {
		t.Errorf("duplicate Add: members = %v", got)
	}
	if owner, ok := r.Owner("x"); !ok || owner != "a" {
		t.Errorf("single-member ring: owner = %s, %v", owner, ok)
	}
	r.Remove("missing") // no-op
	r.Remove("a")
	if r.Size() != 0 {
		t.Errorf("Size after removing all = %d", r.Size())
	}
}

// TestRingFailoverOrderMultipleDown pins the property the router's
// session failover leans on when more than one backend dies at once: with
// a digest's owner AND first successor both gone, the digest falls to the
// second successor, the surviving preference order is exactly the old
// order with the dead entries skipped, and re-adding the dead pair
// restores the original order bit for bit.
func TestRingFailoverOrderMultipleDown(t *testing.T) {
	eq := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	r := ringWith(64, "a", "b", "c", "d")
	digests := sampleDigests(100)
	before := make(map[string][]string, len(digests))
	for _, d := range digests {
		before[d] = r.Sequence(d)
	}

	for _, d := range digests {
		seq := before[d]
		down := map[string]bool{seq[0]: true, seq[1]: true}
		r.Remove(seq[0])
		r.Remove(seq[1])

		if owner, _ := r.Owner(d); owner != seq[2] {
			t.Fatalf("digest %s: owner with %v down = %s, want second successor %s",
				d[:8], seq[:2], owner, seq[2])
		}
		if got := r.Sequence(d); !eq(got, seq[2:]) {
			t.Fatalf("digest %s: sequence with %v down = %v, want %v", d[:8], seq[:2], got, seq[2:])
		}
		// Every other digest routes to its first surviving preference — a
		// double failure never scrambles assignments among survivors.
		for _, other := range digests {
			want := ""
			for _, name := range before[other] {
				if !down[name] {
					want = name
					break
				}
			}
			if owner, _ := r.Owner(other); owner != want {
				t.Fatalf("digest %s: owner with %v down = %s, want first surviving preference %s",
					other[:8], seq[:2], owner, want)
			}
		}

		r.Add(seq[0])
		r.Add(seq[1])
		if got := r.Sequence(d); !eq(got, seq) {
			t.Fatalf("digest %s: sequence after re-add = %v, want original %v", d[:8], got, seq)
		}
	}

	// After all the churn, every assignment is exactly what it started as.
	for _, d := range digests {
		if got := r.Sequence(d); !eq(got, before[d]) {
			t.Fatalf("digest %s: final sequence %v != original %v", d[:8], got, before[d])
		}
	}
}
