package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"engarde"
	"engarde/internal/obs"
	"engarde/internal/secchan"
)

// Router defaults for RouterConfig fields left zero.
const (
	DefaultPeekTimeout    = 200 * time.Millisecond
	DefaultDialTimeout    = 2 * time.Second
	DefaultHelloTimeout   = 5 * time.Second
	DefaultHealthInterval = time.Second
)

// Backend is one gatewayd the router can proxy sessions to.
type Backend struct {
	// Name is the stable ring identity — it, not the address, determines
	// digest ownership, so an address change does not reshuffle caches.
	Name string
	// Addr is the host:port of the gatewayd session listener.
	Addr string
	// AdminURL, when non-empty, is the base URL of the gatewayd admin mux;
	// the router's health prober GETs AdminURL+"/readyz".
	AdminURL string
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Backends is the initial fleet membership.
	Backends []Backend
	// Vnodes per backend on the ring; 0 means DefaultVnodes.
	Vnodes int
	// PeekTimeout bounds how long the router waits for a client's routing
	// preamble before falling back to least-loaded routing.
	PeekTimeout time.Duration
	// DialTimeout bounds one backend dial.
	DialTimeout time.Duration
	// RetryAfterHint is the Retry-After the router sheds with when it has
	// no backend hint to forward (quota denials use the quota's own wait).
	// 0 means engarde's gateway default.
	RetryAfterHint time.Duration
	// HealthInterval is the background /readyz probe period; it only
	// matters for backends with an AdminURL. 0 means
	// DefaultHealthInterval; negative disables the prober (dial results
	// still mark backends down).
	HealthInterval time.Duration
	// ProbeTimeout bounds one /readyz probe; a wedged backend costs one
	// probe timeout, never the prober loop. 0 means DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// MarkdownCooldown is how long a failed backend stays skipped; 0 means
	// DefaultMarkdownCooldown.
	MarkdownCooldown time.Duration
	// Quota configures per-tenant admission; zero disables quotas.
	Quota QuotaConfig
	// TraceSink, when set, receives one "route" trace per handled
	// connection: peek, per-candidate dial/hello/splice spans tagged with
	// backend and attempt, and shed outcomes. A client that announced a
	// trace context in its preamble gets its ID adopted, so the router's
	// spans join the client's cross-process trace.
	TraceSink *obs.Sink
	// Logf, when set, receives routing-path diagnostics.
	Logf func(format string, args ...any)
}

// Router is the L4 fleet front door: it accepts client connections, peeks
// the optional RouteHello preamble for the session's image digest, and
// splices the raw secchan byte stream to the digest's ring owner. The
// router never joins the enclave protocol — it cannot: the channel's
// session key is wrapped to the backend enclave — it only reads the one
// plaintext preamble frame and the backend's first hello frame (to spot
// Busy sheds and fail over).
type Router struct {
	cfg      RouterConfig
	ring     *Ring
	health   *Health
	quotas   *Quotas
	backends map[string]Backend

	reg     *obs.Registry
	metrics routerMetrics

	ready    atomic.Bool
	draining atomic.Bool
	rrSeq    atomic.Uint64 // least-loaded tie-break rotation

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	splices   map[string]map[*spliceHandle]struct{} // in-flight splices by backend
	shutdown  bool

	connWG     sync.WaitGroup
	proberOnce sync.Once
	proberStop chan struct{}
	proberDone chan struct{}
}

// routerMetrics is the router's obs instrument set (satellite: router
// metrics in internal/obs).
type routerMetrics struct {
	sessions map[string]*obs.Counter // per-backend sessions proxied
	active   map[string]*obs.Gauge   // per-backend sessions in flight
	errors   map[string]*obs.Counter // per-backend dial/proxy errors

	sheds          map[string]*obs.Counter // by reason
	rebalances     *obs.Counter
	announced      *obs.Counter
	affine         *obs.Counter
	failovers      *obs.Counter
	splicesEvicted *obs.Counter

	bytesC2B *obs.Histogram
	bytesB2C *obs.Histogram
}

// Shed reasons (the label values of engarde_router_sheds_total).
const (
	ShedQuota       = "quota"
	ShedDeadline    = "deadline"
	ShedBackendBusy = "backend_busy"
	ShedBackendDown = "backend_down"
	ShedDraining    = "draining"
)

var shedReasons = []string{ShedQuota, ShedDeadline, ShedBackendBusy, ShedBackendDown, ShedDraining}

// NewRouter builds a router over the configured backends.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: router needs at least one backend")
	}
	if cfg.PeekTimeout <= 0 {
		cfg.PeekTimeout = DefaultPeekTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	r := &Router{
		cfg:       cfg,
		ring:      NewRing(cfg.Vnodes),
		health:    NewHealth(cfg.MarkdownCooldown),
		quotas:    NewQuotas(cfg.Quota),
		backends:  make(map[string]Backend, len(cfg.Backends)),
		reg:       obs.NewRegistry(),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		splices:   make(map[string]map[*spliceHandle]struct{}),
	}
	r.health.SetProbeTimeout(cfg.ProbeTimeout)
	for _, b := range cfg.Backends {
		if b.Name == "" || b.Addr == "" {
			return nil, fmt.Errorf("cluster: backend needs name and addr: %+v", b)
		}
		if _, dup := r.backends[b.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", b.Name)
		}
		r.backends[b.Name] = b
		r.ring.Add(b.Name)
	}
	r.initMetrics()
	if cfg.HealthInterval > 0 {
		r.proberStop = make(chan struct{})
		r.proberDone = make(chan struct{})
		go r.probeLoop()
	}
	return r, nil
}

func (r *Router) initMetrics() {
	m := &r.metrics
	m.sessions = make(map[string]*obs.Counter, len(r.backends))
	m.active = make(map[string]*obs.Gauge, len(r.backends))
	m.errors = make(map[string]*obs.Counter, len(r.backends))
	names := r.ring.Members()
	for i, name := range names {
		help, activeHelp, errHelp := "", "", ""
		if i == 0 {
			help = "Sessions proxied to each backend."
			activeHelp = "Sessions currently spliced to each backend."
			errHelp = "Dial and proxy failures per backend."
		}
		m.sessions[name] = r.reg.Counter("engarde_router_sessions_total", help,
			obs.Label{Key: "backend", Value: name})
		m.active[name] = r.reg.Gauge("engarde_router_sessions_active", activeHelp,
			obs.Label{Key: "backend", Value: name})
		m.errors[name] = r.reg.Counter("engarde_router_backend_errors_total", errHelp,
			obs.Label{Key: "backend", Value: name})
	}
	m.sheds = make(map[string]*obs.Counter, len(shedReasons))
	for i, reason := range shedReasons {
		help := ""
		if i == 0 {
			help = "Sessions turned away at the router, by reason."
		}
		m.sheds[reason] = r.reg.Counter("engarde_router_sheds_total", help,
			obs.Label{Key: "reason", Value: reason})
	}
	m.rebalances = r.reg.Counter("engarde_router_rebalances_total",
		"Digest-announced sessions that landed off their ring owner (owner down or busy).")
	m.announced = r.reg.Counter("engarde_router_sessions_announced_total",
		"Sessions that carried a routing preamble with an image digest.")
	m.affine = r.reg.Counter("engarde_router_sessions_affine_total",
		"Digest-announced sessions that landed on their ring owner.")
	m.failovers = r.reg.Counter("engarde_router_failover_total",
		"Sessions served by a successor after their first candidate failed.")
	m.splicesEvicted = r.reg.Counter("engarde_router_splices_evicted_total",
		"In-flight splices reset because their backend became unreachable.")
	m.bytesC2B = r.reg.Histogram("engarde_router_proxy_bytes",
		"Bytes spliced per session, by direction.",
		obs.HistogramOpts{Buckets: 32},
		obs.Label{Key: "dir", Value: "client_to_backend"})
	m.bytesB2C = r.reg.Histogram("engarde_router_proxy_bytes", "",
		obs.HistogramOpts{Buckets: 32},
		obs.Label{Key: "dir", Value: "backend_to_client"})
	r.reg.GaugeFunc("engarde_router_ring_size",
		"Backends on the consistent-hash ring.",
		func() float64 { return float64(r.ring.Size()) })
	r.reg.GaugeFunc("engarde_router_backends_healthy",
		"Backends currently considered routable.",
		func() float64 { return float64(r.health.CountHealthy(r.ring.Members())) })
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// retryAfterDefault is the hint used when the router sheds with nothing
// better to forward.
func (r *Router) retryAfterDefault() time.Duration {
	if r.cfg.RetryAfterHint > 0 {
		return r.cfg.RetryAfterHint
	}
	return time.Second
}

// Serve accepts and proxies connections on ln until Shutdown (or ctx
// cancellation) closes it. Like gateway.Serve, it may be called on
// several listeners concurrently.
func (r *Router) Serve(ctx context.Context, ln net.Listener) error {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		ln.Close()
		return errors.New("cluster: router already shut down")
	}
	r.listeners[ln] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.listeners, ln)
		r.mu.Unlock()
	}()
	r.ready.Store(true)

	if ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				ln.Close()
			case <-watchDone:
			}
		}()
	}

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if r.isShutdown() {
				return nil
			}
			return err
		}
		if r.draining.Load() {
			_ = engarde.SendBusy(conn, r.retryAfterDefault())
			conn.Close()
			r.metrics.sheds[ShedDraining].Inc()
			continue
		}
		r.connWG.Add(1)
		r.trackConn(conn, true)
		go func() {
			defer r.connWG.Done()
			defer r.trackConn(conn, false)
			defer conn.Close()
			r.handleConn(conn)
		}()
	}
}

func (r *Router) trackConn(c net.Conn, add bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if add {
		r.conns[c] = struct{}{}
	} else {
		delete(r.conns, c)
	}
}

func (r *Router) isShutdown() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shutdown
}

// Shutdown drains the router: readiness flips to 503, listeners close,
// new connections are shed with a busy verdict, and in-flight sessions
// get until ctx expires to finish before being cut.
func (r *Router) Shutdown(ctx context.Context) error {
	r.ready.Store(false)
	r.draining.Store(true)
	r.mu.Lock()
	r.shutdown = true
	for ln := range r.listeners {
		ln.Close()
	}
	r.mu.Unlock()
	if r.proberStop != nil {
		r.proberOnce.Do(func() { close(r.proberStop) })
		<-r.proberDone
	}

	done := make(chan struct{})
	go func() {
		r.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		r.mu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// probeLoop polls each backend's /readyz on the health interval. Each
// probe carries its own deadline (Health.ProbeDetail), so one wedged
// backend delays the sweep by at most the probe timeout. An unreachable
// backend is a corpse: besides the markdown that routes new sessions
// around it within one cooldown, its in-flight splices are evicted so
// their clients get a typed reset instead of hanging until their own
// deadlines fire. A merely not-ready backend (draining) keeps its
// in-flight sessions — they will still complete.
func (r *Router) probeLoop() {
	defer close(r.proberDone)
	client := &http.Client{Timeout: r.cfg.DialTimeout}
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.proberStop:
			return
		case <-tick.C:
		}
		for name, b := range r.backends {
			if b.AdminURL == "" {
				continue
			}
			switch r.health.ProbeDetail(client, name, b.AdminURL+"/readyz") {
			case ProbeNotReady:
				r.logf("router: backend %s not ready", name)
			case ProbeUnreachable:
				if n := r.evictSplices(name); n > 0 {
					r.logf("router: backend %s unreachable, evicted %d in-flight splices", name, n)
				} else {
					r.logf("router: backend %s unreachable", name)
				}
			}
		}
	}
}

// spliceHandle tracks one in-flight splice so the prober can reset it
// when its backend dies under it.
type spliceHandle struct {
	backend net.Conn
	evicted atomic.Bool
}

func (r *Router) registerSplice(name string, h *spliceHandle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	set, ok := r.splices[name]
	if !ok {
		set = make(map[*spliceHandle]struct{})
		r.splices[name] = set
	}
	set[h] = struct{}{}
}

func (r *Router) unregisterSplice(name string, h *spliceHandle) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.splices[name], h)
}

// evictSplices hard-closes the backend side of every in-flight splice to
// name. Only the backend conn is touched: the splice goroutine unblocks,
// sees the eviction, and itself sends the typed CodeBackendLost reset to
// its client — the router never writes to a client conn concurrently
// with its splice. Returns the number of splices evicted.
func (r *Router) evictSplices(name string) int {
	r.mu.Lock()
	handles := make([]*spliceHandle, 0, len(r.splices[name]))
	for h := range r.splices[name] {
		handles = append(handles, h)
	}
	r.mu.Unlock()
	n := 0
	for _, h := range handles {
		if h.evicted.CompareAndSwap(false, true) {
			h.backend.Close()
			r.metrics.splicesEvicted.Inc()
			n++
		}
	}
	return n
}

// peekPreamble reads the client's optional RouteHello within the peek
// timeout. Whatever bytes were consumed but turned out not to be a
// preamble are returned as replay, to be written to the backend verbatim.
func (r *Router) peekPreamble(conn net.Conn) (rh engarde.RouteHello, announced bool, replay []byte) {
	deadline := time.Now().Add(r.cfg.PeekTimeout)
	_ = conn.SetReadDeadline(deadline)
	defer conn.SetReadDeadline(time.Time{})

	var hdr [4]byte
	n, err := io.ReadFull(conn, hdr[:])
	if err != nil {
		return engarde.RouteHello{}, false, append([]byte(nil), hdr[:n]...)
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length == 0 || length > engarde.MaxRouteHelloBytes {
		// Too big to be a preamble: session traffic. Hand the header back.
		return engarde.RouteHello{}, false, append([]byte(nil), hdr[:]...)
	}
	body := make([]byte, length)
	bn, err := io.ReadFull(conn, body)
	consumed := append(append([]byte(nil), hdr[:]...), body[:bn]...)
	if err != nil {
		return engarde.RouteHello{}, false, consumed
	}
	rh, ok := engarde.ParseRouteHello(body)
	if !ok {
		return engarde.RouteHello{}, false, consumed
	}
	return rh, true, nil
}

// candidates returns the backends to try in order for this session, plus
// the affine owner ("" when routing by load).
func (r *Router) candidates(rh engarde.RouteHello, announced bool) (names []string, owner string) {
	if announced && rh.ImageDigest != "" {
		seq := r.ring.Sequence(rh.ImageDigest)
		if len(seq) > 0 {
			return seq, seq[0]
		}
	}
	// Least-loaded: ascending in-flight sessions, ties rotated so
	// anonymous traffic spreads instead of piling on one backend.
	names = r.ring.Members()
	if len(names) > 1 {
		rot := int(r.rrSeq.Add(1)) % len(names)
		rotated := make([]string, 0, len(names))
		rotated = append(rotated, names[rot:]...)
		rotated = append(rotated, names[:rot]...)
		names = rotated
		sort.SliceStable(names, func(i, j int) bool {
			return r.metrics.active[names[i]].Value() < r.metrics.active[names[j]].Value()
		})
	}
	return names, ""
}

// handleConn routes one client connection end to end.
func (r *Router) handleConn(conn net.Conn) {
	var tr *obs.Trace
	if r.cfg.TraceSink != nil {
		tr = obs.NewTrace("route", nil)
		defer r.cfg.TraceSink.Record(tr)
	}

	peekStart := time.Now()
	rh, announced, replay := r.peekPreamble(conn)
	tr.RecordSpan("peek-preamble", peekStart, time.Since(peekStart))
	if announced {
		// Join the client's cross-process trace. The preamble is advisory
		// plaintext, so the ID is adopted only when well-formed; the
		// gateway independently adopts the authenticated copy from the
		// wrapped session key, which the router cannot see or alter.
		if tc := rh.TraceContext(); tc.Valid() && tc.Sampled {
			tr.AdoptID(tc.TraceID)
		}
		if rh.ImageDigest != "" {
			r.metrics.announced.Inc()
		}
	}

	if ok, wait := r.quotas.Allow(rh.Tenant); !ok {
		r.metrics.sheds[ShedQuota].Inc()
		tr.RecordSpanArgs("shed", time.Now(), 0, map[string]string{"reason": ShedQuota})
		_ = engarde.SendBusy(conn, wait)
		return
	}

	names, owner := r.candidates(rh, announced)

	// Deadline-aware shedding: a backend still inside its Busy horizon
	// would shed this session anyway; if the client's deadline cannot
	// outlast every candidate's horizon, turn it away now with the
	// soonest-capacity hint instead of burning a dial to learn the same.
	if rh.DeadlineMillis > 0 {
		deadline := time.Duration(rh.DeadlineMillis) * time.Millisecond
		viable := names[:0]
		minHint := time.Duration(0)
		for _, name := range names {
			hint := r.health.SaturationHint(name)
			if hint > 0 && hint > deadline {
				if minHint == 0 || hint < minHint {
					minHint = hint
				}
				continue
			}
			viable = append(viable, name)
		}
		if len(viable) == 0 {
			r.metrics.sheds[ShedDeadline].Inc()
			tr.RecordSpanArgs("shed", time.Now(), 0, map[string]string{"reason": ShedDeadline})
			_ = engarde.SendBusy(conn, minHint)
			return
		}
		names = viable
	}

	// Prefer healthy candidates but fail open: a tracker that thinks the
	// whole fleet is down must not make it so.
	healthy := make([]string, 0, len(names))
	for _, name := range names {
		if r.health.Healthy(name) {
			healthy = append(healthy, name)
		}
	}
	if len(healthy) > 0 {
		names = healthy
	}

	var busyHint time.Duration // largest Retry-After seen from a busy backend
	sawBusy := false
	for idx, name := range names {
		backend := r.backends[name]
		served, busy, hint := r.trySession(conn, backend, replay, owner, announced, tr, idx+1)
		if served {
			if idx > 0 {
				// A successor took the session after earlier candidates
				// failed to (dial error, dead hello, or busy shed).
				r.metrics.failovers.Inc()
				tr.RecordSpanArgs("failover", time.Now(), 0, map[string]string{
					"backend": name, "candidate": strconv.Itoa(idx + 1)})
			}
			return
		}
		if busy {
			sawBusy = true
			if hint > busyHint {
				busyHint = hint
			}
			r.health.MarkSaturated(name, hint)
		} else {
			r.health.MarkDown(name)
		}
		if announced && name == owner {
			r.metrics.rebalances.Inc()
		}
	}

	// Every candidate failed. Shedding on behalf of a saturated backend
	// forwards the backend's own Retry-After hint — never the router
	// default (gateway.Config.RetryAfterHint propagation fix).
	if sawBusy {
		r.metrics.sheds[ShedBackendBusy].Inc()
		tr.RecordSpanArgs("shed", time.Now(), 0, map[string]string{"reason": ShedBackendBusy})
		_ = engarde.SendBusy(conn, busyHint)
		return
	}
	r.metrics.sheds[ShedBackendDown].Inc()
	tr.RecordSpanArgs("shed", time.Now(), 0, map[string]string{"reason": ShedBackendDown})
	_ = engarde.SendBusy(conn, r.retryAfterDefault())
}

// trySession dials one backend and, if it accepts, splices the session.
// served means the session ran (well or badly) on this backend; busy
// means the backend shed it with the returned Retry-After hint. tr, when
// tracing, collects dial/hello-wait/splice spans tagged with the backend
// name and this candidate's 1-based position in the failover order.
func (r *Router) trySession(conn net.Conn, backend Backend, replay []byte, owner string, announced bool, tr *obs.Trace, candidate int) (served, busy bool, hint time.Duration) {
	tags := map[string]string{"backend": backend.Name, "candidate": strconv.Itoa(candidate)}
	dsp := tr.StartSpanArgs("dial", tags)
	bc, err := net.DialTimeout("tcp", backend.Addr, r.cfg.DialTimeout)
	if err != nil {
		dsp.SetArg("outcome", "error")
		dsp.End()
		r.metrics.errors[backend.Name].Inc()
		r.logf("router: dial %s (%s): %v", backend.Name, backend.Addr, err)
		return false, false, 0
	}
	dsp.End()
	defer bc.Close()

	// Replay any client bytes the preamble peek consumed, then read the
	// backend's opening hello to learn whether the session was admitted.
	if len(replay) > 0 {
		if _, err := bc.Write(replay); err != nil {
			r.metrics.errors[backend.Name].Inc()
			return false, false, 0
		}
	}
	hsp := tr.StartSpanArgs("hello-wait", tags)
	_ = bc.SetReadDeadline(time.Now().Add(DefaultHelloTimeout))
	helloFrame, err := secchan.ReadBlock(bc)
	_ = bc.SetReadDeadline(time.Time{})
	if err != nil {
		hsp.SetArg("outcome", "error")
		hsp.End()
		r.metrics.errors[backend.Name].Inc()
		r.logf("router: hello from %s: %v", backend.Name, err)
		return false, false, 0
	}
	if v, isBusy := engarde.PeekBusy(helloFrame); isBusy {
		hsp.SetArg("outcome", "busy")
		hsp.End()
		return false, true, time.Duration(v.RetryAfterMillis) * time.Millisecond
	}
	hsp.End()

	// Admitted: this session belongs to backend now. Forward the hello and
	// splice the rest of the byte stream both ways.
	r.metrics.sessions[backend.Name].Inc()
	if announced && owner != "" && backend.Name == owner {
		r.metrics.affine.Inc()
	}
	active := r.metrics.active[backend.Name]
	active.Inc()
	defer active.Dec()

	if err := secchan.WriteBlock(conn, helloFrame); err != nil {
		return true, false, 0
	}
	handle := &spliceHandle{backend: bc}
	r.registerSplice(backend.Name, handle)
	defer r.unregisterSplice(backend.Name, handle)
	ssp := tr.StartSpanArgs("splice", tags)
	c2b, b2c, backendDied := r.splice(conn, bc, backend.Name, handle)
	if backendDied {
		ssp.SetArg("outcome", "backend-lost")
	}
	ssp.End()
	if backendDied && !handle.evicted.Load() {
		// The backend side of the splice died on its own (crash, reset) —
		// the prober didn't do it. Mark it down so new sessions route
		// around the corpse within one cooldown.
		r.metrics.errors[backend.Name].Inc()
		r.health.MarkDown(backend.Name)
	}
	r.metrics.bytesC2B.Observe(uint64(len(replay)) + c2b)
	r.metrics.bytesB2C.Observe(uint64(len(helloFrame)+4) + b2c)
	return true, false, 0
}

// splice copies both directions until either side closes, returning the
// raw byte counts of each direction (the replayed preamble bytes and the
// already-forwarded hello are added back by the caller) and whether the
// backend side died before cleanly finishing. On a backend death —
// spontaneous or evicted by the prober — the client receives a typed
// CodeBackendLost verdict in place of the one the backend never sent, so
// it can replay the session against the next owner instead of diagnosing
// a bare connection reset. The reset frame is written by this goroutine
// only, after its copy loop has ended: nothing else ever writes to the
// client conn, so the frame cannot interleave with spliced bytes.
func (r *Router) splice(client, backend net.Conn, name string, h *spliceHandle) (c2b, b2c uint64, backendDied bool) {
	var up, down int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		up, _ = io.Copy(backend, client)
		// Client finished sending (or died): push the EOF through so the
		// backend's read side unblocks.
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	var derr error
	down, derr = io.Copy(client, backend)
	backendDied = derr != nil || h.evicted.Load()
	if backendDied {
		_ = engarde.SendBackendLost(client,
			"backend "+name+" lost mid-session", r.retryAfterDefault())
	}
	if tc, ok := client.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	<-done
	return uint64(up), uint64(down), backendDied
}

// RouterStats is the JSON shape served at the router's /statsz.
type RouterStats struct {
	Backends       map[string]BackendStats `json:"backends"`
	Sheds          map[string]uint64       `json:"sheds"`
	Rebalances     uint64                  `json:"rebalances"`
	Announced      uint64                  `json:"announced"`
	Affine         uint64                  `json:"affine"`
	Failovers      uint64                  `json:"failovers"`
	SplicesEvicted uint64                  `json:"splices_evicted"`
	RingSize       int                     `json:"ring_size"`
	Healthy        int                     `json:"healthy"`
}

// BackendStats is one backend's slice of RouterStats.
type BackendStats struct {
	Sessions uint64 `json:"sessions"`
	Active   int64  `json:"active"`
	Errors   uint64 `json:"errors"`
}

// Stats snapshots the router counters.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Backends:       make(map[string]BackendStats, len(r.backends)),
		Sheds:          make(map[string]uint64, len(shedReasons)),
		Rebalances:     r.metrics.rebalances.Value(),
		Announced:      r.metrics.announced.Value(),
		Affine:         r.metrics.affine.Value(),
		Failovers:      r.metrics.failovers.Value(),
		SplicesEvicted: r.metrics.splicesEvicted.Value(),
		RingSize:       r.ring.Size(),
		Healthy:        r.health.CountHealthy(r.ring.Members()),
	}
	for name := range r.backends {
		st.Backends[name] = BackendStats{
			Sessions: r.metrics.sessions[name].Value(),
			Active:   r.metrics.active[name].Value(),
			Errors:   r.metrics.errors[name].Value(),
		}
	}
	for reason, c := range r.metrics.sheds {
		st.Sheds[reason] = c.Value()
	}
	return st
}

// Registry exposes the router's metrics registry (tests; embedding).
func (r *Router) Registry() *obs.Registry { return r.reg }

// MetricsHandler serves the Prometheus exposition (mount at /metricsz).
func (r *Router) MetricsHandler() http.Handler { return r.reg.Handler() }

// TracezHandler serves the route-trace ring (mount at /tracez): recent
// traces as JSONL, or a Chrome trace file with ?format=chrome. Without a
// configured TraceSink it answers 404.
func (r *Router) TracezHandler() http.Handler {
	if r.cfg.TraceSink == nil {
		return http.NotFoundHandler()
	}
	return r.cfg.TraceSink.Handler()
}

// StatsHandler serves RouterStats as JSON (mount at /statsz).
func (r *Router) StatsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Stats())
	})
}

// HealthzHandler reports liveness: the process is up.
func (r *Router) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
}

// ReadyzHandler reports readiness: 200 while serving, 503 before Serve
// and during drain.
func (r *Router) ReadyzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if !r.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	})
}
