package cluster

import (
	"math"
	"sync"
	"time"
)

// QuotaConfig configures per-tenant admission quotas at the router.
type QuotaConfig struct {
	// Rate is the sustained sessions/sec each tenant may open; <= 0
	// disables quotas entirely (every Allow passes).
	Rate float64
	// Burst is the bucket depth — how many sessions a tenant may open
	// back-to-back after an idle period. 0 means max(1, ceil(Rate)).
	Burst int
	// MaxTenants bounds the tracked bucket map so unauthenticated traffic
	// cannot grow it without bound; at the cap, unknown tenants share one
	// overflow bucket. 0 means DefaultMaxTenants.
	MaxTenants int
}

// DefaultMaxTenants bounds the quota table when QuotaConfig leaves it zero.
const DefaultMaxTenants = 4096

// overflowTenant is the shared bucket unknown tenants land in once the
// table is full.
const overflowTenant = "\x00overflow"

// Quotas is a table of per-tenant token buckets. A session costs one
// token; tokens refill continuously at Rate up to Burst. Denials come
// with the wait until one token exists — the Retry-After hint the router
// sheds with.
type Quotas struct {
	rate  float64
	burst float64
	max   int
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas builds the table; returns nil (meaning "no quotas") when cfg
// disables them, which Allow on a nil receiver honors.
func NewQuotas(cfg QuotaConfig) *Quotas {
	if cfg.Rate <= 0 {
		return nil
	}
	burst := float64(cfg.Burst)
	if cfg.Burst <= 0 {
		burst = math.Max(1, math.Ceil(cfg.Rate))
	}
	max := cfg.MaxTenants
	if max <= 0 {
		max = DefaultMaxTenants
	}
	return &Quotas{
		rate:    cfg.Rate,
		burst:   burst,
		max:     max,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// Allow charges one session to tenant's bucket. When denied, retryAfter
// is how long until the bucket holds a full token again.
func (q *Quotas) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, exists := q.buckets[tenant]
	if !exists {
		if len(q.buckets) >= q.max {
			tenant = overflowTenant
			b = q.buckets[tenant]
		}
		if b == nil {
			b = &bucket{tokens: q.burst, last: now}
			q.buckets[tenant] = b
		}
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(q.burst, b.tokens+elapsed*q.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / q.rate
	return false, time.Duration(wait * float64(time.Second))
}
