// Package cluster is EnGarde's fleet tier: the pieces a front door needs
// to spread provisioning sessions over several gatewayd backends while
// keeping the warm path warm. BENCH_5 showed function-memo reuse only pays
// when sessions for the same image digest land on the same cache, so the
// core of the package is a consistent-hash ring keyed by image digest
// (ring.go); around it sit backend health tracking with fail-open
// rebalancing (health.go), per-tenant token-bucket quotas (quota.go), and
// the L4 router that proxies the secchan byte stream to the chosen
// backend (router.go). The package is the substrate of cmd/engarde-router
// and of the in-process fleet harness in internal/bench.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per backend when RingConfig
// leaves it zero. 64 keeps the remap fraction on membership change within
// a few percent of the ideal 1/N for small fleets.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over named backends. Lookup keys are
// image digests, so every session for one image hashes to the same
// backend — the digest's "owner" — and adding or removing a backend only
// remaps ~1/N of the digest space. Safe for concurrent use; membership
// changes rebuild the point table under the writer lock.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // ascending hash
	names  []string    // sorted member names
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing builds a ring with vnodes virtual nodes per backend (0 means
// DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes}
}

// pointHash places one virtual node: the first 8 bytes of
// SHA-256(name "#" index). SHA-256 keeps placement uniform and — unlike a
// seeded runtime hash — identical across processes, so every router in a
// fleet computes the same ownership.
func pointHash(name string, idx int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", name, idx)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a lookup key (an image digest, already uniform — but
// hashed again so arbitrary keys are too).
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a backend; adding an existing name is a no-op.
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range r.names {
		if n == name {
			return
		}
	}
	r.names = append(r.names, name)
	sort.Strings(r.names)
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(name, i), owner: name})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a backend; removing an absent name is a no-op. The
// departed backend's arcs fall to their ring successors; every other
// assignment is untouched — the property ring_test.go pins down.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.names[:0]
	for _, n := range r.names {
		if n != name {
			out = append(out, n)
		}
	}
	r.names = out
	pts := r.points[:0]
	for _, p := range r.points {
		if p.owner != name {
			pts = append(pts, p)
		}
	}
	r.points = pts
}

// Members returns the sorted backend names.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.names...)
}

// Size returns the number of backends.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Owner returns the backend owning key: the first virtual node at or
// clockwise of the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(keyHash(key))].owner, true
}

// Sequence returns every backend in preference order for key: the owner
// first, then each distinct backend encountered walking clockwise. The
// router uses it as a failover order, so a down owner degrades to the
// same successor on every router instance.
func (r *Ring) Sequence(key string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	start := r.search(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		owner := r.points[(start+i)%len(r.points)].owner
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping to
// 0 past the last point. Callers hold at least the read lock.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
