package cluster

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"engarde"
	"engarde/internal/secchan"
)

// TestProbeDetailBoundsWedgedBackend is the wedged-prober regression test:
// a backend that accepts the probe connection but never answers must cost
// one probe timeout, not stall the prober loop forever (the bug: Probe
// inherited the HTTP client's unbounded default, so one wedged backend
// blinded the router to the whole fleet).
func TestProbeDetailBoundsWedgedBackend(t *testing.T) {
	release := make(chan struct{})
	wedged := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-release
	}))
	defer wedged.Close()
	defer close(release) // before Close, which waits for handlers

	h := NewHealth(0)
	h.SetProbeTimeout(50 * time.Millisecond)
	start := time.Now()
	status := h.ProbeDetail(&http.Client{}, "wedged", wedged.URL)
	elapsed := time.Since(start)
	if status != ProbeUnreachable {
		t.Errorf("ProbeDetail = %v, want ProbeUnreachable", status)
	}
	if elapsed > time.Second {
		t.Errorf("probe of a wedged backend took %v, want ~the 50ms probe timeout", elapsed)
	}
	if h.Healthy("wedged") {
		t.Error("wedged backend must be marked down")
	}

	// SetProbeTimeout(0) restores the default.
	h.SetProbeTimeout(0)
	h.mu.Lock()
	restored := h.probeTimeout
	h.mu.Unlock()
	if restored != DefaultProbeTimeout {
		t.Errorf("probeTimeout after reset = %v, want %v", restored, DefaultProbeTimeout)
	}
}

// TestRouterEvictsSpliceWhenBackendUnreachable: when the prober finds a
// backend's admin endpoint unreachable (a corpse, not a drain), in-flight
// splices to it are reset with a typed CodeBackendLost verdict the client
// recognizes — never a silent connection drop.
func TestRouterEvictsSpliceWhenBackendUnreachable(t *testing.T) {
	backend := echoBackend(t)
	admin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	r, raddr := startRouter(t, RouterConfig{
		Backends:       []Backend{{Name: "gw0", Addr: backend, AdminURL: admin.URL}},
		HealthInterval: 10 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
		PeekTimeout:    time.Second,
	})

	conn, err := net.Dial("tcp", raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := secchan.WriteBlock(conn, []byte(`{"proto":"engarde-route/1","image_digest":"evict"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := secchan.ReadBlock(conn); err != nil { // hello
		t.Fatal(err)
	}
	// Prove the splice is live.
	if err := secchan.WriteBlock(conn, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if b, err := secchan.ReadBlock(conn); err != nil || string(b) != "ping" {
		t.Fatalf("echo = %q, %v", b, err)
	}

	// The backend's admin endpoint dies: probes now get connection refused
	// (ProbeUnreachable), and the prober must evict the in-flight splice.
	admin.Close()

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		frame, err := secchan.ReadBlock(conn)
		if err != nil {
			t.Fatalf("splice died without a typed reset: %v", err)
		}
		var v engarde.Verdict
		if json.Unmarshal(frame, &v) == nil && v.Code == engarde.CodeBackendLost {
			if v.Compliant {
				t.Error("backend-lost reset must not be a compliant verdict")
			}
			if v.RetryAfterMillis <= 0 {
				t.Errorf("backend-lost reset carries no retry hint: %+v", v)
			}
			break
		}
	}

	deadline := time.Now().Add(2 * time.Second)
	for r.Stats().SplicesEvicted != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want 1 evicted splice", r.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.health.Healthy("gw0") {
		t.Error("unreachable backend must be marked down")
	}
}

// TestRouterNotReadyProbeLeavesSplices: a backend answering 503 is alive
// and draining — new sessions route around it, but its in-flight splices
// finish undisturbed.
func TestRouterNotReadyProbeLeavesSplices(t *testing.T) {
	backend := echoBackend(t)
	var ready atomic.Bool
	ready.Store(true)
	admin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer admin.Close()
	r, raddr := startRouter(t, RouterConfig{
		Backends:       []Backend{{Name: "gw0", Addr: backend, AdminURL: admin.URL}},
		HealthInterval: 10 * time.Millisecond,
		PeekTimeout:    time.Second,
	})

	conn, err := net.Dial("tcp", raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := secchan.WriteBlock(conn, []byte(`{"proto":"engarde-route/1","image_digest":"drain"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := secchan.ReadBlock(conn); err != nil { // hello
		t.Fatal(err)
	}

	// The backend starts draining; wait until the prober notices.
	ready.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for r.health.Healthy("gw0") {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the draining backend down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight session still works: draining is not death.
	if err := secchan.WriteBlock(conn, []byte("still-here")); err != nil {
		t.Fatal(err)
	}
	if b, err := secchan.ReadBlock(conn); err != nil || string(b) != "still-here" {
		t.Fatalf("echo after drain mark = %q, %v — draining must not reset in-flight splices", b, err)
	}
	if got := r.Stats().SplicesEvicted; got != 0 {
		t.Errorf("SplicesEvicted = %d, want 0", got)
	}
}
