package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// DefaultMarkdownCooldown is how long a backend stays marked down after a
// dial or proxy error before the router tries it again, when
// RouterConfig leaves the cooldown zero.
const DefaultMarkdownCooldown = 2 * time.Second

// DefaultProbeTimeout bounds one /readyz probe when no explicit timeout is
// configured. Every probe gets its own deadline regardless of the HTTP
// client's settings: a single wedged backend — accepting connections but
// never answering — must not stall the prober loop and blind the router
// to the rest of the fleet.
const DefaultProbeTimeout = time.Second

// Health tracks per-backend availability for routing decisions. Two
// orthogonal conditions are tracked: *down* (dial/probe failures — skip
// the backend until a cooldown expires or a probe succeeds) and
// *saturated* (the backend answered with a Busy verdict — it is alive but
// shedding, and its Retry-After hint says for how long). Everything fails
// open: with every backend down, routing proceeds as if all were up,
// because a stale "down" must never turn a working fleet away.
type Health struct {
	cooldown     time.Duration
	probeTimeout time.Duration
	now          func() time.Time

	mu sync.Mutex
	st map[string]*backendState
}

type backendState struct {
	downUntil      time.Time
	saturatedUntil time.Time
	lastHint       time.Duration
}

// NewHealth builds an empty tracker; cooldown 0 means
// DefaultMarkdownCooldown.
func NewHealth(cooldown time.Duration) *Health {
	if cooldown <= 0 {
		cooldown = DefaultMarkdownCooldown
	}
	return &Health{
		cooldown:     cooldown,
		probeTimeout: DefaultProbeTimeout,
		now:          time.Now,
		st:           make(map[string]*backendState),
	}
}

// SetProbeTimeout overrides the per-probe deadline; d <= 0 restores
// DefaultProbeTimeout.
func (h *Health) SetProbeTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultProbeTimeout
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probeTimeout = d
}

func (h *Health) state(name string) *backendState {
	s, ok := h.st[name]
	if !ok {
		s = &backendState{}
		h.st[name] = s
	}
	return s
}

// MarkDown records a failed dial or probe: the backend is skipped until
// the cooldown expires.
func (h *Health) MarkDown(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.state(name).downUntil = h.now().Add(h.cooldown)
}

// MarkUp clears a down mark (a probe succeeded).
func (h *Health) MarkUp(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.state(name).downUntil = time.Time{}
}

// Healthy reports whether the backend is currently routable.
func (h *Health) Healthy(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now().After(h.st[name].getDownUntil())
}

func (s *backendState) getDownUntil() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.downUntil
}

// MarkSaturated records a Busy verdict with its Retry-After hint: the
// backend is expected to shed until the hint elapses.
func (h *Health) MarkSaturated(name string, hint time.Duration) {
	if hint <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state(name)
	s.saturatedUntil = h.now().Add(hint)
	s.lastHint = hint
}

// SaturationHint returns the backend's remaining Busy horizon: how long
// until its last Retry-After hint elapses. 0 means not saturated.
func (h *Health) SaturationHint(name string) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.st[name]
	if !ok {
		return 0
	}
	if d := s.saturatedUntil.Sub(h.now()); d > 0 {
		return d
	}
	return 0
}

// CountHealthy reports how many of names are currently routable.
func (h *Health) CountHealthy(names []string) int {
	n := 0
	for _, name := range names {
		if h.Healthy(name) {
			n++
		}
	}
	return n
}

// ProbeStatus is the outcome of one /readyz probe. The router needs more
// than a boolean: an *unreachable* backend is a corpse whose in-flight
// splices should be reset, while a *not-ready* one is alive and draining
// — its in-flight sessions will still complete and must be left alone.
type ProbeStatus int

// Probe outcomes.
const (
	// ProbeReady: the backend answered 200; it is routable.
	ProbeReady ProbeStatus = iota
	// ProbeNotReady: the backend answered, but with a non-200 (pre-serve
	// or draining). Route around it; do not touch in-flight sessions.
	ProbeNotReady
	// ProbeUnreachable: no answer within the probe deadline (connection
	// refused, reset, or wedged). The backend is a corpse.
	ProbeUnreachable
)

// Probe checks one backend's /readyz and updates the tracker. Used by the
// router's background prober against gatewayd's admin mux. Every request
// carries its own context deadline (SetProbeTimeout), so a wedged backend
// — connection accepted, response never sent — costs one probe timeout,
// not the whole prober loop.
func (h *Health) Probe(client *http.Client, name, readyzURL string) bool {
	return h.ProbeDetail(client, name, readyzURL) == ProbeReady
}

// ProbeDetail is Probe with the full typed outcome.
func (h *Health) ProbeDetail(client *http.Client, name, readyzURL string) ProbeStatus {
	h.mu.Lock()
	timeout := h.probeTimeout
	h.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, readyzURL, nil)
	if err != nil {
		h.MarkDown(name)
		return ProbeUnreachable
	}
	resp, err := client.Do(req)
	if err != nil {
		h.MarkDown(name)
		return ProbeUnreachable
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.MarkDown(name)
		return ProbeNotReady
	}
	h.MarkUp(name)
	return ProbeReady
}
