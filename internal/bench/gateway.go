package bench

// Gateway load generation: RunGatewayLoad stands up an in-memory gateway
// (internal/gateway over net.Pipe, no sockets) and drives a configurable
// number of concurrent clients through the full provisioning protocol —
// attestation, key exchange, encrypted transfer, verdict. It is the
// engine behind BenchmarkGatewayThroughput, which contrasts cold
// provisioning (full disassembly + policy checking per session) with
// verdict-cache hits.

import (
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"engarde"
	"engarde/internal/cycles"
	"engarde/internal/gateway"
	"engarde/internal/obs"
	"engarde/internal/toolchain"
)

// memListener is an in-memory net.Listener over net.Pipe so the load
// generator exercises the gateway without real sockets.
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func (l *memListener) Addr() net.Addr { return memAddr{} }

func (l *memListener) dial() (net.Conn, error) {
	cli, srv := net.Pipe()
	select {
	case l.conns <- srv:
		return cli, nil
	case <-l.done:
		cli.Close()
		return nil, net.ErrClosed
	}
}

// GatewayLoadConfig configures one load run.
type GatewayLoadConfig struct {
	// Policies is the policy set the gateway checks against; nil means the
	// stack-protector policy (the paper's Figure 4 experiment).
	Policies *engarde.PolicySet
	// Images are provisioned round-robin across sessions. All must be
	// compliant under Policies. Required.
	Images [][]byte
	// Sessions is the total number of provisioning sessions. Required.
	Sessions int
	// Clients is the number of concurrent client goroutines; 0 means 4.
	Clients int
	// MaxConcurrent is the gateway worker-pool size; 0 means the gateway
	// default.
	MaxConcurrent int
	// CacheEntries configures the verdict cache (gateway semantics:
	// 0 default, negative disabled).
	CacheEntries int
	// FnCacheEntries, when positive, shares a function-result cache of
	// that capacity across the run's sessions (warm-path provisioning).
	// 0 or negative leaves it disabled, so load runs isolate whichever
	// effect they are measuring.
	FnCacheEntries int
	// HeapPages/ClientPages size each session's enclave; 0 means 1500/512.
	HeapPages   int
	ClientPages int
	// DisasmWorkers/PolicyWorkers shard each session's disassembly and
	// policy passes (gateway semantics: 0 = GOMAXPROCS, 1 = sequential).
	DisasmWorkers int
	PolicyWorkers int
	// EnclavePool, when positive, runs the gateway with that many warm
	// snapshot-cloned enclaves (pool-checkout replaces create-enclave on
	// warm sessions). 0 disables pooling.
	EnclavePool int
	// PoolRefillWorkers sizes the pool's background refill worker set
	// (gateway semantics: 0 = default). Ignored when EnclavePool is 0.
	PoolRefillWorkers int
	// DisableStreaming runs the gateway on the buffered sequential receive
	// path instead of the default streaming pipeline — the A/B control for
	// first-byte-to-verdict comparisons.
	DisableStreaming bool
	// BlockSize, when positive, sets the client's secure-channel frame size
	// in bytes (0 = the 64 KiB default). Smaller frames give the streaming
	// pipeline finer-grained transfer/decode overlap.
	BlockSize int
	// LinkBytesPerSec, when positive, paces every client write to that
	// bandwidth, emulating a WAN uplink. On an unpaced in-memory pipe the
	// whole transfer lands in microseconds and there is no receive idle
	// for the streaming pipeline to fill; a paced link is the deployment
	// shape the first-byte-to-verdict contrast is about. 0 = unpaced.
	LinkBytesPerSec int
}

// pacedConn throttles writes to LinkBytesPerSec: each Write sleeps for
// the time its bytes would occupy the emulated link before handing them
// to the pipe, so the receiver sees frames arrive on a bandwidth-bound
// schedule rather than all at once.
type pacedConn struct {
	net.Conn
	bytesPerSec int
}

func (p *pacedConn) Write(b []byte) (int, error) {
	time.Sleep(time.Duration(len(b)) * time.Second / time.Duration(p.bytesPerSec))
	return p.Conn.Write(b)
}

// LatencyQuantiles summarizes a load run's per-session latency
// distribution: upper-bound estimates from a log₂ histogram, in
// milliseconds, as seen by the clients (connect to verdict, including
// shed-and-retry backoff).
type LatencyQuantiles struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ms"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
}

// GatewayLoadResult reports one load run.
type GatewayLoadResult struct {
	Elapsed        time.Duration
	SessionsPerSec float64
	// Latency is the client-observed per-session latency distribution.
	Latency LatencyQuantiles
	// SpanMillis totals wall-clock time per trace span name across all
	// sessions — where the run's time went (attest, disasm, policy:*, ...).
	SpanMillis map[string]float64
	// SpanCycles totals the cycle-model charges attributed to phase spans,
	// keyed by pipeline phase name.
	SpanCycles map[string]uint64
	// FirstByteToVerdict is the distribution of the server-side
	// first-byte-to-verdict span — arrival of the first image byte to the
	// verdict hitting the wire. Unlike Latency (log₂ histogram upper
	// bounds), these quantiles are exact: the sink retains every session's
	// spans, so they are computed from the raw durations. The streaming
	// win is a fraction of a session, which log₂ buckets would round
	// away. Nil when no session recorded the span.
	FirstByteToVerdict *LatencyQuantiles
	// FirstByteToVerdictRaw holds the raw per-session durations backing
	// FirstByteToVerdict, sorted ascending.
	FirstByteToVerdictRaw []time.Duration
	Stats                 gateway.Stats
}

// RunGatewayLoad drives cfg.Sessions provisioning sessions through a
// fresh gateway and returns throughput plus the gateway's own stats
// snapshot. Any non-compliant verdict or protocol error fails the run.
func RunGatewayLoad(cfg GatewayLoadConfig) (*GatewayLoadResult, error) {
	if len(cfg.Images) == 0 {
		return nil, fmt.Errorf("bench: GatewayLoadConfig.Images is required")
	}
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("bench: GatewayLoadConfig.Sessions must be positive")
	}
	if cfg.Policies == nil {
		cfg.Policies = engarde.NewPolicySet(engarde.StackProtectorPolicy())
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.HeapPages == 0 {
		cfg.HeapPages = 1500
	}
	if cfg.ClientPages == 0 {
		cfg.ClientPages = 512
	}

	// A run-private counter meters the provisioning work so the traces'
	// phase spans carry cycle attributions (SpanCycles in the result).
	counter := cycles.NewCounter(cycles.DefaultModel())
	provider, err := engarde.NewProvider(engarde.ProviderConfig{EPCPages: 32000, Counter: counter})
	if err != nil {
		return nil, err
	}
	fnEntries := cfg.FnCacheEntries
	if fnEntries <= 0 {
		fnEntries = -1
	}
	// The sink retains every session's trace so span totals cover the whole
	// run; the latency histogram records client-side microseconds.
	sink, err := obs.NewSink(cfg.Sessions, "")
	if err != nil {
		return nil, err
	}
	latReg := obs.NewRegistry()
	latHist := latReg.Histogram("bench_session_micros", "", obs.HistogramOpts{Buckets: 32})
	gw, err := gateway.New(gateway.Config{
		Provider:          provider,
		Policies:          cfg.Policies,
		HeapPages:         cfg.HeapPages,
		ClientPages:       cfg.ClientPages,
		DisasmWorkers:     cfg.DisasmWorkers,
		PolicyWorkers:     cfg.PolicyWorkers,
		MaxConcurrent:     cfg.MaxConcurrent,
		EnclavePool:       cfg.EnclavePool,
		PoolRefillWorkers: cfg.PoolRefillWorkers,
		CacheEntries:      cfg.CacheEntries,
		FnCacheEntries:    fnEntries,
		DisableStreaming:  cfg.DisableStreaming,
		IdleTimeout:       -1, // in-memory pipes; deadlines only add noise
		SessionBudget:     -1,
		TraceSink:         sink,
	})
	if err != nil {
		return nil, err
	}
	expected, err := engarde.ExpectedMeasurement(engarde.SGXv2, engarde.EnclaveConfig{
		HeapPages: cfg.HeapPages, ClientPages: cfg.ClientPages,
	})
	if err != nil {
		return nil, err
	}
	client := &engarde.Client{
		Expected:    expected,
		PlatformKey: provider.AttestationPublicKey(),
		BlockSize:   cfg.BlockSize,
	}

	// A pooled run measures the steady state of a pre-warmed gateway, so
	// wait for the initial fill (background keygen per clone) before
	// opening the floodgates — exactly what a production deployment's
	// readiness gate does.
	if cfg.EnclavePool > 0 {
		fillDeadline := time.Now().Add(time.Minute)
		for {
			s := gw.Stats()
			if s.Pool != nil && s.Pool.Depth >= cfg.EnclavePool {
				break
			}
			if time.Now().After(fillDeadline) {
				return nil, fmt.Errorf("bench: enclave pool never reached target depth %d", cfg.EnclavePool)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	ln := newMemListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(context.Background(), ln) }()
	dial := ln.dial
	if cfg.LinkBytesPerSec > 0 {
		dial = func() (net.Conn, error) {
			c, err := ln.dial()
			if err != nil {
				return nil, err
			}
			return &pacedConn{Conn: c, bytesPerSec: cfg.LinkBytesPerSec}, nil
		}
	}

	// Sessions are fanned out to cfg.Clients goroutines; each pulls the
	// next session index and provisions images[i % len(images)].
	next := make(chan int)
	errs := make(chan error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The gateway sheds with a busy verdict when its queue is
			// full, so each session retries with backoff rather than
			// failing the run. Seeded per client for reproducible runs.
			policy := engarde.RetryPolicy{
				Attempts:  10,
				BaseDelay: time.Millisecond,
				MaxDelay:  100 * time.Millisecond,
				Seed:      int64(c + 1),
			}
			for i := range next {
				image := cfg.Images[i%len(cfg.Images)]
				t0 := time.Now()
				v, err := client.ProvisionRetry(dial, image, policy)
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					break
				}
				latHist.Observe(uint64(time.Since(t0) / time.Microsecond))
				if !v.Compliant {
					errs <- fmt.Errorf("session %d rejected: %s", i, v.Reason)
					break
				}
			}
			// Drain so the producer never blocks on a dead worker set.
			for range next {
			}
		}()
	}
	for i := 0; i < cfg.Sessions; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	shutCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := gw.Shutdown(shutCtx); err != nil {
		return nil, fmt.Errorf("bench: gateway shutdown: %w", err)
	}
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("bench: gateway serve: %w", err)
	}
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	res := &GatewayLoadResult{
		Elapsed:        elapsed,
		SessionsPerSec: float64(cfg.Sessions) / elapsed.Seconds(),
		SpanMillis:     make(map[string]float64),
		SpanCycles:     make(map[string]uint64),
		Stats:          gw.Stats(),
	}
	if n := latHist.Count(); n > 0 {
		res.Latency = LatencyQuantiles{
			Count: n,
			Mean:  float64(latHist.Sum()) / float64(n) / 1e3,
			P50:   float64(latHist.Quantile(0.50)) / 1e3,
			P95:   float64(latHist.Quantile(0.95)) / 1e3,
			P99:   float64(latHist.Quantile(0.99)) / 1e3,
		}
	}
	var fbtv []time.Duration
	for _, td := range sink.Recent() {
		for i := range td.Spans {
			sp := &td.Spans[i]
			res.SpanMillis[sp.Name] += float64(sp.Dur) / float64(time.Millisecond)
			for phase, cyc := range sp.Cycles {
				res.SpanCycles[phase] += cyc
			}
			if sp.Name == "first-byte-to-verdict" {
				fbtv = append(fbtv, sp.Dur)
			}
		}
	}
	if len(fbtv) > 0 {
		res.FirstByteToVerdict = exactQuantiles(fbtv)
		res.FirstByteToVerdictRaw = fbtv
	}
	return res, nil
}

// exactQuantiles summarizes raw durations with nearest-rank quantiles,
// in milliseconds.
func exactQuantiles(ds []time.Duration) *LatencyQuantiles {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(ds)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(ds[i]) / float64(time.Millisecond)
	}
	return &LatencyQuantiles{
		Count: uint64(len(ds)),
		Mean:  float64(sum) / float64(len(ds)) / float64(time.Millisecond),
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
	}
}

// DistinctImages builds n byte-distinct stack-protected executables, so a
// load run over them never hits the verdict cache.
func DistinctImages(n int) ([][]byte, error) {
	return DistinctImagesSized(n, 60, 200)
}

// DistinctImagesSized is DistinctImages with an explicit image size, for
// runs that need the provisioning pipeline (disassembly + policy checks,
// which scale with instruction count) to dominate the fixed per-session
// handshake cost.
func DistinctImagesSized(n, numFuncs, avgFuncInsts int) ([][]byte, error) {
	images := make([][]byte, n)
	for i := range images {
		bin, err := toolchain.Build(toolchain.Config{
			Name: fmt.Sprintf("load%d", i), Seed: int64(7000 + i),
			NumFuncs: numFuncs, AvgFuncInsts: avgFuncInsts,
			StackProtector: true,
		})
		if err != nil {
			return nil, err
		}
		images[i] = bin.Image
	}
	return images, nil
}
