package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Figure 2 of the paper lists the sizes of EnGarde's components in lines of
// code. This file regenerates the equivalent table for this reproduction:
// each paper row is mapped to the Go packages implementing it, and their
// non-test, non-blank line counts are reported next to the paper's C/C++
// numbers.

// Component maps one Figure-2 row to repository directories.
type Component struct {
	// Row is the component name as in Figure 2.
	Row string
	// PaperLOC is the paper's reported size (0 when the paper folds the
	// row into another).
	PaperLOC int
	// Dirs are repo-relative package directories implementing the row.
	Dirs []string
	// Note qualifies the comparison.
	Note string
}

// Fig2Components returns the component mapping.
func Fig2Components() []Component {
	return []Component{
		{Row: "Code Provisioning", PaperLOC: 270,
			Dirs: []string{"internal/secchan", "internal/attest"},
			Note: "encrypted channel + attestation"},
		{Row: "Loading and Relocating", PaperLOC: 188,
			Dirs: []string{"internal/loader", "internal/elf64"},
			Note: "paper reuses OpenSGX ELF code; ours is from scratch"},
		{Row: "Checking Executables linked against musl-libc", PaperLOC: 1949,
			Dirs: []string{"internal/policy/liblink", "internal/x86", "internal/nacl", "internal/symtab"},
			Note: "paper counts the NaCl disassembler here"},
		{Row: "Checking Executables Compiled with Stack Protection", PaperLOC: 109,
			Dirs: []string{"internal/policy/stackprot"}},
		{Row: "Checking Executables Containing Indirect Function-Call Checks", PaperLOC: 129,
			Dirs: []string{"internal/policy/ifcc"}},
		{Row: "Client's side program", PaperLOC: 349,
			Dirs: []string{"cmd/engarde-client"}},
		{Row: "Musl-libc", PaperLOC: 90_728,
			Dirs: []string{"internal/toolchain"},
			Note: "synthetic toolchain generating the musl stand-in"},
		{Row: "Lib crypto (openssl)", PaperLOC: 287_985,
			Dirs: nil, Note: "Go standard library crypto (not vendored)"},
		{Row: "Lib ssl (openssl)", PaperLOC: 63_566,
			Dirs: nil, Note: "Go standard library crypto (not vendored)"},
		{Row: "SGX substrate (OpenSGX in the paper)", PaperLOC: 0,
			Dirs: []string{"internal/sgx", "internal/hostos"},
			Note: "the paper used OpenSGX unmodified (not counted in Fig. 2)"},
		{Row: "EnGarde core orchestration", PaperLOC: 0,
			Dirs: []string{"internal/core", "internal/policy", "."},
			Note: "folded into the rows above in the paper"},
		{Row: "Extensions beyond the prototype", PaperLOC: 0,
			Dirs: []string{"internal/interp", "internal/funcid", "internal/policy/asan", "internal/policy/noforbidden"},
			Note: "runtime execution, stripped-binary recovery, extra policy modules"},
	}
}

// CountLOC counts non-blank, non-test Go lines under the given repo-
// relative directories (non-recursive: one package per directory).
func CountLOC(root string, dirs []string) (int, error) {
	total := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			return 0, fmt.Errorf("bench: reading %s: %w", dir, err)
		}
		for _, ent := range entries {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			n, err := countFileLines(filepath.Join(root, dir, name))
			if err != nil {
				return 0, err
			}
			total += n
		}
	}
	return total, nil
}

func countFileLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}

// FormatFig2 renders the component-size table for the repository at root.
func FormatFig2(root string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Sizes of EnGarde components (Go LOC vs paper's C/C++ LOC)\n")
	fmt.Fprintf(&b, "%-62s %10s %10s  %s\n", "Component", "This repo", "Paper", "Note")
	var total, paperTotal int
	for _, c := range Fig2Components() {
		loc := 0
		if len(c.Dirs) > 0 {
			var err error
			loc, err = CountLOC(root, c.Dirs)
			if err != nil {
				return "", err
			}
		}
		total += loc
		paperTotal += c.PaperLOC
		paper := "-"
		if c.PaperLOC > 0 {
			paper = fmt.Sprintf("%d", c.PaperLOC)
		}
		fmt.Fprintf(&b, "%-62s %10d %10s  %s\n", c.Row, loc, paper, c.Note)
	}
	fmt.Fprintf(&b, "%-62s %10d %10d\n", "Total", total, paperTotal)
	return b.String(), nil
}
