package bench

import (
	"fmt"
	"testing"

	"engarde/internal/toolchain"
)

// fleetImages builds n small, byte-distinct compliant executables — small
// because fleet tests pay for real TCP and multiple gateways per session.
func fleetImages(t *testing.T, n int) [][]byte {
	t.Helper()
	images := make([][]byte, n)
	for i := range images {
		bin, err := toolchain.Build(toolchain.Config{
			Name: fmt.Sprintf("fleet%d", i), Seed: int64(8200 + i),
			NumFuncs: 6, AvgFuncInsts: 40,
			StackProtector: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		images[i] = bin.Image
	}
	return images
}

// TestFleetDigestAffinity is the tentpole acceptance test: across a
// 4-backend fleet with announced sessions, at least 95% of sessions must
// land on their image digest's ring owner. With every backend healthy the
// router has no reason to divert, so in practice this is 100% — the
// margin only absorbs scheduling accidents, never systematic misrouting.
func TestFleetDigestAffinity(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	images := fleetImages(t, 8)
	res, err := RunFleetLoad(FleetLoadConfig{
		Backends: 4,
		Images:   images,
		Sessions: 24,
		Clients:  3,
		Announce: true,
		Tenant:   "affinity-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Announced != 24 {
		t.Fatalf("announced sessions = %d, want 24", res.Announced)
	}
	affinity := float64(res.Affine) / float64(res.Announced)
	t.Logf("affinity: %d/%d = %.2f; per-backend %v", res.Affine, res.Announced, affinity, res.PerBackend)
	if affinity < 0.95 {
		t.Fatalf("digest affinity = %.2f, want >= 0.95", affinity)
	}
	// Sessions must actually spread: 8 distinct digests over a 4-node ring
	// essentially never all hash to one owner.
	busy := 0
	for _, b := range res.PerBackend {
		if b.Sessions > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("all sessions on %d backend(s); ring is not spreading", busy)
	}
	// Affine repeats of the same image hit the owner's verdict cache: the
	// whole point of digest-affine routing.
	var hits uint64
	for _, b := range res.PerBackend {
		hits += b.VerdictCacheHits
	}
	if hits == 0 {
		t.Error("no verdict-cache hits despite digest-affine repeats")
	}
}

// TestFleetRemoteMemoSharing proves warm-path state crosses nodes: with
// the fn-cache peer mesh wired and announcements off, sessions for the
// same image land on different backends, and later backends fetch the
// memoized function results a peer already computed.
func TestFleetRemoteMemoSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet topology is not short")
	}
	images := fleetImages(t, 1)
	res, err := RunFleetLoad(FleetLoadConfig{
		Backends:      2,
		Images:        images,
		Sessions:      6,
		Clients:       1, // sequential, so the anonymous rotation alternates backends
		SharedFnCache: true,
		CacheEntries:  -1, // no verdict cache: every session runs the pipeline
	})
	if err != nil {
		t.Fatal(err)
	}
	var remoteHits, peerStored uint64
	busy := 0
	for _, b := range res.PerBackend {
		remoteHits += b.FnRemoteHits
		peerStored += b.FnPeerStored
		if b.Sessions > 0 {
			busy++
		}
	}
	t.Logf("per-backend: %v", res.PerBackend)
	if busy != 2 {
		t.Fatalf("sessions landed on %d backends, want both", busy)
	}
	// State crosses nodes through either direction of the peer protocol:
	// pull (a probe batch-fetches what a peer computed → remote hits) or
	// push (the flusher lands records on the peer before its first session
	// → peer-stored). Which one wins is a race between the async flusher
	// and the next session; both prove the mesh works.
	if remoteHits == 0 && peerStored == 0 {
		t.Fatal("no remote fn-memo transfer in either direction: warm-path state did not cross nodes")
	}
}
